// elsa — command-line frontend for the toolkit.
//
//   elsa generate --system bluegene|mercury --days N [--seed S] --out LOG
//       Generate a synthetic campaign and write it as a RAS text log.
//
//   elsa train --system bluegene|mercury --log LOG [--method hybrid|signal|dm]
//              [--train-days N] --out MODEL
//       Run the offline phase on a RAS log and persist the learned model.
//
//   elsa inspect --model MODEL
//       Summarise a model: templates, signal classes, chains.
//
//   elsa predict --system bluegene|mercury --log LOG --model MODEL
//       Stream a RAS log through the online engine and print alarms.
//
//   elsa serve --system bluegene|mercury --log LOG --model MODEL
//              [--shards N] [--speedup X] [--shed 1]
//       Replay a RAS log through the multi-threaded sharded prediction
//       service (bounded ingest queue, one engine per topology shard),
//       print alarms as they are issued, and report serving metrics.
//       --speedup X replays at X trace-seconds per wall-second; 0 (the
//       default) replays as fast as possible.
//
//   elsa chaos --system bluegene|mercury --log LOG --model MODEL
//              [--plan SPEC|all|none] [--seed S] [--shards N]
//              [--policy block|drop-oldest|shed] [--speedup X]
//       Chaos-soak the serving layer: replay the log through a seeded
//       fault injector (drops, duplicates, corruption, reordering, clock
//       skew) and a fault plan wired into the shard workers (stalls,
//       worker kills), with a fast watchdog. Prints injector stats and
//       serve metrics, then verifies the conservation invariant
//       ingested == processed + quarantined + shed; exit 1 if violated.
//
//   elsa advise --system bluegene|mercury --days N --model MODEL
//              [--seed S] [--shards N] [--plan SPEC|all|none]
//              [--chaos-seed S] [--policy block|drop-oldest|shed]
//              [--speedup X] [--check 1]
//       Close the prediction->action loop: regenerate the campaign from
//       (system, days, seed) — the ground-truth failure record must be
//       known, so the trace is rebuilt rather than read from a log —
//       replay it through serve plus the checkpoint advisor (optionally
//       under a chaos fault plan), score the proactive directives against
//       ground truth, and report the realised checkpoint waste of the
//       adaptive schedule vs the static-optimum baseline at the Table IV
//       cost points. Deterministic given (system, days, seed); prints the
//       schedule digest as the reproducibility receipt. --check 1 exits 1
//       unless the adaptive schedule strictly beats the static baseline
//       at every cost point.
//
//   elsa mine --system bluegene|mercury --days N [--seed S]
//             [--shards LIST] [--publish-every K] [--plan SPEC|none]
//             [--chaos-seed S] [--out MODEL] [--check 1]
//       Online incremental mining with RCU model hot-swap: replay the
//       regenerated campaign through the MinerService (live HELO
//       classification, per-shard lossless event taps, watermark-merged
//       incremental rule mining, models published into the serving
//       engines through the lock-free ModelHub) at each shard count in
//       LIST, and prove online ≡ batch: the final model digest AND the
//       interim publish-stream digest must equal batch-mining the
//       canonically sorted trace, and predictions served through the hub
//       must equal predictions served directly. --plan adds a leg under
//       serve-side chaos (stall/failworker only — faults that mutate the
//       record stream change the mined input legitimately). --check 1
//       exits 1 on any divergence: the CI gate.
//
// The --system flag supplies the machine topology (real deployments would
// read it from the site's configuration database).

#include <algorithm>
#include <cmath>
#include <cstring>
#include <iostream>
#include <map>
#include <string>

#include <atomic>
#include <chrono>
#include <thread>

#include "advisor/service.hpp"
#include "ckpt/simulator.hpp"
#include "mining/service.hpp"
#include "elsa/model_io.hpp"
#include "elsa/online.hpp"
#include "faultinject/injector.hpp"
#include "faultinject/plan.hpp"
#include "elsa/pipeline.hpp"
#include "elsa/report.hpp"
#include "serve/replayer.hpp"
#include "serve/service.hpp"
#include "simlog/logio.hpp"
#include "simlog/scenario.hpp"
#include "util/ascii.hpp"
#include "util/strings.hpp"

namespace {

using namespace elsa;

int usage() {
  std::cerr
      << "usage:\n"
         "  elsa generate --system bluegene|mercury --days N [--seed S] "
         "--out LOG\n"
         "  elsa train    --system bluegene|mercury --log LOG "
         "[--method hybrid|signal|dm] [--train-days N] --out MODEL\n"
         "  elsa inspect  --model MODEL\n"
         "  elsa predict  --system bluegene|mercury --log LOG --model MODEL "
         "[--max-alarms N]\n"
         "  elsa serve    --system bluegene|mercury --log LOG --model MODEL "
         "[--shards N] [--speedup X] [--shed 1] [--max-alarms N]\n"
         "  elsa chaos    --system bluegene|mercury --log LOG --model MODEL "
         "[--plan SPEC|all|none] [--seed S] [--shards N] "
         "[--policy block|drop-oldest|shed] [--speedup X]\n"
         "  elsa advise   --system bluegene|mercury --days N --model MODEL "
         "[--seed S] [--shards N] [--plan SPEC|all|none] [--chaos-seed S] "
         "[--policy block|drop-oldest|shed] [--speedup X] [--check 1]\n"
         "  elsa mine     --system bluegene|mercury --days N [--seed S] "
         "[--shards LIST] [--publish-every K] [--plan SPEC|none] "
         "[--chaos-seed S] [--out MODEL] [--check 1]\n";
  return 2;
}

std::map<std::string, std::string> parse_flags(int argc, char** argv,
                                               int first) {
  std::map<std::string, std::string> flags;
  for (int i = first; i + 1 < argc; i += 2) {
    if (std::strncmp(argv[i], "--", 2) != 0) throw std::runtime_error(
        std::string("expected a --flag, got '") + argv[i] + "'");
    flags[argv[i] + 2] = argv[i + 1];
  }
  return flags;
}

topo::Topology topology_for(const std::string& system) {
  if (system == "bluegene") return topo::Topology::bluegene(4, 2, 8, 16);
  if (system == "mercury") return topo::Topology::cluster(891, 32);
  throw std::runtime_error("unknown --system '" + system +
                           "' (want bluegene or mercury)");
}

core::Method method_for(const std::string& name) {
  if (name == "hybrid" || name.empty()) return core::Method::Hybrid;
  if (name == "signal") return core::Method::SignalOnly;
  if (name == "dm") return core::Method::DataMining;
  throw std::runtime_error("unknown --method '" + name + "'");
}

simlog::Trace trace_from_log(const std::string& path,
                             const std::string& system) {
  const auto topology = topology_for(system);
  auto parsed = simlog::read_ras_log_file(path, topology);
  if (parsed.records.empty())
    throw std::runtime_error("no records parsed from " + path);
  simlog::Trace trace;
  trace.topology = topology;
  trace.t_begin_ms = parsed.records.front().time_ms;
  trace.t_end_ms = parsed.records.back().time_ms + 1;
  trace.records = std::move(parsed.records);
  if (parsed.malformed_lines > 0)
    std::cerr << "warning: " << parsed.malformed_lines
              << " malformed lines skipped\n";
  return trace;
}

int cmd_generate(const std::map<std::string, std::string>& flags) {
  const auto system = flags.at("system");
  const double days = std::stod(flags.at("days"));
  const std::uint64_t seed =
      flags.count("seed") ? std::stoull(flags.at("seed")) : 2012;
  auto scenario = system == "mercury"
                      ? simlog::make_mercury_scenario(seed, days)
                      : simlog::make_bluegene_scenario(seed, days);
  const auto trace = scenario.generator.generate(scenario.config);
  simlog::write_ras_log_file(flags.at("out"), trace.records, trace.topology);
  std::cout << "wrote " << trace.records.size() << " records ("
            << trace.faults.size() << " injected failures) to "
            << flags.at("out") << "\n";
  return 0;
}

int cmd_train(const std::map<std::string, std::string>& flags) {
  const auto trace = trace_from_log(flags.at("log"), flags.at("system"));
  const double span_days =
      static_cast<double>(trace.t_end_ms - trace.t_begin_ms) / 86'400'000.0;
  const double train_days = flags.count("train-days")
                                ? std::stod(flags.at("train-days"))
                                : span_days;
  const auto method = method_for(
      flags.count("method") ? flags.at("method") : std::string{});

  core::PipelineConfig cfg;
  const std::int64_t train_end =
      trace.t_begin_ms +
      static_cast<std::int64_t>(train_days * 86'400'000.0);
  const auto model = core::train_offline(trace, train_end, method, cfg);
  core::save_model_file(flags.at("out"), model);

  std::size_t predictive = 0;
  for (const auto& c : model.chains) predictive += c.predictive();
  std::cout << core::to_string(method) << " model trained on "
            << util::format_double(train_days, 1) << " days: "
            << model.helo.size() << " event types, " << model.chains.size()
            << " chains (" << predictive << " predictive) -> "
            << flags.at("out") << "\n";
  return 0;
}

int cmd_inspect(const std::map<std::string, std::string>& flags) {
  const auto model = core::load_model_file(flags.at("model"));
  std::cout << "model: " << core::to_string(model.method) << ", trained over "
            << util::human_duration(
                   static_cast<double>(model.train_end_ms -
                                       model.train_begin_ms) /
                   1000.0)
            << "\n";
  std::size_t by_class[3] = {0, 0, 0};
  for (const auto& p : model.profiles)
    ++by_class[static_cast<std::size_t>(p.cls)];
  std::cout << model.helo.size() << " event types: " << by_class[0]
            << " periodic, " << by_class[1] << " noise, " << by_class[2]
            << " silent\n";
  const auto sizes = core::sequence_size_report(model.chains);
  std::cout << model.chains.size() << " chains, mean length "
            << util::format_double(sizes.mean_size, 1) << "\n\n";
  for (const auto& c : model.chains) {
    if (!c.predictive()) continue;
    std::cout << "  [sup " << c.support << ", conf "
              << util::format_pct(c.confidence, 0) << ", lead "
              << util::human_duration(c.lead() * 10.0) << ", scope "
              << topo::to_string(c.location.scope) << "]\n";
    for (const auto& item : c.items)
      std::cout << "      " << model.helo.at(item.signal).text().substr(0, 70)
                << "\n";
  }
  return 0;
}

int cmd_predict(const std::map<std::string, std::string>& flags) {
  const auto trace = trace_from_log(flags.at("log"), flags.at("system"));
  auto model = core::load_model_file(flags.at("model"));
  const std::size_t max_alarms =
      flags.count("max-alarms") ? std::stoul(flags.at("max-alarms")) : 50;

  core::PipelineConfig cfg;
  core::EngineConfig ec = cfg.engine;
  ec.dt_ms = cfg.dt_ms;
  ec.use_location = model.method != core::Method::DataMining;
  ec.raw_event_matching = model.method == core::Method::DataMining;
  core::OnlineEngine engine(trace.topology, model.chains, model.profiles, ec);

  std::size_t seen = 0, printed = 0;
  for (const auto& rec : trace.records) {
    engine.feed(rec, model.helo.classify(rec.message));
    while (seen < engine.predictions().size()) {
      const auto& p = engine.predictions()[seen++];
      if (printed >= max_alarms) continue;
      ++printed;
      std::cout << p.issue_time_ms << "\tALARM\t"
                << (p.nodes.empty() ? std::string("SYSTEM")
                                    : trace.topology.code(p.nodes.front()))
                << "\t+" << p.lead_ms / 1000 << "s\t"
                << model.helo.at(p.tmpl).text() << "\n";
    }
  }
  engine.finish(trace.t_end_ms);
  std::cerr << engine.predictions().size() << " alarms ("
            << engine.stats().duplicates_suppressed
            << " duplicates suppressed), mean analysis window "
            << util::format_double(engine.stats().mean_analysis_ms(), 1)
            << " ms\n";
  return 0;
}

int cmd_serve(const std::map<std::string, std::string>& flags) {
  const auto trace = trace_from_log(flags.at("log"), flags.at("system"));
  const auto model = core::load_model_file(flags.at("model"));
  const std::size_t max_alarms =
      flags.count("max-alarms") ? std::stoul(flags.at("max-alarms")) : 50;

  serve::ServiceConfig scfg;  // zero-cost model: latency is measured, not simulated
  if (flags.count("shards")) scfg.shards = std::stoul(flags.at("shards"));
  scfg.engine.use_location = model.method != core::Method::DataMining;
  scfg.engine.raw_event_matching = model.method == core::Method::DataMining;
  serve::PredictionService service(trace.topology, model, scfg);

  serve::ReplayOptions ro;
  if (flags.count("speedup")) ro.speedup = std::stod(flags.at("speedup"));
  ro.shed = flags.count("shed") && flags.at("shed") != "0";
  const serve::TraceReplayer replayer(trace, ro);

  // Feed from a producer thread; stream alarms from this one.
  std::atomic<bool> done{false};
  std::size_t accepted = 0;
  std::thread producer([&] {
    accepted = replayer.replay_into(service);
    done.store(true);
  });

  std::vector<core::Prediction> alarms;
  std::size_t printed = 0;
  const auto print_alarms = [&] {
    service.poll_alarms(alarms);
    for (const auto& p : alarms) {
      if (printed >= max_alarms) break;
      ++printed;
      std::cout << p.issue_time_ms << "\tALARM\t"
                << (p.nodes.empty() ? std::string("SYSTEM")
                                    : trace.topology.code(p.nodes.front()))
                << "\t+" << p.lead_ms / 1000 << "s\t"
                << model.helo.at(p.tmpl).text() << "\n";
    }
    alarms.clear();
  };
  while (!done.load()) {
    print_alarms();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  producer.join();
  service.finish(trace.t_end_ms);
  print_alarms();
  std::cerr << accepted << " records accepted\n";

  std::cerr << service.metrics_report();
  std::cerr << service.predictions().size() << " alarms total across "
            << service.shards() << " shards\n";
  return 0;
}

serve::OverflowPolicy policy_for(const std::string& name) {
  if (name == "block" || name.empty()) return serve::OverflowPolicy::kBlock;
  if (name == "drop-oldest") return serve::OverflowPolicy::kDropOldest;
  if (name == "shed") return serve::OverflowPolicy::kShed;
  throw std::runtime_error("unknown --policy '" + name +
                           "' (want block, drop-oldest or shed)");
}

int cmd_chaos(const std::map<std::string, std::string>& flags) {
  const auto trace = trace_from_log(flags.at("log"), flags.at("system"));
  const auto model = core::load_model_file(flags.at("model"));
  const std::uint64_t seed =
      flags.count("seed") ? std::stoull(flags.at("seed")) : 42;
  const auto plan = faultinject::FaultPlan::parse(
      flags.count("plan") ? flags.at("plan") : std::string("all"), seed);

  serve::ServiceConfig scfg;
  if (flags.count("shards")) scfg.shards = std::stoul(flags.at("shards"));
  scfg.engine.use_location = model.method != core::Method::DataMining;
  scfg.engine.raw_event_matching = model.method == core::Method::DataMining;
  scfg.overflow =
      policy_for(flags.count("policy") ? flags.at("policy") : std::string{});
  // A soak wants the watchdog to bite within the run, not after 2 s of
  // real time: scan fast, trip fast.
  scfg.watchdog_interval_ms = 20;
  scfg.watchdog_deadline_ms = 250;
  scfg.faults = &plan;
  serve::PredictionService service(trace.topology, model, scfg);

  serve::ReplayOptions ro;
  if (flags.count("speedup")) ro.speedup = std::stod(flags.at("speedup"));
  // Shed + bounded retry exercises the full degradation surface when the
  // policy is shed; block/drop-oldest exercise theirs through submit().
  ro.shed = scfg.overflow == serve::OverflowPolicy::kShed;
  ro.max_retries = 3;
  const serve::TraceReplayer replayer(trace, ro);

  faultinject::FaultInjector injector(plan);
  std::cerr << "chaos plan (seed " << seed << "): " << plan.to_string()
            << "\n";
  const std::size_t accepted = replayer.replay_into(service, &injector);
  service.finish(trace.t_end_ms);

  const auto& is = injector.stats();
  std::cerr << "injector    seen " << is.seen << ", delivered " << is.delivered
            << ", dropped " << is.dropped << ", duplicated " << is.duplicated
            << ", corrupted " << is.corrupted << ", reordered " << is.reordered
            << ", skewed " << is.skewed << "\n";
  std::cerr << accepted << " records accepted\n" << service.metrics_report();
  std::cerr << service.predictions().size() << " alarms total across "
            << service.shards() << " shards\n";

  const auto m = service.metrics();
  const bool tap_ok = is.seen + is.duplicated == is.delivered + is.dropped;
  if (!tap_ok) {
    std::cerr << "FAIL: injector conservation violated (seen + duplicated != "
                 "delivered + dropped)\n";
    return 1;
  }
  if (!m.records_conserved()) {
    std::cerr << "FAIL: record conservation violated: ingested " << m.ingested
              << " != processed " << m.records_out << " + quarantined "
              << m.quarantined << " + shed " << m.shed << "\n";
    return 1;
  }
  std::cerr << "OK: conservation holds (ingested " << m.ingested
            << " == processed " << m.records_out << " + quarantined "
            << m.quarantined << " + shed " << m.shed << ")\n";
  return 0;
}

std::vector<std::size_t> parse_shard_list(const std::string& s) {
  std::vector<std::size_t> out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    out.push_back(std::stoul(s.substr(pos, comma - pos)));
    pos = comma + 1;
  }
  if (out.empty()) throw std::runtime_error("empty --shards list");
  return out;
}

std::string hex64(std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// Field-for-field equality of two deterministic prediction streams.
bool predictions_equal(const std::vector<core::Prediction>& a,
                       const std::vector<core::Prediction>& b,
                       std::string* why) {
  if (a.size() != b.size()) {
    *why = "count " + std::to_string(a.size()) + " vs " +
           std::to_string(b.size());
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto& x = a[i];
    const auto& y = b[i];
    if (x.trigger_time_ms != y.trigger_time_ms ||
        x.issue_time_ms != y.issue_time_ms ||
        x.predicted_time_ms != y.predicted_time_ms || x.tmpl != y.tmpl ||
        x.nodes != y.nodes || x.scope != y.scope ||
        x.chain_id != y.chain_id || x.confidence != y.confidence ||
        x.lead_ms != y.lead_ms) {
      *why = "prediction " + std::to_string(i) + " differs";
      return false;
    }
  }
  return true;
}

int cmd_mine(const std::map<std::string, std::string>& flags) {
  const auto system = flags.at("system");
  const double days = std::stod(flags.at("days"));
  const std::uint64_t seed =
      flags.count("seed") ? std::stoull(flags.at("seed")) : 2012;
  const bool check = flags.count("check") && flags.at("check") != "0";
  const std::size_t publish_every =
      flags.count("publish-every") ? std::stoul(flags.at("publish-every"))
                                   : 2048;
  const auto shard_list =
      flags.count("shards") ? parse_shard_list(flags.at("shards"))
                            : std::vector<std::size_t>{1, 2, 4, 8};

  // Regenerate the campaign (deterministic in system/days/seed) — the
  // online≡batch comparison needs the exact record stream, not a log file
  // whose parse could diverge.
  auto scenario = system == "mercury"
                      ? simlog::make_mercury_scenario(seed, days)
                      : simlog::make_bluegene_scenario(seed, days);
  const auto trace = scenario.generator.generate(scenario.config);

  const mining::MinerConfig mcfg;

  // ---- Batch reference leg: classify the trace in order with a fresh
  // incremental classifier, sort canonically, fold through a fresh miner
  // with the same publish cadence.
  helo::TemplateMiner classifier;
  std::vector<serve::ClassifiedEvent> events;
  events.reserve(trace.records.size());
  for (const auto& rec : trace.records)
    events.push_back({rec.time_ms, rec.node_id,
                      classifier.classify(rec.message),
                      static_cast<std::uint8_t>(rec.severity)});
  std::stable_sort(events.begin(), events.end(), mining::canonical_less);
  const auto batch =
      mining::batch_mine(events, mcfg, publish_every, classifier);
  std::cout << "batch       model " << hex64(batch.model_digest)
            << "  stream " << hex64(batch.publish_digest) << "  ("
            << events.size() << " events, " << batch.publishes
            << " publishes, " << batch.model.chains.size() << " chains)\n";

  bool ok = true;
  const auto run_online = [&](std::size_t shards,
                              const faultinject::FaultPlan* plan,
                              const std::string& label) {
    mining::MinerServiceConfig cfg;
    cfg.serve.shards = shards;
    cfg.miner = mcfg;
    cfg.publish_every = publish_every;
    if (plan != nullptr) {
      cfg.serve.faults = plan;
      cfg.serve.watchdog_interval_ms = 20;
      cfg.serve.watchdog_deadline_ms = 250;
    }
    mining::MinerService ms(trace.topology, cfg);
    const serve::TraceReplayer replayer(trace);
    replayer.replay_into(ms.service());
    ms.finish(trace.t_end_ms);
    const bool leg_ok = ms.final_digest() == batch.model_digest &&
                        ms.publish_stream_digest() == batch.publish_digest &&
                        ms.folded() == events.size() &&
                        ms.publishes() == batch.publishes;
    const auto m = ms.service().metrics();
    std::cout << label << "  model " << hex64(ms.final_digest())
              << "  stream " << hex64(ms.publish_stream_digest()) << "  ("
              << ms.folded() << " events, " << ms.publishes()
              << " publishes, " << m.model_swaps << " swaps)  "
              << (leg_ok ? "MATCH" : "MISMATCH") << "\n";
    ok = ok && leg_ok;
  };

  for (const std::size_t n : shard_list) {
    char label[32];
    std::snprintf(label, sizeof label, "online %2zu", n);
    run_online(n, nullptr, label);
  }

  if (flags.count("plan") && flags.at("plan") != "none") {
    const std::uint64_t chaos_seed =
        flags.count("chaos-seed") ? std::stoull(flags.at("chaos-seed")) : 42;
    const auto plan =
        faultinject::FaultPlan::parse(flags.at("plan"), chaos_seed);
    for (const auto& spec : plan.specs())
      if (spec.kind != faultinject::FaultKind::kStallShard &&
          spec.kind != faultinject::FaultKind::kFailWorker)
        throw std::runtime_error(
            "mine --plan accepts serve-side faults only (stall/failworker): "
            "record-mutating faults legitimately change the mined stream");
    run_online(shard_list.back(), &plan, "chaos    ");
  }

  // ---- Prediction-equality leg: serving the final model THROUGH the hub
  // must predict identically to serving it directly — the hub indirection
  // is transparent. (Live-swap output is inherently timing-dependent, so
  // the witness is a static hub, pre-published before any feed.)
  {
    serve::ServiceConfig scfg;
    scfg.shards = shard_list.back();
    scfg.engine.use_location = false;
    scfg.engine.raw_event_matching = true;

    serve::ModelHub hub(std::make_unique<const core::ModelState>(
        core::ModelState::build({}, {})));
    hub.publish(std::make_unique<const core::ModelState>(
        core::ModelState::build(batch.model.chains, batch.model.profiles)));
    core::OfflineModel hollow = batch.model;  // classifier only; the rules
    hollow.chains.clear();                    // must come from the hub
    hollow.profiles.clear();

    serve::ServiceConfig acfg = scfg;
    acfg.hub = &hub;
    serve::PredictionService via_hub(trace.topology, hollow, acfg);
    serve::TraceReplayer(trace).replay_into(via_hub);
    via_hub.finish(trace.t_end_ms);

    serve::PredictionService direct(trace.topology, batch.model, scfg);
    serve::TraceReplayer(trace).replay_into(direct);
    direct.finish(trace.t_end_ms);

    std::string why;
    const bool pred_ok =
        predictions_equal(via_hub.predictions(), direct.predictions(), &why);
    std::cout << "predict     hub " << via_hub.predictions().size()
              << " alarms vs direct " << direct.predictions().size()
              << "  " << (pred_ok ? "MATCH" : "MISMATCH (" + why + ")")
              << "\n";
    ok = ok && pred_ok;
  }

  if (flags.count("out")) {
    core::save_model_file(flags.at("out"), batch.model);
    std::cout << "wrote model -> " << flags.at("out") << "\n";
  }
  std::cout << (ok ? "OK: online mining == batch mining"
                   : "FAIL: online/batch divergence")
            << "\n";
  return check && !ok ? 1 : 0;
}

/// Eq. 4 interval at an MTTF estimate, re-derived per checkpoint cost so
/// one recorded est_mttf stream prices every Table IV cost point.
double interval_at(const advisor::AdvisorConfig& ad, double C,
                   double mttf_min) {
  return advisor::interval_for_cost(ad, C, mttf_min);
}

int cmd_advise(const std::map<std::string, std::string>& flags) {
  const auto system = flags.at("system");
  const double days = std::stod(flags.at("days"));
  const std::uint64_t seed =
      flags.count("seed") ? std::stoull(flags.at("seed")) : 2012;
  const std::uint64_t chaos_seed =
      flags.count("chaos-seed") ? std::stoull(flags.at("chaos-seed")) : 42;
  auto scenario = system == "mercury"
                      ? simlog::make_mercury_scenario(seed, days)
                      : simlog::make_bluegene_scenario(seed, days);
  const auto trace = scenario.generator.generate(scenario.config);
  const auto model = core::load_model_file(flags.at("model"));
  const auto plan = faultinject::FaultPlan::parse(
      flags.count("plan") ? flags.at("plan") : std::string("none"),
      chaos_seed);

  advisor::AdvisorServiceConfig acfg;
  if (flags.count("shards"))
    acfg.serve.shards = std::stoul(flags.at("shards"));
  acfg.serve.engine.use_location = model.method != core::Method::DataMining;
  acfg.serve.engine.raw_event_matching =
      model.method == core::Method::DataMining;
  acfg.serve.overflow =
      policy_for(flags.count("policy") ? flags.at("policy") : std::string{});
  // Same fast watchdog as a chaos soak: bite within the run.
  acfg.serve.watchdog_interval_ms = 20;
  acfg.serve.watchdog_deadline_ms = 250;
  acfg.serve.faults = &plan;
  advisor::AdvisorConfig& ad = acfg.advisor;
  if (flags.count("precision")) ad.precision = std::stod(flags.at("precision"));
  if (flags.count("recall")) ad.recall = std::stod(flags.at("recall"));
  if (flags.count("gap-alpha")) ad.gap_alpha = std::stod(flags.at("gap-alpha"));
  if (flags.count("confidence"))
    ad.directive_confidence = std::stod(flags.at("confidence"));
  if (flags.count("hysteresis"))
    ad.mttf_hysteresis = std::stod(flags.at("hysteresis"));
  if (flags.count("interval-recall"))
    ad.interval_recall = std::stod(flags.at("interval-recall"));

  serve::ReplayOptions ro;
  if (flags.count("speedup")) ro.speedup = std::stod(flags.at("speedup"));
  ro.shed = acfg.serve.overflow == serve::OverflowPolicy::kShed;
  ro.max_retries = 3;

  // -- calibration pass: alarm episodes per failure on the training window
  // The estimator's alarm-gap -> MTTF ratio is measurable wherever ground
  // truth is known, and the training window is exactly that (the deployed
  // model's realised alarm rate routinely misses its offline
  // precision/recall numbers). Replays only the training records, chaos
  // off, so the calibrated constant depends on (trace, seed, model) alone.
  if (!flags.count("episodes-per-failure")) {
    simlog::Trace train = trace;
    train.records.erase(
        std::find_if(train.records.begin(), train.records.end(),
                     [&](const simlog::LogRecord& r) {
                       return r.time_ms >= model.train_end_ms;
                     }),
        train.records.end());
    advisor::AdvisorServiceConfig ccfg = acfg;
    ccfg.serve.faults = nullptr;
    advisor::AdvisorService calib(train.topology, model, ccfg);
    const serve::TraceReplayer crep(train, ro);
    crep.replay_into(calib.service(), nullptr);
    calib.finish(model.train_end_ms);
    const auto cs = calib.schedule();
    std::uint64_t episodes = 0;
    for (const auto& p : cs.partitions)
      if (p.partition >= 0) episodes += p.episodes;
    std::uint64_t f_train = 0;
    for (const auto& f : trace.faults)
      if (f.fail_time_ms < model.train_end_ms && f.initiating_node >= 0)
        ++f_train;
    if (episodes > 0 && f_train > 0) {
      ad.episodes_per_failure =
          static_cast<double>(episodes) / static_cast<double>(f_train);
      std::cerr << "calibration: " << episodes << " training episodes / "
                << f_train << " training failures -> episodes_per_failure "
                << ad.episodes_per_failure << "\n";
    }
  } else {
    ad.episodes_per_failure = std::stod(flags.at("episodes-per-failure"));
  }

  advisor::AdvisorService svc(trace.topology, model, acfg);

  const serve::TraceReplayer replayer(trace, ro);
  faultinject::FaultInjector injector(plan);
  if (!plan.empty())
    std::cerr << "chaos plan (seed " << chaos_seed
              << "): " << plan.to_string() << "\n";

  const std::size_t accepted = replayer.replay_into(
      svc.service(), plan.empty() ? nullptr : &injector);
  svc.finish(trace.t_end_ms);
  svc.advisor().score(trace.faults, model.train_end_ms);

  const auto sched = svc.schedule();
  std::cerr << accepted << " records accepted\n"
            << svc.service().metrics_report();
  std::cerr << sched.to_string();
  {
    char digest[32];
    std::snprintf(digest, sizeof digest, "%016llx",
                  static_cast<unsigned long long>(sched.digest()));
    std::cout << "schedule digest " << digest << " (advisor dropped "
              << svc.dropped() << ")\n";
  }

  const auto m = svc.service().metrics();
  if (!m.records_conserved()) {
    std::cerr << "FAIL: record conservation violated: ingested " << m.ingested
              << " != processed " << m.records_out << " + quarantined "
              << m.quarantined << " + shed " << m.shed << "\n";
    return 1;
  }
  if (m.advisor_events + m.advisor_dropped != m.predictions) {
    std::cerr << "FAIL: advisor conservation violated: events "
              << m.advisor_events << " + dropped " << m.advisor_dropped
              << " != predictions " << m.predictions << "\n";
    return 1;
  }

  // -- realised waste: adaptive schedule vs static optimum ----------------
  // Evaluation window = everything after training; per-partition failures
  // from ground truth; the Table IV checkpoint cost points, R=5, D=1.
  const auto& topo = trace.topology;
  const std::int32_t npm =
      std::max(1, topo.nodes_per_nodecard() * topo.nodecards_per_midplane());
  const std::int32_t nparts = std::max(1, topo.total_nodes() / npm);
  const double t0 = static_cast<double>(model.train_end_ms) / 60000.0;
  const double t1 = static_cast<double>(trace.t_end_ms) / 60000.0;

  std::vector<std::vector<double>> fails(
      static_cast<std::size_t>(nparts));
  std::size_t total_fails = 0;
  for (const auto& f : trace.faults) {
    if (f.fail_time_ms < model.train_end_ms) continue;
    // System-scope faults (no midplane) sit outside the per-partition
    // waste sweep, as do the advisor's system-partition (-1) directives.
    if (f.initiating_node < 0) continue;
    const std::int32_t p = f.initiating_node / npm;
    if (p >= nparts) continue;
    fails[static_cast<std::size_t>(p)].push_back(
        static_cast<double>(f.fail_time_ms) / 60000.0);
    ++total_fails;
  }
  for (auto& v : fails) std::sort(v.begin(), v.end());

  struct Point {
    const char* label;
    double C;
  };
  const Point points[] = {{"C=1min", 1.0}, {"C=10s", 1.0 / 6.0}};
  // Static baseline: Young's interval at the *realised* aggregate
  // per-partition MTTF — the best single fixed interval an operator with
  // hindsight (but no predictor) could have chosen.
  const double mttf_static =
      total_fails > 0
          ? (t1 - t0) * static_cast<double>(nparts) /
                static_cast<double>(total_fails)
          : 1.0e9;

  bool adaptive_wins = true;
  for (const Point& pt : points) {
    ckpt::CkptParams prm;
    prm.C = pt.C;
    prm.R = 5.0;
    prm.D = 1.0;
    prm.mttf = mttf_static;
    const double t_static = ckpt::young_interval(prm);

    double wall_a = 0.0, useful_a = 0.0, wall_s = 0.0, useful_s = 0.0;
    std::uint64_t proactive = 0;
    for (std::int32_t p = 0; p < nparts; ++p) {
      ckpt::ScheduleSimConfig sc;
      sc.params = prm;
      sc.t_begin = t0;
      sc.t_end = t1;
      sc.interval = interval_at(ad, pt.C, ad.params.mttf);
      for (const auto& u : sched.updates) {
        if (u.partition != p) continue;
        const double ut = static_cast<double>(u.time_ms) / 60000.0;
        const double iv = interval_at(ad, pt.C, u.est_mttf_min);
        if (ut <= t0)
          sc.interval = iv;  // learned during training: start there
        else
          sc.changes.push_back({ut, iv});
      }
      for (const auto& d : sched.directives) {
        if (d.partition != p || d.issue_time_ms < model.train_end_ms)
          continue;
        sc.proactive.push_back(
            static_cast<double>(d.issue_time_ms) / 60000.0);
      }
      sc.failures = fails[static_cast<std::size_t>(p)];
      const auto ra = ckpt::simulate_schedule(sc);
      wall_a += ra.wall_time;
      useful_a += ra.useful_work;
      proactive += ra.proactive_taken;

      ckpt::ScheduleSimConfig ss;
      ss.params = prm;
      ss.t_begin = t0;
      ss.t_end = t1;
      ss.interval = t_static;
      ss.failures = fails[static_cast<std::size_t>(p)];
      const auto rs = ckpt::simulate_schedule(ss);
      wall_s += rs.wall_time;
      useful_s += rs.useful_work;
    }
    const double waste_a = wall_a > 0.0 ? 1.0 - useful_a / wall_a : 0.0;
    const double waste_s = wall_s > 0.0 ? 1.0 - useful_s / wall_s : 0.0;
    const double gain =
        waste_s > 0.0 ? (waste_s - waste_a) / waste_s * 100.0 : 0.0;
    char line[160];
    std::snprintf(line, sizeof line,
                  "%s: static waste %.3f%% (T=%.1f min), adaptive waste "
                  "%.3f%%, gain %.1f%% (%llu proactive ckpts)\n",
                  pt.label, waste_s * 100.0, t_static, waste_a * 100.0, gain,
                  static_cast<unsigned long long>(proactive));
    std::cout << line;
    if (waste_a >= waste_s) adaptive_wins = false;
  }
  std::cout << total_fails << " eval-window failures across " << nparts
            << " partitions (";
  for (std::int32_t p = 0; p < nparts; ++p)
    std::cout << (p ? " " : "") << fails[static_cast<std::size_t>(p)].size();
  std::cout << "); directives " << m.directives << " (hits " << sched.hits
            << ", misses " << sched.misses << ")\n";

  if (flags.count("check") && flags.at("check") != "0" && !adaptive_wins) {
    std::cerr << "FAIL: adaptive schedule did not beat the static baseline "
                 "at every cost point\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    const auto flags = parse_flags(argc, argv, 2);
    if (cmd == "generate") return cmd_generate(flags);
    if (cmd == "train") return cmd_train(flags);
    if (cmd == "inspect") return cmd_inspect(flags);
    if (cmd == "predict") return cmd_predict(flags);
    if (cmd == "serve") return cmd_serve(flags);
    if (cmd == "chaos") return cmd_chaos(flags);
    if (cmd == "advise") return cmd_advise(flags);
    if (cmd == "mine") return cmd_mine(flags);
  } catch (const std::out_of_range&) {
    std::cerr << "missing required flag for '" << cmd << "'\n";
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
