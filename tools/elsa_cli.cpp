// elsa — command-line frontend for the toolkit.
//
//   elsa generate --system bluegene|mercury --days N [--seed S] --out LOG
//       Generate a synthetic campaign and write it as a RAS text log.
//
//   elsa train --system bluegene|mercury --log LOG [--method hybrid|signal|dm]
//              [--train-days N] --out MODEL
//       Run the offline phase on a RAS log and persist the learned model.
//
//   elsa inspect --model MODEL
//       Summarise a model: templates, signal classes, chains.
//
//   elsa predict --system bluegene|mercury --log LOG --model MODEL
//       Stream a RAS log through the online engine and print alarms.
//
//   elsa serve --system bluegene|mercury --log LOG --model MODEL
//              [--shards N] [--speedup X] [--shed 1]
//       Replay a RAS log through the multi-threaded sharded prediction
//       service (bounded ingest queue, one engine per topology shard),
//       print alarms as they are issued, and report serving metrics.
//       --speedup X replays at X trace-seconds per wall-second; 0 (the
//       default) replays as fast as possible.
//
//   elsa chaos --system bluegene|mercury --log LOG --model MODEL
//              [--plan SPEC|all|none] [--seed S] [--shards N]
//              [--policy block|drop-oldest|shed] [--speedup X]
//       Chaos-soak the serving layer: replay the log through a seeded
//       fault injector (drops, duplicates, corruption, reordering, clock
//       skew) and a fault plan wired into the shard workers (stalls,
//       worker kills), with a fast watchdog. Prints injector stats and
//       serve metrics, then verifies the conservation invariant
//       ingested == processed + quarantined + shed; exit 1 if violated.
//
// The --system flag supplies the machine topology (real deployments would
// read it from the site's configuration database).

#include <cstring>
#include <iostream>
#include <map>
#include <string>

#include <atomic>
#include <chrono>
#include <thread>

#include "elsa/model_io.hpp"
#include "elsa/online.hpp"
#include "faultinject/injector.hpp"
#include "faultinject/plan.hpp"
#include "elsa/pipeline.hpp"
#include "elsa/report.hpp"
#include "serve/replayer.hpp"
#include "serve/service.hpp"
#include "simlog/logio.hpp"
#include "simlog/scenario.hpp"
#include "util/ascii.hpp"
#include "util/strings.hpp"

namespace {

using namespace elsa;

int usage() {
  std::cerr
      << "usage:\n"
         "  elsa generate --system bluegene|mercury --days N [--seed S] "
         "--out LOG\n"
         "  elsa train    --system bluegene|mercury --log LOG "
         "[--method hybrid|signal|dm] [--train-days N] --out MODEL\n"
         "  elsa inspect  --model MODEL\n"
         "  elsa predict  --system bluegene|mercury --log LOG --model MODEL "
         "[--max-alarms N]\n"
         "  elsa serve    --system bluegene|mercury --log LOG --model MODEL "
         "[--shards N] [--speedup X] [--shed 1] [--max-alarms N]\n"
         "  elsa chaos    --system bluegene|mercury --log LOG --model MODEL "
         "[--plan SPEC|all|none] [--seed S] [--shards N] "
         "[--policy block|drop-oldest|shed] [--speedup X]\n";
  return 2;
}

std::map<std::string, std::string> parse_flags(int argc, char** argv,
                                               int first) {
  std::map<std::string, std::string> flags;
  for (int i = first; i + 1 < argc; i += 2) {
    if (std::strncmp(argv[i], "--", 2) != 0) throw std::runtime_error(
        std::string("expected a --flag, got '") + argv[i] + "'");
    flags[argv[i] + 2] = argv[i + 1];
  }
  return flags;
}

topo::Topology topology_for(const std::string& system) {
  if (system == "bluegene") return topo::Topology::bluegene(4, 2, 8, 16);
  if (system == "mercury") return topo::Topology::cluster(891, 32);
  throw std::runtime_error("unknown --system '" + system +
                           "' (want bluegene or mercury)");
}

core::Method method_for(const std::string& name) {
  if (name == "hybrid" || name.empty()) return core::Method::Hybrid;
  if (name == "signal") return core::Method::SignalOnly;
  if (name == "dm") return core::Method::DataMining;
  throw std::runtime_error("unknown --method '" + name + "'");
}

simlog::Trace trace_from_log(const std::string& path,
                             const std::string& system) {
  const auto topology = topology_for(system);
  auto parsed = simlog::read_ras_log_file(path, topology);
  if (parsed.records.empty())
    throw std::runtime_error("no records parsed from " + path);
  simlog::Trace trace;
  trace.topology = topology;
  trace.t_begin_ms = parsed.records.front().time_ms;
  trace.t_end_ms = parsed.records.back().time_ms + 1;
  trace.records = std::move(parsed.records);
  if (parsed.malformed_lines > 0)
    std::cerr << "warning: " << parsed.malformed_lines
              << " malformed lines skipped\n";
  return trace;
}

int cmd_generate(const std::map<std::string, std::string>& flags) {
  const auto system = flags.at("system");
  const double days = std::stod(flags.at("days"));
  const std::uint64_t seed =
      flags.count("seed") ? std::stoull(flags.at("seed")) : 2012;
  auto scenario = system == "mercury"
                      ? simlog::make_mercury_scenario(seed, days)
                      : simlog::make_bluegene_scenario(seed, days);
  const auto trace = scenario.generator.generate(scenario.config);
  simlog::write_ras_log_file(flags.at("out"), trace.records, trace.topology);
  std::cout << "wrote " << trace.records.size() << " records ("
            << trace.faults.size() << " injected failures) to "
            << flags.at("out") << "\n";
  return 0;
}

int cmd_train(const std::map<std::string, std::string>& flags) {
  const auto trace = trace_from_log(flags.at("log"), flags.at("system"));
  const double span_days =
      static_cast<double>(trace.t_end_ms - trace.t_begin_ms) / 86'400'000.0;
  const double train_days = flags.count("train-days")
                                ? std::stod(flags.at("train-days"))
                                : span_days;
  const auto method = method_for(
      flags.count("method") ? flags.at("method") : std::string{});

  core::PipelineConfig cfg;
  const std::int64_t train_end =
      trace.t_begin_ms +
      static_cast<std::int64_t>(train_days * 86'400'000.0);
  const auto model = core::train_offline(trace, train_end, method, cfg);
  core::save_model_file(flags.at("out"), model);

  std::size_t predictive = 0;
  for (const auto& c : model.chains) predictive += c.predictive();
  std::cout << core::to_string(method) << " model trained on "
            << util::format_double(train_days, 1) << " days: "
            << model.helo.size() << " event types, " << model.chains.size()
            << " chains (" << predictive << " predictive) -> "
            << flags.at("out") << "\n";
  return 0;
}

int cmd_inspect(const std::map<std::string, std::string>& flags) {
  const auto model = core::load_model_file(flags.at("model"));
  std::cout << "model: " << core::to_string(model.method) << ", trained over "
            << util::human_duration(
                   static_cast<double>(model.train_end_ms -
                                       model.train_begin_ms) /
                   1000.0)
            << "\n";
  std::size_t by_class[3] = {0, 0, 0};
  for (const auto& p : model.profiles)
    ++by_class[static_cast<std::size_t>(p.cls)];
  std::cout << model.helo.size() << " event types: " << by_class[0]
            << " periodic, " << by_class[1] << " noise, " << by_class[2]
            << " silent\n";
  const auto sizes = core::sequence_size_report(model.chains);
  std::cout << model.chains.size() << " chains, mean length "
            << util::format_double(sizes.mean_size, 1) << "\n\n";
  for (const auto& c : model.chains) {
    if (!c.predictive()) continue;
    std::cout << "  [sup " << c.support << ", conf "
              << util::format_pct(c.confidence, 0) << ", lead "
              << util::human_duration(c.lead() * 10.0) << ", scope "
              << topo::to_string(c.location.scope) << "]\n";
    for (const auto& item : c.items)
      std::cout << "      " << model.helo.at(item.signal).text().substr(0, 70)
                << "\n";
  }
  return 0;
}

int cmd_predict(const std::map<std::string, std::string>& flags) {
  const auto trace = trace_from_log(flags.at("log"), flags.at("system"));
  auto model = core::load_model_file(flags.at("model"));
  const std::size_t max_alarms =
      flags.count("max-alarms") ? std::stoul(flags.at("max-alarms")) : 50;

  core::PipelineConfig cfg;
  core::EngineConfig ec = cfg.engine;
  ec.dt_ms = cfg.dt_ms;
  ec.use_location = model.method != core::Method::DataMining;
  ec.raw_event_matching = model.method == core::Method::DataMining;
  core::OnlineEngine engine(trace.topology, model.chains, model.profiles, ec);

  std::size_t seen = 0, printed = 0;
  for (const auto& rec : trace.records) {
    engine.feed(rec, model.helo.classify(rec.message));
    while (seen < engine.predictions().size()) {
      const auto& p = engine.predictions()[seen++];
      if (printed >= max_alarms) continue;
      ++printed;
      std::cout << p.issue_time_ms << "\tALARM\t"
                << (p.nodes.empty() ? std::string("SYSTEM")
                                    : trace.topology.code(p.nodes.front()))
                << "\t+" << p.lead_ms / 1000 << "s\t"
                << model.helo.at(p.tmpl).text() << "\n";
    }
  }
  engine.finish(trace.t_end_ms);
  std::cerr << engine.predictions().size() << " alarms ("
            << engine.stats().duplicates_suppressed
            << " duplicates suppressed), mean analysis window "
            << util::format_double(engine.stats().mean_analysis_ms(), 1)
            << " ms\n";
  return 0;
}

int cmd_serve(const std::map<std::string, std::string>& flags) {
  const auto trace = trace_from_log(flags.at("log"), flags.at("system"));
  const auto model = core::load_model_file(flags.at("model"));
  const std::size_t max_alarms =
      flags.count("max-alarms") ? std::stoul(flags.at("max-alarms")) : 50;

  serve::ServiceConfig scfg;  // zero-cost model: latency is measured, not simulated
  if (flags.count("shards")) scfg.shards = std::stoul(flags.at("shards"));
  scfg.engine.use_location = model.method != core::Method::DataMining;
  scfg.engine.raw_event_matching = model.method == core::Method::DataMining;
  serve::PredictionService service(trace.topology, model, scfg);

  serve::ReplayOptions ro;
  if (flags.count("speedup")) ro.speedup = std::stod(flags.at("speedup"));
  ro.shed = flags.count("shed") && flags.at("shed") != "0";
  const serve::TraceReplayer replayer(trace, ro);

  // Feed from a producer thread; stream alarms from this one.
  std::atomic<bool> done{false};
  std::size_t accepted = 0;
  std::thread producer([&] {
    accepted = replayer.replay_into(service);
    done.store(true);
  });

  std::vector<core::Prediction> alarms;
  std::size_t printed = 0;
  const auto print_alarms = [&] {
    service.poll_alarms(alarms);
    for (const auto& p : alarms) {
      if (printed >= max_alarms) break;
      ++printed;
      std::cout << p.issue_time_ms << "\tALARM\t"
                << (p.nodes.empty() ? std::string("SYSTEM")
                                    : trace.topology.code(p.nodes.front()))
                << "\t+" << p.lead_ms / 1000 << "s\t"
                << model.helo.at(p.tmpl).text() << "\n";
    }
    alarms.clear();
  };
  while (!done.load()) {
    print_alarms();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  producer.join();
  service.finish(trace.t_end_ms);
  print_alarms();
  std::cerr << accepted << " records accepted\n";

  std::cerr << service.metrics_report();
  std::cerr << service.predictions().size() << " alarms total across "
            << service.shards() << " shards\n";
  return 0;
}

serve::OverflowPolicy policy_for(const std::string& name) {
  if (name == "block" || name.empty()) return serve::OverflowPolicy::kBlock;
  if (name == "drop-oldest") return serve::OverflowPolicy::kDropOldest;
  if (name == "shed") return serve::OverflowPolicy::kShed;
  throw std::runtime_error("unknown --policy '" + name +
                           "' (want block, drop-oldest or shed)");
}

int cmd_chaos(const std::map<std::string, std::string>& flags) {
  const auto trace = trace_from_log(flags.at("log"), flags.at("system"));
  const auto model = core::load_model_file(flags.at("model"));
  const std::uint64_t seed =
      flags.count("seed") ? std::stoull(flags.at("seed")) : 42;
  const auto plan = faultinject::FaultPlan::parse(
      flags.count("plan") ? flags.at("plan") : std::string("all"), seed);

  serve::ServiceConfig scfg;
  if (flags.count("shards")) scfg.shards = std::stoul(flags.at("shards"));
  scfg.engine.use_location = model.method != core::Method::DataMining;
  scfg.engine.raw_event_matching = model.method == core::Method::DataMining;
  scfg.overflow =
      policy_for(flags.count("policy") ? flags.at("policy") : std::string{});
  // A soak wants the watchdog to bite within the run, not after 2 s of
  // real time: scan fast, trip fast.
  scfg.watchdog_interval_ms = 20;
  scfg.watchdog_deadline_ms = 250;
  scfg.faults = &plan;
  serve::PredictionService service(trace.topology, model, scfg);

  serve::ReplayOptions ro;
  if (flags.count("speedup")) ro.speedup = std::stod(flags.at("speedup"));
  // Shed + bounded retry exercises the full degradation surface when the
  // policy is shed; block/drop-oldest exercise theirs through submit().
  ro.shed = scfg.overflow == serve::OverflowPolicy::kShed;
  ro.max_retries = 3;
  const serve::TraceReplayer replayer(trace, ro);

  faultinject::FaultInjector injector(plan);
  std::cerr << "chaos plan (seed " << seed << "): " << plan.to_string()
            << "\n";
  const std::size_t accepted = replayer.replay_into(service, &injector);
  service.finish(trace.t_end_ms);

  const auto& is = injector.stats();
  std::cerr << "injector    seen " << is.seen << ", delivered " << is.delivered
            << ", dropped " << is.dropped << ", duplicated " << is.duplicated
            << ", corrupted " << is.corrupted << ", reordered " << is.reordered
            << ", skewed " << is.skewed << "\n";
  std::cerr << accepted << " records accepted\n" << service.metrics_report();
  std::cerr << service.predictions().size() << " alarms total across "
            << service.shards() << " shards\n";

  const auto m = service.metrics();
  const bool tap_ok = is.seen + is.duplicated == is.delivered + is.dropped;
  if (!tap_ok) {
    std::cerr << "FAIL: injector conservation violated (seen + duplicated != "
                 "delivered + dropped)\n";
    return 1;
  }
  if (!m.records_conserved()) {
    std::cerr << "FAIL: record conservation violated: ingested " << m.ingested
              << " != processed " << m.records_out << " + quarantined "
              << m.quarantined << " + shed " << m.shed << "\n";
    return 1;
  }
  std::cerr << "OK: conservation holds (ingested " << m.ingested
            << " == processed " << m.records_out << " + quarantined "
            << m.quarantined << " + shed " << m.shed << ")\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    const auto flags = parse_flags(argc, argv, 2);
    if (cmd == "generate") return cmd_generate(flags);
    if (cmd == "train") return cmd_train(flags);
    if (cmd == "inspect") return cmd_inspect(flags);
    if (cmd == "predict") return cmd_predict(flags);
    if (cmd == "serve") return cmd_serve(flags);
    if (cmd == "chaos") return cmd_chaos(flags);
  } catch (const std::out_of_range&) {
    std::cerr << "missing required flag for '" << cmd << "'\n";
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
