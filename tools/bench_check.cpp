// bench_check: the benchmark-regression gate. Compares a freshly emitted
// BENCH_*.json against a committed baseline and exits non-zero when any
// bench's throughput falls more than the tolerance below its baseline (or
// disappears entirely). Latency drift warns but never fails — CI tail
// latency is noise.
//
// --cores N makes the gate core-count aware: a "scaling=AvB" ratio row is
// only gated when the runner has at least A cores — on fewer, the A-way
// configuration multiplexes onto the same CPUs, the ratio collapses to
// ~1x, and gating it would fail every healthy run on a small runner. Each
// skipped row is reported as a ::notice workflow command so the skip is
// visible in the job log, never silent. Pass the runner's own count
// (`--cores "$(nproc)"`); omit the flag to gate every row unconditionally.
//
// Usage: bench_check --baseline FILE --current FILE [--tol 0.15]
//                    [--cores N]
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_json.hpp"

int main(int argc, char** argv) {
  std::string baseline, current;
  double tol = 0.15;
  std::size_t cores = 0;  // 0 = gate everything
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--baseline") == 0) baseline = argv[i + 1];
    else if (std::strcmp(argv[i], "--current") == 0) current = argv[i + 1];
    else if (std::strcmp(argv[i], "--tol") == 0) tol = std::stod(argv[i + 1]);
    else if (std::strcmp(argv[i], "--cores") == 0)
      cores = std::strtoul(argv[i + 1], nullptr, 10);
    else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  if (baseline.empty() || current.empty()) {
    std::fprintf(stderr,
                 "usage: bench_check --baseline FILE --current FILE "
                 "[--tol 0.15] [--cores N]\n");
    return 2;
  }

  try {
    auto base = elsa::benchjson::read_file(baseline);
    auto cur = elsa::benchjson::read_file(current);
    if (cores > 0) {
      // Filter both sides: a baseline-only scaling row must not read as
      // "missing bench", and a current-only one must not warn as new.
      const auto skipped = elsa::benchjson::drop_unsupported(base, cores);
      (void)elsa::benchjson::drop_unsupported(cur, cores);
      for (const auto& name : skipped)
        std::printf(
            "::notice title=bench_check::skipped %s — needs %zu cores, "
            "runner has %zu\n",
            name.c_str(), elsa::benchjson::required_cores(name), cores);
    }
    const auto rep = elsa::benchjson::compare(base, cur, tol);
    std::fputs(elsa::benchjson::format(rep).c_str(),
               rep.ok() ? stdout : stderr);
    return rep.ok() ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_check: %s\n", e.what());
    return 2;
  }
}
