// bench_check: the benchmark-regression gate. Compares a freshly emitted
// BENCH_*.json against a committed baseline and exits non-zero when any
// bench's throughput falls more than the tolerance below its baseline (or
// disappears entirely). Latency drift warns but never fails — CI tail
// latency is noise.
//
// Usage: bench_check --baseline FILE --current FILE [--tol 0.15]
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_json.hpp"

int main(int argc, char** argv) {
  std::string baseline, current;
  double tol = 0.15;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--baseline") == 0) baseline = argv[i + 1];
    else if (std::strcmp(argv[i], "--current") == 0) current = argv[i + 1];
    else if (std::strcmp(argv[i], "--tol") == 0) tol = std::stod(argv[i + 1]);
    else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  if (baseline.empty() || current.empty()) {
    std::fprintf(stderr,
                 "usage: bench_check --baseline FILE --current FILE "
                 "[--tol 0.15]\n");
    return 2;
  }

  try {
    const auto base = elsa::benchjson::read_file(baseline);
    const auto cur = elsa::benchjson::read_file(current);
    const auto rep = elsa::benchjson::compare(base, cur, tol);
    std::fputs(elsa::benchjson::format(rep).c_str(),
               rep.ok() ? stdout : stderr);
    return rep.ok() ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_check: %s\n", e.what());
    return 2;
  }
}
