#include "bench_json.hpp"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace elsa::benchjson {

namespace {

std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

/// Minimal recursive-descent reader for the flat BENCH schema. Not a
/// general JSON parser: strings carry no escapes the emitter never writes,
/// and values are strings, numbers or one level of nested object — exactly
/// the grammar to_json() produces, accepted tolerantly (unknown keys and
/// any key order).
class Reader {
 public:
  explicit Reader(const std::string& text) : s_(text) {}

  BenchMap document() {
    skip_ws();
    expect('{');
    BenchMap benches;
    bool schema_ok = false;
    bool first = true;
    while (!peek_is('}')) {
      if (!first) expect(',');
      first = false;
      const std::string key = string_lit();
      skip_ws();
      expect(':');
      if (key == "schema") {
        if (string_lit() != kSchema)
          throw std::runtime_error("bench json: unsupported schema");
        schema_ok = true;
      } else if (key == "benches") {
        benches = bench_object();
      } else {
        skip_value();
      }
      skip_ws();
    }
    expect('}');
    if (!schema_ok)
      throw std::runtime_error("bench json: missing schema marker");
    return benches;
  }

 private:
  void skip_ws() {
    while (p_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[p_])))
      ++p_;
  }

  bool peek_is(char c) {
    skip_ws();
    return p_ < s_.size() && s_[p_] == c;
  }

  void expect(char c) {
    skip_ws();
    if (p_ >= s_.size() || s_[p_] != c)
      throw std::runtime_error(std::string("bench json: expected '") + c +
                               "' at offset " + std::to_string(p_));
    ++p_;
  }

  std::string string_lit() {
    expect('"');
    std::string out;
    while (p_ < s_.size() && s_[p_] != '"') out += s_[p_++];
    expect('"');
    return out;
  }

  double number_lit() {
    skip_ws();
    std::size_t end = p_;
    while (end < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[end])) ||
            s_[end] == '-' || s_[end] == '+' || s_[end] == '.' ||
            s_[end] == 'e' || s_[end] == 'E'))
      ++end;
    if (end == p_) throw std::runtime_error("bench json: expected a number");
    const double v = std::stod(s_.substr(p_, end - p_));
    p_ = end;
    return v;
  }

  /// Skip a string, number or flat object we don't care about.
  void skip_value() {
    skip_ws();
    if (peek_is('"')) {
      string_lit();
    } else if (peek_is('{')) {
      expect('{');
      int depth = 1;
      while (p_ < s_.size() && depth > 0) {
        if (s_[p_] == '{') ++depth;
        if (s_[p_] == '}') --depth;
        ++p_;
      }
    } else {
      number_lit();
    }
  }

  BenchMap bench_object() {
    expect('{');
    BenchMap out;
    bool first = true;
    while (!peek_is('}')) {
      if (!first) expect(',');
      first = false;
      const std::string name = string_lit();
      skip_ws();
      expect(':');
      out[name] = point_object();
      skip_ws();
    }
    expect('}');
    return out;
  }

  BenchPoint point_object() {
    expect('{');
    BenchPoint pt;
    bool first = true;
    while (!peek_is('}')) {
      if (!first) expect(',');
      first = false;
      const std::string key = string_lit();
      skip_ws();
      expect(':');
      const double v = number_lit();
      if (key == "items_per_sec") pt.items_per_sec = v;
      else if (key == "p50_us") pt.p50_us = v;
      else if (key == "p99_us") pt.p99_us = v;
      // unknown numeric keys tolerated (forward compatibility)
      skip_ws();
    }
    expect('}');
    return pt;
  }

  const std::string& s_;
  std::size_t p_ = 0;
};

}  // namespace

std::string to_json(const BenchMap& benches) {
  std::ostringstream out;
  out << "{\n  \"schema\": \"" << kSchema << "\",\n  \"benches\": {";
  bool first = true;
  for (const auto& [name, pt] : benches) {
    if (!first) out << ",";
    first = false;
    out << "\n    \"" << name << "\": {\"items_per_sec\": "
        << num(pt.items_per_sec) << ", \"p50_us\": " << num(pt.p50_us)
        << ", \"p99_us\": " << num(pt.p99_us) << "}";
  }
  out << "\n  }\n}\n";
  return out.str();
}

bool write_file(const std::string& path, const BenchMap& benches) {
  std::ofstream out(path, std::ios::binary);
  if (!out.good()) return false;
  out << to_json(benches);
  return out.good();
}

BenchMap parse(const std::string& json) { return Reader(json).document(); }

BenchMap read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good())
    throw std::runtime_error("bench json: cannot read " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse(ss.str());
}

CompareReport compare(const BenchMap& baseline, const BenchMap& current,
                      double tolerance) {
  CompareReport rep;
  char buf[256];
  for (const auto& [name, base] : baseline) {
    const auto it = current.find(name);
    if (it == current.end()) {
      rep.failures.push_back("missing bench: " + name +
                             " (present in baseline, absent from run)");
      continue;
    }
    const BenchPoint& cur = it->second;
    const double floor = base.items_per_sec * (1.0 - tolerance);
    if (cur.items_per_sec < floor) {
      // %.6g keeps throughput rows readable (no exponent below 1e6-ish)
      // while still distinguishing scaling-ratio rows like 0.62 vs 2.36,
      // which %.0f would both print as a meaningless rounded integer.
      std::snprintf(buf, sizeof buf,
                    "%s: %.6g items/s < floor %.6g (baseline %.6g, "
                    "tolerance %.0f%%)",
                    name.c_str(), cur.items_per_sec, floor,
                    base.items_per_sec, tolerance * 100.0);
      rep.failures.emplace_back(buf);
    }
    // Latency is warn-only: tail percentiles on shared CI hardware are too
    // noisy to gate on, but a big jump is worth a look.
    if (base.p99_us > 0.0 && cur.p99_us > base.p99_us * (1.0 + tolerance)) {
      std::snprintf(buf, sizeof buf, "%s: p99 %.0f us above baseline %.0f us",
                    name.c_str(), cur.p99_us, base.p99_us);
      rep.warnings.emplace_back(buf);
    }
  }
  for (const auto& [name, pt] : current) {
    (void)pt;
    if (!baseline.count(name))
      rep.warnings.push_back("new bench (no baseline yet): " + name);
  }
  return rep;
}

std::string format(const CompareReport& report) {
  std::ostringstream out;
  for (const auto& f : report.failures) out << "FAIL " << f << "\n";
  for (const auto& w : report.warnings) out << "warn " << w << "\n";
  if (report.failures.empty()) out << "bench-check: OK\n";
  return out.str();
}

std::size_t required_cores(const std::string& bench_name) {
  const std::size_t at = bench_name.rfind("scaling=");
  if (at == std::string::npos) return 1;
  std::size_t i = at + 8;  // past "scaling="
  std::size_t hi = 0;
  bool any = false;
  while (i < bench_name.size() && bench_name[i] >= '0' &&
         bench_name[i] <= '9') {
    hi = hi * 10 + static_cast<std::size_t>(bench_name[i] - '0');
    any = true;
    ++i;
  }
  // Anything not shaped like "scaling=<A>v..." gates unconditionally.
  if (!any || i >= bench_name.size() || bench_name[i] != 'v') return 1;
  return hi > 0 ? hi : 1;
}

std::vector<std::string> drop_unsupported(BenchMap& m, std::size_t cores) {
  std::vector<std::string> dropped;
  for (auto it = m.begin(); it != m.end();) {
    if (required_cores(it->first) > cores) {
      dropped.push_back(it->first);
      it = m.erase(it);
    } else {
      ++it;
    }
  }
  return dropped;
}

}  // namespace elsa::benchjson
