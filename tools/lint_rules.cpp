#include "lint_rules.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <initializer_list>
#include <map>
#include <set>
#include <sstream>
#include <tuple>

namespace elsa::lint {

namespace {

bool is_word(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Copy of `contents` with comments and string/char-literal interiors
/// blanked to spaces (newlines preserved), so token rules never fire on
/// documentation or test strings. Handles //, /*...*/, "...", '...' and
/// R"delim(...)delim"; digit separators (1'000'000) stay untouched.
std::string strip_code(const std::string& in) {
  enum class St : std::uint8_t { Normal, Line, Block, Str, Chr, Raw };
  St st = St::Normal;
  std::string out;
  out.reserve(in.size());
  std::string raw_close;  // ")delim\"" for the current raw string
  for (std::size_t i = 0; i < in.size(); ++i) {
    const char c = in[i];
    const char n = i + 1 < in.size() ? in[i + 1] : '\0';
    switch (st) {
      case St::Normal:
        if (c == '/' && n == '/') {
          st = St::Line;
          out += "  ";
          ++i;
        } else if (c == '/' && n == '*') {
          st = St::Block;
          out += "  ";
          ++i;
        } else if (c == 'R' && n == '"' && (i == 0 || !is_word(in[i - 1]))) {
          // Raw string: find the delimiter between " and (.
          std::size_t p = i + 2;
          std::string delim;
          while (p < in.size() && in[p] != '(') delim += in[p++];
          raw_close = ")" + delim + "\"";
          st = St::Raw;
          out += ' ';
          out += ' ';
          for (std::size_t k = i + 2; k <= p && k < in.size(); ++k)
            out += in[k] == '\n' ? '\n' : ' ';
          i = p;  // consumed through '('
        } else if (c == '"') {
          st = St::Str;
          out += ' ';
        } else if (c == '\'' && (i == 0 || !is_word(in[i - 1]))) {
          st = St::Chr;
          out += ' ';
        } else {
          out += c;
        }
        break;
      case St::Line:
        if (c == '\n') {
          st = St::Normal;
          out += '\n';
        } else {
          out += ' ';
        }
        break;
      case St::Block:
        if (c == '*' && n == '/') {
          st = St::Normal;
          out += "  ";
          ++i;
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case St::Str:
        if (c == '\\' && n != '\0') {
          out += "  ";
          ++i;
        } else if (c == '"') {
          st = St::Normal;
          out += ' ';
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case St::Chr:
        if (c == '\\' && n != '\0') {
          out += "  ";
          ++i;
        } else if (c == '\'') {
          st = St::Normal;
          out += ' ';
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case St::Raw:
        if (in.compare(i, raw_close.size(), raw_close) == 0) {
          for (std::size_t k = 0; k < raw_close.size(); ++k) out += ' ';
          i += raw_close.size() - 1;
          st = St::Normal;
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
    }
  }
  return out;
}

std::vector<std::string> split_lines(const std::string& s) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : s) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  lines.push_back(cur);
  return lines;
}

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

bool ends_with(const std::string& s, const std::string& suf) {
  return s.size() >= suf.size() &&
         s.compare(s.size() - suf.size(), suf.size(), suf) == 0;
}

// ---------------------------------------------------------------------------
// Module layering

/// Allowed cross-module includes, lowest layer first. A module may always
/// include itself; anything else must be listed here. simlog/signalkit and
/// the other mid-layers can never see serve/, which keeps the serving tier
/// a pure consumer of the analysis core.
const std::map<std::string, std::set<std::string>>& layer_deps() {
  static const std::map<std::string, std::set<std::string>> deps = {
      {"util", {}},
      {"topology", {"util"}},
      {"simlog", {"util", "topology"}},
      {"helo", {"util"}},
      {"signalkit", {"util"}},
      {"ckpt", {"util"}},
      {"elsa", {"util", "topology", "simlog", "helo", "signalkit", "ckpt"}},
      {"faultinject", {"util", "topology", "simlog"}},
      {"serve",
       {"util", "topology", "simlog", "helo", "signalkit", "ckpt", "elsa",
        "faultinject"}},
      {"advisor",
       {"util", "topology", "simlog", "helo", "signalkit", "ckpt", "elsa",
        "faultinject", "serve"}},
      {"mining",
       {"util", "topology", "simlog", "helo", "signalkit", "ckpt", "elsa",
        "faultinject", "serve"}},
  };
  return deps;
}

/// Module a path belongs to: the component after "src", else the first
/// component — empty when the path maps to no known module.
std::string module_of(const std::string& path) {
  std::vector<std::string> parts;
  std::string cur;
  for (char c : path) {
    if (c == '/' || c == '\\') {
      if (!cur.empty()) parts.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) parts.push_back(cur);
  const auto& deps = layer_deps();
  for (std::size_t i = 0; i + 1 < parts.size(); ++i) {
    if (parts[i] == "src" && deps.count(parts[i + 1])) return parts[i + 1];
  }
  if (parts.size() >= 2 && deps.count(parts.front())) return parts.front();
  return "";
}

// ---------------------------------------------------------------------------
// Suppression:  // elsa-lint: allow(<rule>): <reason>

struct Suppression {
  std::string rule;
  bool has_reason = false;
};

std::vector<Suppression> suppressions_on(const std::string& raw_line) {
  std::vector<Suppression> out;
  const std::string marker = "elsa-lint:";
  std::size_t pos = 0;
  while ((pos = raw_line.find(marker, pos)) != std::string::npos) {
    std::size_t p = pos + marker.size();
    while (p < raw_line.size() && raw_line[p] == ' ') ++p;
    const std::string allow = "allow(";
    if (raw_line.compare(p, allow.size(), allow) == 0) {
      p += allow.size();
      const std::size_t close = raw_line.find(')', p);
      if (close != std::string::npos) {
        Suppression s;
        s.rule = raw_line.substr(p, close - p);
        std::size_t q = close + 1;
        while (q < raw_line.size() && (raw_line[q] == ' ' || raw_line[q] == ':'))
          ++q;
        s.has_reason = raw_line.find(':', close) != std::string::npos &&
                       q < raw_line.size() && !trim(raw_line.substr(q)).empty();
        out.push_back(s);
      }
    }
    pos += marker.size();
  }
  return out;
}

/// True if line `idx` (0-based) or the 3 lines above carry a matching
/// allow() with a reason.
bool is_suppressed(const std::vector<std::string>& raw, std::size_t idx,
                   const std::string& rule) {
  const std::size_t lo = idx >= 3 ? idx - 3 : 0;
  for (std::size_t i = lo; i <= idx; ++i) {
    for (const Suppression& s : suppressions_on(raw[i])) {
      if (s.rule == rule && s.has_reason) return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Token scanning helpers

/// Find calls of `name` (optionally std:: or :: qualified, nothing else)
/// in a comment-stripped line; returns byte offsets of the identifier.
std::vector<std::size_t> find_banned_calls(const std::string& code,
                                           const std::string& name) {
  std::vector<std::size_t> hits;
  std::size_t pos = 0;
  while ((pos = code.find(name, pos)) != std::string::npos) {
    const std::size_t start = pos;
    const std::size_t end = pos + name.size();
    pos = end;
    if (end < code.size() && is_word(code[end])) continue;  // lgamma_r etc.
    // Must be a call: next non-space is '('.
    std::size_t p = end;
    while (p < code.size() && (code[p] == ' ' || code[p] == '\t')) ++p;
    if (p >= code.size() || code[p] != '(') continue;
    // Inspect the qualifier. Bare, std:: and global :: are the libc
    // entry points; any other qualifier (obj., other_ns::, ->) is a
    // different function and legal.
    if (start == 0) {
      hits.push_back(start);
      continue;
    }
    const char prev = code[start - 1];
    if (is_word(prev) || prev == '.') continue;  // member/part of identifier
    if (prev == '>') continue;                   // ptr->rand()
    if (prev == ':') {
      if (start < 2 || code[start - 2] != ':') continue;  // lone ':' — label?
      std::size_t q = start - 2;  // points at first ':' of "::"
      // Walk the qualifier identifier before "::".
      std::size_t qe = q;
      while (qe > 0 && is_word(code[qe - 1])) --qe;
      const std::string qual = code.substr(qe, q - qe);
      if (!qual.empty() && qual != "std") continue;  // other namespace
    }
    hits.push_back(start);
  }
  return hits;
}

/// Occurrences of `token` with word boundaries on both sides.
std::vector<std::size_t> find_token(const std::string& code,
                                    const std::string& token) {
  std::vector<std::size_t> hits;
  std::size_t pos = 0;
  while ((pos = code.find(token, pos)) != std::string::npos) {
    const std::size_t start = pos;
    const std::size_t end = pos + token.size();
    pos = end;
    if (start > 0 && is_word(code[start - 1])) continue;
    if (end < code.size() && is_word(code[end])) continue;
    hits.push_back(start);
  }
  return hits;
}

/// Containers whose function-local `static` instances have repeatedly
/// turned out to be hidden shared mutable state (the bench_common.hpp
/// result-cache bug): flagged unless declared const/constexpr.
const std::set<std::string>& mutable_container_names() {
  static const std::set<std::string> names = {
      "map",      "unordered_map", "multimap", "unordered_multimap",
      "set",      "unordered_set", "multiset", "unordered_multiset",
      "vector",   "deque",         "list",     "forward_list",
      "string",   "basic_string"};
  return names;
}

/// Detect `static std::<container>... name ...` declarations that are not
/// const-qualified and not function declarations. `window` is the
/// comment-stripped text starting at the byte after the `static` token
/// (may span several joined lines so multi-line declarations parse).
bool is_mutable_static_container(const std::string& window) {
  std::size_t p = 0;
  const auto skip_ws = [&] {
    while (p < window.size() &&
           (window[p] == ' ' || window[p] == '\t'))
      ++p;
  };
  const auto read_word = [&] {
    std::string w;
    while (p < window.size() && is_word(window[p])) w += window[p++];
    return w;
  };

  // Specifiers between `static` and the type. const/constexpr make the
  // object immutable after its (thread-safe) dynamic initialization.
  for (;;) {
    skip_ws();
    const std::size_t mark = p;
    const std::string w = read_word();
    if (w == "const" || w == "constexpr") return false;
    if (w == "inline" || w == "thread_local" || w == "volatile") continue;
    p = mark;
    break;
  }

  // The type must be std::<container>.
  if (window.compare(p, 5, "std::") != 0) return false;
  p += 5;
  const std::string container = read_word();
  if (!mutable_container_names().count(container)) return false;

  // Balance template arguments, treating ">>" as two closes.
  skip_ws();
  if (p < window.size() && window[p] == '<') {
    int depth = 0;
    while (p < window.size()) {
      if (window[p] == '<') ++depth;
      else if (window[p] == '>' && --depth == 0) { ++p; break; }
      ++p;
    }
    if (depth != 0) return false;  // declaration continues past the window
  }

  // `const` after the type also makes it immutable.
  for (;;) {
    skip_ws();
    const std::size_t mark = p;
    const std::string w = read_word();
    if (w == "const") return false;
    if (w.empty()) { p = mark; break; }
    // First word after the type: the declared name (references/pointers to
    // the container get no special treatment — skip any sigils first).
    p = mark;
    break;
  }
  while (p < window.size() &&
         (window[p] == '&' || window[p] == '*' || window[p] == ' '))
    ++p;
  const std::string name = read_word();
  if (name.empty()) return false;

  // An identifier followed by '(' is a function declaration returning the
  // container (helo.hpp's `static std::vector<...> generalize(...)`) — a
  // different thing entirely.
  skip_ws();
  return p >= window.size() || window[p] != '(';
}

// ---------------------------------------------------------------------------
// Lock-graph analysis (lock-cycle / cv-wait-extra-lock / blocking-under-lock)
//
// A deliberately lexical whole-project pass: tokenize each file (comments
// and strings already stripped), track class/function/block scopes by
// brace nesting, and follow the held-lock set through every function body.
// Locks are identified as `Class::member` (or `file::name` for locals and
// free mutexes); acquisition edges come from three sources:
//   1. lexical nesting — a MutexLock (or .lock()) taken while another is
//      lexically held;
//   2. ELSA_REQUIRES on a function — its body starts with those locks held;
//   3. call sites — calling a method whose declaration carries
//      ELSA_EXCLUDES / ELSA_ACQUIRE (i.e. the callee takes that lock)
//      while a lock is held.
// Lambdas are *barriers*: a lambda body frequently runs on another thread
// (worker loops, deferred tasks), so locks held at the capture site are
// not considered held inside it.

/// One token: identifier-ish (identifiers, keywords, numbers) or a single
/// punctuation glyph ("::" and "->" kept whole). Preprocessor directive
/// lines are dropped entirely — include paths and macro bodies are not
/// acquisition events.
struct Tok {
  bool ident = false;
  std::string text;
  std::size_t line = 1;
};

std::vector<Tok> tokenize(const std::string& stripped) {
  std::vector<Tok> toks;
  std::size_t line = 1;
  bool directive = false;
  for (std::size_t i = 0; i < stripped.size(); ++i) {
    const char c = stripped[i];
    if (c == '\n') {
      ++line;
      directive = false;
      continue;
    }
    if (directive) continue;
    if (c == '#') {
      directive = true;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r') continue;
    if (is_word(c)) {
      std::string w;
      while (i < stripped.size() && is_word(stripped[i])) w += stripped[i++];
      --i;
      toks.push_back({true, std::move(w), line});
      continue;
    }
    const char n = i + 1 < stripped.size() ? stripped[i + 1] : '\0';
    if ((c == ':' && n == ':') || (c == '-' && n == '>')) {
      toks.push_back({false, std::string{c, n}, line});
      ++i;
      continue;
    }
    toks.push_back({false, std::string(1, c), line});
  }
  return toks;
}

bool is_control_kw(const std::string& t) {
  static const std::set<std::string> kw = {"if",   "while",  "for",  "switch",
                                          "do",   "else",   "try",  "catch",
                                          "case", "default", "return"};
  return kw.count(t) > 0;
}

bool is_annotation_macro(const std::string& t) {
  return t.rfind("ELSA_", 0) == 0;
}

struct Scope {
  enum Kind : std::uint8_t { kClass, kNamespace, kFunction, kLambda, kBlock };
  Kind kind = kBlock;
  std::string name;  ///< class name, or "Class::fn" / "fn" for functions
  std::string cls;   ///< enclosing class of a kFunction ("" for free fns)
  std::size_t sig_line = 0;   ///< line of the declaration's first token
  std::size_t open_line = 0;  ///< line of the opening brace
  std::size_t ann_floor = 0;  ///< line of the token before the declaration
  std::vector<std::string> requires_locks;  ///< raw ELSA_REQUIRES arg names
  // Pass-B payload:
  std::size_t held_floor = 0;
  std::vector<struct HeldLock> stash;  ///< kLambda barrier stash
};

struct HeldLock {
  std::string id;
  std::string file;
  std::size_t line = 0;
  std::size_t depth = 0;  ///< scopes.size() when acquired
  std::string var;        ///< MutexLock variable name ("" for direct locks)
};

/// Parse the identifier arguments of an annotation macro starting at the
/// "(" token `open`; returns raw names ("mu_", negations skipped).
std::vector<std::string> annotation_args(const std::vector<Tok>& t,
                                         std::size_t open) {
  std::vector<std::string> args;
  int depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (!t[i].ident) {
      if (t[i].text == "(") ++depth;
      else if (t[i].text == ")" && --depth == 0) break;
      continue;
    }
    if (depth == 1) args.push_back(t[i].text);
  }
  return args;
}

/// Brace-scope walker shared by the two lock-graph passes. step(i) must be
/// called for every token in order; it maintains the scope stack, paren
/// depth and statement starts, and reports scope opens/closes.
class ScopeWalker {
 public:
  explicit ScopeWalker(const std::vector<Tok>& toks) : t_(toks) {}

  struct Event {
    bool opened = false;
    bool closed = false;
    Scope closed_scope;  ///< valid when closed
  };

  Event step(std::size_t i) {
    Event ev;
    const Tok& tk = t_[i];
    if (tk.ident) return ev;
    if (tk.text == "(") {
      ++paren_;
    } else if (tk.text == ")") {
      if (paren_ > 0) --paren_;
    } else if (tk.text == ";") {
      if (paren_ == 0) stmt_ = i + 1;
    } else if (tk.text == "{") {
      scopes_.push_back(classify(i));
      stmt_ = i + 1;
      ev.opened = true;
    } else if (tk.text == "}") {
      if (!scopes_.empty()) {
        ev.closed = true;
        ev.closed_scope = std::move(scopes_.back());
        scopes_.pop_back();
      }
      stmt_ = i + 1;
    }
    return ev;
  }

  const std::vector<Scope>& scopes() const { return scopes_; }
  std::vector<Scope>& scopes() { return scopes_; }
  int paren() const { return paren_; }

  /// Innermost class name, if any.
  std::string ctx_class() const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind == Scope::kClass) return it->name;
      if (it->kind == Scope::kFunction && !it->cls.empty()) return it->cls;
    }
    return "";
  }

  /// Fully qualified context (namespaces + classes, outermost first), e.g.
  /// "elsa::serve::SpscRing". An out-of-class member definition
  /// (`void X::fn() { ... }`) contributes its class the same way an
  /// in-class body does, so accesses in both spellings fuse to one id.
  std::string ctx_qualified() const {
    std::string q;
    const auto append = [&q](const std::string& part) {
      if (part.empty()) return;
      if (!q.empty()) q += "::";
      q += part;
    };
    bool saw_class = false;
    for (const Scope& s : scopes_) {
      if (s.kind == Scope::kNamespace) {
        append(s.name);
      } else if (s.kind == Scope::kClass) {
        append(s.name);
        saw_class = true;
      } else if (s.kind == Scope::kFunction && !s.cls.empty() && !saw_class) {
        // Out-of-class definition: the `X::` qualifier is the class scope.
        append(s.cls);
        saw_class = true;
      }
    }
    return q;
  }

  bool in_code() const {
    for (const Scope& s : scopes_) {
      if (s.kind == Scope::kFunction || s.kind == Scope::kLambda) return true;
    }
    return false;
  }

 private:
  Scope classify(std::size_t open) const {
    Scope s;
    // A brace inside parentheses is expression context: a lambda body or a
    // braced initializer. Either way, a barrier scope.
    if (paren_ > 0) {
      s.kind = Scope::kLambda;
      return s;
    }
    const std::size_t lo = stmt_;
    if (lo >= open) return s;  // bare block
    // Annotation window bookkeeping for the effect pass: where the
    // declaration's tokens start/end, and a floor (the previous token's
    // line) so a marker above one function can never bleed into the next.
    s.sig_line = t_[lo].line;
    s.open_line = t_[open].line;
    s.ann_floor = lo > 0 ? t_[lo - 1].line : 0;
    // Control-flow statements own plain blocks.
    if (t_[lo].ident && is_control_kw(t_[lo].text)) return s;
    std::size_t first_paren = open;
    std::size_t last_class_ident = open;
    bool has_namespace = false;
    for (std::size_t i = lo; i < open; ++i) {
      const Tok& tk = t_[i];
      if (tk.ident && tk.text == "namespace") has_namespace = true;
      if (tk.ident && (tk.text == "class" || tk.text == "struct") &&
          (i == lo || !(t_[i - 1].ident && t_[i - 1].text == "enum")) &&
          i + 1 < open && t_[i + 1].ident) {
        // The name may be pushed right by an alignas-specifier:
        // `struct alignas(64) Cell {`.
        std::size_t j = i + 1;
        if (t_[j].text == "alignas" && j + 1 < open && !t_[j + 1].ident &&
            t_[j + 1].text == "(") {
          int d = 0;
          for (j = j + 1; j < open; ++j) {
            if (t_[j].ident) continue;
            if (t_[j].text == "(") ++d;
            else if (t_[j].text == ")" && --d == 0) { ++j; break; }
          }
        }
        if (j < open && t_[j].ident) last_class_ident = j;
      }
      // An alignas-specifier's parens are not a function parameter list.
      if (!tk.ident && tk.text == "(" && first_paren == open &&
          !(i > lo && t_[i - 1].ident && t_[i - 1].text == "alignas"))
        first_paren = i;
      // Lambda introducer: '[' at statement start or after (, comma, =,
      // return — but not '[[' attributes or array subscripts.
      if (!tk.ident && tk.text == "[") {
        const bool attr = i + 1 < open && !t_[i + 1].ident &&
                          t_[i + 1].text == "[";
        const bool intro =
            i == lo ||
            (!t_[i - 1].ident && (t_[i - 1].text == "(" ||
                                  t_[i - 1].text == "," ||
                                  t_[i - 1].text == "=")) ||
            (t_[i - 1].ident && t_[i - 1].text == "return");
        if (!attr && intro) {
          s.kind = Scope::kLambda;
          return s;
        }
      }
    }
    if (has_namespace) {
      s.kind = Scope::kNamespace;
      // Capture the (possibly nested, possibly anonymous) namespace name:
      // identifiers joined by "::" between `namespace` and the brace.
      for (std::size_t i = lo; i < open; ++i) {
        if (!(t_[i].ident && t_[i].text == "namespace")) continue;
        for (std::size_t j = i + 1; j < open; ++j) {
          if (t_[j].ident) {
            if (!s.name.empty()) s.name += "::";
            s.name += t_[j].text;
          } else if (t_[j].text != "::") {
            break;
          }
        }
        break;
      }
      return s;
    }
    if (last_class_ident < open && last_class_ident > lo &&
        first_paren > last_class_ident) {
      s.kind = Scope::kClass;
      s.name = t_[last_class_ident].text;
      return s;
    }
    if (first_paren < open && first_paren > lo && t_[first_paren - 1].ident) {
      s.kind = Scope::kFunction;
      const std::string fn = t_[first_paren - 1].text;
      if (first_paren >= 3 && !t_[first_paren - 2].ident &&
          t_[first_paren - 2].text == "::" && t_[first_paren - 3].ident) {
        s.cls = t_[first_paren - 3].text;
      } else {
        s.cls = ctx_class();
      }
      s.name = s.cls.empty() ? fn : s.cls + "::" + fn;
      // ELSA_REQUIRES on the definition: held on entry.
      for (std::size_t i = lo; i < open; ++i) {
        if (t_[i].ident && t_[i].text == "ELSA_REQUIRES" && i + 1 < open &&
            !t_[i + 1].ident && t_[i + 1].text == "(") {
          auto args = annotation_args(t_, i + 1);
          s.requires_locks.insert(s.requires_locks.end(), args.begin(),
                                  args.end());
        }
      }
      return s;
    }
    return s;  // plain / initializer block
  }

  const std::vector<Tok>& t_;
  std::vector<Scope> scopes_;
  int paren_ = 0;
  std::size_t stmt_ = 0;
};

struct LockDecl {
  std::string file;
  std::size_t line = 0;
};

/// Project-wide symbol tables feeding the body-analysis pass.
struct LockSymbols {
  std::map<std::string, LockDecl> locks;  ///< "Class::mu_" → decl site
  std::set<std::string> ring_vars;        ///< names of Ring-typed variables
  std::set<std::string> cv_vars;          ///< names of CondVar variables
  std::set<std::string> lock_classes;     ///< classes owning ≥1 Mutex
  /// "Class::method" → lock ids the callee acquires (ELSA_EXCLUDES/ACQUIRE).
  std::map<std::string, std::set<std::string>> fn_acquires;
  /// "Class::method" → lock ids held on entry (ELSA_REQUIRES, declarations).
  std::map<std::string, std::set<std::string>> fn_requires;
  std::map<std::string, std::string> var_cls;  ///< var name → owning class
};

std::string lock_id_for(const LockSymbols& syms, const std::string& ctx_cls,
                        const std::string& file, const std::string& name) {
  if (!ctx_cls.empty()) {
    const std::string id = ctx_cls + "::" + name;
    if (syms.locks.count(id)) return id;
  }
  const std::string fid = file + "::" + name;
  if (syms.locks.count(fid)) return fid;
  return ctx_cls.empty() ? fid : ctx_cls + "::" + name;
}

struct RawAnnotation {
  enum Kind : std::uint8_t { kAcquires, kRequires } kind = kAcquires;
  std::string cls;
  std::string fn;
  std::string file;
  std::vector<std::string> args;
};

/// Pass A1: mutex/ring/condvar declarations and function annotations.
void collect_decls(const std::string& path, const std::vector<Tok>& t,
                   LockSymbols& syms, std::vector<RawAnnotation>& anns) {
  ScopeWalker w(t);
  std::string cand, cand_cls;
  for (std::size_t i = 0; i < t.size(); ++i) {
    w.step(i);
    const Tok& tk = t[i];
    if (!tk.ident) {
      if (tk.text == ";" || tk.text == "{" || tk.text == "}") cand.clear();
      continue;
    }
    // Mutex declaration: `Mutex name ;|{|(|=` (not `class Mutex`, not
    // `Mutex&` parameters, not special members like `Mutex(const Mutex&)`).
    if (tk.text == "Mutex" && i + 2 < t.size() && t[i + 1].ident &&
        t[i + 1].text != "Mutex" && !t[i + 2].ident &&
        (t[i + 2].text == ";" || t[i + 2].text == "{" ||
         t[i + 2].text == "(" || t[i + 2].text == "=") &&
        (i == 0 || !(t[i - 1].ident && (t[i - 1].text == "class" ||
                                        t[i - 1].text == "struct")))) {
      const std::string ctx = w.ctx_class();
      const std::string id = (ctx.empty() ? path : ctx) + "::" + t[i + 1].text;
      if (!syms.locks.count(id)) syms.locks[id] = {path, tk.line};
      if (!ctx.empty()) syms.lock_classes.insert(ctx);
    }
    // Ring<...> declaration → remember the variable name.
    if (tk.text == "Ring" && i + 1 < t.size() && !t[i + 1].ident &&
        t[i + 1].text == "<") {
      int depth = 0;
      std::size_t j = i + 1;
      for (; j < t.size(); ++j) {
        if (t[j].ident) continue;
        if (t[j].text == "<") ++depth;
        else if (t[j].text == ">" && --depth == 0) { ++j; break; }
      }
      while (j < t.size() && !t[j].ident &&
             (t[j].text == "&" || t[j].text == "*"))
        ++j;
      if (j < t.size() && t[j].ident) syms.ring_vars.insert(t[j].text);
    }
    // CondVar declaration.
    if (tk.text == "CondVar" && i + 2 < t.size() && t[i + 1].ident &&
        t[i + 1].text != "CondVar" && !t[i + 2].ident && t[i + 2].text == ";" &&
        (i == 0 || !(t[i - 1].ident && t[i - 1].text == "class"))) {
      syms.cv_vars.insert(t[i + 1].text);
    }
    // Candidate function name for annotation attachment.
    if (i + 1 < t.size() && !t[i + 1].ident && t[i + 1].text == "(" &&
        !is_control_kw(tk.text) && !is_annotation_macro(tk.text)) {
      cand = tk.text;
      cand_cls = w.ctx_class();
      if (i >= 2 && !t[i - 1].ident && t[i - 1].text == "::" && t[i - 2].ident)
        cand_cls = t[i - 2].text;
    }
    if ((tk.text == "ELSA_EXCLUDES" || tk.text == "ELSA_ACQUIRE" ||
         tk.text == "ELSA_REQUIRES") &&
        i + 1 < t.size() && !t[i + 1].ident && t[i + 1].text == "(" &&
        !cand.empty()) {
      RawAnnotation a;
      a.kind = tk.text == "ELSA_REQUIRES" ? RawAnnotation::kRequires
                                          : RawAnnotation::kAcquires;
      a.cls = cand_cls;
      a.fn = cand;
      a.file = path;
      a.args = annotation_args(t, i + 1);
      anns.push_back(std::move(a));
    }
  }
}

/// Pass A2: variables typed as lock-owning classes (plain, pointer,
/// reference, unique_ptr<T>), so call sites can be resolved to classes.
void collect_vars(const std::string& path, const std::vector<Tok>& t,
                  LockSymbols& syms) {
  (void)path;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    const Tok& tk = t[i];
    if (!tk.ident) continue;
    if (tk.text == "unique_ptr" && !t[i + 1].ident && t[i + 1].text == "<" &&
        i + 4 < t.size() && t[i + 2].ident &&
        syms.lock_classes.count(t[i + 2].text) && !t[i + 3].ident &&
        t[i + 3].text == ">" && t[i + 4].ident) {
      syms.var_cls[t[i + 4].text] = t[i + 2].text;
      continue;
    }
    if (!syms.lock_classes.count(tk.text)) continue;
    if (i > 0 && t[i - 1].ident &&
        (t[i - 1].text == "class" || t[i - 1].text == "struct"))
      continue;  // the definition / a forward declaration, not a variable
    std::size_t j = i + 1;
    while (j < t.size() && !t[j].ident &&
           (t[j].text == "*" || t[j].text == "&"))
      ++j;
    if (j >= t.size() || !t[j].ident) continue;
    // Only treat `Class [*&] ident` as a declaration when the next token
    // ends a declarator, to avoid eating arbitrary expressions.
    if (j + 1 < t.size() && !t[j + 1].ident &&
        (t[j + 1].text == ";" || t[j + 1].text == "=" ||
         t[j + 1].text == "," || t[j + 1].text == ")" ||
         t[j + 1].text == "{")) {
      syms.var_cls[t[j].text] = tk.text;
    }
  }
}

struct EdgeInfo {
  std::string file;
  std::size_t line = 0;  ///< where `to` is acquired while `from` is held
};

using EdgeMap = std::map<std::pair<std::string, std::string>, EdgeInfo>;

const std::set<std::string>& blocking_ring_methods() {
  static const std::set<std::string> m = {"push", "pop", "pop_all"};
  return m;
}

const std::set<std::string>& blocking_free_calls() {
  static const std::set<std::string> m = {"sleep_for", "sleep_until",
                                          "getline", "fread", "fwrite"};
  return m;
}

/// Pass B: follow the held-lock set through one file's function bodies,
/// emitting graph edges and the site-anchored findings.
void analyze_file(const std::string& path, const std::vector<Tok>& t,
                  const std::vector<std::string>& raw_lines,
                  const LockSymbols& syms, EdgeMap& edges,
                  std::vector<Finding>& findings) {
  ScopeWalker w(t);
  std::vector<HeldLock> held;

  const auto resolve_name = [&](const std::string& name) {
    return lock_id_for(syms, w.ctx_class(), path, name);
  };

  const auto acquire = [&](const std::string& id, std::size_t line,
                           const std::string& var) {
    for (const HeldLock& h : held) {
      if (h.id == id) continue;  // re-entrancy is -Wthread-safety's beat
      const auto key = std::make_pair(h.id, id);
      if (!edges.count(key)) edges[key] = {path, line};
    }
    held.push_back({id, path, line, w.scopes().size(), var});
  };

  const auto release_var = [&](const std::string& var) {
    for (std::size_t k = held.size(); k-- > 0;) {
      if (held[k].var == var) {
        held.erase(held.begin() + static_cast<std::ptrdiff_t>(k));
        return true;
      }
    }
    return false;
  };

  const auto release_id = [&](const std::string& id) {
    for (std::size_t k = held.size(); k-- > 0;) {
      if (held[k].id == id) {
        held.erase(held.begin() + static_cast<std::ptrdiff_t>(k));
        return;
      }
    }
  };

  const auto report = [&](std::size_t line, const std::string& rule,
                          const std::string& message) {
    if (line > 0 && is_suppressed(raw_lines, line - 1, rule)) return;
    findings.push_back({path, line, rule, message});
  };

  const auto held_desc = [&]() {
    std::string d;
    for (const HeldLock& h : held) {
      if (!d.empty()) d += ", ";
      d += h.id + " (acquired " + h.file + ":" + std::to_string(h.line) + ")";
    }
    return d;
  };

  /// Call-site propagation: callee `cls::method` acquires locks per its
  /// annotations; holding anything across that call is an ordering edge.
  const auto call_edges = [&](const std::string& cls, const std::string& fn,
                              std::size_t line) {
    if (held.empty() || cls.empty()) return;
    const auto it = syms.fn_acquires.find(cls + "::" + fn);
    if (it == syms.fn_acquires.end()) return;
    for (const std::string& acq : it->second) {
      bool already = false;
      for (const HeldLock& h : held) already = already || h.id == acq;
      if (already) continue;
      for (const HeldLock& h : held) {
        const auto key = std::make_pair(h.id, acq);
        if (!edges.count(key)) edges[key] = {path, line};
      }
    }
  };

  for (std::size_t i = 0; i < t.size(); ++i) {
    ScopeWalker::Event ev = w.step(i);
    if (ev.opened) {
      Scope& s = w.scopes().back();
      if (s.kind == Scope::kLambda) {
        // Barrier: the body may run on another thread/later; locks held at
        // the capture site are not held inside.
        s.stash = std::move(held);
        held.clear();
      } else if (s.kind == Scope::kFunction) {
        std::vector<std::string> req = s.requires_locks;
        const auto it = syms.fn_requires.find(s.name);
        if (it != syms.fn_requires.end())
          req.insert(req.end(), it->second.begin(), it->second.end());
        for (const std::string& r : req) {
          const std::string id =
              lock_id_for(syms, s.cls.empty() ? w.ctx_class() : s.cls, path, r);
          bool have = false;
          for (const HeldLock& h : held) have = have || h.id == id;
          if (!have) held.push_back({id, path, t[i].line, w.scopes().size(), ""});
        }
      }
    }
    if (ev.closed) {
      const std::size_t depth = w.scopes().size();
      for (std::size_t k = held.size(); k-- > 0;) {
        if (held[k].depth > depth)
          held.erase(held.begin() + static_cast<std::ptrdiff_t>(k));
      }
      if (ev.closed_scope.kind == Scope::kLambda &&
          !ev.closed_scope.stash.empty()) {
        held.insert(held.begin(), ev.closed_scope.stash.begin(),
                    ev.closed_scope.stash.end());
      }
    }

    const Tok& tk = t[i];
    if (!tk.ident || !w.in_code()) continue;

    // MutexLock lk(expr);
    if (tk.text == "MutexLock" && i + 2 < t.size() && t[i + 1].ident &&
        !t[i + 2].ident && t[i + 2].text == "(") {
      std::string recv, last;
      int depth = 0;
      for (std::size_t j = i + 2; j < t.size(); ++j) {
        if (!t[j].ident) {
          if (t[j].text == "(") ++depth;
          else if (t[j].text == ")" && --depth == 0) break;
          else if (depth == 1 && (t[j].text == "." || t[j].text == "->") &&
                   !last.empty())
            recv = last;
          continue;
        }
        if (depth == 1) last = t[j].text;
      }
      if (!last.empty()) {
        std::string id;
        if (!recv.empty() && syms.var_cls.count(recv))
          id = syms.var_cls.at(recv) + "::" + last;
        else
          id = resolve_name(last);
        acquire(id, tk.line, t[i + 1].text);
      }
      continue;
    }

    // recv.method( / recv->method(
    if (i + 3 < t.size() && !t[i + 1].ident &&
        (t[i + 1].text == "." || t[i + 1].text == "->") && t[i + 2].ident &&
        !t[i + 3].ident && t[i + 3].text == "(") {
      const std::string& recv = tk.text;
      const std::string& method = t[i + 2].text;
      const std::size_t line = t[i + 2].line;
      if (method == "unlock") {
        if (!release_var(recv)) release_id(resolve_name(recv));
      } else if (method == "lock") {
        acquire(resolve_name(recv), line, "");
      } else if ((method == "wait" || method == "wait_for") &&
                 syms.cv_vars.count(recv)) {
        if (held.size() >= 2) {
          report(line, "cv-wait-extra-lock",
                 "condition wait on `" + recv + "` releases only its own "
                 "mutex, but this thread also holds: " + held_desc() +
                 " — waiters and notifiers of those locks can deadlock");
        }
      } else if ((method == "join" ||
                  (blocking_ring_methods().count(method) &&
                   syms.ring_vars.count(recv))) &&
                 !held.empty()) {
        report(line, "blocking-under-lock",
               "blocking call `" + recv + "." + method + "()` while holding " +
                   held_desc() +
                   " — a blocked callee wedges every contender of that lock");
      }
      if (!held.empty()) {
        std::string cls;
        if (syms.var_cls.count(recv)) cls = syms.var_cls.at(recv);
        else if (syms.ring_vars.count(recv)) cls = "Ring";
        call_edges(cls, method, line);
      }
      continue;
    }

    // Free/unqualified calls: blocking list + same-class callee edges.
    if (i + 1 < t.size() && !t[i + 1].ident && t[i + 1].text == "(" &&
        !is_control_kw(tk.text) && !is_annotation_macro(tk.text)) {
      if (blocking_free_calls().count(tk.text) && !held.empty()) {
        report(tk.line, "blocking-under-lock",
               "blocking call `" + tk.text + "()` while holding " +
                   held_desc() +
                   " — a blocked callee wedges every contender of that lock");
      }
      if (!held.empty()) {
        std::string cls = w.ctx_class();
        if (i >= 2 && !t[i - 1].ident && t[i - 1].text == "::" &&
            t[i - 2].ident)
          cls = t[i - 2].text;
        call_edges(cls, tk.text, tk.line);
      }
    }
  }
}

/// DFS cycle extraction over the acquisition graph; reports each distinct
/// cycle once (canonical rotation) with every edge's site.
std::vector<Finding> cycle_findings(
    const EdgeMap& edges,
    const std::map<std::string, std::vector<std::string>>& raw_by_file) {
  std::map<std::string, std::vector<std::string>> adj;
  for (const auto& [key, info] : edges) {
    (void)info;
    adj[key.first].push_back(key.second);
    adj.try_emplace(key.second);
  }
  for (auto& [n, outs] : adj) {
    (void)n;
    std::sort(outs.begin(), outs.end());
  }

  std::map<std::string, int> color;  // 0 white, 1 gray, 2 black
  std::vector<std::string> path;
  std::vector<std::vector<std::string>> cycles;

  std::function<void(const std::string&)> dfs = [&](const std::string& u) {
    color[u] = 1;
    path.push_back(u);
    for (const std::string& v : adj[u]) {
      if (color[v] == 1) {
        const auto it = std::find(path.begin(), path.end(), v);
        if (it != path.end()) cycles.emplace_back(it, path.end());
      } else if (color[v] == 0) {
        dfs(v);
      }
    }
    path.pop_back();
    color[u] = 2;
  };
  for (const auto& [n, outs] : adj) {
    (void)outs;
    if (color[n] == 0) dfs(n);
  }

  std::set<std::string> seen;
  std::vector<Finding> out;
  for (std::vector<std::string> cyc : cycles) {
    // Canonical rotation: start at the lexicographically smallest lock.
    const auto smallest = std::min_element(cyc.begin(), cyc.end());
    std::rotate(cyc.begin(), smallest, cyc.end());
    std::string key;
    for (const std::string& n : cyc) key += n + "|";
    if (!seen.insert(key).second) continue;

    bool suppressed = false;
    std::string desc = "lock-order cycle: " + cyc.front();
    EdgeInfo first_edge{};
    for (std::size_t i = 0; i < cyc.size(); ++i) {
      const std::string& from = cyc[i];
      const std::string& to = cyc[(i + 1) % cyc.size()];
      const EdgeInfo& e = edges.at({from, to});
      if (i == 0) first_edge = e;
      desc += " -> " + to + " (" + e.file + ":" + std::to_string(e.line) + ")";
      const auto rit = raw_by_file.find(e.file);
      if (rit != raw_by_file.end() && e.line > 0 &&
          is_suppressed(rit->second, e.line - 1, "lock-cycle"))
        suppressed = true;
    }
    if (suppressed) continue;
    out.push_back({first_edge.file, first_edge.line, "lock-cycle", desc});
  }
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.file, a.line, a.message) <
           std::tie(b.file, b.line, b.message);
  });
  return out;
}

std::string include_target(const std::string& raw_line) {
  std::size_t p = raw_line.find_first_not_of(" \t");
  if (p == std::string::npos || raw_line[p] != '#') return "";
  ++p;
  while (p < raw_line.size() && (raw_line[p] == ' ' || raw_line[p] == '\t')) ++p;
  const std::string kw = "include";
  if (raw_line.compare(p, kw.size(), kw) != 0) return "";
  p += kw.size();
  while (p < raw_line.size() && (raw_line[p] == ' ' || raw_line[p] == '\t')) ++p;
  if (p >= raw_line.size() || raw_line[p] != '"') return "";
  const std::size_t close = raw_line.find('"', p + 1);
  if (close == std::string::npos) return "";
  return raw_line.substr(p + 1, close - p - 1);
}

// ---------------------------------------------------------------------------
// Atomics-protocol analysis (atomic-undeclared / acquire-release-unpaired /
// rmw-order-too-weak / fence-undocumented)
//
// A third whole-project pass, built like the lock-graph one: tokenize every
// src/-module file, find std::atomic field declarations with the scope
// walker (fusing identity as namespace::Class::field), read the declared
// "// elsa-atomic: <protocol>" off the surrounding raw lines, then classify
// every atomic member-operation call site (load/store/exchange/fetch_*/
// compare_exchange_*) by its memory_order arguments and check the
// project-wide pairing invariants against the declared protocols.

bool in_fixture_dir(const std::string& path);  // defined with tree_files below

const std::set<std::string>& atomic_protocol_set() {
  static const std::set<std::string> protos(atomic_protocols().begin(),
                                            atomic_protocols().end());
  return protos;
}

struct AtomicDecl {
  std::string id;        ///< qualified "ns::Class::field" (or "file::field")
  std::string field;     ///< bare field name
  std::string file;
  std::size_t line = 0;  ///< 1-based
  std::string protocol;  ///< parsed protocol name ("" when absent)
  bool annotated = false;  ///< an elsa-atomic: marker was present
  bool known = false;      ///< protocol is in atomic_protocols()
};

struct AtomicAccess {
  enum Kind : std::uint8_t { kLoad, kStore, kRmw, kCas } kind = kLoad;
  std::string decl_id;  ///< resolved AtomicDecl::id
  std::string file;
  std::size_t line = 0;
  std::vector<std::string> orders;  ///< memory_order_* idents, call order
};

bool is_atomic_op(const std::string& name, AtomicAccess::Kind* kind) {
  if (name == "load") { *kind = AtomicAccess::kLoad; return true; }
  if (name == "store") { *kind = AtomicAccess::kStore; return true; }
  if (name == "exchange" || name.rfind("fetch_", 0) == 0) {
    if (name == "exchange" || name == "fetch_add" || name == "fetch_sub" ||
        name == "fetch_and" || name == "fetch_or" || name == "fetch_xor") {
      *kind = AtomicAccess::kRmw;
      return true;
    }
    return false;
  }
  if (name == "compare_exchange_weak" || name == "compare_exchange_strong") {
    *kind = AtomicAccess::kCas;
    return true;
  }
  return false;
}

/// Pass 1: std::atomic field/variable declarations in one file. A
/// declaration is `std::atomic<...>` (possibly wrapped deeper in a
/// template such as unique_ptr<std::atomic<T>[]>) whose declarator name is
/// followed by `;`, `{` or `=` — which excludes function parameters and
/// `new std::atomic<...>[n]` expressions (also guarded by the `new` check).
void collect_atomic_decls(const std::string& path, const std::vector<Tok>& t,
                          const std::vector<std::string>& raw,
                          std::vector<AtomicDecl>& decls) {
  ScopeWalker w(t);
  for (std::size_t i = 0; i < t.size(); ++i) {
    w.step(i);
    const Tok& tk = t[i];
    if (!tk.ident || tk.text != "atomic") continue;
    if (i < 2 || t[i - 1].ident || t[i - 1].text != "::" || !t[i - 2].ident ||
        t[i - 2].text != "std")
      continue;
    if (i >= 3 && t[i - 3].ident && t[i - 3].text == "new") continue;
    if (i + 1 >= t.size() || t[i + 1].ident || t[i + 1].text != "<") continue;
    // Balance the template argument list.
    int depth = 0;
    std::size_t j = i + 1;
    for (; j < t.size(); ++j) {
      if (t[j].ident) continue;
      if (t[j].text == "<") ++depth;
      else if (t[j].text == ">" && --depth == 0) { ++j; break; }
    }
    // Skip declarator decoration: closes of an enclosing template
    // (unique_ptr<...[]>), array brackets, pointers/references.
    while (j < t.size() && !t[j].ident &&
           (t[j].text == ">" || t[j].text == "[" || t[j].text == "]" ||
            t[j].text == "*" || t[j].text == "&"))
      ++j;
    if (j >= t.size() || !t[j].ident) continue;
    const std::string name = t[j].text;
    if (j + 1 >= t.size() || t[j + 1].ident) continue;
    const std::string& after = t[j + 1].text;
    if (after != ";" && after != "{" && after != "=") continue;

    AtomicDecl d;
    d.field = name;
    d.file = path;
    d.line = tk.line;
    const std::string ctx = w.ctx_qualified();
    d.id = (ctx.empty() ? path : ctx) + "::" + name;
    // Annotation: "// elsa-atomic: <protocol>" on the declaration line or
    // within the three lines above (same window as allow()).
    const std::size_t idx = tk.line - 1;
    const std::size_t lo = idx >= 3 ? idx - 3 : 0;
    for (std::size_t k = lo; k <= idx && k < raw.size(); ++k) {
      const std::size_t p = raw[k].find("elsa-atomic:");
      if (p == std::string::npos) continue;
      d.annotated = true;
      std::size_t q = p + 12;
      while (q < raw[k].size() && raw[k][q] == ' ') ++q;
      std::string proto;
      while (q < raw[k].size() &&
             (std::islower(static_cast<unsigned char>(raw[k][q])) ||
              std::isdigit(static_cast<unsigned char>(raw[k][q])) ||
              raw[k][q] == '-'))
        proto += raw[k][q++];
      d.protocol = proto;
    }
    d.known = atomic_protocol_set().count(d.protocol) > 0;
    decls.push_back(std::move(d));
  }
}

/// Pass 2: atomic member-operation call sites in one file, resolved
/// against the project-wide declaration registry. Resolution order:
/// exact qualified id at the access context, then a unique same-file
/// field-name match, then a unique project-wide match; ambiguous or
/// unknown receivers are skipped (no false positives — a `.load()` on a
/// non-atomic never matches a declared field, or matches ambiguously and
/// is dropped).
void collect_atomic_accesses(
    const std::string& path, const std::vector<Tok>& t,
    const std::map<std::string, const AtomicDecl*>& by_id,
    const std::multimap<std::string, const AtomicDecl*>& by_field,
    std::vector<AtomicAccess>& accesses, std::vector<std::size_t>* fences) {
  ScopeWalker w(t);
  for (std::size_t i = 0; i < t.size(); ++i) {
    w.step(i);
    const Tok& tk = t[i];
    if (!tk.ident) continue;
    if (tk.text == "atomic_thread_fence" && fences != nullptr) {
      fences->push_back(tk.line);
      continue;
    }
    AtomicAccess::Kind kind;
    if (!is_atomic_op(tk.text, &kind)) continue;
    if (i + 1 >= t.size() || t[i + 1].ident || t[i + 1].text != "(") continue;
    if (i < 2 || t[i - 1].ident ||
        (t[i - 1].text != "." && t[i - 1].text != "->"))
      continue;
    // Receiver: the identifier before the access operator, walking back
    // through a subscript (counts_[i].fetch_add → counts_).
    std::size_t r = i - 2;
    if (!t[r].ident && t[r].text == "]") {
      int bdepth = 0;
      for (;;) {
        if (!t[r].ident) {
          if (t[r].text == "]") ++bdepth;
          else if (t[r].text == "[" && --bdepth == 0) break;
        }
        if (r == 0) break;
        --r;
      }
      if (r == 0) continue;
      --r;
    }
    if (!t[r].ident) continue;
    const std::string& field = t[r].text;

    // Resolve to a declared field.
    const AtomicDecl* decl = nullptr;
    const std::string qual = w.ctx_qualified();
    if (!qual.empty()) {
      const auto it = by_id.find(qual + "::" + field);
      if (it != by_id.end()) decl = it->second;
    }
    if (decl == nullptr) {
      const AtomicDecl* same_file = nullptr;
      const AtomicDecl* unique = nullptr;
      std::size_t same_file_n = 0, total = 0;
      const auto [b, e] = by_field.equal_range(field);
      for (auto it = b; it != e; ++it) {
        ++total;
        unique = it->second;
        if (it->second->file == path) {
          ++same_file_n;
          same_file = it->second;
        }
      }
      if (same_file_n == 1) decl = same_file;
      else if (same_file_n == 0 && total == 1) decl = unique;
    }
    if (decl == nullptr) continue;

    AtomicAccess a;
    a.kind = kind;
    a.decl_id = decl->id;
    a.file = path;
    a.line = tk.line;
    // memory_order arguments anywhere inside the call's parentheses.
    int depth = 0;
    for (std::size_t j = i + 1; j < t.size(); ++j) {
      if (!t[j].ident) {
        if (t[j].text == "(") ++depth;
        else if (t[j].text == ")" && --depth == 0) break;
        continue;
      }
      if (t[j].text.rfind("memory_order_", 0) == 0)
        a.orders.push_back(t[j].text.substr(13));
    }
    accesses.push_back(std::move(a));
  }
}

/// True when the access's order set contains any of the given orders.
bool has_order(const AtomicAccess& a, std::initializer_list<const char*> any) {
  for (const std::string& o : a.orders)
    for (const char* want : any)
      if (o == want) return true;
  return false;
}

/// All stated orders are relaxed (a CAS's failure order included); an
/// access with no stated order is seq_cst, never "all relaxed".
bool all_relaxed(const AtomicAccess& a) {
  if (a.orders.empty()) return false;
  for (const std::string& o : a.orders)
    if (o != "relaxed") return false;
  return true;
}

struct AtomicsScan {
  std::vector<AtomicDecl> decls;
  std::vector<AtomicAccess> accesses;
  /// Fence sites as (file, line) in scan order.
  std::vector<std::pair<std::string, std::size_t>> fences;
  std::map<std::string, std::vector<std::string>> raw_by_file;
};

/// Shared front half of lint_atomics/atomic_registry: scan every
/// src/-module file for declarations, then for accesses and fences.
AtomicsScan scan_atomics(
    const std::vector<std::pair<std::string, std::string>>& files) {
  AtomicsScan scan;
  std::vector<std::pair<std::string, std::vector<Tok>>> toks;
  for (const auto& [path, contents] : files) {
    if (module_of(path).empty()) continue;  // src modules own protocols
    if (in_fixture_dir(path)) continue;
    toks.emplace_back(path, tokenize(strip_code(contents)));
    scan.raw_by_file[path] = split_lines(contents);
    collect_atomic_decls(path, toks.back().second,
                         scan.raw_by_file.at(path), scan.decls);
  }
  std::map<std::string, const AtomicDecl*> by_id;
  std::multimap<std::string, const AtomicDecl*> by_field;
  for (const AtomicDecl& d : scan.decls) {
    by_id.emplace(d.id, &d);
    by_field.emplace(d.field, &d);
  }
  for (const auto& [path, t] : toks) {
    std::vector<std::size_t> fence_lines;
    collect_atomic_accesses(path, t, by_id, by_field, scan.accesses,
                            &fence_lines);
    for (std::size_t line : fence_lines) scan.fences.emplace_back(path, line);
  }
  return scan;
}

// ---------------------------------------------------------------------------
// Effect-inference analysis (realtime-allocates / realtime-locks /
// realtime-blocks / det-wall-clock / det-random-device /
// det-unordered-escape)
//
// A fourth whole-project pass and the first that reasons about *transitive
// function effects* rather than declarations: tokenize every src/-module
// file, collect class names, type aliases, typed variables and
// unordered-container variables (pass E1/E2, fused project-wide the way the
// lock pass fuses lock ids), then walk every function body (pass E3)
// recording direct effect sites and call sites. Calls are resolved
// conservatively — qualified id, then receiver-class match with
// same-module preference, then unique-definition fallback; anything
// ambiguous resolves to nothing — and effects propagate over the resolved
// edges to a fixpoint. A function marked `// elsa-realtime` (above or on
// its signature) must have an allocation-, lock-, block- and I/O-free
// closure; `// elsa-deterministic` bans wall-clock reads, random_device
// and unordered-container iteration in the closure. Findings anchor at
// the effect *site* (where the allow() belongs) and name the annotated
// root plus the call path, so a cross-file violation reads as a proof.
//
// Deliberate blind spots (under-approximation, DESIGN.md §17): effects in
// member-initializer lists, allocations hidden behind copy assignment,
// and calls through unresolvable receivers contribute nothing. The pass
// can therefore miss, but never fabricates: every finding is a lexical
// fact about the closure it names.

enum EffBit : std::uint8_t {
  kEffAlloc = 1u << 0,      ///< new/make_unique/make_shared/container growth
  kEffLock = 1u << 1,       ///< MutexLock / .lock()
  kEffBlock = 1u << 2,      ///< sleep/wait/join + file & console I/O
  kEffWallClock = 1u << 3,  ///< Clock::now() & friends
  kEffRandom = 1u << 4,     ///< std::random_device
  kEffUnordered = 1u << 5,  ///< unordered/pointer-keyed iteration
};

/// One direct effect occurrence, anchored where the allow() belongs.
struct EffSite {
  unsigned bit = 0;
  std::string what;  ///< human description, e.g. "`push_back` (growth)"
  std::string file;
  std::size_t line = 0;
};

struct EffCallSite {
  std::string recv;  ///< receiver variable ("" for free/qualified calls)
  std::string qual;  ///< explicit `Q::` qualifier ("" if none)
  std::string name;  ///< called method/function name
  std::string file;
  std::size_t line = 0;
};

struct EffFnDef {
  std::string id;        ///< "ns::Class::fn" (or "file::fn" at file scope)
  std::string short_id;  ///< "Class::fn" or "fn"
  std::string bare;      ///< "fn"
  std::string cls;       ///< "Class" ("" for free functions)
  std::string file;
  std::size_t line = 0;  ///< open-brace line of the (first) definition
  bool realtime = false;
  bool deterministic = false;
  std::vector<EffSite> sites;
  std::vector<EffCallSite> calls;
};

/// Project-wide symbol tables feeding the body pass.
struct EffSymbols {
  std::set<std::string> classes;
  std::map<std::string, std::string> aliases;  ///< alias → class name
  std::map<std::string, std::string> var_cls;  ///< var → class name
  /// unordered/pointer-keyed container var → flavor ("unordered" /
  /// "pointer-keyed"). Keyed "Cls::name" for class members (the innermost
  /// class at the declaration) and "::name" otherwise, so two classes
  /// declaring same-named fields of different container kinds never
  /// cross-contaminate (use uvar_kind() to look up).
  std::map<std::string, std::string> unordered_vars;
};

/// Flavor of an unordered/pointer-keyed container var as seen from a
/// function of class `cls` ("" for free functions): the class's own member
/// first, then a namespace-scope/local declaration. Null when neither
/// declares it.
const std::string* uvar_kind(const EffSymbols& syms, const std::string& cls,
                             const std::string& name) {
  if (!cls.empty()) {
    const auto it = syms.unordered_vars.find(cls + "::" + name);
    if (it != syms.unordered_vars.end()) return &it->second;
  }
  const auto it = syms.unordered_vars.find("::" + name);
  return it == syms.unordered_vars.end() ? nullptr : &it->second;
}

const std::set<std::string>& growth_methods() {
  static const std::set<std::string> m = {
      "push_back", "emplace_back", "push_front", "emplace_front",
      "emplace",   "emplace_hint", "insert",     "insert_or_assign",
      "try_emplace", "resize",     "reserve",    "append",
      "assign"};
  return m;
}

const std::set<std::string>& blocking_methods() {
  static const std::set<std::string> m = {"wait", "wait_for", "wait_until",
                                          "join"};
  return m;
}

const std::set<std::string>& io_calls() {
  static const std::set<std::string> m = {"fopen", "fclose", "fprintf",
                                          "fscanf", "printf", "puts",
                                          "fputs",  "fgets",  "perror",
                                          "system"};
  return m;
}

const std::set<std::string>& io_idents() {
  static const std::set<std::string> m = {"cout", "cerr", "clog", "ifstream",
                                          "ofstream", "fstream"};
  return m;
}

const std::set<std::string>& wallclock_calls() {
  static const std::set<std::string> m = {"clock_gettime", "gettimeofday",
                                          "mktime"};
  return m;
}

/// Names never resolved through the unique-free-function fallback: too
/// common as local helpers / std entry points to trust a name-only match.
const std::set<std::string>& bare_call_stoplist() {
  static const std::set<std::string> m = {
      "swap", "min",   "max", "abs",  "get",     "size", "empty",
      "begin", "end",  "clear", "move", "forward", "main", "to_string"};
  return m;
}

/// Files whose bodies the effect pass never scans: the annotated-primitive
/// wrapper defines the lock types themselves, and the interleaving harness
/// (util/interleave.hpp) blocks *by design* in ELSA_INTERLEAVE test builds
/// while compiling to a no-op in production — scanning it would poison
/// every sched_point() caller with a phantom blocking effect.
bool effect_exempt_file(const std::string& path) {
  return ends_with(path, "util/thread_annotations.hpp") ||
         ends_with(path, "util/interleave.hpp");
}

/// `// elsa-realtime` / `// elsa-deterministic` marker on a raw line, with
/// word-ish boundaries so prose like "non-elsa-realtime-safe" never binds.
bool has_effect_marker(const std::string& raw_line, const std::string& mark) {
  std::size_t pos = 0;
  while ((pos = raw_line.find(mark, pos)) != std::string::npos) {
    const std::size_t end = pos + mark.size();
    const bool pre_ok =
        pos == 0 || (!is_word(raw_line[pos - 1]) && raw_line[pos - 1] != '-');
    const bool post_ok = end >= raw_line.size() ||
                         (!is_word(raw_line[end]) && raw_line[end] != '-');
    if (pre_ok && post_ok) return true;
    pos = end;
  }
  return false;
}

/// Pass E1: class names, `using A = B<...>` aliases, and unordered /
/// pointer-keyed container variable declarations.
void collect_effect_decls(const std::vector<Tok>& t, EffSymbols& syms) {
  static const std::set<std::string> kUnordered = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  static const std::set<std::string> kOrderedAssoc = {"map", "set", "multimap",
                                                      "multiset"};
  ScopeWalker w(t);
  for (std::size_t i = 0; i < t.size(); ++i) {
    ScopeWalker::Event ev = w.step(i);
    if (ev.opened && w.scopes().back().kind == Scope::kClass)
      syms.classes.insert(w.scopes().back().name);
    const Tok& tk = t[i];
    if (!tk.ident) continue;
    // Type alias: `using A = Head<...>;` → A resolves like Head.
    if (tk.text == "using" && i + 3 < t.size() && t[i + 1].ident &&
        !t[i + 2].ident && t[i + 2].text == "=") {
      std::string head;
      for (std::size_t j = i + 3; j < t.size(); ++j) {
        if (t[j].ident) head = t[j].text;
        else if (t[j].text != "::") break;
      }
      if (!head.empty() && head != t[i + 1].text)
        syms.aliases[t[i + 1].text] = head;
      continue;
    }
    // Unordered container declaration → remember the declarator name.
    const bool unordered = kUnordered.count(tk.text) > 0;
    // std::map/set keyed by a pointer iterate in address order — equally
    // nondeterministic across runs (ASLR), so they join the same set.
    bool ptr_keyed = false;
    if (!unordered && kOrderedAssoc.count(tk.text) && i >= 2 && !t[i - 1].ident &&
        t[i - 1].text == "::" && t[i - 2].ident && t[i - 2].text == "std" &&
        i + 1 < t.size() && !t[i + 1].ident && t[i + 1].text == "<") {
      int depth = 0;
      for (std::size_t j = i + 1; j < t.size(); ++j) {
        if (t[j].ident) continue;
        if (t[j].text == "<") ++depth;
        else if (t[j].text == ">" && --depth == 0) break;
        else if (t[j].text == "*" && depth == 1) { ptr_keyed = true; }
        else if (t[j].text == "," && depth == 1) break;  // first arg only
      }
    }
    if (!unordered && !ptr_keyed) continue;
    if (i + 1 >= t.size() || t[i + 1].ident || t[i + 1].text != "<") continue;
    int depth = 0;
    std::size_t j = i + 1;
    for (; j < t.size(); ++j) {
      if (t[j].ident) continue;
      if (t[j].text == "<") ++depth;
      else if (t[j].text == ">" && --depth == 0) { ++j; break; }
    }
    while (j < t.size() && !t[j].ident &&
           (t[j].text == ">" || t[j].text == "*" || t[j].text == "&"))
      ++j;
    if (j >= t.size() || !t[j].ident) continue;
    if (j + 1 < t.size() && !t[j + 1].ident &&
        (t[j + 1].text == ";" || t[j + 1].text == "{" ||
         t[j + 1].text == "=" || t[j + 1].text == "," ||
         t[j + 1].text == ")")) {
      std::string cls;
      for (auto it = w.scopes().rbegin(); it != w.scopes().rend(); ++it)
        if (it->kind == Scope::kClass) {
          cls = it->name;
          break;
        }
      syms.unordered_vars.emplace(cls + "::" + t[j].text,
                                  unordered ? "unordered" : "pointer-keyed");
    }
  }
}

/// Pass E2: variables typed as project classes (plain, pointer, reference,
/// template-argumented, unique_ptr/shared_ptr-wrapped), so method call
/// sites can be resolved to classes — collect_vars generalized beyond
/// lock-owning classes.
void collect_effect_vars(const std::vector<Tok>& t, EffSymbols& syms) {
  const auto resolve_cls = [&syms](const std::string& name) -> std::string {
    if (syms.classes.count(name)) return name;
    const auto it = syms.aliases.find(name);
    if (it != syms.aliases.end() && syms.classes.count(it->second))
      return it->second;
    return "";
  };
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    const Tok& tk = t[i];
    if (!tk.ident) continue;
    // unique_ptr<ns::Class<...>> name / shared_ptr<...> name — the class
    // is the last identifier of the first template argument's head.
    if ((tk.text == "unique_ptr" || tk.text == "shared_ptr") &&
        !t[i + 1].ident && t[i + 1].text == "<") {
      std::string head;
      bool frozen = false;
      int depth = 0;
      std::size_t j = i + 1;
      for (; j < t.size(); ++j) {
        if (t[j].ident) {
          if (depth == 1 && !frozen) head = t[j].text;
          continue;
        }
        if (t[j].text == "<") { if (++depth > 1) frozen = true; }
        else if (t[j].text == ">") { if (--depth == 0) { ++j; break; } }
        else if (t[j].text == "," && depth == 1) frozen = true;
        else if (t[j].text == "::" ) continue;
      }
      while (j < t.size() && !t[j].ident &&
             (t[j].text == ">" || t[j].text == "*" || t[j].text == "&" ||
              t[j].text == "[" || t[j].text == "]"))
        ++j;
      const std::string cls = resolve_cls(head);
      if (!cls.empty() && j < t.size() && t[j].ident)
        syms.var_cls[t[j].text] = cls;
      continue;
    }
    const std::string cls = resolve_cls(tk.text);
    if (cls.empty()) continue;
    if (i > 0 && t[i - 1].ident &&
        (t[i - 1].text == "class" || t[i - 1].text == "struct" ||
         t[i - 1].text == "using"))
      continue;  // definition / forward declaration / alias, not a variable
    std::size_t j = i + 1;
    // Optional template arguments on the class itself: SpscRing<Item> q;
    if (j < t.size() && !t[j].ident && t[j].text == "<") {
      int depth = 0;
      for (; j < t.size(); ++j) {
        if (t[j].ident) continue;
        if (t[j].text == "<") ++depth;
        else if (t[j].text == ">" && --depth == 0) { ++j; break; }
      }
    }
    while (j < t.size() && !t[j].ident &&
           (t[j].text == "*" || t[j].text == "&"))
      ++j;
    if (j >= t.size() || !t[j].ident) continue;
    if (j + 1 < t.size() && !t[j + 1].ident &&
        (t[j + 1].text == ";" || t[j + 1].text == "=" ||
         t[j + 1].text == "," || t[j + 1].text == ")" ||
         t[j + 1].text == "{")) {
      syms.var_cls[t[j].text] = cls;
    }
  }
}

/// Pass E3: walk one file's function bodies, creating EffFnDef entries
/// (with their contract markers) and recording direct effect sites and
/// call sites. Lambda bodies are attributed to the enclosing function —
/// the effect happens iff the lambda runs, and on the hot paths lambdas
/// are invoked in place.
void collect_effect_bodies(const std::string& path, const std::vector<Tok>& t,
                           const std::vector<std::string>& raw,
                           const EffSymbols& syms,
                           std::vector<EffFnDef>& fns,
                           std::map<std::string, std::size_t>& by_id) {
  ScopeWalker w(t);
  std::vector<std::size_t> fn_stack;  ///< indices into fns

  const auto add_site = [&](unsigned bit, const std::string& what,
                            std::size_t line) {
    if (fn_stack.empty()) return;
    fns[fn_stack.back()].sites.push_back({bit, what, path, line});
  };
  const auto add_call = [&](const std::string& recv, const std::string& qual,
                            const std::string& name, std::size_t line) {
    if (fn_stack.empty()) return;
    fns[fn_stack.back()].calls.push_back({recv, qual, name, path, line});
  };
  // Receiver identifier before the `.`/`->` at token index r, walking back
  // through a subscript (rings_[shard]->push → rings_), as the atomics
  // pass does.
  const auto receiver_at = [&t](std::size_t r) -> std::string {
    if (!t[r].ident && t[r].text == "]") {
      int bdepth = 0;
      for (;;) {
        if (!t[r].ident) {
          if (t[r].text == "]") ++bdepth;
          else if (t[r].text == "[" && --bdepth == 0) break;
        }
        if (r == 0) return "";
        --r;
      }
      if (r == 0) return "";
      --r;
    }
    return t[r].ident ? t[r].text : "";
  };

  for (std::size_t i = 0; i < t.size(); ++i) {
    ScopeWalker::Event ev = w.step(i);
    if (ev.opened && w.scopes().back().kind == Scope::kFunction) {
      const Scope& s = w.scopes().back();
      EffFnDef f;
      f.short_id = s.name;
      f.cls = s.cls;
      f.bare = s.cls.empty() ? s.name : s.name.substr(s.cls.size() + 2);
      const std::string ctx = w.ctx_qualified();
      f.id = (ctx.empty() ? path : ctx) + "::" + f.bare;
      f.file = path;
      f.line = s.open_line;
      // Contract markers on the signature lines, or up to three lines
      // above them — but never above the previous token (ann_floor), so a
      // marker binds to exactly one definition.
      std::size_t lo = s.sig_line >= 3 ? s.sig_line - 3 : 1;
      if (s.ann_floor + 1 > lo) lo = s.ann_floor + 1;
      if (lo < 1) lo = 1;
      for (std::size_t ln = lo; ln <= s.open_line && ln <= raw.size(); ++ln) {
        f.realtime = f.realtime || has_effect_marker(raw[ln - 1], "elsa-realtime");
        f.deterministic =
            f.deterministic || has_effect_marker(raw[ln - 1], "elsa-deterministic");
      }
      const auto it = by_id.find(f.id);
      if (it == by_id.end()) {
        by_id.emplace(f.id, fns.size());
        fn_stack.push_back(fns.size());
        fns.push_back(std::move(f));
      } else {
        // Overload set / re-definition: merge — the contract and effects
        // of the id are the union over its definitions.
        EffFnDef& g = fns[it->second];
        g.realtime = g.realtime || f.realtime;
        g.deterministic = g.deterministic || f.deterministic;
        fn_stack.push_back(it->second);
      }
    }
    if (ev.closed && ev.closed_scope.kind == Scope::kFunction &&
        !fn_stack.empty())
      fn_stack.pop_back();

    const Tok& tk = t[i];
    if (!tk.ident || fn_stack.empty() || !w.in_code()) continue;

    // ---- direct effect sites ----
    if (tk.text == "new") {
      add_site(kEffAlloc, "a `new` expression", tk.line);
      continue;
    }
    if ((tk.text == "make_unique" || tk.text == "make_shared") &&
        i + 1 < t.size() && !t[i + 1].ident &&
        (t[i + 1].text == "<" || t[i + 1].text == "(")) {
      add_site(kEffAlloc, "`std::" + tk.text + "` (heap allocation)", tk.line);
      continue;
    }
    if (tk.text == "random_device") {
      add_site(kEffRandom, "`std::random_device` (nondeterministic entropy)",
               tk.line);
      continue;
    }
    if (io_idents().count(tk.text)) {
      add_site(kEffBlock, "`" + tk.text + "` (I/O)", tk.line);
      continue;
    }
    if (tk.text == "MutexLock" && i + 2 < t.size() && t[i + 1].ident &&
        !t[i + 2].ident && t[i + 2].text == "(") {
      add_site(kEffLock, "a `MutexLock` acquisition", tk.line);
      continue;
    }
    // Range-for over an unordered container: `for (... : var)`.
    if (i > 0 && !t[i - 1].ident && t[i - 1].text == ":" && w.paren() > 0) {
      const std::string* kind =
          uvar_kind(syms, fns[fn_stack.back()].cls, tk.text);
      if (kind != nullptr) {
        add_site(kEffUnordered,
                 "iteration over " + *kind + " container `" + tk.text + "`",
                 tk.line);
        continue;
      }
    }

    // ---- calls (direct-effect names become sites, the rest edges) ----
    if (i + 1 >= t.size() || t[i + 1].ident || t[i + 1].text != "(") continue;
    if (is_control_kw(tk.text) || is_annotation_macro(tk.text)) continue;
    const bool is_method = i > 0 && !t[i - 1].ident &&
                           (t[i - 1].text == "." || t[i - 1].text == "->");
    if (is_method) {
      const std::string recv = i >= 2 ? receiver_at(i - 2) : "";
      if (growth_methods().count(tk.text)) {
        add_site(kEffAlloc, "`" + tk.text + "` (container growth)", tk.line);
      } else if (tk.text == "lock") {
        add_site(kEffLock, "a `.lock()` acquisition", tk.line);
      } else if (blocking_methods().count(tk.text)) {
        add_site(kEffBlock, "blocking `." + tk.text + "()`", tk.line);
      } else if (tk.text == "now") {
        add_site(kEffWallClock, "a `now()` clock read", tk.line);
      } else if ((tk.text == "begin" || tk.text == "cbegin") &&
                 // `.end()` alone is the find()-comparison idiom — a keyed
                 // lookup, deterministic whatever the hash order. Only
                 // begin()/cbegin() (or a range-for, handled above) can
                 // actually traverse in bucket order.
                 !recv.empty() &&
                 uvar_kind(syms, fns[fn_stack.back()].cls, recv) != nullptr) {
        add_site(kEffUnordered,
                 "iteration over " +
                     *uvar_kind(syms, fns[fn_stack.back()].cls, recv) +
                     " container `" + recv + "`",
                 tk.line);
      } else {
        add_call(recv, "", tk.text, tk.line);
      }
      continue;
    }
    if (i >= 2 && !t[i - 1].ident && t[i - 1].text == "::" && t[i - 2].ident) {
      const std::string& qual = t[i - 2].text;
      if (tk.text == "now") {
        add_site(kEffWallClock, "a `" + qual + "::now()` clock read", tk.line);
      } else if (blocking_free_calls().count(tk.text)) {
        add_site(kEffBlock, "blocking `" + tk.text + "()`", tk.line);
      } else if (io_calls().count(tk.text)) {
        add_site(kEffBlock, "`" + tk.text + "` (I/O)", tk.line);
      } else if (wallclock_calls().count(tk.text)) {
        add_site(kEffWallClock, "`" + tk.text + "` (wall clock)", tk.line);
      } else if (qual != "std") {
        add_call("", qual, tk.text, tk.line);
      }
      continue;
    }
    // Free/unqualified call.
    if (i > 0 && t[i - 1].ident && t[i - 1].text == "new") continue;
    if (blocking_free_calls().count(tk.text)) {
      add_site(kEffBlock, "blocking `" + tk.text + "()`", tk.line);
    } else if (io_calls().count(tk.text)) {
      add_site(kEffBlock, "`" + tk.text + "` (I/O)", tk.line);
    } else if (wallclock_calls().count(tk.text)) {
      add_site(kEffWallClock, "`" + tk.text + "` (wall clock)", tk.line);
    } else {
      add_call("", "", tk.text, tk.line);
    }
  }
}

struct EffScan {
  std::vector<EffFnDef> fns;
  std::map<std::string, std::size_t> by_id;
  EffSymbols syms;
  std::map<std::string, std::vector<std::string>> raw_by_file;
  /// Resolved call-graph adjacency (deduplicated), plus one representative
  /// call site per edge for path rendering.
  std::vector<std::vector<std::size_t>> adj;
  std::map<std::pair<std::size_t, std::size_t>, std::pair<std::string, std::size_t>>
      edge_site;
};

constexpr std::size_t kEffNone = static_cast<std::size_t>(-1);

/// Resolve one call site to a definition index, or kEffNone. Order:
/// receiver class (or caller's own class, or explicit qualifier) matched
/// against "Class::fn" with same-module preference on ambiguity, then a
/// unique project-wide free function for bare names. Anything else drops —
/// a dropped edge can hide an effect but never invent one.
std::size_t resolve_effect_call(
    const EffScan& scan, const EffCallSite& c, const EffFnDef& caller,
    const std::multimap<std::string, std::size_t>& by_short,
    const std::multimap<std::string, std::size_t>& by_bare) {
  const auto pick = [&scan, &c](std::vector<std::size_t> cand) -> std::size_t {
    if (cand.empty()) return kEffNone;
    if (cand.size() == 1) return cand.front();
    std::vector<std::size_t> same_mod;
    const std::string mod = module_of(c.file);
    for (std::size_t idx : cand)
      if (module_of(scan.fns[idx].file) == mod) same_mod.push_back(idx);
    return same_mod.size() == 1 ? same_mod.front() : kEffNone;
  };
  const auto short_candidates = [&](const std::string& cls) {
    std::vector<std::size_t> cand;
    const auto [b, e] = by_short.equal_range(cls + "::" + c.name);
    for (auto it = b; it != e; ++it) cand.push_back(it->second);
    return cand;
  };
  if (!c.recv.empty()) {
    const auto vc = scan.syms.var_cls.find(c.recv);
    if (vc == scan.syms.var_cls.end()) return kEffNone;
    return pick(short_candidates(vc->second));
  }
  if (!c.qual.empty()) {
    // Class-qualified static call, or a namespace-qualified free call:
    // accept definitions whose id ends in "…qual::name".
    std::vector<std::size_t> cand = short_candidates(c.qual);
    if (cand.empty()) {
      const std::string suffix = c.qual + "::" + c.name;
      const auto [b, e] = by_bare.equal_range(c.name);
      for (auto it = b; it != e; ++it) {
        const std::string& id = scan.fns[it->second].id;
        if (id == suffix || ends_with(id, "::" + suffix))
          cand.push_back(it->second);
      }
    }
    return pick(cand);
  }
  // Bare call: the caller's own class first, then a unique free function.
  if (!caller.cls.empty()) {
    const std::size_t hit = pick(short_candidates(caller.cls));
    if (hit != kEffNone) return hit;
  }
  if (bare_call_stoplist().count(c.name)) return kEffNone;
  std::vector<std::size_t> cand;
  const auto [b, e] = by_bare.equal_range(c.name);
  for (auto it = b; it != e; ++it)
    if (scan.fns[it->second].cls.empty()) cand.push_back(it->second);
  return cand.size() == 1 ? cand.front() : kEffNone;
}

/// Shared front half of lint_effects/effect_registry: scan, resolve the
/// call graph. Only src/-module files participate; the two test-harness
/// headers are exempt (see effect_exempt_file).
EffScan scan_effects(
    const std::vector<std::pair<std::string, std::string>>& files) {
  EffScan scan;
  std::vector<std::pair<std::string, std::vector<Tok>>> toks;
  for (const auto& [path, contents] : files) {
    if (module_of(path).empty()) continue;
    if (in_fixture_dir(path) || effect_exempt_file(path)) continue;
    toks.emplace_back(path, tokenize(strip_code(contents)));
    scan.raw_by_file[path] = split_lines(contents);
  }
  for (const auto& [path, t] : toks) {
    (void)path;
    collect_effect_decls(t, scan.syms);
  }
  for (const auto& [path, t] : toks) {
    (void)path;
    collect_effect_vars(t, scan.syms);
  }
  for (const auto& [path, t] : toks)
    collect_effect_bodies(path, t, scan.raw_by_file.at(path), scan.syms,
                          scan.fns, scan.by_id);

  std::multimap<std::string, std::size_t> by_short, by_bare;
  for (std::size_t i = 0; i < scan.fns.size(); ++i) {
    by_short.emplace(scan.fns[i].short_id, i);
    by_bare.emplace(scan.fns[i].bare, i);
  }
  scan.adj.resize(scan.fns.size());
  for (std::size_t i = 0; i < scan.fns.size(); ++i) {
    for (const EffCallSite& c : scan.fns[i].calls) {
      const std::size_t j =
          resolve_effect_call(scan, c, scan.fns[i], by_short, by_bare);
      if (j == kEffNone || j == i) continue;
      if (std::find(scan.adj[i].begin(), scan.adj[i].end(), j) ==
          scan.adj[i].end())
        scan.adj[i].push_back(j);
      scan.edge_site.try_emplace({i, j}, std::make_pair(c.file, c.line));
    }
  }
  return scan;
}

}  // namespace

std::vector<Finding> lint_file(const std::string& path,
                               const std::string& contents) {
  std::vector<Finding> findings;
  const bool is_header = ends_with(path, ".hpp") || ends_with(path, ".h");
  const bool is_wrapper = ends_with(path, "util/thread_annotations.hpp");
  const std::string module = module_of(path);

  const std::vector<std::string> raw = split_lines(contents);
  const std::vector<std::string> code = split_lines(strip_code(contents));

  auto report = [&](std::size_t idx, const std::string& rule,
                    const std::string& message) {
    if (is_suppressed(raw, idx, rule)) return;
    findings.push_back({path, idx + 1, rule, message});
  };

  // -- banned-call ----------------------------------------------------------
  static const std::array<std::pair<const char*, const char*>, 5> kBanned = {{
      {"lgamma", "writes the process-global signgam; use util::lgamma_mt"},
      {"rand", "hidden global PRNG state; use util::Rng"},
      {"strtok", "static tokenizer state; use util::split or strtok_r"},
      {"localtime", "returns a shared static tm; use localtime_r"},
      {"gmtime", "returns a shared static tm; use gmtime_r"},
  }};
  for (std::size_t i = 0; i < code.size(); ++i) {
    for (const auto& [name, why] : kBanned) {
      for (std::size_t off : find_banned_calls(code[i], name)) {
        (void)off;
        report(i, "banned-call",
               std::string("call to non-reentrant `") + name + "` (" + why +
                   ")");
      }
    }
  }

  // -- static-mutable -------------------------------------------------------
  // `static std::map<...> cache;` and friends: magic-static initialization
  // is thread-safe, every mutation after it is not. The bench result cache
  // shipped exactly this bug; the rule makes the pattern unwritable. Fix by
  // wrapping container + util::Mutex in a class (bench_common.hpp's
  // ExperimentCache) or declaring it const.
  for (std::size_t i = 0; i < code.size(); ++i) {
    for (std::size_t off : find_token(code[i], "static")) {
      std::string window = code[i].substr(off + 6);
      for (std::size_t j = i + 1; j < code.size() && j <= i + 2; ++j)
        window += " " + code[j];
      if (is_mutable_static_container(window)) {
        report(i, "static-mutable",
               "mutable `static` std:: container is shared state with no "
               "lock — wrap it with util::Mutex in a class (see "
               "bench_common.hpp ExperimentCache) or declare it const");
      }
    }
  }

  // -- raw-mutex ------------------------------------------------------------
  if (!is_wrapper) {
    static const std::array<const char*, 11> kRawSync = {
        "std::mutex",          "std::timed_mutex",
        "std::recursive_mutex", "std::recursive_timed_mutex",
        "std::shared_mutex",    "std::shared_timed_mutex",
        "std::condition_variable", "std::condition_variable_any",
        "std::lock_guard",      "std::unique_lock",
        "std::scoped_lock"};
    for (std::size_t i = 0; i < code.size(); ++i) {
      for (const char* tok : kRawSync) {
        for (std::size_t off : find_token(code[i], tok)) {
          (void)off;
          report(i, "raw-mutex",
                 std::string("`") + tok +
                     "` outside util/thread_annotations.hpp — use the "
                     "annotated util::Mutex/MutexLock/CondVar so "
                     "-Wthread-safety can check the lock discipline");
        }
      }
    }
  }

  // -- relaxed-comment ------------------------------------------------------
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (find_token(code[i], "memory_order_relaxed").empty()) continue;
    bool justified = false;
    const std::size_t lo = i >= 3 ? i - 3 : 0;
    for (std::size_t j = lo; j <= i && !justified; ++j) {
      justified = raw[j].find("relaxed:") != std::string::npos;
    }
    if (!justified) {
      report(i, "relaxed-comment",
             "memory_order_relaxed without a justifying `// relaxed: ...` "
             "comment on this line or the three above");
    }
  }

  // -- header hygiene -------------------------------------------------------
  if (is_header) {
    for (std::size_t i = 0; i < code.size(); ++i) {
      const std::string t = trim(code[i]);
      if (t.empty()) continue;
      if (t.rfind("#pragma once", 0) != 0) {
        report(i, "header-pragma",
               "header's first directive must be #pragma once");
      }
      break;  // only the first non-blank, non-comment line matters
    }
    for (std::size_t i = 0; i < code.size(); ++i) {
      if (!find_token(code[i], "using namespace").empty() ||
          trim(code[i]).rfind("using namespace", 0) == 0) {
        report(i, "header-using",
               "`using namespace` in a header leaks into every includer");
      }
    }
  }

  // -- layering -------------------------------------------------------------
  if (!module.empty()) {
    const auto& deps = layer_deps();
    const std::set<std::string>& allowed = deps.at(module);
    for (std::size_t i = 0; i < raw.size(); ++i) {
      const std::string inc = include_target(raw[i]);
      if (inc.empty()) continue;
      const std::size_t slash = inc.find('/');
      if (slash == std::string::npos) continue;
      const std::string inc_mod = inc.substr(0, slash);
      if (!deps.count(inc_mod)) continue;  // not a project module
      if (inc_mod == module || allowed.count(inc_mod)) continue;
      report(i, "layering",
             "module `" + module + "` must not include `" + inc_mod +
                 "/` (dependency DAG: see DESIGN.md §9)");
    }
  }

  return findings;
}

namespace {

bool in_fixture_dir(const std::string& path) {
  return path.find("lint_fixtures") != std::string::npos;
}

/// Sorted (root-prefixed path, contents) pairs for every source file under
/// `root`, skipping lint_fixtures trees. A file that cannot be opened or
/// read is appended to `errors` (when given) and omitted from the result —
/// a silently skipped file would make the gate pass vacuously.
std::vector<std::pair<std::string, std::string>> tree_files(
    const std::string& root, std::vector<std::string>* errors = nullptr) {
  namespace fs = std::filesystem;
  std::vector<fs::path> paths;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext != ".hpp" && ext != ".cpp" && ext != ".h" && ext != ".cc")
      continue;
    if (in_fixture_dir(entry.path().generic_string())) continue;
    paths.push_back(entry.path());
  }
  std::sort(paths.begin(), paths.end());

  std::vector<std::pair<std::string, std::string>> out;
  for (const fs::path& p : paths) {
    std::ifstream in(p, std::ios::binary);
    if (!in) {
      if (errors) errors->push_back("cannot open " + p.generic_string());
      continue;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    if (in.bad()) {
      if (errors) errors->push_back("cannot read " + p.generic_string());
      continue;
    }
    const std::string rel = fs::relative(p, root).generic_string();
    out.emplace_back((fs::path(root) / rel).generic_string(), ss.str());
  }
  return out;
}

}  // namespace

std::vector<Finding> lint_tree(const std::string& root) {
  std::vector<Finding> findings;
  for (const auto& [path, contents] : tree_files(root)) {
    auto file_findings = lint_file(path, contents);
    findings.insert(findings.end(), file_findings.begin(), file_findings.end());
  }
  return findings;
}

std::vector<Finding> lint_lock_graph(
    const std::vector<std::pair<std::string, std::string>>& files) {
  LockSymbols syms;
  std::vector<RawAnnotation> anns;
  std::vector<std::pair<std::string, std::vector<Tok>>> toks;
  std::map<std::string, std::vector<std::string>> raw_by_file;

  for (const auto& [path, contents] : files) {
    // The annotated-primitive wrapper defines Mutex/MutexLock themselves;
    // its internals are not acquisition sites of project locks.
    if (ends_with(path, "util/thread_annotations.hpp")) continue;
    if (in_fixture_dir(path)) continue;
    toks.emplace_back(path, tokenize(strip_code(contents)));
    raw_by_file[path] = split_lines(contents);
    collect_decls(path, toks.back().second, syms, anns);
  }
  for (const RawAnnotation& a : anns) {
    const std::string key = a.cls.empty() ? a.fn : a.cls + "::" + a.fn;
    auto& table = a.kind == RawAnnotation::kAcquires ? syms.fn_acquires
                                                     : syms.fn_requires;
    for (const std::string& arg : a.args)
      table[key].insert(lock_id_for(syms, a.cls, a.file, arg));
  }
  for (const auto& [path, t] : toks) collect_vars(path, t, syms);

  EdgeMap edges;
  std::vector<Finding> findings;
  for (const auto& [path, t] : toks)
    analyze_file(path, t, raw_by_file.at(path), syms, edges, findings);

  auto cycles = cycle_findings(edges, raw_by_file);
  findings.insert(findings.end(), cycles.begin(), cycles.end());
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  return findings;
}

const std::vector<std::string>& atomic_protocols() {
  static const std::vector<std::string> protos = {
      "seqlock", "spsc-seq", "release-acquire-flag", "striped-relaxed-counter",
      "monotonic-relaxed", "rcu-handle"};
  return protos;
}

std::vector<Finding> lint_atomics(
    const std::vector<std::pair<std::string, std::string>>& files) {
  const AtomicsScan scan = scan_atomics(files);
  std::vector<Finding> findings;
  const auto suppressed = [&scan](const std::string& file, std::size_t line,
                                  const char* rule) {
    const auto it = scan.raw_by_file.find(file);
    return it != scan.raw_by_file.end() &&
           is_suppressed(it->second, line - 1, rule);
  };
  const auto protocol_list = [] {
    std::string s;
    for (const std::string& p : atomic_protocols())
      s += (s.empty() ? "" : ", ") + p;
    return s;
  }();

  // -- atomic-undeclared ----------------------------------------------------
  for (const AtomicDecl& d : scan.decls) {
    if (d.annotated && d.known) continue;
    if (suppressed(d.file, d.line, "atomic-undeclared")) continue;
    const std::string what =
        d.annotated ? "declares unknown protocol `" + d.protocol + "`"
                    : "has no `// elsa-atomic: <protocol>` declaration";
    findings.push_back({d.file, d.line, "atomic-undeclared",
                        "std::atomic field `" + d.id + "` " + what +
                            " (protocols: " + protocol_list +
                            "; see DESIGN.md §15)"});
  }

  std::map<std::string, const AtomicDecl*> decl_by_id;
  for (const AtomicDecl& d : scan.decls) decl_by_id.emplace(d.id, &d);
  std::map<std::string, std::vector<const AtomicAccess*>> uses;
  for (const AtomicAccess& a : scan.accesses) uses[a.decl_id].push_back(&a);

  // An access that reads the field with at least acquire semantics / writes
  // it with at least release semantics. No stated order means seq_cst.
  const auto acquiring = [](const AtomicAccess& a) {
    return a.kind != AtomicAccess::kStore &&
           (a.orders.empty() ||
            has_order(a, {"acquire", "acq_rel", "seq_cst", "consume"}));
  };
  const auto releasing = [](const AtomicAccess& a) {
    return a.kind != AtomicAccess::kLoad &&
           (a.orders.empty() || has_order(a, {"release", "acq_rel", "seq_cst"}));
  };
  const auto first_site = [](std::vector<const AtomicAccess*> sites) {
    std::sort(sites.begin(), sites.end(),
              [](const AtomicAccess* a, const AtomicAccess* b) {
                return std::tie(a->file, a->line) < std::tie(b->file, b->line);
              });
    return sites.front();
  };

  // -- acquire-release-unpaired ---------------------------------------------
  for (const auto& [id, accesses] : uses) {
    bool any_acquire = false, any_release = false;
    for (const AtomicAccess* a : accesses) {
      any_acquire = any_acquire || acquiring(*a);
      any_release = any_release || releasing(*a);
    }
    // Explicit release publications nothing ever acquire-loads…
    std::vector<const AtomicAccess*> rel_stores, acq_loads;
    for (const AtomicAccess* a : accesses) {
      if (a->kind == AtomicAccess::kStore &&
          has_order(*a, {"release", "acq_rel"}))
        rel_stores.push_back(a);
      if (a->kind == AtomicAccess::kLoad &&
          has_order(*a, {"acquire", "consume"}))
        acq_loads.push_back(a);
    }
    if (!rel_stores.empty() && !any_acquire) {
      const AtomicAccess* site = first_site(rel_stores);
      if (!suppressed(site->file, site->line, "acquire-release-unpaired"))
        findings.push_back(
            {site->file, site->line, "acquire-release-unpaired",
             "release store of `" + id +
                 "` has no acquire-side load anywhere in the project — "
                 "nothing synchronizes-with this publication"});
    }
    // …and explicit acquire loads nothing ever release-publishes.
    if (!acq_loads.empty() && !any_release) {
      const AtomicAccess* site = first_site(acq_loads);
      if (!suppressed(site->file, site->line, "acquire-release-unpaired"))
        findings.push_back(
            {site->file, site->line, "acquire-release-unpaired",
             "acquire load of `" + id +
                 "` has no release-side store anywhere in the project — "
                 "this load never synchronizes-with a publication"});
    }

    // -- rmw-order-too-weak -------------------------------------------------
    const auto decl_it = decl_by_id.find(id);
    if (decl_it != decl_by_id.end() &&
        (decl_it->second->protocol == "release-acquire-flag" ||
         decl_it->second->protocol == "spsc-seq")) {
      for (const AtomicAccess* a : accesses) {
        if (a->kind != AtomicAccess::kRmw && a->kind != AtomicAccess::kCas)
          continue;
        if (!all_relaxed(*a)) continue;
        if (suppressed(a->file, a->line, "rmw-order-too-weak")) continue;
        findings.push_back(
            {a->file, a->line, "rmw-order-too-weak",
             "fully relaxed RMW on `" + id + "`, declared `" +
                 decl_it->second->protocol +
                 "` — hand-off protocols need ordering on the mutating side"});
      }
    }
  }

  // -- fence-undocumented ---------------------------------------------------
  for (const auto& [file, line] : scan.fences) {
    if (suppressed(file, line, "fence-undocumented")) continue;
    findings.push_back(
        {file, line, "fence-undocumented",
         "bare std::atomic_thread_fence orders *all* surrounding accesses "
         "and defeats per-field protocol reasoning; prefer per-field orders "
         "or justify with allow(fence-undocumented)"});
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  return findings;
}

std::vector<AtomicField> atomic_registry(
    const std::vector<std::pair<std::string, std::string>>& files) {
  const AtomicsScan scan = scan_atomics(files);
  std::vector<AtomicField> out;
  out.reserve(scan.decls.size());
  for (const AtomicDecl& d : scan.decls) {
    AtomicField f;
    f.id = d.id;
    f.protocol = d.known ? d.protocol : "";
    f.file = d.file;
    f.line = d.line;
    out.push_back(std::move(f));
  }
  std::sort(out.begin(), out.end(),
            [](const AtomicField& a, const AtomicField& b) {
              return std::tie(a.id, a.file, a.line) <
                     std::tie(b.id, b.file, b.line);
            });
  return out;
}

std::vector<Finding> lint_effects(
    const std::vector<std::pair<std::string, std::string>>& files) {
  const EffScan scan = scan_effects(files);

  struct ContractRule {
    unsigned bit;
    const char* rule;
  };
  static const ContractRule kRealtimeRules[] = {
      {kEffAlloc, "realtime-allocates"},
      {kEffLock, "realtime-locks"},
      {kEffBlock, "realtime-blocks"}};
  static const ContractRule kDetRules[] = {
      {kEffWallClock, "det-wall-clock"},
      {kEffRandom, "det-random-device"},
      {kEffUnordered, "det-unordered-escape"}};

  // Annotated roots, sorted by id so the first reporter of a shared site
  // is deterministic.
  std::vector<std::size_t> roots;
  for (std::size_t i = 0; i < scan.fns.size(); ++i)
    if (scan.fns[i].realtime || scan.fns[i].deterministic) roots.push_back(i);
  std::sort(roots.begin(), roots.end(), [&scan](std::size_t a, std::size_t b) {
    return scan.fns[a].id < scan.fns[b].id;
  });

  std::vector<Finding> findings;
  std::set<std::tuple<std::string, std::string, std::size_t>> reported;

  for (std::size_t r : roots) {
    // BFS from the root over resolved call edges; parents give the
    // shortest call path for the message.
    std::vector<std::size_t> parent(scan.fns.size(), kEffNone);
    std::vector<char> seen(scan.fns.size(), 0);
    std::vector<std::size_t> order;
    seen[r] = 1;
    order.push_back(r);
    for (std::size_t qi = 0; qi < order.size(); ++qi) {
      const std::size_t u = order[qi];
      for (std::size_t v : scan.adj[u]) {
        if (seen[v]) continue;
        seen[v] = 1;
        parent[v] = u;
        order.push_back(v);
      }
    }
    const auto path_to = [&](std::size_t f) {
      std::vector<std::size_t> hops;
      for (std::size_t x = f; x != kEffNone; x = parent[x]) {
        hops.push_back(x);
        if (x == r) break;
      }
      std::string p;
      for (auto it = hops.rbegin(); it != hops.rend(); ++it) {
        if (!p.empty()) p += " -> ";
        p += scan.fns[*it].short_id;
      }
      return p;
    };

    const EffFnDef& root = scan.fns[r];
    const auto emit = [&](const ContractRule& cr, const char* marker,
                          std::size_t u) {
      for (const EffSite& s : scan.fns[u].sites) {
        if (s.bit != cr.bit) continue;
        const auto key = std::make_tuple(std::string(cr.rule), s.file, s.line);
        if (reported.count(key)) continue;
        const auto rit = scan.raw_by_file.find(s.file);
        if (rit != scan.raw_by_file.end() && s.line > 0 &&
            is_suppressed(rit->second, s.line - 1, cr.rule)) {
          reported.insert(key);  // an allow() covers every reaching root
          continue;
        }
        std::string msg = "`" + root.id + "` is marked " + marker +
                          " but reaches " + s.what;
        if (u != r) msg += " via " + path_to(u);
        reported.insert(key);
        findings.push_back({s.file, s.line, cr.rule, std::move(msg)});
      }
    };
    for (std::size_t u : order) {
      if (root.realtime)
        for (const ContractRule& cr : kRealtimeRules)
          emit(cr, "elsa-realtime", u);
      if (root.deterministic)
        for (const ContractRule& cr : kDetRules)
          emit(cr, "elsa-deterministic", u);
    }
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  return findings;
}

std::vector<EffectFn> effect_registry(
    const std::vector<std::pair<std::string, std::string>>& files) {
  const EffScan scan = scan_effects(files);
  std::vector<EffectFn> out;
  for (const EffFnDef& f : scan.fns) {
    if (!f.realtime && !f.deterministic) continue;
    EffectFn e;
    e.id = f.id;
    e.contract = f.realtime && f.deterministic ? "realtime+deterministic"
                 : f.realtime                  ? "realtime"
                                               : "deterministic";
    e.file = f.file;
    e.line = f.line;
    out.push_back(std::move(e));
  }
  std::sort(out.begin(), out.end(), [](const EffectFn& a, const EffectFn& b) {
    return std::tie(a.id, a.file, a.line) < std::tie(b.id, b.file, b.line);
  });
  return out;
}

const std::vector<RuleInfo>& rule_table() {
  static const std::vector<RuleInfo> table = {
      {"acquire-release-unpaired",
       "release store (or acquire load) no other side ever pairs with",
       "tests/lint_fixtures/atomics/unpaired.cpp"},
      {"atomic-undeclared",
       "std::atomic field without an `// elsa-atomic: <protocol>` declaration",
       "tests/lint_fixtures/atomics/undeclared.hpp"},
      {"banned-call",
       "non-reentrant libc call (lgamma, rand, strtok, localtime, gmtime)",
       "tests/lint_fixtures/banned_call.cpp"},
      {"blocking-under-lock",
       "blocking call (ring push/pop, join, sleep, I/O) under a held Mutex",
       "tests/lint_fixtures/lockgraph/blocking_under_lock.cpp"},
      {"cv-wait-extra-lock",
       "CondVar wait while a second mutex is held",
       "tests/lint_fixtures/lockgraph/cv_second_lock.cpp"},
      {"det-random-device",
       "std::random_device reachable from an elsa-deterministic function",
       "tests/lint_fixtures/effects/random_device.cpp"},
      {"det-unordered-escape",
       "unordered/pointer-keyed iteration reachable from elsa-deterministic",
       "tests/lint_fixtures/effects/unordered_escape.cpp"},
      {"det-wall-clock",
       "wall-clock read reachable from an elsa-deterministic function",
       "tests/lint_fixtures/effects/wall_clock.cpp"},
      {"fence-undocumented",
       "bare std::atomic_thread_fence defeats per-field protocol reasoning",
       "tests/lint_fixtures/atomics/fence.cpp"},
      {"header-pragma",
       "header's first directive must be #pragma once",
       "tests/lint_fixtures/bad_header.hpp"},
      {"header-using",
       "`using namespace` in a header leaks into every includer",
       "tests/lint_fixtures/bad_header.hpp"},
      {"layering",
       "include that violates the module dependency DAG",
       "tests/lint_fixtures/layering_break.cpp"},
      {"lock-cycle",
       "cycle in the whole-project lock-acquisition graph",
       "tests/lint_fixtures/lockgraph/cycle2.cpp"},
      {"raw-mutex",
       "std sync primitive outside the annotated util wrapper",
       "tests/lint_fixtures/raw_mutex.cpp"},
      {"realtime-allocates",
       "heap allocation reachable from an elsa-realtime function",
       "tests/lint_fixtures/effects/allocates.cpp"},
      {"realtime-blocks",
       "blocking call or I/O reachable from an elsa-realtime function",
       "tests/lint_fixtures/effects/blocks.cpp"},
      {"realtime-locks",
       "lock acquisition reachable from an elsa-realtime function",
       "tests/lint_fixtures/effects/locks.cpp"},
      {"relaxed-comment",
       "memory_order_relaxed without a justifying `// relaxed:` comment",
       "tests/lint_fixtures/relaxed_no_comment.cpp"},
      {"rmw-order-too-weak",
       "fully relaxed RMW on a hand-off protocol field",
       "tests/lint_fixtures/atomics/weak_rmw.cpp"},
      {"static-mutable",
       "mutable `static` std:: container is unsynchronized shared state",
       "tests/lint_fixtures/static_cache.cpp"},
  };
  return table;
}

std::string format_rule_table() {
  std::size_t id_w = 0, desc_w = 0;
  for (const RuleInfo& r : rule_table()) {
    id_w = std::max(id_w, r.id.size());
    desc_w = std::max(desc_w, r.description.size());
  }
  std::ostringstream out;
  for (const RuleInfo& r : rule_table()) {
    out << r.id << std::string(id_w - r.id.size() + 2, ' ') << r.description
        << std::string(desc_w - r.description.size() + 2, ' ') << r.fixture
        << "\n";
  }
  return out.str();
}

std::vector<Finding> lint_roots(const std::vector<std::string>& roots) {
  return lint_roots(roots, nullptr);
}

std::vector<Finding> lint_roots(const std::vector<std::string>& roots,
                                std::vector<std::string>* errors) {
  namespace fs = std::filesystem;
  std::vector<Finding> findings;
  std::vector<std::pair<std::string, std::string>> all_files;
  for (const std::string& root : roots) {
    if (!fs::is_directory(root)) {
      if (errors) errors->push_back("lint root is not a directory: " + root);
      continue;
    }
    for (auto& file : tree_files(root, errors)) {
      auto file_findings = lint_file(file.first, file.second);
      findings.insert(findings.end(), file_findings.begin(),
                      file_findings.end());
      all_files.push_back(std::move(file));
    }
  }
  auto lock_findings = lint_lock_graph(all_files);
  findings.insert(findings.end(), lock_findings.begin(), lock_findings.end());
  auto atomic_findings = lint_atomics(all_files);
  findings.insert(findings.end(), atomic_findings.begin(),
                  atomic_findings.end());
  auto effect_findings = lint_effects(all_files);
  findings.insert(findings.end(), effect_findings.begin(),
                  effect_findings.end());
  return findings;
}

std::string format(const std::vector<Finding>& findings) {
  std::ostringstream out;
  for (const Finding& f : findings) {
    out << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message
        << "\n";
  }
  return out.str();
}

namespace {

/// GitHub workflow-command escaping; properties additionally escape the
/// separators (':' and ',') the command parser is sensitive to.
std::string gh_escape(const std::string& s, bool property) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '%': out += "%25"; break;
      case '\r': out += "%0D"; break;
      case '\n': out += "%0A"; break;
      case ':': out += property ? "%3A" : ":"; break;
      case ',': out += property ? "%2C" : ","; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

std::string format_github(const std::vector<Finding>& findings) {
  std::ostringstream out;
  for (const Finding& f : findings) {
    out << "::error file=" << gh_escape(f.file, true) << ",line=" << f.line
        << ",title=" << gh_escape("elsa-lint " + f.rule, true)
        << "::" << gh_escape("[" + f.rule + "] " + f.message, false) << "\n";
  }
  return out.str();
}

}  // namespace elsa::lint
