#include "lint_rules.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

namespace elsa::lint {

namespace {

bool is_word(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Copy of `contents` with comments and string/char-literal interiors
/// blanked to spaces (newlines preserved), so token rules never fire on
/// documentation or test strings. Handles //, /*...*/, "...", '...' and
/// R"delim(...)delim"; digit separators (1'000'000) stay untouched.
std::string strip_code(const std::string& in) {
  enum class St { Normal, Line, Block, Str, Chr, Raw };
  St st = St::Normal;
  std::string out;
  out.reserve(in.size());
  std::string raw_close;  // ")delim\"" for the current raw string
  for (std::size_t i = 0; i < in.size(); ++i) {
    const char c = in[i];
    const char n = i + 1 < in.size() ? in[i + 1] : '\0';
    switch (st) {
      case St::Normal:
        if (c == '/' && n == '/') {
          st = St::Line;
          out += "  ";
          ++i;
        } else if (c == '/' && n == '*') {
          st = St::Block;
          out += "  ";
          ++i;
        } else if (c == 'R' && n == '"' && (i == 0 || !is_word(in[i - 1]))) {
          // Raw string: find the delimiter between " and (.
          std::size_t p = i + 2;
          std::string delim;
          while (p < in.size() && in[p] != '(') delim += in[p++];
          raw_close = ")" + delim + "\"";
          st = St::Raw;
          out += ' ';
          out += ' ';
          for (std::size_t k = i + 2; k <= p && k < in.size(); ++k)
            out += in[k] == '\n' ? '\n' : ' ';
          i = p;  // consumed through '('
        } else if (c == '"') {
          st = St::Str;
          out += ' ';
        } else if (c == '\'' && (i == 0 || !is_word(in[i - 1]))) {
          st = St::Chr;
          out += ' ';
        } else {
          out += c;
        }
        break;
      case St::Line:
        if (c == '\n') {
          st = St::Normal;
          out += '\n';
        } else {
          out += ' ';
        }
        break;
      case St::Block:
        if (c == '*' && n == '/') {
          st = St::Normal;
          out += "  ";
          ++i;
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case St::Str:
        if (c == '\\' && n != '\0') {
          out += "  ";
          ++i;
        } else if (c == '"') {
          st = St::Normal;
          out += ' ';
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case St::Chr:
        if (c == '\\' && n != '\0') {
          out += "  ";
          ++i;
        } else if (c == '\'') {
          st = St::Normal;
          out += ' ';
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case St::Raw:
        if (in.compare(i, raw_close.size(), raw_close) == 0) {
          for (std::size_t k = 0; k < raw_close.size(); ++k) out += ' ';
          i += raw_close.size() - 1;
          st = St::Normal;
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
    }
  }
  return out;
}

std::vector<std::string> split_lines(const std::string& s) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : s) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  lines.push_back(cur);
  return lines;
}

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

bool ends_with(const std::string& s, const std::string& suf) {
  return s.size() >= suf.size() &&
         s.compare(s.size() - suf.size(), suf.size(), suf) == 0;
}

// ---------------------------------------------------------------------------
// Module layering

/// Allowed cross-module includes, lowest layer first. A module may always
/// include itself; anything else must be listed here. simlog/signalkit and
/// the other mid-layers can never see serve/, which keeps the serving tier
/// a pure consumer of the analysis core.
const std::map<std::string, std::set<std::string>>& layer_deps() {
  static const std::map<std::string, std::set<std::string>> deps = {
      {"util", {}},
      {"topology", {"util"}},
      {"simlog", {"util", "topology"}},
      {"helo", {"util"}},
      {"signalkit", {"util"}},
      {"ckpt", {"util"}},
      {"elsa", {"util", "topology", "simlog", "helo", "signalkit", "ckpt"}},
      {"faultinject", {"util", "topology", "simlog"}},
      {"serve",
       {"util", "topology", "simlog", "helo", "signalkit", "ckpt", "elsa",
        "faultinject"}},
  };
  return deps;
}

/// Module a path belongs to: the component after "src", else the first
/// component — empty when the path maps to no known module.
std::string module_of(const std::string& path) {
  std::vector<std::string> parts;
  std::string cur;
  for (char c : path) {
    if (c == '/' || c == '\\') {
      if (!cur.empty()) parts.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) parts.push_back(cur);
  const auto& deps = layer_deps();
  for (std::size_t i = 0; i + 1 < parts.size(); ++i) {
    if (parts[i] == "src" && deps.count(parts[i + 1])) return parts[i + 1];
  }
  if (parts.size() >= 2 && deps.count(parts.front())) return parts.front();
  return "";
}

// ---------------------------------------------------------------------------
// Suppression:  // elsa-lint: allow(<rule>): <reason>

struct Suppression {
  std::string rule;
  bool has_reason = false;
};

std::vector<Suppression> suppressions_on(const std::string& raw_line) {
  std::vector<Suppression> out;
  const std::string marker = "elsa-lint:";
  std::size_t pos = 0;
  while ((pos = raw_line.find(marker, pos)) != std::string::npos) {
    std::size_t p = pos + marker.size();
    while (p < raw_line.size() && raw_line[p] == ' ') ++p;
    const std::string allow = "allow(";
    if (raw_line.compare(p, allow.size(), allow) == 0) {
      p += allow.size();
      const std::size_t close = raw_line.find(')', p);
      if (close != std::string::npos) {
        Suppression s;
        s.rule = raw_line.substr(p, close - p);
        std::size_t q = close + 1;
        while (q < raw_line.size() && (raw_line[q] == ' ' || raw_line[q] == ':'))
          ++q;
        s.has_reason = raw_line.find(':', close) != std::string::npos &&
                       q < raw_line.size() && !trim(raw_line.substr(q)).empty();
        out.push_back(s);
      }
    }
    pos += marker.size();
  }
  return out;
}

/// True if line `idx` (0-based) or the 3 lines above carry a matching
/// allow() with a reason.
bool is_suppressed(const std::vector<std::string>& raw, std::size_t idx,
                   const std::string& rule) {
  const std::size_t lo = idx >= 3 ? idx - 3 : 0;
  for (std::size_t i = lo; i <= idx; ++i) {
    for (const Suppression& s : suppressions_on(raw[i])) {
      if (s.rule == rule && s.has_reason) return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Token scanning helpers

/// Find calls of `name` (optionally std:: or :: qualified, nothing else)
/// in a comment-stripped line; returns byte offsets of the identifier.
std::vector<std::size_t> find_banned_calls(const std::string& code,
                                           const std::string& name) {
  std::vector<std::size_t> hits;
  std::size_t pos = 0;
  while ((pos = code.find(name, pos)) != std::string::npos) {
    const std::size_t start = pos;
    const std::size_t end = pos + name.size();
    pos = end;
    if (end < code.size() && is_word(code[end])) continue;  // lgamma_r etc.
    // Must be a call: next non-space is '('.
    std::size_t p = end;
    while (p < code.size() && (code[p] == ' ' || code[p] == '\t')) ++p;
    if (p >= code.size() || code[p] != '(') continue;
    // Inspect the qualifier. Bare, std:: and global :: are the libc
    // entry points; any other qualifier (obj., other_ns::, ->) is a
    // different function and legal.
    if (start == 0) {
      hits.push_back(start);
      continue;
    }
    const char prev = code[start - 1];
    if (is_word(prev) || prev == '.') continue;  // member/part of identifier
    if (prev == '>') continue;                   // ptr->rand()
    if (prev == ':') {
      if (start < 2 || code[start - 2] != ':') continue;  // lone ':' — label?
      std::size_t q = start - 2;  // points at first ':' of "::"
      // Walk the qualifier identifier before "::".
      std::size_t qe = q;
      while (qe > 0 && is_word(code[qe - 1])) --qe;
      const std::string qual = code.substr(qe, q - qe);
      if (!qual.empty() && qual != "std") continue;  // other namespace
    }
    hits.push_back(start);
  }
  return hits;
}

/// Occurrences of `token` with word boundaries on both sides.
std::vector<std::size_t> find_token(const std::string& code,
                                    const std::string& token) {
  std::vector<std::size_t> hits;
  std::size_t pos = 0;
  while ((pos = code.find(token, pos)) != std::string::npos) {
    const std::size_t start = pos;
    const std::size_t end = pos + token.size();
    pos = end;
    if (start > 0 && is_word(code[start - 1])) continue;
    if (end < code.size() && is_word(code[end])) continue;
    hits.push_back(start);
  }
  return hits;
}

/// Containers whose function-local `static` instances have repeatedly
/// turned out to be hidden shared mutable state (the bench_common.hpp
/// result-cache bug): flagged unless declared const/constexpr.
const std::set<std::string>& mutable_container_names() {
  static const std::set<std::string> names = {
      "map",      "unordered_map", "multimap", "unordered_multimap",
      "set",      "unordered_set", "multiset", "unordered_multiset",
      "vector",   "deque",         "list",     "forward_list",
      "string",   "basic_string"};
  return names;
}

/// Detect `static std::<container>... name ...` declarations that are not
/// const-qualified and not function declarations. `window` is the
/// comment-stripped text starting at the byte after the `static` token
/// (may span several joined lines so multi-line declarations parse).
bool is_mutable_static_container(const std::string& window) {
  std::size_t p = 0;
  const auto skip_ws = [&] {
    while (p < window.size() &&
           (window[p] == ' ' || window[p] == '\t'))
      ++p;
  };
  const auto read_word = [&] {
    std::string w;
    while (p < window.size() && is_word(window[p])) w += window[p++];
    return w;
  };

  // Specifiers between `static` and the type. const/constexpr make the
  // object immutable after its (thread-safe) dynamic initialization.
  for (;;) {
    skip_ws();
    const std::size_t mark = p;
    const std::string w = read_word();
    if (w == "const" || w == "constexpr") return false;
    if (w == "inline" || w == "thread_local" || w == "volatile") continue;
    p = mark;
    break;
  }

  // The type must be std::<container>.
  if (window.compare(p, 5, "std::") != 0) return false;
  p += 5;
  const std::string container = read_word();
  if (!mutable_container_names().count(container)) return false;

  // Balance template arguments, treating ">>" as two closes.
  skip_ws();
  if (p < window.size() && window[p] == '<') {
    int depth = 0;
    while (p < window.size()) {
      if (window[p] == '<') ++depth;
      else if (window[p] == '>' && --depth == 0) { ++p; break; }
      ++p;
    }
    if (depth != 0) return false;  // declaration continues past the window
  }

  // `const` after the type also makes it immutable.
  for (;;) {
    skip_ws();
    const std::size_t mark = p;
    const std::string w = read_word();
    if (w == "const") return false;
    if (w.empty()) { p = mark; break; }
    // First word after the type: the declared name (references/pointers to
    // the container get no special treatment — skip any sigils first).
    p = mark;
    break;
  }
  while (p < window.size() &&
         (window[p] == '&' || window[p] == '*' || window[p] == ' '))
    ++p;
  const std::string name = read_word();
  if (name.empty()) return false;

  // An identifier followed by '(' is a function declaration returning the
  // container (helo.hpp's `static std::vector<...> generalize(...)`) — a
  // different thing entirely.
  skip_ws();
  return p >= window.size() || window[p] != '(';
}

std::string include_target(const std::string& raw_line) {
  std::size_t p = raw_line.find_first_not_of(" \t");
  if (p == std::string::npos || raw_line[p] != '#') return "";
  ++p;
  while (p < raw_line.size() && (raw_line[p] == ' ' || raw_line[p] == '\t')) ++p;
  const std::string kw = "include";
  if (raw_line.compare(p, kw.size(), kw) != 0) return "";
  p += kw.size();
  while (p < raw_line.size() && (raw_line[p] == ' ' || raw_line[p] == '\t')) ++p;
  if (p >= raw_line.size() || raw_line[p] != '"') return "";
  const std::size_t close = raw_line.find('"', p + 1);
  if (close == std::string::npos) return "";
  return raw_line.substr(p + 1, close - p - 1);
}

}  // namespace

std::vector<Finding> lint_file(const std::string& path,
                               const std::string& contents) {
  std::vector<Finding> findings;
  const bool is_header = ends_with(path, ".hpp") || ends_with(path, ".h");
  const bool is_wrapper = ends_with(path, "util/thread_annotations.hpp");
  const std::string module = module_of(path);

  const std::vector<std::string> raw = split_lines(contents);
  const std::vector<std::string> code = split_lines(strip_code(contents));

  auto report = [&](std::size_t idx, const std::string& rule,
                    const std::string& message) {
    if (is_suppressed(raw, idx, rule)) return;
    findings.push_back({path, idx + 1, rule, message});
  };

  // -- banned-call ----------------------------------------------------------
  static const std::array<std::pair<const char*, const char*>, 5> kBanned = {{
      {"lgamma", "writes the process-global signgam; use util::lgamma_mt"},
      {"rand", "hidden global PRNG state; use util::Rng"},
      {"strtok", "static tokenizer state; use util::split or strtok_r"},
      {"localtime", "returns a shared static tm; use localtime_r"},
      {"gmtime", "returns a shared static tm; use gmtime_r"},
  }};
  for (std::size_t i = 0; i < code.size(); ++i) {
    for (const auto& [name, why] : kBanned) {
      for (std::size_t off : find_banned_calls(code[i], name)) {
        (void)off;
        report(i, "banned-call",
               std::string("call to non-reentrant `") + name + "` (" + why +
                   ")");
      }
    }
  }

  // -- static-mutable -------------------------------------------------------
  // `static std::map<...> cache;` and friends: magic-static initialization
  // is thread-safe, every mutation after it is not. The bench result cache
  // shipped exactly this bug; the rule makes the pattern unwritable. Fix by
  // wrapping container + util::Mutex in a class (bench_common.hpp's
  // ExperimentCache) or declaring it const.
  for (std::size_t i = 0; i < code.size(); ++i) {
    for (std::size_t off : find_token(code[i], "static")) {
      std::string window = code[i].substr(off + 6);
      for (std::size_t j = i + 1; j < code.size() && j <= i + 2; ++j)
        window += " " + code[j];
      if (is_mutable_static_container(window)) {
        report(i, "static-mutable",
               "mutable `static` std:: container is shared state with no "
               "lock — wrap it with util::Mutex in a class (see "
               "bench_common.hpp ExperimentCache) or declare it const");
      }
    }
  }

  // -- raw-mutex ------------------------------------------------------------
  if (!is_wrapper) {
    static const std::array<const char*, 11> kRawSync = {
        "std::mutex",          "std::timed_mutex",
        "std::recursive_mutex", "std::recursive_timed_mutex",
        "std::shared_mutex",    "std::shared_timed_mutex",
        "std::condition_variable", "std::condition_variable_any",
        "std::lock_guard",      "std::unique_lock",
        "std::scoped_lock"};
    for (std::size_t i = 0; i < code.size(); ++i) {
      for (const char* tok : kRawSync) {
        for (std::size_t off : find_token(code[i], tok)) {
          (void)off;
          report(i, "raw-mutex",
                 std::string("`") + tok +
                     "` outside util/thread_annotations.hpp — use the "
                     "annotated util::Mutex/MutexLock/CondVar so "
                     "-Wthread-safety can check the lock discipline");
        }
      }
    }
  }

  // -- relaxed-comment ------------------------------------------------------
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (find_token(code[i], "memory_order_relaxed").empty()) continue;
    bool justified = false;
    const std::size_t lo = i >= 3 ? i - 3 : 0;
    for (std::size_t j = lo; j <= i && !justified; ++j) {
      justified = raw[j].find("relaxed:") != std::string::npos;
    }
    if (!justified) {
      report(i, "relaxed-comment",
             "memory_order_relaxed without a justifying `// relaxed: ...` "
             "comment on this line or the three above");
    }
  }

  // -- header hygiene -------------------------------------------------------
  if (is_header) {
    for (std::size_t i = 0; i < code.size(); ++i) {
      const std::string t = trim(code[i]);
      if (t.empty()) continue;
      if (t.rfind("#pragma once", 0) != 0) {
        report(i, "header-pragma",
               "header's first directive must be #pragma once");
      }
      break;  // only the first non-blank, non-comment line matters
    }
    for (std::size_t i = 0; i < code.size(); ++i) {
      if (!find_token(code[i], "using namespace").empty() ||
          trim(code[i]).rfind("using namespace", 0) == 0) {
        report(i, "header-using",
               "`using namespace` in a header leaks into every includer");
      }
    }
  }

  // -- layering -------------------------------------------------------------
  if (!module.empty()) {
    const auto& deps = layer_deps();
    const std::set<std::string>& allowed = deps.at(module);
    for (std::size_t i = 0; i < raw.size(); ++i) {
      const std::string inc = include_target(raw[i]);
      if (inc.empty()) continue;
      const std::size_t slash = inc.find('/');
      if (slash == std::string::npos) continue;
      const std::string inc_mod = inc.substr(0, slash);
      if (!deps.count(inc_mod)) continue;  // not a project module
      if (inc_mod == module || allowed.count(inc_mod)) continue;
      report(i, "layering",
             "module `" + module + "` must not include `" + inc_mod +
                 "/` (dependency DAG: see DESIGN.md §9)");
    }
  }

  return findings;
}

std::vector<Finding> lint_tree(const std::string& root) {
  namespace fs = std::filesystem;
  std::vector<fs::path> files;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc")
      files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());

  std::vector<Finding> findings;
  for (const fs::path& p : files) {
    std::ifstream in(p, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string rel = fs::relative(p, root).generic_string();
    auto file_findings = lint_file(rel, ss.str());
    findings.insert(findings.end(), file_findings.begin(), file_findings.end());
  }
  return findings;
}

std::string format(const std::vector<Finding>& findings) {
  std::ostringstream out;
  for (const Finding& f : findings) {
    out << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message
        << "\n";
  }
  return out.str();
}

}  // namespace elsa::lint
