// elsa-lint driver: lints one or more directories (default: src) with the
// per-file rules plus one whole-project lock-graph pass over their union,
// and exits non-zero when any finding survives suppression. Wired as a
// ctest gate (`elsa_lint_src`), the `lint` convenience target, and a CI
// job, so every future PR is checked against the project's concurrency
// conventions.
//
// Usage: elsa_lint [--github] [dir ...]
//   --github   additionally emit GitHub Actions workflow annotations
//              (::error file=…,line=…::…) on stdout, so findings surface
//              inline on the PR diff.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "lint_rules.hpp"

int main(int argc, char** argv) {
  bool github = false;
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--github") == 0)
      github = true;
    else
      roots.emplace_back(argv[i]);
  }
  if (roots.empty()) roots.emplace_back("src");

  const std::vector<elsa::lint::Finding> findings =
      elsa::lint::lint_roots(roots);

  if (findings.empty()) {
    std::printf("elsa-lint: clean (%zu director%s checked)\n", roots.size(),
                roots.size() == 1 ? "y" : "ies");
    return 0;
  }
  std::fputs(elsa::lint::format(findings).c_str(), stderr);
  if (github) std::fputs(elsa::lint::format_github(findings).c_str(), stdout);
  std::fprintf(stderr, "elsa-lint: %zu finding(s)\n", findings.size());
  return 1;
}
