// elsa-lint driver: lints one or more directories (default: src) and exits
// non-zero when any finding survives suppression. Wired as a ctest gate
// (`elsa_lint_src`), the `lint` convenience target, and a CI job, so every
// future PR is checked against the project's concurrency conventions.
//
// Usage: elsa_lint [dir ...]
#include <cstdio>
#include <string>
#include <vector>

#include "lint_rules.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) roots.emplace_back(argv[i]);
  if (roots.empty()) roots.emplace_back("src");

  std::vector<elsa::lint::Finding> findings;
  for (const std::string& root : roots) {
    auto fs = elsa::lint::lint_tree(root);
    findings.insert(findings.end(), fs.begin(), fs.end());
  }

  if (findings.empty()) {
    std::printf("elsa-lint: clean (%zu director%s checked)\n", roots.size(),
                roots.size() == 1 ? "y" : "ies");
    return 0;
  }
  std::fputs(elsa::lint::format(findings).c_str(), stderr);
  std::fprintf(stderr, "elsa-lint: %zu finding(s)\n", findings.size());
  return 1;
}
