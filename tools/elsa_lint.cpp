// elsa-lint driver: lints one or more directories (default: src) with the
// per-file rules plus one whole-project lock-graph pass and one
// atomics-protocol pass over their union. Wired as a ctest gate
// (`elsa_lint_src`), the `lint` convenience target, and a CI job, so every
// future PR is checked against the project's concurrency conventions.
//
// Exit codes (the CI job relies on the distinction):
//   0  clean — every root scanned, no findings
//   1  findings survived suppression (printed to stderr)
//   2  internal error — a root is not a directory or a file could not be
//      read; the scan was incomplete, so "no findings" would be vacuous
//
// Usage: elsa_lint [--github] [--list-rules] [dir ...]
//   --github     additionally emit GitHub Actions workflow annotations
//                (::error file=…,line=…::…) on stdout, so findings surface
//                inline on the PR diff.
//   --list-rules print every rule id, one-line description, and self-test
//                fixture path, then exit 0 without scanning. The table is
//                generated from the same rule_table() a self-test pins, so
//                the CI log, README, and binary cannot drift apart.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "lint_rules.hpp"

int main(int argc, char** argv) {
  bool github = false;
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--github") == 0) {
      github = true;
    } else if (std::strcmp(argv[i], "--list-rules") == 0) {
      std::fputs(elsa::lint::format_rule_table().c_str(), stdout);
      return 0;
    } else {
      roots.emplace_back(argv[i]);
    }
  }
  if (roots.empty()) roots.emplace_back("src");

  std::vector<std::string> errors;
  const std::vector<elsa::lint::Finding> findings =
      elsa::lint::lint_roots(roots, &errors);

  if (!findings.empty()) {
    std::fputs(elsa::lint::format(findings).c_str(), stderr);
    if (github)
      std::fputs(elsa::lint::format_github(findings).c_str(), stdout);
    std::fprintf(stderr, "elsa-lint: %zu finding(s)\n", findings.size());
  }
  if (!errors.empty()) {
    for (const std::string& e : errors)
      std::fprintf(stderr, "elsa-lint: error: %s\n", e.c_str());
    std::fprintf(stderr, "elsa-lint: %zu internal error(s) — scan incomplete\n",
                 errors.size());
    return 2;  // incomplete scan outranks "findings": the gate cannot vouch
  }
  if (!findings.empty()) return 1;
  std::printf("elsa-lint: clean (%zu director%s checked)\n", roots.size(),
              roots.size() == 1 ? "y" : "ies");
  return 0;
}
