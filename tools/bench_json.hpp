// BENCH_*.json: the benchmark-regression interchange format.
//
// Schema (documented here and in DESIGN.md §10; CI's nightly bench job
// emits it, bench_check gates on it):
//
//   {
//     "schema": "elsa-bench-v1",
//     "benches": {
//       "<bench name>": {
//         "items_per_sec": <double>,   // throughput, the gated number
//         "p50_us":        <double>,   // latency percentiles, warn-only
//         "p99_us":        <double>
//       },
//       ...
//     }
//   }
//
// Bench names are hierarchical by convention: "serve_throughput/shards=4",
// "analysis_time/mercury_storms". The committed baselines live under
// bench/baselines/ and hold conservative floors (deliberately below any
// healthy run on supported hardware), so the gate catches real structural
// regressions rather than scheduler noise. compare() fails a bench when
// current items_per_sec < baseline * (1 - tolerance) or when a baseline
// bench is missing from the current run; latency drifts and benches absent
// from the baseline only warn.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace elsa::benchjson {

inline constexpr const char* kSchema = "elsa-bench-v1";

struct BenchPoint {
  double items_per_sec = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

/// name -> point; std::map keeps emission order deterministic.
using BenchMap = std::map<std::string, BenchPoint>;

/// Serialise (schema header included).
std::string to_json(const BenchMap& benches);

/// Write to `path`; false on I/O failure.
bool write_file(const std::string& path, const BenchMap& benches);

/// Parse a BENCH_*.json document. Tolerant of unknown per-bench keys;
/// throws std::runtime_error on malformed JSON or a wrong/missing schema
/// marker.
BenchMap parse(const std::string& json);

/// Read + parse; throws std::runtime_error (file missing or malformed).
BenchMap read_file(const std::string& path);

struct CompareReport {
  std::vector<std::string> failures;  ///< gate: regressions, missing benches
  std::vector<std::string> warnings;  ///< latency drift, new benches
  bool ok() const { return failures.empty(); }
};

CompareReport compare(const BenchMap& baseline, const BenchMap& current,
                      double tolerance);

/// Human-readable multi-line report.
std::string format(const CompareReport& report);

/// Cores a bench row needs before its number means anything: a
/// "scaling=AvB" ratio row needs A cores (on fewer, the A-way run
/// multiplexes onto the same CPUs and can only tie or lose — gating the
/// ratio would fail every healthy run on a small runner); everything else
/// is meaningful on one core. Parsed from the name's final
/// "scaling=<A>v<B>" component.
std::size_t required_cores(const std::string& bench_name);

/// Drop every row of `m` needing more than `cores` (bench_check --cores).
/// Returns the dropped names, in map order, for ::notice reporting.
std::vector<std::string> drop_unsupported(BenchMap& m, std::size_t cores);

}  // namespace elsa::benchjson
