// Internal diagnostic: name-resolved dump of mined chains, predictions and
// ground truth for a BG/L campaign. Not installed; development aid.
#include <cstdio>
#include <iostream>
#include <map>
#include <unordered_map>

#include "elsa/pipeline.hpp"
#include "simlog/scenario.hpp"

using namespace elsa;

int main(int argc, char** argv) {
  const double days = argc > 1 ? std::atof(argv[1]) : 6.0;
  const int method_i = argc > 2 ? std::atoi(argv[2]) : 0;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 2012;
  auto scenario = simlog::make_bluegene_scenario(seed, days, 110);
  const auto trace = scenario.generator.generate(scenario.config);
  core::PipelineConfig cfg;
  const auto method = static_cast<core::Method>(method_i);
  const auto res = core::run_experiment(trace, std::min(scenario.train_days, days/2.0), method, cfg);

  // helo tid -> generator template name (majority vote)
  std::unordered_map<std::uint32_t, std::map<std::string,int>> votes;
  {
    // re-classify all records (classify_const against final miner)
    for (const auto& rec : trace.records) {
      auto tid = res.model.helo.classify_const(rec.message);
      if (tid == helo::TemplateMiner::kNoTemplate) continue;
      votes[tid][scenario.generator.catalog().at(rec.true_template).name]++;
    }
  }
  auto name_of = [&](std::uint32_t tid) -> std::string {
    auto it = votes.find(tid);
    if (it == votes.end()) return "helo#" + std::to_string(tid);
    std::string best; int bc = -1;
    for (auto& [n,c] : it->second) if (c > bc) { bc = c; best = n; }
    return best;
  };

  const std::int64_t train_end = trace.t_begin_ms + (std::int64_t)(std::min(scenario.train_days, days/2.0)*86400000.0);
  printf("== method %s: %zu chains (%zu non-error)\n", core::to_string(method),
         res.model.chains.size(), res.model.non_error_chains);
  for (size_t i = 0; i < res.model.chains.size(); ++i) {
    const auto& c = res.model.chains[i];
    printf("chain %zu%s sup=%d conf=%.2f sig=%.3f scope=%s : ", i,
           c.predictive() ? "*" : " ", c.support, c.confidence, c.significance,
           topo::to_string(c.location.scope));
    for (auto& it : c.items) printf("[%s +%d] ", name_of(it.signal).c_str(), it.delay);
    printf("\n");
  }

  printf("\n== seed pairs: %zu, outlier stream sizes (nonzero):\n",
         res.model.seeds.size());
  for (size_t t = 0; t < res.model.train_outliers.size(); ++t)
    if (!res.model.train_outliers[t].empty())
      printf("  %-28s %zu\n", name_of((std::uint32_t)t).c_str(),
             res.model.train_outliers[t].size());

  printf("\n== faults in train:\n");
  {
    std::map<std::string,int> tr;
    for (const auto& f : trace.faults)
      if (f.fail_time_ms < train_end) tr[f.category]++;
    for (auto& [k,v] : tr) printf("  %s: %d\n", k.c_str(), v);
  }

  printf("\n== faults in test:\n");
  std::map<std::string,int> ftot;
  for (size_t i = 0; i < trace.faults.size(); ++i) {
    const auto& f = trace.faults[i];
    if (f.fail_time_ms < train_end) continue;
    ftot[f.category]++;
  }
  for (auto& [k,v] : ftot) printf("  %s: %d\n", k.c_str(), v);

  printf("\n== predictions (%zu):\n", res.predictions.size());
  // correctness recheck
  core::EvalConfig ec = cfg.eval;
  for (const auto& p : res.predictions) {
    bool correct = false; std::string which;
    for (size_t i = 0; i < trace.faults.size(); ++i) {
      const auto& f = trace.faults[i];
      if (f.fail_time_ms < train_end) continue;
      const auto& ft = res.fault_failure_tmpls[i];
      if (std::find(ft.begin(), ft.end(), p.tmpl) == ft.end()) continue;
      auto slack = ec.slack_ms + (std::int64_t)(ec.slack_lead_factor * p.lead_ms);
      if (f.fail_time_ms > p.predicted_time_ms + slack) continue;
      if (f.fail_time_ms < p.trigger_time_ms - ec.trigger_grace_ms) continue;
      correct = true; which = f.category; break;
    }
    printf("  t=%.1fh chain=%zu tmpl=%s lead=%llds %s %s\n",
           p.trigger_time_ms/3.6e6, p.chain_id, name_of(p.tmpl).c_str(),
           (long long)p.lead_ms/1000, correct?"HIT":"FP ", which.c_str());
  }
  return 0;
}
