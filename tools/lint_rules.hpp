// elsa-lint: project-specific static checks that clang-tidy and
// -Wthread-safety cannot express, run as a ctest gate and a CI job.
//
// Rules (stable ids; DESIGN.md §9 documents each with its rationale):
//   banned-call     — non-reentrant/global-state libc calls (std::lgamma,
//                     rand, strtok, localtime, gmtime); use the audited
//                     wrappers (util::lgamma_mt, util::Rng, chrono).
//   raw-mutex       — std::mutex & friends outside the annotated wrapper
//                     (util/thread_annotations.hpp), which is the only
//                     surface -Wthread-safety can prove things about.
//   relaxed-comment — every memory_order_relaxed needs a nearby
//                     "// relaxed: <why>" justification.
//   static-mutable  — non-const `static` std:: containers (function-local
//                     or member) are unsynchronized shared state; wrap
//                     them in an internally locked class or mark const.
//   header-pragma   — headers start with #pragma once.
//   header-using    — no `using namespace` in headers.
//   layering        — module includes must follow the dependency DAG
//                     (e.g. simlog/signalkit must never include serve/).
//
// Whole-project lock-graph rules (lint_lock_graph / lint_roots): a second
// pass parses the thread-safety annotations (ELSA_REQUIRES / ELSA_ACQUIRE
// / ELSA_EXCLUDES) plus lexical MutexLock nesting across every scanned
// file, builds the global lock-acquisition graph, and reports:
//   lock-cycle          — a cycle in the acquisition order, with the full
//                         path and the file:line of every edge.
//   cv-wait-extra-lock  — a CondVar wait while a second mutex is held
//                         (the wait releases only its own mutex; anything
//                         else held starves every contender).
//   blocking-under-lock — a blocking call (Ring push/pop/pop_all, thread
//                         join, sleep, blocking I/O) under a held Mutex.
//
// A finding is suppressed by a comment on the same line or within the
// three lines above:  // elsa-lint: allow(<rule>): <reason>
// The reason is mandatory; an allow() without one does not suppress. For
// lock-cycle the allow() goes on any acquisition site participating in
// the cycle. Fixture trees are exempt wholesale: any path containing a
// `lint_fixtures` component is skipped by the directory walkers.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace elsa::lint {

struct Finding {
  std::string file;     ///< path as reported (relative to the lint root)
  std::size_t line = 0; ///< 1-based
  std::string rule;     ///< stable rule id, e.g. "banned-call"
  std::string message;
};

/// Lint one file's contents. `path` supplies the extension (header rules)
/// and the module for layering — pass a src-rooted path such as
/// "src/serve/ring.hpp" or a src-relative one such as "serve/ring.hpp".
std::vector<Finding> lint_file(const std::string& path,
                               const std::string& contents);

/// Recursively lint every *.hpp / *.cpp under `root` (normally src/) with
/// the per-file rules. Findings carry root-prefixed paths (root as given
/// joined with the file's relative path); order is deterministic. Paths
/// containing a `lint_fixtures` component are skipped.
std::vector<Finding> lint_tree(const std::string& root);

/// Whole-project lock-order pass over (path, contents) pairs: extracts
/// the global lock-acquisition graph from annotations and MutexLock
/// nesting, then reports lock-cycle / cv-wait-extra-lock /
/// blocking-under-lock. The annotated-primitive header itself
/// (util/thread_annotations.hpp) is exempt.
std::vector<Finding> lint_lock_graph(
    const std::vector<std::pair<std::string, std::string>>& files);

/// Full gate: per-file rules on every tree plus one lock-graph pass over
/// the union of all files (cross-root lock orders are real orders).
std::vector<Finding> lint_roots(const std::vector<std::string>& roots);

/// Render as "file:line: [rule] message" lines.
std::string format(const std::vector<Finding>& findings);

/// Render as GitHub Actions workflow annotations
/// ("::error file=…,line=…::…"), one per finding, for inline PR surfacing.
std::string format_github(const std::vector<Finding>& findings);

}  // namespace elsa::lint
