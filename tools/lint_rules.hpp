// elsa-lint: project-specific static checks that clang-tidy and
// -Wthread-safety cannot express, run as a ctest gate and a CI job.
//
// Rules (stable ids; DESIGN.md §9 documents each with its rationale):
//   banned-call     — non-reentrant/global-state libc calls (std::lgamma,
//                     rand, strtok, localtime, gmtime); use the audited
//                     wrappers (util::lgamma_mt, util::Rng, chrono).
//   raw-mutex       — std::mutex & friends outside the annotated wrapper
//                     (util/thread_annotations.hpp), which is the only
//                     surface -Wthread-safety can prove things about.
//   relaxed-comment — every memory_order_relaxed needs a nearby
//                     "// relaxed: <why>" justification.
//   static-mutable  — non-const `static` std:: containers (function-local
//                     or member) are unsynchronized shared state; wrap
//                     them in an internally locked class or mark const.
//   header-pragma   — headers start with #pragma once.
//   header-using    — no `using namespace` in headers.
//   layering        — module includes must follow the dependency DAG
//                     (e.g. simlog/signalkit must never include serve/).
//
// Whole-project lock-graph rules (lint_lock_graph / lint_roots): a second
// pass parses the thread-safety annotations (ELSA_REQUIRES / ELSA_ACQUIRE
// / ELSA_EXCLUDES) plus lexical MutexLock nesting across every scanned
// file, builds the global lock-acquisition graph, and reports:
//   lock-cycle          — a cycle in the acquisition order, with the full
//                         path and the file:line of every edge.
//   cv-wait-extra-lock  — a CondVar wait while a second mutex is held
//                         (the wait releases only its own mutex; anything
//                         else held starves every contender).
//   blocking-under-lock — a blocking call (Ring push/pop/pop_all, thread
//                         join, sleep, blocking I/O) under a held Mutex.
//
// Whole-project atomics-protocol rules (lint_atomics / lint_roots): a
// third pass scans every src/-module file for std::atomic field
// declarations and classifies every atomic load/store/RMW by its memory
// order, fusing field identity across files by qualified name (the way
// the lock-graph pass fuses lock sites):
//   atomic-undeclared        — a std::atomic field with no
//                              "// elsa-atomic: <protocol>" declaration
//                              naming one of: seqlock, spsc-seq,
//                              release-acquire-flag,
//                              striped-relaxed-counter, monotonic-relaxed
//                              (taxonomy: DESIGN.md §15).
//   acquire-release-unpaired — a release store of a field with no
//                              acquire/seq_cst load of it anywhere in the
//                              project (nothing consumes the
//                              publication), and vice versa.
//   rmw-order-too-weak       — a fully relaxed CAS/fetch on a field
//                              declared release-acquire-flag or spsc-seq
//                              (hand-off protocols need ordering on the
//                              mutating side).
//   fence-undocumented       — a bare std::atomic_thread_fence; fences
//                              order *all* surrounding accesses and
//                              defeat per-field protocol reasoning.
//
// Whole-project effect-inference rules (lint_effects / lint_roots): a
// fourth pass builds the project call graph with the same tokenizer /
// scope-walker / call-site fusion as the lock-graph pass, infers a
// per-function *effect set* (heap allocation, locking, blocking + I/O,
// wall-clock reads, std::random_device, unordered-container iteration),
// propagates it transitively through resolvable call edges, and checks
// two annotation contracts placed on function definitions:
//   // elsa-realtime      — the transitive closure must be allocation-,
//                           lock-, block- and I/O-free:
//     realtime-allocates  — new/make_unique/make_shared or a container
//                           growth call (push_back, insert, resize, …)
//                           reachable from an elsa-realtime function.
//     realtime-locks      — a MutexLock / .lock() acquisition reachable
//                           from an elsa-realtime function.
//     realtime-blocks     — a blocking call (sleep, condvar wait, join)
//                           or I/O (streams, FILE*) reachable from an
//                           elsa-realtime function.
//   // elsa-deterministic — the closure's outputs must be reproducible:
//     det-wall-clock      — a clock read (Clock::now, gettimeofday)
//                           reachable from an elsa-deterministic function.
//     det-random-device   — std::random_device (nondeterministic seed)
//                           reachable from an elsa-deterministic function.
//     det-unordered-escape— iteration over an unordered container or a
//                           pointer-keyed map/set (hash-seed / ASLR order)
//                           reachable from an elsa-deterministic function.
// Every finding is anchored at the *effect site* and names the annotated
// root plus the call path that reaches it. The pass is deliberately
// lexical and under-approximate (DESIGN.md §17 lists the blind spots);
// unresolvable calls contribute nothing, so a finding is always a real
// lexical fact about the closure it names.
//
// A finding is suppressed by a comment on the same line or within the
// three lines above:  // elsa-lint: allow(<rule>): <reason>
// The reason is mandatory; an allow() without one does not suppress. For
// lock-cycle the allow() goes on any acquisition site participating in
// the cycle. Fixture trees are exempt wholesale: any path containing a
// `lint_fixtures` component is skipped by the directory walkers.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace elsa::lint {

struct Finding {
  std::string file;     ///< path as reported (relative to the lint root)
  std::size_t line = 0; ///< 1-based
  std::string rule;     ///< stable rule id, e.g. "banned-call"
  std::string message;
};

/// Lint one file's contents. `path` supplies the extension (header rules)
/// and the module for layering — pass a src-rooted path such as
/// "src/serve/ring.hpp" or a src-relative one such as "serve/ring.hpp".
std::vector<Finding> lint_file(const std::string& path,
                               const std::string& contents);

/// Recursively lint every *.hpp / *.cpp under `root` (normally src/) with
/// the per-file rules. Findings carry root-prefixed paths (root as given
/// joined with the file's relative path); order is deterministic. Paths
/// containing a `lint_fixtures` component are skipped.
std::vector<Finding> lint_tree(const std::string& root);

/// Whole-project lock-order pass over (path, contents) pairs: extracts
/// the global lock-acquisition graph from annotations and MutexLock
/// nesting, then reports lock-cycle / cv-wait-extra-lock /
/// blocking-under-lock. The annotated-primitive header itself
/// (util/thread_annotations.hpp) is exempt.
std::vector<Finding> lint_lock_graph(
    const std::vector<std::pair<std::string, std::string>>& files);

/// One std::atomic field declaration found by the atomics pass, fused
/// across files by qualified id. This registry is the surface future
/// lock-free work (the RCU/epoch hot-swap of ROADMAP item 2) registers
/// its protocols through.
struct AtomicField {
  std::string id;        ///< "namespace::Class::field" (or "file::field")
  std::string protocol;  ///< declared protocol; "" if undeclared/unknown
  std::string file;
  std::size_t line = 0;  ///< 1-based declaration line
};

/// The closed set of declarable atomic protocols (DESIGN.md §15).
const std::vector<std::string>& atomic_protocols();

/// Whole-project atomics-protocol pass over (path, contents) pairs:
/// atomic-undeclared / acquire-release-unpaired / rmw-order-too-weak /
/// fence-undocumented. Only files belonging to a src/ module participate
/// (bench/tests/tools are consumers, not protocol owners).
std::vector<Finding> lint_atomics(
    const std::vector<std::pair<std::string, std::string>>& files);

/// The declared-field registry the atomics pass builds, for tooling and
/// tests. Sorted by id; includes undeclared fields (empty protocol).
std::vector<AtomicField> atomic_registry(
    const std::vector<std::pair<std::string, std::string>>& files);

/// Whole-project effect-inference pass over (path, contents) pairs:
/// realtime-allocates / realtime-locks / realtime-blocks /
/// det-wall-clock / det-random-device / det-unordered-escape. Only
/// src/-module files participate (annotations live on the hot paths);
/// the test-harness headers util/thread_annotations.hpp and
/// util/interleave.hpp are exempt (their production builds are no-ops).
std::vector<Finding> lint_effects(
    const std::vector<std::pair<std::string, std::string>>& files);

/// One contract-annotated function found by the effect pass, fused across
/// files by qualified id. The pin test asserts this registry against the
/// live tree so the pass cannot go vacuous.
struct EffectFn {
  std::string id;        ///< "ns::Class::fn" (or "file::fn" at file scope)
  std::string contract;  ///< "realtime", "deterministic" or
                         ///< "realtime+deterministic"
  std::string file;
  std::size_t line = 0;  ///< 1-based line of the definition's open brace
};

/// The annotated-function registry the effect pass builds, for tooling
/// and tests. Sorted by id.
std::vector<EffectFn> effect_registry(
    const std::vector<std::pair<std::string, std::string>>& files);

/// One row of the `elsa_lint --list-rules` table.
struct RuleInfo {
  std::string id;           ///< stable rule id, e.g. "realtime-allocates"
  std::string description;  ///< one line
  std::string fixture;      ///< repo-relative self-test fixture path
};

/// Every rule the linter can emit, sorted by id. The driver prints this
/// for --list-rules and a self-test pins it, so the README table, the CI
/// log and the binary cannot drift apart.
const std::vector<RuleInfo>& rule_table();

/// Render rule_table() as aligned "id  description  fixture" lines.
std::string format_rule_table();

/// Full gate: per-file rules on every tree plus one lock-graph pass, one
/// atomics pass and one effect pass over the union of all files
/// (cross-root lock orders, cross-file atomic pairings and cross-file
/// call chains are real).
std::vector<Finding> lint_roots(const std::vector<std::string>& roots);

/// As above, but internal problems (a lint root that is not a directory,
/// an unreadable file) are appended to `errors` instead of being silently
/// skipped. The driver maps findings to exit 1 and errors to exit 2.
std::vector<Finding> lint_roots(const std::vector<std::string>& roots,
                                std::vector<std::string>* errors);

/// Render as "file:line: [rule] message" lines.
std::string format(const std::vector<Finding>& findings);

/// Render as GitHub Actions workflow annotations
/// ("::error file=…,line=…::…"), one per finding, for inline PR surfacing.
std::string format_github(const std::vector<Finding>& findings);

}  // namespace elsa::lint
