// elsa-lint: project-specific static checks that clang-tidy and
// -Wthread-safety cannot express, run as a ctest gate and a CI job.
//
// Rules (stable ids; DESIGN.md §9 documents each with its rationale):
//   banned-call     — non-reentrant/global-state libc calls (std::lgamma,
//                     rand, strtok, localtime, gmtime); use the audited
//                     wrappers (util::lgamma_mt, util::Rng, chrono).
//   raw-mutex       — std::mutex & friends outside the annotated wrapper
//                     (util/thread_annotations.hpp), which is the only
//                     surface -Wthread-safety can prove things about.
//   relaxed-comment — every memory_order_relaxed needs a nearby
//                     "// relaxed: <why>" justification.
//   static-mutable  — non-const `static` std:: containers (function-local
//                     or member) are unsynchronized shared state; wrap
//                     them in an internally locked class or mark const.
//   header-pragma   — headers start with #pragma once.
//   header-using    — no `using namespace` in headers.
//   layering        — module includes must follow the dependency DAG
//                     (e.g. simlog/signalkit must never include serve/).
//
// A finding is suppressed by a comment on the same line or within the
// three lines above:  // elsa-lint: allow(<rule>): <reason>
// The reason is mandatory; an allow() without one does not suppress.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace elsa::lint {

struct Finding {
  std::string file;     ///< path as reported (relative to the lint root)
  std::size_t line = 0; ///< 1-based
  std::string rule;     ///< stable rule id, e.g. "banned-call"
  std::string message;
};

/// Lint one file's contents. `path` supplies the extension (header rules)
/// and the module for layering — pass a src-rooted path such as
/// "src/serve/ring.hpp" or a src-relative one such as "serve/ring.hpp".
std::vector<Finding> lint_file(const std::string& path,
                               const std::string& contents);

/// Recursively lint every *.hpp / *.cpp under `root` (normally src/).
/// Findings carry paths relative to `root`; order is deterministic.
std::vector<Finding> lint_tree(const std::string& root);

/// Render as "file:line: [rule] message" lines.
std::string format(const std::vector<Finding>& findings);

}  // namespace elsa::lint
