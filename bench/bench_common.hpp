// Shared fixtures for the reproduction benchmarks: the canonical Blue
// Gene/L-like and Mercury-like campaigns (fixed seeds so every bench binary
// reports against the same data) and cached experiment runs.
#pragma once

#include <map>

#include "elsa/pipeline.hpp"
#include "simlog/scenario.hpp"

namespace elsa::benchx {

inline constexpr double kTrainDays = 4.0;

inline const simlog::Trace& bgl_trace() {
  static const simlog::Trace trace = [] {
    auto sc = simlog::make_bluegene_scenario(2012, 12.0, 110);
    return sc.generator.generate(sc.config);
  }();
  return trace;
}

inline const simlog::Trace& mercury_trace() {
  static const simlog::Trace trace = [] {
    auto sc = simlog::make_mercury_scenario(2006, 12.0, 130);
    return sc.generator.generate(sc.config);
  }();
  return trace;
}

/// Cached full experiment on the BG/L campaign.
inline const core::ExperimentResult& bgl_experiment(core::Method m) {
  static std::map<int, core::ExperimentResult> cache;
  const int key = static_cast<int>(m);
  auto it = cache.find(key);
  if (it == cache.end()) {
    core::PipelineConfig cfg;
    it = cache.emplace(key, core::run_experiment(bgl_trace(), kTrainDays, m,
                                                 cfg)).first;
  }
  return it->second;
}

inline const core::ExperimentResult& mercury_experiment(core::Method m) {
  static std::map<int, core::ExperimentResult> cache;
  const int key = static_cast<int>(m);
  auto it = cache.find(key);
  if (it == cache.end()) {
    core::PipelineConfig cfg;
    it = cache.emplace(key, core::run_experiment(mercury_trace(), kTrainDays,
                                                 m, cfg)).first;
  }
  return it->second;
}

}  // namespace elsa::benchx
