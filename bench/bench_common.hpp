// Shared fixtures for the reproduction benchmarks: the canonical Blue
// Gene/L-like and Mercury-like campaigns (fixed seeds so every bench binary
// reports against the same data) and cached experiment runs.
#pragma once

#include <map>

#include "elsa/pipeline.hpp"
#include "simlog/scenario.hpp"
#include "util/thread_annotations.hpp"

namespace elsa::benchx {

inline constexpr double kTrainDays = 4.0;

inline const simlog::Trace& bgl_trace() {
  static const simlog::Trace trace = [] {
    auto sc = simlog::make_bluegene_scenario(2012, 12.0, 110);
    return sc.generator.generate(sc.config);
  }();
  return trace;
}

inline const simlog::Trace& mercury_trace() {
  static const simlog::Trace trace = [] {
    auto sc = simlog::make_mercury_scenario(2006, 12.0, 130);
    return sc.generator.generate(sc.config);
  }();
  return trace;
}

/// Mutex-guarded memo of experiment runs keyed by method. Benchmarks run
/// multi-threaded repetitions, so the memo must be safe to hit from any
/// bench thread. Before PR 4 this was a bare function-local
/// `static std::map` mutated outside the (thread-safe) initializer — a
/// data race the moment two threads missed the cache together; the
/// `static-mutable` lint rule now rejects that pattern outright.
/// Returning `const&` is safe: std::map never invalidates element
/// references on insert.
class ExperimentCache {
 public:
  explicit ExperimentCache(const simlog::Trace& (*trace)()) : trace_(trace) {}

  const core::ExperimentResult& get(core::Method m) ELSA_EXCLUDES(mu_) {
    util::MutexLock lk(mu_);
    const int key = static_cast<int>(m);
    auto it = cache_.find(key);
    if (it == cache_.end()) {
      core::PipelineConfig cfg;
      it = cache_.emplace(key, core::run_experiment(trace_(), kTrainDays, m,
                                                    cfg)).first;
    }
    return it->second;
  }

 private:
  const simlog::Trace& (*trace_)();
  // Rank kBenchCache (outermost): get() runs a whole experiment under this
  // lock, which reaches the thread pool (kThreadPool) and the lgamma
  // serializer (kLeaf) — both strictly below it.
  util::Mutex mu_{"benchx::ExperimentCache::mu_", util::lockrank::kBenchCache};
  std::map<int, core::ExperimentResult> cache_ ELSA_GUARDED_BY(mu_);
};

/// Cached full experiment on the BG/L campaign.
inline const core::ExperimentResult& bgl_experiment(core::Method m) {
  static ExperimentCache cache(&bgl_trace);
  return cache.get(m);
}

inline const core::ExperimentResult& mercury_experiment(core::Method m) {
  static ExperimentCache cache(&mercury_trace);
  return cache.get(m);
}

}  // namespace elsa::benchx
