// Reproduces §VI.A: the analysis window — how long the online phase takes
// to turn an observed symptom into an issued prediction — across traffic
// regimes. Paper: negligible at the systems' average ~5 msg/s, ~2.5 s
// during ~100 msg/s bursts, worst case 8.43 s during a Mercury NFS storm;
// the pure-signal baseline exceeded 30 s under bursts.
//
// Two kinds of numbers are reported: the calibrated analysis-queue model
// (2012-era toolchain costs; what the evaluation uses for prediction
// lateness) and the real measured wall-clock throughput of this C++
// implementation.
#include <benchmark/benchmark.h>

#include <chrono>
#include <iostream>

#include "bench_common.hpp"
#include "elsa/online.hpp"
#include "elsa/report.hpp"
#include "util/ascii.hpp"

namespace {

using namespace elsa;

core::EngineConfig engine_config(const core::PipelineConfig& cfg,
                                 bool signal_only) {
  core::EngineConfig ec = cfg.engine;
  ec.dt_ms = cfg.dt_ms;
  if (signal_only) {
    ec.cost = cfg.signal_only_cost;
    ec.detector = cfg.signal_only_detector;
  }
  return ec;
}

/// Replay a trace through an engine built from a trained model; returns the
/// modelled analysis-window stats plus measured wall time.
struct Replay {
  core::AnalysisTimeReport model_windows;
  double wall_s = 0.0;
  double msgs_per_s_in = 0.0;
  std::size_t records = 0;
};

Replay replay(const core::OfflineModel& model, const simlog::Trace& trace,
              bool signal_only) {
  core::PipelineConfig cfg;
  core::OnlineEngine engine(trace.topology, model.chains, model.profiles,
                            engine_config(cfg, signal_only));
  auto helo = model.helo;  // copy: classification mutates online

  const auto start = std::chrono::steady_clock::now();
  for (const auto& rec : trace.records)
    engine.feed(rec, helo.classify(rec.message));
  engine.finish(trace.t_end_ms);
  const auto stop = std::chrono::steady_clock::now();

  Replay r;
  r.model_windows = core::analysis_time_report(engine.stats());
  r.wall_s = std::chrono::duration<double>(stop - start).count();
  r.msgs_per_s_in = trace.message_rate();
  r.records = trace.records.size();
  return r;
}

void print_row(util::AsciiTable& table, const char* regime, const Replay& r) {
  table.add_row(
      {regime, util::format_double(r.msgs_per_s_in, 1),
       util::format_double(r.model_windows.mean_ms / 1000.0, 2) + " s",
       util::format_double(r.model_windows.p95_ms / 1000.0, 2) + " s",
       util::format_double(r.model_windows.max_ms / 1000.0, 2) + " s",
       util::format_double(static_cast<double>(r.records) /
                               std::max(r.wall_s, 1e-9) / 1e6,
                           2) +
           " M msg/s"});
}

void print_analysis() {
  std::cout << "=== §VI.A: analysis window across traffic regimes ===\n"
            << "(modelled columns use the calibrated 2012-era cost model;\n"
            << " the last column is this implementation's real throughput)\n\n";

  const auto& bgl = benchx::bgl_experiment(core::Method::Hybrid);
  const auto& mer = benchx::mercury_experiment(core::Method::Hybrid);
  const auto& mer_sig = benchx::mercury_experiment(core::Method::SignalOnly);

  // Paper-average regime: the real systems averaged ~5 msg/s; the scaled
  // simulation runs at a fraction of that, so turn the background up.
  auto avg_scenario = simlog::make_bluegene_scenario(77, 1.0, 110);
  avg_scenario.config.background_scale = 10.0;
  const auto avg_trace = avg_scenario.generator.generate(avg_scenario.config);

  util::AsciiTable table({"regime", "msg/s", "mean window", "p95 window",
                          "max window", "measured thruput"});
  print_row(table, "BG/L normal (hybrid)",
            replay(bgl.model, benchx::bgl_trace(), false));
  print_row(table, "BG/L @ paper-average rate (hybrid)",
            replay(bgl.model, avg_trace, false));
  print_row(table, "Mercury w/ NFS storms (hybrid)",
            replay(mer.model, benchx::mercury_trace(), false));
  print_row(table, "Mercury w/ NFS storms (signal-only)",
            replay(mer_sig.model, benchx::mercury_trace(), true));
  table.print(std::cout);

  std::cout << "\n(paper: negligible at the 5 msg/s average; ~2.5 s during "
               "bursts; worst\n case 8.43 s during a Mercury NFS storm; the "
               "signal-only toolchain\n exceeded 30 s under bursts)\n";
}

void BM_online_feed(benchmark::State& state) {
  const auto& res = benchx::bgl_experiment(core::Method::Hybrid);
  const auto& trace = benchx::bgl_trace();
  core::PipelineConfig cfg;
  for (auto _ : state) {
    core::OnlineEngine engine(trace.topology, res.model.chains,
                              res.model.profiles, engine_config(cfg, false));
    auto helo = res.model.helo;
    for (const auto& rec : trace.records)
      engine.feed(rec, helo.classify(rec.message));
    engine.finish(trace.t_end_ms);
    benchmark::DoNotOptimize(engine.predictions().size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.records.size()));
}
BENCHMARK(BM_online_feed)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_analysis();
  std::cout << "\n";
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
