// Reproduces §VI.A: the analysis window — how long the online phase takes
// to turn an observed symptom into an issued prediction — across traffic
// regimes. Paper: negligible at the systems' average ~5 msg/s, ~2.5 s
// during ~100 msg/s bursts, worst case 8.43 s during a Mercury NFS storm;
// the pure-signal baseline exceeded 30 s under bursts.
//
// Two kinds of numbers are reported: the calibrated analysis-queue model
// (2012-era toolchain costs; what the evaluation uses for prediction
// lateness) and the real measured wall-clock throughput of this C++
// implementation.
// --json PATH additionally emits a BENCH_analysis.json document (schema
// elsa-bench-v1, one "analysis_time/<regime>" entry per replay regime;
// items_per_sec is measured wall-clock throughput, the percentiles are the
// modelled analysis-window distribution) for the CI bench-regression gate.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "bench_json.hpp"
#include "elsa/online.hpp"
#include "elsa/report.hpp"
#include "util/ascii.hpp"

namespace {

using namespace elsa;

core::EngineConfig engine_config(const core::PipelineConfig& cfg,
                                 bool signal_only) {
  core::EngineConfig ec = cfg.engine;
  ec.dt_ms = cfg.dt_ms;
  if (signal_only) {
    ec.cost = cfg.signal_only_cost;
    ec.detector = cfg.signal_only_detector;
  }
  return ec;
}

/// Replay a trace through an engine built from a trained model; returns the
/// modelled analysis-window stats plus measured wall time.
struct Replay {
  core::AnalysisTimeReport model_windows;
  double wall_s = 0.0;
  double msgs_per_s_in = 0.0;
  std::size_t records = 0;
  double window_p50_ms = 0.0;  ///< modelled analysis-window percentiles
  double window_p99_ms = 0.0;
};

double percentile(const std::vector<float>& samples, double q) {
  if (samples.empty()) return 0.0;
  std::vector<double> xs(samples.begin(), samples.end());
  std::sort(xs.begin(), xs.end());
  const std::size_t idx = static_cast<std::size_t>(
      q * static_cast<double>(xs.size() - 1) + 0.5);
  return xs[std::min(idx, xs.size() - 1)];
}

Replay replay(const core::OfflineModel& model, const simlog::Trace& trace,
              bool signal_only) {
  core::PipelineConfig cfg;
  core::OnlineEngine engine(trace.topology, model.chains, model.profiles,
                            engine_config(cfg, signal_only));
  auto helo = model.helo;  // copy: classification mutates online

  const auto start = std::chrono::steady_clock::now();
  for (const auto& rec : trace.records)
    engine.feed(rec, helo.classify(rec.message));
  engine.finish(trace.t_end_ms);
  const auto stop = std::chrono::steady_clock::now();

  Replay r;
  r.model_windows = core::analysis_time_report(engine.stats());
  r.wall_s = std::chrono::duration<double>(stop - start).count();
  r.msgs_per_s_in = trace.message_rate();
  r.records = trace.records.size();
  r.window_p50_ms = percentile(engine.stats().analysis_window_ms, 0.50);
  r.window_p99_ms = percentile(engine.stats().analysis_window_ms, 0.99);
  return r;
}

void print_row(util::AsciiTable& table, const char* regime, const Replay& r) {
  table.add_row(
      {regime, util::format_double(r.msgs_per_s_in, 1),
       util::format_double(r.model_windows.mean_ms / 1000.0, 2) + " s",
       util::format_double(r.model_windows.p95_ms / 1000.0, 2) + " s",
       util::format_double(r.model_windows.max_ms / 1000.0, 2) + " s",
       util::format_double(static_cast<double>(r.records) /
                               std::max(r.wall_s, 1e-9) / 1e6,
                           2) +
           " M msg/s"});
}

void print_analysis(benchjson::BenchMap& bench_out) {
  std::cout << "=== §VI.A: analysis window across traffic regimes ===\n"
            << "(modelled columns use the calibrated 2012-era cost model;\n"
            << " the last column is this implementation's real throughput)\n\n";

  const auto& bgl = benchx::bgl_experiment(core::Method::Hybrid);
  const auto& mer = benchx::mercury_experiment(core::Method::Hybrid);
  const auto& mer_sig = benchx::mercury_experiment(core::Method::SignalOnly);

  // Paper-average regime: the real systems averaged ~5 msg/s; the scaled
  // simulation runs at a fraction of that, so turn the background up.
  auto avg_scenario = simlog::make_bluegene_scenario(77, 1.0, 110);
  avg_scenario.config.background_scale = 10.0;
  const auto avg_trace = avg_scenario.generator.generate(avg_scenario.config);

  util::AsciiTable table({"regime", "msg/s", "mean window", "p95 window",
                          "max window", "measured thruput"});
  const auto run = [&](const char* regime, const char* bench_name,
                       const core::OfflineModel& model,
                       const simlog::Trace& trace, bool signal_only) {
    const Replay r = replay(model, trace, signal_only);
    print_row(table, regime, r);
    bench_out[std::string("analysis_time/") + bench_name] = {
        static_cast<double>(r.records) / std::max(r.wall_s, 1e-9),
        r.window_p50_ms * 1000.0, r.window_p99_ms * 1000.0};
  };
  run("BG/L normal (hybrid)", "bgl_normal", bgl.model, benchx::bgl_trace(),
      false);
  run("BG/L @ paper-average rate (hybrid)", "bgl_avg_rate", bgl.model,
      avg_trace, false);
  run("Mercury w/ NFS storms (hybrid)", "mercury_storms", mer.model,
      benchx::mercury_trace(), false);
  run("Mercury w/ NFS storms (signal-only)", "mercury_storms_signal",
      mer_sig.model, benchx::mercury_trace(), true);
  table.print(std::cout);

  std::cout << "\n(paper: negligible at the 5 msg/s average; ~2.5 s during "
               "bursts; worst\n case 8.43 s during a Mercury NFS storm; the "
               "signal-only toolchain\n exceeded 30 s under bursts)\n";
}

void BM_online_feed(benchmark::State& state) {
  const auto& res = benchx::bgl_experiment(core::Method::Hybrid);
  const auto& trace = benchx::bgl_trace();
  core::PipelineConfig cfg;
  for (auto _ : state) {
    core::OnlineEngine engine(trace.topology, res.model.chains,
                              res.model.profiles, engine_config(cfg, false));
    auto helo = res.model.helo;
    for (const auto& rec : trace.records)
      engine.feed(rec, helo.classify(rec.message));
    engine.finish(trace.t_end_ms);
    benchmark::DoNotOptimize(engine.predictions().size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.records.size()));
}
BENCHMARK(BM_online_feed)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // Strip --json before google-benchmark sees (and rejects) it.
  std::string json_path;
  int out_argc = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      argv[out_argc++] = argv[i];
    }
  }
  argc = out_argc;

  elsa::benchjson::BenchMap bench_out;
  print_analysis(bench_out);
  std::cout << "\n";
  if (!json_path.empty()) {
    if (!elsa::benchjson::write_file(json_path, bench_out)) {
      std::cerr << "failed to write " << json_path << "\n";
      return 1;
    }
    std::cout << "wrote " << json_path << "\n\n";
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
