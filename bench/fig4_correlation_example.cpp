// Reproduces Fig 4: the binarised-signal correlation example — three
// signals whose outliers align at fixed delays (the last two shifted by
// one minute), the representation handed to the gradual itemset miner.
#include <benchmark/benchmark.h>

#include <iostream>

#include "elsa/grite.hpp"
#include "signalkit/xcorr.hpp"
#include "util/ascii.hpp"
#include "util/rng.hpp"

namespace {

using namespace elsa;

struct Example {
  std::vector<sigkit::OutlierStream> streams;
  std::size_t total_samples = 1200;
};

Example make_example() {
  util::Rng rng(3);
  Example ex;
  ex.streams.resize(3);
  std::int32_t t = 40;
  for (int i = 0; i < 14; ++i) {
    ex.streams[0].push_back(t);
    ex.streams[1].push_back(t + 2);  // 20 s later
    ex.streams[2].push_back(t + 8);  // one minute after S2 (6 samples)
    t += static_cast<std::int32_t>(rng.range(60, 110));
  }
  return ex;
}

std::string binarised(const sigkit::OutlierStream& s, std::size_t n,
                      std::size_t width = 100) {
  std::vector<double> v(n, 0.0);
  for (const std::int32_t i : s)
    if (static_cast<std::size_t>(i) < n) v[static_cast<std::size_t>(i)] = 1.0;
  return util::sparkline(v, width);
}

void print_fig4() {
  const auto ex = make_example();
  std::cout << "=== Fig 4: correlation example between three signals ===\n"
            << "(binarised outlier signals; S3 lags S2 by one minute)\n\n";
  for (std::size_t s = 0; s < ex.streams.size(); ++s)
    std::cout << "S" << s + 1 << " |"
              << binarised(ex.streams[s], ex.total_samples) << "|\n";

  sigkit::XcorrConfig cfg;
  cfg.total_samples = ex.total_samples;
  cfg.min_support = 3;
  cfg.min_confidence = 0.3;
  cfg.max_chance_pvalue = 1e-3;
  const auto pairs = sigkit::correlate_all(ex.streams, cfg);
  std::cout << "\ninitial gradual itemsets from cross-correlation:\n";
  for (const auto& p : pairs)
    std::cout << "  {(S" << p.a + 1 << ", 0), (S" << p.b + 1 << ", "
              << p.delay << ")}  support=" << p.support
              << " conf=" << util::format_pct(p.confidence) << "\n";

  core::GriteConfig gc;
  gc.min_support = 3;
  gc.min_confidence = 0.3;
  gc.total_samples = ex.total_samples;
  const auto chains = core::mine_gradual_itemsets(ex.streams, pairs, gc);
  std::cout << "\nGRITE join result:\n";
  for (const auto& c : chains) {
    if (c.items.size() < 3) continue;
    std::cout << "  {";
    for (std::size_t j = 0; j < c.items.size(); ++j)
      std::cout << (j ? ", " : "") << "(S" << c.items[j].signal + 1 << ", "
                << c.items[j].delay << ")";
    std::cout << "}  support=" << c.support << "\n";
  }
}

void BM_correlate_pair(benchmark::State& state) {
  const auto ex = make_example();
  sigkit::XcorrConfig cfg;
  cfg.total_samples = ex.total_samples;
  cfg.min_support = 3;
  for (auto _ : state) {
    auto pc = sigkit::correlate_pair(ex.streams[0], ex.streams[2], 0, 2, cfg);
    benchmark::DoNotOptimize(pc);
  }
}
BENCHMARK(BM_correlate_pair);

}  // namespace

int main(int argc, char** argv) {
  print_fig4();
  std::cout << "\n";
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
