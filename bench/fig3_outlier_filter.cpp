// Reproduces Fig 3: on-line outlier detection with replacement on a
// synthetic noise signal — the original series, the detector's outlier
// calls, and the cleaned series the replacement strategy records.
#include <benchmark/benchmark.h>

#include <iostream>

#include "elsa/outlier.hpp"
#include "elsa/profile.hpp"
#include "util/ascii.hpp"
#include "util/rng.hpp"

namespace {

using namespace elsa;

struct SyntheticSeries {
  std::vector<double> original;
  std::vector<int> truth;  ///< sample indices of injected outliers
};

SyntheticSeries make_series(std::size_t n = 600, std::uint64_t seed = 7) {
  util::Rng rng(seed);
  SyntheticSeries s;
  s.original.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    s.original[i] = static_cast<double>(rng.poisson(4.0));
  // Inject spikes, including one sustained burst (the case replacement is
  // designed for: a burst must not raise its own baseline).
  for (const int idx : {60, 61, 180, 320, 321, 322, 323, 324, 450}) {
    s.original[static_cast<std::size_t>(idx)] += rng.uniform(25.0, 45.0);
    s.truth.push_back(idx);
  }
  return s;
}

void print_fig3() {
  const auto series = make_series();
  core::SignalProfile prof;
  prof.cls = sigkit::SignalClass::Noise;
  prof.median = 4.0;
  prof.mad = 1.0;
  prof.spike_delta = 4.0 * 1.4826 * prof.mad;

  core::OnlineDetector det(prof, 128);
  std::vector<double> cleaned;
  std::vector<int> flagged;
  cleaned.reserve(series.original.size());
  for (std::size_t i = 0; i < series.original.size(); ++i) {
    const auto r = det.feed(series.original[i]);
    cleaned.push_back(r.replacement);
    if (r.kind != core::OutlierKind::None) flagged.push_back(static_cast<int>(i));
  }

  std::cout << "=== Fig 3: on-line outlier detection with replacement ===\n";
  std::cout << "\n(a) original data (" << series.truth.size()
            << " injected outliers)\n  "
            << util::sparkline(series.original, 100) << "\n";
  std::cout << "\n(b) signal after filtering (replaced values)\n  "
            << util::sparkline(cleaned, 100) << "\n\n";

  // Detection accuracy vs injected truth (episode-level).
  std::size_t caught = 0;
  for (const int t : series.truth)
    for (const int f : flagged)
      if (std::abs(f - t) <= 1) {
        ++caught;
        break;
      }
  std::cout << "outlier buckets flagged: " << flagged.size()
            << ", injected outliers caught: " << caught << "/"
            << series.truth.size() << "\n";
  double max_clean = 0.0;
  for (double v : cleaned) max_clean = std::max(max_clean, v);
  std::cout << "max value after replacement: " << max_clean
            << " (was " << *std::max_element(series.original.begin(),
                                             series.original.end())
            << ")\n";
}

void BM_detector_throughput(benchmark::State& state) {
  const auto series = make_series(100'000, 11);
  core::SignalProfile prof;
  prof.cls = sigkit::SignalClass::Noise;
  prof.median = 4.0;
  prof.spike_delta = 6.0;
  for (auto _ : state) {
    core::OnlineDetector det(prof, 8640);
    std::size_t outliers = 0;
    for (const double v : series.original)
      outliers += det.feed(v).kind != core::OutlierKind::None;
    benchmark::DoNotOptimize(outliers);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(series.original.size()));
}
BENCHMARK(BM_detector_throughput)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_fig3();
  std::cout << "\n";
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
