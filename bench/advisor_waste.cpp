// End-to-end advisor bench: replay a BG/L-like campaign through
// serve + CheckpointAdvisor (the full tap -> SPSC -> pump path), then
// price the emitted CheckpointSchedule against the static-optimum
// baseline with the schedule-driven simulator — the same loop
// `elsa advise` closes, measured for the regression gate.
//
//   ./build/bench/advisor_waste [days] [--json PATH]
//
// The gated number is replay throughput with the advisor attached
// (records/s through ingest -> shard -> predict -> tap -> advisor); the
// waste-gain lines are the reproduction's headline numbers and are
// printed for the log (EXPERIMENTS.md records them).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "advisor/service.hpp"
#include "bench_json.hpp"
#include "ckpt/simulator.hpp"
#include "ckpt/waste_model.hpp"
#include "elsa/pipeline.hpp"
#include "serve/replayer.hpp"
#include "simlog/scenario.hpp"

namespace {

using namespace elsa;

simlog::Trace truncated(const simlog::Trace& trace, std::int64_t end_ms) {
  simlog::Trace t = trace;
  while (!t.records.empty() && t.records.back().time_ms >= end_ms)
    t.records.pop_back();
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      positional.push_back(argv[i]);
    }
  }
  const double days = !positional.empty() ? std::atof(positional[0]) : 8.0;

  std::printf("generating %.0f-day BG/L-like campaign (seed 2012)...\n",
              days);
  auto sc = simlog::make_bluegene_scenario(2012, days);
  const auto trace = sc.generator.generate(sc.config);
  const std::int64_t train_end =
      trace.t_begin_ms +
      static_cast<std::int64_t>(days / 2.0 * 86'400'000.0);
  core::PipelineConfig pcfg;
  const auto model =
      core::train_offline(trace, train_end, core::Method::Hybrid, pcfg);

  advisor::AdvisorServiceConfig acfg;
  acfg.serve.shards = 4;
  acfg.serve.engine.use_location = true;
  serve::ReplayOptions ro;
  ro.max_retries = 3;

  // Calibration pass on the training window (same policy as
  // `elsa advise`: the estimator's gap -> MTTF ratio comes from measured
  // alarm episodes per known training failure, not the offline prior).
  {
    const simlog::Trace train = truncated(trace, train_end);
    advisor::AdvisorService calib(train.topology, model, acfg);
    serve::TraceReplayer crep(train, ro);
    crep.replay_into(calib.service(), nullptr);
    calib.finish(train_end);
    std::uint64_t episodes = 0, f_train = 0;
    for (const auto& p : calib.schedule().partitions)
      if (p.partition >= 0) episodes += p.episodes;
    for (const auto& f : trace.faults)
      if (f.fail_time_ms < train_end && f.initiating_node >= 0) ++f_train;
    if (episodes > 0 && f_train > 0)
      acfg.advisor.episodes_per_failure =
          static_cast<double>(episodes) / static_cast<double>(f_train);
  }

  // Timed full replay with the advisor attached.
  advisor::AdvisorService svc(trace.topology, model, acfg);
  serve::TraceReplayer replayer(trace, ro);
  const auto a = std::chrono::steady_clock::now();
  const std::size_t accepted = replayer.replay_into(svc.service(), nullptr);
  svc.finish(trace.t_end_ms);
  const auto b = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(b - a).count();
  svc.advisor().score(trace.faults, train_end);
  const auto sched = svc.schedule();
  std::printf(
      "replayed %zu records in %.2fs (%.0f records/s with advisor tap), "
      "advisor dropped %llu\n",
      accepted, secs, static_cast<double>(accepted) / secs,
      static_cast<unsigned long long>(svc.dropped()));

  // Price the schedule: adaptive vs the hindsight-optimal static interval
  // at the Table IV cost points (compact mirror of `elsa advise`).
  const auto& topo = trace.topology;
  const std::int32_t npm =
      std::max(1, topo.nodes_per_nodecard() * topo.nodecards_per_midplane());
  const std::int32_t nparts = std::max(1, topo.total_nodes() / npm);
  const double t0 = static_cast<double>(train_end) / 60000.0;
  const double t1 = static_cast<double>(trace.t_end_ms) / 60000.0;
  std::vector<std::vector<double>> fails(static_cast<std::size_t>(nparts));
  std::size_t total_fails = 0;
  for (const auto& f : trace.faults) {
    if (f.fail_time_ms < train_end || f.initiating_node < 0) continue;
    const std::int32_t p = f.initiating_node / npm;
    if (p >= nparts) continue;
    fails[static_cast<std::size_t>(p)].push_back(
        static_cast<double>(f.fail_time_ms) / 60000.0);
    ++total_fails;
  }
  const double mttf_static =
      total_fails > 0 ? (t1 - t0) * static_cast<double>(nparts) /
                            static_cast<double>(total_fails)
                      : 1.0e9;
  const advisor::AdvisorConfig& ad = acfg.advisor;
  struct Point {
    const char* label;
    double C;
  } points[] = {{"C=1min", 1.0}, {"C=10s", 1.0 / 6.0}};
  for (const Point& pt : points) {
    ckpt::CkptParams prm{pt.C, 5.0, 1.0, mttf_static};
    const double t_static = ckpt::young_interval(prm);
    double wall_a = 0.0, useful_a = 0.0, wall_s = 0.0, useful_s = 0.0;
    for (std::int32_t p = 0; p < nparts; ++p) {
      ckpt::ScheduleSimConfig cfg;
      cfg.params = prm;
      cfg.t_begin = t0;
      cfg.t_end = t1;
      cfg.interval = advisor::interval_for_cost(ad, pt.C, ad.params.mttf);
      for (const auto& u : sched.updates) {
        if (u.partition != p) continue;
        const double ut = static_cast<double>(u.time_ms) / 60000.0;
        const double iv = advisor::interval_for_cost(ad, pt.C, u.est_mttf_min);
        if (ut <= t0)
          cfg.interval = iv;
        else
          cfg.changes.push_back({ut, iv});
      }
      for (const auto& d : sched.directives)
        if (d.partition == p && d.issue_time_ms >= train_end)
          cfg.proactive.push_back(
              static_cast<double>(d.issue_time_ms) / 60000.0);
      cfg.failures = fails[static_cast<std::size_t>(p)];
      const auto ra = ckpt::simulate_schedule(cfg);
      wall_a += ra.wall_time;
      useful_a += ra.useful_work;

      ckpt::ScheduleSimConfig scfg;
      scfg.params = prm;
      scfg.t_begin = t0;
      scfg.t_end = t1;
      scfg.interval = t_static;
      scfg.failures = fails[static_cast<std::size_t>(p)];
      const auto rs = ckpt::simulate_schedule(scfg);
      wall_s += rs.wall_time;
      useful_s += rs.useful_work;
    }
    const double waste_a = 1.0 - useful_a / wall_a;
    const double waste_s = 1.0 - useful_s / wall_s;
    std::printf("%s: static waste %.3f%%, adaptive waste %.3f%%, gain %.1f%%\n",
                pt.label, waste_s * 100.0, waste_a * 100.0,
                (waste_s - waste_a) / waste_s * 100.0);
  }

  if (!json_path.empty()) {
    benchjson::BenchMap out;
    benchjson::BenchPoint e2e;
    e2e.items_per_sec = static_cast<double>(accepted) / secs;
    e2e.p50_us = secs * 1.0e6;
    e2e.p99_us = secs * 1.0e6;
    out["advisor_e2e/replay_shards4"] = e2e;
    if (!benchjson::write_file(json_path, out)) {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
