// Reproduces Fig 1: the three signal classes HPC event types fall into —
// periodic (health polling), noise (correctable-error chatter), and silent
// (rare messages) — by classifying every extracted signal of the Blue
// Gene/L-like campaign and rendering one exemplar of each class.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"
#include "elsa/profile.hpp"
#include "helo/helo.hpp"
#include "signalkit/classify.hpp"
#include "signalkit/signal.hpp"
#include "util/ascii.hpp"

namespace {

using namespace elsa;

struct Extraction {
  sigkit::SignalSet signals{0, 1, 1, 0};
  std::vector<sigkit::ClassifyResult> classes;
};

Extraction extract() {
  const auto& trace = benchx::bgl_trace();
  helo::TemplateMiner miner;
  std::vector<std::uint32_t> tids;
  tids.reserve(trace.records.size());
  for (const auto& rec : trace.records) tids.push_back(miner.classify(rec.message));

  Extraction ex;
  ex.signals =
      sigkit::SignalSet(trace.t_begin_ms, trace.t_end_ms, 10'000, miner.size());
  for (std::size_t i = 0; i < trace.records.size(); ++i)
    ex.signals.add_event(tids[i], trace.records[i].time_ms);
  ex.classes.reserve(miner.size());
  for (std::size_t t = 0; t < miner.size(); ++t)
    ex.classes.push_back(sigkit::classify_signal(ex.signals.signal(t)));
  return ex;
}

void print_fig1(const Extraction& ex) {
  std::cout << "=== Fig 1: signal classes of " << ex.classes.size()
            << " event types (BG/L-like campaign) ===\n"
            << "(paper: silent signals are the majority of event types)\n\n";
  std::size_t counts[3] = {0, 0, 0};
  for (const auto& c : ex.classes)
    ++counts[static_cast<std::size_t>(c.cls)];

  util::AsciiBarChart chart("signal class distribution");
  chart.add("periodic", static_cast<double>(counts[0]),
            std::to_string(counts[0]) + " types");
  chart.add("noise", static_cast<double>(counts[1]),
            std::to_string(counts[1]) + " types");
  chart.add("silent", static_cast<double>(counts[2]),
            std::to_string(counts[2]) + " types");
  chart.print(std::cout);

  // One exemplar per class, first day of samples (like the paper's plots).
  for (const auto want :
       {sigkit::SignalClass::Periodic, sigkit::SignalClass::Noise,
        sigkit::SignalClass::Silent}) {
    for (std::size_t t = 0; t < ex.classes.size(); ++t) {
      if (ex.classes[t].cls != want) continue;
      const auto day = ex.signals.signal(t).slice(0, 8640);
      // Prefer exemplars with some visible activity.
      double total = 0.0;
      for (float v : day.v) total += v;
      if (want != sigkit::SignalClass::Silent && total < 50.0) continue;
      std::cout << "\n(" << sigkit::to_string(want) << ") signal " << t;
      if (ex.classes[t].period > 0)
        std::cout << ", period ~" << ex.classes[t].period * 10 << " s";
      std::cout << "\n  "
                << util::sparkline(std::vector<double>(day.v.begin(),
                                                       day.v.end()),
                                   100)
                << "\n";
      break;
    }
  }
}

void BM_classify_all_signals(benchmark::State& state) {
  const auto ex = extract();
  for (auto _ : state) {
    std::size_t periodic = 0;
    for (std::size_t t = 0; t < ex.signals.num_types(); ++t)
      periodic +=
          sigkit::classify_signal(ex.signals.signal(t)).cls ==
          sigkit::SignalClass::Periodic;
    benchmark::DoNotOptimize(periodic);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ex.signals.num_types()));
}
BENCHMARK(BM_classify_all_signals)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_fig1(extract());
  std::cout << "\n";
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
