// Reproduces Table I: example sequences of correlated events mined from
// the Blue Gene/L-like campaign — a memory-error cascade, a node-card
// service cascade, multiline messages, and the component-restart sequence —
// with every event rendered as its recovered HELO template.
#include <benchmark/benchmark.h>

#include <iostream>
#include <map>

#include "bench_common.hpp"
#include "elsa/grite.hpp"
#include "util/ascii.hpp"
#include "util/strings.hpp"

namespace {

using namespace elsa;

/// Chains whose items include a given template (by recovered text match).
/// `informational` selects the paper's non-error sequences (restart,
/// multiline) instead of failure-predicting ones.
void print_matching(const core::ExperimentResult& res, const char* heading,
                    const char* needle, bool informational = false) {
  const auto& helo = res.model.helo;
  // Prefer the most complete matching sequence, like the paper's exemplars.
  const core::Chain* best = nullptr;
  for (const auto& chain : res.model.chains) {
    if (informational == chain.predictive()) continue;
    if (informational) {
      // The paper's informational sequences contain only INFO messages.
      bool all_info = true;
      for (const auto& item : chain.items)
        all_info &= res.model.tmpl_severity[item.signal] ==
                    simlog::Severity::Info;
      if (!all_info) continue;
    }
    bool hit = false;
    for (const auto& item : chain.items)
      if (helo.at(item.signal).text().find(needle) != std::string::npos)
        hit = true;
    if (!hit) continue;
    if (!best || chain.items.size() > best->items.size() ||
        (chain.items.size() == best->items.size() &&
         chain.support > best->support))
      best = &chain;
  }
  if (best) {
    const auto& chain = *best;
    std::cout << heading << "\n";
    for (std::size_t j = 0; j < chain.items.size(); ++j) {
      if (j > 0) {
        const std::int32_t gap =
            chain.items[j].delay - chain.items[j - 1].delay;
        if (gap == 0)
          std::cout << "    (same time unit)\n";
        else
          std::cout << "    after " << gap << " time unit"
                    << (gap == 1 ? "" : "s") << " ("
                    << util::human_duration(gap * 10.0) << ")\n";
      }
      std::cout << "  " << helo.at(chain.items[j].signal).text() << "\n";
    }
    std::cout << "  [support " << chain.support << ", confidence "
              << util::format_pct(chain.confidence) << "]\n\n";
    return;  // one exemplar per heading, like the paper's table
  }
  std::cout << heading << "\n  (no such sequence mined in this campaign)\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  core::ExperimentResult res = benchx::bgl_experiment(core::Method::Hybrid);
  // Table I shows the raw extracted correlations; re-mine without the
  // maximal-itemset collapse so sub-sequences (the multiline pair) that
  // the online set folds into larger chains are still displayed.
  {
    core::PipelineConfig cfg;
    core::GriteConfig gc = cfg.grite;
    gc.total_samples = 4 * 8640;
    gc.subsume_support_ratio = 0.0;
    res.model.chains = core::mine_gradual_itemsets(
        res.model.train_outliers, res.model.seeds, gc);
    core::annotate_failure_items(res.model.chains, res.model.tmpl_severity);
  }
  std::cout << "=== Table I: sequences of correlated events ===\n\n";
  print_matching(res, "Memory error", "uncorrectable error detected");
  print_matching(res, "Node card failure", "linkcard");
  print_matching(res, "Multiline messages", "general purpose registers",
                 /*informational=*/true);
  print_matching(res, "Component restart sequence",
                 "idoproxydb has been started", /*informational=*/true);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
