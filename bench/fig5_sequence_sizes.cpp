// Reproduces Fig 5: the distribution of sequence sizes (event types per
// mined correlation chain) for both evaluation systems. Paper: average
// chain length ~4; ~20 % of chains longer than 8 events.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"
#include "elsa/report.hpp"
#include "util/ascii.hpp"

namespace {

using namespace elsa;

void print_one(const char* system, const core::ExperimentResult& res) {
  const auto rep = core::sequence_size_report(res.model.chains);
  std::cout << "\n-- " << system << ": " << res.model.chains.size()
            << " mined sequences --\n";
  util::AsciiBarChart chart("sequence size distribution");
  for (std::size_t i = 0; i < rep.sizes.size(); ++i)
    chart.add(rep.sizes.name(i) + " events",
              static_cast<double>(rep.sizes.count(i)),
              util::format_pct(rep.sizes.fraction(i)));
  chart.print(std::cout);
  std::cout << "mean sequence length: "
            << util::format_double(rep.mean_size, 2)
            << "   (paper: ~4)\n";
  std::cout << "sequences with >8 events: "
            << util::format_pct(rep.fraction_above_8)
            << "   (paper: ~20% with more than 8)\n";
}

void BM_sequence_size_report(benchmark::State& state) {
  const auto& res = benchx::bgl_experiment(core::Method::Hybrid);
  for (auto _ : state) {
    auto rep = core::sequence_size_report(res.model.chains);
    benchmark::DoNotOptimize(rep.mean_size);
  }
}
BENCHMARK(BM_sequence_size_report);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "=== Fig 5: sequence size distribution ===\n";
  print_one("Blue Gene/L-like", benchx::bgl_experiment(core::Method::Hybrid));
  print_one("Mercury-like", benchx::mercury_experiment(core::Method::Hybrid));
  std::cout << "\n";
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
