// Reproduces Fig 6 and the §IV.B delay statistics: the time-delay
// distribution between adjacent correlated events (paper: 33.7% < 10 s,
// 56% in 10 s–1 min, ~2.5% > 10 min) and between the first symptom and the
// last visible event of full sequences (paper: 12.8% < 10 s, 48.4% in
// 10 s–1 min, a tail reaching hours).
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"
#include "elsa/report.hpp"
#include "util/ascii.hpp"
#include "util/strings.hpp"

namespace {

using namespace elsa;

void print_histogram(const char* title, const util::EdgeHistogram& h,
                     const char* paper_note) {
  util::AsciiBarChart chart(title);
  for (std::size_t b = 0; b < h.bins(); ++b)
    chart.add(h.label(b, "s"), static_cast<double>(h.count(b)),
              util::format_pct(h.fraction(b)));
  chart.print(std::cout);
  std::cout << paper_note << "\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace elsa;
  const auto& res = benchx::bgl_experiment(core::Method::Hybrid);
  const auto rep = core::delay_report(res.model.chains, 10'000);

  std::cout << "=== Fig 6 / §IV.B: correlation time delays (BG/L-like) ===\n\n";
  print_histogram("(a) delay between adjacent correlated events",
                  rep.pair_delays,
                  "(paper: 33.7% <10s, 56% 10s-1min, ~2.5% >10min)");
  print_histogram("(b) first symptom -> last visible event (full sequences)",
                  rep.span_delays,
                  "(paper: 12.8% <10s, 48.4% 10s-1min, tail into hours)");
  std::cout << "longest sequence span: "
            << util::human_duration(rep.max_span_s)
            << " (paper: node-card sequences beyond one hour)\n\n";

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
