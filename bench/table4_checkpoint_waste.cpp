// Reproduces Table IV: the waste improvement prediction brings to
// checkpoint-restart, for the paper's six (C, precision, recall, MTTF)
// rows — analytically (equations 1–7) and validated by the event-driven
// simulator. Also reports the waste gain achievable with the precision and
// recall THIS reproduction's hybrid predictor actually measured.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <iostream>
#include <numeric>
#include <vector>

#include "bench_common.hpp"
#include "bench_json.hpp"
#include "ckpt/simulator.hpp"
#include "ckpt/waste_model.hpp"
#include "util/ascii.hpp"

namespace {

using namespace elsa;

struct Row {
  const char* c_label;
  double C;
  double precision;
  double recall;
  const char* mttf_label;
  double mttf;
  double paper_gain;
};

constexpr Row kRows[] = {
    {"1min", 1.0, 92, 20, "one day", 1440, 9.13},
    {"1min", 1.0, 92, 36, "one day", 1440, 17.33},
    {"10s", 1.0 / 6.0, 92, 36, "one day", 1440, 12.09},
    {"10s", 1.0 / 6.0, 92, 45, "one day", 1440, 15.63},
    {"1min", 1.0, 92, 50, "5h", 300, 21.74},
    {"10s", 1.0 / 6.0, 92, 65, "5h", 300, 24.78},
};

void print_table4() {
  std::cout << "=== Table IV: waste improvement in checkpointing ===\n"
            << "(R = 5 min, D = 1 min; gain = (W_noPred - W_pred)/W_noPred;\n"
            << " 'sim' is the event-driven simulator's independent estimate;\n"
            << " rows 3-4 are not derivable from the paper's own equations —\n"
            << " see EXPERIMENTS.md)\n\n";
  util::AsciiTable table({"C", "Precision", "Recall", "MTTF", "Waste gain",
                          "Waste gain (sim)", "Paper"});
  for (const auto& row : kRows) {
    ckpt::CkptParams p;
    p.C = row.C;
    p.R = 5.0;
    p.D = 1.0;
    p.mttf = row.mttf;
    const double gain =
        ckpt::waste_gain(p, row.recall / 100.0, row.precision / 100.0);

    ckpt::SimConfig sim;
    sim.params = p;
    sim.recall = row.recall / 100.0;
    sim.precision = row.precision / 100.0;
    sim.target_work = 2.0e6;
    sim.seed = 17;
    ckpt::SimConfig base;
    base.params = p;
    base.target_work = 2.0e6;
    base.seed = 17;
    const double w0 = ckpt::simulate_checkpointing(base).waste();
    const double w1 = ckpt::simulate_checkpointing(sim).waste();
    const double sim_gain = (w0 - w1) / w0;

    table.add_row({row.c_label, util::format_pct(row.precision / 100.0, 0),
                   util::format_pct(row.recall / 100.0, 0), row.mttf_label,
                   util::format_pct(gain, 2), util::format_pct(sim_gain, 2),
                   util::format_pct(row.paper_gain / 100.0, 2)});
  }
  table.print(std::cout);

  // Close the loop: what does OUR measured predictor buy?
  const auto& res = benchx::bgl_experiment(core::Method::Hybrid);
  ckpt::CkptParams p;
  p.C = 1.0;
  p.R = 5.0;
  p.D = 1.0;
  p.mttf = 300.0;
  std::cout << "\nwith THIS reproduction's measured hybrid predictor ("
            << util::format_pct(res.eval.precision()) << " precision, "
            << util::format_pct(res.eval.recall())
            << " recall) on a 5h-MTTF system, C=1min: waste gain "
            << util::format_pct(
                   ckpt::waste_gain(p, res.eval.recall(), res.eval.precision()),
                   2)
            << "\n";
}

/// Simulator throughput for the regression gate: simulated work-minutes
/// pushed through simulate_checkpointing per second, with and without the
/// prediction path (the predicted path exercises the proactive-checkpoint
/// branch and is the one the advisor leans on).
void measure_sim(benchjson::BenchMap& out, const char* name, double recall,
                 double precision) {
  ckpt::SimConfig cfg;
  cfg.params = {1.0, 5.0, 1.0, 1440.0};
  cfg.recall = recall;
  cfg.precision = precision;
  cfg.target_work = 1.0e5;
  cfg.seed = 17;
  constexpr int kIters = 20;
  std::vector<double> lat_us;
  for (int i = 0; i < kIters; ++i) {
    const auto a = std::chrono::steady_clock::now();
    auto r = ckpt::simulate_checkpointing(cfg);
    benchmark::DoNotOptimize(r.wall_time);
    const auto b = std::chrono::steady_clock::now();
    lat_us.push_back(
        std::chrono::duration<double, std::micro>(b - a).count());
  }
  std::sort(lat_us.begin(), lat_us.end());
  benchjson::BenchPoint pt;
  const double total_us =
      std::accumulate(lat_us.begin(), lat_us.end(), 0.0);
  pt.items_per_sec = cfg.target_work * kIters / (total_us / 1.0e6);
  pt.p50_us = lat_us[lat_us.size() / 2];
  pt.p99_us = lat_us[lat_us.size() - 1];
  out[name] = pt;
}

void BM_simulator(benchmark::State& state) {
  ckpt::SimConfig cfg;
  cfg.params = {1.0, 5.0, 1.0, 1440.0};
  cfg.recall = 0.45;
  cfg.precision = 0.92;
  cfg.target_work = 1.0e5;
  for (auto _ : state) {
    auto r = ckpt::simulate_checkpointing(cfg);
    benchmark::DoNotOptimize(r.wall_time);
  }
}
BENCHMARK(BM_simulator)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // Strip --json before google-benchmark sees (and rejects) it.
  std::string json_path;
  int out_argc = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      argv[out_argc++] = argv[i];
    }
  }
  argc = out_argc;

  print_table4();
  std::cout << "\n";
  if (!json_path.empty()) {
    elsa::benchjson::BenchMap bench_out;
    measure_sim(bench_out, "ckpt_sim/young_c1min", 0.0, 1.0);
    measure_sim(bench_out, "ckpt_sim/predicted_c1min", 0.45, 0.92);
    if (!elsa::benchjson::write_file(json_path, bench_out)) {
      std::cerr << "failed to write " << json_path << "\n";
      return 1;
    }
    std::cout << "wrote " << json_path << "\n\n";
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
