// Ablation for DESIGN.md decision #1: the outlier-replacement strategy
// (paper §III.B.1). A detector that records outliers at face value lets a
// sustained burst raise its own baseline and mask the tail of the episode;
// replacement pins the baseline. Demonstrated on a long synthetic burst
// and on the full campaign.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"
#include "elsa/outlier.hpp"
#include "util/ascii.hpp"
#include "util/rng.hpp"

namespace {

using namespace elsa;

void synthetic_burst_demo() {
  core::SignalProfile prof;
  prof.cls = sigkit::SignalClass::Noise;
  prof.median = 2.0;
  prof.spike_delta = 5.0;

  // A 60-bucket fault storm inside a window-64 detector: without
  // replacement, the storm becomes the median halfway through.
  for (const bool replacement : {true, false}) {
    core::DetectorOptions opts;
    opts.replacement = replacement;
    opts.debounce = false;
    core::OnlineDetector det(prof, 64, opts);
    util::Rng rng(5);
    for (int i = 0; i < 80; ++i)
      det.feed(static_cast<double>(rng.poisson(2.0)));
    int flagged = 0;
    for (int i = 0; i < 60; ++i)
      flagged += det.feed(25.0 + rng.uniform(0, 5)).kind !=
                 core::OutlierKind::None;
    std::cout << "  replacement " << (replacement ? "ON " : "OFF")
              << ": storm buckets flagged " << flagged << "/60\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::cout << "=== Ablation: outlier replacement (paper §III.B.1) ===\n\n"
            << "synthetic 10-minute error storm:\n";
  synthetic_burst_demo();

  std::cout << "\nfull BG/L campaign, hybrid pipeline:\n";
  util::AsciiTable table({"detector", "precision", "recall",
                          "outlier onsets"});
  for (const bool replacement : {true, false}) {
    core::PipelineConfig cfg;
    cfg.engine.detector.replacement = replacement;
    const auto res = core::run_experiment(benchx::bgl_trace(),
                                          benchx::kTrainDays,
                                          core::Method::Hybrid, cfg);
    table.add_row({replacement ? "with replacement" : "without",
                   util::format_pct(res.eval.precision()),
                   util::format_pct(res.eval.recall()),
                   std::to_string(res.engine_stats.outlier_onsets)});
  }
  table.print(std::cout);
  std::cout << "\n";

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
