// Reproduces Fig 7 and the §V propagation analysis: how many mined
// sequences stay on one node versus spreading across a node card,
// midplane, rack, or the whole system. Paper: ~75% show no propagation at
// all; only ~2.16% extend beyond a midplane; 80–85% of propagating
// sequences touch fewer than 10 nodes; the initiating node is almost
// always part of the affected set.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"
#include "elsa/report.hpp"
#include "util/ascii.hpp"

namespace {

using namespace elsa;

void print_propagation(const char* system, const core::ExperimentResult& res) {
  const auto rep = core::propagation_report(res.model.chains);
  std::cout << "\n-- " << system << " (" << rep.chains
            << " sequences with location profiles) --\n";
  util::AsciiBarChart chart("typical spread of a sequence occurrence");
  for (std::size_t i = 0; i < rep.scopes.size(); ++i)
    chart.add(rep.scopes.name(i), static_cast<double>(rep.scopes.count(i)),
              util::format_pct(rep.scopes.fraction(i)));
  chart.print(std::cout);
  std::cout << "propagating sequences: "
            << util::format_pct(rep.fraction_propagating)
            << "   (paper: ~25% BG/L, ~22% Mercury)\n";
  std::cout << "extending beyond a midplane: "
            << util::format_pct(rep.fraction_beyond_midplane)
            << "   (paper: ~2.16%)\n";
  if (rep.propagating > 0)
    std::cout << "initiating node inside the affected set: "
              << util::format_pct(rep.initiator_included)
              << "   (paper: almost always -> recall suffers more than "
                 "precision)\n";
}

void BM_propagation_report(benchmark::State& state) {
  const auto& res = benchx::bgl_experiment(core::Method::Hybrid);
  for (auto _ : state) {
    auto rep = core::propagation_report(res.model.chains);
    benchmark::DoNotOptimize(rep.fraction_propagating);
  }
}
BENCHMARK(BM_propagation_report);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "=== Fig 7 / §V: sequence propagation ===\n";
  print_propagation("Blue Gene/L-like",
                    benchx::bgl_experiment(core::Method::Hybrid));
  print_propagation("Mercury-like",
                    benchx::mercury_experiment(core::Method::Hybrid));
  std::cout << "\n";
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
