// Robustness sweep: Table III's headline comparison repeated over several
// independent campaigns (different RNG seeds). The paper reports one
// 8-month production log; a faithful reproduction should show that the
// METHOD ORDERING — hybrid recall ~= signal recall >> DM recall, all
// precisions high — holds across trace realisations, not just on one lucky
// seed.
#include <benchmark/benchmark.h>

#include <iostream>

#include "elsa/pipeline.hpp"
#include "simlog/scenario.hpp"
#include "util/ascii.hpp"
#include "util/stats.hpp"

namespace {

using namespace elsa;

constexpr std::uint64_t kSeeds[] = {2012, 7, 1337};

struct Agg {
  std::vector<double> precision;
  std::vector<double> recall;
};

void run_sweep() {
  std::cout << "=== Seed sweep: Table III ordering across campaigns ===\n\n";
  Agg agg[3];
  util::AsciiTable table({"seed", "hybrid P/R", "signal P/R", "DM P/R"});
  for (const auto seed : kSeeds) {
    auto sc = simlog::make_bluegene_scenario(seed, 12.0, 110);
    const auto trace = sc.generator.generate(sc.config);
    std::vector<std::string> row{std::to_string(seed)};
    for (int m = 0; m < 3; ++m) {
      core::PipelineConfig cfg;
      const auto res = core::run_experiment(
          trace, 4.0, static_cast<core::Method>(m), cfg);
      agg[m].precision.push_back(res.eval.precision());
      agg[m].recall.push_back(res.eval.recall());
      row.push_back(util::format_pct(res.eval.precision(), 0) + " / " +
                    util::format_pct(res.eval.recall(), 0));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  std::cout << "\nmeans over " << std::size(kSeeds) << " seeds:\n";
  const char* names[] = {"hybrid", "signal", "DM"};
  for (int m = 0; m < 3; ++m) {
    std::cout << "  " << names[m] << ": precision "
              << util::format_pct(util::mean(agg[m].precision)) << " +/- "
              << util::format_pct(util::stddev(agg[m].precision))
              << ", recall " << util::format_pct(util::mean(agg[m].recall))
              << " +/- " << util::format_pct(util::stddev(agg[m].recall))
              << "\n";
  }
  std::cout << "(paper: hybrid 91.2/45.8, signal 88.1/40.5, DM 91.9/15.7)\n";

  // The load-bearing orderings, checked numerically.
  const double h_rec = util::mean(agg[0].recall);
  const double s_rec = util::mean(agg[1].recall);
  const double d_rec = util::mean(agg[2].recall);
  const double h_pre = util::mean(agg[0].precision);
  const double s_pre = util::mean(agg[1].precision);
  std::cout << "\nordering checks: hybrid recall > 2x DM recall: "
            << (h_rec > 2.0 * d_rec ? "PASS" : "FAIL")
            << "; signal recall <= hybrid recall: "
            << (s_rec <= h_rec + 0.02 ? "PASS" : "FAIL")
            << "; signal precision < hybrid precision: "
            << (s_pre < h_pre ? "PASS" : "FAIL") << "\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  run_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
