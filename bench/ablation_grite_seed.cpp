// Ablation for DESIGN.md decision #2: seeding GRITE's first level with the
// cross-correlation pairs instead of all attributes (paper §III.C: "By
// merging it with a fast signal analysis module we were able to guide the
// extraction process ... reducing the complexity of the original
// data-mining algorithm"). Compares candidate counts, mining time, and the
// resulting chain sets.
#include <benchmark/benchmark.h>

#include <chrono>
#include <iostream>

#include "bench_common.hpp"
#include "elsa/grite.hpp"
#include "util/ascii.hpp"

namespace {

using namespace elsa;

/// "All attributes" first level: every directed pair with any alignment at
/// all (gates disabled), which is what un-seeded gradual itemset mining
/// effectively explores.
std::vector<sigkit::PairCorrelation> unseeded_level1(
    const std::vector<sigkit::OutlierStream>& streams, std::size_t total) {
  sigkit::XcorrConfig xc;
  xc.total_samples = total;
  xc.min_support = 1;
  xc.min_confidence = 0.0;
  xc.min_significance = 0.0;
  xc.min_lift = 0.0;
  xc.max_chance_pvalue = 1.0;
  return correlate_all(streams, xc);
}

void run_ablation() {
  const auto& res = benchx::bgl_experiment(core::Method::Hybrid);
  const auto& streams = res.model.train_outliers;
  const std::size_t total = 4 * 8640;

  core::PipelineConfig cfg;
  core::GriteConfig gc = cfg.grite;
  gc.total_samples = total;

  const auto t0 = std::chrono::steady_clock::now();
  core::GriteStats seeded_stats;
  const auto seeded =
      core::mine_gradual_itemsets(streams, res.model.seeds, gc, &seeded_stats);
  const auto t1 = std::chrono::steady_clock::now();
  const auto full_level1 = unseeded_level1(streams, total);
  core::GriteStats full_stats;
  const auto full =
      core::mine_gradual_itemsets(streams, full_level1, gc, &full_stats);
  const auto t2 = std::chrono::steady_clock::now();

  const double seeded_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  const double full_ms =
      std::chrono::duration<double, std::milli>(t2 - t1).count();

  std::cout << "=== Ablation: cross-correlation seeding of GRITE ===\n\n";
  util::AsciiTable table({"first level", "level-1 itemsets",
                          "candidates evaluated", "final chains",
                          "mining time"});
  table.add_row({"xcorr-seeded (paper)",
                 std::to_string(seeded_stats.seed_pairs),
                 std::to_string(seeded_stats.candidates_evaluated),
                 std::to_string(seeded.size()),
                 util::format_double(seeded_ms, 1) + " ms"});
  table.add_row({"all attributes",
                 std::to_string(full_stats.seed_pairs),
                 std::to_string(full_stats.candidates_evaluated),
                 std::to_string(full.size()),
                 util::format_double(full_ms, 1) + " ms"});
  table.print(std::cout);
  std::cout << "\nseeding explores "
            << util::format_double(
                   full_stats.seed_pairs
                       ? static_cast<double>(full_stats.seed_pairs) /
                             static_cast<double>(
                                 std::max<std::size_t>(1,
                                                       seeded_stats.seed_pairs))
                       : 0.0,
                   1)
            << "x fewer level-1 itemsets; every seeded chain also passes the\n"
               "statistical gates, while the unseeded level-1 is dominated by\n"
               "coincidental alignments that must be ground through and "
               "rejected.\n";
}

void BM_grite_seeded(benchmark::State& state) {
  const auto& res = benchx::bgl_experiment(core::Method::Hybrid);
  core::PipelineConfig cfg;
  core::GriteConfig gc = cfg.grite;
  gc.total_samples = 4 * 8640;
  for (auto _ : state) {
    auto chains = core::mine_gradual_itemsets(res.model.train_outliers,
                                              res.model.seeds, gc);
    benchmark::DoNotOptimize(chains.size());
  }
}
BENCHMARK(BM_grite_seeded)->Unit(benchmark::kMillisecond);

void BM_grite_unseeded(benchmark::State& state) {
  const auto& res = benchx::bgl_experiment(core::Method::Hybrid);
  const auto level1 = unseeded_level1(res.model.train_outliers, 4 * 8640);
  core::PipelineConfig cfg;
  core::GriteConfig gc = cfg.grite;
  gc.total_samples = 4 * 8640;
  for (auto _ : state) {
    auto chains =
        core::mine_gradual_itemsets(res.model.train_outliers, level1, gc);
    benchmark::DoNotOptimize(chains.size());
  }
}
BENCHMARK(BM_grite_unseeded)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_ablation();
  std::cout << "\n";
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
