// Reproduces Table III: precision, recall, sequences used, and predicted
// failures for the three prediction approaches (hybrid / pure signal /
// pure data mining) on the Blue Gene/L-like campaign, plus the paper's
// §VI.A no-location precision probe. Also registers google-benchmark
// timings for the offline mining and the online phase.
#include <benchmark/benchmark.h>

#include <iostream>
#include <memory>

#include "elsa/pipeline.hpp"
#include "simlog/scenario.hpp"
#include "util/ascii.hpp"

namespace {

using namespace elsa;

struct Row {
  std::string name;
  core::EvalResult eval;
  std::size_t chains = 0;
  std::size_t chains_used = 0;
  std::size_t predictive = 0;
};

const simlog::Trace& shared_trace() {
  static const simlog::Trace trace = [] {
    auto scenario = simlog::make_bluegene_scenario(2012, 12.0, 110);
    return scenario.generator.generate(scenario.config);
  }();
  return trace;
}

Row run_method(core::Method m, bool use_location = true) {
  core::PipelineConfig cfg;
  cfg.eval.require_location = use_location;
  const auto res = core::run_experiment(shared_trace(), 4.0, m, cfg);
  Row row;
  row.name = core::to_string(m);
  row.eval = res.eval;
  row.chains = res.model.chains.size();
  row.chains_used = res.engine_stats.chains_used;
  for (const auto& c : res.model.chains)
    if (c.predictive()) ++row.predictive;
  return row;
}

void print_table3() {
  std::cout << "\n=== Table III: prediction methods on Blue Gene/L-like campaign ===\n"
            << "(paper: hybrid 91.2/45.8, 62 seqs (96.8%), 603 predicted;\n"
            << "        signal 88.1/40.5, 117 seqs (92.8%); DM 91.9/15.7, 39 seqs)\n\n";
  util::AsciiTable table({"Prediction Method", "Precision", "Recall",
                          "Seq Used", "Pred Failures"});
  for (const auto m : {core::Method::Hybrid, core::Method::SignalOnly,
                       core::Method::DataMining}) {
    const Row r = run_method(m);
    char used[64];
    std::snprintf(used, sizeof used, "%zu (%s)", r.chains_used,
                  r.predictive
                      ? util::format_pct(static_cast<double>(r.chains_used) /
                                         static_cast<double>(r.predictive), 1)
                            .c_str()
                      : "-");
    table.add_row({r.name, util::format_pct(r.eval.precision()),
                   util::format_pct(r.eval.recall()), used,
                   std::to_string(r.eval.predicted_faults)});
  }
  table.print(std::cout);

  const Row noloc = run_method(core::Method::Hybrid, /*use_location=*/false);
  std::cout << "\nHybrid scored WITHOUT the location check (paper: ~94%): "
            << "precision " << util::format_pct(noloc.eval.precision())
            << ", recall " << util::format_pct(noloc.eval.recall()) << "\n";
}

void BM_offline_hybrid(benchmark::State& state) {
  const auto& trace = shared_trace();
  core::PipelineConfig cfg;
  const std::int64_t train_end =
      trace.t_begin_ms + static_cast<std::int64_t>(4.0 * 86400000.0);
  for (auto _ : state) {
    auto model =
        core::train_offline(trace, train_end, core::Method::Hybrid, cfg);
    benchmark::DoNotOptimize(model.chains.data());
  }
}
BENCHMARK(BM_offline_hybrid)->Unit(benchmark::kMillisecond);

void BM_full_experiment_hybrid(benchmark::State& state) {
  const auto& trace = shared_trace();
  core::PipelineConfig cfg;
  for (auto _ : state) {
    auto res = core::run_experiment(trace, 4.0, core::Method::Hybrid, cfg);
    benchmark::DoNotOptimize(res.predictions.data());
  }
}
BENCHMARK(BM_full_experiment_hybrid)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table3();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
