// Ablation for the paper's future-work direction: parallel gradual-itemset
// mining (PGP-mc [3], §III.C). Benchmarks the cross-correlation sweep and
// the GRITE levels with 1..N worker threads.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "elsa/grite.hpp"
#include "signalkit/xcorr.hpp"

namespace {

using namespace elsa;

void BM_xcorr_sweep(benchmark::State& state) {
  const auto& res = benchx::bgl_experiment(core::Method::Hybrid);
  core::PipelineConfig cfg;
  sigkit::XcorrConfig xc = cfg.xcorr;
  xc.total_samples = 4 * 8640;
  const auto threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto pairs =
        sigkit::correlate_all(res.model.train_outliers, xc, threads);
    benchmark::DoNotOptimize(pairs.size());
  }
}
BENCHMARK(BM_xcorr_sweep)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_grite_mining(benchmark::State& state) {
  const auto& res = benchx::bgl_experiment(core::Method::Hybrid);
  core::PipelineConfig cfg;
  core::GriteConfig gc = cfg.grite;
  gc.total_samples = 4 * 8640;
  gc.threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto chains = core::mine_gradual_itemsets(res.model.train_outliers,
                                              res.model.seeds, gc);
    benchmark::DoNotOptimize(chains.size());
  }
}
BENCHMARK(BM_grite_mining)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_offline_phase(benchmark::State& state) {
  const auto& trace = benchx::bgl_trace();
  core::PipelineConfig cfg;
  cfg.threads = static_cast<std::size_t>(state.range(0));
  const std::int64_t train_end =
      trace.t_begin_ms + static_cast<std::int64_t>(benchx::kTrainDays * 86400000.0);
  for (auto _ : state) {
    auto model =
        core::train_offline(trace, train_end, core::Method::Hybrid, cfg);
    benchmark::DoNotOptimize(model.chains.size());
  }
}
BENCHMARK(BM_offline_phase)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
