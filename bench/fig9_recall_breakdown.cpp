// Reproduces Fig 9: recall broken down by failure category. Each bar is a
// category's share of all failures in the log; the filled part is the
// share correctly predicted. Paper: node-card errors predicted at >80%,
// network and cache failures poorly.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"
#include "elsa/report.hpp"
#include "util/ascii.hpp"

int main(int argc, char** argv) {
  using namespace elsa;
  const auto& res = benchx::bgl_experiment(core::Method::Hybrid);
  const auto bars = core::recall_breakdown(res.eval);

  std::cout << "=== Fig 9: recall by failure category (BG/L-like, hybrid) ===\n"
            << "(paper: node cards >80% predicted; network and cache low)\n\n";
  util::AsciiBarChart occ("category share of all failures (bar) and "
                          "predicted share (annotation)");
  for (const auto& b : bars) {
    char note[96];
    std::snprintf(note, sizeof note, "predicted %zu/%zu (recall %s)",
                  b.predicted, b.total,
                  util::format_pct(b.total ? static_cast<double>(b.predicted) /
                                                 static_cast<double>(b.total)
                                           : 0.0)
                      .c_str());
    occ.add(b.category, b.occurrence_fraction, note);
  }
  occ.print(std::cout);

  std::cout << "\noverall recall: " << util::format_pct(res.eval.recall())
            << ", failures lost to analysis latency: "
            << res.eval.missed_late << "\n";
  std::cout << "prediction windows: >10 s "
            << util::format_pct(res.eval.lead_fraction_above(10.0))
            << ", >1 min " << util::format_pct(res.eval.lead_fraction_above(60.0))
            << ", >10 min "
            << util::format_pct(res.eval.lead_fraction_above(600.0))
            << "   (paper: ~85% / >50% / ~6%)\n\n";

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
