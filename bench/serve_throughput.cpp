// Serving-layer throughput: replays a >= 1M-record Blue Gene/L-like
// campaign through the sharded prediction service as fast as possible and
// reports sustained records/s plus p50/p99 ingest-to-prediction latency at
// 1, 2, 4 and 8 shards. This is the "how fast can the analysis side run"
// companion to the paper's §VI.A analysis-window measurements: there the
// delay is simulated from 2012 calibration constants; here it is measured
// on real threads, real queues and real hardware.
//
// Not a google-benchmark microbench: each configuration is one long
// macro-run (~1M records end to end), so a single timed pass per shard
// count is the measurement.
//
//   ./build/bench/serve_throughput [days] [shard counts...] [--json PATH]
//
// --json PATH additionally emits the results as a BENCH_serve.json
// document (schema elsa-bench-v1, one "serve_throughput/shards=N" entry
// per configuration) for the CI bench-regression gate.
//
// NOTE: shard scaling needs cores. On a single-core container every
// configuration multiplexes onto one CPU and the sharded runs can only tie
// (or lose to) the 1-shard run; the per-shard numbers are still reported.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "elsa/pipeline.hpp"
#include "serve/replayer.hpp"
#include "serve/service.hpp"
#include "simlog/scenario.hpp"

namespace {

using namespace elsa;
using Clock = std::chrono::steady_clock;

constexpr double kTrainDays = 4.0;

struct RunResult {
  std::size_t shards = 0;
  std::size_t records = 0;
  double seconds = 0.0;
  serve::MetricsSnapshot m;
};

RunResult run_once(const simlog::Trace& trace, const core::OfflineModel& model,
                   std::int64_t train_end, std::size_t shards) {
  serve::ServiceConfig cfg;
  cfg.shards = shards;
  serve::PredictionService service(trace.topology, model, cfg);

  serve::ReplayOptions ro;  // speedup 0: as fast as possible
  ro.from_ms = train_end;
  const serve::TraceReplayer replayer(trace, ro);

  const auto t0 = Clock::now();
  const std::size_t accepted = replayer.replay_into(service);
  service.finish(trace.t_end_ms);
  const auto t1 = Clock::now();

  RunResult r;
  r.shards = shards;
  r.records = accepted;
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  r.m = service.metrics();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      positional.push_back(argv[i]);
    }
  }

  // ~43k records/day -> 28 days comfortably clears 1M records replayed
  // over the post-training period.
  const double days = !positional.empty() ? std::atof(positional[0]) : 28.0;
  std::vector<std::size_t> shard_counts;
  for (std::size_t i = 1; i < positional.size(); ++i)
    shard_counts.push_back(std::strtoul(positional[i], nullptr, 10));
  if (shard_counts.empty()) shard_counts = {1, 2, 4, 8};

  std::printf("generating %.0f-day BG/L-like campaign...\n", days);
  auto sc = simlog::make_bluegene_scenario(2012, days, 110);
  const auto trace = sc.generator.generate(sc.config);
  const std::int64_t train_end =
      trace.t_begin_ms + static_cast<std::int64_t>(kTrainDays * 86'400'000.0);
  std::size_t replay_records = 0;
  for (const auto& rec : trace.records)
    replay_records += rec.time_ms >= train_end;
  std::printf("  %zu records total, %zu in the replay window\n",
              trace.records.size(), replay_records);

  std::printf("offline phase (first %.0f days)...\n", kTrainDays);
  core::PipelineConfig pcfg;
  const auto model =
      core::train_offline(trace, train_end, core::Method::Hybrid, pcfg);

  std::printf("%u hardware threads\n\n",
              std::thread::hardware_concurrency());
  std::printf(
      "%6s %12s %12s %10s %10s %10s %10s %8s\n", "shards", "records",
      "records/s", "p50 us", "p99 us", "pred p50", "pred p99", "alarms");

  double base_rps = 0.0;
  benchjson::BenchMap bench_out;
  for (const std::size_t shards : shard_counts) {
    const RunResult r = run_once(trace, model, train_end, shards);
    const double rps =
        r.seconds > 0 ? static_cast<double>(r.records) / r.seconds : 0.0;
    if (base_rps == 0.0) base_rps = rps;
    std::printf("%6zu %12zu %12.0f %10.0f %10.0f %10.0f %10.0f %8llu  (%.2fx)\n",
                r.shards, r.records, rps, r.m.ingest_p50_us, r.m.ingest_p99_us,
                r.m.predict_p50_us, r.m.predict_p99_us,
                static_cast<unsigned long long>(r.m.predictions),
                base_rps > 0 ? rps / base_rps : 0.0);
    bench_out["serve_throughput/shards=" + std::to_string(shards)] = {
        rps, r.m.ingest_p50_us, r.m.ingest_p99_us};
  }
  if (!json_path.empty()) {
    if (!benchjson::write_file(json_path, bench_out)) {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return 0;
}
