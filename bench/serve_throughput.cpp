// Serving-layer throughput: pushes a >= 1M-record Blue Gene/L-like
// campaign through the sharded prediction service as fast as possible and
// reports sustained records/s plus p50/p99 ingest-to-prediction latency at
// 1, 2, 4 and 8 shards. This is the "how fast can the analysis side run"
// companion to the paper's §VI.A analysis-window measurements: there the
// delay is simulated from 2012 calibration constants; here it is measured
// on real threads, real queues and real hardware.
//
// The load generator mirrors production shape: the replay window is
// pre-partitioned by the service's own router, and one producer thread per
// shard submits its partition in trace order (classification runs on the
// producer, routing is a pure function, and each partition's records land
// in their shard ring in order — the single-producer/single-consumer fast
// path the rings are built for). Each configuration warms up on a short
// slice first so the timed pass never measures cold caches or CPU
// frequency ramp.
//
// Beyond throughput, each run reports the *router imbalance* (max/mean
// records per shard — a skewed partition key shows up here long before it
// costs throughput) and the observed shard ring depths (p50/p99 at
// enqueue, plus the sampled per-run maximum).
//
// Not a google-benchmark microbench: each configuration is one long
// macro-run (~1M records end to end), so a single timed pass per shard
// count is the measurement.
//
//   ./build/bench/serve_throughput [days] [shard counts...] [--json PATH]
//                                  [--pin]
//
// --json PATH additionally emits the results as a BENCH_serve.json
// document (schema elsa-bench-v1, one "serve_throughput/shards=N" entry
// per configuration plus "serve_throughput/scaling=AvB" ratio entries) for
// the CI bench-regression gate. The ratio entries are what makes the gate
// catch an *inverted* scaling curve: shards=4 must beat shards=1 by the
// committed factor even when every absolute row is above its floor.
// --pin enables worker core pinning (off by default; helps on dedicated
// boxes, hurts on shared runners).
//
// NOTE: shard scaling needs cores. On a single-core container every
// configuration multiplexes onto one CPU and the sharded runs can only tie
// (or lose to) the 1-shard run; the per-shard numbers are still reported.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "elsa/pipeline.hpp"
#include "serve/service.hpp"
#include "simlog/scenario.hpp"

namespace {

using namespace elsa;
using Clock = std::chrono::steady_clock;

constexpr double kTrainDays = 4.0;

struct RunResult {
  std::size_t shards = 0;
  std::size_t records = 0;
  double seconds = 0.0;
  double imbalance = 0.0;        ///< max/mean records per shard
  std::size_t max_depth = 0;     ///< deepest sampled shard ring
  serve::MetricsSnapshot m;
};

/// One full pass of the replay window [from_ms, until_ms) through a fresh
/// service at `shards` shards: partition by the service's router, then one
/// producer thread per shard submits its slice in trace order.
RunResult run_once(const simlog::Trace& trace, const core::OfflineModel& model,
                   std::int64_t from_ms, std::int64_t until_ms,
                   std::size_t shards, bool pin) {
  serve::ServiceConfig cfg;
  cfg.shards = shards;
  cfg.pin_workers = pin;
  serve::PredictionService service(trace.topology, model, cfg);

  std::vector<std::vector<const simlog::LogRecord*>> slices(shards);
  for (const auto& rec : trace.records) {
    if (rec.time_ms < from_ms || rec.time_ms >= until_ms) continue;
    slices[service.shard_of(rec.node_id)].push_back(&rec);
  }

  // Depth sampler: the rings drain too fast for an end-of-run snapshot to
  // mean anything, so poll while the producers run and keep the maximum.
  std::atomic<bool> sampling{true};
  std::size_t max_depth = 0;
  std::thread sampler([&] {
    // relaxed: plain stop flag; join() below is the synchronization point.
    while (sampling.load(std::memory_order_relaxed)) {
      for (const std::size_t d : service.shard_depths())
        if (d > max_depth) max_depth = d;
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  });

  const auto t0 = Clock::now();
  std::vector<std::thread> producers;
  producers.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s)
    producers.emplace_back([&service, &slices, s] {
      for (const simlog::LogRecord* rec : slices[s]) service.submit(*rec);
    });
  for (auto& t : producers) t.join();
  service.finish(trace.t_end_ms);
  const auto t1 = Clock::now();
  // relaxed: plain stop flag; join() below is the synchronization point.
  sampling.store(false, std::memory_order_relaxed);
  sampler.join();

  RunResult r;
  r.shards = shards;
  for (const auto& sl : slices) r.records += sl.size();
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  r.max_depth = max_depth;
  const auto per_shard = service.shard_processed();
  const std::uint64_t total =
      std::accumulate(per_shard.begin(), per_shard.end(), std::uint64_t{0});
  const std::uint64_t peak =
      per_shard.empty() ? 0 : *std::max_element(per_shard.begin(),
                                                per_shard.end());
  const double mean = per_shard.empty()
                          ? 0.0
                          : static_cast<double>(total) /
                                static_cast<double>(per_shard.size());
  r.imbalance = mean > 0.0 ? static_cast<double>(peak) / mean : 0.0;
  r.m = service.metrics();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  bool pin = false;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--pin") == 0) {
      pin = true;
    } else {
      positional.push_back(argv[i]);
    }
  }

  // ~43k records/day -> 28 days comfortably clears 1M records replayed
  // over the post-training period.
  const double days = !positional.empty() ? std::atof(positional[0]) : 28.0;
  std::vector<std::size_t> shard_counts;
  for (std::size_t i = 1; i < positional.size(); ++i)
    shard_counts.push_back(std::strtoul(positional[i], nullptr, 10));
  if (shard_counts.empty()) shard_counts = {1, 2, 4, 8};

  std::printf("generating %.0f-day BG/L-like campaign...\n", days);
  auto sc = simlog::make_bluegene_scenario(2012, days, 110);
  const auto trace = sc.generator.generate(sc.config);
  const std::int64_t train_end =
      trace.t_begin_ms + static_cast<std::int64_t>(kTrainDays * 86'400'000.0);
  std::size_t replay_records = 0;
  for (const auto& rec : trace.records)
    replay_records += rec.time_ms >= train_end;
  std::printf("  %zu records total, %zu in the replay window\n",
              trace.records.size(), replay_records);

  std::printf("offline phase (first %.0f days)...\n", kTrainDays);
  core::PipelineConfig pcfg;
  const auto model =
      core::train_offline(trace, train_end, core::Method::Hybrid, pcfg);

  std::printf("%u hardware threads, pinning %s\n\n",
              std::thread::hardware_concurrency(), pin ? "on" : "off");
  std::printf("%6s %12s %12s %9s %9s %9s %9s %8s %7s %9s\n", "shards",
              "records", "records/s", "p50 us", "p99 us", "pred p50",
              "pred p99", "alarms", "imbal", "max depth");

  // Warm-up slice: half a day of trace is enough to fault in the model,
  // the allocator arenas and the frequency governor.
  const std::int64_t warm_end =
      train_end + static_cast<std::int64_t>(0.5 * 86'400'000.0);

  double base_rps = 0.0;
  std::vector<std::pair<std::size_t, double>> rps_by_shards;
  benchjson::BenchMap bench_out;
  for (const std::size_t shards : shard_counts) {
    (void)run_once(trace, model, train_end, warm_end, shards, pin);  // warm-up
    const RunResult r =
        run_once(trace, model, train_end, trace.t_end_ms + 1, shards, pin);
    const double rps =
        r.seconds > 0 ? static_cast<double>(r.records) / r.seconds : 0.0;
    if (base_rps == 0.0) base_rps = rps;
    std::printf(
        "%6zu %12zu %12.0f %9.0f %9.0f %9.0f %9.0f %8llu %7.2f %9zu  (%.2fx)\n",
        r.shards, r.records, rps, r.m.ingest_p50_us, r.m.ingest_p99_us,
        r.m.predict_p50_us, r.m.predict_p99_us,
        static_cast<unsigned long long>(r.m.predictions), r.imbalance,
        r.max_depth, base_rps > 0 ? rps / base_rps : 0.0);
    std::printf("%6s queue depth at enqueue p50 %.0f, p99 %.0f\n", "",
                r.m.queue_depth_p50, r.m.queue_depth_p99);
    rps_by_shards.emplace_back(shards, rps);
    bench_out["serve_throughput/shards=" + std::to_string(shards)] = {
        rps, r.m.ingest_p50_us, r.m.ingest_p99_us};
  }

  // Scaling-ratio entries: the anti-inversion gate. Latencies are zeroed —
  // only the ratio itself is meaningful (and gated).
  const auto rps_at = [&](std::size_t n) -> double {
    for (const auto& [s, rps] : rps_by_shards)
      if (s == n) return rps;
    return 0.0;
  };
  for (const auto& [hi, lo] : std::vector<std::pair<std::size_t, std::size_t>>{
           {2, 1}, {4, 1}, {8, 1}, {8, 4}}) {
    const double num = rps_at(hi), den = rps_at(lo);
    if (num <= 0.0 || den <= 0.0) continue;
    bench_out["serve_throughput/scaling=" + std::to_string(hi) + "v" +
              std::to_string(lo)] = {num / den, 0.0, 0.0};
    std::printf("scaling %zu vs %zu: %.2fx\n", hi, lo, num / den);
  }

  if (!json_path.empty()) {
    if (!benchjson::write_file(json_path, bench_out)) {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return 0;
}
