// Incremental-miner throughput: how fast the online mining layer keeps up
// with the serving path it taps. Four measurements on a BG/L-like
// campaign, reported as items/s and emitted as BENCH_mining.json
// (schema elsa-bench-v1) for the nightly bench-regression gate:
//
//   mining_throughput/fold              raw OnlineMiner::fold, events/s on
//                                       a pre-classified canonical stream —
//                                       the ceiling of the whole layer
//   mining_throughput/build_model       model materialisations/s on the
//                                       fully folded state (the publish-
//                                       boundary cost the pump pays)
//   mining_throughput/state_roundtrip   save_state+load_state cycles/s (the
//                                       checkpoint/restore path)
//   mining_throughput/end_to_end/shards=N
//                                       records/s through a full
//                                       MinerService — classification,
//                                       sharded serving, lossless tap,
//                                       watermark merge, periodic hub
//                                       publishes — driven by the
//                                       single-producer trace replayer
//
// No scaling-ratio rows on purpose: the miner is a single pump thread by
// design (determinism comes from one canonical fold order), so shard-count
// ratios here would gate the serving layer, not the miner — that curve is
// serve_throughput's job.
//
// Not a google-benchmark microbench: each row is one long macro-run, so a
// single timed pass (after a warm-up slice) is the measurement.
//
//   ./build/bench/mining_throughput [days] [--json PATH]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "mining/miner.hpp"
#include "mining/service.hpp"
#include "serve/replayer.hpp"
#include "simlog/scenario.hpp"

namespace {

using namespace elsa;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

double end_to_end_rps(const simlog::Trace& trace, std::size_t shards) {
  mining::MinerServiceConfig cfg;
  cfg.serve.shards = shards;
  cfg.publish_every = 4096;
  mining::MinerService ms(trace.topology, cfg);
  const auto t0 = Clock::now();
  serve::TraceReplayer(trace).replay_into(ms.service());
  ms.finish(trace.t_end_ms);
  const double secs = seconds_since(t0);
  return secs > 0 ? static_cast<double>(ms.folded()) / secs : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      json_path = argv[++i];
    else
      positional.push_back(argv[i]);
  }
  const double days = !positional.empty() ? std::atof(positional[0]) : 8.0;

  std::printf("generating %.1f-day BG/L-like campaign...\n", days);
  auto sc = simlog::make_bluegene_scenario(2012, days, 110);
  const auto trace = sc.generator.generate(sc.config);
  std::printf("  %zu records\n", trace.records.size());

  // Pre-classify once: the fold/build/state rows measure the miner alone,
  // not HELO (the end-to-end row includes classification again).
  helo::TemplateMiner classifier;
  std::vector<serve::ClassifiedEvent> events;
  events.reserve(trace.records.size());
  for (const auto& rec : trace.records)
    events.push_back({rec.time_ms, rec.node_id,
                      classifier.classify(rec.message),
                      static_cast<std::uint8_t>(rec.severity)});
  std::stable_sort(events.begin(), events.end(), mining::canonical_less);

  benchjson::BenchMap out;

  // -- fold ---------------------------------------------------------------
  {
    const std::size_t warm = events.size() / 10;
    mining::OnlineMiner warm_miner;
    for (std::size_t i = 0; i < warm; ++i) warm_miner.fold(events[i]);

    mining::OnlineMiner miner;
    const auto t0 = Clock::now();
    for (const auto& e : events) miner.fold(e);
    const double secs = seconds_since(t0);
    const double eps =
        secs > 0 ? static_cast<double>(events.size()) / secs : 0.0;
    std::printf("fold:            %12.0f events/s  (%zu templates, %zu "
                "pairs)\n",
                eps, miner.templates(), miner.pairs());
    out["mining_throughput/fold"] = {eps, 0.0, 0.0};

    // -- build_model on the folded state ----------------------------------
    constexpr int kBuilds = 20;
    (void)miner.build_model(nullptr);  // warm
    const auto b0 = Clock::now();
    std::size_t chains = 0;
    for (int i = 0; i < kBuilds; ++i)
      chains = miner.build_model(nullptr).chains.size();
    const double bsecs = seconds_since(b0);
    const double bps = bsecs > 0 ? kBuilds / bsecs : 0.0;
    std::printf("build_model:     %12.1f models/s  (%zu chains)\n", bps,
                chains);
    out["mining_throughput/build_model"] = {bps, 0.0, 0.0};

    // -- state round-trip -------------------------------------------------
    constexpr int kCycles = 20;
    const auto s0 = Clock::now();
    for (int i = 0; i < kCycles; ++i) {
      std::stringstream state;
      miner.save_state(state);
      mining::OnlineMiner reloaded;
      reloaded.load_state(state);
    }
    const double ssecs = seconds_since(s0);
    const double sps = ssecs > 0 ? kCycles / ssecs : 0.0;
    std::printf("state_roundtrip: %12.1f cycles/s\n", sps);
    out["mining_throughput/state_roundtrip"] = {sps, 0.0, 0.0};
  }

  // -- end to end through the MinerService --------------------------------
  for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
    (void)end_to_end_rps(trace, shards);  // warm-up pass
    const double rps = end_to_end_rps(trace, shards);
    std::printf("end_to_end/shards=%zu: %10.0f records/s\n", shards, rps);
    out["mining_throughput/end_to_end/shards=" + std::to_string(shards)] = {
        rps, 0.0, 0.0};
  }

  if (!json_path.empty()) {
    if (!benchjson::write_file(json_path, out)) {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
