// Ablation for the multi-event confirmation rule: chains with two or more
// early prefix items wait for a corroborating second symptom before
// raising an alarm. Compares precision/recall with confirmation on
// (min_prefix_matches = 2, the default) and off (= 1, alarm on any single
// prefix item — pair-rule behaviour).
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"
#include "util/ascii.hpp"

int main(int argc, char** argv) {
  using namespace elsa;
  std::cout << "=== Ablation: multi-event sequence confirmation ===\n\n";
  util::AsciiTable table(
      {"confirmation", "precision", "recall", "predictions"});
  for (const int matches : {2, 1}) {
    core::PipelineConfig cfg;
    cfg.engine.min_prefix_matches = matches;
    const auto res = core::run_experiment(benchx::bgl_trace(),
                                          benchx::kTrainDays,
                                          core::Method::Hybrid, cfg);
    table.add_row({matches >= 2 ? "on (2 prefix items)" : "off (any item)",
                   util::format_pct(res.eval.precision()),
                   util::format_pct(res.eval.recall()),
                   std::to_string(res.predictions.size())});
  }
  table.print(std::cout);
  std::cout << "\nWith confirmation off, every stray background precursor\n"
               "(a benign bit-sparing action, a lone service message) raises\n"
               "a full node-card alarm; multi-event chains exist precisely\n"
               "to demand corroboration before crying wolf.\n\n";

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
