// Reproduces Table II: the two extremes of sequence timing — the CIODB
// crash whose events all land in the same instant (no prediction window at
// all) and the node-card cascade whose warnings precede the failure by the
// better part of an hour.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "util/ascii.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace elsa;
  const auto& res = benchx::bgl_experiment(core::Method::Hybrid);
  const auto& helo = res.model.helo;

  // Shortest- and longest-span predictive sequences.
  const core::Chain* shortest = nullptr;
  const core::Chain* longest = nullptr;
  for (const auto& c : res.model.chains) {
    if (!c.predictive()) continue;
    if (c.items.size() < 2) continue;
    if (!shortest || c.span() < shortest->span()) shortest = &c;
    if (!longest || c.span() > longest->span()) longest = &c;
  }

  auto print_chain = [&](const char* title, const core::Chain* c) {
    std::cout << title << "\n";
    if (!c) {
      std::cout << "  (none mined)\n\n";
      return;
    }
    for (std::size_t j = 0; j < c->items.size(); ++j) {
      if (j > 0) {
        const std::int32_t gap = c->items[j].delay - c->items[j - 1].delay;
        std::cout << (gap == 0 ? "    (same time)\n"
                               : "    after " +
                                     util::human_duration(gap * 10.0) + "\n");
      }
      const auto tid = c->items[j].signal;
      std::cout << "  " << simlog::to_string(res.model.tmpl_severity[tid])
                << "  " << helo.at(tid).text() << "\n";
    }
    std::cout << "  total span: " << util::human_duration(c->span() * 10.0)
              << "\n\n";
  };

  std::cout << "=== Table II: sequences with extreme time delays ===\n\n";
  print_chain(
      "CIODB sequence (paper: all happening at the same time)", shortest);
  print_chain(
      "Node card sequence (paper: more than one hour first-to-last)",
      longest);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
