# Empty compiler generated dependencies file for test_updater.
# This may be replaced when dependencies are built.
