file(REMOVE_RECURSE
  "CMakeFiles/test_updater.dir/test_updater.cpp.o"
  "CMakeFiles/test_updater.dir/test_updater.cpp.o.d"
  "test_updater"
  "test_updater.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_updater.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
