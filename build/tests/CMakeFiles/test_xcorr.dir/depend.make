# Empty dependencies file for test_xcorr.
# This may be replaced when dependencies are built.
