file(REMOVE_RECURSE
  "CMakeFiles/test_xcorr.dir/test_xcorr.cpp.o"
  "CMakeFiles/test_xcorr.dir/test_xcorr.cpp.o.d"
  "test_xcorr"
  "test_xcorr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xcorr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
