
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_topology.cpp" "tests/CMakeFiles/test_topology.dir/test_topology.cpp.o" "gcc" "tests/CMakeFiles/test_topology.dir/test_topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/elsa/CMakeFiles/elsa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ckpt/CMakeFiles/elsa_ckpt.dir/DependInfo.cmake"
  "/root/repo/build/src/simlog/CMakeFiles/elsa_simlog.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/elsa_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/helo/CMakeFiles/elsa_helo.dir/DependInfo.cmake"
  "/root/repo/build/src/signalkit/CMakeFiles/elsa_signalkit.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/elsa_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
