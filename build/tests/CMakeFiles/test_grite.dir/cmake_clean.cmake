file(REMOVE_RECURSE
  "CMakeFiles/test_grite.dir/test_grite.cpp.o"
  "CMakeFiles/test_grite.dir/test_grite.cpp.o.d"
  "test_grite"
  "test_grite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_grite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
