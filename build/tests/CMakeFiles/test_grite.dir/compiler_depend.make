# Empty compiler generated dependencies file for test_grite.
# This may be replaced when dependencies are built.
