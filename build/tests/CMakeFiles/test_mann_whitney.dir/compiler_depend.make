# Empty compiler generated dependencies file for test_mann_whitney.
# This may be replaced when dependencies are built.
