file(REMOVE_RECURSE
  "CMakeFiles/test_mann_whitney.dir/test_mann_whitney.cpp.o"
  "CMakeFiles/test_mann_whitney.dir/test_mann_whitney.cpp.o.d"
  "test_mann_whitney"
  "test_mann_whitney.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mann_whitney.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
