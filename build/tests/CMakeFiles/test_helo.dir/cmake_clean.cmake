file(REMOVE_RECURSE
  "CMakeFiles/test_helo.dir/test_helo.cpp.o"
  "CMakeFiles/test_helo.dir/test_helo.cpp.o.d"
  "test_helo"
  "test_helo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_helo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
