# Empty compiler generated dependencies file for test_helo.
# This may be replaced when dependencies are built.
