# Empty dependencies file for test_online_engine.
# This may be replaced when dependencies are built.
