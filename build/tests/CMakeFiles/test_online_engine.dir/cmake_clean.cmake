file(REMOVE_RECURSE
  "CMakeFiles/test_online_engine.dir/test_online_engine.cpp.o"
  "CMakeFiles/test_online_engine.dir/test_online_engine.cpp.o.d"
  "test_online_engine"
  "test_online_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_online_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
