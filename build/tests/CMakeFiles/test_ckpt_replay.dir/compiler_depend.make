# Empty compiler generated dependencies file for test_ckpt_replay.
# This may be replaced when dependencies are built.
