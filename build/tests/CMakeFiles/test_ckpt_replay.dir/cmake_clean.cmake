file(REMOVE_RECURSE
  "CMakeFiles/test_ckpt_replay.dir/test_ckpt_replay.cpp.o"
  "CMakeFiles/test_ckpt_replay.dir/test_ckpt_replay.cpp.o.d"
  "test_ckpt_replay"
  "test_ckpt_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ckpt_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
