# Empty dependencies file for test_dm_miner.
# This may be replaced when dependencies are built.
