file(REMOVE_RECURSE
  "CMakeFiles/test_dm_miner.dir/test_dm_miner.cpp.o"
  "CMakeFiles/test_dm_miner.dir/test_dm_miner.cpp.o.d"
  "test_dm_miner"
  "test_dm_miner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dm_miner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
