# Empty compiler generated dependencies file for test_signalkit.
# This may be replaced when dependencies are built.
