file(REMOVE_RECURSE
  "CMakeFiles/test_signalkit.dir/test_signalkit.cpp.o"
  "CMakeFiles/test_signalkit.dir/test_signalkit.cpp.o.d"
  "test_signalkit"
  "test_signalkit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_signalkit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
