file(REMOVE_RECURSE
  "CMakeFiles/test_textgen.dir/test_textgen.cpp.o"
  "CMakeFiles/test_textgen.dir/test_textgen.cpp.o.d"
  "test_textgen"
  "test_textgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_textgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
