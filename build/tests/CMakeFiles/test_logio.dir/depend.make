# Empty dependencies file for test_logio.
# This may be replaced when dependencies are built.
