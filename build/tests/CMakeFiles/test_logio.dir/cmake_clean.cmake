file(REMOVE_RECURSE
  "CMakeFiles/test_logio.dir/test_logio.cpp.o"
  "CMakeFiles/test_logio.dir/test_logio.cpp.o.d"
  "test_logio"
  "test_logio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_logio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
