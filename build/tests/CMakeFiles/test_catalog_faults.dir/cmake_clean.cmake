file(REMOVE_RECURSE
  "CMakeFiles/test_catalog_faults.dir/test_catalog_faults.cpp.o"
  "CMakeFiles/test_catalog_faults.dir/test_catalog_faults.cpp.o.d"
  "test_catalog_faults"
  "test_catalog_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_catalog_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
