# Empty compiler generated dependencies file for test_catalog_faults.
# This may be replaced when dependencies are built.
