file(REMOVE_RECURSE
  "CMakeFiles/elsa_helo.dir/helo.cpp.o"
  "CMakeFiles/elsa_helo.dir/helo.cpp.o.d"
  "libelsa_helo.a"
  "libelsa_helo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elsa_helo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
