file(REMOVE_RECURSE
  "libelsa_helo.a"
)
