# Empty dependencies file for elsa_helo.
# This may be replaced when dependencies are built.
