file(REMOVE_RECURSE
  "CMakeFiles/elsa_topology.dir/topology.cpp.o"
  "CMakeFiles/elsa_topology.dir/topology.cpp.o.d"
  "libelsa_topology.a"
  "libelsa_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elsa_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
