file(REMOVE_RECURSE
  "libelsa_topology.a"
)
