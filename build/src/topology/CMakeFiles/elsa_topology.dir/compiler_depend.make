# Empty compiler generated dependencies file for elsa_topology.
# This may be replaced when dependencies are built.
