file(REMOVE_RECURSE
  "libelsa_util.a"
)
