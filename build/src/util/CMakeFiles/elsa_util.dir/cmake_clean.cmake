file(REMOVE_RECURSE
  "CMakeFiles/elsa_util.dir/ascii.cpp.o"
  "CMakeFiles/elsa_util.dir/ascii.cpp.o.d"
  "CMakeFiles/elsa_util.dir/histogram.cpp.o"
  "CMakeFiles/elsa_util.dir/histogram.cpp.o.d"
  "CMakeFiles/elsa_util.dir/mann_whitney.cpp.o"
  "CMakeFiles/elsa_util.dir/mann_whitney.cpp.o.d"
  "CMakeFiles/elsa_util.dir/stats.cpp.o"
  "CMakeFiles/elsa_util.dir/stats.cpp.o.d"
  "CMakeFiles/elsa_util.dir/strings.cpp.o"
  "CMakeFiles/elsa_util.dir/strings.cpp.o.d"
  "CMakeFiles/elsa_util.dir/thread_pool.cpp.o"
  "CMakeFiles/elsa_util.dir/thread_pool.cpp.o.d"
  "libelsa_util.a"
  "libelsa_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elsa_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
