# Empty compiler generated dependencies file for elsa_util.
# This may be replaced when dependencies are built.
