# Empty dependencies file for elsa_core.
# This may be replaced when dependencies are built.
