file(REMOVE_RECURSE
  "CMakeFiles/elsa_core.dir/chain.cpp.o"
  "CMakeFiles/elsa_core.dir/chain.cpp.o.d"
  "CMakeFiles/elsa_core.dir/ckpt_replay.cpp.o"
  "CMakeFiles/elsa_core.dir/ckpt_replay.cpp.o.d"
  "CMakeFiles/elsa_core.dir/dm_miner.cpp.o"
  "CMakeFiles/elsa_core.dir/dm_miner.cpp.o.d"
  "CMakeFiles/elsa_core.dir/evaluate.cpp.o"
  "CMakeFiles/elsa_core.dir/evaluate.cpp.o.d"
  "CMakeFiles/elsa_core.dir/grite.cpp.o"
  "CMakeFiles/elsa_core.dir/grite.cpp.o.d"
  "CMakeFiles/elsa_core.dir/location.cpp.o"
  "CMakeFiles/elsa_core.dir/location.cpp.o.d"
  "CMakeFiles/elsa_core.dir/model_io.cpp.o"
  "CMakeFiles/elsa_core.dir/model_io.cpp.o.d"
  "CMakeFiles/elsa_core.dir/online.cpp.o"
  "CMakeFiles/elsa_core.dir/online.cpp.o.d"
  "CMakeFiles/elsa_core.dir/outlier.cpp.o"
  "CMakeFiles/elsa_core.dir/outlier.cpp.o.d"
  "CMakeFiles/elsa_core.dir/pipeline.cpp.o"
  "CMakeFiles/elsa_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/elsa_core.dir/profile.cpp.o"
  "CMakeFiles/elsa_core.dir/profile.cpp.o.d"
  "CMakeFiles/elsa_core.dir/report.cpp.o"
  "CMakeFiles/elsa_core.dir/report.cpp.o.d"
  "CMakeFiles/elsa_core.dir/updater.cpp.o"
  "CMakeFiles/elsa_core.dir/updater.cpp.o.d"
  "libelsa_core.a"
  "libelsa_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elsa_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
