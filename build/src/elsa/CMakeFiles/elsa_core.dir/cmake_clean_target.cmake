file(REMOVE_RECURSE
  "libelsa_core.a"
)
