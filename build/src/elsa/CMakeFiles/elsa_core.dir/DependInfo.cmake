
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/elsa/chain.cpp" "src/elsa/CMakeFiles/elsa_core.dir/chain.cpp.o" "gcc" "src/elsa/CMakeFiles/elsa_core.dir/chain.cpp.o.d"
  "/root/repo/src/elsa/ckpt_replay.cpp" "src/elsa/CMakeFiles/elsa_core.dir/ckpt_replay.cpp.o" "gcc" "src/elsa/CMakeFiles/elsa_core.dir/ckpt_replay.cpp.o.d"
  "/root/repo/src/elsa/dm_miner.cpp" "src/elsa/CMakeFiles/elsa_core.dir/dm_miner.cpp.o" "gcc" "src/elsa/CMakeFiles/elsa_core.dir/dm_miner.cpp.o.d"
  "/root/repo/src/elsa/evaluate.cpp" "src/elsa/CMakeFiles/elsa_core.dir/evaluate.cpp.o" "gcc" "src/elsa/CMakeFiles/elsa_core.dir/evaluate.cpp.o.d"
  "/root/repo/src/elsa/grite.cpp" "src/elsa/CMakeFiles/elsa_core.dir/grite.cpp.o" "gcc" "src/elsa/CMakeFiles/elsa_core.dir/grite.cpp.o.d"
  "/root/repo/src/elsa/location.cpp" "src/elsa/CMakeFiles/elsa_core.dir/location.cpp.o" "gcc" "src/elsa/CMakeFiles/elsa_core.dir/location.cpp.o.d"
  "/root/repo/src/elsa/model_io.cpp" "src/elsa/CMakeFiles/elsa_core.dir/model_io.cpp.o" "gcc" "src/elsa/CMakeFiles/elsa_core.dir/model_io.cpp.o.d"
  "/root/repo/src/elsa/online.cpp" "src/elsa/CMakeFiles/elsa_core.dir/online.cpp.o" "gcc" "src/elsa/CMakeFiles/elsa_core.dir/online.cpp.o.d"
  "/root/repo/src/elsa/outlier.cpp" "src/elsa/CMakeFiles/elsa_core.dir/outlier.cpp.o" "gcc" "src/elsa/CMakeFiles/elsa_core.dir/outlier.cpp.o.d"
  "/root/repo/src/elsa/pipeline.cpp" "src/elsa/CMakeFiles/elsa_core.dir/pipeline.cpp.o" "gcc" "src/elsa/CMakeFiles/elsa_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/elsa/profile.cpp" "src/elsa/CMakeFiles/elsa_core.dir/profile.cpp.o" "gcc" "src/elsa/CMakeFiles/elsa_core.dir/profile.cpp.o.d"
  "/root/repo/src/elsa/report.cpp" "src/elsa/CMakeFiles/elsa_core.dir/report.cpp.o" "gcc" "src/elsa/CMakeFiles/elsa_core.dir/report.cpp.o.d"
  "/root/repo/src/elsa/updater.cpp" "src/elsa/CMakeFiles/elsa_core.dir/updater.cpp.o" "gcc" "src/elsa/CMakeFiles/elsa_core.dir/updater.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/elsa_util.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/elsa_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/simlog/CMakeFiles/elsa_simlog.dir/DependInfo.cmake"
  "/root/repo/build/src/helo/CMakeFiles/elsa_helo.dir/DependInfo.cmake"
  "/root/repo/build/src/signalkit/CMakeFiles/elsa_signalkit.dir/DependInfo.cmake"
  "/root/repo/build/src/ckpt/CMakeFiles/elsa_ckpt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
