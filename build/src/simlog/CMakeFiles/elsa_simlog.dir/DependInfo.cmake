
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simlog/catalog.cpp" "src/simlog/CMakeFiles/elsa_simlog.dir/catalog.cpp.o" "gcc" "src/simlog/CMakeFiles/elsa_simlog.dir/catalog.cpp.o.d"
  "/root/repo/src/simlog/faults.cpp" "src/simlog/CMakeFiles/elsa_simlog.dir/faults.cpp.o" "gcc" "src/simlog/CMakeFiles/elsa_simlog.dir/faults.cpp.o.d"
  "/root/repo/src/simlog/generator.cpp" "src/simlog/CMakeFiles/elsa_simlog.dir/generator.cpp.o" "gcc" "src/simlog/CMakeFiles/elsa_simlog.dir/generator.cpp.o.d"
  "/root/repo/src/simlog/logio.cpp" "src/simlog/CMakeFiles/elsa_simlog.dir/logio.cpp.o" "gcc" "src/simlog/CMakeFiles/elsa_simlog.dir/logio.cpp.o.d"
  "/root/repo/src/simlog/record.cpp" "src/simlog/CMakeFiles/elsa_simlog.dir/record.cpp.o" "gcc" "src/simlog/CMakeFiles/elsa_simlog.dir/record.cpp.o.d"
  "/root/repo/src/simlog/scenario.cpp" "src/simlog/CMakeFiles/elsa_simlog.dir/scenario.cpp.o" "gcc" "src/simlog/CMakeFiles/elsa_simlog.dir/scenario.cpp.o.d"
  "/root/repo/src/simlog/textgen.cpp" "src/simlog/CMakeFiles/elsa_simlog.dir/textgen.cpp.o" "gcc" "src/simlog/CMakeFiles/elsa_simlog.dir/textgen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/elsa_util.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/elsa_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
