file(REMOVE_RECURSE
  "CMakeFiles/elsa_simlog.dir/catalog.cpp.o"
  "CMakeFiles/elsa_simlog.dir/catalog.cpp.o.d"
  "CMakeFiles/elsa_simlog.dir/faults.cpp.o"
  "CMakeFiles/elsa_simlog.dir/faults.cpp.o.d"
  "CMakeFiles/elsa_simlog.dir/generator.cpp.o"
  "CMakeFiles/elsa_simlog.dir/generator.cpp.o.d"
  "CMakeFiles/elsa_simlog.dir/logio.cpp.o"
  "CMakeFiles/elsa_simlog.dir/logio.cpp.o.d"
  "CMakeFiles/elsa_simlog.dir/record.cpp.o"
  "CMakeFiles/elsa_simlog.dir/record.cpp.o.d"
  "CMakeFiles/elsa_simlog.dir/scenario.cpp.o"
  "CMakeFiles/elsa_simlog.dir/scenario.cpp.o.d"
  "CMakeFiles/elsa_simlog.dir/textgen.cpp.o"
  "CMakeFiles/elsa_simlog.dir/textgen.cpp.o.d"
  "libelsa_simlog.a"
  "libelsa_simlog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elsa_simlog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
