# Empty compiler generated dependencies file for elsa_simlog.
# This may be replaced when dependencies are built.
