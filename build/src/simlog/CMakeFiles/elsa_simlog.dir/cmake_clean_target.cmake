file(REMOVE_RECURSE
  "libelsa_simlog.a"
)
