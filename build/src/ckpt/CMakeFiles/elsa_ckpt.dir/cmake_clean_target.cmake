file(REMOVE_RECURSE
  "libelsa_ckpt.a"
)
