file(REMOVE_RECURSE
  "CMakeFiles/elsa_ckpt.dir/simulator.cpp.o"
  "CMakeFiles/elsa_ckpt.dir/simulator.cpp.o.d"
  "CMakeFiles/elsa_ckpt.dir/waste_model.cpp.o"
  "CMakeFiles/elsa_ckpt.dir/waste_model.cpp.o.d"
  "libelsa_ckpt.a"
  "libelsa_ckpt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elsa_ckpt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
