# Empty compiler generated dependencies file for elsa_ckpt.
# This may be replaced when dependencies are built.
