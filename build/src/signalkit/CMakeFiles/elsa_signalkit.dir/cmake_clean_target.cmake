file(REMOVE_RECURSE
  "libelsa_signalkit.a"
)
