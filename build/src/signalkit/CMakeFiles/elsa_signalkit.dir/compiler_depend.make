# Empty compiler generated dependencies file for elsa_signalkit.
# This may be replaced when dependencies are built.
