
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/signalkit/classify.cpp" "src/signalkit/CMakeFiles/elsa_signalkit.dir/classify.cpp.o" "gcc" "src/signalkit/CMakeFiles/elsa_signalkit.dir/classify.cpp.o.d"
  "/root/repo/src/signalkit/fft.cpp" "src/signalkit/CMakeFiles/elsa_signalkit.dir/fft.cpp.o" "gcc" "src/signalkit/CMakeFiles/elsa_signalkit.dir/fft.cpp.o.d"
  "/root/repo/src/signalkit/filters.cpp" "src/signalkit/CMakeFiles/elsa_signalkit.dir/filters.cpp.o" "gcc" "src/signalkit/CMakeFiles/elsa_signalkit.dir/filters.cpp.o.d"
  "/root/repo/src/signalkit/signal.cpp" "src/signalkit/CMakeFiles/elsa_signalkit.dir/signal.cpp.o" "gcc" "src/signalkit/CMakeFiles/elsa_signalkit.dir/signal.cpp.o.d"
  "/root/repo/src/signalkit/wavelet.cpp" "src/signalkit/CMakeFiles/elsa_signalkit.dir/wavelet.cpp.o" "gcc" "src/signalkit/CMakeFiles/elsa_signalkit.dir/wavelet.cpp.o.d"
  "/root/repo/src/signalkit/xcorr.cpp" "src/signalkit/CMakeFiles/elsa_signalkit.dir/xcorr.cpp.o" "gcc" "src/signalkit/CMakeFiles/elsa_signalkit.dir/xcorr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/elsa_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
