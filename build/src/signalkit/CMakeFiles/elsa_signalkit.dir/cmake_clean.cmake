file(REMOVE_RECURSE
  "CMakeFiles/elsa_signalkit.dir/classify.cpp.o"
  "CMakeFiles/elsa_signalkit.dir/classify.cpp.o.d"
  "CMakeFiles/elsa_signalkit.dir/fft.cpp.o"
  "CMakeFiles/elsa_signalkit.dir/fft.cpp.o.d"
  "CMakeFiles/elsa_signalkit.dir/filters.cpp.o"
  "CMakeFiles/elsa_signalkit.dir/filters.cpp.o.d"
  "CMakeFiles/elsa_signalkit.dir/signal.cpp.o"
  "CMakeFiles/elsa_signalkit.dir/signal.cpp.o.d"
  "CMakeFiles/elsa_signalkit.dir/wavelet.cpp.o"
  "CMakeFiles/elsa_signalkit.dir/wavelet.cpp.o.d"
  "CMakeFiles/elsa_signalkit.dir/xcorr.cpp.o"
  "CMakeFiles/elsa_signalkit.dir/xcorr.cpp.o.d"
  "libelsa_signalkit.a"
  "libelsa_signalkit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elsa_signalkit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
