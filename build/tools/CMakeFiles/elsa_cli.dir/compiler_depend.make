# Empty compiler generated dependencies file for elsa_cli.
# This may be replaced when dependencies are built.
