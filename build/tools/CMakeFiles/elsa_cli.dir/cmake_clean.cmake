file(REMOVE_RECURSE
  "CMakeFiles/elsa_cli.dir/elsa_cli.cpp.o"
  "CMakeFiles/elsa_cli.dir/elsa_cli.cpp.o.d"
  "elsa"
  "elsa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elsa_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
