# Empty dependencies file for fig5_sequence_sizes.
# This may be replaced when dependencies are built.
