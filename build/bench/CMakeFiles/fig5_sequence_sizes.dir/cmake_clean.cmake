file(REMOVE_RECURSE
  "CMakeFiles/fig5_sequence_sizes.dir/fig5_sequence_sizes.cpp.o"
  "CMakeFiles/fig5_sequence_sizes.dir/fig5_sequence_sizes.cpp.o.d"
  "fig5_sequence_sizes"
  "fig5_sequence_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_sequence_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
