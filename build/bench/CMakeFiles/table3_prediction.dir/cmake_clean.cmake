file(REMOVE_RECURSE
  "CMakeFiles/table3_prediction.dir/table3_prediction.cpp.o"
  "CMakeFiles/table3_prediction.dir/table3_prediction.cpp.o.d"
  "table3_prediction"
  "table3_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
