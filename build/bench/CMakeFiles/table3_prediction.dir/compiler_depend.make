# Empty compiler generated dependencies file for table3_prediction.
# This may be replaced when dependencies are built.
