# Empty compiler generated dependencies file for table4_checkpoint_waste.
# This may be replaced when dependencies are built.
