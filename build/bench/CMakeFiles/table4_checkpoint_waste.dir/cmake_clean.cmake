file(REMOVE_RECURSE
  "CMakeFiles/table4_checkpoint_waste.dir/table4_checkpoint_waste.cpp.o"
  "CMakeFiles/table4_checkpoint_waste.dir/table4_checkpoint_waste.cpp.o.d"
  "table4_checkpoint_waste"
  "table4_checkpoint_waste.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_checkpoint_waste.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
