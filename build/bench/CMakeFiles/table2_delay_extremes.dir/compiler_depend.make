# Empty compiler generated dependencies file for table2_delay_extremes.
# This may be replaced when dependencies are built.
