file(REMOVE_RECURSE
  "CMakeFiles/table2_delay_extremes.dir/table2_delay_extremes.cpp.o"
  "CMakeFiles/table2_delay_extremes.dir/table2_delay_extremes.cpp.o.d"
  "table2_delay_extremes"
  "table2_delay_extremes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_delay_extremes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
