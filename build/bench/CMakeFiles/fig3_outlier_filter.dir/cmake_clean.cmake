file(REMOVE_RECURSE
  "CMakeFiles/fig3_outlier_filter.dir/fig3_outlier_filter.cpp.o"
  "CMakeFiles/fig3_outlier_filter.dir/fig3_outlier_filter.cpp.o.d"
  "fig3_outlier_filter"
  "fig3_outlier_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_outlier_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
