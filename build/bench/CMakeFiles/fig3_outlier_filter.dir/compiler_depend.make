# Empty compiler generated dependencies file for fig3_outlier_filter.
# This may be replaced when dependencies are built.
