# Empty dependencies file for ablation_confirmation.
# This may be replaced when dependencies are built.
