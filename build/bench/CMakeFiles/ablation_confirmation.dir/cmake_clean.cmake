file(REMOVE_RECURSE
  "CMakeFiles/ablation_confirmation.dir/ablation_confirmation.cpp.o"
  "CMakeFiles/ablation_confirmation.dir/ablation_confirmation.cpp.o.d"
  "ablation_confirmation"
  "ablation_confirmation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_confirmation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
