file(REMOVE_RECURSE
  "CMakeFiles/ablation_parallel_mining.dir/ablation_parallel_mining.cpp.o"
  "CMakeFiles/ablation_parallel_mining.dir/ablation_parallel_mining.cpp.o.d"
  "ablation_parallel_mining"
  "ablation_parallel_mining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_parallel_mining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
