# Empty compiler generated dependencies file for ablation_parallel_mining.
# This may be replaced when dependencies are built.
