file(REMOVE_RECURSE
  "CMakeFiles/fig1_signal_types.dir/fig1_signal_types.cpp.o"
  "CMakeFiles/fig1_signal_types.dir/fig1_signal_types.cpp.o.d"
  "fig1_signal_types"
  "fig1_signal_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_signal_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
