# Empty dependencies file for fig1_signal_types.
# This may be replaced when dependencies are built.
