file(REMOVE_RECURSE
  "CMakeFiles/ablation_grite_seed.dir/ablation_grite_seed.cpp.o"
  "CMakeFiles/ablation_grite_seed.dir/ablation_grite_seed.cpp.o.d"
  "ablation_grite_seed"
  "ablation_grite_seed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_grite_seed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
