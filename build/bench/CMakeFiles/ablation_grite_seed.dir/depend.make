# Empty dependencies file for ablation_grite_seed.
# This may be replaced when dependencies are built.
