file(REMOVE_RECURSE
  "CMakeFiles/fig7_propagation.dir/fig7_propagation.cpp.o"
  "CMakeFiles/fig7_propagation.dir/fig7_propagation.cpp.o.d"
  "fig7_propagation"
  "fig7_propagation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_propagation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
