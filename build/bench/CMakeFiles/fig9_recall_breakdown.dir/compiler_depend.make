# Empty compiler generated dependencies file for fig9_recall_breakdown.
# This may be replaced when dependencies are built.
