file(REMOVE_RECURSE
  "CMakeFiles/fig9_recall_breakdown.dir/fig9_recall_breakdown.cpp.o"
  "CMakeFiles/fig9_recall_breakdown.dir/fig9_recall_breakdown.cpp.o.d"
  "fig9_recall_breakdown"
  "fig9_recall_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_recall_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
