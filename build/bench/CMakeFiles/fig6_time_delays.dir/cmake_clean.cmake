file(REMOVE_RECURSE
  "CMakeFiles/fig6_time_delays.dir/fig6_time_delays.cpp.o"
  "CMakeFiles/fig6_time_delays.dir/fig6_time_delays.cpp.o.d"
  "fig6_time_delays"
  "fig6_time_delays.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_time_delays.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
