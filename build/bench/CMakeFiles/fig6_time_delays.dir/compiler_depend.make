# Empty compiler generated dependencies file for fig6_time_delays.
# This may be replaced when dependencies are built.
