# Empty dependencies file for mercury_nfs_storm.
# This may be replaced when dependencies are built.
