file(REMOVE_RECURSE
  "CMakeFiles/mercury_nfs_storm.dir/mercury_nfs_storm.cpp.o"
  "CMakeFiles/mercury_nfs_storm.dir/mercury_nfs_storm.cpp.o.d"
  "mercury_nfs_storm"
  "mercury_nfs_storm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mercury_nfs_storm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
