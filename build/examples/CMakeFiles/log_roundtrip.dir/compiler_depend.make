# Empty compiler generated dependencies file for log_roundtrip.
# This may be replaced when dependencies are built.
