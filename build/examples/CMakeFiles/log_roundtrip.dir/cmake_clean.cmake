file(REMOVE_RECURSE
  "CMakeFiles/log_roundtrip.dir/log_roundtrip.cpp.o"
  "CMakeFiles/log_roundtrip.dir/log_roundtrip.cpp.o.d"
  "log_roundtrip"
  "log_roundtrip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/log_roundtrip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
