// Streaming-monitor example: the deployment shape the paper's Fig 2
// describes. An offline phase learns the model; the online phase then
// consumes records one at a time — exactly as a syslog tap would deliver
// them — and prints alarms as they are issued, with locations and
// deadlines. Also demonstrates the adaptive-update extension: halfway
// through, the model is re-mined over the trailing window and merged.
//
//   ./build/examples/online_monitor [duration_days] [seed]

#include <cstdlib>
#include <iostream>

#include "elsa/online.hpp"
#include "elsa/pipeline.hpp"
#include "elsa/updater.hpp"
#include "simlog/scenario.hpp"
#include "util/ascii.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace elsa;

  const double days = argc > 1 ? std::atof(argv[1]) : 10.0;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;

  auto scenario = simlog::make_bluegene_scenario(seed, days, 80);
  const auto trace = scenario.generator.generate(scenario.config);
  const double train_days = std::min(scenario.train_days, days / 2.0);
  const std::int64_t train_end =
      trace.t_begin_ms + static_cast<std::int64_t>(train_days * 86400000.0);

  std::cout << "== ELSA online monitor ==\n";
  std::cout << "offline phase: learning from the first " << train_days
            << " days...\n";
  core::PipelineConfig cfg;
  auto model = core::train_offline(trace, train_end, core::Method::Hybrid, cfg);
  std::size_t predictive = 0;
  for (const auto& c : model.chains) predictive += c.predictive();
  std::cout << "  " << model.helo.size() << " event types, "
            << model.chains.size() << " correlation chains (" << predictive
            << " predictive)\n\n";

  core::EngineConfig ec = cfg.engine;
  ec.dt_ms = cfg.dt_ms;
  core::OnlineEngine engine(trace.topology, model.chains, model.profiles, ec);

  // Stream the test period; print alarms as they appear.
  const std::int64_t update_at =
      train_end + (trace.t_end_ms - train_end) / 2;
  bool updated = false;
  std::size_t printed = 0, seen = 0;

  for (const auto& rec : trace.records) {
    if (rec.time_ms < train_end) continue;

    if (!updated && rec.time_ms >= update_at) {
      // Adaptive update (paper §III.C future work): re-mine the trailing
      // window, merge into the live chain set.
      core::UpdateStats st =
          core::update_model(model, trace, train_end, update_at, cfg);
      std::cout << "[" << util::human_duration(
                       static_cast<double>(rec.time_ms) / 1000.0)
                << "] adaptive update: " << st.refreshed << " refreshed, "
                << st.added << " added, " << st.decayed << " decayed, "
                << st.retired << " retired\n";
      updated = true;
      // A production deployment would swap the engine's chain set here; the
      // engine keeps running with its current set in this walkthrough.
    }

    const auto tid = model.helo.classify(rec.message);
    engine.feed(rec, tid);

    // Drain newly issued predictions.
    while (seen < engine.predictions().size()) {
      const auto& p = engine.predictions()[seen++];
      if (printed < 12) {
        std::cout << "[" << util::human_duration(
                         static_cast<double>(p.issue_time_ms) / 1000.0)
                  << "] ALARM: '"
                  << model.helo.at(p.tmpl).text().substr(0, 56)
                  << "' expected in "
                  << util::human_duration(
                         static_cast<double>(p.lead_ms) / 1000.0);
        if (!p.nodes.empty())
          std::cout << " at " << trace.topology.code(p.nodes.front())
                    << " (scope " << topo::to_string(p.scope) << ")";
        std::cout << " [conf " << util::format_pct(p.confidence, 0) << "]\n";
        ++printed;
      }
    }
  }
  engine.finish(trace.t_end_ms);

  std::cout << "\n" << engine.predictions().size() << " alarms issued over "
            << util::format_double(days - train_days, 1)
            << " monitored days (" << printed << " shown), "
            << engine.stats().duplicates_suppressed
            << " duplicates suppressed\n";
  return 0;
}
