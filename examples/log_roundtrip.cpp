// Log round-trip example: the path for running ELSA on real logs. Writes a
// generated campaign out in the RAS text format, reads it back as a plain
// production log (no ground truth, no generator metadata), and runs the
// full offline phase on the parsed records — exactly what a deployment on
// CFDR-style logs would do.
//
//   ./build/examples/log_roundtrip [out.log]

#include <cstdio>
#include <iostream>

#include "elsa/pipeline.hpp"
#include "simlog/logio.hpp"
#include "simlog/scenario.hpp"
#include "util/ascii.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace elsa;
  const std::string path = argc > 1 ? argv[1] : "/tmp/elsa_roundtrip.log";

  auto scenario = simlog::make_bluegene_scenario(7, 5.0, 60);
  const auto trace = scenario.generator.generate(scenario.config);
  simlog::write_ras_log_file(path, trace.records, trace.topology);
  std::cout << "wrote " << trace.records.size() << " records to " << path
            << "\n";

  const auto parsed = simlog::read_ras_log_file(path, trace.topology);
  std::cout << "parsed back " << parsed.records.size() << " records ("
            << parsed.malformed_lines << " malformed lines)\n";

  // Rebuild a trace view from the parsed log alone.
  simlog::Trace replog;
  replog.topology = trace.topology;
  replog.records = parsed.records;
  replog.t_begin_ms = trace.t_begin_ms;
  replog.t_end_ms = trace.t_end_ms;

  core::PipelineConfig cfg;
  const auto model = core::train_offline(
      replog, replog.t_end_ms, core::Method::Hybrid, cfg);

  std::size_t predictive = 0;
  for (const auto& c : model.chains) predictive += c.predictive();
  std::cout << "\noffline phase on the parsed log:\n";
  std::cout << "  " << model.helo.size() << " event templates recovered\n";
  std::cout << "  " << model.chains.size() << " correlation chains mined ("
            << predictive << " predictive, " << model.non_error_chains
            << " non-error)\n";

  std::cout << "\nsample mined chain rendered from parsed-log templates:\n";
  for (const auto& c : model.chains) {
    if (!c.predictive() || c.items.size() < 3) continue;
    for (std::size_t j = 0; j < c.items.size(); ++j) {
      if (j) std::cout << "    -> +" << (c.items[j].delay * 10) << "s ";
      else std::cout << "    ";
      std::cout << model.helo.at(c.items[j].signal).text().substr(0, 64)
                << "\n";
    }
    break;
  }
  std::remove(path.c_str());
  return 0;
}
