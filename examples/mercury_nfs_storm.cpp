// Mercury NFS-storm scenario (paper §V, §VI.A): a network-file-system
// outage hits a quarter of the 891-node cluster nearly simultaneously —
// "rpc: bad tcp reclen" floods the log, file operations fail everywhere,
// and the analysis pipeline has seconds to get a system-wide warning out.
//
// This example trains the hybrid predictor on the Mercury-like campaign,
// then zooms into one storm: the message-rate spike, the outlier the
// detector raises, the prediction issued, and whether it beat the outage.
//
//   ./build/examples/mercury_nfs_storm [duration_days] [seed]

#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "elsa/pipeline.hpp"
#include "elsa/report.hpp"
#include "simlog/scenario.hpp"
#include "util/ascii.hpp"
#include "util/ascii.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace elsa;

  const double days = argc > 1 ? std::atof(argv[1]) : 12.0;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 2006;

  std::cout << "== Mercury NFS storm walkthrough ==\n";
  auto scenario = simlog::make_mercury_scenario(seed, days, 130);
  const auto trace = scenario.generator.generate(scenario.config);
  std::cout << "cluster: " << trace.topology.total_nodes()
            << " nodes, trace: " << trace.records.size() << " records, "
            << trace.faults.size() << " failures\n";

  core::PipelineConfig cfg;
  const auto res = core::run_experiment(trace, scenario.train_days,
                                        core::Method::Hybrid, cfg);

  // Find the first NFS outage in the test period.
  const std::int64_t test_begin =
      trace.t_begin_ms +
      static_cast<std::int64_t>(scenario.train_days * 86400000.0);
  const simlog::GroundTruthFault* storm = nullptr;
  for (const auto& f : trace.faults)
    if (f.category == "io" && f.fail_time_ms >= test_begin &&
        f.affected_nodes.size() > 50) {
      storm = &f;
      break;
    }
  if (!storm) {
    std::cout << "no NFS storm landed in the test window; try another seed\n";
    return 0;
  }

  std::cout << "\n-- the storm --\n";
  std::cout << "outage at t=" << util::human_duration(
                   static_cast<double>(storm->fail_time_ms) / 1000.0)
            << " into the trace, " << storm->affected_nodes.size()
            << " nodes affected ("
            << util::format_pct(static_cast<double>(
                                    storm->affected_nodes.size()) /
                                trace.topology.total_nodes())
            << " of the machine)\n";

  // Message rate around the storm: one-second buckets, +/- 60 s.
  const std::int64_t w0 = storm->start_time_ms - 60'000;
  std::vector<double> rate(180, 0.0);
  std::size_t storm_records = 0;
  for (const auto& rec : trace.records) {
    const std::int64_t off = rec.time_ms - w0;
    if (off < 0 || off >= 180'000) continue;
    ++rate[static_cast<std::size_t>(off / 1000)];
    if (rec.fault_id == storm->id) ++storm_records;
  }
  std::cout << "log records from this storm alone: " << storm_records << "\n";
  std::cout << "msg/s around the storm (3 minutes, storm starts at |):\n  "
            << util::sparkline(rate, 120) << "\n";
  std::cout << "peak rate: " << *std::max_element(rate.begin(), rate.end())
            << " msg/s (quiet baseline: "
            << util::format_double(trace.message_rate(), 1) << " msg/s)\n";

  // Predictions covering this storm.
  std::cout << "\n-- the prediction --\n";
  bool any = false;
  for (const auto& p : res.predictions) {
    if (std::llabs(p.trigger_time_ms - storm->start_time_ms) > 300'000)
      continue;
    const auto& tmpls = res.fault_failure_tmpls;
    (void)tmpls;
    std::cout << "  alarm: event type '"
              << res.model.helo.at(p.tmpl).text().substr(0, 60)
              << "' expected in "
              << util::human_duration(
                     static_cast<double>(p.lead_ms) / 1000.0)
              << ", scope " << topo::to_string(p.scope)
              << ", analysis delay "
              << util::format_double(
                     static_cast<double>(p.issue_time_ms - p.trigger_time_ms),
                     0)
              << " ms -> "
              << (p.issue_time_ms <= storm->fail_time_ms ? "IN TIME"
                                                         : "TOO LATE")
              << "\n";
    any = true;
  }
  if (!any)
    std::cout << "  (no prediction fired for this storm — rpc precursors "
                 "were too close to the outage)\n";

  std::cout << "\n-- campaign summary --\n";
  std::cout << "precision " << util::format_pct(res.eval.precision())
            << ", recall " << util::format_pct(res.eval.recall()) << "\n";
  const auto at = core::analysis_time_report(res.engine_stats);
  std::cout << "modelled analysis windows: mean "
            << util::format_double(at.mean_ms, 0) << " ms, max "
            << util::format_double(at.max_ms, 0)
            << " ms (paper's Mercury worst case: 8.43 s)\n";
  return 0;
}
