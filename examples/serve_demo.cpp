// Serving-layer walkthrough: the deployment shape the `src/serve/`
// subsystem adds on top of the paper's pipeline. An offline phase learns
// the model; the trace replayer then impersonates a live syslog feed,
// pushing the test period through the sharded prediction service at a
// large speed-up while this thread streams the alarms out, exactly as an
// operator console would. Finishes with the service's metrics report and
// a determinism check of the sharded run against a single engine.
//
//   ./build/examples/serve_demo [shards] [speedup] [duration_days] [seed]
//
// speedup is trace-seconds per wall-second; 0 replays as fast as possible.

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <thread>

#include "elsa/pipeline.hpp"
#include "serve/replayer.hpp"
#include "serve/service.hpp"
#include "simlog/scenario.hpp"
#include "util/ascii.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace elsa;

  const std::size_t shards = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 4;
  const double speedup = argc > 2 ? std::atof(argv[2]) : 50'000.0;
  const double days = argc > 3 ? std::atof(argv[3]) : 8.0;
  const std::uint64_t seed =
      argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 2012;

  std::cout << "== elsa-serve demo ==\n";
  auto scenario = simlog::make_bluegene_scenario(seed, days, 40);
  const auto trace = scenario.generator.generate(scenario.config);
  const double train_days = std::min(scenario.train_days, days / 2.0);
  const std::int64_t train_end =
      trace.t_begin_ms + static_cast<std::int64_t>(train_days * 86'400'000.0);

  std::cout << "offline phase: learning from the first " << train_days
            << " days...\n";
  core::PipelineConfig cfg;
  const auto model =
      core::train_offline(trace, train_end, core::Method::Hybrid, cfg);
  std::cout << "  " << model.helo.size() << " event types, "
            << model.chains.size() << " chains\n\n";

  serve::ServiceConfig scfg;
  scfg.shards = shards;
  serve::PredictionService service(trace.topology, model, scfg);

  serve::ReplayOptions ro;
  ro.speedup = speedup;
  ro.from_ms = train_end;
  const serve::TraceReplayer replayer(trace, ro);

  std::cout << "serving " << shards << " shards at "
            << (speedup > 0 ? util::format_double(speedup, 0) + "x"
                            : std::string("max"))
            << " replay speed...\n";
  std::atomic<bool> done{false};
  std::size_t accepted = 0;
  std::thread producer([&] {
    accepted = replayer.replay_into(service);
    done.store(true);
  });

  std::vector<core::Prediction> alarms;
  std::size_t printed = 0;
  const auto drain = [&] {
    service.poll_alarms(alarms);
    for (const auto& p : alarms) {
      if (printed >= 10) break;
      ++printed;
      std::cout << "[" << util::human_duration(
                       static_cast<double>(p.issue_time_ms) / 1000.0)
                << "] ALARM "
                << (p.nodes.empty() ? std::string("SYSTEM")
                                    : trace.topology.code(p.nodes.front()))
                << " in " << util::human_duration(
                       static_cast<double>(p.lead_ms) / 1000.0)
                << ": " << model.helo.at(p.tmpl).text().substr(0, 60) << "\n";
    }
    alarms.clear();
  };
  while (!done.load()) {
    drain();
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  producer.join();
  service.finish(trace.t_end_ms);
  drain();

  std::cout << "\n" << service.metrics_report();
  std::cout << "\ndeterminism check vs a single engine... " << std::flush;
  core::OnlineEngine single(trace.topology, model.chains, model.profiles,
                            scfg.engine);
  for (const auto& rec : trace.records) {
    if (rec.time_ms < train_end) continue;
    single.feed(rec, service.classify(rec.message));
  }
  single.finish(trace.t_end_ms);
  std::cout << (single.predictions().size() == service.predictions().size()
                    ? "same alarm count"
                    : "DIFFERENT (non-location-confined chains present)")
            << " (" << service.predictions().size() << " sharded vs "
            << single.predictions().size() << " single)\n";
  return 0;
}
