// Quickstart: the whole ELSA pipeline in ~60 lines.
//
// Generates a Blue Gene/L-like log campaign, trains the hybrid
// signal-analysis + data-mining predictor on the first days, runs it online
// over the rest, and prints what it found: mined correlation chains,
// precision/recall against injected ground truth, and the prediction lead
// times that make proactive checkpointing possible.
//
//   ./build/examples/quickstart [duration_days] [seed]

#include <cstdlib>
#include <iostream>

#include "elsa/pipeline.hpp"
#include "simlog/scenario.hpp"
#include "util/ascii.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace elsa;

  const double days = argc > 1 ? std::atof(argv[1]) : 8.0;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 2012;

  std::cout << "== ELSA quickstart ==\n";
  auto scenario = simlog::make_bluegene_scenario(seed, days,
                                                 /*filler_templates=*/60);
  const auto trace = scenario.generator.generate(scenario.config);
  std::cout << "generated " << trace.records.size() << " log records over "
            << days << " days (" << util::format_double(trace.message_rate(), 2)
            << " msg/s), " << trace.faults.size()
            << " injected failures, machine: "
            << trace.topology.total_nodes() << " nodes\n";

  const double train_days = std::min(scenario.train_days, days / 2.0);
  core::PipelineConfig cfg;
  const auto result =
      core::run_experiment(trace, train_days, core::Method::Hybrid, cfg);

  std::cout << "\n-- offline phase --\n";
  std::cout << "HELO templates discovered: " << result.model.helo.size()
            << "\n";
  std::cout << "cross-correlation seed pairs: " << result.model.seeds.size()
            << "\n";
  std::cout << "mined correlation chains: " << result.model.chains.size()
            << " (" << result.model.non_error_chains
            << " non-error sequences excluded from prediction)\n";

  std::cout << "\n-- example chains --\n";
  int shown = 0;
  for (const auto& chain : result.model.chains) {
    if (!chain.predictive() || chain.items.size() < 2) continue;
    std::cout << "  " << core::to_string(chain) << "   support="
              << chain.support << " conf="
              << util::format_pct(chain.confidence) << " lead="
              << util::human_duration(chain.lead() * 10.0) << "\n";
    if (++shown >= 5) break;
  }

  std::cout << "\n-- online phase --\n";
  std::cout << "predictions emitted: " << result.predictions.size() << "\n";
  std::cout << "mean analysis window: "
            << util::format_double(result.engine_stats.mean_analysis_ms(), 1)
            << " ms, max "
            << util::format_double(result.engine_stats.max_analysis_ms(), 1)
            << " ms\n";

  const auto& ev = result.eval;
  std::cout << "\n-- evaluation (test period) --\n";
  std::cout << "failures: " << ev.faults << ", predicted: "
            << ev.predicted_faults << "\n";
  std::cout << "precision: " << util::format_pct(ev.precision())
            << "  recall: " << util::format_pct(ev.recall()) << "\n";
  std::cout << "predictions with >10 s lead: "
            << util::format_pct(ev.lead_fraction_above(10.0))
            << ", >1 min: " << util::format_pct(ev.lead_fraction_above(60.0))
            << "\n";

  util::AsciiBarChart chart("recall by failure category");
  for (const auto& cat : ev.per_category)
    chart.add(cat.category, cat.recall(),
              std::to_string(cat.predicted) + "/" + std::to_string(cat.total));
  std::cout << "\n";
  chart.print(std::cout);
  return 0;
}
