// Checkpoint-interval advisor: the paper's §VI.B model as a tool. Given a
// machine's MTTF, checkpoint cost, and a predictor's measured precision
// and recall, it recommends the checkpoint interval and quantifies the
// waste saved — then validates the numbers with the event-driven
// simulator. Run with no arguments for the paper's systems, or pass your
// own: ./checkpoint_advisor <C_minutes> <R_minutes> <D_minutes>
//                           <MTTF_hours> <precision%> <recall%>

#include <cstdlib>
#include <iostream>

#include "ckpt/simulator.hpp"
#include "ckpt/waste_model.hpp"
#include "util/ascii.hpp"
#include "util/strings.hpp"

namespace {

using namespace elsa;

void advise(const char* label, ckpt::CkptParams p, double precision,
            double recall) {
  std::cout << "-- " << label << " --\n";
  std::cout << "   C=" << util::human_duration(p.C * 60.0)
            << " R=" << util::human_duration(p.R * 60.0)
            << " D=" << util::human_duration(p.D * 60.0)
            << " MTTF=" << util::human_duration(p.mttf * 60.0)
            << " predictor " << util::format_pct(precision, 0) << "/"
            << util::format_pct(recall, 0) << " (precision/recall)\n";

  const double t0 = ckpt::young_interval(p);
  const double w0 = ckpt::waste_no_prediction(p);
  ckpt::CkptParams adjusted = p;
  adjusted.mttf = recall < 1.0 ? p.mttf / (1.0 - recall) : 1e12;
  const double t1 = ckpt::young_interval(adjusted);
  const double w1 = ckpt::waste_with_prediction(p, recall, precision);

  std::cout << "   without prediction: checkpoint every "
            << util::human_duration(t0 * 60.0) << ", waste "
            << util::format_pct(w0) << "\n";
  std::cout << "   with prediction:    checkpoint every "
            << util::human_duration(t1 * 60.0) << ", waste "
            << util::format_pct(w1) << "  (gain "
            << util::format_pct((w0 - w1) / w0) << ")\n";

  ckpt::SimConfig sim;
  sim.params = p;
  sim.recall = recall;
  sim.precision = precision;
  sim.target_work = 2.0e6;
  const auto r = ckpt::simulate_checkpointing(sim);
  std::cout << "   simulator check:    waste " << util::format_pct(r.waste())
            << " over " << r.failures << " failures ("
            << r.predicted_failures << " predicted, " << r.false_alarms
            << " false alarms)\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::cout << "== checkpoint advisor (paper §VI.B model) ==\n\n";
  if (argc == 7) {
    ckpt::CkptParams p;
    p.C = std::atof(argv[1]);
    p.R = std::atof(argv[2]);
    p.D = std::atof(argv[3]);
    p.mttf = std::atof(argv[4]) * 60.0;
    advise("your system", p, std::atof(argv[5]) / 100.0,
           std::atof(argv[6]) / 100.0);
    return 0;
  }

  // The paper's reference points (Table IV) plus an exascale-flavoured one.
  advise("2012 petascale system, minute checkpoints",
         {1.0, 5.0, 1.0, 1440.0}, 0.92, 0.36);
  advise("FTI-style fast checkpoints [25]",
         {1.0 / 6.0, 5.0, 1.0, 1440.0}, 0.92, 0.45);
  advise("future system, 5h MTTF (paper's headline case)",
         {1.0, 5.0, 1.0, 300.0}, 0.92, 0.50);
  advise("this reproduction's measured hybrid predictor, 5h MTTF",
         {1.0, 5.0, 1.0, 300.0}, 0.96, 0.49);
  std::cout << "usage for your own numbers:\n  checkpoint_advisor C_min "
               "R_min D_min MTTF_hours precision%% recall%%\n";
  return 0;
}
