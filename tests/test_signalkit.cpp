// Signal-toolkit tests: sampling, FFT (round-trip, correctness on known
// spectra), autocorrelation, Haar wavelets (perfect reconstruction,
// denoising), filters, and the periodic/noise/silent classifier on
// synthetic signals of each class.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "signalkit/classify.hpp"
#include "signalkit/fft.hpp"
#include "signalkit/filters.hpp"
#include "signalkit/signal.hpp"
#include "signalkit/wavelet.hpp"
#include "util/rng.hpp"

namespace {

using namespace elsa::sigkit;
using elsa::util::Rng;

TEST(SignalSet, BucketsEvents) {
  SignalSet set(0, 100'000, 10'000, 2);
  EXPECT_EQ(set.samples(), 10u);
  set.add_event(0, 5'000);
  set.add_event(0, 9'999);
  set.add_event(0, 10'000);
  set.add_event(1, 99'999);
  set.add_event(1, 100'000);  // out of range, dropped
  set.add_event(7, 0);        // unknown type, dropped
  EXPECT_FLOAT_EQ(set.signal(0).v[0], 2.0f);
  EXPECT_FLOAT_EQ(set.signal(0).v[1], 1.0f);
  EXPECT_FLOAT_EQ(set.signal(1).v[9], 1.0f);
}

TEST(Signal, SliceAndIndexing) {
  Signal s;
  s.t0_ms = 1000;
  s.dt_ms = 10;
  s.v = {0, 1, 2, 3, 4};
  EXPECT_EQ(s.time_of(2), 1020);
  EXPECT_EQ(s.index_of(1025), 2);
  EXPECT_EQ(s.index_of(0), 0);       // clamped
  EXPECT_EQ(s.index_of(999999), 4);  // clamped
  const auto sub = s.slice(1, 3);
  EXPECT_EQ(sub.t0_ms, 1010);
  ASSERT_EQ(sub.v.size(), 2u);
  EXPECT_FLOAT_EQ(sub.v[0], 1.0f);
}

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<std::complex<double>> v(3);
  EXPECT_THROW(fft(v), std::invalid_argument);
}

TEST(Fft, RoundTripRestoresInput) {
  Rng rng(4);
  std::vector<std::complex<double>> v(256);
  for (auto& c : v) c = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  const auto orig = v;
  fft(v);
  fft(v, /*inverse=*/true);
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_NEAR(v[i].real(), orig[i].real(), 1e-9);
    EXPECT_NEAR(v[i].imag(), orig[i].imag(), 1e-9);
  }
}

TEST(Fft, SineSpectrumPeaksAtFrequencyBin) {
  const std::size_t n = 512;
  std::vector<double> x(n);
  const double k = 16;  // cycles over the window
  for (std::size_t i = 0; i < n; ++i)
    x[i] = std::sin(2.0 * std::numbers::pi * k * static_cast<double>(i) /
                    static_cast<double>(n));
  const auto p = power_spectrum(x);
  std::size_t argmax = 0;
  for (std::size_t i = 1; i < p.size(); ++i)
    if (p[i] > p[argmax]) argmax = i;
  EXPECT_EQ(argmax, 16u);
}

TEST(Fft, AutocorrelationOfPeriodicSignalPeaksAtPeriod) {
  const std::size_t n = 2048, period = 24;
  std::vector<double> x(n, 0.0);
  for (std::size_t i = 0; i < n; i += period) x[i] = 1.0;
  const auto acf = autocorrelation(x, 100);
  EXPECT_NEAR(acf[0], 1.0, 1e-9);
  EXPECT_GT(acf[period], 0.8);
  EXPECT_LT(acf[period / 2], 0.3);
}

TEST(Fft, AutocorrelationOfConstantIsZero) {
  std::vector<double> x(128, 5.0);
  const auto acf = autocorrelation(x, 10);
  for (double v : acf) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Wavelet, MaxLevels) {
  EXPECT_EQ(max_haar_levels(1), 0u);
  EXPECT_EQ(max_haar_levels(8), 3u);
  EXPECT_EQ(max_haar_levels(12), 2u);
}

TEST(Wavelet, PerfectReconstruction) {
  Rng rng(5);
  std::vector<double> x(64);
  for (auto& v : x) v = rng.uniform(-10, 10);
  auto w = x;
  haar_forward(w, 3);
  haar_inverse(w, 3);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(w[i], x[i], 1e-10);
}

TEST(Wavelet, EnergyPreserved) {
  Rng rng(6);
  std::vector<double> x(128);
  double e0 = 0.0;
  for (auto& v : x) {
    v = rng.uniform(-3, 3);
    e0 += v * v;
  }
  auto w = x;
  haar_forward(w, 4);
  double e1 = 0.0;
  for (double v : w) e1 += v * v;
  EXPECT_NEAR(e0, e1, 1e-8);  // orthonormal transform
}

TEST(Wavelet, DenoiseReducesNoiseKeepsTrend) {
  Rng rng(7);
  const std::size_t n = 512;
  std::vector<double> clean(n), noisy(n);
  for (std::size_t i = 0; i < n; ++i) {
    clean[i] = 10.0 + 5.0 * std::sin(2.0 * std::numbers::pi *
                                     static_cast<double>(i) / 128.0);
    noisy[i] = clean[i] + rng.normal(0.0, 1.0);
  }
  const auto denoised = wavelet_denoise(noisy, 4);
  ASSERT_EQ(denoised.size(), n);
  double err_noisy = 0.0, err_denoised = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    err_noisy += (noisy[i] - clean[i]) * (noisy[i] - clean[i]);
    err_denoised += (denoised[i] - clean[i]) * (denoised[i] - clean[i]);
  }
  EXPECT_LT(err_denoised, err_noisy * 0.7);
}

TEST(Wavelet, DenoiseHandlesOddSizes) {
  std::vector<double> x(100, 1.0);
  const auto d = wavelet_denoise(x, 3);
  ASSERT_EQ(d.size(), 100u);
  for (double v : d) EXPECT_NEAR(v, 1.0, 1e-9);
}

TEST(Filters, MovingAverageSmooths) {
  const std::vector<double> x{0, 0, 10, 0, 0};
  const auto y = moving_average(x, 1);
  EXPECT_NEAR(y[2], 10.0 / 3.0, 1e-12);
  EXPECT_NEAR(y[0], 0.0, 1e-12);
  // Mass is preserved under centred averaging of this symmetric pulse.
  EXPECT_NEAR(y[1] + y[2] + y[3], 10.0, 1e-9);
}

TEST(Filters, CausalMedianSuppressesSpike) {
  std::vector<double> x(50, 2.0);
  x[25] = 100.0;
  const auto y = causal_median(x, 5);
  EXPECT_DOUBLE_EQ(y[25], 2.0);  // single spike never becomes the median
  EXPECT_DOUBLE_EQ(y[49], 2.0);
}

TEST(Filters, DownsampleSums) {
  const std::vector<double> x{1, 2, 3, 4, 5};
  const auto y = downsample_sum(x, 2);
  ASSERT_EQ(y.size(), 3u);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
  EXPECT_DOUBLE_EQ(y[2], 5.0);
}

// ---- classifier on the three synthetic classes of paper Fig 1 ----------

std::vector<double> synth_periodic(std::size_t n, std::size_t period,
                                   Rng& rng) {
  std::vector<double> x(n, 0.0);
  for (std::size_t i = 0; i < n; i += period)
    x[std::min(n - 1, i + (rng.below(2)))] = 3.0 + rng.uniform(0, 1);
  return x;
}

std::vector<double> synth_noise(std::size_t n, Rng& rng) {
  std::vector<double> x(n, 0.0);
  for (auto& v : x) v = static_cast<double>(rng.poisson(2.0));
  return x;
}

std::vector<double> synth_silent(std::size_t n, Rng& rng) {
  std::vector<double> x(n, 0.0);
  for (int k = 0; k < 4; ++k) x[rng.below(n)] = 1.0;
  return x;
}

class ClassifierSeeds : public ::testing::TestWithParam<int> {};

TEST_P(ClassifierSeeds, ThreeClassesSeparate) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const auto p = classify_signal(synth_periodic(4096, 30, rng));
  EXPECT_EQ(p.cls, SignalClass::Periodic) << "seed " << GetParam();
  EXPECT_NEAR(static_cast<double>(p.period), 30.0, 2.0);

  const auto nz = classify_signal(synth_noise(4096, rng));
  EXPECT_EQ(nz.cls, SignalClass::Noise);

  const auto s = classify_signal(synth_silent(4096, rng));
  EXPECT_EQ(s.cls, SignalClass::Silent);
  EXPECT_LT(s.occupancy, 0.01);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClassifierSeeds, ::testing::Range(1, 9));

TEST(Classifier, EmptySignalIsSilent) {
  const auto r = classify_signal(std::vector<double>{});
  EXPECT_EQ(r.cls, SignalClass::Silent);
}

TEST(Classifier, ToString) {
  EXPECT_STREQ(to_string(SignalClass::Periodic), "periodic");
  EXPECT_STREQ(to_string(SignalClass::Noise), "noise");
  EXPECT_STREQ(to_string(SignalClass::Silent), "silent");
}

}  // namespace
