// Trace-generator behaviour: determinism, ordering, emission rates,
// fault-syndrome structure, suppression (the silent precursor), and
// ground-truth consistency.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "simlog/generator.hpp"
#include "topology/topology.hpp"

namespace {

using namespace elsa::simlog;
namespace topo = elsa::topo;

EventTemplate silent_tmpl(const std::string& name, Severity sev,
                          EmitterScope scope = EmitterScope::PerNode) {
  EventTemplate t;
  t.name = name;
  t.text = name + " <num>";
  t.severity = sev;
  t.shape = SignalShape::Silent;
  t.emitter = scope;
  return t;
}

struct TestWorld {
  Catalog cat;
  std::uint16_t heartbeat, warn, fail, info_start;

  TestWorld() {
    EventTemplate hb;
    hb.name = "heartbeat";
    hb.text = "health ok <num>";
    hb.shape = SignalShape::Periodic;
    hb.emitter = EmitterScope::PerNodeCard;
    hb.period_s = 60.0;
    hb.jitter_s = 2.0;
    heartbeat = cat.add(hb);
    warn = cat.add(silent_tmpl("warn", Severity::Warning));
    fail = cat.add(silent_tmpl("fail", Severity::Failure));
    info_start = cat.add(silent_tmpl("started", Severity::Info,
                                     EmitterScope::Service));
  }

  FaultType fault(double rate, double lead_s = 60.0) const {
    FaultType f;
    f.name = "crash";
    f.category = "test";
    f.rate_per_day = rate;
    SyndromeStep pre;
    pre.tmpl = warn;
    SyndromeStep term;
    term.tmpl = fail;
    term.offset_s = lead_s;
    f.steps = {pre, term};
    f.terminal_step = 1;
    return f;
  }
};

GeneratorConfig config(double days, std::uint64_t seed = 7) {
  GeneratorConfig cfg;
  cfg.duration_days = days;
  cfg.seed = seed;
  return cfg;
}

TEST(Generator, DeterministicForSameSeed) {
  TestWorld w;
  FaultCatalog fc;
  fc.add(w.fault(3.0));
  TraceGenerator gen(topo::Topology::bluegene(1, 1, 4, 4), w.cat, fc);
  const auto a = gen.generate(config(2.0));
  const auto b = gen.generate(config(2.0));
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].time_ms, b.records[i].time_ms);
    EXPECT_EQ(a.records[i].true_template, b.records[i].true_template);
    EXPECT_EQ(a.records[i].node_id, b.records[i].node_id);
    EXPECT_EQ(a.records[i].message, b.records[i].message);
  }
  ASSERT_EQ(a.faults.size(), b.faults.size());
}

TEST(Generator, DifferentSeedsDiffer) {
  TestWorld w;
  FaultCatalog fc;
  fc.add(w.fault(3.0));
  TraceGenerator gen(topo::Topology::bluegene(1, 1, 4, 4), w.cat, fc);
  const auto a = gen.generate(config(2.0, 7));
  const auto b = gen.generate(config(2.0, 8));
  EXPECT_NE(a.records.size(), b.records.size());
}

TEST(Generator, RecordsSortedAndInRange) {
  TestWorld w;
  FaultCatalog fc;
  fc.add(w.fault(5.0));
  TraceGenerator gen(topo::Topology::bluegene(1, 1, 4, 4), w.cat, fc);
  const auto tr = gen.generate(config(1.0));
  ASSERT_FALSE(tr.records.empty());
  for (std::size_t i = 1; i < tr.records.size(); ++i)
    ASSERT_LE(tr.records[i - 1].time_ms, tr.records[i].time_ms);
  for (const auto& r : tr.records) {
    ASSERT_GE(r.time_ms, tr.t_begin_ms);
    ASSERT_LT(r.time_ms, tr.t_end_ms);
  }
}

TEST(Generator, PeriodicEmissionRate) {
  TestWorld w;
  TraceGenerator gen(topo::Topology::bluegene(1, 1, 4, 4), w.cat,
                     FaultCatalog{});
  const auto tr = gen.generate(config(1.0));
  // 4 node cards, one heartbeat per 60 s each, over one day.
  std::size_t heartbeats = 0;
  for (const auto& r : tr.records)
    if (r.true_template == w.heartbeat) ++heartbeats;
  const double expected = 4.0 * 86400.0 / 60.0;
  EXPECT_NEAR(static_cast<double>(heartbeats), expected, expected * 0.05);
}

TEST(Generator, FaultArrivalRateApproximatesPoisson) {
  TestWorld w;
  FaultCatalog fc;
  fc.add(w.fault(6.0));
  TraceGenerator gen(topo::Topology::bluegene(1, 1, 4, 4), w.cat, fc);
  const auto tr = gen.generate(config(20.0));
  EXPECT_NEAR(static_cast<double>(tr.faults.size()), 120.0, 30.0);
}

TEST(Generator, GroundTruthTerminalRecordExists) {
  TestWorld w;
  FaultCatalog fc;
  fc.add(w.fault(4.0));
  TraceGenerator gen(topo::Topology::bluegene(1, 1, 4, 4), w.cat, fc);
  const auto tr = gen.generate(config(3.0));
  ASSERT_GT(tr.faults.size(), 0u);
  for (const auto& f : tr.faults) {
    EXPECT_EQ(f.terminal_template, w.fail);
    EXPECT_GE(f.fail_time_ms, f.start_time_ms);
    // The terminal record must exist at exactly the recorded time.
    const bool found = std::any_of(
        tr.records.begin(), tr.records.end(), [&](const LogRecord& r) {
          return r.fault_id == f.id && r.true_template == w.fail &&
                 r.time_ms == f.fail_time_ms;
        });
    EXPECT_TRUE(found) << "fault " << f.id;
    // Initiator is always in the affected set.
    EXPECT_NE(std::find(f.affected_nodes.begin(), f.affected_nodes.end(),
                        f.initiating_node),
              f.affected_nodes.end());
  }
}

TEST(Generator, FaultsSortedByFailTime) {
  TestWorld w;
  FaultCatalog fc;
  fc.add(w.fault(6.0));
  TraceGenerator gen(topo::Topology::bluegene(1, 1, 4, 4), w.cat, fc);
  const auto tr = gen.generate(config(5.0));
  for (std::size_t i = 1; i < tr.faults.size(); ++i)
    ASSERT_LE(tr.faults[i - 1].fail_time_ms, tr.faults[i].fail_time_ms);
}

TEST(Generator, BenignChainsProduceNoGroundTruth) {
  TestWorld w;
  FaultCatalog fc;
  FaultType benign;
  benign.name = "restart";
  benign.category = "benign";
  benign.rate_per_day = 10.0;
  benign.benign = true;
  SyndromeStep s;
  s.tmpl = w.info_start;
  s.where = StepWhere::Service;
  benign.steps = {s};
  fc.add(std::move(benign));
  TraceGenerator gen(topo::Topology::bluegene(1, 1, 4, 4), w.cat, fc);
  const auto tr = gen.generate(config(3.0));
  EXPECT_TRUE(tr.faults.empty());
  std::size_t starts = 0;
  for (const auto& r : tr.records)
    if (r.true_template == w.info_start) ++starts;
  EXPECT_GT(starts, 10u);  // chain ran, just not as a failure
}

TEST(Generator, SuppressionSilencesHeartbeat) {
  TestWorld w;
  FaultCatalog fc;
  auto f = w.fault(0.0);
  f.rate_per_day = 2.0;
  f.suppressions = {{w.heartbeat, 0.0, 3600.0, StepWhere::Initiator}};
  fc.add(std::move(f));
  TraceGenerator gen(topo::Topology::bluegene(1, 1, 4, 4), w.cat, fc);
  const auto tr = gen.generate(config(4.0));
  ASSERT_GT(tr.faults.size(), 0u);
  const auto& fault = tr.faults.front();
  // The initiating node's card must log no heartbeat inside the window.
  const std::int32_t card_rep = fault.initiating_node / 4 * 4;
  for (const auto& r : tr.records) {
    if (r.true_template != w.heartbeat || r.node_id != card_rep) continue;
    const bool inside = r.time_ms >= fault.start_time_ms &&
                        r.time_ms < fault.start_time_ms + 3600'000;
    EXPECT_FALSE(inside) << "heartbeat at " << r.time_ms
                         << " inside suppression of fault at "
                         << fault.start_time_ms;
  }
}

TEST(Generator, PropagationStaysInScope) {
  TestWorld w;
  FaultCatalog fc;
  auto f = w.fault(4.0);
  f.propagation = topo::Scope::Midplane;
  f.affected_min = 2;
  f.affected_max = 4;
  fc.add(std::move(f));
  const auto topology = topo::Topology::bluegene(2, 2, 4, 8);
  TraceGenerator gen(topology, w.cat, fc);
  const auto tr = gen.generate(config(4.0));
  ASSERT_GT(tr.faults.size(), 0u);
  for (const auto& fault : tr.faults) {
    ASSERT_GE(fault.affected_nodes.size(), 1u);
    ASSERT_LE(fault.affected_nodes.size(), 4u);
    const auto spread = topology.classify_spread(fault.affected_nodes);
    EXPECT_LE(static_cast<int>(spread),
              static_cast<int>(topo::Scope::Midplane));
    // No duplicates.
    std::set<std::int32_t> uniq(fault.affected_nodes.begin(),
                                fault.affected_nodes.end());
    EXPECT_EQ(uniq.size(), fault.affected_nodes.size());
  }
}

TEST(Generator, RenderTextOffLeavesMessagesEmpty) {
  TestWorld w;
  TraceGenerator gen(topo::Topology::bluegene(1, 1, 2, 2), w.cat,
                     FaultCatalog{});
  auto cfg = config(0.5);
  cfg.render_text = false;
  const auto tr = gen.generate(cfg);
  ASSERT_FALSE(tr.records.empty());
  for (const auto& r : tr.records) ASSERT_TRUE(r.message.empty());
}

TEST(Generator, BackgroundScaleMultipliesVolume) {
  TestWorld w;
  TraceGenerator gen(topo::Topology::bluegene(1, 1, 4, 4), w.cat,
                     FaultCatalog{});
  auto base = config(1.0);
  auto scaled = config(1.0);
  scaled.background_scale = 3.0;
  const auto a = gen.generate(base);
  const auto b = gen.generate(scaled);
  EXPECT_NEAR(static_cast<double>(b.records.size()),
              3.0 * static_cast<double>(a.records.size()),
              0.15 * 3.0 * static_cast<double>(a.records.size()));
}

TEST(Generator, EmittersOfScopes) {
  TestWorld w;
  TraceGenerator gen(topo::Topology::bluegene(2, 2, 4, 8), w.cat,
                     FaultCatalog{});
  EXPECT_EQ(gen.emitters_of(w.cat.at(w.heartbeat)).size(), 16u);  // cards
  EXPECT_EQ(gen.emitters_of(w.cat.at(w.info_start)),
            std::vector<std::int32_t>{-1});
}

}  // namespace
