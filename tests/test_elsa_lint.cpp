// elsa-lint's own test suite: every rule must both fire on a deliberate
// violation (fixture files under tests/lint_fixtures/) and stay quiet on
// clean code — capped by the real gate: zero findings on the live src/
// tree, the same invariant the `elsa_lint_src` ctest gate and CI enforce.
#include "lint_rules.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

using elsa::lint::Finding;
using elsa::lint::lint_file;
using elsa::lint::lint_tree;

std::string read_fixture(const std::string& name) {
  const std::string path = std::string(ELSA_LINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::size_t count_rule(const std::vector<Finding>& fs, const std::string& rule) {
  return static_cast<std::size_t>(
      std::count_if(fs.begin(), fs.end(),
                    [&](const Finding& f) { return f.rule == rule; }));
}

TEST(ElsaLint, BannedCallsFire) {
  const auto fs =
      lint_file("src/util/banned_call.cpp", read_fixture("banned_call.cpp"));
  // lgamma, rand, strtok, localtime, gmtime, plus the rand whose allow()
  // lacks a reason and therefore must not suppress.
  EXPECT_EQ(count_rule(fs, "banned-call"), 6u) << elsa::lint::format(fs);
  EXPECT_EQ(fs.size(), count_rule(fs, "banned-call"));
}

TEST(ElsaLint, RawMutexFires) {
  const auto fs =
      lint_file("src/util/raw_mutex.cpp", read_fixture("raw_mutex.cpp"));
  // std::mutex decl, std::condition_variable decl, and the lock_guard line
  // contributes two tokens (std::lock_guard + std::mutex).
  EXPECT_EQ(count_rule(fs, "raw-mutex"), 4u) << elsa::lint::format(fs);
}

TEST(ElsaLint, RelaxedWithoutCommentFires) {
  const auto fs = lint_file("src/util/relaxed_no_comment.cpp",
                            read_fixture("relaxed_no_comment.cpp"));
  ASSERT_EQ(fs.size(), 1u) << elsa::lint::format(fs);
  EXPECT_EQ(fs[0].rule, "relaxed-comment");
  EXPECT_EQ(fs[0].line, 8u);  // the undocumented fetch_add, not the documented one
}

TEST(ElsaLint, LayeringBreakFires) {
  const auto contents = read_fixture("layering_break.cpp");
  const auto fs = lint_file("src/simlog/layering_break.cpp", contents);
  ASSERT_EQ(fs.size(), 1u) << elsa::lint::format(fs);
  EXPECT_EQ(fs[0].rule, "layering");
  EXPECT_NE(fs[0].message.find("serve"), std::string::npos);

  // The same include set is legal one layer up: serve may consume simlog.
  const auto up = lint_file("src/serve/layering_break.cpp", contents);
  EXPECT_EQ(count_rule(up, "layering"), 0u) << elsa::lint::format(up);

  // signalkit is as confined as simlog.
  const auto sk = lint_file("src/signalkit/layering_break.cpp", contents);
  EXPECT_EQ(count_rule(sk, "layering"), 1u) << elsa::lint::format(sk);
}

TEST(ElsaLint, HeaderHygieneFires) {
  const auto fs =
      lint_file("src/util/bad_header.hpp", read_fixture("bad_header.hpp"));
  EXPECT_EQ(count_rule(fs, "header-pragma"), 1u) << elsa::lint::format(fs);
  EXPECT_EQ(count_rule(fs, "header-using"), 1u) << elsa::lint::format(fs);
}

TEST(ElsaLint, StaticMutableContainerFires) {
  const auto fs =
      lint_file("src/util/static_cache.cpp", read_fixture("static_cache.cpp"));
  // Exactly the two mutable magic-statics; the const table, the static
  // member function, the static int and the non-static local stay quiet.
  EXPECT_EQ(count_rule(fs, "static-mutable"), 2u) << elsa::lint::format(fs);
  EXPECT_EQ(fs.size(), count_rule(fs, "static-mutable"))
      << elsa::lint::format(fs);
}

TEST(ElsaLint, StaticMutableSuppressible) {
  const std::string code =
      "int f(int k) {\n"
      "  // elsa-lint: allow(static-mutable): guarded by caller's lock.\n"
      "  static std::map<int, int> cache;\n"
      "  return cache[k];\n"
      "}\n";
  const auto fs = lint_file("src/util/sup.cpp", code);
  EXPECT_EQ(count_rule(fs, "static-mutable"), 0u) << elsa::lint::format(fs);
}

TEST(ElsaLint, CleanFixtureIsQuiet) {
  const auto fs = lint_file("src/util/clean.hpp", read_fixture("clean.hpp"));
  EXPECT_TRUE(fs.empty()) << elsa::lint::format(fs);
}

TEST(ElsaLint, MemberAndNamespaceQualifiedCallsAreNotBanned) {
  const std::string code =
      "#pragma once\n"
      "double f(Dist d) { return d.rand(); }\n"
      "double g() { return mystats::rand(); }\n"
      "double h(Dist* d) { return d->rand(); }\n"
      "double k(double x) { int s; return ::lgamma_r(x, &s); }\n";
  const auto fs = lint_file("src/util/ok.hpp", code);
  EXPECT_EQ(count_rule(fs, "banned-call"), 0u) << elsa::lint::format(fs);
}

TEST(ElsaLint, GlobalQualifiedBannedCallFires) {
  const auto fs = lint_file("src/util/g.cpp",
                            "double f(double x) { return ::lgamma(x); }\n");
  EXPECT_EQ(count_rule(fs, "banned-call"), 1u) << elsa::lint::format(fs);
}

TEST(ElsaLint, PragmaOnceAfterLeadingCommentIsFine) {
  const std::string code =
      "// A documented header.\n"
      "/* block comment too */\n"
      "#pragma once\n"
      "inline int v() { return 1; }\n";
  const auto fs = lint_file("src/util/doc.hpp", code);
  EXPECT_EQ(count_rule(fs, "header-pragma"), 0u) << elsa::lint::format(fs);
}

TEST(ElsaLint, SuppressionNeedsMatchingRule) {
  // An allow() for a different rule must not silence a banned call.
  const std::string code =
      "// elsa-lint: allow(raw-mutex): wrong rule on purpose.\n"
      "double f(double x) { return std::lgamma(x); }\n";
  const auto fs = lint_file("src/util/wrong.cpp", code);
  EXPECT_EQ(count_rule(fs, "banned-call"), 1u) << elsa::lint::format(fs);
}

TEST(ElsaLint, FormatIsFileLineRule) {
  const auto fs = lint_file("src/util/g.cpp",
                            "double f(double x) { return ::lgamma(x); }\n");
  ASSERT_EQ(fs.size(), 1u);
  const std::string line = elsa::lint::format(fs);
  EXPECT_NE(line.find("src/util/g.cpp:1: [banned-call]"), std::string::npos)
      << line;
}

// The real gate: the live source tree carries zero findings. CI and the
// `elsa_lint_src` ctest entry enforce the same invariant via the binary,
// over the same three trees (the static-mutable bug lived in bench/).
TEST(ElsaLint, SourceTreeIsClean) {
  const auto fs = lint_tree(ELSA_SRC_DIR);
  EXPECT_TRUE(fs.empty()) << elsa::lint::format(fs);
}

TEST(ElsaLint, BenchTreeIsClean) {
  const auto fs = lint_tree(ELSA_BENCH_DIR);
  EXPECT_TRUE(fs.empty()) << elsa::lint::format(fs);
}

TEST(ElsaLint, ToolsTreeIsClean) {
  const auto fs = lint_tree(ELSA_TOOLS_DIR);
  EXPECT_TRUE(fs.empty()) << elsa::lint::format(fs);
}

}  // namespace
