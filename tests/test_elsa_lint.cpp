// elsa-lint's own test suite: every rule must both fire on a deliberate
// violation (fixture files under tests/lint_fixtures/) and stay quiet on
// clean code — capped by the real gate: zero findings on the live src/
// tree, the same invariant the `elsa_lint_src` ctest gate and CI enforce.
#include "lint_rules.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

using elsa::lint::Finding;
using elsa::lint::lint_file;
using elsa::lint::lint_lock_graph;
using elsa::lint::lint_roots;
using elsa::lint::lint_tree;

std::string read_fixture(const std::string& name) {
  const std::string path = std::string(ELSA_LINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::size_t count_rule(const std::vector<Finding>& fs, const std::string& rule) {
  return static_cast<std::size_t>(
      std::count_if(fs.begin(), fs.end(),
                    [&](const Finding& f) { return f.rule == rule; }));
}

TEST(ElsaLint, BannedCallsFire) {
  const auto fs =
      lint_file("src/util/banned_call.cpp", read_fixture("banned_call.cpp"));
  // lgamma, rand, strtok, localtime, gmtime, plus the rand whose allow()
  // lacks a reason and therefore must not suppress.
  EXPECT_EQ(count_rule(fs, "banned-call"), 6u) << elsa::lint::format(fs);
  EXPECT_EQ(fs.size(), count_rule(fs, "banned-call"));
}

TEST(ElsaLint, RawMutexFires) {
  const auto fs =
      lint_file("src/util/raw_mutex.cpp", read_fixture("raw_mutex.cpp"));
  // std::mutex decl, std::condition_variable decl, and the lock_guard line
  // contributes two tokens (std::lock_guard + std::mutex).
  EXPECT_EQ(count_rule(fs, "raw-mutex"), 4u) << elsa::lint::format(fs);
}

TEST(ElsaLint, RelaxedWithoutCommentFires) {
  const auto fs = lint_file("src/util/relaxed_no_comment.cpp",
                            read_fixture("relaxed_no_comment.cpp"));
  ASSERT_EQ(fs.size(), 1u) << elsa::lint::format(fs);
  EXPECT_EQ(fs[0].rule, "relaxed-comment");
  EXPECT_EQ(fs[0].line, 8u);  // the undocumented fetch_add, not the documented one
}

TEST(ElsaLint, LayeringBreakFires) {
  const auto contents = read_fixture("layering_break.cpp");
  const auto fs = lint_file("src/simlog/layering_break.cpp", contents);
  ASSERT_EQ(fs.size(), 1u) << elsa::lint::format(fs);
  EXPECT_EQ(fs[0].rule, "layering");
  EXPECT_NE(fs[0].message.find("serve"), std::string::npos);

  // The same include set is legal one layer up: serve may consume simlog.
  const auto up = lint_file("src/serve/layering_break.cpp", contents);
  EXPECT_EQ(count_rule(up, "layering"), 0u) << elsa::lint::format(up);

  // signalkit is as confined as simlog.
  const auto sk = lint_file("src/signalkit/layering_break.cpp", contents);
  EXPECT_EQ(count_rule(sk, "layering"), 1u) << elsa::lint::format(sk);
}

TEST(ElsaLint, HeaderHygieneFires) {
  const auto fs =
      lint_file("src/util/bad_header.hpp", read_fixture("bad_header.hpp"));
  EXPECT_EQ(count_rule(fs, "header-pragma"), 1u) << elsa::lint::format(fs);
  EXPECT_EQ(count_rule(fs, "header-using"), 1u) << elsa::lint::format(fs);
}

TEST(ElsaLint, StaticMutableContainerFires) {
  const auto fs =
      lint_file("src/util/static_cache.cpp", read_fixture("static_cache.cpp"));
  // Exactly the two mutable magic-statics; the const table, the static
  // member function, the static int and the non-static local stay quiet.
  EXPECT_EQ(count_rule(fs, "static-mutable"), 2u) << elsa::lint::format(fs);
  EXPECT_EQ(fs.size(), count_rule(fs, "static-mutable"))
      << elsa::lint::format(fs);
}

TEST(ElsaLint, StaticMutableSuppressible) {
  const std::string code =
      "int f(int k) {\n"
      "  // elsa-lint: allow(static-mutable): guarded by caller's lock.\n"
      "  static std::map<int, int> cache;\n"
      "  return cache[k];\n"
      "}\n";
  const auto fs = lint_file("src/util/sup.cpp", code);
  EXPECT_EQ(count_rule(fs, "static-mutable"), 0u) << elsa::lint::format(fs);
}

TEST(ElsaLint, CleanFixtureIsQuiet) {
  const auto fs = lint_file("src/util/clean.hpp", read_fixture("clean.hpp"));
  EXPECT_TRUE(fs.empty()) << elsa::lint::format(fs);
}

TEST(ElsaLint, MemberAndNamespaceQualifiedCallsAreNotBanned) {
  const std::string code =
      "#pragma once\n"
      "double f(Dist d) { return d.rand(); }\n"
      "double g() { return mystats::rand(); }\n"
      "double h(Dist* d) { return d->rand(); }\n"
      "double k(double x) { int s; return ::lgamma_r(x, &s); }\n";
  const auto fs = lint_file("src/util/ok.hpp", code);
  EXPECT_EQ(count_rule(fs, "banned-call"), 0u) << elsa::lint::format(fs);
}

TEST(ElsaLint, GlobalQualifiedBannedCallFires) {
  const auto fs = lint_file("src/util/g.cpp",
                            "double f(double x) { return ::lgamma(x); }\n");
  EXPECT_EQ(count_rule(fs, "banned-call"), 1u) << elsa::lint::format(fs);
}

TEST(ElsaLint, PragmaOnceAfterLeadingCommentIsFine) {
  const std::string code =
      "// A documented header.\n"
      "/* block comment too */\n"
      "#pragma once\n"
      "inline int v() { return 1; }\n";
  const auto fs = lint_file("src/util/doc.hpp", code);
  EXPECT_EQ(count_rule(fs, "header-pragma"), 0u) << elsa::lint::format(fs);
}

TEST(ElsaLint, SuppressionNeedsMatchingRule) {
  // An allow() for a different rule must not silence a banned call.
  const std::string code =
      "// elsa-lint: allow(raw-mutex): wrong rule on purpose.\n"
      "double f(double x) { return std::lgamma(x); }\n";
  const auto fs = lint_file("src/util/wrong.cpp", code);
  EXPECT_EQ(count_rule(fs, "banned-call"), 1u) << elsa::lint::format(fs);
}

TEST(ElsaLint, FormatIsFileLineRule) {
  const auto fs = lint_file("src/util/g.cpp",
                            "double f(double x) { return ::lgamma(x); }\n");
  ASSERT_EQ(fs.size(), 1u);
  const std::string line = elsa::lint::format(fs);
  EXPECT_NE(line.find("src/util/g.cpp:1: [banned-call]"), std::string::npos)
      << line;
}

// ---------------------------------------------------------------------------
// Lock-graph rules (fixtures under lint_fixtures/lockgraph/)

/// Run the whole-project lock pass over a single lockgraph fixture.
std::vector<Finding> lock_fixture(const std::string& name) {
  return lint_lock_graph({{name, read_fixture("lockgraph/" + name)}});
}

std::size_t count_substr(const std::string& s, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t p = s.find(needle); p != std::string::npos;
       p = s.find(needle, p + needle.size()))
    ++n;
  return n;
}

TEST(ElsaLintLockGraph, CleanHierarchyIsQuiet) {
  const auto fs = lock_fixture("clean_hierarchy.cpp");
  EXPECT_TRUE(fs.empty()) << elsa::lint::format(fs);
}

TEST(ElsaLintLockGraph, TwoLockCycleReportsFullPath) {
  const auto fs = lock_fixture("cycle2.cpp");
  ASSERT_EQ(count_rule(fs, "lock-cycle"), 1u) << elsa::lint::format(fs);
  const std::string& m = fs[0].message;
  // Full path, both locks named, and a file:line site for every edge.
  EXPECT_NE(m.find("PairHolder::a_ -> PairHolder::b_"), std::string::npos) << m;
  EXPECT_NE(m.find("-> PairHolder::a_ (cycle2.cpp:"), std::string::npos) << m;
  EXPECT_EQ(count_substr(m, "(cycle2.cpp:"), 2u) << m;
}

TEST(ElsaLintLockGraph, ThreeLockCycleThroughAnnotatedHelper) {
  const auto fs = lock_fixture("cycle3.cpp");
  ASSERT_EQ(count_rule(fs, "lock-cycle"), 1u) << elsa::lint::format(fs);
  const std::string& m = fs[0].message;
  // The b_ -> c_ edge exists only via helper_locks_c()'s ELSA_EXCLUDES.
  EXPECT_NE(m.find("Trio::a_ -> Trio::b_"), std::string::npos) << m;
  EXPECT_NE(m.find("-> Trio::c_"), std::string::npos) << m;
  EXPECT_EQ(count_substr(m, "(cycle3.cpp:"), 3u) << m;
}

TEST(ElsaLintLockGraph, CrossFileCycleFires) {
  // The two inverted orders live in different TUs; only the whole-project
  // union can see the cycle.
  const std::string hdr =
      "#pragma once\n"
      "class CrossFile {\n"
      "  void ab();\n"
      "  void ba();\n"
      "  util::Mutex a_;\n"
      "  util::Mutex b_;\n"
      "};\n";
  const std::string f1 =
      "void CrossFile::ab() {\n"
      "  util::MutexLock la(a_);\n"
      "  util::MutexLock lb(b_);\n"
      "}\n";
  const std::string f2 =
      "void CrossFile::ba() {\n"
      "  util::MutexLock lb(b_);\n"
      "  util::MutexLock la(a_);\n"
      "}\n";
  const auto fs = lint_lock_graph(
      {{"x/cf.hpp", hdr}, {"x/cf1.cpp", f1}, {"x/cf2.cpp", f2}});
  ASSERT_EQ(count_rule(fs, "lock-cycle"), 1u) << elsa::lint::format(fs);
  EXPECT_NE(fs[0].message.find("cf1.cpp:"), std::string::npos)
      << fs[0].message;
  EXPECT_NE(fs[0].message.find("cf2.cpp:"), std::string::npos)
      << fs[0].message;
}

TEST(ElsaLintLockGraph, CvWaitWithSecondLockFires) {
  const auto fs = lock_fixture("cv_second_lock.cpp");
  // wait_badly() fires; wait_fine(), holding only the waited mutex, stays
  // quiet.
  ASSERT_EQ(count_rule(fs, "cv-wait-extra-lock"), 1u) << elsa::lint::format(fs);
  EXPECT_NE(fs[0].message.find("TwoLockWaiter::a_"), std::string::npos)
      << fs[0].message;
  EXPECT_NE(fs[0].message.find("TwoLockWaiter::b_"), std::string::npos)
      << fs[0].message;
}

TEST(ElsaLintLockGraph, BlockingCallsUnderLockFire) {
  const auto fs = lock_fixture("blocking_under_lock.cpp");
  // The locked ring pop and the locked join; drain_fine() pops before
  // locking and stays quiet.
  EXPECT_EQ(count_rule(fs, "blocking-under-lock"), 2u)
      << elsa::lint::format(fs);
  EXPECT_EQ(fs.size(), 2u) << elsa::lint::format(fs);
}

TEST(ElsaLintLockGraph, ReasonedSuppressionSilencesCycle) {
  const auto fs = lock_fixture("suppressed_cycle.cpp");
  EXPECT_EQ(count_rule(fs, "lock-cycle"), 0u) << elsa::lint::format(fs);
}

TEST(ElsaLintLockGraph, FixtureTreesAreExemptFromWalkers) {
  // tests/ holds fixtures with deliberate cycles; the directory walkers
  // must skip every lint_fixtures component, so the tests tree stays clean.
  const auto fs = lint_roots({ELSA_TESTS_DIR});
  EXPECT_EQ(count_rule(fs, "lock-cycle"), 0u) << elsa::lint::format(fs);
}

// ---------------------------------------------------------------------------
// Atomics-protocol rules (fixtures under lint_fixtures/atomics/)

/// Run the whole-project atomics pass over a single fixture, mounted at a
/// src-module path (only src modules own atomic protocols).
std::vector<Finding> atomics_fixture(const std::string& name) {
  return elsa::lint::lint_atomics(
      {{"src/util/" + name, read_fixture("atomics/" + name)}});
}

TEST(ElsaLintAtomics, CleanFixtureIsQuiet) {
  const auto fs = atomics_fixture("clean.hpp");
  EXPECT_TRUE(fs.empty()) << elsa::lint::format(fs);
}

TEST(ElsaLintAtomics, UndeclaredAndUnknownProtocolFire) {
  const auto fs = atomics_fixture("undeclared.hpp");
  // The bare field and the made-up protocol; the allow()ed field is quiet.
  ASSERT_EQ(count_rule(fs, "atomic-undeclared"), 2u) << elsa::lint::format(fs);
  EXPECT_EQ(fs.size(), 2u) << elsa::lint::format(fs);
  EXPECT_NE(fs[0].message.find("Undeclared::bare_"), std::string::npos)
      << fs[0].message;
  EXPECT_NE(fs[1].message.find("totally-made-up"), std::string::npos)
      << fs[1].message;
}

TEST(ElsaLintAtomics, UnpairedReleaseAndAcquireFire) {
  const auto fs = atomics_fixture("unpaired.cpp");
  ASSERT_EQ(count_rule(fs, "acquire-release-unpaired"), 2u)
      << elsa::lint::format(fs);
  EXPECT_EQ(fs.size(), 2u) << elsa::lint::format(fs);
  // One finding per lonely side, at the offending access site.
  const std::string all = elsa::lint::format(fs);
  EXPECT_NE(all.find("lonely_pub_"), std::string::npos) << all;
  EXPECT_NE(all.find("lonely_sub_"), std::string::npos) << all;
}

TEST(ElsaLintAtomics, PairingFusesAcrossFiles) {
  // Release side and acquire side live in different TUs; only the
  // project-wide union proves the pairing. The header declares the field.
  const std::string hdr =
      "#pragma once\n"
      "#include <atomic>\n"
      "class Handoff {\n"
      " public:\n"
      "  void pub();\n"
      "  bool sub();\n"
      " private:\n"
      "  // elsa-atomic: release-acquire-flag\n"
      "  std::atomic<bool> ready_{false};\n"
      "};\n";
  const std::string pub_tu =
      "#include \"handoff.hpp\"\n"
      "void Handoff::pub() { ready_.store(true, std::memory_order_release); }\n";
  const std::string sub_tu =
      "#include \"handoff.hpp\"\n"
      "bool Handoff::sub() { return ready_.load(std::memory_order_acquire); }\n";

  const auto whole = elsa::lint::lint_atomics({{"src/util/handoff.hpp", hdr},
                                               {"src/util/pub.cpp", pub_tu},
                                               {"src/util/sub.cpp", sub_tu}});
  EXPECT_TRUE(whole.empty()) << elsa::lint::format(whole);

  // Drop the consumer and the release store becomes unpaired.
  const auto half = elsa::lint::lint_atomics(
      {{"src/util/handoff.hpp", hdr}, {"src/util/pub.cpp", pub_tu}});
  ASSERT_EQ(count_rule(half, "acquire-release-unpaired"), 1u)
      << elsa::lint::format(half);
  EXPECT_EQ(half[0].file, "src/util/pub.cpp");
}

TEST(ElsaLintAtomics, WeakRmwFires) {
  const auto fs = atomics_fixture("weak_rmw.cpp");
  ASSERT_EQ(count_rule(fs, "rmw-order-too-weak"), 1u) << elsa::lint::format(fs);
  EXPECT_EQ(fs.size(), 1u) << elsa::lint::format(fs);
  EXPECT_NE(fs[0].message.find("WeakRmw::flag_"), std::string::npos)
      << fs[0].message;
  EXPECT_NE(fs[0].message.find("release-acquire-flag"), std::string::npos)
      << fs[0].message;
}

TEST(ElsaLintAtomics, BareFenceFires) {
  const auto fs = atomics_fixture("fence.cpp");
  ASSERT_EQ(count_rule(fs, "fence-undocumented"), 1u) << elsa::lint::format(fs);
  EXPECT_EQ(fs.size(), 1u) << elsa::lint::format(fs);
}

TEST(ElsaLintAtomics, NonModuleFilesDoNotOwnProtocols) {
  // The same violating fixture under a tests/ path is out of scope: bench,
  // tests and tools consume protocols, they do not declare them.
  const auto fs = elsa::lint::lint_atomics(
      {{"tests/undeclared.hpp", read_fixture("atomics/undeclared.hpp")}});
  EXPECT_TRUE(fs.empty()) << elsa::lint::format(fs);
}

TEST(ElsaLintAtomics, RegistryCoversTheLiveTree) {
  // The pass must not be vacuously clean on src/: the registry built from
  // the real files carries the known fields with their declared protocols,
  // fused by qualified id.
  std::vector<std::pair<std::string, std::string>> files;
  for (const char* rel : {"/serve/spsc_ring.hpp", "/advisor/spsc.hpp",
                          "/serve/metrics.hpp", "/serve/sharded_engine.hpp",
                          "/serve/model_handle.hpp", "/mining/service.hpp"}) {
    std::ifstream in(std::string(ELSA_SRC_DIR) + rel, std::ios::binary);
    ASSERT_TRUE(in.good()) << rel;
    std::ostringstream ss;
    ss << in.rdbuf();
    files.emplace_back("src" + std::string(rel), ss.str());
  }
  const auto reg = elsa::lint::atomic_registry(files);
  ASSERT_GE(reg.size(), 12u);
  const auto protocol_of = [&reg](const std::string& id) -> std::string {
    for (const auto& f : reg)
      if (f.id == id) return f.protocol;
    return "<absent>";
  };
  EXPECT_EQ(protocol_of("elsa::serve::SpscRing::Slot::seq"), "seqlock");
  EXPECT_EQ(protocol_of("elsa::serve::SpscRing::tail_"), "monotonic-relaxed");
  EXPECT_EQ(protocol_of("elsa::serve::SpscRing::closed_"),
            "release-acquire-flag");
  EXPECT_EQ(protocol_of("elsa::advisor::SpscRing::head_"), "spsc-seq");
  EXPECT_EQ(protocol_of("elsa::serve::StripedCounter::Cell::v"),
            "striped-relaxed-counter");
  EXPECT_EQ(protocol_of("elsa::serve::ShardedEngine::Shard::alive"),
            "release-acquire-flag");
  EXPECT_EQ(protocol_of("elsa::serve::RcuHub::Slot::state"), "rcu-handle");
  EXPECT_EQ(protocol_of("elsa::serve::RcuHub::current_"), "rcu-handle");
  EXPECT_EQ(protocol_of("elsa::serve::RcuHub::swaps_"), "monotonic-relaxed");
  EXPECT_EQ(protocol_of("elsa::mining::MinerService::stop_"),
            "release-acquire-flag");
  // Every live field is declared — an empty protocol would mean an
  // atomic-undeclared finding in the gate.
  for (const auto& f : reg) EXPECT_FALSE(f.protocol.empty()) << f.id;
}

// ---------------------------------------------------------------------------
// Effect-inference rules (fixtures under lint_fixtures/effects/)

/// Run the whole-project effect pass over a single fixture, mounted at a
/// src-module path (annotations live on src/ hot paths).
std::vector<Finding> effects_fixture(const std::string& name) {
  return elsa::lint::lint_effects(
      {{"src/util/" + name, read_fixture("effects/" + name)}});
}

TEST(ElsaLintEffects, CleanFixtureIsQuiet) {
  const auto fs = effects_fixture("clean.cpp");
  EXPECT_TRUE(fs.empty()) << elsa::lint::format(fs);
}

TEST(ElsaLintEffects, AllocationFiresAndReasonedAllowSuppresses) {
  const auto fs = effects_fixture("allocates.cpp");
  // hot() fires; hot_allowed()'s identical growth call is reasoned away.
  ASSERT_EQ(count_rule(fs, "realtime-allocates"), 1u) << elsa::lint::format(fs);
  EXPECT_EQ(fs.size(), 1u) << elsa::lint::format(fs);
  EXPECT_NE(fs[0].message.find("Allocates::hot"), std::string::npos)
      << fs[0].message;
  EXPECT_NE(fs[0].message.find("push_back"), std::string::npos)
      << fs[0].message;
}

TEST(ElsaLintEffects, LockAcquisitionFires) {
  const auto fs = effects_fixture("locks.cpp");
  // The MutexLock in hot() and the bare .lock() in hot2().
  EXPECT_EQ(count_rule(fs, "realtime-locks"), 2u) << elsa::lint::format(fs);
  EXPECT_EQ(fs.size(), 2u) << elsa::lint::format(fs);
}

TEST(ElsaLintEffects, BlockingAndIoFire) {
  const auto fs = effects_fixture("blocks.cpp");
  // The sleep in hot() and the stream write in hot2().
  EXPECT_EQ(count_rule(fs, "realtime-blocks"), 2u) << elsa::lint::format(fs);
  EXPECT_EQ(fs.size(), 2u) << elsa::lint::format(fs);
}

TEST(ElsaLintEffects, WallClockFires) {
  const auto fs = effects_fixture("wall_clock.cpp");
  // Clock::now() in stamp() and gettimeofday() in stamp2().
  EXPECT_EQ(count_rule(fs, "det-wall-clock"), 2u) << elsa::lint::format(fs);
  EXPECT_EQ(fs.size(), 2u) << elsa::lint::format(fs);
}

TEST(ElsaLintEffects, RandomDeviceFires) {
  const auto fs = effects_fixture("random_device.cpp");
  ASSERT_EQ(count_rule(fs, "det-random-device"), 1u) << elsa::lint::format(fs);
  EXPECT_EQ(fs.size(), 1u) << elsa::lint::format(fs);
}

TEST(ElsaLintEffects, UnorderedAndPointerKeyedIterationFire) {
  const auto fs = effects_fixture("unordered_escape.cpp");
  ASSERT_EQ(count_rule(fs, "det-unordered-escape"), 2u)
      << elsa::lint::format(fs);
  const std::string all = elsa::lint::format(fs);
  EXPECT_NE(all.find("unordered container `counts_`"), std::string::npos)
      << all;
  EXPECT_NE(all.find("pointer-keyed container `by_ptr_`"), std::string::npos)
      << all;
}

TEST(ElsaLintEffects, PropagationCrossesFiles) {
  // The helper allocates legally; the violation exists only through the
  // elsa-realtime caller in the other file, and the finding is anchored at
  // the effect site with the call path named.
  const auto fs = elsa::lint::lint_effects(
      {{"src/util/cross_helper.cpp", read_fixture("effects/cross_helper.cpp")},
       {"src/util/cross_caller.cpp",
        read_fixture("effects/cross_caller.cpp")}});
  ASSERT_EQ(count_rule(fs, "realtime-allocates"), 1u) << elsa::lint::format(fs);
  EXPECT_EQ(fs[0].file, "src/util/cross_helper.cpp");
  EXPECT_NE(fs[0].message.find("hot_entry"), std::string::npos)
      << fs[0].message;
  EXPECT_NE(fs[0].message.find("via hot_entry -> remember"), std::string::npos)
      << fs[0].message;

  // Without the caller, the helper alone is clean: no annotated root
  // reaches the allocation.
  const auto alone = elsa::lint::lint_effects({{"src/util/cross_helper.cpp",
                                               read_fixture(
                                                   "effects/cross_helper.cpp")}});
  EXPECT_TRUE(alone.empty()) << elsa::lint::format(alone);
}

TEST(ElsaLintEffects, AllowWithoutReasonDoesNotSuppress) {
  // The negative control: allow(realtime-allocates) with no ": <reason>"
  // trailer must not silence the finding.
  const std::string code =
      "#include <vector>\n"
      "class NoReason {\n"
      " public:\n"
      "  // elsa-realtime: contract.\n"
      "  void hot(int v) {\n"
      "    // elsa-lint: allow(realtime-allocates)\n"
      "    buf_.push_back(v);\n"
      "  }\n"
      " private:\n"
      "  std::vector<int> buf_;\n"
      "};\n";
  const auto fs = elsa::lint::lint_effects({{"src/util/noreason.cpp", code}});
  EXPECT_EQ(count_rule(fs, "realtime-allocates"), 1u) << elsa::lint::format(fs);
}

TEST(ElsaLintEffects, RegistryCoversTheLiveTree) {
  // The pin test: the effect pass must not go vacuous on src/. The
  // registry built from the real files names the annotated hot and
  // deterministic paths with their contracts.
  std::vector<std::pair<std::string, std::string>> files;
  std::map<std::string, std::string> raw;
  for (const char* rel :
       {"/serve/spsc_ring.hpp", "/serve/router.hpp", "/serve/model_handle.hpp",
        "/serve/metrics.hpp", "/advisor/spsc.hpp", "/advisor/service.cpp",
        "/advisor/advisor.cpp", "/elsa/online.cpp", "/elsa/model_io.cpp",
        "/mining/miner.cpp", "/mining/service.cpp"}) {
    std::ifstream in(std::string(ELSA_SRC_DIR) + rel, std::ios::binary);
    ASSERT_TRUE(in.good()) << rel;
    std::ostringstream ss;
    ss << in.rdbuf();
    raw["src" + std::string(rel)] = ss.str();
    files.emplace_back("src" + std::string(rel), raw["src" + std::string(rel)]);
  }
  const auto reg = elsa::lint::effect_registry(files);
  ASSERT_GE(reg.size(), 8u);
  const auto contract_of = [&reg](const std::string& id) -> std::string {
    for (const auto& f : reg)
      if (f.id == id) return f.contract;
    return "<absent>";
  };
  EXPECT_EQ(contract_of("elsa::serve::SpscRing::push"), "realtime");
  EXPECT_EQ(contract_of("elsa::serve::SpscRing::pop_n"), "realtime");
  EXPECT_EQ(contract_of("elsa::serve::RcuHub::pin"), "realtime");
  EXPECT_EQ(contract_of("elsa::serve::RcuHub::unpin"), "realtime");
  EXPECT_EQ(contract_of("elsa::serve::ShardRouter::shard_of"),
            "realtime+deterministic");
  EXPECT_EQ(contract_of("elsa::serve::StripedCounter::add"), "realtime");
  EXPECT_EQ(contract_of("elsa::advisor::AdvisorService::publish"), "realtime");
  EXPECT_EQ(contract_of("elsa::core::OnlineEngine::feed"),
            "realtime+deterministic");
  EXPECT_EQ(contract_of("elsa::core::model_digest"), "deterministic");
  EXPECT_EQ(contract_of("elsa::advisor::CheckpointAdvisor::on_prediction"),
            "deterministic");
  EXPECT_EQ(contract_of("elsa::mining::OnlineMiner::build_model"),
            "deterministic");
  EXPECT_EQ(contract_of("elsa::mining::MinerService::fold_below"),
            "deterministic");

  // Spot check the pin really pins: stripping the elsa-realtime markers
  // from the ring header removes its entries — i.e. deleting a live
  // annotation makes the expectations above fail.
  std::string stripped = raw["src/serve/spsc_ring.hpp"];
  for (std::size_t p = stripped.find("elsa-realtime");
       p != std::string::npos; p = stripped.find("elsa-realtime", p))
    stripped.replace(p, 13, "elsa-disabled");
  std::vector<std::pair<std::string, std::string>> mutated;
  for (const auto& [path, contents] : raw)
    mutated.emplace_back(path,
                         path == "src/serve/spsc_ring.hpp" ? stripped
                                                           : contents);
  const auto reg2 = elsa::lint::effect_registry(mutated);
  for (const auto& f : reg2)
    EXPECT_NE(f.id, "elsa::serve::SpscRing::push") << "annotation survived";
}

// ---------------------------------------------------------------------------
// The rule table (--list-rules) is pinned: every rule id the passes can
// emit appears exactly once, sorted, with a fixture that exists on disk.

TEST(ElsaLintRules, RuleTableIsPinnedAndFixturesExist) {
  const auto& rules = elsa::lint::rule_table();
  ASSERT_EQ(rules.size(), 20u);
  EXPECT_TRUE(std::is_sorted(rules.begin(), rules.end(),
                             [](const elsa::lint::RuleInfo& a,
                                const elsa::lint::RuleInfo& b) {
                               return a.id < b.id;
                             }));
  for (const auto& r : rules) {
    EXPECT_FALSE(r.description.empty()) << r.id;
    ASSERT_EQ(r.fixture.rfind("tests/lint_fixtures/", 0), 0u) << r.fixture;
    // ELSA_TESTS_DIR is .../tests — substitute it for the leading "tests".
    std::ifstream in(std::string(ELSA_TESTS_DIR) + r.fixture.substr(5),
                     std::ios::binary);
    EXPECT_TRUE(in.good()) << "missing fixture " << r.fixture;
  }
  const auto has = [&rules](const std::string& id) {
    for (const auto& r : rules)
      if (r.id == id) return true;
    return false;
  };
  for (const char* id :
       {"realtime-allocates", "realtime-locks", "realtime-blocks",
        "det-wall-clock", "det-random-device", "det-unordered-escape",
        "banned-call", "lock-cycle", "atomic-undeclared"})
    EXPECT_TRUE(has(id)) << id;
  // The rendered table (what --list-rules prints) carries every id.
  const std::string table = elsa::lint::format_rule_table();
  for (const auto& r : rules)
    EXPECT_NE(table.find(r.id), std::string::npos) << r.id;
}

TEST(ElsaLint, LintRootsReportsInternalErrors) {
  std::vector<std::string> errors;
  const auto fs =
      lint_roots({"definitely/not/a/directory/anywhere"}, &errors);
  EXPECT_TRUE(fs.empty()) << elsa::lint::format(fs);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].find("not a directory"), std::string::npos) << errors[0];
}

// ---------------------------------------------------------------------------
// GitHub annotation output

TEST(ElsaLint, GithubFormatEmitsWorkflowCommands) {
  const std::vector<Finding> fs = {
      {"src/serve/ring.hpp", 42, "lock-cycle", "A -> B"}};
  const std::string out = elsa::lint::format_github(fs);
  EXPECT_EQ(out,
            "::error file=src/serve/ring.hpp,line=42,"
            "title=elsa-lint lock-cycle::[lock-cycle] A -> B\n");
}

TEST(ElsaLint, GithubFormatEscapesSeparators) {
  const std::vector<Finding> fs = {
      {"src/a,b:c.cpp", 7, "banned-call", "50% bad\nnext"}};
  const std::string out = elsa::lint::format_github(fs);
  EXPECT_NE(out.find("file=src/a%2Cb%3Ac.cpp,line=7"), std::string::npos)
      << out;
  EXPECT_NE(out.find("50%25 bad%0Anext"), std::string::npos) << out;
}

// ---------------------------------------------------------------------------
// The real gate: the live trees carry zero findings. CI and the
// `elsa_lint_src` ctest entry enforce the same invariant via the binary,
// over the same five trees (src, bench, tools, tests, examples).

TEST(ElsaLint, SourceTreeIsClean) {
  const auto fs = lint_tree(ELSA_SRC_DIR);
  EXPECT_TRUE(fs.empty()) << elsa::lint::format(fs);
}

TEST(ElsaLint, BenchTreeIsClean) {
  const auto fs = lint_tree(ELSA_BENCH_DIR);
  EXPECT_TRUE(fs.empty()) << elsa::lint::format(fs);
}

TEST(ElsaLint, ToolsTreeIsClean) {
  const auto fs = lint_tree(ELSA_TOOLS_DIR);
  EXPECT_TRUE(fs.empty()) << elsa::lint::format(fs);
}

TEST(ElsaLint, TestsTreeIsClean) {
  const auto fs = lint_tree(ELSA_TESTS_DIR);
  EXPECT_TRUE(fs.empty()) << elsa::lint::format(fs);
}

TEST(ElsaLint, ExamplesTreeIsClean) {
  const auto fs = lint_tree(ELSA_EXAMPLES_DIR);
  EXPECT_TRUE(fs.empty()) << elsa::lint::format(fs);
}

// End-to-end: the union of all five trees through the full gate (per-file
// rules plus one cross-root lock pass) is clean — exactly what the
// elsa_lint binary enforces in CI.
TEST(ElsaLint, AllRootsAreCleanThroughFullGate) {
  const auto fs = lint_roots({ELSA_SRC_DIR, ELSA_BENCH_DIR, ELSA_TOOLS_DIR,
                              ELSA_TESTS_DIR, ELSA_EXAMPLES_DIR});
  EXPECT_TRUE(fs.empty()) << elsa::lint::format(fs);
}

}  // namespace
