// Association-rule baseline tests: window semantics, gates, and the
// structural blindnesses the paper attributes to this method class.
#include <gtest/gtest.h>

#include "elsa/dm_miner.hpp"

namespace {

using namespace elsa::core;

constexpr std::int64_t kDt = 10'000;

TEST(DmMiner, FindsWindowedRule) {
  // Antecedent template 0 at t, failure template 1 at t + 60 s.
  std::vector<std::vector<std::int64_t>> occ(2);
  for (int i = 0; i < 10; ++i) {
    occ[0].push_back(i * 3'600'000);
    occ[1].push_back(i * 3'600'000 + 60'000);
  }
  const std::vector<bool> failure{false, true};
  DmConfig cfg;
  cfg.min_support = 4;
  cfg.min_confidence = 0.5;
  DmStats stats;
  const auto rules = mine_assoc_rules(occ, failure, kDt, 1.0, cfg, &stats);
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_EQ(rules[0].items[0].signal, 0u);
  EXPECT_EQ(rules[0].items[1].signal, 1u);
  EXPECT_EQ(rules[0].items[1].delay, 6);  // 60 s in 10 s samples
  EXPECT_EQ(rules[0].support, 10);
  EXPECT_DOUBLE_EQ(rules[0].confidence, 1.0);
  EXPECT_EQ(stats.rules, 1u);
}

TEST(DmMiner, FixedWindowMissesLongCascades) {
  // The node-card pathology: 50-minute lead, far beyond the 4-min window.
  std::vector<std::vector<std::int64_t>> occ(2);
  for (int i = 0; i < 10; ++i) {
    occ[0].push_back(i * 7'200'000);
    occ[1].push_back(i * 7'200'000 + 3'000'000);  // +50 min
  }
  const std::vector<bool> failure{false, true};
  const auto rules = mine_assoc_rules(occ, failure, kDt, 1.0, DmConfig{});
  EXPECT_TRUE(rules.empty());
}

TEST(DmMiner, LowConfidenceRejected) {
  // Antecedent mostly fires without the failure.
  std::vector<std::vector<std::int64_t>> occ(2);
  for (int i = 0; i < 100; ++i) occ[0].push_back(i * 600'000);
  for (int i = 0; i < 5; ++i) occ[1].push_back(i * 600'000 + 30'000);
  const std::vector<bool> failure{false, true};
  DmConfig cfg;
  cfg.min_confidence = 0.5;
  EXPECT_TRUE(mine_assoc_rules(occ, failure, kDt, 1.0, cfg).empty());
  cfg.min_confidence = 0.02;
  EXPECT_EQ(mine_assoc_rules(occ, failure, kDt, 1.0, cfg).size(), 1u);
}

TEST(DmMiner, SupportGate) {
  std::vector<std::vector<std::int64_t>> occ(2);
  for (int i = 0; i < 3; ++i) {
    occ[0].push_back(i * 600'000);
    occ[1].push_back(i * 600'000 + 10'000);
  }
  const std::vector<bool> failure{false, true};
  DmConfig cfg;
  cfg.min_support = 4;
  EXPECT_TRUE(mine_assoc_rules(occ, failure, kDt, 1.0, cfg).empty());
  cfg.min_support = 3;
  EXPECT_EQ(mine_assoc_rules(occ, failure, kDt, 1.0, cfg).size(), 1u);
}

TEST(DmMiner, OnlyFailureTemplatesAreConsequents) {
  std::vector<std::vector<std::int64_t>> occ(2);
  for (int i = 0; i < 10; ++i) {
    occ[0].push_back(i * 600'000);
    occ[1].push_back(i * 600'000 + 10'000);
  }
  const std::vector<bool> failure{false, false};
  EXPECT_TRUE(mine_assoc_rules(occ, failure, kDt, 1.0, DmConfig{}).empty());
}

TEST(DmMiner, ChattyAntecedentSkipped) {
  std::vector<std::vector<std::int64_t>> occ(2);
  for (int i = 0; i < 5000; ++i) occ[0].push_back(i * 17'000);
  for (int i = 0; i < 50; ++i) occ[1].push_back(i * 1'700'000 + 10'000);
  const std::vector<bool> failure{false, true};
  DmConfig cfg;
  cfg.min_confidence = 0.0;
  cfg.max_antecedent_per_day = 1000.0;  // 5000/day antecedent skipped
  DmStats stats;
  EXPECT_TRUE(mine_assoc_rules(occ, failure, kDt, 1.0, cfg, &stats).empty());
  EXPECT_EQ(stats.pairs_scanned, 0u);
}

TEST(DmMiner, EachAntecedentCountedOnce) {
  // One antecedent followed by TWO failures in window: support counts the
  // antecedent once (first failure).
  std::vector<std::vector<std::int64_t>> occ(2);
  for (int i = 0; i < 6; ++i) {
    occ[0].push_back(i * 600'000);
    occ[1].push_back(i * 600'000 + 10'000);
    occ[1].push_back(i * 600'000 + 20'000);
  }
  const std::vector<bool> failure{false, true};
  DmConfig cfg;
  const auto rules = mine_assoc_rules(occ, failure, kDt, 1.0, cfg);
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_EQ(rules[0].support, 6);
  EXPECT_EQ(rules[0].items[1].delay, 1);  // first failure at +10 s
}

}  // namespace
