// Online outlier-detector tests: the counting sliding median (property
// checked against the generic structure), spike/occurrence/dropout
// detection, the replacement strategy under sustained bursts (paper Fig 3),
// and episode debouncing.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "elsa/outlier.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace {

using namespace elsa::core;
using elsa::util::Rng;
using elsa::util::SlidingMedian;

class CountingMedianProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CountingMedianProperty, MatchesLowerMedianReference) {
  const std::size_t window = GetParam();
  Rng rng(window + 555);
  CountingSlidingMedian fast(window);
  std::vector<double> xs;
  for (int i = 0; i < 1500; ++i) {
    const double x = std::floor(rng.uniform(0.0, 30.0));
    xs.push_back(x);
    fast.push(x);
    // Reference: the lower median (order statistic at (n-1)/2) over the
    // trailing window — the convention CountingSlidingMedian implements.
    const std::size_t lo = xs.size() >= window ? xs.size() - window : 0;
    std::vector<double> w(xs.begin() + static_cast<std::ptrdiff_t>(lo),
                          xs.end());
    std::sort(w.begin(), w.end());
    ASSERT_DOUBLE_EQ(fast.median(), w[(w.size() - 1) / 2]) << "step " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Windows, CountingMedianProperty,
                         ::testing::Values(1, 3, 8, 63, 512));

TEST(CountingMedian, ClampsLargeValues) {
  CountingSlidingMedian m(3);
  m.push(1e9);
  m.push(1e9);
  m.push(1e9);
  EXPECT_DOUBLE_EQ(m.median(), CountingSlidingMedian::kMaxValue);
  m.push(-5.0);
  EXPECT_GE(m.median(), 0.0);
}

SignalProfile silent_profile() {
  SignalProfile p;
  p.cls = elsa::sigkit::SignalClass::Silent;
  p.spike_delta = 0.5;
  return p;
}

SignalProfile noise_profile(double median, double delta) {
  SignalProfile p;
  p.cls = elsa::sigkit::SignalClass::Noise;
  p.median = median;
  p.spike_delta = delta;
  return p;
}

SignalProfile periodic_profile(std::size_t period, double mean) {
  SignalProfile p;
  p.cls = elsa::sigkit::SignalClass::Periodic;
  p.median = mean;
  p.mean = mean;
  p.period = period;
  p.spike_delta = 4.0;
  p.dropout_window = 3 * period;
  p.dropout_min_count = 0.25 * mean * static_cast<double>(p.dropout_window);
  return p;
}

TEST(OnlineDetector, SilentSignalAnyOccurrenceIsOutlier) {
  OnlineDetector det(silent_profile(), 100);
  for (int i = 0; i < 50; ++i) {
    const auto r = det.feed(0.0);
    ASSERT_EQ(r.kind, OutlierKind::None);
  }
  const auto r = det.feed(1.0);
  EXPECT_EQ(r.kind, OutlierKind::Occurrence);
  EXPECT_TRUE(r.onset);
}

TEST(OnlineDetector, NoiseSpikeDetectedAboveDelta) {
  OnlineDetector det(noise_profile(2.0, 5.0), 100);
  for (int i = 0; i < 60; ++i) det.feed(2.0);
  EXPECT_EQ(det.feed(4.0).kind, OutlierKind::None);   // within delta
  EXPECT_EQ(det.feed(20.0).kind, OutlierKind::Spike); // way above
}

TEST(OnlineDetector, DebounceReportsOneOnsetPerEpisode) {
  OnlineDetector det(noise_profile(1.0, 3.0), 100);
  for (int i = 0; i < 30; ++i) det.feed(1.0);
  int onsets = 0;
  for (int i = 0; i < 5; ++i) {
    const auto r = det.feed(50.0);
    EXPECT_EQ(r.kind, OutlierKind::Spike);
    onsets += r.onset;
  }
  EXPECT_EQ(onsets, 1);
  // Episode ends, a new one starts.
  det.feed(1.0);
  EXPECT_TRUE(det.feed(50.0).onset);
}

TEST(OnlineDetector, NoDebounceReportsEveryBucket) {
  DetectorOptions opts;
  opts.debounce = false;
  OnlineDetector det(noise_profile(1.0, 3.0), 100, opts);
  for (int i = 0; i < 30; ++i) det.feed(1.0);
  int onsets = 0;
  for (int i = 0; i < 5; ++i) onsets += det.feed(50.0).onset;
  EXPECT_EQ(onsets, 5);
}

TEST(OnlineDetector, ReplacementKeepsBaselineDuringLongBurst) {
  // With replacement, a long fault burst cannot drag the median up; the
  // detector keeps flagging (paper's replacement strategy). Small window so
  // the no-replacement variant saturates quickly.
  DetectorOptions with, without;
  without.replacement = false;
  OnlineDetector a(noise_profile(1.0, 3.0), 16, with);
  OnlineDetector b(noise_profile(1.0, 3.0), 16, without);
  for (int i = 0; i < 20; ++i) {
    a.feed(1.0);
    b.feed(1.0);
  }
  int flagged_with = 0, flagged_without = 0;
  for (int i = 0; i < 40; ++i) {
    flagged_with += a.feed(30.0).kind == OutlierKind::Spike;
    flagged_without += b.feed(30.0).kind == OutlierKind::Spike;
  }
  EXPECT_EQ(flagged_with, 40);          // baseline intact
  EXPECT_LT(flagged_without, 30);       // burst swallowed its own baseline
}

TEST(OnlineDetector, DropoutDetectedWhenPeriodicGoesQuiet) {
  const auto prof = periodic_profile(/*period=*/3, /*mean=*/1.0);
  OnlineDetector det(prof, 100);
  // Healthy phase: one event every 3 buckets.
  for (int i = 0; i < 60; ++i) det.feed(i % 3 == 0 ? 3.0 : 0.0);
  // Silence.
  bool dropout = false;
  for (int i = 0; i < 12; ++i) {
    const auto r = det.feed(0.0);
    if (r.kind == OutlierKind::Dropout) dropout = true;
  }
  EXPECT_TRUE(dropout);
}

TEST(OnlineDetector, DropoutOnsetDebounced) {
  const auto prof = periodic_profile(3, 1.0);
  OnlineDetector det(prof, 100);
  for (int i = 0; i < 60; ++i) det.feed(i % 3 == 0 ? 3.0 : 0.0);
  int onsets = 0;
  for (int i = 0; i < 20; ++i) onsets += det.feed(0.0).onset;
  EXPECT_EQ(onsets, 1);
}

TEST(OnlineDetector, DropoutRecoversWhenTrafficReturns) {
  const auto prof = periodic_profile(3, 1.0);
  OnlineDetector det(prof, 100);
  for (int i = 0; i < 60; ++i) det.feed(i % 3 == 0 ? 3.0 : 0.0);
  for (int i = 0; i < 20; ++i) det.feed(0.0);
  // Traffic resumes; after a window of healthy counts no dropout reported.
  OutlierKind last = OutlierKind::Dropout;
  for (int i = 0; i < 30; ++i) last = det.feed(i % 3 == 0 ? 3.0 : 0.0).kind;
  EXPECT_NE(last, OutlierKind::Dropout);
}

TEST(OnlineDetector, KindNames) {
  EXPECT_STREQ(to_string(OutlierKind::Spike), "spike");
  EXPECT_STREQ(to_string(OutlierKind::Dropout), "dropout");
  EXPECT_STREQ(to_string(OutlierKind::Occurrence), "occurrence");
  EXPECT_STREQ(to_string(OutlierKind::None), "none");
}

}  // namespace
