// Unit tests for the deterministic RNG: reproducibility, distribution
// moments, bounded generation, and fork decorrelation.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace {

using elsa::util::Rng;

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(7);
  const auto first = a.next_u64();
  a.next_u64();
  a.reseed(7);
  EXPECT_EQ(a.next_u64(), first);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(42);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(42);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Rng, BelowIsBoundedAndCoversRange) {
  Rng rng(9);
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.below(10);
    ASSERT_LT(v, 10u);
    ++seen[static_cast<std::size_t>(v)];
  }
  for (int c : seen) EXPECT_GT(c, 700);  // roughly uniform
}

TEST(Rng, RangeInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.range(2, 4);
    ASSERT_GE(v, 2);
    ASSERT_LE(v, 4);
    saw_lo |= v == 2;
    saw_hi |= v == 4;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 50000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / 50000.0, 0.3, 0.01);
}

TEST(Rng, ExponentialMean) {
  Rng rng(13);
  double sum = 0.0;
  const double mean = 40.0;
  for (int i = 0; i < 50000; ++i) {
    const double x = rng.exponential(mean);
    ASSERT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 50000.0, mean, mean * 0.03);
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  double sum = 0.0, sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(2.0, 3.0);
    sum += x;
    sq += x * x;
  }
  const double m = sum / n;
  const double var = sq / n - m * m;
  EXPECT_NEAR(m, 2.0, 0.08);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.1);
}

TEST(Rng, PoissonMeanSmallAndLarge) {
  Rng rng(19);
  for (const double mean : {0.5, 4.0, 120.0}) {
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(mean));
    EXPECT_NEAR(sum / n, mean, std::max(0.05, mean * 0.05)) << "mean=" << mean;
  }
}

TEST(Rng, PoissonZeroMean) {
  Rng rng(21);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, ForkDecorrelates) {
  Rng parent(31);
  Rng c1 = parent.fork();
  Rng c2 = parent.fork();
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (c1.next_u64() == c2.next_u64()) ++same;
  EXPECT_EQ(same, 0);
}

}  // namespace
