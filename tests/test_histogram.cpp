#include <gtest/gtest.h>

#include <stdexcept>

#include "util/histogram.hpp"

namespace {

using namespace elsa::util;

TEST(EdgeHistogram, BucketsAndFractions) {
  EdgeHistogram h({0.0, 10.0, 60.0});
  h.add(5.0);
  h.add(9.999);
  h.add(10.0);
  h.add(59.0);
  h.add(1000.0);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 2u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.4);
  EXPECT_DOUBLE_EQ(h.fraction(2), 0.2);
}

TEST(EdgeHistogram, BelowRangeDropped) {
  EdgeHistogram h({10.0, 20.0});
  h.add(5.0);
  EXPECT_EQ(h.total(), 0u);
}

TEST(EdgeHistogram, WeightsAccumulate) {
  EdgeHistogram h({0.0, 1.0});
  h.add(0.5, 7);
  EXPECT_EQ(h.count(0), 7u);
  EXPECT_EQ(h.total(), 7u);
}

TEST(EdgeHistogram, LabelsRenderRanges) {
  EdgeHistogram h({0.0, 10.0, 60.0});
  EXPECT_EQ(h.label(0, "s"), "[0s, 10s)");
  EXPECT_EQ(h.label(2, "s"), ">=60s");
}

TEST(EdgeHistogram, RejectsBadEdges) {
  EXPECT_THROW(EdgeHistogram({}), std::invalid_argument);
  EXPECT_THROW(EdgeHistogram({3.0, 1.0}), std::invalid_argument);
}

TEST(EdgeHistogram, EmptyFractionIsZero) {
  EdgeHistogram h({0.0, 1.0});
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.0);
}

TEST(EdgeHistogram, QuantileInterpolatesWithinBins) {
  EdgeHistogram h({0.0, 10.0, 20.0});
  h.add(5.0, 50);   // bin [0, 10)
  h.add(15.0, 50);  // bin [10, 20)
  EXPECT_DOUBLE_EQ(h.quantile(0.25), 5.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.75), 15.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 20.0);
}

TEST(EdgeHistogram, QuantileTopBinReportsItsLowerEdge) {
  EdgeHistogram h({0.0, 10.0, 20.0});
  h.add(1e9, 10);  // everything in the unbounded top bin
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 20.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 20.0);
}

TEST(EdgeHistogram, QuantileOfEmptyIsZero) {
  EdgeHistogram h({0.0, 1.0});
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(CategoryHistogram, InsertionOrderAndCounts) {
  CategoryHistogram h;
  h.add("memory");
  h.add("network");
  h.add("memory", 2);
  EXPECT_EQ(h.size(), 2u);
  EXPECT_EQ(h.name(0), "memory");
  EXPECT_EQ(h.name(1), "network");
  EXPECT_EQ(h.count("memory"), 3u);
  EXPECT_EQ(h.count("network"), 1u);
  EXPECT_EQ(h.count("disk"), 0u);
  EXPECT_DOUBLE_EQ(h.fraction("memory"), 0.75);
  EXPECT_DOUBLE_EQ(h.fraction(1), 0.25);
}

TEST(CategoryHistogram, EmptyFractions) {
  CategoryHistogram h;
  EXPECT_DOUBLE_EQ(h.fraction("nothing"), 0.0);
  EXPECT_EQ(h.total(), 0u);
}

}  // namespace
