// Tests for the Mann–Whitney U implementation against hand-computed and
// textbook values, including the tie handling the binary outlier samples
// exercise heavily.
#include <gtest/gtest.h>

#include <vector>

#include "util/mann_whitney.hpp"

namespace {

using namespace elsa::util;

TEST(MannWhitney, EmptySampleIsNull) {
  const std::vector<double> a{1.0};
  const std::vector<double> empty;
  auto r = mann_whitney_u(a, empty);
  EXPECT_DOUBLE_EQ(r.p_two_sided, 1.0);
  r = mann_whitney_u(empty, a);
  EXPECT_DOUBLE_EQ(r.p_two_sided, 1.0);
}

TEST(MannWhitney, AllTiedIsNull) {
  const std::vector<double> a{2, 2, 2};
  const std::vector<double> b{2, 2, 2, 2};
  const auto r = mann_whitney_u(a, b);
  EXPECT_DOUBLE_EQ(r.p_two_sided, 1.0);
  EXPECT_DOUBLE_EQ(r.z, 0.0);
}

TEST(MannWhitney, CompleteSeparationLargeSamples) {
  std::vector<double> a, b;
  for (int i = 0; i < 30; ++i) {
    a.push_back(100.0 + i);
    b.push_back(i);
  }
  const auto r = mann_whitney_u(a, b);
  // U for the first sample is maximal: n1*n2.
  EXPECT_DOUBLE_EQ(r.u, 900.0);
  EXPECT_LT(r.p_greater, 1e-6);
  EXPECT_LT(r.p_two_sided, 1e-6);
}

TEST(MannWhitney, SymmetryOfDirection) {
  const std::vector<double> a{5, 6, 7, 8, 9, 10};
  const std::vector<double> b{1, 2, 3, 4, 5, 6};
  const auto ab = mann_whitney_u(a, b);
  const auto ba = mann_whitney_u(b, a);
  EXPECT_NEAR(ab.p_two_sided, ba.p_two_sided, 1e-9);
  EXPECT_LT(ab.p_greater, 0.5);
  EXPECT_GT(ba.p_greater, 0.5);
  // U1 + U2 = n1 * n2.
  EXPECT_NEAR(ab.u + ba.u, 36.0, 1e-9);
}

TEST(MannWhitney, KnownSmallExample) {
  // Classic example: A = {1,2,4}, B = {3,5,6}; ranks 1,2,4 -> R1 = 7,
  // U1 = 7 - 6 = 1.
  const std::vector<double> a{1, 2, 4};
  const std::vector<double> b{3, 5, 6};
  const auto r = mann_whitney_u(a, b);
  EXPECT_DOUBLE_EQ(r.u, 1.0);
  EXPECT_GT(r.p_two_sided, 0.05);  // tiny samples: no significance
}

TEST(MannWhitney, BinaryProportionsDetected) {
  // Aligned indicators: 80% ones vs background 5% ones -- the exact usage
  // pattern in the correlation miner.
  std::vector<double> aligned, background;
  for (int i = 0; i < 100; ++i) {
    aligned.push_back(i < 80 ? 1.0 : 0.0);
    background.push_back(i < 5 ? 1.0 : 0.0);
  }
  const auto r = mann_whitney_u(aligned, background);
  EXPECT_LT(r.p_greater, 1e-9);
}

TEST(MannWhitney, BinaryEqualProportionsNotSignificant) {
  std::vector<double> a, b;
  for (int i = 0; i < 60; ++i) {
    a.push_back(i % 10 == 0 ? 1.0 : 0.0);
    b.push_back(i % 10 == 5 ? 1.0 : 0.0);
  }
  const auto r = mann_whitney_u(a, b);
  EXPECT_GT(r.p_two_sided, 0.5);
}

TEST(NormalCdf, KnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(normal_cdf(-1.96), 0.025, 1e-3);
  EXPECT_NEAR(normal_cdf(5.0) + normal_cdf(-5.0), 1.0, 1e-12);
}

}  // namespace
