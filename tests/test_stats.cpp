// Unit and property tests for the statistics toolkit, including the
// sliding-median structures the online outlier detector depends on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace {

using namespace elsa::util;

TEST(Stats, MeanVarianceBasics) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(mean(xs), 3.0);
  EXPECT_DOUBLE_EQ(variance(xs), 2.5);
  EXPECT_DOUBLE_EQ(stddev(xs), std::sqrt(2.5));
}

TEST(Stats, EmptyAndSingleton) {
  const std::vector<double> empty;
  EXPECT_DOUBLE_EQ(mean(empty), 0.0);
  EXPECT_DOUBLE_EQ(variance(empty), 0.0);
  EXPECT_DOUBLE_EQ(median(empty), 0.0);
  EXPECT_DOUBLE_EQ(mad(empty), 0.0);
  const std::vector<double> one{7.0};
  EXPECT_DOUBLE_EQ(mean(one), 7.0);
  EXPECT_DOUBLE_EQ(variance(one), 0.0);
  EXPECT_DOUBLE_EQ(median(one), 7.0);
  EXPECT_DOUBLE_EQ(mad(one), 0.0);
}

TEST(Stats, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{4, 1, 3, 2}), 2.5);
}

TEST(Stats, MadRobustToOutlier) {
  std::vector<double> xs{1, 1, 1, 1, 1, 1, 1, 1000};
  EXPECT_DOUBLE_EQ(mad(xs), 0.0);  // median deviation unaffected
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 25.0);
}

TEST(Stats, PearsonKnownValues) {
  const std::vector<double> xs{1, 2, 3, 4};
  const std::vector<double> ys{2, 4, 6, 8};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  const std::vector<double> zs{8, 6, 4, 2};
  EXPECT_NEAR(pearson(xs, zs), -1.0, 1e-12);
  const std::vector<double> c{5, 5, 5, 5};
  EXPECT_DOUBLE_EQ(pearson(xs, c), 0.0);
}

TEST(Stats, RunningStatsMatchesBatch) {
  Rng rng(1);
  std::vector<double> xs;
  RunningStats rs;
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    xs.push_back(x);
    rs.add(x);
  }
  EXPECT_NEAR(rs.mean(), mean(xs), 1e-9);
  EXPECT_NEAR(rs.variance(), variance(xs), 1e-6);
}

TEST(Stats, BinomialTailClosedForms) {
  // P(X >= 1) = 1 - (1-p)^n
  EXPECT_NEAR(binomial_tail_pvalue(10, 1, 0.1), 1.0 - std::pow(0.9, 10),
              1e-12);
  // P(X >= n) = p^n
  EXPECT_NEAR(binomial_tail_pvalue(5, 5, 0.5), std::pow(0.5, 5), 1e-12);
  EXPECT_DOUBLE_EQ(binomial_tail_pvalue(5, 0, 0.3), 1.0);
  EXPECT_DOUBLE_EQ(binomial_tail_pvalue(5, 6, 0.3), 0.0);
  EXPECT_DOUBLE_EQ(binomial_tail_pvalue(5, 3, 0.0), 0.0);
}

TEST(Stats, BinomialTailMonotoneInK) {
  double prev = 1.1;
  for (int k = 0; k <= 20; ++k) {
    const double p = binomial_tail_pvalue(20, k, 0.3);
    EXPECT_LE(p, prev + 1e-12);
    prev = p;
  }
}

// ---- SlidingMedian property test vs a naive reference --------------------

double naive_window_median(const std::vector<double>& xs, std::size_t end,
                           std::size_t window) {
  const std::size_t lo = end >= window ? end - window : 0;
  std::vector<double> w(xs.begin() + static_cast<std::ptrdiff_t>(lo),
                        xs.begin() + static_cast<std::ptrdiff_t>(end));
  std::sort(w.begin(), w.end());
  if (w.empty()) return 0.0;
  const std::size_t mid = w.size() / 2;
  return w.size() % 2 == 1 ? w[mid] : 0.5 * (w[mid - 1] + w[mid]);
}

class SlidingMedianProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SlidingMedianProperty, MatchesNaiveReference) {
  const std::size_t window = GetParam();
  Rng rng(window * 977 + 13);
  SlidingMedian sm(window);
  std::vector<double> xs;
  for (int i = 0; i < 800; ++i) {
    const double x = std::floor(rng.uniform(0.0, 50.0));
    xs.push_back(x);
    sm.push(x);
    ASSERT_DOUBLE_EQ(sm.median(), naive_window_median(xs, xs.size(), window))
        << "at step " << i << " window " << window;
  }
}

INSTANTIATE_TEST_SUITE_P(Windows, SlidingMedianProperty,
                         ::testing::Values(1, 2, 3, 5, 16, 64, 301));

TEST(SlidingMedian, MadOfConstantWindow) {
  SlidingMedian sm(8);
  for (int i = 0; i < 8; ++i) sm.push(4.0);
  EXPECT_DOUBLE_EQ(sm.median(), 4.0);
  EXPECT_DOUBLE_EQ(sm.mad(), 0.0);
}

TEST(SlidingMedian, ClearResets) {
  SlidingMedian sm(4);
  sm.push(1);
  sm.push(2);
  sm.clear();
  EXPECT_EQ(sm.size(), 0u);
  EXPECT_DOUBLE_EQ(sm.median(), 0.0);
  sm.push(9);
  EXPECT_DOUBLE_EQ(sm.median(), 9.0);
}

}  // namespace
