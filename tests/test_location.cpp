// Location-correlation tests: propagation profiles from planted outlier
// events with known node sets, scope classification, and the
// initiator-inclusion statistic from §V.
#include <gtest/gtest.h>

#include "elsa/location.hpp"
#include "topology/topology.hpp"

namespace {

using namespace elsa::core;
namespace topo = elsa::topo;

Chain pair_chain(std::uint32_t a, std::uint32_t b, std::int32_t delay) {
  Chain c;
  c.items = {{a, 0}, {b, delay}};
  return c;
}

OutlierEvent ev(std::int32_t sample, std::vector<std::int32_t> nodes) {
  OutlierEvent e;
  e.sample = sample;
  e.nodes = std::move(nodes);
  return e;
}

TEST(Location, SingleNodeChainDoesNotPropagate) {
  const auto t = topo::Topology::bluegene(2, 2, 4, 8);
  EventsBySignal events(2);
  for (int i = 0; i < 6; ++i) {
    events[0].push_back(ev(i * 100, {37}));
    events[1].push_back(ev(i * 100 + 10, {37}));
  }
  const auto prof =
      build_location_profile(pair_chain(0, 1, 10), events, t);
  EXPECT_EQ(prof.occurrences, 6);
  EXPECT_EQ(prof.scope, topo::Scope::Node);
  EXPECT_DOUBLE_EQ(prof.propagating_fraction, 0.0);
  EXPECT_DOUBLE_EQ(prof.initiator_included, 1.0);
  EXPECT_DOUBLE_EQ(prof.mean_nodes, 1.0);
}

TEST(Location, MidplaneSpreadClassified) {
  const auto t = topo::Topology::bluegene(2, 2, 4, 8);
  EventsBySignal events(2);
  // Nodes 0 and 40 share a midplane (4 cards x 8 nodes = 32 per midplane ->
  // node 40 is midplane 1); use 0 and 20: same midplane, different cards.
  for (int i = 0; i < 5; ++i) {
    events[0].push_back(ev(i * 100, {0}));
    events[1].push_back(ev(i * 100 + 5, {20}));
  }
  const auto prof = build_location_profile(pair_chain(0, 1, 5), events, t);
  EXPECT_EQ(prof.scope, topo::Scope::Midplane);
  EXPECT_DOUBLE_EQ(prof.propagating_fraction, 1.0);
  // First-symptom node 0 never reappears in the later set.
  EXPECT_DOUBLE_EQ(prof.initiator_included, 0.0);
  EXPECT_DOUBLE_EQ(prof.mean_nodes, 2.0);
}

TEST(Location, ScopeQuantileIgnoresOneOffFluke) {
  const auto t = topo::Topology::bluegene(2, 2, 4, 8);
  EventsBySignal events(2);
  // Nine tight occurrences, one globally spread fluke.
  for (int i = 0; i < 9; ++i) {
    events[0].push_back(ev(i * 100, {5}));
    events[1].push_back(ev(i * 100 + 5, {5}));
  }
  events[0].push_back(ev(2000, {5}));
  events[1].push_back(ev(2005, {100}));  // other rack (node 100 = rack 1)
  const auto prof = build_location_profile(pair_chain(0, 1, 5), events, t);
  EXPECT_EQ(prof.occurrences, 10);
  EXPECT_EQ(prof.scope, topo::Scope::Node);  // 80th percentile robust
}

TEST(Location, IncompleteOccurrencesSkipped) {
  const auto t = topo::Topology::bluegene(2, 2, 4, 8);
  EventsBySignal events(2);
  events[0].push_back(ev(100, {1}));
  events[0].push_back(ev(500, {2}));
  events[1].push_back(ev(110, {1}));  // only the first aligns
  const auto prof = build_location_profile(pair_chain(0, 1, 10), events, t);
  EXPECT_EQ(prof.occurrences, 1);
}

TEST(Location, ServiceOnlyEventsYieldNoSpread) {
  const auto t = topo::Topology::bluegene(2, 2, 4, 8);
  EventsBySignal events(2);
  for (int i = 0; i < 4; ++i) {
    events[0].push_back(ev(i * 100, {}));  // service record, no node
    events[1].push_back(ev(i * 100 + 2, {}));
  }
  const auto prof = build_location_profile(pair_chain(0, 1, 2), events, t);
  EXPECT_EQ(prof.occurrences, 4);
  EXPECT_EQ(prof.scope, topo::Scope::None);  // nothing to localise
}

TEST(Location, EmptyChainOrNoEvents) {
  const auto t = topo::Topology::bluegene(2, 2, 4, 8);
  EventsBySignal events(2);
  const auto prof = build_location_profile(pair_chain(0, 1, 5), events, t);
  EXPECT_EQ(prof.occurrences, 0);
  EXPECT_EQ(prof.scope, topo::Scope::None);
}

TEST(Location, AnnotateAll) {
  const auto t = topo::Topology::bluegene(2, 2, 4, 8);
  EventsBySignal events(3);
  for (int i = 0; i < 5; ++i) {
    events[0].push_back(ev(i * 100, {3}));
    events[1].push_back(ev(i * 100 + 4, {3}));
    events[2].push_back(ev(i * 100 + 4, {99}));
  }
  std::vector<Chain> chains{pair_chain(0, 1, 4), pair_chain(0, 2, 4)};
  annotate_locations(chains, events, t);
  EXPECT_EQ(chains[0].location.scope, topo::Scope::Node);
  EXPECT_GT(static_cast<int>(chains[1].location.scope),
            static_cast<int>(topo::Scope::Node));
}

}  // namespace
