// Report-builder tests on hand-constructed chains and results.
#include <gtest/gtest.h>

#include <algorithm>

#include "elsa/report.hpp"

namespace {

using namespace elsa;
using core::Chain;

Chain chain_of(std::vector<core::ChainItem> items,
               topo::Scope scope = topo::Scope::Node, int occurrences = 5,
               double propagating = 0.0) {
  Chain c;
  c.items = std::move(items);
  c.location.scope = scope;
  c.location.occurrences = occurrences;
  c.location.propagating_fraction = propagating;
  c.location.initiator_included = 0.9;
  return c;
}

TEST(Report, SequenceSizes) {
  std::vector<Chain> chains{
      chain_of({{0, 0}, {1, 2}}),
      chain_of({{0, 0}, {1, 2}, {2, 4}}),
      chain_of({{0, 0}, {1, 1}, {2, 2}, {3, 3}, {4, 4}, {5, 5}, {6, 6},
                {7, 7}, {8, 8}}),
  };
  const auto r = core::sequence_size_report(chains);
  EXPECT_NEAR(r.mean_size, (2 + 3 + 9) / 3.0, 1e-12);
  EXPECT_NEAR(r.fraction_above_8, 1.0 / 3.0, 1e-12);
  EXPECT_EQ(r.sizes.count("2"), 1u);
  EXPECT_EQ(r.sizes.count("8+"), 1u);
}

TEST(Report, SequenceSizesEmpty) {
  const auto r = core::sequence_size_report({});
  EXPECT_DOUBLE_EQ(r.mean_size, 0.0);
  EXPECT_EQ(r.sizes.total(), 0u);
}

TEST(Report, DelayBuckets) {
  // Gaps (samples, dt 10 s): 0 (0 s), 3 (30 s), 400 (4000 s).
  std::vector<Chain> chains{
      chain_of({{0, 0}, {1, 0}}),
      chain_of({{0, 0}, {1, 3}}),
      chain_of({{0, 0}, {1, 400}}),
  };
  const auto r = core::delay_report(chains, 10'000);
  EXPECT_EQ(r.pair_delays.count(0), 1u);  // [0, 10 s)
  EXPECT_EQ(r.pair_delays.count(1), 1u);  // [10 s, 60 s)
  EXPECT_EQ(r.pair_delays.count(3), 1u);  // >= 600 s
  EXPECT_DOUBLE_EQ(r.max_span_s, 4000.0);
  // Spans equal the single gaps here.
  EXPECT_EQ(r.span_delays.total(), 3u);
}

TEST(Report, Propagation) {
  std::vector<Chain> chains{
      chain_of({{0, 0}, {1, 1}}, topo::Scope::Node, 5, 0.0),
      chain_of({{0, 0}, {1, 1}}, topo::Scope::Midplane, 5, 1.0),
      chain_of({{0, 0}, {1, 1}}, topo::Scope::System, 5, 1.0),
      chain_of({{0, 0}, {1, 1}}, topo::Scope::Node, 0),  // no occurrences
  };
  const auto r = core::propagation_report(chains);
  EXPECT_EQ(r.chains, 3u);  // the profile-less chain is skipped
  EXPECT_EQ(r.propagating, 2u);
  EXPECT_NEAR(r.fraction_propagating, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(r.fraction_beyond_midplane, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(r.initiator_included, 0.9, 1e-12);
  EXPECT_EQ(r.scopes.count("node"), 1u);
}

TEST(Report, RecallBreakdownSortedByShare) {
  core::EvalResult eval;
  eval.faults = 10;
  eval.per_category = {{"cache", 2, 0}, {"memory", 6, 3}, {"io", 2, 1}};
  const auto bars = core::recall_breakdown(eval);
  ASSERT_EQ(bars.size(), 3u);
  EXPECT_EQ(bars[0].category, "memory");
  EXPECT_NEAR(bars[0].occurrence_fraction, 0.6, 1e-12);
  EXPECT_NEAR(bars[0].predicted_fraction, 0.3, 1e-12);
  // cache and io tie on occurrence share; find cache by name.
  const auto cache = std::find_if(
      bars.begin(), bars.end(),
      [](const core::CategoryBar& b) { return b.category == "cache"; });
  ASSERT_NE(cache, bars.end());
  EXPECT_EQ(cache->predicted, 0u);
}

TEST(Report, AnalysisTime) {
  core::EngineStats stats;
  stats.analysis_window_ms = {10.0f, 20.0f, 30.0f, 1000.0f};
  const auto r = core::analysis_time_report(stats);
  EXPECT_EQ(r.windows, 4u);
  EXPECT_NEAR(r.mean_ms, 265.0, 1e-9);
  EXPECT_DOUBLE_EQ(r.max_ms, 1000.0);
  EXPECT_GT(r.p95_ms, 30.0);
  EXPECT_EQ(core::analysis_time_report(core::EngineStats{}).windows, 0u);
}

}  // namespace
