// Cross-cutting property tests: invariants that must hold for ANY seed or
// input, exercised over randomised sweeps — the guard rails under the
// experiment results.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "elsa/pipeline.hpp"
#include "helo/helo.hpp"
#include "simlog/scenario.hpp"
#include "util/rng.hpp"

namespace {

using namespace elsa;

// ---- HELO fuzz -----------------------------------------------------------

std::string random_message(util::Rng& rng) {
  static const char* words[] = {"error",  "node",   "0xdead", "42",
                                "::",     "a.b.c",  "!!",     "R00-M1",
                                "kernel", "-",      "d+",     "*",
                                "",       "\t",     "x9y",    "...."};
  std::string msg;
  const int n = static_cast<int>(rng.range(0, 12));
  for (int i = 0; i < n; ++i) {
    if (i) msg += ' ';
    msg += words[rng.below(std::size(words))];
  }
  return msg;
}

TEST(Property, HeloNeverCrashesAndIsIdempotent) {
  util::Rng rng(101);
  helo::TemplateMiner miner;
  for (int i = 0; i < 20000; ++i) {
    const auto msg = random_message(rng);
    const auto a = miner.classify(msg);
    const auto b = miner.classify(msg);
    ASSERT_EQ(a, b) << "classify not idempotent for: " << msg;
    if (a != helo::TemplateMiner::kNoTemplate) {
      ASSERT_EQ(miner.classify_const(msg), a)
          << "classify_const disagrees for: " << msg;
      ASSERT_LT(a, miner.size());
    }
  }
}

TEST(Property, HeloTemplateTextsMatchTheirMessages) {
  util::Rng rng(77);
  helo::TemplateMiner miner;
  for (int i = 0; i < 2000; ++i) miner.classify(random_message(rng));
  // Every template's own text must classify back to itself (stability of
  // the template representation under re-ingestion).
  for (std::uint32_t t = 0; t < miner.size(); ++t) {
    const auto back = miner.classify_const(miner.at(t).text());
    ASSERT_NE(back, helo::TemplateMiner::kNoTemplate);
  }
}

// ---- generator invariants over seeds --------------------------------------

class GeneratorSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratorSeeds, GroundTruthInvariants) {
  auto sc = simlog::make_bluegene_scenario(GetParam(), 3.0, 30);
  const auto trace = sc.generator.generate(sc.config);
  ASSERT_FALSE(trace.records.empty());

  std::uint32_t prev_id = 0;
  (void)prev_id;
  for (const auto& f : trace.faults) {
    // Terminal never precedes the first symptom.
    EXPECT_LE(f.start_time_ms, f.fail_time_ms);
    // All times inside the trace.
    EXPECT_GE(f.start_time_ms, trace.t_begin_ms);
    EXPECT_LT(f.fail_time_ms, trace.t_end_ms);
    // The affected set is non-empty, unique, in-machine, with initiator.
    ASSERT_FALSE(f.affected_nodes.empty());
    for (const auto n : f.affected_nodes) {
      ASSERT_GE(n, 0);
      ASSERT_LT(n, trace.topology.total_nodes());
    }
    EXPECT_NE(std::find(f.affected_nodes.begin(), f.affected_nodes.end(),
                        f.initiating_node),
              f.affected_nodes.end());
    EXPECT_NE(f.category, "benign");
  }
  // Every fault-tagged record's fault exists.
  std::set<std::uint32_t> ids;
  for (const auto& f : trace.faults) ids.insert(f.id);
  std::size_t orphan_records = 0;
  for (const auto& rec : trace.records)
    if (rec.fault_id != 0 && !ids.count(rec.fault_id)) ++orphan_records;
  // Benign chains and end-truncated faults legitimately tag records whose
  // fault is not ground truth; they must still be a small minority.
  EXPECT_LT(orphan_records, trace.records.size() / 10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorSeeds,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21));

// ---- prediction stream invariants -----------------------------------------

class PipelineSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineSeeds, PredictionStreamInvariants) {
  auto sc = simlog::make_bluegene_scenario(GetParam(), 8.0, 40);
  const auto trace = sc.generator.generate(sc.config);
  core::PipelineConfig cfg;
  const auto res =
      core::run_experiment(trace, 4.0, core::Method::Hybrid, cfg);

  std::int64_t prev_trigger = 0;
  for (const auto& p : res.predictions) {
    // Time ordering and causality.
    EXPECT_GE(p.trigger_time_ms, prev_trigger);
    prev_trigger = p.trigger_time_ms;
    EXPECT_GE(p.issue_time_ms, p.trigger_time_ms);
    EXPECT_GE(p.lead_ms, 0);
    EXPECT_EQ(p.predicted_time_ms, p.trigger_time_ms + p.lead_ms);
    // Chain references are valid and predictive.
    ASSERT_LT(p.chain_id, res.model.chains.size());
    EXPECT_TRUE(res.model.chains[p.chain_id].predictive());
    // Locations are in-machine.
    for (const auto n : p.nodes) {
      ASSERT_GE(n, 0);
      ASSERT_LT(n, trace.topology.total_nodes());
    }
  }
  // Scoring is internally consistent.
  EXPECT_LE(res.eval.correct_predictions, res.eval.predictions);
  EXPECT_LE(res.eval.predicted_faults, res.eval.faults);
  EXPECT_EQ(res.eval.predictions, res.predictions.size());
  std::size_t cat_total = 0, cat_pred = 0;
  for (const auto& c : res.eval.per_category) {
    cat_total += c.total;
    cat_pred += c.predicted;
  }
  EXPECT_EQ(cat_total, res.eval.faults);
  EXPECT_EQ(cat_pred, res.eval.predicted_faults);
  EXPECT_EQ(res.eval.lead_times_s.size(), res.eval.predicted_faults);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineSeeds, ::testing::Values(11, 23, 31));

// ---- robustness guard: the headline shape must not be seed luck -----------

TEST(Property, HybridBeatsDataMiningAcrossSeeds) {
  double hybrid_recall = 0.0, dm_recall = 0.0, hybrid_precision = 0.0;
  const std::uint64_t seeds[] = {2012, 1337};
  for (const auto seed : seeds) {
    auto sc = simlog::make_bluegene_scenario(seed, 12.0, 110);
    const auto trace = sc.generator.generate(sc.config);
    core::PipelineConfig cfg;
    const auto hybrid =
        core::run_experiment(trace, 4.0, core::Method::Hybrid, cfg);
    const auto dm =
        core::run_experiment(trace, 4.0, core::Method::DataMining, cfg);
    hybrid_recall += hybrid.eval.recall();
    hybrid_precision += hybrid.eval.precision();
    dm_recall += dm.eval.recall();
  }
  const double n = static_cast<double>(std::size(seeds));
  EXPECT_GT(hybrid_recall / n, 1.8 * (dm_recall / n));
  EXPECT_GT(hybrid_precision / n, 0.85);
}

}  // namespace
