// Cross-correlation tests: sparse search helpers, planted-delay recovery,
// each statistical gate, and serial/parallel equivalence.
#include <gtest/gtest.h>

#include "signalkit/xcorr.hpp"
#include "util/rng.hpp"

namespace {

using namespace elsa::sigkit;
using elsa::util::Rng;

TEST(Xcorr, HasNearAndCountNear) {
  const OutlierStream s{10, 20, 21, 22, 50};
  EXPECT_TRUE(has_near(s, 20, 0));
  EXPECT_TRUE(has_near(s, 18, 2));
  EXPECT_FALSE(has_near(s, 15, 2));
  EXPECT_EQ(count_near(s, 21, 1), 3);
  EXPECT_EQ(count_near(s, 100, 5), 0);
}

XcorrConfig loose_config(std::size_t total) {
  XcorrConfig cfg;
  cfg.total_samples = total;
  cfg.min_support = 3;
  cfg.min_confidence = 0.2;
  cfg.min_significance = 0.9;
  cfg.min_lift = 2.0;
  cfg.max_chance_pvalue = 1e-4;
  return cfg;
}

TEST(Xcorr, RecoversPlantedDelay) {
  Rng rng(1);
  OutlierStream a, b;
  std::int32_t t = 100;
  for (int i = 0; i < 20; ++i) {
    a.push_back(t);
    b.push_back(t + 42 + static_cast<std::int32_t>(rng.range(-1, 1)));
    t += static_cast<std::int32_t>(rng.range(400, 900));
  }
  const auto pc = correlate_pair(a, b, 0, 1, loose_config(20000));
  ASSERT_TRUE(pc.has_value());
  EXPECT_NEAR(pc->delay, 42, 3);
  EXPECT_GE(pc->support, 18);
  EXPECT_GT(pc->confidence, 0.9);
  EXPECT_GT(pc->significance, 0.99);
}

TEST(Xcorr, NoCorrelationRejected) {
  Rng rng(2);
  OutlierStream a, b;
  for (int i = 0; i < 30; ++i) {
    a.push_back(static_cast<std::int32_t>(rng.below(50000)));
    b.push_back(static_cast<std::int32_t>(rng.below(50000)));
  }
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  const auto pc = correlate_pair(a, b, 0, 1, loose_config(50000));
  EXPECT_FALSE(pc.has_value());
}

TEST(Xcorr, EmptyStreamsRejected) {
  const OutlierStream a{1, 2}, empty;
  EXPECT_FALSE(correlate_pair(a, empty, 0, 1, loose_config(100)).has_value());
  EXPECT_FALSE(correlate_pair(empty, a, 0, 1, loose_config(100)).has_value());
}

TEST(Xcorr, SupportGate) {
  OutlierStream a{100, 5000}, b{142, 5042};
  auto cfg = loose_config(10000);
  cfg.min_support = 3;  // only 2 co-occurrences available
  EXPECT_FALSE(correlate_pair(a, b, 0, 1, cfg).has_value());
  cfg.min_support = 2;
  cfg.min_significance = 0.0;  // tiny samples can't reach significance
  cfg.max_chance_pvalue = 1.0;
  EXPECT_TRUE(correlate_pair(a, b, 0, 1, cfg).has_value());
}

TEST(Xcorr, ConfidenceGate) {
  // b fires after only 3 of 30 a-events: confidence 0.1.
  Rng rng(3);
  OutlierStream a, b;
  std::int32_t t = 500;
  for (int i = 0; i < 30; ++i) {
    a.push_back(t);
    if (i < 3) b.push_back(t + 10);
    t += 700;
  }
  auto cfg = loose_config(30000);
  cfg.min_confidence = 0.2;
  EXPECT_FALSE(correlate_pair(a, b, 0, 1, cfg).has_value());
  cfg.min_confidence = 0.05;
  cfg.min_significance = 0.0;
  EXPECT_TRUE(correlate_pair(a, b, 0, 1, cfg).has_value());
}

TEST(Xcorr, ChattyConsequentFailsLiftGate) {
  // b is everywhere: any alignment is chance; lift must reject it.
  OutlierStream a, b;
  for (std::int32_t t = 50; t < 5000; t += 200) a.push_back(t);
  for (std::int32_t t = 0; t < 5000; t += 9) b.push_back(t);
  auto cfg = loose_config(5000);
  cfg.min_lift = 3.0;
  EXPECT_FALSE(correlate_pair(a, b, 0, 1, cfg).has_value());
}

TEST(Xcorr, EffectiveToleranceWidensAndCaps) {
  XcorrConfig cfg;
  cfg.tolerance = 3;
  cfg.tolerance_frac = 0.08;
  cfg.max_tolerance = 24;
  EXPECT_EQ(cfg.effective_tolerance(0), 3);
  EXPECT_EQ(cfg.effective_tolerance(100), 11);
  EXPECT_EQ(cfg.effective_tolerance(10000), 24);
}

TEST(Xcorr, LongDelayWithProportionalJitterFound) {
  // Node-card style: delay 300 samples with +/-15 jitter. Fixed tolerance 3
  // would miss it; the proportional window must catch it.
  Rng rng(4);
  OutlierStream a, b;
  std::int32_t t = 100;
  for (int i = 0; i < 12; ++i) {
    a.push_back(t);
    b.push_back(t + 300 + static_cast<std::int32_t>(rng.range(-15, 15)));
    t += 3000;
  }
  auto cfg = loose_config(40000);
  const auto pc = correlate_pair(a, b, 0, 1, cfg);
  ASSERT_TRUE(pc.has_value());
  EXPECT_NEAR(pc->delay, 300, 25);
  EXPECT_GE(pc->support, 10);
}

TEST(Xcorr, CorrelateAllFindsDirectedPair) {
  Rng rng(5);
  std::vector<OutlierStream> streams(3);
  std::int32_t t = 200;
  for (int i = 0; i < 15; ++i) {
    streams[0].push_back(t);
    streams[2].push_back(t + 12);
    t += 800;
  }
  const auto out = correlate_all(streams, loose_config(15000));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].a, 0u);
  EXPECT_EQ(out[0].b, 2u);
  EXPECT_NEAR(out[0].delay, 12, 3);
}

TEST(Xcorr, ZeroDelayPairKeptOnce) {
  std::vector<OutlierStream> streams(2);
  std::int32_t t = 300;
  for (int i = 0; i < 12; ++i) {
    streams[0].push_back(t);
    streams[1].push_back(t);
    t += 900;
  }
  const auto out = correlate_all(streams, loose_config(12000));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].a, 0u);  // lower id is the antecedent for delay 0
  EXPECT_EQ(out[0].delay, 0);
}

TEST(Xcorr, ParallelMatchesSerial) {
  Rng rng(6);
  std::vector<OutlierStream> streams(12);
  for (auto& s : streams) {
    std::int32_t t = static_cast<std::int32_t>(rng.below(100));
    for (int i = 0; i < 25; ++i) {
      s.push_back(t);
      t += static_cast<std::int32_t>(rng.range(100, 600));
    }
  }
  // Plant one real correlation.
  streams[3].clear();
  for (const std::int32_t t : streams[1]) streams[3].push_back(t + 7);

  const auto cfg = loose_config(20000);
  const auto serial = correlate_all(streams, cfg, 1);
  const auto parallel = correlate_all(streams, cfg, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].a, parallel[i].a);
    EXPECT_EQ(serial[i].b, parallel[i].b);
    EXPECT_EQ(serial[i].delay, parallel[i].delay);
    EXPECT_EQ(serial[i].support, parallel[i].support);
  }
}

}  // namespace
