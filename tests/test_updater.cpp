// Adaptive-update tests: chain matching, merge semantics (refresh / decay /
// retire / add), and a full model-update round on a generated campaign.
#include <gtest/gtest.h>

#include "elsa/updater.hpp"
#include "simlog/scenario.hpp"

namespace {

using namespace elsa;
using core::Chain;

Chain make_chain(std::vector<core::ChainItem> items, int support) {
  Chain c;
  c.items = std::move(items);
  c.support = support;
  c.confidence = 0.5;
  return c;
}

TEST(Updater, SameChainMatching) {
  const auto a = make_chain({{1, 0}, {2, 10}}, 5);
  EXPECT_TRUE(core::same_chain(a, make_chain({{1, 0}, {2, 12}}, 3), 3));
  EXPECT_FALSE(core::same_chain(a, make_chain({{1, 0}, {2, 20}}, 3), 3));
  EXPECT_FALSE(core::same_chain(a, make_chain({{1, 0}, {3, 10}}, 3), 3));
  EXPECT_FALSE(core::same_chain(a, make_chain({{1, 0}}, 3), 3));
  // Proportional slack helps long delays.
  const auto lng = make_chain({{1, 0}, {2, 300}}, 5);
  EXPECT_TRUE(core::same_chain(lng, make_chain({{1, 0}, {2, 315}}, 3), 3, 0.08));
}

TEST(Updater, MergeRefreshesMatchingChains) {
  const auto old_set = std::vector<Chain>{make_chain({{1, 0}, {2, 10}}, 8)};
  auto fresh = make_chain({{1, 0}, {2, 11}}, 4);
  fresh.confidence = 0.9;
  core::UpdateStats st;
  const auto merged =
      core::merge_chain_sets(old_set, {fresh}, core::UpdateConfig{}, &st);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(st.refreshed, 1u);
  EXPECT_EQ(merged[0].support, 4);          // fresh stats win
  EXPECT_DOUBLE_EQ(merged[0].confidence, 0.9);
}

TEST(Updater, MergeKeepsRicherLocationProfile) {
  auto old_chain = make_chain({{1, 0}, {2, 10}}, 8);
  old_chain.location.occurrences = 20;
  old_chain.location.scope = topo::Scope::Midplane;
  auto fresh = make_chain({{1, 0}, {2, 10}}, 3);
  fresh.location.occurrences = 2;
  fresh.location.scope = topo::Scope::Node;
  const auto merged = core::merge_chain_sets({old_chain}, {fresh});
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].location.scope, topo::Scope::Midplane);
}

TEST(Updater, UnseenChainsDecayThenRetire) {
  core::UpdateConfig cfg;
  cfg.unseen_decay = 0.5;
  cfg.retire_support = 1.5;
  const auto old_set = std::vector<Chain>{make_chain({{1, 0}, {2, 10}}, 8),
                                          make_chain({{3, 0}, {4, 5}}, 3)};
  core::UpdateStats st;
  const auto merged = core::merge_chain_sets(old_set, {}, cfg, &st);
  // 8 -> 4 survives; 3 -> 1 (floor) retires.
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].support, 4);
  EXPECT_EQ(st.decayed, 1u);
  EXPECT_EQ(st.retired, 1u);
}

TEST(Updater, NewChainsAdded) {
  core::UpdateStats st;
  const auto merged = core::merge_chain_sets(
      {}, {make_chain({{7, 0}, {8, 3}}, 5)}, core::UpdateConfig{}, &st);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(st.added, 1u);
}

TEST(Updater, FullModelUpdateRound) {
  auto sc = simlog::make_bluegene_scenario(2012, 8.0, 40);
  const auto trace = sc.generator.generate(sc.config);
  core::PipelineConfig cfg;
  const std::int64_t train_end = trace.t_begin_ms + 4 * 86'400'000LL;
  auto model =
      core::train_offline(trace, train_end, core::Method::Hybrid, cfg);
  const std::size_t before = model.chains.size();
  ASSERT_GT(before, 0u);

  const auto st = core::update_model(model, trace, train_end,
                                     trace.t_end_ms, cfg);
  EXPECT_GT(st.refreshed + st.added + st.decayed + st.retired, 0u);
  // Stable syndromes must be re-found, not retired wholesale.
  EXPECT_GT(st.refreshed, 0u);
  // The model stays coherent: profiles cover every template id used.
  for (const auto& c : model.chains)
    for (const auto& item : c.items)
      ASSERT_LT(item.signal, model.helo.size());
  // And it still contains predictive chains.
  std::size_t predictive = 0;
  for (const auto& c : model.chains) predictive += c.predictive();
  EXPECT_GT(predictive, 0u);
}

}  // namespace
