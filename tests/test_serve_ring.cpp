// Serving-layer primitives under contention: FIFO and close semantics of
// the bounded MPMC ring, no-loss/no-duplication under producer/consumer
// hammering, the drop-with-counter overflow policy, and the lock-free
// metrics recorders. This is the file CI additionally runs under
// ASan/UBSan and ThreadSanitizer.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

#include "serve/metrics.hpp"
#include "serve/ring.hpp"

namespace {

using namespace elsa::serve;

TEST(Ring, FifoSingleThread) {
  Ring<int> ring(4);
  EXPECT_EQ(ring.push(1), 1u);
  EXPECT_EQ(ring.push(2), 2u);
  EXPECT_EQ(ring.size(), 2u);
  EXPECT_EQ(ring.pop(), 1);
  EXPECT_EQ(ring.pop(), 2);
  EXPECT_EQ(ring.try_pop(), std::nullopt);
}

TEST(Ring, OfferDropsAndCountsOnOverflow) {
  Ring<int> ring(8);
  std::size_t accepted = 0;
  for (int i = 0; i < 100; ++i) accepted += ring.offer(i) != 0;
  EXPECT_EQ(accepted, 8u);
  EXPECT_EQ(ring.dropped(), 92u);
  // FIFO of the survivors.
  for (int i = 0; i < 8; ++i) EXPECT_EQ(ring.pop(), i);
}

TEST(Ring, CloseWakesConsumersAndDrains) {
  Ring<int> ring(4);
  ring.push(7);
  ring.close();
  EXPECT_EQ(ring.push(8), 0u);   // rejected after close
  EXPECT_EQ(ring.offer(9), 0u);  // counted as a drop
  EXPECT_EQ(ring.pop(), 7);      // queued items remain poppable
  EXPECT_EQ(ring.pop(), std::nullopt);
}

TEST(Ring, CloseUnblocksWaitingConsumer) {
  Ring<int> ring(2);
  std::thread consumer([&] { EXPECT_EQ(ring.pop(), std::nullopt); });
  ring.close();
  consumer.join();
}

TEST(Ring, PopAllDrainsInOrder) {
  Ring<int> ring(16);
  for (int i = 0; i < 10; ++i) ring.push(i);
  std::vector<int> out;
  EXPECT_TRUE(ring.pop_all(out));
  ASSERT_EQ(out.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i);
  ring.close();
  EXPECT_FALSE(ring.pop_all(out));
}

// The drop-oldest overflow policy: a full ring evicts its head to admit
// the newcomer, reporting the eviction so the caller can account it shed.
TEST(Ring, PushEvictDisplacesOldest) {
  Ring<int> ring(4);
  for (int i = 0; i < 4; ++i) EXPECT_GT(ring.push_evict(i), 0u);
  EXPECT_EQ(ring.evicted(), 0u);

  bool kicked = false;
  EXPECT_GT(ring.push_evict(4, &kicked), 0u);  // displaces 0
  EXPECT_TRUE(kicked);
  EXPECT_GT(ring.push_evict(5, &kicked), 0u);  // displaces 1
  EXPECT_TRUE(kicked);
  EXPECT_EQ(ring.evicted(), 2u);
  EXPECT_EQ(ring.size(), 4u);

  // The freshest window survives, still FIFO.
  for (int i = 2; i < 6; ++i) EXPECT_EQ(ring.pop(), i);

  kicked = true;
  EXPECT_GT(ring.push_evict(9, &kicked), 0u);  // room again: no eviction
  EXPECT_FALSE(kicked);

  ring.close();
  EXPECT_EQ(ring.push_evict(10, &kicked), 0u);  // only closed rejects
  EXPECT_FALSE(kicked);
  EXPECT_EQ(ring.evicted(), 2u);
}

// The acceptance property for the ingest spine: under multi-producer,
// multi-consumer hammering with blocking push, every item comes out exactly
// once.
TEST(RingStress, MpmcNoLossNoDuplication) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 3;
  constexpr int kPerProducer = 20'000;
  Ring<int> ring(64);

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p)
    producers.emplace_back([&ring, p] {
      for (int i = 0; i < kPerProducer; ++i)
        ASSERT_GT(ring.push(p * kPerProducer + i), 0u);
    });

  std::vector<std::vector<int>> taken(kConsumers);
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c)
    consumers.emplace_back([&ring, &taken, c] {
      while (auto v = ring.pop()) taken[static_cast<std::size_t>(c)].push_back(*v);
    });

  for (auto& t : producers) t.join();
  ring.close();
  for (auto& t : consumers) t.join();

  std::vector<char> seen(kProducers * kPerProducer, 0);
  std::size_t total = 0;
  for (const auto& v : taken)
    for (const int x : v) {
      ASSERT_GE(x, 0);
      ASSERT_LT(x, kProducers * kPerProducer);
      ASSERT_EQ(seen[static_cast<std::size_t>(x)], 0) << "duplicated item " << x;
      seen[static_cast<std::size_t>(x)] = 1;
      ++total;
    }
  EXPECT_EQ(total, static_cast<std::size_t>(kProducers) * kPerProducer);
}

// Shedding mode never blocks and never loses the accounting: accepted +
// dropped adds up across racing producers.
TEST(RingStress, OfferAccountingAddsUp) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 10'000;
  Ring<int> ring(128);
  std::atomic<std::uint64_t> accepted{0};

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p)
    producers.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i)
        if (ring.offer(i) != 0) accepted.fetch_add(1);
    });
  std::atomic<std::uint64_t> consumed{0};
  std::thread consumer([&] {
    while (ring.pop()) consumed.fetch_add(1);
  });
  for (auto& t : producers) t.join();
  ring.close();
  consumer.join();

  EXPECT_EQ(accepted.load() + ring.dropped(),
            static_cast<std::uint64_t>(kProducers) * kPerProducer);
  EXPECT_EQ(consumed.load(), accepted.load());
}

TEST(AtomicHistogram, CountsAndSnapshots) {
  AtomicHistogram h({0.0, 10.0, 100.0});
  h.add(-5.0);  // clamped into the floor bin
  h.add(3.0);
  h.add(50.0);
  h.add(1e9);  // unbounded top bin
  EXPECT_EQ(h.total(), 4u);
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count(0), 2u);
  EXPECT_EQ(snap.count(1), 1u);
  EXPECT_EQ(snap.count(2), 1u);
}

TEST(AtomicHistogram, ConcurrentAddsAllLand) {
  AtomicHistogram h({0.0, 1.0, 2.0, 3.0});
  std::vector<std::thread> ts;
  for (int t = 0; t < 4; ++t)
    ts.emplace_back([&h] {
      for (int i = 0; i < 10'000; ++i) h.add(static_cast<double>(i % 4));
    });
  for (auto& t : ts) t.join();
  EXPECT_EQ(h.total(), 40'000u);
}

TEST(ServeMetrics, SnapshotReflectsHooks) {
  ServeMetrics m;
  m.on_submit(4);
  m.on_ingest(3);
  m.on_ingest(5);
  m.on_quarantine(1);
  m.on_shed(2);
  m.on_retry(3);
  m.on_watchdog_trip();
  m.on_processed(ServeMetrics::Clock::now());
  m.on_prediction(ServeMetrics::Clock::now());
  m.on_dedupe(4);
  m.on_out_of_order(1);
  m.stop();
  const auto s = m.snapshot();
  EXPECT_EQ(s.ingested, 4u);
  EXPECT_EQ(s.records_in, 2u);
  EXPECT_EQ(s.records_out, 1u);
  EXPECT_EQ(s.quarantined, 1u);
  EXPECT_EQ(s.shed, 2u);
  EXPECT_EQ(s.retries, 3u);
  EXPECT_EQ(s.watchdog_trips, 1u);
  EXPECT_EQ(s.predictions, 1u);
  EXPECT_EQ(s.dedupe_hits, 4u);
  EXPECT_EQ(s.out_of_order, 1u);
  EXPECT_GT(s.wall_seconds, 0.0);
  // 4 ingested == 1 out + 1 quarantined + 2 shed.
  EXPECT_TRUE(s.records_conserved());
  EXPECT_FALSE(m.text_report().empty());
}

TEST(ServeMetrics, DegradedModeAccumulatesTime) {
  ServeMetrics m;
  EXPECT_FALSE(m.degraded());
  m.set_degraded(true);
  m.set_degraded(true);  // idempotent
  EXPECT_TRUE(m.degraded());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  m.set_degraded(false);
  EXPECT_FALSE(m.degraded());
  const auto s = m.snapshot();
  EXPECT_FALSE(s.degraded);
  EXPECT_GT(s.degraded_seconds, 0.0);
  // Conservation trivially holds with no traffic.
  EXPECT_TRUE(s.records_conserved());
}

}  // namespace
