// Serving-layer primitives under contention: FIFO and close semantics of
// the bounded MPMC ring and of the lock-free per-shard SpscRing (wrap
// around, overflow policies, close-while-full, 1P1C stress),
// no-loss/no-duplication under producer/consumer hammering, the
// drop-with-counter overflow policy, and the striped lock-free metrics
// recorders. This is the file CI additionally runs under ASan/UBSan and
// ThreadSanitizer.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

#include "serve/metrics.hpp"
#include "serve/ring.hpp"
#include "serve/spsc_ring.hpp"

namespace {

using namespace elsa::serve;

TEST(Ring, FifoSingleThread) {
  Ring<int> ring(4);
  EXPECT_EQ(ring.push(1), 1u);
  EXPECT_EQ(ring.push(2), 2u);
  EXPECT_EQ(ring.size(), 2u);
  EXPECT_EQ(ring.pop(), 1);
  EXPECT_EQ(ring.pop(), 2);
  EXPECT_EQ(ring.try_pop(), std::nullopt);
}

TEST(Ring, OfferDropsAndCountsOnOverflow) {
  Ring<int> ring(8);
  std::size_t accepted = 0;
  for (int i = 0; i < 100; ++i) accepted += ring.offer(i) != 0;
  EXPECT_EQ(accepted, 8u);
  EXPECT_EQ(ring.dropped(), 92u);
  // FIFO of the survivors.
  for (int i = 0; i < 8; ++i) EXPECT_EQ(ring.pop(), i);
}

TEST(Ring, CloseWakesConsumersAndDrains) {
  Ring<int> ring(4);
  ring.push(7);
  ring.close();
  EXPECT_EQ(ring.push(8), 0u);   // rejected after close
  EXPECT_EQ(ring.offer(9), 0u);  // counted as a drop
  EXPECT_EQ(ring.pop(), 7);      // queued items remain poppable
  EXPECT_EQ(ring.pop(), std::nullopt);
}

TEST(Ring, CloseUnblocksWaitingConsumer) {
  Ring<int> ring(2);
  std::thread consumer([&] { EXPECT_EQ(ring.pop(), std::nullopt); });
  ring.close();
  consumer.join();
}

TEST(Ring, PopAllDrainsInOrder) {
  Ring<int> ring(16);
  for (int i = 0; i < 10; ++i) ring.push(i);
  std::vector<int> out;
  EXPECT_TRUE(ring.pop_all(out));
  ASSERT_EQ(out.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i);
  ring.close();
  EXPECT_FALSE(ring.pop_all(out));
}

// The drop-oldest overflow policy: a full ring evicts its head to admit
// the newcomer, reporting the eviction so the caller can account it shed.
TEST(Ring, PushEvictDisplacesOldest) {
  Ring<int> ring(4);
  for (int i = 0; i < 4; ++i) EXPECT_GT(ring.push_evict(i), 0u);
  EXPECT_EQ(ring.evicted(), 0u);

  bool kicked = false;
  EXPECT_GT(ring.push_evict(4, &kicked), 0u);  // displaces 0
  EXPECT_TRUE(kicked);
  EXPECT_GT(ring.push_evict(5, &kicked), 0u);  // displaces 1
  EXPECT_TRUE(kicked);
  EXPECT_EQ(ring.evicted(), 2u);
  EXPECT_EQ(ring.size(), 4u);

  // The freshest window survives, still FIFO.
  for (int i = 2; i < 6; ++i) EXPECT_EQ(ring.pop(), i);

  kicked = true;
  EXPECT_GT(ring.push_evict(9, &kicked), 0u);  // room again: no eviction
  EXPECT_FALSE(kicked);

  ring.close();
  EXPECT_EQ(ring.push_evict(10, &kicked), 0u);  // only closed rejects
  EXPECT_FALSE(kicked);
  EXPECT_EQ(ring.evicted(), 2u);
}

// The acceptance property for the ingest spine: under multi-producer,
// multi-consumer hammering with blocking push, every item comes out exactly
// once.
TEST(RingStress, MpmcNoLossNoDuplication) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 3;
  constexpr int kPerProducer = 20'000;
  Ring<int> ring(64);

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p)
    producers.emplace_back([&ring, p] {
      for (int i = 0; i < kPerProducer; ++i)
        ASSERT_GT(ring.push(p * kPerProducer + i), 0u);
    });

  std::vector<std::vector<int>> taken(kConsumers);
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c)
    consumers.emplace_back([&ring, &taken, c] {
      while (auto v = ring.pop()) taken[static_cast<std::size_t>(c)].push_back(*v);
    });

  for (auto& t : producers) t.join();
  ring.close();
  for (auto& t : consumers) t.join();

  std::vector<char> seen(kProducers * kPerProducer, 0);
  std::size_t total = 0;
  for (const auto& v : taken)
    for (const int x : v) {
      ASSERT_GE(x, 0);
      ASSERT_LT(x, kProducers * kPerProducer);
      ASSERT_EQ(seen[static_cast<std::size_t>(x)], 0) << "duplicated item " << x;
      seen[static_cast<std::size_t>(x)] = 1;
      ++total;
    }
  EXPECT_EQ(total, static_cast<std::size_t>(kProducers) * kPerProducer);
}

// Shedding mode never blocks and never loses the accounting: accepted +
// dropped adds up across racing producers.
TEST(RingStress, OfferAccountingAddsUp) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 10'000;
  Ring<int> ring(128);
  std::atomic<std::uint64_t> accepted{0};

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p)
    producers.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i)
        if (ring.offer(i) != 0) accepted.fetch_add(1);
    });
  std::atomic<std::uint64_t> consumed{0};
  std::thread consumer([&] {
    while (ring.pop()) consumed.fetch_add(1);
  });
  for (auto& t : producers) t.join();
  ring.close();
  consumer.join();

  EXPECT_EQ(accepted.load() + ring.dropped(),
            static_cast<std::uint64_t>(kProducers) * kPerProducer);
  EXPECT_EQ(consumed.load(), accepted.load());
}

// ---------------------------------------------------------------------------
// SpscRing: the lock-free per-shard ingest lane.

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(4).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(5).capacity(), 8u);
  EXPECT_EQ(SpscRing<int>(1000).capacity(), 1024u);
  EXPECT_THROW(SpscRing<int>(0), std::invalid_argument);
}

// Several full fill/drain cycles drive the cursors well past the capacity,
// exercising the slot sequence-number wrap-around the masking relies on.
TEST(SpscRing, FifoSurvivesWrapAround) {
  SpscRing<int> ring(4);
  int next_in = 0, next_out = 0;
  for (int cycle = 0; cycle < 10; ++cycle) {
    for (int i = 0; i < 4; ++i) EXPECT_GT(ring.push(next_in++), 0u);
    EXPECT_EQ(ring.size(), 4u);
    EXPECT_EQ(ring.push_evict(next_in), 4u);  // full: evicts next_out
    ++next_in;
    ++next_out;
    for (int i = 0; i < 4; ++i) {
      auto v = ring.try_pop();
      ASSERT_TRUE(v.has_value());
      EXPECT_EQ(*v, next_out++);
    }
    EXPECT_EQ(ring.try_pop(), std::nullopt);
  }
  EXPECT_EQ(ring.evicted(), 10u);
}

TEST(SpscRing, OfferDropsAndCountsOnOverflow) {
  SpscRing<int> ring(8);
  std::size_t accepted = 0;
  for (int i = 0; i < 100; ++i) accepted += ring.offer(i) != 0;
  EXPECT_EQ(accepted, 8u);
  EXPECT_EQ(ring.dropped(), 92u);
  // FIFO of the survivors.
  for (int i = 0; i < 8; ++i) EXPECT_EQ(ring.try_pop(), i);
}

// Same contract as the mutex ring: a full ring displaces its OLDEST item
// (counted, reported), never the newcomer; only close rejects.
TEST(SpscRing, PushEvictDisplacesOldest) {
  SpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) EXPECT_GT(ring.push_evict(i), 0u);
  EXPECT_EQ(ring.evicted(), 0u);

  bool kicked = false;
  EXPECT_GT(ring.push_evict(4, &kicked), 0u);  // displaces 0
  EXPECT_TRUE(kicked);
  EXPECT_GT(ring.push_evict(5, &kicked), 0u);  // displaces 1
  EXPECT_TRUE(kicked);
  EXPECT_EQ(ring.evicted(), 2u);
  EXPECT_EQ(ring.size(), 4u);

  // The freshest window survives, still FIFO.
  for (int i = 2; i < 6; ++i) EXPECT_EQ(ring.try_pop(), i);

  kicked = true;
  EXPECT_GT(ring.push_evict(9, &kicked), 0u);  // room again: no eviction
  EXPECT_FALSE(kicked);

  ring.close();
  EXPECT_EQ(ring.push_evict(10, &kicked), 0u);  // only closed rejects
  EXPECT_FALSE(kicked);
  EXPECT_EQ(ring.evicted(), 2u);
}

// close() while a producer is blocked in push() on a full ring: the
// producer unblocks with 0 (item not enqueued), queued items stay
// poppable, and pop_wait reports closed-and-drained.
TEST(SpscRing, CloseWhileFullUnblocksProducer) {
  SpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) ASSERT_GT(ring.push(i), 0u);

  std::atomic<bool> blocked_push_returned{false};
  std::thread producer([&] {
    EXPECT_EQ(ring.push(99), 0u);  // full -> blocks -> close fails it
    blocked_push_returned.store(true);
  });
  // Give the producer time to actually block on the full ring.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(blocked_push_returned.load());
  ring.close();
  producer.join();
  EXPECT_TRUE(blocked_push_returned.load());

  std::vector<int> out;
  EXPECT_TRUE(ring.pop_wait(out, 64));  // drains the 4 survivors...
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_FALSE(ring.pop_wait(out, 64));  // ...then reports closed+empty
  EXPECT_EQ(ring.offer(7), 0u);          // closed: counted as a drop
  EXPECT_EQ(ring.dropped(), 1u);
}

// The deployed topology: one producer, one consumer, batched pops. Every
// item arrives exactly once, in order. (CI also runs this under TSan —
// it is the data-race acceptance test for the Vyukov slot protocol.)
TEST(SpscRingStress, SingleProducerSingleConsumerExactFifo) {
  constexpr int kItems = 200'000;
  SpscRing<int> ring(1024);

  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) ASSERT_GT(ring.push(i), 0u);
    ring.close();
  });

  std::vector<int> got;
  got.reserve(kItems);
  std::vector<int> buf;
  while (ring.pop_wait(buf, 64)) {
    got.insert(got.end(), buf.begin(), buf.end());
    buf.clear();
  }
  producer.join();

  ASSERT_EQ(got.size(), static_cast<std::size_t>(kItems));
  for (int i = 0; i < kItems; ++i) ASSERT_EQ(got[static_cast<std::size_t>(i)], i);
}

// submit() is a public thread-safe API, so the ring must also hold up
// under multi-producer shedding: accepted + dropped adds up exactly, and
// consumers see each accepted item once.
TEST(SpscRingStress, MultiProducerOfferAccountingAddsUp) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 10'000;
  SpscRing<int> ring(128);
  std::atomic<std::uint64_t> accepted{0};

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p)
    producers.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i)
        if (ring.offer(i) != 0) accepted.fetch_add(1);
    });
  std::atomic<std::uint64_t> consumed{0};
  std::thread consumer([&] {
    std::vector<int> buf;
    while (ring.pop_wait(buf, 32)) {
      consumed.fetch_add(buf.size());
      buf.clear();
    }
  });
  for (auto& t : producers) t.join();
  ring.close();
  consumer.join();

  EXPECT_EQ(accepted.load() + ring.dropped(),
            static_cast<std::uint64_t>(kProducers) * kPerProducer);
  EXPECT_EQ(consumed.load(), accepted.load());
}

// push_evict racing a live consumer: every push lands (never rejected
// while open), and at the end every pushed item is accounted consumed or
// evicted — the eviction counter never over- or under-counts.
TEST(SpscRingStress, PushEvictAccountingUnderConcurrentConsumer) {
  constexpr int kItems = 50'000;
  SpscRing<int> ring(64);

  std::atomic<std::uint64_t> consumed{0};
  std::thread consumer([&] {
    std::vector<int> buf;
    while (ring.pop_wait(buf, 16)) {
      consumed.fetch_add(buf.size());
      buf.clear();
    }
  });

  for (int i = 0; i < kItems; ++i) ASSERT_GT(ring.push_evict(i), 0u);
  ring.close();
  consumer.join();

  EXPECT_EQ(consumed.load() + ring.evicted(),
            static_cast<std::uint64_t>(kItems));
}

// ---------------------------------------------------------------------------
// Striped metrics.

// More threads than stripes: increments collapse onto shared stripes
// without losing a single count.
TEST(StripedCounter, ConcurrentAddsSumExactly) {
  StripedCounter c;
  std::vector<std::thread> ts;
  for (int t = 0; t < 12; ++t)
    ts.emplace_back([&c] {
      for (int i = 0; i < 10'000; ++i) c.add();
    });
  for (auto& t : ts) t.join();
  EXPECT_EQ(c.read(), 120'000u);
  c.add(42);
  EXPECT_EQ(c.read(), 120'042u);
}

TEST(AtomicHistogram, CountsAndSnapshots) {
  AtomicHistogram h({0.0, 10.0, 100.0});
  h.add(-5.0);  // clamped into the floor bin
  h.add(3.0);
  h.add(50.0);
  h.add(1e9);  // unbounded top bin
  EXPECT_EQ(h.total(), 4u);
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count(0), 2u);
  EXPECT_EQ(snap.count(1), 1u);
  EXPECT_EQ(snap.count(2), 1u);
}

TEST(AtomicHistogram, ConcurrentAddsAllLand) {
  AtomicHistogram h({0.0, 1.0, 2.0, 3.0});
  std::vector<std::thread> ts;
  for (int t = 0; t < 4; ++t)
    ts.emplace_back([&h] {
      for (int i = 0; i < 10'000; ++i) h.add(static_cast<double>(i % 4));
    });
  for (auto& t : ts) t.join();
  EXPECT_EQ(h.total(), 40'000u);
}

TEST(ServeMetrics, SnapshotReflectsHooks) {
  ServeMetrics m;
  m.on_submit(4);
  m.on_ingest(3);
  m.on_ingest(5);
  m.on_quarantine(1);
  m.on_shed(2);
  m.on_retry(3);
  m.on_watchdog_trip();
  m.on_processed(ServeMetrics::Clock::now());
  m.on_prediction(ServeMetrics::Clock::now());
  m.on_dedupe(4);
  m.on_out_of_order(1);
  m.stop();
  const auto s = m.snapshot();
  EXPECT_EQ(s.ingested, 4u);
  EXPECT_EQ(s.records_in, 2u);
  EXPECT_EQ(s.records_out, 1u);
  EXPECT_EQ(s.quarantined, 1u);
  EXPECT_EQ(s.shed, 2u);
  EXPECT_EQ(s.retries, 3u);
  EXPECT_EQ(s.watchdog_trips, 1u);
  EXPECT_EQ(s.predictions, 1u);
  EXPECT_EQ(s.dedupe_hits, 4u);
  EXPECT_EQ(s.out_of_order, 1u);
  EXPECT_GT(s.wall_seconds, 0.0);
  // 4 ingested == 1 out + 1 quarantined + 2 shed.
  EXPECT_TRUE(s.records_conserved());
  EXPECT_FALSE(m.text_report().empty());
}

TEST(ServeMetrics, DegradedModeAccumulatesTime) {
  ServeMetrics m;
  EXPECT_FALSE(m.degraded());
  m.set_degraded(true);
  m.set_degraded(true);  // idempotent
  EXPECT_TRUE(m.degraded());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  m.set_degraded(false);
  EXPECT_FALSE(m.degraded());
  const auto s = m.snapshot();
  EXPECT_FALSE(s.degraded);
  EXPECT_GT(s.degraded_seconds, 0.0);
  // Conservation trivially holds with no traffic.
  EXPECT_TRUE(s.records_conserved());
}

}  // namespace
