// The fault-injection layer's contract: plans parse (and re-parse from
// their own to_string), the injector's schedule is a pure function of
// (seed, arrival ordinal), every kind does what its clause says, the
// injector-side conservation identity holds after flush, and the bendable
// clock really bends (including backwards — the non-monotone reading the
// watchdog must survive).
#include "faultinject/clock.hpp"
#include "faultinject/injector.hpp"
#include "faultinject/plan.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace {

using namespace elsa;
using faultinject::FaultClock;
using faultinject::FaultInjector;
using faultinject::FaultKind;
using faultinject::FaultPlan;

std::vector<simlog::LogRecord> synthetic_stream(std::size_t n) {
  std::vector<simlog::LogRecord> recs(n);
  for (std::size_t i = 0; i < n; ++i) {
    recs[i].time_ms = 1'000'000 + static_cast<std::int64_t>(i) * 250;
    recs[i].node_id = static_cast<std::int32_t>(i % 64);
    recs[i].severity = simlog::Severity::Warning;
    recs[i].true_template = static_cast<std::uint16_t>(i % 7);
    recs[i].message = "synthetic record " + std::to_string(i);
  }
  return recs;
}

/// Run the whole stream through an injector (including flush) and return
/// the delivered sequence.
std::vector<simlog::LogRecord> run_stream(
    FaultInjector& inj, const std::vector<simlog::LogRecord>& in) {
  std::vector<simlog::LogRecord> out;
  for (const auto& rec : in) inj.ingest(rec, out);
  inj.flush(out);
  return out;
}

bool same_record(const simlog::LogRecord& a, const simlog::LogRecord& b) {
  return a.time_ms == b.time_ms && a.node_id == b.node_id &&
         a.severity == b.severity && a.true_template == b.true_template &&
         a.fault_id == b.fault_id && a.message == b.message;
}

// ---------------------------------------------------------------- plans --

TEST(FaultPlan, EmptyForms) {
  EXPECT_TRUE(FaultPlan().empty());
  EXPECT_TRUE(FaultPlan::parse("", 1).empty());
  EXPECT_TRUE(FaultPlan::parse("none", 1).empty());
  EXPECT_EQ(FaultPlan().to_string(), "<empty>");
}

TEST(FaultPlan, ParsesEveryClauseKind) {
  const FaultPlan p = FaultPlan::parse(
      "drop=0.1, dup=0.2, corrupt=0.05, reorder=0.3:12, skew=0.4:5000, "
      "stall=2@100:250, failworker=1@40",
      7);
  EXPECT_EQ(p.seed(), 7u);
  ASSERT_EQ(p.specs().size(), 7u);

  const auto find = [&](FaultKind k) {
    const auto it =
        std::find_if(p.specs().begin(), p.specs().end(),
                     [k](const auto& s) { return s.kind == k; });
    EXPECT_NE(it, p.specs().end()) << faultinject::to_string(k);
    return *it;
  };
  EXPECT_DOUBLE_EQ(find(FaultKind::kDrop).rate, 0.1);
  EXPECT_DOUBLE_EQ(find(FaultKind::kDuplicate).rate, 0.2);
  EXPECT_DOUBLE_EQ(find(FaultKind::kCorrupt).rate, 0.05);
  const auto reorder = find(FaultKind::kReorder);
  EXPECT_DOUBLE_EQ(reorder.rate, 0.3);
  EXPECT_EQ(reorder.depth, 12u);
  const auto skew = find(FaultKind::kSkew);
  EXPECT_DOUBLE_EQ(skew.rate, 0.4);
  EXPECT_EQ(skew.skew_ms, 5000);
  const auto stall = find(FaultKind::kStallShard);
  EXPECT_EQ(stall.shard, 2u);
  EXPECT_EQ(stall.at_record, 100u);
  EXPECT_EQ(stall.stall_ms, 250);
  const auto fail = find(FaultKind::kFailWorker);
  EXPECT_EQ(fail.shard, 1u);
  EXPECT_EQ(fail.at_record, 40u);
}

TEST(FaultPlan, ToStringRoundTrips) {
  const std::string text =
      "drop=0.1, dup=0.2, reorder=0.3:12, skew=0.4:5000, stall=2@100:250, "
      "failworker=1@40";
  const FaultPlan a = FaultPlan::parse(text, 99);
  const FaultPlan b = FaultPlan::parse(a.to_string(), 99);
  ASSERT_EQ(b.specs().size(), a.specs().size());
  for (std::size_t i = 0; i < a.specs().size(); ++i) {
    EXPECT_EQ(b.specs()[i].kind, a.specs()[i].kind);
    EXPECT_DOUBLE_EQ(b.specs()[i].rate, a.specs()[i].rate);
    EXPECT_EQ(b.specs()[i].skew_ms, a.specs()[i].skew_ms);
    EXPECT_EQ(b.specs()[i].depth, a.specs()[i].depth);
    EXPECT_EQ(b.specs()[i].shard, a.specs()[i].shard);
    EXPECT_EQ(b.specs()[i].at_record, a.specs()[i].at_record);
    EXPECT_EQ(b.specs()[i].stall_ms, a.specs()[i].stall_ms);
  }
}

TEST(FaultPlan, AllExpandsToEveryKind) {
  const FaultPlan p = FaultPlan::parse("all", 42);
  EXPECT_FALSE(p.empty());
  std::vector<FaultKind> kinds;
  for (const auto& s : p.specs()) kinds.push_back(s.kind);
  for (const FaultKind k :
       {FaultKind::kDrop, FaultKind::kDuplicate, FaultKind::kCorrupt,
        FaultKind::kReorder, FaultKind::kSkew, FaultKind::kStallShard,
        FaultKind::kFailWorker}) {
    EXPECT_NE(std::find(kinds.begin(), kinds.end(), k), kinds.end())
        << faultinject::to_string(k);
  }
}

TEST(FaultPlan, MalformedClausesThrowWithGrammar) {
  for (const char* bad :
       {"bogus=1", "drop", "drop=1.5", "drop=-0.1", "reorder=0.1:zero",
        "stall=1@x:5", "stall=1", "failworker=@3", "skew=0.1"}) {
    EXPECT_THROW(
        {
          try {
            FaultPlan::parse(bad, 0);
          } catch (const std::runtime_error& e) {
            // Every parse error embeds the grammar so `elsa chaos` users
            // see the fix inline.
            EXPECT_NE(std::string(e.what()).find("drop=RATE"),
                      std::string::npos)
                << bad << " -> " << e.what();
            throw;
          }
        },
        std::runtime_error)
        << bad;
  }
}

TEST(FaultPlan, ServeSideHooksAreExactMatch) {
  const FaultPlan p =
      FaultPlan::parse("stall=1@50:200, stall=1@50:100, failworker=0@9", 3);
  // Sums overlapping stalls at the trigger point, zero everywhere else.
  EXPECT_EQ(p.stall_ms_at(1, 50), 300);
  EXPECT_EQ(p.stall_ms_at(1, 49), 0);
  EXPECT_EQ(p.stall_ms_at(1, 51), 0);
  EXPECT_EQ(p.stall_ms_at(0, 50), 0);
  EXPECT_TRUE(p.worker_fails_at(0, 9));
  EXPECT_FALSE(p.worker_fails_at(0, 8));
  EXPECT_FALSE(p.worker_fails_at(0, 10));  // no re-fire after restart
  EXPECT_FALSE(p.worker_fails_at(1, 9));
}

// ------------------------------------------------------------- injector --

TEST(FaultInjector, EmptyPlanIsStrictPassThrough) {
  const FaultPlan plan;
  FaultInjector inj(plan);
  const auto in = synthetic_stream(200);
  const auto out = run_stream(inj, in);
  ASSERT_EQ(out.size(), in.size());
  for (std::size_t i = 0; i < in.size(); ++i)
    EXPECT_TRUE(same_record(out[i], in[i])) << "record " << i;
  EXPECT_EQ(inj.stats().seen, 200u);
  EXPECT_EQ(inj.stats().delivered, 200u);
  EXPECT_EQ(inj.stats().dropped, 0u);
}

TEST(FaultInjector, SameSeedSameSchedule) {
  const FaultPlan plan = FaultPlan::parse("all", 1234);
  FaultInjector a(plan);
  FaultInjector b(plan);
  const auto in = synthetic_stream(2000);
  const auto out_a = run_stream(a, in);
  const auto out_b = run_stream(b, in);
  ASSERT_EQ(out_a.size(), out_b.size());
  for (std::size_t i = 0; i < out_a.size(); ++i)
    ASSERT_TRUE(same_record(out_a[i], out_b[i])) << "record " << i;
  EXPECT_EQ(a.stats().dropped, b.stats().dropped);
  EXPECT_EQ(a.stats().duplicated, b.stats().duplicated);
  EXPECT_EQ(a.stats().corrupted, b.stats().corrupted);
  EXPECT_EQ(a.stats().reordered, b.stats().reordered);
  EXPECT_EQ(a.stats().skewed, b.stats().skewed);
}

TEST(FaultInjector, DifferentSeedDifferentSchedule) {
  const auto in = synthetic_stream(2000);
  const FaultPlan p1 = FaultPlan::parse("drop=0.2", 1);
  const FaultPlan p2 = FaultPlan::parse("drop=0.2", 2);
  FaultInjector a(p1);
  FaultInjector b(p2);
  const auto out_a = run_stream(a, in);
  const auto out_b = run_stream(b, in);
  // Same rate, different coin flips: the surviving subsequences differ.
  bool differ = out_a.size() != out_b.size();
  for (std::size_t i = 0; !differ && i < out_a.size(); ++i)
    differ = !same_record(out_a[i], out_b[i]);
  EXPECT_TRUE(differ);
}

TEST(FaultInjector, DropRateOneDropsEverything) {
  const FaultPlan plan = FaultPlan::parse("drop=1", 5);
  FaultInjector inj(plan);
  const auto out = run_stream(inj, synthetic_stream(100));
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(inj.stats().dropped, 100u);
  EXPECT_EQ(inj.stats().delivered, 0u);
}

TEST(FaultInjector, DupRateOneDoublesEverything) {
  const FaultPlan plan = FaultPlan::parse("dup=1", 5);
  FaultInjector inj(plan);
  const auto in = synthetic_stream(100);
  const auto out = run_stream(inj, in);
  ASSERT_EQ(out.size(), 200u);
  EXPECT_EQ(inj.stats().duplicated, 100u);
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_TRUE(same_record(out[2 * i], in[i]));
    EXPECT_TRUE(same_record(out[2 * i + 1], in[i]));
  }
}

TEST(FaultInjector, CorruptedRecordsAreStructurallyInvalid) {
  const FaultPlan plan = FaultPlan::parse("corrupt=1", 5);
  FaultInjector inj(plan);
  const auto out = run_stream(inj, synthetic_stream(100));
  ASSERT_EQ(out.size(), 100u);
  EXPECT_EQ(inj.stats().corrupted, 100u);
  // Every mangle must be one the service validator rejects: node id out of
  // the topology's range (or below the -1 sentinel) or a negative time.
  for (const auto& rec : out) {
    const bool invalid =
        rec.node_id < -1 || rec.node_id >= 1024 || rec.time_ms < 0;
    EXPECT_TRUE(invalid) << "node=" << rec.node_id << " t=" << rec.time_ms;
  }
}

TEST(FaultInjector, ReorderHoldsBackByDepth) {
  const FaultPlan plan = FaultPlan::parse("reorder=1:4", 5);
  FaultInjector inj(plan);
  const auto in = synthetic_stream(20);
  std::vector<simlog::LogRecord> out;
  inj.ingest(in[0], out);
  EXPECT_TRUE(out.empty());  // held, not delivered
  for (std::size_t i = 1; i <= 4; ++i) inj.ingest(in[i], out);
  // Record 0 was held at seen=1 with depth 4, so it frees once seen >= 5.
  ASSERT_FALSE(out.empty());
  EXPECT_TRUE(same_record(out[0], in[0]));
  inj.flush(out);
  EXPECT_EQ(out.size(), 5u);
  EXPECT_EQ(inj.stats().reordered, 5u);
}

TEST(FaultInjector, SkewStaysWithinBound) {
  constexpr std::int64_t kSkewMs = 4000;
  const FaultPlan plan = FaultPlan::parse("skew=1:4000", 5);
  FaultInjector inj(plan);
  const auto in = synthetic_stream(500);
  const auto out = run_stream(inj, in);
  ASSERT_EQ(out.size(), in.size());
  EXPECT_EQ(inj.stats().skewed, in.size());
  bool any_moved = false;
  for (std::size_t i = 0; i < in.size(); ++i) {
    const std::int64_t delta = out[i].time_ms - in[i].time_ms;
    EXPECT_GE(delta, -kSkewMs);
    EXPECT_LE(delta, kSkewMs);
    any_moved = any_moved || delta != 0;
  }
  EXPECT_TRUE(any_moved);
}

TEST(FaultInjector, ConservationHoldsAfterFlush) {
  for (const char* plan_text :
       {"all", "drop=0.3", "dup=0.5", "reorder=0.8:16",
        "drop=0.2, dup=0.2, corrupt=0.2, reorder=0.5:32, skew=0.3:60000"}) {
    const FaultPlan plan = FaultPlan::parse(plan_text, 77);
    FaultInjector inj(plan);
    const auto out = run_stream(inj, synthetic_stream(3000));
    const auto& s = inj.stats();
    EXPECT_EQ(s.seen + s.duplicated, s.delivered + s.dropped) << plan_text;
    EXPECT_EQ(out.size(), s.delivered) << plan_text;
  }
}

// ---------------------------------------------------------------- clock --

TEST(FaultClock, ManualMovesOnlyWhenAdvanced) {
  FaultClock clk = FaultClock::manual();
  EXPECT_TRUE(clk.is_manual());
  const auto t0 = clk.now();
  EXPECT_EQ(clk.now(), t0);  // no wall-time drift
  clk.advance(std::chrono::milliseconds(1500));
  EXPECT_EQ(clk.now() - t0, std::chrono::milliseconds(1500));
}

TEST(FaultClock, NegativeAdvanceGoesBackwards) {
  FaultClock clk = FaultClock::manual();
  clk.advance(std::chrono::seconds(10));
  const auto t0 = clk.now();
  clk.advance(-std::chrono::seconds(4));
  EXPECT_EQ(t0 - clk.now(), std::chrono::seconds(4));
}

TEST(FaultClock, RealModeTracksSteadyClockPlusOffset) {
  FaultClock clk;
  EXPECT_FALSE(clk.is_manual());
  const auto before = FaultClock::Clock::now();
  clk.advance(std::chrono::hours(1));
  const auto shifted = clk.now();
  EXPECT_GE(shifted - before, std::chrono::minutes(59));
}

}  // namespace
