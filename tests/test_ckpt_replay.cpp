// Prediction-replay checkpoint simulation tests: hand-built timelines with
// known outcomes, and consistency with the analytical waste model on a
// real campaign's prediction stream.
#include <gtest/gtest.h>

#include "elsa/ckpt_replay.hpp"
#include "elsa/pipeline.hpp"
#include "simlog/scenario.hpp"

namespace {

using namespace elsa;
using core::Prediction;
using simlog::GroundTruthFault;

GroundTruthFault fault_at(std::uint32_t id, std::int64_t fail_ms) {
  GroundTruthFault f;
  f.id = id;
  f.fail_time_ms = fail_ms;
  f.category = "test";
  return f;
}

core::ReplayConfig window(std::int64_t t0_ms, std::int64_t t1_ms,
                          double interval_s = 0.0) {
  core::ReplayConfig cfg;
  cfg.params = {60.0, 300.0, 60.0, 86'400.0};  // C=1min R=5min D=1min
  cfg.t_begin_ms = t0_ms;
  cfg.t_end_ms = t1_ms;
  cfg.interval_s = interval_s;
  return cfg;
}

TEST(CkptReplay, NoEventsOnlyPeriodicCheckpoints) {
  core::EvalResult eval;  // empty outcome vectors match empty inputs
  const auto r = core::replay_checkpointing({}, {}, eval,
                                            window(0, 3'600'000, 600.0));
  EXPECT_EQ(r.failures, 0u);
  // One hour at a 10-minute interval: checkpoints at 600, 1200, ..., 3600 -> 5
  // full intervals inside (the last lands exactly at the window end).
  EXPECT_GE(r.checkpoints, 5u);
  EXPECT_LE(r.checkpoints, 6u);
  EXPECT_NEAR(r.waste(),
              static_cast<double>(r.checkpoints) * 60.0 / 3600.0, 1e-9);
}

TEST(CkptReplay, MissedFailureLosesWorkSinceCheckpoint) {
  const std::vector<GroundTruthFault> faults{fault_at(1, 900'000)};
  core::EvalResult eval;
  eval.fault_predicted = {0};
  const auto r = core::replay_checkpointing(
      faults, {}, eval, window(0, 3'600'000, /*interval=*/600.0));
  EXPECT_EQ(r.failures, 1u);
  EXPECT_EQ(r.predicted_in_time, 0u);
  // Failure at 900 s; last checkpoint at 600 s -> 300 s of work lost.
  EXPECT_NEAR(r.lost_work_s, 300.0, 1e-9);
  EXPECT_NEAR(r.restart_cost_s, 360.0, 1e-9);
}

TEST(CkptReplay, PredictedFailureLosesNoWork) {
  const std::vector<GroundTruthFault> faults{fault_at(1, 900'000)};
  core::EvalResult eval;
  eval.fault_predicted = {1};
  eval.fault_alarm_time_ms = {800'000};
  const auto r = core::replay_checkpointing(faults, {}, eval,
                                            window(0, 3'600'000, 600.0));
  EXPECT_EQ(r.predicted_in_time, 1u);
  EXPECT_DOUBLE_EQ(r.lost_work_s, 0.0);
  EXPECT_NEAR(r.restart_cost_s, 360.0, 1e-9);
}

TEST(CkptReplay, FalseAlarmCostsOneCheckpoint) {
  Prediction fp;
  fp.issue_time_ms = 1'000'000;
  core::EvalResult eval;
  eval.prediction_correct = {0};
  const auto with_fp = core::replay_checkpointing(
      {}, {fp}, eval, window(0, 3'600'000, 600.0));
  core::EvalResult none;
  const auto without = core::replay_checkpointing(
      {}, {}, none, window(0, 3'600'000, 600.0));
  // The false alarm adds a checkpoint but also resets the periodic phase;
  // total checkpoint cost grows by at most one C and at least stays equal.
  EXPECT_GE(with_fp.false_alarms, 1u);
  EXPECT_GE(with_fp.checkpoint_cost_s, without.checkpoint_cost_s);
  EXPECT_LE(with_fp.checkpoint_cost_s,
            without.checkpoint_cost_s + 60.0 + 1e-9);
}

TEST(CkptReplay, PredictionReducesWasteOnRealCampaign) {
  auto sc = simlog::make_bluegene_scenario(2012, 10.0, 60);
  const auto trace = sc.generator.generate(sc.config);
  core::PipelineConfig cfg;
  const auto res =
      core::run_experiment(trace, 4.0, core::Method::Hybrid, cfg);

  core::ReplayConfig rc;
  // A harsher machine than the trace's real MTTF so waste is visible:
  // pretend each failure costs a full global restart.
  rc.params = {60.0, 300.0, 60.0, 0.0};
  rc.params.mttf = 1.0;  // unused (interval from observed rate)
  rc.t_begin_ms = trace.t_begin_ms + 4 * 86'400'000LL;
  rc.t_end_ms = trace.t_end_ms;

  const auto with_pred = core::replay_checkpointing(
      trace.faults, res.predictions, res.eval, rc);

  // Baseline: same failures, no prediction at all.
  core::EvalResult blind;
  blind.fault_predicted.assign(trace.faults.size(), 0);
  blind.fault_alarm_time_ms.assign(trace.faults.size(), -1);
  const auto without =
      core::replay_checkpointing(trace.faults, {}, blind, rc);

  EXPECT_GT(with_pred.predicted_in_time, 0u);
  EXPECT_LT(with_pred.waste(), without.waste());
  EXPECT_GT(with_pred.useful_s, without.useful_s);
}

TEST(CkptReplay, RejectsMismatchedEval) {
  core::EvalResult eval;
  eval.fault_predicted = {1, 0};  // two flags, one fault
  EXPECT_THROW(core::replay_checkpointing({fault_at(1, 5'000)}, {}, eval,
                                          window(0, 10'000)),
               std::invalid_argument);
  core::EvalResult ok;
  EXPECT_THROW(core::replay_checkpointing({}, {}, ok, window(10, 10)),
               std::invalid_argument);
}

}  // namespace
