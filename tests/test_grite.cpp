// Gradual-itemset miner tests: support counting, significance, level-wise
// growth of a planted three-event cascade, delay consistency, subsumption
// filtering, and serial/parallel equivalence.
#include <gtest/gtest.h>

#include "elsa/grite.hpp"
#include "signalkit/xcorr.hpp"
#include "util/rng.hpp"

namespace {

using namespace elsa::core;
using elsa::sigkit::OutlierStream;
using elsa::sigkit::PairCorrelation;
using elsa::sigkit::XcorrConfig;
using elsa::util::Rng;

/// Build streams with a planted cascade S0 -> S1 (+d1) -> S2 (+d2) over
/// `occurrences` instances plus uniform noise outliers in each stream.
std::vector<OutlierStream> planted_cascade(int occurrences, std::int32_t d1,
                                           std::int32_t d2, int noise,
                                           std::uint64_t seed,
                                           std::size_t total) {
  Rng rng(seed);
  std::vector<OutlierStream> streams(4);
  std::int32_t t = 50;
  for (int i = 0; i < occurrences; ++i) {
    streams[0].push_back(t);
    streams[1].push_back(t + d1);
    streams[2].push_back(t + d2);
    t += static_cast<std::int32_t>(rng.range(500, 900));
  }
  for (int i = 0; i < noise; ++i)
    for (std::size_t s = 0; s < streams.size(); ++s)
      streams[s].push_back(static_cast<std::int32_t>(rng.below(total)));
  for (auto& s : streams) {
    std::sort(s.begin(), s.end());
    s.erase(std::unique(s.begin(), s.end()), s.end());
  }
  return streams;
}

GriteConfig test_config(std::size_t total) {
  GriteConfig cfg;
  cfg.min_support = 3;
  cfg.min_confidence = 0.2;
  cfg.min_significance = 0.9;
  cfg.total_samples = total;
  return cfg;
}

std::vector<PairCorrelation> seed_pairs(
    const std::vector<OutlierStream>& streams, std::size_t total) {
  XcorrConfig xc;
  xc.total_samples = total;
  xc.min_support = 3;
  xc.min_confidence = 0.2;
  xc.min_significance = 0.9;
  xc.max_chance_pvalue = 1e-3;
  return correlate_all(streams, xc);
}

TEST(Grite, ItemsetSupportCountsAlignedOccurrences) {
  const auto streams = planted_cascade(10, 5, 12, 0, 1, 10000);
  const std::vector<ChainItem> items{{0, 0}, {1, 5}, {2, 12}};
  EXPECT_EQ(itemset_support(items, streams, 2), 10);
  const std::vector<ChainItem> wrong{{0, 0}, {1, 50}};
  EXPECT_EQ(itemset_support(wrong, streams, 2), 0);
}

TEST(Grite, SignificanceHighForPlantedLowForRandom) {
  const auto streams = planted_cascade(15, 5, 12, 0, 2, 15000);
  const std::vector<ChainItem> real{{0, 0}, {1, 5}, {2, 12}};
  EXPECT_GT(itemset_significance(real, streams, 2, 0.0, 15000), 0.99);
  const std::vector<ChainItem> fake{{0, 0}, {3, 7}};
  EXPECT_LT(itemset_significance(fake, streams, 2, 0.0, 15000), 0.9);
}

TEST(Grite, MinesPlantedThreeItemChain) {
  const std::size_t total = 20000;
  const auto streams = planted_cascade(12, 6, 15, 5, 3, total);
  const auto seeds = seed_pairs(streams, total);
  ASSERT_GE(seeds.size(), 2u);

  GriteStats stats;
  const auto chains =
      mine_gradual_itemsets(streams, seeds, test_config(total), &stats);
  EXPECT_GE(stats.levels_built, 2u);

  bool found3 = false;
  for (const auto& c : chains) {
    if (c.items.size() != 3) continue;
    if (c.items[0].signal == 0 && c.items[1].signal == 1 &&
        c.items[2].signal == 2) {
      found3 = true;
      EXPECT_NEAR(c.items[1].delay, 6, 3);
      EXPECT_NEAR(c.items[2].delay, 15, 3);
      EXPECT_GE(c.support, 10);
      EXPECT_GT(c.confidence, 0.5);
    }
  }
  EXPECT_TRUE(found3);
}

TEST(Grite, SubsumedPairsRemoved) {
  const std::size_t total = 20000;
  const auto streams = planted_cascade(12, 6, 15, 0, 4, total);
  const auto seeds = seed_pairs(streams, total);
  auto cfg = test_config(total);
  cfg.subsume_support_ratio = 0.6;
  GriteStats stats;
  const auto chains = mine_gradual_itemsets(streams, seeds, cfg, &stats);
  EXPECT_GT(stats.subsumed_removed, 0u);
  // The pair (0 -> 1) must be gone: the 3-chain covers it at full support.
  for (const auto& c : chains) {
    if (c.items.size() == 2 && c.items[0].signal == 0 &&
        c.items[1].signal == 1)
      FAIL() << "pair 0->1 should be subsumed by the 3-item chain";
  }
}

TEST(Grite, SubsumeFilterDisabled) {
  const std::size_t total = 20000;
  const auto streams = planted_cascade(12, 6, 15, 0, 5, total);
  const auto seeds = seed_pairs(streams, total);
  auto cfg = test_config(total);
  cfg.subsume_support_ratio = 0.0;
  GriteStats stats;
  const auto chains = mine_gradual_itemsets(streams, seeds, cfg, &stats);
  EXPECT_EQ(stats.subsumed_removed, 0u);
  bool pair01 = false;
  for (const auto& c : chains)
    pair01 |= c.items.size() == 2 && c.items[0].signal == 0 &&
              c.items[1].signal == 1;
  EXPECT_TRUE(pair01);
}

TEST(Grite, NoSeedsNoChains) {
  const auto streams = planted_cascade(12, 6, 15, 0, 6, 20000);
  const auto chains =
      mine_gradual_itemsets(streams, {}, test_config(20000), nullptr);
  EXPECT_TRUE(chains.empty());
}

TEST(Grite, MaxLevelCapsGrowth) {
  const std::size_t total = 20000;
  const auto streams = planted_cascade(12, 6, 15, 0, 7, total);
  const auto seeds = seed_pairs(streams, total);
  auto cfg = test_config(total);
  cfg.max_level = 2;  // pairs only
  const auto chains = mine_gradual_itemsets(streams, seeds, cfg, nullptr);
  for (const auto& c : chains) EXPECT_EQ(c.items.size(), 2u);
}

TEST(Grite, ParallelMatchesSerial) {
  const std::size_t total = 30000;
  const auto streams = planted_cascade(14, 4, 11, 8, 8, total);
  const auto seeds = seed_pairs(streams, total);
  auto cfg = test_config(total);
  cfg.threads = 1;
  const auto serial = mine_gradual_itemsets(streams, seeds, cfg, nullptr);
  cfg.threads = 4;
  const auto parallel = mine_gradual_itemsets(streams, seeds, cfg, nullptr);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i].items.size(), parallel[i].items.size());
    EXPECT_EQ(serial[i].support, parallel[i].support);
    for (std::size_t j = 0; j < serial[i].items.size(); ++j) {
      EXPECT_EQ(serial[i].items[j].signal, parallel[i].items[j].signal);
      EXPECT_EQ(serial[i].items[j].delay, parallel[i].items[j].delay);
    }
  }
}

TEST(Chain, SpanLeadAndPredicates) {
  Chain c;
  c.items = {{4, 0}, {9, 10}, {2, 25}};
  EXPECT_EQ(c.span(), 25);
  EXPECT_FALSE(c.predictive());  // failure_item unset
  c.failure_item = 2;
  EXPECT_TRUE(c.predictive());
  EXPECT_EQ(c.lead(), 25);
  c.failure_item = 0;
  EXPECT_FALSE(c.predictive());  // failure first: nothing precedes it
  EXPECT_EQ(to_string(c), "4 ->(10) 9 ->(15) 2");
}

}  // namespace
