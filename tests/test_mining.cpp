// Mining suite: the incremental miner's determinism contracts (chunked
// fold ≡ single fold, state save/load mid-stream ≡ uninterrupted, bounded
// candidate memory), the RcuHub hand-off (epoch bookkeeping, retired-list
// reclamation, a thread stress for TSan), and the MinerService-level
// online ≡ batch property the `elsa mine --check` CI gate enforces —
// identical model and publish-stream digests across shard counts, clean
// and under serve-side chaos.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "elsa/model_io.hpp"
#include "faultinject/plan.hpp"
#include "mining/miner.hpp"
#include "mining/service.hpp"
#include "serve/model_handle.hpp"
#include "serve/replayer.hpp"
#include "simlog/scenario.hpp"

namespace {

using namespace elsa;
using serve::ClassifiedEvent;

constexpr std::uint8_t kInfo = 0;
constexpr std::uint8_t kFatal = 4;

ClassifiedEvent ev(std::int64_t t_ms, std::uint32_t tmpl, std::uint8_t sev,
                   std::int32_t node = 0) {
  return ClassifiedEvent{t_ms, node, tmpl, sev};
}

/// A deterministic a -> b -> f cascade repeated `reps` times, 10 s apart
/// items, cascades 10 min apart (outside the pairing window).
std::vector<ClassifiedEvent> cascade_stream(int reps) {
  std::vector<ClassifiedEvent> out;
  for (int i = 0; i < reps; ++i) {
    const std::int64_t t0 = static_cast<std::int64_t>(i) * 600'000;
    out.push_back(ev(t0, 0, kInfo));
    out.push_back(ev(t0 + 10'000, 1, kInfo));
    out.push_back(ev(t0 + 30'000, 2, kFatal));
  }
  return out;
}

// ------------------------------------------------------ OnlineMiner -----

TEST(OnlineMiner, CanonicalOrderComparesAllFields) {
  EXPECT_TRUE(mining::canonical_less(ev(1, 0, 0), ev(2, 0, 0)));
  EXPECT_TRUE(mining::canonical_less(ev(1, 0, 0, 0), ev(1, 0, 0, 1)));
  EXPECT_TRUE(mining::canonical_less(ev(1, 0, 0), ev(1, 1, 0)));
  EXPECT_TRUE(mining::canonical_less(ev(1, 0, 0), ev(1, 0, 1)));
  EXPECT_FALSE(mining::canonical_less(ev(1, 0, 1), ev(1, 0, 1)));
}

TEST(OnlineMiner, MinesTheCascadeWithGriteConsistentDelays) {
  mining::OnlineMiner miner;
  for (const auto& e : cascade_stream(10)) miner.fold(e);
  const auto model = miner.build_model(nullptr);
  // (0,2) is subsumed by the delay-consistent 3-chain (0,1,2); (1,2)
  // survives as a bare pair. Emission order follows sorted pair keys.
  ASSERT_EQ(model.chains.size(), 2u);
  const auto& three = model.chains[0];
  ASSERT_EQ(three.items.size(), 3u);
  EXPECT_EQ(three.items[0].signal, 0u);
  EXPECT_EQ(three.items[1].signal, 1u);
  EXPECT_EQ(three.items[1].delay, 1);
  EXPECT_EQ(three.items[2].signal, 2u);
  EXPECT_EQ(three.items[2].delay, 3);
  EXPECT_EQ(three.support, 10);
  EXPECT_DOUBLE_EQ(three.confidence, 1.0);
  EXPECT_TRUE(three.predictive());
  const auto& two = model.chains[1];
  ASSERT_EQ(two.items.size(), 2u);
  EXPECT_EQ(two.items[0].signal, 1u);
  EXPECT_EQ(two.items[1].signal, 2u);
  EXPECT_EQ(two.items[1].delay, 2);
  // Profiles match the engine's on-demand synthesis exactly (Silent,
  // spike 0.5) so a hot swap cannot change detector behaviour.
  ASSERT_EQ(model.profiles.size(), 3u);
  for (const auto& p : model.profiles) {
    EXPECT_EQ(p.cls, sigkit::SignalClass::Silent);
    EXPECT_DOUBLE_EQ(p.spike_delta, 0.5);
  }
  EXPECT_EQ(model.tmpl_severity[2], simlog::Severity::Fatal);
}

TEST(OnlineMiner, BuildModelIsAPureFunctionOfState) {
  mining::OnlineMiner miner;
  for (const auto& e : cascade_stream(7)) miner.fold(e);
  const std::uint64_t d1 = core::model_digest(miner.build_model(nullptr));
  const std::uint64_t d2 = core::model_digest(miner.build_model(nullptr));
  EXPECT_EQ(d1, d2);
}

TEST(OnlineMiner, StateRoundTripMidStreamEqualsUninterrupted) {
  const auto stream = cascade_stream(20);
  mining::OnlineMiner straight;
  for (const auto& e : stream) straight.fold(e);

  // Fold half, save, reload into a FRESH miner, fold the rest.
  mining::OnlineMiner first_half;
  const std::size_t half = stream.size() / 2;
  for (std::size_t i = 0; i < half; ++i) first_half.fold(stream[i]);
  std::stringstream state;
  first_half.save_state(state);
  mining::OnlineMiner resumed;
  resumed.load_state(state);
  for (std::size_t i = half; i < stream.size(); ++i)
    resumed.fold(stream[i]);

  EXPECT_EQ(resumed.folded(), straight.folded());
  EXPECT_EQ(core::model_digest(resumed.build_model(nullptr)),
            core::model_digest(straight.build_model(nullptr)));
  // And the post-resume state itself is byte-equal, not just the model.
  std::stringstream a, b;
  straight.save_state(a);
  resumed.save_state(b);
  EXPECT_EQ(a.str(), b.str());
}

TEST(OnlineMiner, LoadStateRejectsMalformedInput) {
  mining::OnlineMiner miner;
  std::stringstream bad("not-a-miner-state 1\n");
  EXPECT_THROW(miner.load_state(bad), std::runtime_error);
}

TEST(OnlineMiner, PairMemoryStaysBounded) {
  mining::MinerConfig cfg;
  cfg.max_pairs = 64;
  cfg.lookback = 16;
  mining::OnlineMiner miner(cfg);
  // 64 distinct templates in a rolling pattern: far more than 64 distinct
  // ordered pairs occur inside the window.
  for (int i = 0; i < 20'000; ++i)
    miner.fold(ev(static_cast<std::int64_t>(i) * 1000,
                  static_cast<std::uint32_t>(i % 64), kInfo));
  EXPECT_LE(miner.pairs(), cfg.max_pairs);
  EXPECT_EQ(miner.folded(), 20'000u);
}

TEST(OnlineMiner, EvictionIsDeterministic) {
  mining::MinerConfig cfg;
  cfg.max_pairs = 32;
  cfg.lookback = 8;
  const auto run = [&cfg] {
    mining::OnlineMiner m(cfg);
    for (int i = 0; i < 5'000; ++i)
      m.fold(ev(static_cast<std::int64_t>(i) * 500,
                static_cast<std::uint32_t>((i * 7) % 40),
                i % 97 == 0 ? kFatal : kInfo));
    std::stringstream s;
    m.save_state(s);
    return s.str();
  };
  EXPECT_EQ(run(), run());
}

// ---------------------------------------------------------- RcuHub ------

TEST(RcuHub, PinSeesTheCurrentEpochAndValue) {
  serve::RcuHub<int> hub(std::make_unique<const int>(7));
  EXPECT_EQ(hub.epoch(), 0u);
  {
    const auto h = hub.pin(0);
    EXPECT_EQ(*h.get(), 7);
    EXPECT_EQ(h.epoch(), 0u);
  }
  EXPECT_EQ(hub.publish(std::make_unique<const int>(8)), 1u);
  const auto h = hub.pin(0);
  EXPECT_EQ(*h.get(), 8);
  EXPECT_EQ(h.epoch(), 1u);
  EXPECT_EQ(hub.swaps(), 1u);
}

TEST(RcuHub, RetiredModelWaitsForThePinnedReader) {
  serve::RcuHub<int> hub(std::make_unique<const int>(1));
  {
    const auto h = hub.pin(3);
    hub.publish(std::make_unique<const int>(2));
    // Slot 3 never went quiescent after the swap: the old value must
    // still be parked on the retired list — and still readable.
    EXPECT_EQ(hub.retired(), 1u);
    EXPECT_EQ(*h.get(), 1);
  }
  // Reader released; the next publish's collect() pass reclaims it.
  hub.publish(std::make_unique<const int>(3));
  EXPECT_LE(hub.retired(), 1u);
  const auto h = hub.pin(0);
  EXPECT_EQ(*h.get(), 3);
}

TEST(RcuHub, StressReadersNeverSeeAReclaimedValue) {
  // TSan target: concurrent pin/read/unpin against a publishing thread.
  // Payload values are strictly increasing; a reader observing a torn or
  // reclaimed object would trip TSan (use-after-free read) or the
  // monotonicity check below.
  constexpr int kReaders = 4;
  constexpr int kPublishes = 400;
  serve::RcuHub<int> hub(std::make_unique<const int>(0));
  std::atomic<bool> done{false};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&hub, &done, r] {
      int last = 0;
      while (!done.load(std::memory_order_acquire)) {
        const auto h = hub.pin(static_cast<std::size_t>(r));
        const int v = *h.get();
        EXPECT_GE(v, last);
        last = v;
      }
    });
  }
  for (int i = 1; i <= kPublishes; ++i)
    hub.publish(std::make_unique<const int>(i));
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  // All readers parked: the destructor's final collect reclaims the rest.
}

// ----------------------------------------------------- MinerService -----

struct BatchRef {
  simlog::Trace trace;
  mining::BatchMineResult batch;
  std::size_t events = 0;
};

BatchRef batch_reference(double days, std::size_t publish_every) {
  BatchRef ref;
  auto scenario = simlog::make_bluegene_scenario(99, days);
  ref.trace = scenario.generator.generate(scenario.config);
  helo::TemplateMiner classifier;
  std::vector<ClassifiedEvent> events;
  events.reserve(ref.trace.records.size());
  for (const auto& rec : ref.trace.records)
    events.push_back({rec.time_ms, rec.node_id,
                      classifier.classify(rec.message),
                      static_cast<std::uint8_t>(rec.severity)});
  std::stable_sort(events.begin(), events.end(), mining::canonical_less);
  ref.events = events.size();
  ref.batch =
      mining::batch_mine(events, mining::MinerConfig{}, publish_every,
                         classifier);
  return ref;
}

void expect_online_matches(const BatchRef& ref, std::size_t shards,
                           std::size_t publish_every,
                           const faultinject::FaultPlan* plan) {
  mining::MinerServiceConfig cfg;
  cfg.serve.shards = shards;
  cfg.publish_every = publish_every;
  if (plan != nullptr) {
    cfg.serve.faults = plan;
    cfg.serve.watchdog_interval_ms = 20;
    cfg.serve.watchdog_deadline_ms = 250;
  }
  mining::MinerService ms(ref.trace.topology, cfg);
  serve::TraceReplayer(ref.trace).replay_into(ms.service());
  ms.finish(ref.trace.t_end_ms);
  EXPECT_EQ(ms.folded(), ref.events) << shards << " shards";
  EXPECT_EQ(ms.final_digest(), ref.batch.model_digest) << shards << " shards";
  EXPECT_EQ(ms.publish_stream_digest(), ref.batch.publish_digest)
      << shards << " shards";
  EXPECT_EQ(ms.publishes(), ref.batch.publishes) << shards << " shards";
  const auto m = ms.service().metrics();
  EXPECT_EQ(m.miner_events, ref.events);
  EXPECT_EQ(m.model_publishes, ref.batch.publishes);
  if (publish_every != 0 && ref.batch.publishes > 0) {
    EXPECT_GT(m.model_swaps, 0u);
  }
}

TEST(MinerService, OnlineEqualsBatchAcrossShardCounts) {
  const auto ref = batch_reference(0.15, 256);
  expect_online_matches(ref, 1, 256, nullptr);
  expect_online_matches(ref, 2, 256, nullptr);
  expect_online_matches(ref, 3, 256, nullptr);
}

TEST(MinerService, OnlineEqualsBatchUnderServeSideChaos) {
  const auto ref = batch_reference(0.15, 256);
  // Stalls delay the stream and a worker kill parks a batch tail for the
  // watchdog successor — neither may lose or duplicate a tapped event.
  const auto plan =
      faultinject::FaultPlan::parse("stall=1@150:40,failworker=0@300", 7);
  expect_online_matches(ref, 3, 256, &plan);
}

TEST(MinerService, AbandonedDestructionDoesNotHang) {
  auto scenario = simlog::make_bluegene_scenario(5, 0.05);
  const auto trace = scenario.generator.generate(scenario.config);
  mining::MinerServiceConfig cfg;
  cfg.serve.shards = 2;
  cfg.publish_every = 128;
  mining::MinerService ms(trace.topology, cfg);
  serve::TraceReplayer(trace).replay_into(ms.service());
  // No finish(): the destructor must close the rings, retire the pump and
  // tear the service down without deadlock.
}

TEST(MinerService, FinalModelServesIdenticallyViaHubAndDirect) {
  const auto ref = batch_reference(0.15, 0);
  serve::ServiceConfig scfg;
  scfg.shards = 3;
  scfg.engine.use_location = false;
  scfg.engine.raw_event_matching = true;

  serve::ModelHub hub(std::make_unique<const core::ModelState>(
      core::ModelState::build({}, {})));
  hub.publish(std::make_unique<const core::ModelState>(core::ModelState::build(
      ref.batch.model.chains, ref.batch.model.profiles)));
  core::OfflineModel hollow = ref.batch.model;
  hollow.chains.clear();
  hollow.profiles.clear();

  serve::ServiceConfig acfg = scfg;
  acfg.hub = &hub;
  serve::PredictionService via_hub(ref.trace.topology, hollow, acfg);
  serve::TraceReplayer(ref.trace).replay_into(via_hub);
  via_hub.finish(ref.trace.t_end_ms);

  serve::PredictionService direct(ref.trace.topology, ref.batch.model, scfg);
  serve::TraceReplayer(ref.trace).replay_into(direct);
  direct.finish(ref.trace.t_end_ms);

  const auto& a = via_hub.predictions();
  const auto& b = direct.predictions();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].trigger_time_ms, b[i].trigger_time_ms) << i;
    EXPECT_EQ(a[i].issue_time_ms, b[i].issue_time_ms) << i;
    EXPECT_EQ(a[i].predicted_time_ms, b[i].predicted_time_ms) << i;
    EXPECT_EQ(a[i].tmpl, b[i].tmpl) << i;
    EXPECT_EQ(a[i].nodes, b[i].nodes) << i;
    EXPECT_EQ(a[i].scope, b[i].scope) << i;
    EXPECT_EQ(a[i].chain_id, b[i].chain_id) << i;
    EXPECT_EQ(a[i].confidence, b[i].confidence) << i;
    EXPECT_EQ(a[i].lead_ms, b[i].lead_ms) << i;
  }
  EXPECT_GT(via_hub.metrics().model_swaps, 0u);
}

}  // namespace
