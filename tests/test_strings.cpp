#include <gtest/gtest.h>

#include "util/strings.hpp"

namespace {

using namespace elsa::util;

TEST(Strings, SplitDropsEmpty) {
  const auto t = split("  a  bb   c ", " ");
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[0], "a");
  EXPECT_EQ(t[1], "bb");
  EXPECT_EQ(t[2], "c");
  EXPECT_TRUE(split("", " ").empty());
  EXPECT_TRUE(split("   ", " ").empty());
}

TEST(Strings, SplitMultipleDelims) {
  const auto t = split("a\tb c", " \t");
  ASSERT_EQ(t.size(), 3u);
}

TEST(Strings, SplitKeepEmptyPreservesColumns) {
  const auto t = split_keep_empty("a,,b,", ',');
  ASSERT_EQ(t.size(), 4u);
  EXPECT_EQ(t[1], "");
  EXPECT_EQ(t[3], "");
}

TEST(Strings, JoinRoundTrip) {
  EXPECT_EQ(join({"x", "y", "z"}, "-"), "x-y-z");
  EXPECT_EQ(join({}, "-"), "");
  EXPECT_EQ(join({"solo"}, "-"), "solo");
}

TEST(Strings, ToLowerAndStartsWith) {
  EXPECT_EQ(to_lower("MiXeD 123"), "mixed 123");
  EXPECT_TRUE(starts_with("FAILURE ciodb", "FAILURE"));
  EXPECT_FALSE(starts_with("abc", "abcd"));
}

TEST(Strings, LooksNumericPositives) {
  EXPECT_TRUE(looks_numeric("12345"));
  EXPECT_TRUE(looks_numeric("0xdeadbeef"));
  EXPECT_TRUE(looks_numeric("10.0.3.77"));
  EXPECT_TRUE(looks_numeric("3:136"));
  EXPECT_TRUE(looks_numeric("-42"));
}

TEST(Strings, LooksNumericNegatives) {
  EXPECT_FALSE(looks_numeric("kernel"));
  EXPECT_FALSE(looks_numeric(""));
  EXPECT_FALSE(looks_numeric("restarted."));
  EXPECT_FALSE(looks_numeric("r00-m0"));  // hmm: r,m letters vs digits
}

TEST(Strings, TemplateMatchesSemantics) {
  const std::vector<std::string> tmpl{"linkcard", "power", "module", "*",
                                      "is", "not", "accessible"};
  EXPECT_TRUE(template_matches(
      tmpl, {"linkcard", "power", "module", "R00-M0", "is", "not",
             "accessible"}));
  EXPECT_FALSE(template_matches(
      tmpl, {"linkcard", "power", "module", "R00-M0", "is", "accessible"}));
  const std::vector<std::string> num{"job", "d+", "timed", "out."};
  EXPECT_TRUE(template_matches(num, {"job", "4711", "timed", "out."}));
  EXPECT_FALSE(template_matches(num, {"job", "alpha", "timed", "out."}));
}

TEST(Strings, HumanDuration) {
  EXPECT_EQ(human_duration(5.0), "5s");
  EXPECT_EQ(human_duration(90.0), "1.5m");
  EXPECT_EQ(human_duration(5400.0), "1.5h");
}

}  // namespace
