// Serving subsystem: topology-sharded engine equivalence with the single
// engine (the determinism guarantee), run-to-run determinism under real
// threads, shard routing, the end-to-end PredictionService under
// multi-producer load, and the trace replayer's pacing and windowing.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <thread>
#include <vector>

#include "elsa/pipeline.hpp"
#include "faultinject/injector.hpp"
#include "faultinject/plan.hpp"
#include "serve/replayer.hpp"
#include "serve/service.hpp"
#include "serve/sharded_engine.hpp"
#include "simlog/scenario.hpp"

namespace {

using namespace elsa;

// ---------------------------------------------------------------------------
// Shared fixture: the default BG/L-like campaign, trained once, with the
// test-period stream pre-classified against the frozen model so every run
// (single or sharded) sees the identical (record, template) sequence.

struct Campaign {
  simlog::Trace trace;
  std::int64_t train_end = 0;
  core::OfflineModel model;
  std::vector<std::pair<const simlog::LogRecord*, std::uint32_t>> stream;
  core::EngineConfig engine;
};

const Campaign& campaign() {
  static const Campaign c = [] {
    Campaign c;
    auto sc = simlog::make_bluegene_scenario(2012, 8.0, 40);
    c.trace = sc.generator.generate(sc.config);
    c.train_end = c.trace.t_begin_ms +
                  static_cast<std::int64_t>(4.0 * 86'400'000.0);
    core::PipelineConfig cfg;
    c.model = core::train_offline(c.trace, c.train_end, core::Method::Hybrid,
                                  cfg);
    const auto unknown = static_cast<std::uint32_t>(c.model.helo.size());
    for (const auto& rec : c.trace.records) {
      if (rec.time_ms < c.train_end) continue;
      auto tid = c.model.helo.classify_const(rec.message);
      if (tid == helo::TemplateMiner::kNoTemplate) tid = unknown;
      c.stream.emplace_back(&rec, tid);
    }
    c.engine = cfg.engine;
    c.engine.dt_ms = cfg.dt_ms;
    c.engine.tolerance = cfg.grite.tolerance;
    // Serving semantics: latency is measured, not simulated.
    c.engine.cost = core::AnalysisCostModel{0.0, 0.0, 0.0};
    return c;
  }();
  return c;
}

const std::vector<core::Prediction>& run_single() {
  static const std::vector<core::Prediction> cached = [] {
    const Campaign& c = campaign();
    core::OnlineEngine eng(c.trace.topology, c.model.chains, c.model.profiles,
                           c.engine);
    for (const auto& [rec, tid] : c.stream) eng.feed(*rec, tid);
    eng.finish(c.trace.t_end_ms);
    auto preds = eng.predictions();
    // The sharded merge orders by (issue, chain, tmpl, ...); apply the same
    // order to the single run for a field-by-field comparison.
    std::stable_sort(preds.begin(), preds.end(),
                     [](const core::Prediction& a, const core::Prediction& b) {
                       return std::tie(a.issue_time_ms, a.chain_id, a.tmpl) <
                              std::tie(b.issue_time_ms, b.chain_id, b.tmpl);
                     });
    return preds;
  }();
  return cached;
}

std::pair<std::vector<core::Prediction>, core::EngineStats> run_sharded(
    std::size_t shards) {
  const Campaign& c = campaign();
  serve::ShardOptions so;
  so.shards = shards;
  serve::ShardedEngine eng(c.trace.topology, c.model.chains, c.model.profiles,
                           c.engine, so);
  for (const auto& [rec, tid] : c.stream) eng.feed(*rec, tid);
  eng.finish(c.trace.t_end_ms);
  return {eng.predictions(), eng.stats()};
}

void expect_identical(const std::vector<core::Prediction>& a,
                      const std::vector<core::Prediction>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(a[i].trigger_time_ms, b[i].trigger_time_ms);
    EXPECT_EQ(a[i].issue_time_ms, b[i].issue_time_ms);
    EXPECT_EQ(a[i].predicted_time_ms, b[i].predicted_time_ms);
    EXPECT_EQ(a[i].tmpl, b[i].tmpl);
    EXPECT_EQ(a[i].nodes, b[i].nodes);
    EXPECT_EQ(a[i].scope, b[i].scope);
    EXPECT_EQ(a[i].chain_id, b[i].chain_id);
    EXPECT_DOUBLE_EQ(a[i].confidence, b[i].confidence);
    EXPECT_EQ(a[i].lead_ms, b[i].lead_ms);
  }
}

// ---------------------------------------------------------------------------

// The acceptance property: the 4-shard merged prediction stream is
// identical, field for field, to the single-engine run on the default
// BG/L-like scenario.
TEST(ShardedEngine, FourShardsIdenticalToSingleEngine) {
  const auto single = run_single();
  ASSERT_FALSE(single.empty()) << "campaign produced no predictions";
  const auto [sharded, stats] = run_sharded(4);
  expect_identical(single, sharded);
  EXPECT_EQ(stats.records, campaign().stream.size());
}

TEST(ShardedEngine, OtherShardCountsAgreeToo) {
  const auto single = run_single();
  for (const std::size_t n : {1u, 2u, 8u}) {
    SCOPED_TRACE(n);
    const auto [sharded, stats] = run_sharded(n);
    expect_identical(single, sharded);
  }
}

// Real threads, two runs, byte-identical output: per-shard FIFO plus the
// total merge order make scheduling invisible. 3 shards exercises uneven
// midplane distribution.
TEST(ShardedEngine, DeterministicAcrossRuns) {
  const auto [first, s1] = run_sharded(3);
  const auto [second, s2] = run_sharded(3);
  expect_identical(first, second);
  EXPECT_EQ(s1.records, s2.records);
  EXPECT_EQ(s1.buckets, s2.buckets);
  EXPECT_EQ(s1.outlier_onsets, s2.outlier_onsets);
  EXPECT_EQ(s1.duplicates_suppressed, s2.duplicates_suppressed);
  EXPECT_EQ(s1.chains_used, s2.chains_used);
}

TEST(ShardedEngine, RoutesByMidplane) {
  const auto topo = topo::Topology::bluegene(2, 2, 4, 8);  // 32 per midplane
  serve::ShardOptions so;
  so.shards = 3;
  serve::ShardedEngine eng(topo, {}, {}, core::EngineConfig{}, so);
  // System records (partition -1) hash like any other key — the mapping is
  // still a pure function, just not pinned to shard 0.
  EXPECT_EQ(eng.shard_of(-1),
            serve::ShardRouter::spread(
                serve::ShardRouter::mix(static_cast<std::uint64_t>(-1)), 3));
  // Every node of a midplane routes with its midplane, and the mapping is
  // the documented stable hash of the midplane index — a pure function, so
  // it cannot drift between runs, threads or processes.
  for (std::int32_t mp = 0; mp < 4; ++mp) {
    const auto expect = serve::ShardRouter::spread(
        serve::ShardRouter::mix(static_cast<std::uint64_t>(mp)), 3);
    SCOPED_TRACE(mp);
    EXPECT_EQ(eng.router().partition_of(mp * 32), mp);
    EXPECT_EQ(eng.shard_of(mp * 32), expect);       // first node of midplane
    EXPECT_EQ(eng.shard_of(mp * 32 + 31), expect);  // last node, same shard
  }
  eng.finish(0);
}

// The router hashes the partition key instead of taking it modulo the
// shard count: structured (rack-major) midplane indices must not alias
// into hot shards. With many midplanes, every shard gets work.
TEST(ShardRouter, HashSpreadsStructuredKeys) {
  const serve::ShardRouter router(/*nodes_per_midplane=*/1, /*shards=*/8);
  std::vector<int> hits(8, 0);
  for (std::int32_t part = 0; part < 4096; ++part)
    ++hits[router.shard_of(part)];
  for (std::size_t s = 0; s < hits.size(); ++s) {
    SCOPED_TRACE(s);
    EXPECT_GT(hits[s], 0);
    // Near-uniform: within ±50% of the 512 expected per shard.
    EXPECT_GT(hits[s], 256);
    EXPECT_LT(hits[s], 768);
  }
  // Strided keys (every 8th midplane — the aliasing worst case for
  // `part % shards`) still touch every shard.
  std::fill(hits.begin(), hits.end(), 0);
  for (std::int32_t part = 0; part < 4096; part += 8)
    ++hits[router.shard_of(part)];
  for (std::size_t s = 0; s < hits.size(); ++s) {
    SCOPED_TRACE(s);
    EXPECT_GT(hits[s], 0);
  }
}

// A real machine has only a handful of midplanes (the BG/L-like bench
// topology has 8 plus the system partition), so the router must also
// spread *dense, few* keys: an avalanche-style hash draws shards
// independently and routinely piles most of 9 keys onto one shard, which
// re-inverts the scaling curve. The Fibonacci walk is low-discrepancy, so
// 8 dense keys over 4 shards land at most 3 deep and miss no shard.
TEST(ShardRouter, DenseFewKeysStayBalanced) {
  const serve::ShardRouter router(/*nodes_per_midplane=*/1, /*shards=*/4);
  std::vector<int> hits(4, 0);
  for (std::int32_t part = 0; part < 8; ++part) ++hits[router.shard_of(part)];
  for (std::size_t s = 0; s < hits.size(); ++s) {
    SCOPED_TRACE(s);
    EXPECT_GT(hits[s], 0);
    EXPECT_LE(hits[s], 3);
  }
}

// ---------------------------------------------------------------------------
// PredictionService end to end.

// Four producer threads hammer the bounded ingest ring with blocking
// submits; every record must come out of a shard engine exactly once.
TEST(PredictionService, MultiProducerNoLoss) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 5'000;
  const auto topo = topo::Topology::bluegene(2, 2, 4, 8);
  core::OfflineModel model;  // empty frozen model: everything is "unknown"
  serve::ServiceConfig cfg;
  cfg.shards = 4;
  cfg.ingest_capacity = 256;  // small: force backpressure
  serve::PredictionService service(topo, model, cfg);

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p)
    producers.emplace_back([&service, &topo, p] {
      simlog::LogRecord rec;
      rec.message = "stress record";
      for (int i = 0; i < kPerProducer; ++i) {
        rec.time_ms = static_cast<std::int64_t>(i) * 1'000 + p;
        rec.node_id = (i * kProducers + p) % topo.total_nodes();
        ASSERT_TRUE(service.submit(rec));
      }
    });
  for (auto& t : producers) t.join();
  service.finish(kPerProducer * 1'000);

  const auto m = service.metrics();
  EXPECT_EQ(m.records_in, static_cast<std::uint64_t>(kProducers) * kPerProducer);
  EXPECT_EQ(m.records_out, m.records_in);
  EXPECT_EQ(m.shed, 0u);
  EXPECT_TRUE(m.records_conserved());
  EXPECT_EQ(service.engine_stats().records,
            static_cast<std::size_t>(kProducers) * kPerProducer);
  // Interleaved producers necessarily deliver some records out of order;
  // the engines must have absorbed them (clamped, counted), not lost them.
  EXPECT_EQ(m.out_of_order, service.engine_stats().out_of_order);

  // The service is closed now.
  simlog::LogRecord late;
  EXPECT_FALSE(service.submit(late));
  EXPECT_FALSE(service.try_submit(late));
  service.finish(0);  // idempotent
}

// The full service path (classify -> route -> per-shard ring -> shard
// worker) reproduces the single-engine predictions on the real campaign.
TEST(PredictionService, EndToEndMatchesSingleEngine) {
  const Campaign& c = campaign();
  serve::ServiceConfig cfg;
  cfg.shards = 4;
  cfg.engine = c.engine;
  serve::PredictionService service(c.trace.topology, c.model, cfg);

  serve::ReplayOptions ro;  // as fast as possible
  ro.from_ms = c.train_end;
  const std::size_t accepted =
      serve::TraceReplayer(c.trace, ro).replay_into(service);
  service.finish(c.trace.t_end_ms);

  EXPECT_EQ(accepted, c.stream.size());
  expect_identical(run_single(), service.predictions());

  const auto m = service.metrics();
  EXPECT_EQ(m.records_in, c.stream.size());
  EXPECT_EQ(m.records_out, c.stream.size());
  EXPECT_EQ(m.predictions, service.predictions().size());
  EXPECT_GT(m.records_per_sec, 0.0);

  // Streaming view saw the same alarms (order may differ across shards).
  std::vector<core::Prediction> streamed;
  service.poll_alarms(streamed);
  EXPECT_EQ(streamed.size(), service.predictions().size());
}

// ---------------------------------------------------------------------------
// Graceful degradation under injected faults. The chaos invariant in every
// scenario: the service finishes, and every submit attempt is accounted —
// ingested == processed + quarantined + shed.

simlog::LogRecord synth_record(int i, std::int32_t nodes) {
  simlog::LogRecord rec;
  rec.time_ms = 1'000 + static_cast<std::int64_t>(i) * 50;
  rec.node_id = static_cast<std::int32_t>(i) % nodes;
  rec.message = "chaos record " + std::to_string(i % 5);
  return rec;
}

TEST(PredictionService, ValidatorQuarantinesMalformed) {
  const auto topo = topo::Topology::cluster(8);
  core::OfflineModel model;
  serve::ServiceConfig cfg;
  cfg.shards = 2;
  serve::PredictionService service(topo, model, cfg);

  for (int i = 0; i < 20; ++i) ASSERT_TRUE(service.submit(synth_record(i, 8)));
  simlog::LogRecord bad;
  bad.node_id = 999;  // outside the 8-node topology
  EXPECT_FALSE(service.try_submit(bad));
  bad.node_id = -2;  // below the system-scope sentinel
  EXPECT_EQ(service.submit_result(bad, true), serve::SubmitResult::kQuarantined);
  bad.node_id = 0;
  bad.time_ms = -5;
  EXPECT_EQ(service.submit_result(bad, true), serve::SubmitResult::kQuarantined);
  service.finish(10'000);

  const auto m = service.metrics();
  EXPECT_EQ(m.ingested, 23u);
  EXPECT_EQ(m.quarantined, 3u);
  EXPECT_EQ(m.records_out, 20u);
  EXPECT_TRUE(m.records_conserved());
  // The engines never saw the malformed records...
  EXPECT_EQ(service.engine_stats().records, 20u);
  // ...but the diagnostic sample kept them.
  const auto sample = service.quarantined_sample();
  ASSERT_EQ(sample.size(), 3u);
  EXPECT_EQ(sample[0].node_id, 999);
  EXPECT_EQ(sample[2].time_ms, -5);
}

// Conservation holds under every record-path fault kind, one at a time and
// all together.
TEST(PredictionService, ConservationUnderEachFaultKind) {
  for (const char* plan_text :
       {"drop=0.2", "dup=0.2", "corrupt=0.2", "reorder=0.5:8",
        "skew=0.5:60000", "all"}) {
    SCOPED_TRACE(plan_text);
    const auto plan = faultinject::FaultPlan::parse(plan_text, 2012);
    faultinject::FaultInjector injector(plan);

    const auto topo = topo::Topology::cluster(8);
    core::OfflineModel model;
    serve::ServiceConfig cfg;
    cfg.shards = 2;
    cfg.faults = &plan;
    serve::PredictionService service(topo, model, cfg);

    std::vector<simlog::LogRecord> delivery;
    for (int i = 0; i < 2'000; ++i) {
      delivery.clear();
      injector.ingest(synth_record(i, 8), delivery);
      for (const auto& rec : delivery) service.submit(rec);
    }
    delivery.clear();
    injector.flush(delivery);
    for (const auto& rec : delivery) service.submit(rec);
    service.finish(1'000'000);

    const auto& is = injector.stats();
    EXPECT_EQ(is.seen + is.duplicated, is.delivered + is.dropped);
    const auto m = service.metrics();
    EXPECT_EQ(m.ingested, is.delivered);
    EXPECT_TRUE(m.records_conserved())
        << "ingested=" << m.ingested << " out=" << m.records_out
        << " quarantined=" << m.quarantined << " shed=" << m.shed;
    EXPECT_EQ(m.records_out, service.engine_stats().records);
  }
}

// The acceptance property for the whole layer: with an *empty* fault plan
// wired in everywhere (injector, serve-side hooks, watchdog running), the
// output is byte-identical to the plain single-engine run.
TEST(PredictionService, EmptyPlanIsByteIdentical) {
  const Campaign& c = campaign();
  const faultinject::FaultPlan plan;  // empty
  faultinject::FaultInjector injector(plan);

  serve::ServiceConfig cfg;
  cfg.shards = 4;
  cfg.engine = c.engine;
  cfg.faults = &plan;
  serve::PredictionService service(c.trace.topology, c.model, cfg);

  serve::ReplayOptions ro;
  ro.from_ms = c.train_end;
  const std::size_t accepted =
      serve::TraceReplayer(c.trace, ro).replay_into(service, &injector);
  service.finish(c.trace.t_end_ms);

  EXPECT_EQ(accepted, c.stream.size());
  expect_identical(run_single(), service.predictions());
  const auto m = service.metrics();
  EXPECT_EQ(m.quarantined, 0u);
  EXPECT_EQ(m.shed, 0u);
  EXPECT_TRUE(m.records_conserved());
}

// Serve-side faults that do not lose records (a worker kill recovered by
// the watchdog, a transient stall) must leave the merged output
// byte-identical: the lock-free rings, the hash router and the restart
// machinery may reshuffle *when* records are processed, never *what* the
// merged stream contains.
TEST(PredictionService, ServeSideFaultsStayByteIdentical) {
  const Campaign& c = campaign();
  const auto plan =
      faultinject::FaultPlan::parse("failworker=0@500,stall=1@300:150", 7);

  serve::ServiceConfig cfg;
  cfg.shards = 4;
  cfg.engine = c.engine;
  cfg.faults = &plan;
  cfg.watchdog_interval_ms = 10;  // revive the killed worker promptly
  serve::PredictionService service(c.trace.topology, c.model, cfg);

  serve::ReplayOptions ro;
  ro.from_ms = c.train_end;
  const std::size_t accepted =
      serve::TraceReplayer(c.trace, ro).replay_into(service);
  service.finish(c.trace.t_end_ms);

  EXPECT_EQ(accepted, c.stream.size());
  expect_identical(run_single(), service.predictions());
  const auto m = service.metrics();
  EXPECT_EQ(m.records_out, c.stream.size());
  EXPECT_EQ(m.shed, 0u);
  EXPECT_TRUE(m.records_conserved());
}

// Drop-oldest backpressure: wedge the (single) shard with an injected
// stall so the ingest ring fills, and verify overflow evicts instead of
// blocking and the evictions are accounted as shed.
TEST(PredictionService, DropOldestEvictsUnderOverflow) {
  const auto plan = faultinject::FaultPlan::parse("stall=0@1:400", 7);
  const auto topo = topo::Topology::cluster(4);
  core::OfflineModel model;
  serve::ServiceConfig cfg;
  cfg.shards = 1;
  cfg.ingest_capacity = 8;
  cfg.batch = 4;
  cfg.overflow = serve::OverflowPolicy::kDropOldest;
  cfg.faults = &plan;
  serve::PredictionService service(topo, model, cfg);

  // 500 immediate submits while the worker sleeps 400 ms after record 1:
  // the single shard's 8-record ring fills long before the stall ends, so
  // later submits must displace older queued records.
  for (int i = 0; i < 500; ++i) {
    const auto r = service.submit_result(synth_record(i, 4), true);
    ASSERT_NE(r, serve::SubmitResult::kClosed);
    ASSERT_NE(r, serve::SubmitResult::kShed);  // drop-oldest never refuses
  }
  service.finish(1'000'000);

  const auto m = service.metrics();
  EXPECT_EQ(m.ingested, 500u);
  EXPECT_GT(m.shed, 0u);  // evictions happened and were counted
  EXPECT_LT(m.records_out, 500u);
  EXPECT_TRUE(m.records_conserved());
}

// Shed policy with the replayer's bounded retry loop: overflow refuses
// records, the producer retries with backoff, and however the race falls
// the accounting still closes.
TEST(PredictionService, ShedPolicyRetriesAndConserves) {
  const auto plan = faultinject::FaultPlan::parse("stall=0@1:300", 7);
  simlog::Trace tr;
  tr.topology = topo::Topology::cluster(4);
  for (int i = 0; i < 400; ++i) tr.records.push_back(synth_record(i, 4));
  tr.t_begin_ms = 0;
  tr.t_end_ms = tr.records.back().time_ms + 1;

  core::OfflineModel model;
  serve::ServiceConfig cfg;
  cfg.shards = 1;
  cfg.ingest_capacity = 4;  // floor lifts this to one 8-record ring
  cfg.batch = 4;
  cfg.overflow = serve::OverflowPolicy::kShed;
  cfg.faults = &plan;
  serve::PredictionService service(tr.topology, model, cfg);

  serve::ReplayOptions ro;
  ro.shed = true;
  ro.max_retries = 2;
  const std::size_t accepted =
      serve::TraceReplayer(tr, ro).replay_into(service);
  service.finish(1'000'000);

  const auto m = service.metrics();
  EXPECT_GT(m.shed, 0u);
  EXPECT_GT(m.retries, 0u);
  EXPECT_EQ(m.records_out, accepted);
  EXPECT_TRUE(m.records_conserved());
}

// The watchdog notices a stalled shard (one trip per episode) and clears
// degraded mode once the shard recovers; no records are lost.
TEST(ShardedEngine, WatchdogTripsOnStallThenRecovers) {
  const auto plan = faultinject::FaultPlan::parse("stall=0@10:600", 7);
  const auto topo = topo::Topology::cluster(4);
  serve::ServeMetrics metrics;
  serve::ShardOptions so;
  so.shards = 1;
  so.batch = 1;
  so.watchdog_interval_ms = 20;
  so.watchdog_deadline_ms = 100;
  so.faults = &plan;
  serve::ShardedEngine eng(topo, {}, {}, core::EngineConfig{}, so, &metrics);

  simlog::LogRecord rec;
  for (int i = 0; i < 50; ++i) {
    rec.time_ms = i * 100;
    rec.node_id = i % 4;
    eng.feed(rec, 0);
  }
  // finish() stops the watchdog, so let it observe the stall first: the
  // trip lands ~deadline after the worker wedges (~120 ms into the 600 ms
  // stall).
  for (int spins = 0; metrics.snapshot().watchdog_trips == 0 && spins < 400;
       ++spins)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GE(metrics.snapshot().watchdog_trips, 1u);
  eng.finish(10'000);

  EXPECT_EQ(eng.stats().records, 50u);
  // stop_watchdog cleared the flag on the way out of finish().
  EXPECT_FALSE(metrics.degraded());
}

// A worker killed by kFailWorker is revived by the watchdog; the parked
// batch tail and everything still queued are processed exactly once.
TEST(ShardedEngine, FailedWorkerRestartedNothingLost) {
  const auto plan = faultinject::FaultPlan::parse("failworker=0@50", 7);
  const auto topo = topo::Topology::cluster(4);
  serve::ServeMetrics metrics;
  serve::ShardOptions so;
  so.shards = 1;
  so.batch = 8;
  so.watchdog_interval_ms = 10;
  so.watchdog_deadline_ms = 200;
  so.faults = &plan;
  serve::ShardedEngine eng(topo, {}, {}, core::EngineConfig{}, so, &metrics);

  simlog::LogRecord rec;
  for (int i = 0; i < 300; ++i) {
    rec.time_ms = i * 100;
    rec.node_id = i % 4;
    eng.feed(rec, 0);
  }
  eng.flush();
  // Wait for the kill + restart cycle (records keep flowing after it).
  for (int spins = 0; eng.worker_restarts() == 0 && spins < 500; ++spins)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(eng.worker_restarts(), 1u);
  eng.finish(100'000);

  EXPECT_EQ(eng.stats().records, 300u);  // nothing lost, nothing doubled
  EXPECT_GE(metrics.snapshot().watchdog_trips, 1u);
}

// ---------------------------------------------------------------------------
// Replayer.

simlog::Trace tiny_trace() {
  simlog::Trace tr;
  tr.topology = topo::Topology::cluster(4);
  for (int i = 0; i < 10; ++i) {
    simlog::LogRecord rec;
    rec.time_ms = i * 100;
    rec.node_id = i % 4;
    tr.records.push_back(rec);
  }
  tr.t_begin_ms = 0;
  tr.t_end_ms = 1'000;
  return tr;
}

TEST(TraceReplayer, DeliversWindowInOrder) {
  const auto tr = tiny_trace();
  serve::ReplayOptions ro;
  ro.from_ms = 200;
  ro.until_ms = 700;
  std::vector<std::int64_t> seen;
  const std::size_t n = serve::TraceReplayer(tr, ro).replay(
      [&](const simlog::LogRecord& rec) {
        seen.push_back(rec.time_ms);
        return true;
      });
  EXPECT_EQ(n, 5u);
  EXPECT_EQ(seen, (std::vector<std::int64_t>{200, 300, 400, 500, 600}));
}

TEST(TraceReplayer, SinkAbortStopsReplay) {
  const auto tr = tiny_trace();
  std::size_t calls = 0;
  const std::size_t n = serve::TraceReplayer(tr).replay(
      [&](const simlog::LogRecord&) { return ++calls < 3; });
  EXPECT_EQ(calls, 3u);
  EXPECT_EQ(n, 2u);  // the aborting record is not counted as delivered
}

TEST(TraceReplayer, PacedReplayTakesWallTime) {
  const auto tr = tiny_trace();  // spans 900 ms of trace time
  serve::ReplayOptions ro;
  ro.speedup = 10.0;  // -> at least 90 ms of wall time
  const auto t0 = std::chrono::steady_clock::now();
  const std::size_t n = serve::TraceReplayer(tr, ro).replay(
      [](const simlog::LogRecord&) { return true; });
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  EXPECT_EQ(n, 10u);
  EXPECT_GE(ms, 85.0);
}

}  // namespace
