// Checkpoint-waste model tests: the algebra of eqs 1–7, limiting cases,
// monotonicity properties, Table IV's published values, and agreement
// between the analytical model and the event-driven simulator.
#include <gtest/gtest.h>

#include <cmath>

#include "ckpt/simulator.hpp"
#include "ckpt/waste_model.hpp"

namespace {

using namespace elsa::ckpt;

TEST(WasteModel, YoungIntervalFormula) {
  CkptParams p;
  p.C = 2.0;
  p.mttf = 800.0;
  EXPECT_DOUBLE_EQ(young_interval(p), std::sqrt(2.0 * 2.0 * 800.0));
}

TEST(WasteModel, PeriodicWasteEquation1) {
  CkptParams p;
  p.C = 1.0;
  p.R = 5.0;
  p.D = 1.0;
  p.mttf = 1440.0;
  const double T = 100.0;
  EXPECT_DOUBLE_EQ(waste_periodic(p, T),
                   1.0 / 100.0 + 100.0 / (2.0 * 1440.0) + 6.0 / 1440.0);
}

TEST(WasteModel, YoungIntervalMinimisesWaste) {
  CkptParams p;
  p.C = 1.0;
  p.R = 5.0;
  p.D = 1.0;
  p.mttf = 1440.0;
  const double topt = young_interval(p);
  const double w0 = waste_periodic(p, topt);
  EXPECT_LT(w0, waste_periodic(p, topt * 0.7));
  EXPECT_LT(w0, waste_periodic(p, topt * 1.4));
  EXPECT_DOUBLE_EQ(waste_no_prediction(p), w0);
}

TEST(WasteModel, ZeroRecallReducesToNoPrediction) {
  CkptParams p;
  p.C = 1.0;
  p.R = 5.0;
  p.D = 1.0;
  p.mttf = 1440.0;
  EXPECT_NEAR(waste_with_recall(p, 0.0), waste_no_prediction(p), 1e-12);
  EXPECT_NEAR(waste_with_prediction(p, 0.0, 0.9), waste_no_prediction(p),
              1e-12);
}

TEST(WasteModel, PerfectRecallLeavesOnlyCheckpointAndRestart) {
  CkptParams p;
  p.C = 1.0;
  p.R = 5.0;
  p.D = 1.0;
  p.mttf = 1440.0;
  // Eq. 6 at N=1: C/MTTF + (R+D)/MTTF.
  EXPECT_NEAR(waste_with_recall(p, 1.0), (1.0 + 6.0) / 1440.0, 1e-12);
}

TEST(WasteModel, WasteDecreasesWithRecall) {
  CkptParams p;
  p.C = 1.0;
  p.R = 5.0;
  p.D = 1.0;
  p.mttf = 1440.0;
  double prev = waste_with_recall(p, 0.0);
  for (double n = 0.1; n <= 1.0; n += 0.1) {
    const double w = waste_with_recall(p, n);
    EXPECT_LT(w, prev) << "recall " << n;
    prev = w;
  }
}

TEST(WasteModel, ImperfectPrecisionAddsFalseAlarmCost) {
  CkptParams p;
  p.C = 1.0;
  p.R = 5.0;
  p.D = 1.0;
  p.mttf = 1440.0;
  const double w_perfect = waste_with_prediction(p, 0.5, 1.0);
  const double w_92 = waste_with_prediction(p, 0.5, 0.92);
  EXPECT_GT(w_92, w_perfect);
  // Eq. 7's extra term: C*N*(1-P)/(P*MTTF).
  EXPECT_NEAR(w_92 - w_perfect, 1.0 * 0.5 * 0.08 / (0.92 * 1440.0), 1e-12);
}

TEST(WasteModel, RejectsBadParameters) {
  CkptParams p;
  p.C = 0.0;
  EXPECT_THROW(waste_no_prediction(p), std::invalid_argument);
  p.C = 1.0;
  EXPECT_THROW(waste_with_recall(p, 1.5), std::invalid_argument);
  EXPECT_THROW(waste_with_prediction(p, 0.5, 0.0), std::invalid_argument);
  EXPECT_THROW(waste_periodic(p, 0.0), std::invalid_argument);
}

// Table IV rows: the paper reports these waste gains (percent) for
// (C, precision, recall, MTTF). Rows 1, 2, 5, 6 match equations 1-7 within
// rounding. Rows 3 and 4 (C = 10 s, MTTF = 1 day) are NOT reproducible
// from the paper's own equations: eq. 7 yields 15.5 % and 20.0 % where the
// paper prints 12.09 % and 15.63 % (every other row agrees, so the
// implementation is faithful); EXPERIMENTS.md records the discrepancy and
// the per-row tolerances below keep the published numbers here as
// documentation without asserting the unreachable.
struct TableIVRow {
  double C_min;
  double precision;
  double recall;
  double mttf_min;
  double gain_pct;
  double tolerance_pct;
};

class TableIV : public ::testing::TestWithParam<TableIVRow> {};

TEST_P(TableIV, MatchesPublishedGain) {
  const auto row = GetParam();
  CkptParams p;
  p.C = row.C_min;
  p.R = 5.0;
  p.D = 1.0;
  p.mttf = row.mttf_min;
  const double gain =
      waste_gain(p, row.recall / 100.0, row.precision / 100.0) * 100.0;
  EXPECT_NEAR(gain, row.gain_pct, row.tolerance_pct)
      << "C=" << row.C_min << " recall=" << row.recall
      << " mttf=" << row.mttf_min;
}

INSTANTIATE_TEST_SUITE_P(
    PaperRows, TableIV,
    ::testing::Values(TableIVRow{1.0, 92, 20, 1440, 9.13, 1.0},
                      TableIVRow{1.0, 92, 36, 1440, 17.33, 1.0},
                      TableIVRow{1.0 / 6.0, 92, 36, 1440, 12.09, 4.5},
                      TableIVRow{1.0 / 6.0, 92, 45, 1440, 15.63, 5.5},
                      TableIVRow{1.0, 92, 50, 300, 21.74, 1.0},
                      TableIVRow{1.0 / 6.0, 92, 65, 300, 24.78, 1.0}));

// ---- simulator vs analytical model --------------------------------------

struct SimCase {
  double C;
  double recall;
  double precision;
};

class SimulatorAgreement : public ::testing::TestWithParam<SimCase> {};

TEST_P(SimulatorAgreement, SimulatedWasteNearAnalytical) {
  const auto c = GetParam();
  SimConfig cfg;
  cfg.params.C = c.C;
  cfg.params.R = 5.0;
  cfg.params.D = 1.0;
  cfg.params.mttf = 1440.0;
  cfg.recall = c.recall;
  cfg.precision = c.precision;
  cfg.target_work = 3.0e6;
  cfg.seed = 99;
  const auto sim = simulate_checkpointing(cfg);
  const double analytical =
      waste_with_prediction(cfg.params, c.recall, c.precision);
  // The analytical model idealises (no failures during checkpoints, lost
  // work exactly T/2); agreement within ~15 % relative is the validation
  // target.
  EXPECT_NEAR(sim.waste(), analytical, 0.15 * analytical + 0.005)
      << "C=" << c.C << " N=" << c.recall << " P=" << c.precision;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SimulatorAgreement,
    ::testing::Values(SimCase{1.0, 0.0, 1.0}, SimCase{1.0, 0.36, 0.92},
                      SimCase{1.0, 0.65, 0.92}, SimCase{1.0 / 6.0, 0.45, 0.92},
                      SimCase{1.0, 0.9, 0.99}));

TEST(Simulator, CountsAreConsistent) {
  SimConfig cfg;
  cfg.params = {1.0, 5.0, 1.0, 1440.0};
  cfg.recall = 0.5;
  cfg.precision = 0.9;
  cfg.target_work = 1.0e6;
  const auto r = simulate_checkpointing(cfg);
  EXPECT_GE(r.useful_work, cfg.target_work);
  EXPECT_GT(r.wall_time, r.useful_work);
  EXPECT_GT(r.failures, 400u);  // ~work/mttf
  EXPECT_NEAR(static_cast<double>(r.predicted_failures),
              0.5 * static_cast<double>(r.failures),
              0.1 * static_cast<double>(r.failures));
  EXPECT_GT(r.false_alarms, 0u);
}

TEST(Simulator, PerfectPredictionBeatsNone) {
  SimConfig none;
  none.params = {1.0, 5.0, 1.0, 1440.0};
  none.recall = 0.0;
  none.target_work = 1.0e6;
  SimConfig full = none;
  full.recall = 1.0;
  EXPECT_LT(simulate_checkpointing(full).waste(),
            simulate_checkpointing(none).waste());
}

}  // namespace
