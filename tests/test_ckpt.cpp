// Checkpoint-waste model tests: the algebra of eqs 1–7, limiting cases,
// monotonicity properties, Table IV's published values, and agreement
// between the analytical model and the event-driven simulator.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "ckpt/simulator.hpp"
#include "ckpt/waste_model.hpp"

namespace {

using namespace elsa::ckpt;

TEST(WasteModel, YoungIntervalFormula) {
  CkptParams p;
  p.C = 2.0;
  p.mttf = 800.0;
  EXPECT_DOUBLE_EQ(young_interval(p), std::sqrt(2.0 * 2.0 * 800.0));
}

TEST(WasteModel, PeriodicWasteEquation1) {
  CkptParams p;
  p.C = 1.0;
  p.R = 5.0;
  p.D = 1.0;
  p.mttf = 1440.0;
  const double T = 100.0;
  EXPECT_DOUBLE_EQ(waste_periodic(p, T),
                   1.0 / 100.0 + 100.0 / (2.0 * 1440.0) + 6.0 / 1440.0);
}

TEST(WasteModel, YoungIntervalMinimisesWaste) {
  CkptParams p;
  p.C = 1.0;
  p.R = 5.0;
  p.D = 1.0;
  p.mttf = 1440.0;
  const double topt = young_interval(p);
  const double w0 = waste_periodic(p, topt);
  EXPECT_LT(w0, waste_periodic(p, topt * 0.7));
  EXPECT_LT(w0, waste_periodic(p, topt * 1.4));
  EXPECT_DOUBLE_EQ(waste_no_prediction(p), w0);
}

TEST(WasteModel, ZeroRecallReducesToNoPrediction) {
  CkptParams p;
  p.C = 1.0;
  p.R = 5.0;
  p.D = 1.0;
  p.mttf = 1440.0;
  EXPECT_NEAR(waste_with_recall(p, 0.0), waste_no_prediction(p), 1e-12);
  EXPECT_NEAR(waste_with_prediction(p, 0.0, 0.9), waste_no_prediction(p),
              1e-12);
}

TEST(WasteModel, PerfectRecallLeavesOnlyCheckpointAndRestart) {
  CkptParams p;
  p.C = 1.0;
  p.R = 5.0;
  p.D = 1.0;
  p.mttf = 1440.0;
  // Eq. 6 at N=1: C/MTTF + (R+D)/MTTF.
  EXPECT_NEAR(waste_with_recall(p, 1.0), (1.0 + 6.0) / 1440.0, 1e-12);
}

TEST(WasteModel, WasteDecreasesWithRecall) {
  CkptParams p;
  p.C = 1.0;
  p.R = 5.0;
  p.D = 1.0;
  p.mttf = 1440.0;
  double prev = waste_with_recall(p, 0.0);
  for (double n = 0.1; n <= 1.0; n += 0.1) {
    const double w = waste_with_recall(p, n);
    EXPECT_LT(w, prev) << "recall " << n;
    prev = w;
  }
}

TEST(WasteModel, ImperfectPrecisionAddsFalseAlarmCost) {
  CkptParams p;
  p.C = 1.0;
  p.R = 5.0;
  p.D = 1.0;
  p.mttf = 1440.0;
  const double w_perfect = waste_with_prediction(p, 0.5, 1.0);
  const double w_92 = waste_with_prediction(p, 0.5, 0.92);
  EXPECT_GT(w_92, w_perfect);
  // Eq. 7's extra term: C*N*(1-P)/(P*MTTF).
  EXPECT_NEAR(w_92 - w_perfect, 1.0 * 0.5 * 0.08 / (0.92 * 1440.0), 1e-12);
}

TEST(WasteModel, RejectsBadParameters) {
  CkptParams p;
  p.C = 0.0;
  EXPECT_THROW(waste_no_prediction(p), std::invalid_argument);
  p.C = 1.0;
  EXPECT_THROW(waste_with_recall(p, 1.5), std::invalid_argument);
  EXPECT_THROW(waste_with_prediction(p, 0.5, 0.0), std::invalid_argument);
  EXPECT_THROW(waste_periodic(p, 0.0), std::invalid_argument);
}

// Table IV rows: the paper reports these waste gains (percent) for
// (C, precision, recall, MTTF). Rows 1, 2, 5, 6 match equations 1-7 within
// rounding. Rows 3 and 4 (C = 10 s, MTTF = 1 day) are NOT reproducible
// from the paper's own equations: eq. 7 yields 15.5 % and 20.0 % where the
// paper prints 12.09 % and 15.63 % (every other row agrees, so the
// implementation is faithful); EXPERIMENTS.md records the discrepancy and
// the per-row tolerances below keep the published numbers here as
// documentation without asserting the unreachable.
struct TableIVRow {
  double C_min;
  double precision;
  double recall;
  double mttf_min;
  double gain_pct;
  double tolerance_pct;
};

class TableIV : public ::testing::TestWithParam<TableIVRow> {};

TEST_P(TableIV, MatchesPublishedGain) {
  const auto row = GetParam();
  CkptParams p;
  p.C = row.C_min;
  p.R = 5.0;
  p.D = 1.0;
  p.mttf = row.mttf_min;
  const double gain =
      waste_gain(p, row.recall / 100.0, row.precision / 100.0) * 100.0;
  EXPECT_NEAR(gain, row.gain_pct, row.tolerance_pct)
      << "C=" << row.C_min << " recall=" << row.recall
      << " mttf=" << row.mttf_min;
}

INSTANTIATE_TEST_SUITE_P(
    PaperRows, TableIV,
    ::testing::Values(TableIVRow{1.0, 92, 20, 1440, 9.13, 1.0},
                      TableIVRow{1.0, 92, 36, 1440, 17.33, 1.0},
                      TableIVRow{1.0 / 6.0, 92, 36, 1440, 12.09, 4.5},
                      TableIVRow{1.0 / 6.0, 92, 45, 1440, 15.63, 5.5},
                      TableIVRow{1.0, 92, 50, 300, 21.74, 1.0},
                      TableIVRow{1.0 / 6.0, 92, 65, 300, 24.78, 1.0}));

// ---- simulator vs analytical model --------------------------------------

struct SimCase {
  double C;
  double recall;
  double precision;
};

class SimulatorAgreement : public ::testing::TestWithParam<SimCase> {};

TEST_P(SimulatorAgreement, SimulatedWasteNearAnalytical) {
  const auto c = GetParam();
  SimConfig cfg;
  cfg.params.C = c.C;
  cfg.params.R = 5.0;
  cfg.params.D = 1.0;
  cfg.params.mttf = 1440.0;
  cfg.recall = c.recall;
  cfg.precision = c.precision;
  cfg.target_work = 3.0e6;
  cfg.seed = 99;
  const auto sim = simulate_checkpointing(cfg);
  const double analytical =
      waste_with_prediction(cfg.params, c.recall, c.precision);
  // The analytical model idealises (no failures during checkpoints, lost
  // work exactly T/2); agreement within ~15 % relative is the validation
  // target.
  EXPECT_NEAR(sim.waste(), analytical, 0.15 * analytical + 0.005)
      << "C=" << c.C << " N=" << c.recall << " P=" << c.precision;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SimulatorAgreement,
    ::testing::Values(SimCase{1.0, 0.0, 1.0}, SimCase{1.0, 0.36, 0.92},
                      SimCase{1.0, 0.65, 0.92}, SimCase{1.0 / 6.0, 0.45, 0.92},
                      SimCase{1.0, 0.9, 0.99}));

TEST(Simulator, CountsAreConsistent) {
  SimConfig cfg;
  cfg.params = {1.0, 5.0, 1.0, 1440.0};
  cfg.recall = 0.5;
  cfg.precision = 0.9;
  cfg.target_work = 1.0e6;
  const auto r = simulate_checkpointing(cfg);
  EXPECT_GE(r.useful_work, cfg.target_work);
  EXPECT_GT(r.wall_time, r.useful_work);
  EXPECT_GT(r.failures, 400u);  // ~work/mttf
  EXPECT_NEAR(static_cast<double>(r.predicted_failures),
              0.5 * static_cast<double>(r.failures),
              0.1 * static_cast<double>(r.failures));
  EXPECT_GT(r.false_alarms, 0u);
}

TEST(Simulator, PerfectPredictionBeatsNone) {
  SimConfig none;
  none.params = {1.0, 5.0, 1.0, 1440.0};
  none.recall = 0.0;
  none.target_work = 1.0e6;
  SimConfig full = none;
  full.recall = 1.0;
  EXPECT_LT(simulate_checkpointing(full).waste(),
            simulate_checkpointing(none).waste());
}

TEST(Simulator, RejectsMalformedConfig) {
  SimConfig good;
  good.params = {1.0, 5.0, 1.0, 1440.0};
  good.recall = 0.45;
  good.precision = 0.92;
  good.target_work = 1.0e4;
  EXPECT_NO_THROW(simulate_checkpointing(good));

  SimConfig bad = good;
  bad.precision = 0.0;  // precision must be in (0, 1]
  EXPECT_THROW(simulate_checkpointing(bad), std::invalid_argument);
  bad = good;
  bad.precision = 1.5;
  EXPECT_THROW(simulate_checkpointing(bad), std::invalid_argument);
  bad = good;
  bad.recall = -0.1;  // recall must be in [0, 1]
  EXPECT_THROW(simulate_checkpointing(bad), std::invalid_argument);
  bad = good;
  bad.recall = 1.1;
  EXPECT_THROW(simulate_checkpointing(bad), std::invalid_argument);
  bad = good;
  bad.target_work = 0.0;
  EXPECT_THROW(simulate_checkpointing(bad), std::invalid_argument);
  bad = good;
  bad.interval = -1.0;
  EXPECT_THROW(simulate_checkpointing(bad), std::invalid_argument);
  bad = good;
  bad.interval = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(simulate_checkpointing(bad), std::invalid_argument);
  bad = good;
  bad.params.mttf = 0.0;
  EXPECT_THROW(simulate_checkpointing(bad), std::invalid_argument);
}

TEST(Simulator, ZeroIntervalSelectsRecallAdjustedOptimum) {
  SimConfig opt;
  opt.params = {1.0, 5.0, 1.0, 1440.0};
  opt.recall = 0.45;
  opt.precision = 0.92;
  opt.target_work = 1.0e5;
  opt.seed = 17;
  SimConfig expl = opt;
  // Eq. 4: the optimum for the unpredicted failures.
  expl.interval =
      std::sqrt(2.0 * opt.params.C * opt.params.mttf / (1.0 - opt.recall));
  const auto a = simulate_checkpointing(opt);
  const auto b = simulate_checkpointing(expl);
  EXPECT_DOUBLE_EQ(a.wall_time, b.wall_time);
  EXPECT_DOUBLE_EQ(a.useful_work, b.useful_work);
  EXPECT_EQ(a.checkpoints, b.checkpoints);
}

// ------------------------------------------- schedule-driven simulator --

TEST(ScheduleSim, NoFailuresWasteIsPureOverhead) {
  ScheduleSimConfig cfg;
  cfg.params = {1.0, 5.0, 1.0, 1440.0};
  cfg.t_begin = 0.0;
  cfg.t_end = 1000.0;
  cfg.interval = 100.0;
  const auto r = simulate_schedule(cfg);
  EXPECT_EQ(r.failures, 0u);
  // Periodic ticks land at 100+k*101 (re-anchored after each 1-min cost);
  // nine fit before t_end, so 9 of the 1000 minutes go to checkpoints.
  EXPECT_EQ(r.checkpoints, 9u);
  EXPECT_DOUBLE_EQ(r.ckpt_overhead, 9.0);
  EXPECT_DOUBLE_EQ(r.useful_work, 991.0);
  EXPECT_DOUBLE_EQ(r.wall_time, 1000.0);
  EXPECT_NEAR(r.waste(), 9.0 / 1000.0, 1e-12);
}

TEST(ScheduleSim, FailureLosesWorkSinceLastCheckpoint) {
  ScheduleSimConfig cfg;
  cfg.params = {1.0, 5.0, 1.0, 1440.0};
  cfg.t_begin = 0.0;
  cfg.t_end = 500.0;
  cfg.interval = 1000.0;  // no periodic checkpoint fits
  cfg.failures = {300.0};
  const auto r = simulate_schedule(cfg);
  EXPECT_EQ(r.failures, 1u);
  EXPECT_EQ(r.checkpoints, 0u);
  // All 300 minutes since t_begin are lost, plus R+D to come back.
  EXPECT_DOUBLE_EQ(r.lost_work, 300.0);
  EXPECT_DOUBLE_EQ(r.restart_overhead, 6.0);
}

TEST(ScheduleSim, ProactiveCheckpointTruncatesLoss) {
  ScheduleSimConfig base;
  base.params = {1.0, 5.0, 1.0, 1440.0};
  base.t_begin = 0.0;
  base.t_end = 500.0;
  base.interval = 1000.0;
  base.failures = {300.0};
  ScheduleSimConfig warned = base;
  warned.proactive = {295.0};
  const auto r0 = simulate_schedule(base);
  const auto r1 = simulate_schedule(warned);
  EXPECT_EQ(r1.proactive_taken, 1u);
  // The directive converts ~295 lost minutes into one checkpoint cost.
  EXPECT_LT(r1.lost_work, 10.0);
  EXPECT_LT(r1.wall_time - r1.useful_work, r0.wall_time - r0.useful_work);
}

TEST(ScheduleSim, IntervalChangeTakesEffectAtItsTime) {
  ScheduleSimConfig cfg;
  cfg.params = {1.0, 5.0, 1.0, 1440.0};
  cfg.t_begin = 0.0;
  cfg.t_end = 400.0;
  cfg.interval = 1000.0;              // no checkpoints under the initial
  cfg.changes = {{200.0, 50.0}};      // then every 50 min
  const auto r = simulate_schedule(cfg);
  EXPECT_GE(r.checkpoints, 3u);
  const auto none = [&] {
    ScheduleSimConfig c = cfg;
    c.changes.clear();
    return simulate_schedule(c);
  }();
  EXPECT_EQ(none.checkpoints, 0u);
}

TEST(ScheduleSim, RejectsMalformedConfig) {
  ScheduleSimConfig good;
  good.params = {1.0, 5.0, 1.0, 1440.0};
  good.t_begin = 0.0;
  good.t_end = 100.0;
  good.interval = 10.0;
  EXPECT_NO_THROW(simulate_schedule(good));

  ScheduleSimConfig bad = good;
  bad.interval = 0.0;  // a schedule must start with a real interval
  EXPECT_THROW(simulate_schedule(bad), std::invalid_argument);
  bad = good;
  bad.t_end = -1.0;
  EXPECT_THROW(simulate_schedule(bad), std::invalid_argument);
  bad = good;
  bad.changes = {{50.0, 20.0}, {40.0, 30.0}};  // out of order
  EXPECT_THROW(simulate_schedule(bad), std::invalid_argument);
  bad = good;
  bad.changes = {{50.0, 0.0}};  // zero interval mid-schedule
  EXPECT_THROW(simulate_schedule(bad), std::invalid_argument);
  bad = good;
  bad.failures = {60.0, 30.0};  // out of order
  EXPECT_THROW(simulate_schedule(bad), std::invalid_argument);
}

}  // namespace
