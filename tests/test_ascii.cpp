#include <gtest/gtest.h>

#include <sstream>

#include "util/ascii.hpp"

namespace {

using namespace elsa::util;

TEST(AsciiTable, AlignsColumnsAndPadsShortRows) {
  AsciiTable t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  // Header line and rule line plus two rows.
  int lines = 0;
  for (char c : out)
    if (c == '\n') ++lines;
  EXPECT_EQ(lines, 4);
}

TEST(AsciiBarChart, ScalesToMax) {
  AsciiBarChart c("title", 10);
  c.add("a", 10.0);
  c.add("b", 5.0, "half");
  std::ostringstream os;
  c.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("##########"), std::string::npos);  // full bar
  EXPECT_NE(out.find("#####  "), std::string::npos);     // half bar
  EXPECT_NE(out.find("half"), std::string::npos);
}

TEST(AsciiBarChart, AllZeroValuesRenderEmptyBars) {
  AsciiBarChart c("z", 10);
  c.add("a", 0.0);
  std::ostringstream os;
  c.print(os);
  EXPECT_EQ(os.str().find('#'), std::string::npos);
}

TEST(Sparkline, EmptyAndScaling) {
  EXPECT_TRUE(sparkline({}).empty());
  const auto s = sparkline({0.0, 1.0, 2.0, 4.0}, 4);
  EXPECT_EQ(s.size(), 4u);
  EXPECT_EQ(s.back(), '#');   // max maps to densest glyph
  EXPECT_EQ(s.front(), ' ');  // zero maps to blank
}

TEST(Sparkline, DownsamplingKeepsPeaks) {
  std::vector<double> v(100, 0.0);
  v[50] = 10.0;  // single spike must survive max-pooling
  const auto s = sparkline(v, 10);
  EXPECT_EQ(s.size(), 10u);
  EXPECT_NE(s.find('#'), std::string::npos);
}

TEST(Format, PercentAndDouble) {
  EXPECT_EQ(format_pct(0.912), "91.2%");
  EXPECT_EQ(format_pct(0.5, 0), "50%");
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
}

}  // namespace
