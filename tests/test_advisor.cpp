// Advisor suite: SPSC hand-off, estimator hysteresis and directive rate
// limiting (FaultClock-stamped trace time), partition mapping, directive
// scoring, and the service-level properties the tentpole promises —
// byte-identical CheckpointSchedule across shard counts and directive
// conservation under chaos plans.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

#include "advisor/advisor.hpp"
#include "advisor/service.hpp"
#include "advisor/spsc.hpp"
#include "elsa/pipeline.hpp"
#include "faultinject/clock.hpp"
#include "faultinject/injector.hpp"
#include "faultinject/plan.hpp"
#include "serve/replayer.hpp"
#include "simlog/scenario.hpp"

namespace {

using namespace elsa;

// ---------------------------------------------------------------- SPSC --

TEST(SpscRing, FifoUntilFullThenRejects) {
  advisor::SpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_FALSE(ring.try_push(99));
  int v = -1;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.try_pop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(ring.try_pop(v));
}

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  advisor::SpscRing<int> ring(5);  // rounds to 8
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_FALSE(ring.try_push(8));
}

TEST(SpscRing, StressTransfersEverythingInOrder) {
  advisor::SpscRing<int> ring(64);
  constexpr std::size_t kN = 200000;
  std::vector<int> got;
  got.reserve(kN);
  std::thread consumer([&] {
    int v;
    while (got.size() < kN)
      if (ring.try_pop(v)) got.push_back(v);
  });
  for (std::size_t i = 0; i < kN;)
    if (ring.try_push(static_cast<int>(i))) ++i;
  consumer.join();
  ASSERT_EQ(got.size(), kN);
  for (std::size_t i = 0; i < kN; ++i)
    ASSERT_EQ(got[i], static_cast<int>(i));
}

// ------------------------------------------------------- advisor units --

/// Trace time for the unit tests comes from a bendable manual FaultClock:
/// advance() moves it, negative advances model the skewed timestamps the
/// rate limiter has to treat as duplicates.
std::int64_t clock_ms(const faultinject::FaultClock& clk) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             clk.now().time_since_epoch())
      .count();
}

core::Prediction mk(std::int64_t t_ms, std::int32_t node, double conf,
                    std::int64_t lead_ms) {
  core::Prediction p;
  p.issue_time_ms = t_ms;
  p.predicted_time_ms = t_ms + lead_ms;
  if (node >= 0) p.nodes.push_back(node);
  p.confidence = conf;
  p.lead_ms = lead_ms;
  return p;
}

advisor::AdvisorConfig unit_config() {
  advisor::AdvisorConfig cfg;
  cfg.precision = 1.0;
  cfg.recall = 1.0;
  cfg.episodes_per_failure = 1.0;  // gap IS the MTTF estimate
  cfg.gap_alpha = 1.0;             // estimate = newest gap
  cfg.mttf_hysteresis = 0.10;
  cfg.mttf_min = 0.1;
  cfg.mttf_max = 1.0e9;
  cfg.min_interval_min = 0.001;
  cfg.max_interval_min = 1.0e9;
  cfg.episode_merge_ms = 1;
  cfg.directive_confidence = 0.5;
  cfg.min_lead_ms = 1000;
  cfg.directive_spacing_ms = 10000;
  return cfg;
}

TEST(CheckpointAdvisor, HysteresisPublishesOnlyRealMoves) {
  advisor::CheckpointAdvisor adv(unit_config(), 4);
  auto clk = faultinject::FaultClock::manual();
  // Five alarms at a steady 1-minute gap: the first estimate publishes,
  // identical re-estimates sit inside the 10% hysteresis band.
  for (int i = 0; i < 5; ++i) {
    adv.on_prediction(mk(clock_ms(clk), 0, 0.0, 0));
    clk.advance(std::chrono::minutes(1));
  }
  EXPECT_EQ(adv.schedule().updates.size(), 1u);
  // A 10x gap is far outside the band: second update.
  clk.advance(std::chrono::minutes(9));
  adv.on_prediction(mk(clock_ms(clk), 0, 0.0, 0));
  const auto sched = adv.schedule();
  ASSERT_EQ(sched.updates.size(), 2u);
  EXPECT_NEAR(sched.updates[1].est_mttf_min, 10.0, 1e-9);
}

TEST(CheckpointAdvisor, DirectiveRateLimitAndSkewedDuplicates) {
  advisor::CheckpointAdvisor adv(unit_config(), 4);
  auto clk = faultinject::FaultClock::manual();
  clk.advance(std::chrono::milliseconds(5000));
  adv.on_prediction(mk(clock_ms(clk), 0, 0.9, 5000));  // directive
  clk.advance(std::chrono::milliseconds(5000));
  adv.on_prediction(mk(clock_ms(clk), 0, 0.9, 5000));  // inside window
  // Skewed backwards past the first directive: still "inside" the window
  // (a directive from the past is a duplicate, not a new incident).
  clk.advance(std::chrono::milliseconds(-8000));
  adv.on_prediction(mk(clock_ms(clk), 0, 0.9, 5000));
  // Low confidence / short lead never enter the limiter at all.
  adv.on_prediction(mk(clock_ms(clk), 0, 0.2, 5000));
  adv.on_prediction(mk(clock_ms(clk), 0, 0.9, 10));
  clk.advance(std::chrono::milliseconds(18000));
  adv.on_prediction(mk(clock_ms(clk), 0, 0.9, 5000));  // window expired
  const auto sched = adv.schedule();
  EXPECT_EQ(sched.directives.size(), 2u);
  EXPECT_EQ(sched.suppressed, 2u);
  // Different partition, same instant: independent limiter.
  adv.on_prediction(mk(clock_ms(clk), 5, 0.9, 5000));
  EXPECT_EQ(adv.schedule().directives.size(), 3u);
}

TEST(CheckpointAdvisor, EpisodeMergeFoldsChainRefires) {
  auto cfg = unit_config();
  cfg.episode_merge_ms = 300000;
  advisor::CheckpointAdvisor adv(cfg, 4);
  // Re-fires 1s apart are one episode; the 400s gap closes it.
  adv.on_prediction(mk(0, 0, 0.0, 0));
  adv.on_prediction(mk(1000, 0, 0.0, 0));
  adv.on_prediction(mk(2000, 0, 0.0, 0));
  auto sched = adv.schedule();
  ASSERT_EQ(sched.partitions.size(), 1u);
  EXPECT_EQ(sched.partitions[0].episodes, 0u);
  EXPECT_EQ(sched.partitions[0].alarms, 3u);
  adv.on_prediction(mk(402000, 0, 0.0, 0));
  EXPECT_EQ(adv.schedule().partitions[0].episodes, 1u);
}

TEST(CheckpointAdvisor, SystemScopeRidesReservedPartition) {
  advisor::CheckpointAdvisor adv(unit_config(), 4);
  EXPECT_EQ(adv.partition_of(-1), -1);
  EXPECT_EQ(adv.partition_of(3), 0);
  EXPECT_EQ(adv.partition_of(5), 1);
  adv.on_prediction(mk(1000, -1, 0.0, 0));  // system scope (no nodes)
  adv.on_prediction(mk(2000, 5, 0.0, 0));
  const auto sched = adv.schedule();
  ASSERT_EQ(sched.partitions.size(), 2u);
  EXPECT_EQ(sched.partitions[0].partition, -1);
  EXPECT_EQ(sched.partitions[1].partition, 1);
}

TEST(CheckpointAdvisor, ScoreConsumesEachFaultOnce) {
  advisor::CheckpointAdvisor adv(unit_config(), 4);
  const std::int64_t kTrainEnd = 100000;
  // One training-window directive (stays unscored), two eval directives
  // on partition 0 sharing one fault, one on partition 1 with none.
  adv.on_prediction(mk(50000, 0, 0.9, 5000));
  adv.on_prediction(mk(150000, 0, 0.9, 5000));
  adv.on_prediction(mk(165000, 0, 0.9, 5000));
  adv.on_prediction(mk(150000, 5, 0.9, 5000));
  std::vector<simlog::GroundTruthFault> faults(1);
  faults[0].initiating_node = 1;  // partition 0
  faults[0].fail_time_ms = 160000;
  adv.score(faults, kTrainEnd);
  const auto sched = adv.schedule();
  EXPECT_EQ(sched.hits, 1u);
  EXPECT_EQ(sched.misses, 2u);
  int unscored = 0;
  for (const auto& d : sched.directives) unscored += !d.scored;
  EXPECT_EQ(unscored, 1);
  // Re-scoring judges nothing twice.
  adv.score(faults, kTrainEnd);
  EXPECT_EQ(adv.schedule().hits, 1u);
  EXPECT_EQ(adv.schedule().misses, 2u);
}

TEST(IntervalForCost, YoungWithCreditedRecallAndClamps) {
  advisor::AdvisorConfig cfg;
  cfg.interval_recall = 0.0;
  cfg.min_interval_min = 5.0;
  cfg.max_interval_min = 100.0;
  // Pure Young at zero credited recall: sqrt(2 * 1 * 800) ~= 40.
  EXPECT_NEAR(advisor::interval_for_cost(cfg, 1.0, 800.0), 40.0, 1e-9);
  // Credited recall stretches by 1/sqrt(1-r).
  cfg.interval_recall = 0.5;
  EXPECT_NEAR(advisor::interval_for_cost(cfg, 1.0, 800.0),
              40.0 * std::sqrt(2.0), 1e-9);
  cfg.interval_recall = 0.0;
  EXPECT_EQ(advisor::interval_for_cost(cfg, 1.0, 1.0e9), 100.0);  // clamp hi
  EXPECT_EQ(advisor::interval_for_cost(cfg, 0.0001, 1.0), 5.0);   // clamp lo
}

// ---------------------------------------------------- service-level ------

struct Campaign {
  simlog::Trace trace;
  std::int64_t train_end = 0;
  core::OfflineModel model;
};

const Campaign& campaign() {
  static const Campaign c = [] {
    Campaign c;
    auto sc = simlog::make_bluegene_scenario(2012, 8.0, 40);
    c.trace = sc.generator.generate(sc.config);
    c.train_end =
        c.trace.t_begin_ms + static_cast<std::int64_t>(4.0 * 86'400'000.0);
    core::PipelineConfig cfg;
    c.model = core::train_offline(c.trace, c.train_end, core::Method::Hybrid,
                                  cfg);
    return c;
  }();
  return c;
}

advisor::CheckpointSchedule run_service(std::size_t shards,
                                        const faultinject::FaultPlan* plan,
                                        serve::MetricsSnapshot* out_metrics,
                                        std::uint64_t* out_dropped) {
  const Campaign& c = campaign();
  advisor::AdvisorServiceConfig acfg;
  acfg.serve.shards = shards;
  acfg.serve.engine.use_location = true;
  acfg.serve.watchdog_interval_ms = 20;
  acfg.serve.watchdog_deadline_ms = 250;
  if (plan) acfg.serve.faults = plan;
  advisor::AdvisorService svc(c.trace.topology, c.model, acfg);
  serve::ReplayOptions ro;
  ro.max_retries = 3;
  faultinject::FaultInjector injector(plan ? *plan
                                           : faultinject::FaultPlan{});
  serve::TraceReplayer(c.trace, ro)
      .replay_into(svc.service(), plan ? &injector : nullptr);
  svc.finish(c.trace.t_end_ms);
  svc.advisor().score(c.trace.faults, c.train_end);
  if (out_metrics) *out_metrics = svc.service().metrics();
  if (out_dropped) *out_dropped = svc.dropped();
  return svc.schedule();
}

// The routing refactor's acceptance property at this layer: the schedule —
// text and digest — is byte-identical however the stream is sharded. The
// hash router maps every midplane wholly to one shard in arrival order, so
// the merged prediction stream (and everything derived from it) cannot
// depend on the shard count.
TEST(AdvisorService, ScheduleByteIdenticalAcrossShardCounts) {
  std::uint64_t dropped1 = 0;
  const auto s1 = run_service(1, nullptr, nullptr, &dropped1);
  EXPECT_EQ(dropped1, 0u);
  EXPECT_GT(s1.events, 0u);
  for (const std::size_t shards : {2u, 4u, 8u}) {
    SCOPED_TRACE(shards);
    std::uint64_t dropped = 0;
    const auto sn = run_service(shards, nullptr, nullptr, &dropped);
    EXPECT_EQ(dropped, 0u);
    EXPECT_EQ(s1.to_string(), sn.to_string());
    EXPECT_EQ(s1.digest(), sn.digest());
  }
}

TEST(AdvisorService, ChaosConservesDirectives) {
  const auto plan =
      faultinject::FaultPlan::parse("failworker=0@50,stall=1@100:200", 7);
  serve::MetricsSnapshot m;
  std::uint64_t dropped = 0;
  const auto sched = run_service(4, &plan, &m, &dropped);
  // Every prediction either reached the advisor or was counted dropped...
  EXPECT_TRUE(m.records_conserved());
  EXPECT_EQ(m.advisor_events + m.advisor_dropped, m.predictions);
  EXPECT_EQ(m.advisor_events, sched.events);
  EXPECT_EQ(m.advisor_dropped, dropped);
  // ...and every directive decision is visible exactly once: issued ones
  // in the schedule, rate-limited ones in the suppressed count.
  EXPECT_EQ(m.directives, sched.directives.size());
  EXPECT_EQ(m.directives_suppressed, sched.suppressed);
}

// Digest equality must also survive serve-side chaos: worker kills and
// stalls reshuffle processing in time but lose nothing, so the schedule a
// 1-shard chaotic run computes equals the 4-shard chaotic one.
TEST(AdvisorService, ChaosScheduleIdenticalAcrossShardCounts) {
  const auto plan =
      faultinject::FaultPlan::parse("failworker=0@50,stall=1@100:200", 7);
  const auto s1 = run_service(1, &plan, nullptr, nullptr);
  const auto s4 = run_service(4, &plan, nullptr, nullptr);
  EXPECT_GT(s1.events, 0u);
  EXPECT_EQ(s1.to_string(), s4.to_string());
  EXPECT_EQ(s1.digest(), s4.digest());
}

}  // namespace
