// Evaluation tests: the correctness / in-time split, location matching at
// each scope, the zero-lead grace, category recall, and lead-time stats.
#include <gtest/gtest.h>

#include "elsa/evaluate.hpp"

namespace {

using namespace elsa::core;
namespace topo = elsa::topo;
using elsa::simlog::GroundTruthFault;

Prediction pred(std::int64_t trigger_ms, std::int64_t issue_ms,
                std::int64_t lead_ms, std::uint32_t tmpl,
                std::vector<std::int32_t> nodes = {},
                topo::Scope scope = topo::Scope::System) {
  Prediction p;
  p.trigger_time_ms = trigger_ms;
  p.issue_time_ms = issue_ms;
  p.lead_ms = lead_ms;
  p.predicted_time_ms = trigger_ms + lead_ms;
  p.tmpl = tmpl;
  p.nodes = std::move(nodes);
  p.scope = scope;
  return p;
}

GroundTruthFault fault(std::uint32_t id, std::int64_t fail_ms,
                       const std::string& category,
                       std::vector<std::int32_t> affected = {5}) {
  GroundTruthFault f;
  f.id = id;
  f.fail_time_ms = fail_ms;
  f.category = category;
  f.affected_nodes = std::move(affected);
  f.initiating_node = f.affected_nodes.empty() ? -1 : f.affected_nodes[0];
  return f;
}

class EvaluateTest : public ::testing::Test {
 protected:
  topo::Topology topo_ = topo::Topology::bluegene(2, 2, 4, 8);
  EvalConfig cfg_;
};

TEST_F(EvaluateTest, InTimePredictionCountsForBoth) {
  const std::vector<GroundTruthFault> faults{fault(1, 100'000, "memory")};
  const std::vector<std::vector<std::uint32_t>> tmpls{{7}};
  const auto r = evaluate_predictions(
      {pred(40'000, 41'000, 60'000, 7)}, faults, tmpls, topo_, 0, cfg_);
  EXPECT_EQ(r.predictions, 1u);
  EXPECT_EQ(r.correct_predictions, 1u);
  EXPECT_EQ(r.predicted_faults, 1u);
  EXPECT_EQ(r.faults, 1u);
  EXPECT_DOUBLE_EQ(r.precision(), 1.0);
  EXPECT_DOUBLE_EQ(r.recall(), 1.0);
  ASSERT_EQ(r.lead_times_s.size(), 1u);
  EXPECT_NEAR(r.lead_times_s[0], 59.0, 1e-9);
}

TEST_F(EvaluateTest, LatePredictionCorrectButNotRecalled) {
  const std::vector<GroundTruthFault> faults{fault(1, 100'000, "io")};
  const std::vector<std::vector<std::uint32_t>> tmpls{{7}};
  // Issued 5 s after the failure (analysis took too long).
  const auto r = evaluate_predictions(
      {pred(95'000, 105'000, 0, 7)}, faults, tmpls, topo_, 0, cfg_);
  EXPECT_EQ(r.correct_predictions, 1u);
  EXPECT_EQ(r.predicted_faults, 0u);
  EXPECT_EQ(r.missed_late, 1u);
}

TEST_F(EvaluateTest, WrongTemplateIsFalsePositive) {
  const std::vector<GroundTruthFault> faults{fault(1, 100'000, "memory")};
  const std::vector<std::vector<std::uint32_t>> tmpls{{7}};
  const auto r = evaluate_predictions(
      {pred(40'000, 41'000, 60'000, 8)}, faults, tmpls, topo_, 0, cfg_);
  EXPECT_EQ(r.correct_predictions, 0u);
  EXPECT_DOUBLE_EQ(r.precision(), 0.0);
}

TEST_F(EvaluateTest, AnyFailureTemplateOfFaultMatches) {
  // A fault that logs two failure events (ciodb + mmcs aborts).
  const std::vector<GroundTruthFault> faults{fault(1, 100'000, "io")};
  const std::vector<std::vector<std::uint32_t>> tmpls{{7, 9}};
  const auto r = evaluate_predictions(
      {pred(40'000, 41'000, 60'000, 9)}, faults, tmpls, topo_, 0, cfg_);
  EXPECT_EQ(r.correct_predictions, 1u);
}

TEST_F(EvaluateTest, WindowTooEarlyOrTooLateRejected) {
  const std::vector<GroundTruthFault> faults{fault(1, 500'000, "memory")};
  const std::vector<std::vector<std::uint32_t>> tmpls{{7}};
  // Predicted window [40s, 100s + slack]; failure at 500 s: outside.
  auto r = evaluate_predictions({pred(40'000, 41'000, 60'000, 7)}, faults,
                                tmpls, topo_, 0, cfg_);
  EXPECT_EQ(r.correct_predictions, 0u);
  // Failure before the trigger (beyond the grace bucket): outside.
  r = evaluate_predictions({pred(600'000, 601'000, 60'000, 7)}, faults,
                           tmpls, topo_, 0, cfg_);
  EXPECT_EQ(r.correct_predictions, 0u);
}

TEST_F(EvaluateTest, ZeroLeadGraceCoversSameBucketFailure) {
  // Failure 8 s before the bucket-close trigger: within the grace.
  const std::vector<GroundTruthFault> faults{fault(1, 92'000, "io")};
  const std::vector<std::vector<std::uint32_t>> tmpls{{7}};
  const auto r = evaluate_predictions(
      {pred(100'000, 100'500, 0, 7)}, faults, tmpls, topo_, 0, cfg_);
  EXPECT_EQ(r.correct_predictions, 1u);
  EXPECT_EQ(r.predicted_faults, 0u);  // still late for proactive action
}

TEST_F(EvaluateTest, LocationScopeMatching) {
  // Fault on node 5; prediction anchored at node 6 (same node card).
  const std::vector<GroundTruthFault> faults{
      fault(1, 100'000, "memory", {5})};
  const std::vector<std::vector<std::uint32_t>> tmpls{{7}};
  // Node scope: 6 != 5 -> no match.
  auto r = evaluate_predictions(
      {pred(40'000, 41'000, 60'000, 7, {6}, topo::Scope::Node)}, faults,
      tmpls, topo_, 0, cfg_);
  EXPECT_EQ(r.correct_predictions, 0u);
  // NodeCard scope: nodes 5 and 6 share a card -> match.
  r = evaluate_predictions(
      {pred(40'000, 41'000, 60'000, 7, {6}, topo::Scope::NodeCard)}, faults,
      tmpls, topo_, 0, cfg_);
  EXPECT_EQ(r.correct_predictions, 1u);
  // Distant node even at midplane scope -> no match (node 100 = rack 1).
  r = evaluate_predictions(
      {pred(40'000, 41'000, 60'000, 7, {100}, topo::Scope::Midplane)},
      faults, tmpls, topo_, 0, cfg_);
  EXPECT_EQ(r.correct_predictions, 0u);
}

TEST_F(EvaluateTest, SystemScopeAndEmptyNodesAlwaysMatchLocation) {
  const std::vector<GroundTruthFault> faults{
      fault(1, 100'000, "memory", {5})};
  const std::vector<std::vector<std::uint32_t>> tmpls{{7}};
  auto r = evaluate_predictions(
      {pred(40'000, 41'000, 60'000, 7, {}, topo::Scope::Node)}, faults,
      tmpls, topo_, 0, cfg_);
  EXPECT_EQ(r.correct_predictions, 1u);
}

TEST_F(EvaluateTest, RequireLocationOffIgnoresScopes) {
  const std::vector<GroundTruthFault> faults{
      fault(1, 100'000, "memory", {5})};
  const std::vector<std::vector<std::uint32_t>> tmpls{{7}};
  auto cfg = cfg_;
  cfg.require_location = false;
  const auto r = evaluate_predictions(
      {pred(40'000, 41'000, 60'000, 7, {100}, topo::Scope::Node)}, faults,
      tmpls, topo_, 0, cfg);
  EXPECT_EQ(r.correct_predictions, 1u);
}

TEST_F(EvaluateTest, TrainPeriodFaultsExcluded) {
  const std::vector<GroundTruthFault> faults{fault(1, 100'000, "memory"),
                                             fault(2, 900'000, "memory")};
  const std::vector<std::vector<std::uint32_t>> tmpls{{7}, {7}};
  const auto r = evaluate_predictions({}, faults, tmpls, topo_,
                                      /*test_begin=*/500'000, cfg_);
  EXPECT_EQ(r.faults, 1u);
}

TEST_F(EvaluateTest, PerCategoryRecallBreakdown) {
  const std::vector<GroundTruthFault> faults{
      fault(1, 100'000, "memory"), fault(2, 400'000, "memory"),
      fault(3, 700'000, "network")};
  const std::vector<std::vector<std::uint32_t>> tmpls{{7}, {7}, {8}};
  const auto r = evaluate_predictions(
      {pred(40'000, 41'000, 60'000, 7)}, faults, tmpls, topo_, 0, cfg_);
  ASSERT_EQ(r.per_category.size(), 2u);
  EXPECT_EQ(r.per_category[0].category, "memory");
  EXPECT_EQ(r.per_category[0].total, 2u);
  EXPECT_EQ(r.per_category[0].predicted, 1u);
  EXPECT_DOUBLE_EQ(r.per_category[0].recall(), 0.5);
  EXPECT_EQ(r.per_category[1].category, "network");
  EXPECT_EQ(r.per_category[1].predicted, 0u);
}

TEST_F(EvaluateTest, LeadFractionAbove) {
  EvalResult r;
  r.lead_times_s = {5.0, 30.0, 90.0, 700.0};
  EXPECT_DOUBLE_EQ(r.lead_fraction_above(10.0), 0.75);
  EXPECT_DOUBLE_EQ(r.lead_fraction_above(60.0), 0.5);
  EXPECT_DOUBLE_EQ(r.lead_fraction_above(600.0), 0.25);
  EXPECT_DOUBLE_EQ(EvalResult{}.lead_fraction_above(1.0), 0.0);
}

TEST_F(EvaluateTest, EarliestPredictionDefinesLeadTime) {
  const std::vector<GroundTruthFault> faults{fault(1, 100'000, "memory")};
  const std::vector<std::vector<std::uint32_t>> tmpls{{7}};
  const auto r = evaluate_predictions(
      {pred(40'000, 90'000, 60'000, 7), pred(40'000, 50'000, 60'000, 7)},
      faults, tmpls, topo_, 0, cfg_);
  ASSERT_EQ(r.lead_times_s.size(), 1u);
  EXPECT_NEAR(r.lead_times_s[0], 50.0, 1e-9);
}

}  // namespace
