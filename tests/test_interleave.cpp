// Interleaving-explorer suite: the dynamic half of the lock-free auditing
// layer. Built with ELSA_INTERLEAVE_HARNESS, so every util::sched_point()
// in the lock-free structures is a scheduling decision, and links ONLY
// GTest — the structures under test are header-only, which keeps the two
// sched_point() bodies out of one link (the ODR rule in interleave.hpp).
//
// Four ported production protocols (random walk, >= 1000 distinct
// schedules each at the default rounds) plus bounded-exhaustive runs over
// the non-blocking protocols, a determinism proof (same seed, same
// schedule), and the negative control: a deliberately weakened SPSC clone
// whose cursor-before-payload publication the explorer must catch and
// replay.
//
// CI scaling knobs (all optional):
//   ELSA_INTERLEAVE_ROUNDS         random-walk schedules per suite (1500)
//   ELSA_INTERLEAVE_PREEMPTIONS    exhaustive preemption bound (2)
//   ELSA_INTERLEAVE_MAX_SCHEDULES  exhaustive enumeration cap (20000)
#include "util/interleave.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "advisor/spsc.hpp"
#include "serve/metrics.hpp"
#include "serve/model_handle.hpp"
#include "serve/spsc_ring.hpp"

namespace {

using elsa::util::interleave::Options;
using elsa::util::interleave::Result;
using elsa::util::interleave::Setup;
using elsa::util::interleave::Trial;
using elsa::util::interleave::explore_exhaustive;
using elsa::util::interleave::explore_random;
using elsa::util::interleave::replay;

std::size_t env_or(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
}

std::size_t rounds() { return env_or("ELSA_INTERLEAVE_ROUNDS", 1500); }

Options exhaustive_options() {
  Options opt;
  opt.preemption_bound = env_or("ELSA_INTERLEAVE_PREEMPTIONS", 2);
  opt.max_schedules = env_or("ELSA_INTERLEAVE_MAX_SCHEDULES", 20000);
  return opt;
}

/// Distinct-schedule floor, scaled down when CI dials the rounds down.
std::size_t distinct_floor() {
  const std::size_t r = rounds();
  return r >= 1500 ? 1000 : r / 2;
}

#define EXPECT_CLEAN(res)                                               \
  EXPECT_FALSE((res).failed) << (res).failure << "\n" << (res).replay_line()

// ---------------------------------------------------------------------------
// Port 1: serve::SpscRing — 1P1C blocking FIFO + close. The producer pushes
// a known sequence and closes; the consumer drains with pop_wait. Every
// schedule must conserve and order the items exactly.

Setup serve_ring_fifo_setup() {
  return [](Trial& t) {
    constexpr int kItems = 8;
    auto ring = std::make_shared<elsa::serve::SpscRing<int>>(4);
    auto got = std::make_shared<std::vector<int>>();
    t.thread([ring] {
      for (int i = 0; i < kItems; ++i) ring->push(i);
      ring->close();
    });
    t.thread([ring, got] {
      std::vector<int> batch;
      while (ring->pop_wait(batch, 3)) {
        got->insert(got->end(), batch.begin(), batch.end());
        batch.clear();
      }
    });
    t.check([got]() -> std::string {
      if (got->size() != kItems)
        return "consumer saw " + std::to_string(got->size()) + "/8 items";
      for (int i = 0; i < kItems; ++i)
        if ((*got)[static_cast<std::size_t>(i)] != i)
          return "FIFO order broken at index " + std::to_string(i);
      return "";
    });
  };
}

TEST(InterleaveServeRing, BlockingFifoAndCloseHoldEverywhere) {
  const Result res = explore_random(serve_ring_fifo_setup(), 0xe15a01, rounds());
  EXPECT_CLEAN(res);
  EXPECT_GE(res.distinct, distinct_floor());
  EXPECT_EQ(res.diverged, 0u);
}

// Port 2: serve::SpscRing — push_evict against a live consumer. Eviction
// drops only the oldest; whatever the consumer observes must be an ordered
// subsequence, and popped + evicted + remaining must conserve the input.

Setup serve_ring_evict_setup() {
  return [](Trial& t) {
    constexpr int kItems = 8;
    auto ring = std::make_shared<elsa::serve::SpscRing<int>>(2);
    auto got = std::make_shared<std::vector<int>>();
    t.thread([ring] {
      for (int i = 0; i < kItems; ++i) ring->push_evict(i);
    });
    t.thread([ring, got] {
      for (int spins = 0; spins < kItems; ++spins) {
        auto item = ring->try_pop();
        if (item) got->push_back(*item);
      }
    });
    t.check([ring, got]() -> std::string {
      std::vector<int> rest;
      while (auto item = ring->try_pop()) rest.push_back(*item);
      std::vector<int> seen(*got);
      seen.insert(seen.end(), rest.begin(), rest.end());
      // Ordered subsequence of 0..7 (eviction removes, never reorders).
      int next = 0;
      for (int v : seen) {
        if (v < next || v >= kItems) return "saw out-of-order " + std::to_string(v);
        next = v + 1;
      }
      const std::size_t evicted = static_cast<std::size_t>(ring->evicted());
      if (seen.size() + evicted != kItems)
        return "conservation broken: popped+remaining " +
               std::to_string(seen.size()) + " + evicted " +
               std::to_string(evicted) + " != 8";
      return "";
    });
  };
}

TEST(InterleaveServeRing, EvictionConservesAndOrders) {
  const Result res =
      explore_random(serve_ring_evict_setup(), 0xe15a02, rounds());
  EXPECT_CLEAN(res);
  EXPECT_GE(res.distinct, distinct_floor());
}

// Port 3: serve::StripedCounter — two adders and a monotone reader; the
// final sum is exact, and no intermediate read may exceed it or regress.

Setup striped_counter_setup() {
  return [](Trial& t) {
    constexpr std::uint64_t kPerThread = 6;
    auto counter = std::make_shared<elsa::serve::StripedCounter>();
    auto reads = std::make_shared<std::vector<std::uint64_t>>();
    for (int a = 0; a < 2; ++a)
      t.thread([counter] {
        for (std::uint64_t i = 0; i < kPerThread; ++i) counter->add(1);
      });
    t.thread([counter, reads] {
      for (int i = 0; i < 4; ++i) reads->push_back(counter->read());
    });
    t.check([counter, reads]() -> std::string {
      const std::uint64_t total = counter->read();
      if (total != 2 * kPerThread)
        return "final sum " + std::to_string(total) + " != 12";
      std::uint64_t prev = 0;
      for (std::uint64_t r : *reads) {
        if (r < prev) return "reader regressed: " + std::to_string(r);
        if (r > total) return "reader overshot: " + std::to_string(r);
        prev = r;
      }
      return "";
    });
  };
}

TEST(InterleaveStripedCounter, SumIsExactAndReadsMonotone) {
  const Result res = explore_random(striped_counter_setup(), 0xe15a03, rounds());
  EXPECT_CLEAN(res);
  EXPECT_GE(res.distinct, distinct_floor());
}

// Port 4: the advisor tap hand-off — advisor::SpscRing under overflow, the
// exact protocol AdvisorService::publish runs per shard: try_push, count
// the drop on false. accepted + dropped == attempts, and the consumer sees
// an ordered prefix-subsequence of what was accepted.

Setup advisor_tap_setup() {
  return [](Trial& t) {
    constexpr int kAttempts = 8;
    auto ring = std::make_shared<elsa::advisor::SpscRing<int>>(2);
    auto accepted = std::make_shared<std::vector<int>>();
    auto dropped = std::make_shared<int>(0);
    auto got = std::make_shared<std::vector<int>>();
    t.thread([ring, accepted, dropped] {
      for (int i = 0; i < kAttempts; ++i) {
        if (ring->try_push(i))
          accepted->push_back(i);
        else
          ++*dropped;
      }
    });
    t.thread([ring, got] {
      for (int spins = 0; spins < kAttempts; ++spins) {
        int v = 0;
        if (ring->try_pop(v)) got->push_back(v);
      }
    });
    t.check([ring, accepted, dropped, got]() -> std::string {
      if (accepted->size() + static_cast<std::size_t>(*dropped) != kAttempts)
        return "accepted " + std::to_string(accepted->size()) + " + dropped " +
               std::to_string(*dropped) + " != 8";
      std::vector<int> all(*got);
      int v = 0;
      while (ring->try_pop(v)) all.push_back(v);
      if (all != *accepted)
        return "consumed stream is not the accepted stream (got " +
               std::to_string(all.size()) + "/" +
               std::to_string(accepted->size()) + ")";
      return "";
    });
  };
}

TEST(InterleaveAdvisorTap, OverflowCountsAndFifoHoldEverywhere) {
  const Result res = explore_random(advisor_tap_setup(), 0xe15a04, rounds());
  EXPECT_CLEAN(res);
  EXPECT_GE(res.distinct, distinct_floor());
  EXPECT_EQ(res.diverged, 0u);  // both bodies are straight-line non-blocking
}

// Port 5: the watchdog stop-flag handshake (ShardedEngine's Shard::alive
// protocol, modeled with explicit schedule points): the worker publishes N
// relaxed progress increments with one release store; the watcher's
// acquire load of the flag must make every increment visible.

template <class T>
class TracedAtomic {
 public:
  explicit TracedAtomic(T v) : a_(v) {}
  T load(std::memory_order o) const {
    elsa::util::sched_point();
    return a_.load(o);
  }
  void store(T v, std::memory_order o) {
    elsa::util::sched_point();
    a_.store(v, o);
  }
  T fetch_add(T n, std::memory_order o) {
    elsa::util::sched_point();
    return a_.fetch_add(n, o);
  }

 private:
  std::atomic<T> a_;
};

Setup watchdog_handshake_setup() {
  return [](Trial& t) {
    constexpr std::uint64_t kWork = 5;
    struct State {
      TracedAtomic<std::uint64_t> progress{0};
      TracedAtomic<bool> done{false};
    };
    auto st = std::make_shared<State>();
    auto snap = std::make_shared<std::uint64_t>(0);
    t.thread([st] {
      for (std::uint64_t i = 0; i < kWork; ++i)
        // relaxed: the trailing release store of `done` publishes these.
        st->progress.fetch_add(1, std::memory_order_relaxed);
      st->done.store(true, std::memory_order_release);
    });
    t.thread([st, snap] {
      while (!st->done.load(std::memory_order_acquire)) {
      }
      // relaxed: ordered by the acquire load of `done` above.
      *snap = st->progress.load(std::memory_order_relaxed);
    });
    t.check([snap]() -> std::string {
      if (*snap != kWork)
        return "watchdog saw " + std::to_string(*snap) + "/5 after the "
               "release/acquire handshake";
      return "";
    });
  };
}

TEST(InterleaveWatchdog, StopFlagHandshakePublishesProgress) {
  const Result res =
      explore_random(watchdog_handshake_setup(), 0xe15a05, rounds());
  EXPECT_CLEAN(res);
  EXPECT_GE(res.distinct, distinct_floor());
}

/// Exhaustive-safe variant of the handshake: the watcher polls a bounded
/// number of times instead of spinning, so every body terminates under
/// every schedule (the non-blocking rule for exhaustive suites — an
/// unbounded spin would push each schedule to the divergence cutoff and
/// blow up the DFS).
Setup watchdog_bounded_setup() {
  return [](Trial& t) {
    constexpr std::uint64_t kWork = 5;
    struct State {
      TracedAtomic<std::uint64_t> progress{0};
      TracedAtomic<bool> done{false};
    };
    auto st = std::make_shared<State>();
    auto observed = std::make_shared<bool>(false);
    auto snap = std::make_shared<std::uint64_t>(0);
    t.thread([st] {
      for (std::uint64_t i = 0; i < kWork; ++i)
        // relaxed: the trailing release store of `done` publishes these.
        st->progress.fetch_add(1, std::memory_order_relaxed);
      st->done.store(true, std::memory_order_release);
    });
    t.thread([st, observed, snap] {
      for (int i = 0; i < 40 && !*observed; ++i)
        *observed = st->done.load(std::memory_order_acquire);
      if (*observed)
        // relaxed: ordered by the acquire load of `done` above.
        *snap = st->progress.load(std::memory_order_relaxed);
    });
    t.check([observed, snap]() -> std::string {
      if (*observed && *snap != kWork)
        return "watchdog saw " + std::to_string(*snap) + "/5 after the "
               "release/acquire handshake";
      return "";
    });
  };
}

// Port 6: serve::RcuHub — the model hot-swap hand-off. A publisher pushes
// two generations while a reader pins, reads and re-reads across explicit
// yield points. Three invariants under every schedule: (a) grace — a value
// reachable through a pinned handle is never reclaimed while the pin is
// held; (b) no pointer/epoch skew — generation i carries payload i, and a
// handle must always agree with its own epoch (the hub swaps value+epoch
// as one pointer precisely so this can't tear); (c) the epoch a reader
// observes never regresses (the engine's swap-on-epoch-change handshake
// would otherwise double-swap or miss a model).

/// Hub payload with externally tracked liveness: reclamation flips the
/// slot so a reader can detect use-after-free without touching freed
/// memory. Atomics because a diverged schedule finishes in free-running
/// mode (real concurrency); relaxed is enough — the cooperative scheduler
/// serializes the non-diverged runs the invariants are judged on.
struct TrackedPayload {
  int v;
  std::shared_ptr<std::vector<std::atomic<int>>> alive;
  TrackedPayload(int val, std::shared_ptr<std::vector<std::atomic<int>>> a)
      : v(val), alive(std::move(a)) {
    // relaxed: liveness flag only; ordering rides on the hub's protocol.
    (*alive)[static_cast<std::size_t>(v)].store(1, std::memory_order_relaxed);
  }
  ~TrackedPayload() {
    // relaxed: liveness flag only; ordering rides on the hub's protocol.
    (*alive)[static_cast<std::size_t>(v)].store(0, std::memory_order_relaxed);
  }
};

Setup rcu_hub_setup() {
  return [](Trial& t) {
    auto alive = std::make_shared<std::vector<std::atomic<int>>>(3);
    auto hub = std::make_shared<elsa::serve::RcuHub<TrackedPayload>>(
        std::make_unique<const TrackedPayload>(0, alive));
    auto err = std::make_shared<std::string>();
    auto last_epoch = std::make_shared<std::uint64_t>(0);
    t.thread([hub, alive] {
      hub->publish(std::make_unique<const TrackedPayload>(1, alive));
      hub->publish(std::make_unique<const TrackedPayload>(2, alive));
    });
    t.thread([hub, alive, err, last_epoch] {
      for (int i = 0; i < 3 && err->empty(); ++i) {
        const auto h = hub->pin(0);
        const int v = h.get()->v;
        if (static_cast<std::uint64_t>(v) != h.epoch()) {
          *err = "pointer/epoch skew: payload " + std::to_string(v) +
                 " at epoch " + std::to_string(h.epoch());
          return;
        }
        if (h.epoch() < *last_epoch) {
          *err = "epoch regressed to " + std::to_string(h.epoch());
          return;
        }
        *last_epoch = h.epoch();
        // Give the publisher room to retire and scan while we hold the
        // pin; the pinned value must survive the collect pass.
        elsa::util::sched_point();
        // relaxed: detection probe of the liveness flag; the grace
        // guarantee under test is the hub's, not this load's.
        if ((*alive)[static_cast<std::size_t>(v)].load(
                std::memory_order_relaxed) == 0) {
          *err = "pinned payload " + std::to_string(v) +
                 " reclaimed during its grace period";
          return;
        }
      }
    });
    t.check([err]() -> std::string { return *err; });
  };
}

TEST(InterleaveRcuHub, GraceAndEpochSkewHoldEverywhere) {
  const Result res = explore_random(rcu_hub_setup(), 0xe15a07, rounds());
  EXPECT_CLEAN(res);
  EXPECT_GE(res.distinct, distinct_floor());
  EXPECT_EQ(res.diverged, 0u);  // pin/publish/collect never block
}

// ---------------------------------------------------------------------------
// Bounded-exhaustive enumeration: every schedule within the preemption
// bound, for the straight-line (guaranteed-terminating) protocols.

TEST(InterleaveExhaustive, AdvisorTapWithinPreemptionBound) {
  const Result res = explore_exhaustive(advisor_tap_setup(),
                                        exhaustive_options());
  EXPECT_CLEAN(res);
  EXPECT_EQ(res.diverged, 0u);
  // Either the bounded space was fully covered or the cap cut it off —
  // both are fine, but the run must be substantive.
  EXPECT_TRUE(res.exhausted || res.schedules == exhaustive_options().max_schedules);
  EXPECT_GE(res.schedules, 50u);
}

TEST(InterleaveExhaustive, WatchdogHandshakeWithinPreemptionBound) {
  const Result res =
      explore_exhaustive(watchdog_bounded_setup(), exhaustive_options());
  EXPECT_CLEAN(res);
  EXPECT_EQ(res.diverged, 0u);
  EXPECT_GE(res.schedules, 20u);
}

// ---------------------------------------------------------------------------
// Determinism: the same seed must produce bit-identical schedules. An
// always-failing check records round 0's trace; two runs must agree, and a
// different seed must diverge.

Setup trace_probe_setup() {
  return [](Trial& t) {
    auto ring = std::make_shared<elsa::advisor::SpscRing<int>>(2);
    t.thread([ring] {
      for (int i = 0; i < 3; ++i) ring->try_push(i);
    });
    t.thread([ring] {
      int v = 0;
      for (int i = 0; i < 3; ++i) ring->try_pop(v);
    });
    t.check([]() -> std::string { return "probe"; });  // always record
  };
}

TEST(InterleaveDeterminism, SameSeedSameSchedule) {
  const Result a = explore_random(trace_probe_setup(), 42, 1);
  const Result b = explore_random(trace_probe_setup(), 42, 1);
  ASSERT_TRUE(a.failed && b.failed);
  ASSERT_FALSE(a.fail_trace.empty());
  EXPECT_EQ(a.fail_trace, b.fail_trace);
  EXPECT_EQ(a.fail_seed, b.fail_seed);

  const Result c = explore_random(trace_probe_setup(), 43, 1);
  EXPECT_NE(a.fail_trace, c.fail_trace);
}

TEST(InterleaveDeterminism, ReplayReproducesTheRecordedTrace) {
  const Result a = explore_random(trace_probe_setup(), 7, 1);
  ASSERT_TRUE(a.failed);
  const Result r = replay(trace_probe_setup(), a.fail_trace);
  EXPECT_EQ(r.fail_trace, a.fail_trace);
}

// ---------------------------------------------------------------------------
// The negative control: a deliberately weakened SPSC clone that publishes
// its tail cursor BEFORE writing the slot (the reordering window a correct
// ring closes by sequencing payload first, release-store after — compare
// advisor::SpscRing::try_push). The explorer must find the schedule where
// the consumer reads the unwritten slot, and the trace must replay.

class WeakSpscRing {
 public:
  explicit WeakSpscRing(std::size_t cap) : buf_(cap + 1, kUnwritten) {}

  bool try_push(int v) {
    elsa::util::sched_point();
    // relaxed: own-side cursor, only this thread writes it.
    const std::size_t t = tail_.load(std::memory_order_relaxed);
    elsa::util::sched_point();
    const std::size_t h = head_.load(std::memory_order_acquire);
    if (next(t) == h) return false;
    // BUG (seeded): the cursor goes out before the payload, so a consumer
    // scheduled between these two lines pops an unwritten slot.
    elsa::util::sched_point();
    tail_.store(next(t), std::memory_order_release);
    elsa::util::sched_point();
    buf_[t] = v;
    return true;
  }

  bool try_pop(int& out) {
    elsa::util::sched_point();
    // relaxed: own-side cursor, only this thread writes it.
    const std::size_t h = head_.load(std::memory_order_relaxed);
    elsa::util::sched_point();
    const std::size_t t = tail_.load(std::memory_order_acquire);
    if (h == t) return false;
    elsa::util::sched_point();
    out = buf_[h];
    elsa::util::sched_point();
    head_.store(next(h), std::memory_order_release);
    return true;
  }

  static constexpr int kUnwritten = -1;

 private:
  std::size_t next(std::size_t i) const { return (i + 1) % buf_.size(); }

  std::vector<int> buf_;
  std::atomic<std::size_t> head_{0};
  std::atomic<std::size_t> tail_{0};
};

Setup weak_ring_setup() {
  return [](Trial& t) {
    auto ring = std::make_shared<WeakSpscRing>(2);
    auto got = std::make_shared<std::vector<int>>();
    t.thread([ring] {
      ring->try_push(100);
      ring->try_push(200);
    });
    t.thread([ring, got] {
      int v = 0;
      for (int i = 0; i < 2; ++i)
        if (ring->try_pop(v)) got->push_back(v);
    });
    t.check([got]() -> std::string {
      const std::vector<int> want = {100, 200};
      for (std::size_t i = 0; i < got->size(); ++i)
        if ((*got)[i] != want[i])
          return "popped unwritten/unordered value " +
                 std::to_string((*got)[i]) + " at index " + std::to_string(i);
      return "";
    });
  };
}

TEST(InterleaveNegative, ExplorerCatchesTheSeededPublicationBug) {
  const Result res = explore_exhaustive(weak_ring_setup(), exhaustive_options());
  ASSERT_TRUE(res.failed) << "seeded bug escaped " << res.schedules
                          << " schedules";
  std::printf("%s\n", res.replay_line().c_str());
  EXPECT_NE(res.failure.find("unwritten"), std::string::npos) << res.failure;

  // The recorded schedule is a deterministic reproducer.
  const Result again = replay(weak_ring_setup(), res.fail_trace);
  EXPECT_TRUE(again.failed) << "replay of the failing trace did not fail";
  EXPECT_EQ(again.failure, res.failure);
}

TEST(InterleaveNegative, RandomWalkAlsoCatchesTheSeededBug) {
  const Result res = explore_random(weak_ring_setup(), 0xe15a06, rounds());
  EXPECT_TRUE(res.failed) << "seeded bug escaped " << res.schedules
                          << " random schedules";
}

// ---------------------------------------------------------------------------
// Second negative control: a weakened RcuHub clone that loads the current
// pointer BEFORE declaring itself pinned — the exact ordering RcuHub::pin
// forbids (PINNED store first, pointer load second, both seq_cst). In the
// window between the two, a publisher's quiescence scan sees the slot
// quiescent, clears its pending bit and frees the value the reader is
// about to use. The explorer must find that schedule and replay it.

class WeakRcuHub {
 public:
  explicit WeakRcuHub(std::unique_ptr<const TrackedPayload> initial)
      : current_(initial.release()) {}

  ~WeakRcuHub() {
    // Teardown on the controlling thread, readers done: free everything.
    for (const TrackedPayload* v : freed_) delete v;
    for (const TrackedPayload* v : retired_) delete v;
    delete current_.load(std::memory_order_seq_cst);
  }

  const TrackedPayload* pin() {
    elsa::util::sched_point();
    // BUG (seeded): the pointer comes out before the pin goes up, so a
    // collect() scheduled between these two lines reclaims it.
    const TrackedPayload* v = current_.load(std::memory_order_seq_cst);
    elsa::util::sched_point();
    pinned_.store(true, std::memory_order_seq_cst);
    return v;
  }

  void unpin() {
    elsa::util::sched_point();
    pinned_.store(false, std::memory_order_seq_cst);
  }

  void publish(std::unique_ptr<const TrackedPayload> next) {
    elsa::util::sched_point();
    const TrackedPayload* old =
        current_.exchange(next.release(), std::memory_order_seq_cst);
    retired_.push_back(old);
    collect();
  }

  void collect() {
    std::size_t kept = 0;
    for (const TrackedPayload* v : retired_) {
      elsa::util::sched_point();
      if (!pinned_.load(std::memory_order_seq_cst)) {
        // Simulated reclamation: flip the liveness slot now, free the
        // allocation only at teardown — so the racing reader's detection
        // read is itself well-defined even when the bug fires.
        // relaxed: liveness flag only; the seeded bug is in the pin order.
        (*v->alive)[static_cast<std::size_t>(v->v)].store(
            0, std::memory_order_relaxed);
        freed_.push_back(v);
      } else {
        retired_[kept++] = v;
      }
    }
    retired_.resize(kept);
  }

 private:
  std::atomic<const TrackedPayload*> current_;
  std::atomic<bool> pinned_{false};  ///< single reader slot
  std::vector<const TrackedPayload*> retired_;  ///< publisher only
  std::vector<const TrackedPayload*> freed_;    ///< reclaimed, freed at dtor
};

Setup weak_hub_setup() {
  return [](Trial& t) {
    auto alive = std::make_shared<std::vector<std::atomic<int>>>(2);
    auto hub = std::make_shared<WeakRcuHub>(
        std::make_unique<const TrackedPayload>(0, alive));
    auto err = std::make_shared<std::string>();
    t.thread([hub, alive] {
      hub->publish(std::make_unique<const TrackedPayload>(1, alive));
    });
    t.thread([hub, alive, err] {
      const TrackedPayload* v = hub->pin();
      // relaxed: detection probe of the liveness flag (see above).
      if ((*alive)[static_cast<std::size_t>(v->v)].load(
              std::memory_order_relaxed) == 0)
        *err = "reader pinned an already-reclaimed payload";
      hub->unpin();
    });
    t.check([err]() -> std::string { return *err; });
  };
}

TEST(InterleaveNegative, ExplorerCatchesTheLoadBeforePinBug) {
  const Result res = explore_exhaustive(weak_hub_setup(), exhaustive_options());
  ASSERT_TRUE(res.failed) << "seeded pin-order bug escaped " << res.schedules
                          << " schedules";
  std::printf("%s\n", res.replay_line().c_str());
  EXPECT_NE(res.failure.find("reclaimed"), std::string::npos) << res.failure;

  const Result again = replay(weak_hub_setup(), res.fail_trace);
  EXPECT_TRUE(again.failed) << "replay of the failing trace did not fail";
  EXPECT_EQ(again.failure, res.failure);
}

}  // namespace
