#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/thread_pool.hpp"

namespace {

using namespace elsa::util;

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
  auto f = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 500; ++i)
    futs.push_back(pool.submit([&counter] { ++counter; }));
  for (auto& f : futs) f.get();
  EXPECT_EQ(counter.load(), 500);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, DrainsQueueOnDestruction) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i)
      pool.submit([&counter] { ++counter; });
  }  // destructor joins
  EXPECT_EQ(counter.load(), 100);
}

TEST(ParallelFor, ComputesEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(10000);
  parallel_for(pool, 0, hits.size(),
               [&](std::size_t i) { ++hits[i]; }, /*grain=*/16);
  for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyAndReversedRanges) {
  ThreadPool pool(2);
  int calls = 0;
  parallel_for(pool, 5, 5, [&](std::size_t) { ++calls; });
  parallel_for(pool, 7, 3, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, SmallRangeRunsSerial) {
  ThreadPool pool(4);
  std::vector<int> order;
  // grain larger than the range: body must run inline, in order.
  parallel_for(pool, 0, 8,
               [&](std::size_t i) { order.push_back(static_cast<int>(i)); },
               /*grain=*/64);
  std::vector<int> expected{0, 1, 2, 3, 4, 5, 6, 7};
  EXPECT_EQ(order, expected);
}

TEST(ParallelFor, ExceptionRethrown) {
  ThreadPool pool(4);
  EXPECT_THROW(parallel_for(pool, 0, 1000,
                            [](std::size_t i) {
                              if (i == 777) throw std::runtime_error("x");
                            },
                            /*grain=*/8),
               std::runtime_error);
}

TEST(ParallelFor, EveryChunkThrowingRethrowsExactlyOne) {
  // All chunks throw concurrently; exactly one exception must surface on
  // the calling thread (first wins), never std::terminate.
  ThreadPool pool(4);
  try {
    parallel_for(pool, 0, 512,
                 [](std::size_t i) {
                   throw std::runtime_error("chunk " + std::to_string(i));
                 },
                 /*grain=*/8);
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("chunk"), std::string::npos);
  }
}

TEST(ParallelFor, PoolRemainsUsableAfterException) {
  ThreadPool pool(3);
  EXPECT_THROW(parallel_for(pool, 0, 100,
                            [](std::size_t) { throw std::logic_error("x"); },
                            /*grain=*/4),
               std::logic_error);
  // Workers survived the throwing batch: both submission paths still work.
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
  std::atomic<int> hits{0};
  parallel_for(pool, 0, 1000, [&](std::size_t) { ++hits; }, /*grain=*/16);
  EXPECT_EQ(hits.load(), 1000);
}

TEST(ParallelFor, SumMatchesSerial) {
  ThreadPool pool(3);
  std::vector<long> partial(4096, 0);
  parallel_for(pool, 0, partial.size(),
               [&](std::size_t i) { partial[i] = static_cast<long>(i * i); },
               /*grain=*/32);
  long sum = std::accumulate(partial.begin(), partial.end(), 0L);
  long expect = 0;
  for (long i = 0; i < 4096; ++i) expect += i * i;
  EXPECT_EQ(sum, expect);
}

}  // namespace
