// Model-serialisation tests: round trip of every persisted field, version
// and corruption rejection, and behavioural equivalence — a loaded model
// must drive the online engine to the same predictions as the original.
#include <gtest/gtest.h>

#include <sstream>

#include "elsa/model_io.hpp"
#include "elsa/online.hpp"
#include "simlog/scenario.hpp"

namespace {

using namespace elsa;

const core::OfflineModel& trained_model() {
  static const core::OfflineModel model = [] {
    auto sc = simlog::make_bluegene_scenario(2012, 5.0, 30);
    const auto trace = sc.generator.generate(sc.config);
    core::PipelineConfig cfg;
    return core::train_offline(trace, trace.t_end_ms, core::Method::Hybrid,
                               cfg);
  }();
  return model;
}

TEST(ModelIo, RoundTripPreservesStructure) {
  const auto& model = trained_model();
  std::stringstream ss;
  core::save_model(ss, model);
  const auto loaded = core::load_model(ss);

  EXPECT_EQ(loaded.method, model.method);
  EXPECT_EQ(loaded.train_begin_ms, model.train_begin_ms);
  EXPECT_EQ(loaded.train_end_ms, model.train_end_ms);
  ASSERT_EQ(loaded.helo.size(), model.helo.size());
  for (std::uint32_t t = 0; t < model.helo.size(); ++t) {
    EXPECT_EQ(loaded.helo.at(t).text(), model.helo.at(t).text());
    EXPECT_EQ(loaded.helo.at(t).count, model.helo.at(t).count);
  }
  ASSERT_EQ(loaded.profiles.size(), model.profiles.size());
  for (std::size_t i = 0; i < model.profiles.size(); ++i) {
    EXPECT_EQ(loaded.profiles[i].cls, model.profiles[i].cls);
    EXPECT_DOUBLE_EQ(loaded.profiles[i].spike_delta,
                     model.profiles[i].spike_delta);
    EXPECT_EQ(loaded.profiles[i].dropout_window,
              model.profiles[i].dropout_window);
  }
  EXPECT_EQ(loaded.tmpl_severity, model.tmpl_severity);
  ASSERT_EQ(loaded.chains.size(), model.chains.size());
  for (std::size_t c = 0; c < model.chains.size(); ++c) {
    ASSERT_EQ(loaded.chains[c].items.size(), model.chains[c].items.size());
    for (std::size_t j = 0; j < model.chains[c].items.size(); ++j) {
      EXPECT_EQ(loaded.chains[c].items[j].signal,
                model.chains[c].items[j].signal);
      EXPECT_EQ(loaded.chains[c].items[j].delay,
                model.chains[c].items[j].delay);
    }
    EXPECT_EQ(loaded.chains[c].support, model.chains[c].support);
    EXPECT_EQ(loaded.chains[c].failure_item, model.chains[c].failure_item);
    EXPECT_EQ(loaded.chains[c].location.scope,
              model.chains[c].location.scope);
  }
}

TEST(ModelIo, LoadedMinerClassifiesLikeOriginal) {
  const auto& model = trained_model();
  std::stringstream ss;
  core::save_model(ss, model);
  const auto loaded = core::load_model(ss);

  auto sc = simlog::make_bluegene_scenario(99, 0.2, 30);
  const auto trace = sc.generator.generate(sc.config);
  for (std::size_t i = 0; i < trace.records.size(); i += 37) {
    const auto& msg = trace.records[i].message;
    EXPECT_EQ(loaded.helo.classify_const(msg), model.helo.classify_const(msg))
        << msg;
  }
}

TEST(ModelIo, LoadedModelDrivesSamePredictions) {
  const auto& model = trained_model();
  std::stringstream ss;
  core::save_model(ss, model);
  auto loaded = core::load_model(ss);

  auto sc = simlog::make_bluegene_scenario(4242, 2.0, 30);
  const auto trace = sc.generator.generate(sc.config);
  core::PipelineConfig cfg;
  core::EngineConfig ec = cfg.engine;
  ec.dt_ms = cfg.dt_ms;

  auto run = [&](const core::OfflineModel& m) {
    core::OnlineEngine engine(trace.topology, m.chains, m.profiles, ec);
    auto helo = m.helo;
    for (const auto& rec : trace.records)
      engine.feed(rec, helo.classify(rec.message));
    engine.finish(trace.t_end_ms);
    return engine.predictions();
  };
  const auto a = run(model);
  const auto b = run(loaded);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].tmpl, b[i].tmpl);
    EXPECT_EQ(a[i].trigger_time_ms, b[i].trigger_time_ms);
    EXPECT_EQ(a[i].nodes, b[i].nodes);
  }
}

TEST(ModelIo, RejectsBadMagicAndVersion) {
  std::stringstream bad1("NOT-A-MODEL 1\n");
  EXPECT_THROW(core::load_model(bad1), std::runtime_error);
  std::stringstream bad2("ELSA-MODEL 999\nmethod 0\n");
  EXPECT_THROW(core::load_model(bad2), std::runtime_error);
}

TEST(ModelIo, RejectsTruncatedFile) {
  const auto& model = trained_model();
  std::stringstream ss;
  core::save_model(ss, model);
  const std::string full = ss.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_THROW(core::load_model(truncated), std::runtime_error);
}

TEST(ModelIo, RejectsDanglingChainReference) {
  std::stringstream ss;
  ss << "ELSA-MODEL 1\nmethod 0\ntrain 0 1000\n"
     << "templates 1\nT 5 2 hello world\n"
     << "profiles 1\nP 2 0 0 0.5 0 0 0 0\n"
     << "severities 1\nS 0\n"
     << "chains 1\nC 2 4 0.5 0.9 1 1 0 1 1 4 0:0 9:5\n"  // signal 9 unknown
     << "end\n";
  EXPECT_THROW(core::load_model(ss), std::runtime_error);
}

TEST(ModelIo, DigestIsStableAndSeparatesModels) {
  // model_digest is the identity the online≡batch mining gate compares:
  // repeatable on the same model, unchanged by a serialisation round trip,
  // different the moment any persisted field differs.
  const auto& model = trained_model();
  const std::uint64_t d = core::model_digest(model);
  EXPECT_EQ(d, core::model_digest(model));

  std::stringstream ss;
  core::save_model(ss, model);
  const auto loaded = core::load_model(ss);
  EXPECT_EQ(core::model_digest(loaded), d);

  auto tweaked = loaded;
  ASSERT_FALSE(tweaked.chains.empty());
  tweaked.chains[0].support += 1;
  EXPECT_NE(core::model_digest(tweaked), d);
}

TEST(ModelIo, Fnv1aDigestChainsConcatenation) {
  const std::uint64_t whole = core::fnv1a_digest("abcdef");
  const std::uint64_t chained =
      core::fnv1a_digest("def", core::fnv1a_digest("abc"));
  EXPECT_EQ(whole, chained);
  EXPECT_NE(core::fnv1a_digest("abc"), core::fnv1a_digest("abd"));
}

TEST(ModelIo, FileRoundTrip) {
  const auto& model = trained_model();
  const std::string path = "/tmp/elsa_model_io_test.model";
  core::save_model_file(path, model);
  const auto loaded = core::load_model_file(path);
  EXPECT_EQ(loaded.chains.size(), model.chains.size());
  std::remove(path.c_str());
  EXPECT_THROW(core::load_model_file("/nonexistent/x.model"),
               std::runtime_error);
}

}  // namespace
