// RAS log serialisation tests: round trip, severity/location parsing, and
// tolerance to dirty lines.
#include <gtest/gtest.h>

#include <sstream>

#include "simlog/logio.hpp"
#include "simlog/scenario.hpp"

namespace {

using namespace elsa::simlog;
namespace topo = elsa::topo;

TEST(LogIo, SeverityParsing) {
  EXPECT_EQ(parse_severity("FAILURE"), Severity::Failure);
  EXPECT_EQ(parse_severity("INFO"), Severity::Info);
  EXPECT_EQ(parse_severity("bogus"), std::nullopt);
}

TEST(LogIo, BlueGeneLocationRoundTrip) {
  const auto t = topo::Topology::bluegene(4, 2, 8, 16);
  for (const std::int32_t n : {0, 17, 300, t.total_nodes() - 1}) {
    const auto code = t.code(n);
    EXPECT_EQ(parse_location(code, t), n) << code;
  }
  EXPECT_EQ(parse_location("SYSTEM", t), std::nullopt);
  EXPECT_EQ(parse_location("R99-M9-N99-C:J99", t), std::nullopt);
}

TEST(LogIo, ClusterLocationRoundTrip) {
  const auto t = topo::Topology::cluster(891, 32, "tg-c");
  EXPECT_EQ(parse_location("tg-c0107", t), 107);
  EXPECT_EQ(parse_location("tg-c9999", t), std::nullopt);
  EXPECT_EQ(parse_location("tg-c", t), std::nullopt);
}

TEST(LogIo, WriteThenReadPreservesRecords) {
  const auto t = topo::Topology::bluegene(2, 2, 4, 8);
  std::vector<LogRecord> records;
  LogRecord a;
  a.time_ms = 12'345;
  a.node_id = 42;
  a.severity = Severity::Severe;
  a.message = "linkcard power module R00-M1 is not accessible";
  records.push_back(a);
  LogRecord b;
  b.time_ms = 20'000;
  b.node_id = -1;
  b.severity = Severity::Info;
  b.message = "ciodb has been restarted.";
  records.push_back(b);

  std::stringstream ss;
  write_ras_log(ss, records, t);
  const auto parsed = read_ras_log(ss, t);
  ASSERT_EQ(parsed.records.size(), 2u);
  EXPECT_EQ(parsed.malformed_lines, 0u);
  EXPECT_EQ(parsed.records[0].time_ms, 12'345);
  EXPECT_EQ(parsed.records[0].node_id, 42);
  EXPECT_EQ(parsed.records[0].severity, Severity::Severe);
  EXPECT_EQ(parsed.records[0].message, a.message);
  EXPECT_EQ(parsed.records[1].node_id, -1);
}

TEST(LogIo, MalformedLinesCountedNotFatal) {
  const auto t = topo::Topology::bluegene(2, 2, 4, 8);
  std::stringstream ss;
  ss << "not a log line\n"
     << "\n"
     << "12345\tNONSENSE\tRAS\tSYSTEM\tmsg\n"
     << "9000\tINFO\tRAS\tSYSTEM\tgood message\n";
  const auto parsed = read_ras_log(ss, t);
  EXPECT_EQ(parsed.records.size(), 1u);
  EXPECT_EQ(parsed.malformed_lines, 2u);  // empty line skipped silently
}

TEST(LogIo, MessageWithTabsRejoined) {
  const auto t = topo::Topology::bluegene(2, 2, 4, 8);
  std::stringstream ss;
  ss << "100\tINFO\tRAS\tSYSTEM\tpart one\tpart two\n";
  const auto parsed = read_ras_log(ss, t);
  ASSERT_EQ(parsed.records.size(), 1u);
  EXPECT_EQ(parsed.records[0].message, "part one part two");
}

TEST(LogIo, GeneratedCampaignRoundTrip) {
  auto sc = make_bluegene_scenario(11, 0.5, 20);
  const auto trace = sc.generator.generate(sc.config);
  std::stringstream ss;
  write_ras_log(ss, trace.records, trace.topology);
  const auto parsed = read_ras_log(ss, trace.topology);
  ASSERT_EQ(parsed.records.size(), trace.records.size());
  EXPECT_EQ(parsed.malformed_lines, 0u);
  for (std::size_t i = 0; i < parsed.records.size(); i += 997) {
    EXPECT_EQ(parsed.records[i].time_ms, trace.records[i].time_ms);
    EXPECT_EQ(parsed.records[i].node_id, trace.records[i].node_id);
    EXPECT_EQ(parsed.records[i].message, trace.records[i].message);
  }
}

TEST(LogIo, FileErrorsThrow) {
  const auto t = topo::Topology::bluegene(1, 1, 2, 2);
  EXPECT_THROW(read_ras_log_file("/nonexistent/dir/x.log", t),
               std::runtime_error);
  EXPECT_THROW(write_ras_log_file("/nonexistent/dir/x.log", {}, t),
               std::runtime_error);
}

}  // namespace
