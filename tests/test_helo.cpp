// HELO template-mining tests: recovery of planted templates, numeric
// generalisation, bucket separation, online incremental behaviour, and
// purity against the generator's hidden templates.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "helo/helo.hpp"
#include "simlog/scenario.hpp"

namespace {

using namespace elsa::helo;

TEST(Helo, IdenticalMessagesShareTemplate) {
  TemplateMiner m;
  const auto a = m.classify("ciodb has been restarted.");
  const auto b = m.classify("ciodb has been restarted.");
  EXPECT_EQ(a, b);
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ(m.at(a).count, 2u);
}

TEST(Helo, NumericFieldsGeneralise) {
  TemplateMiner m;
  const auto a = m.classify("job 4711 timed out");
  const auto b = m.classify("job 42 timed out");
  EXPECT_EQ(a, b);
  EXPECT_EQ(m.at(a).text(), "job d+ timed out");
}

TEST(Helo, HexAndAddressesGeneralise) {
  TemplateMiner m;
  const auto a = m.classify("parity error at 0xdeadbeef corrected");
  const auto b = m.classify("parity error at 0x00001234 corrected");
  EXPECT_EQ(a, b);
}

TEST(Helo, WordVariablesBecomeWildcards) {
  TemplateMiner m;
  const auto a = m.classify("torus link failure detected on dimension alpha");
  const auto b = m.classify("torus link failure detected on dimension omega");
  EXPECT_EQ(a, b);
  EXPECT_EQ(m.at(a).tokens[6], "*");
  EXPECT_EQ(m.at(a).wildcards(), 1u);
}

TEST(Helo, DifferentLengthsNeverMerge) {
  TemplateMiner m;
  const auto a = m.classify("link down");
  const auto b = m.classify("link down now");
  EXPECT_NE(a, b);
}

TEST(Helo, DifferentLeadingTokensNeverMerge) {
  TemplateMiner m;
  const auto a = m.classify("correctable error detected in directory 0xab");
  const auto b = m.classify("uncorrectable error detected in directory 0xab");
  EXPECT_NE(a, b);
}

TEST(Helo, TooManyWordMismatchesSplit) {
  TemplateMiner m;
  const auto a = m.classify("alpha bravo charlie delta echo foxtrot");
  const auto b = m.classify("alpha xxx yyy zzz www qqq");
  EXPECT_NE(a, b);
}

TEST(Helo, ClassifyConstDoesNotMutate) {
  TemplateMiner m;
  m.classify("known message one");
  const std::size_t before = m.size();
  EXPECT_EQ(m.classify_const("unknown message entirely different"),
            TemplateMiner::kNoTemplate);
  EXPECT_EQ(m.size(), before);
  EXPECT_NE(m.classify_const("known message one"), TemplateMiner::kNoTemplate);
}

TEST(Helo, EmptyMessage) {
  TemplateMiner m;
  EXPECT_EQ(m.classify(""), TemplateMiner::kNoTemplate);
  EXPECT_EQ(m.classify_const("   "), TemplateMiner::kNoTemplate);
}

TEST(Helo, OnlinePhaseAddsNewTemplatesWithStableIds) {
  TemplateMiner m;
  const auto a = m.classify("service action started part 12");
  const auto b = m.classify("completely new subsystem message appears");
  EXPECT_EQ(b, a + 1);
  // Old template id unchanged after new additions.
  EXPECT_EQ(m.classify("service action started part 99"), a);
}

// Integration: run HELO over a generated campaign and check that the
// recovered templates track the generator's hidden ones.
TEST(Helo, RecoversGeneratorTemplatesWithHighPurity) {
  auto scenario =
      elsa::simlog::make_bluegene_scenario(99, /*duration_days=*/1.0,
                                           /*filler_templates=*/40);
  const auto trace = scenario.generator.generate(scenario.config);
  ASSERT_GT(trace.records.size(), 1000u);

  TemplateMiner m;
  // helo id -> histogram of true template ids
  std::map<std::uint32_t, std::map<std::uint16_t, std::size_t>> assignment;
  for (const auto& rec : trace.records) {
    const auto tid = m.classify(rec.message);
    ASSERT_NE(tid, TemplateMiner::kNoTemplate);
    ++assignment[tid][rec.true_template];
  }

  // Purity: fraction of records whose helo template's majority true id
  // matches their own true id.
  std::size_t majority_total = 0;
  for (const auto& [tid, hist] : assignment) {
    std::size_t best = 0;
    for (const auto& [true_id, n] : hist) {
      (void)true_id;
      best = std::max(best, n);
    }
    majority_total += best;
  }
  const double purity =
      static_cast<double>(majority_total) /
      static_cast<double>(trace.records.size());
  EXPECT_GT(purity, 0.97) << "HELO merged unrelated generator templates";

  // Completeness: most generator templates that appear get their own
  // (majority) helo template rather than being split into many.
  std::set<std::uint16_t> seen_true;
  for (const auto& rec : trace.records) seen_true.insert(rec.true_template);
  EXPECT_LT(m.size(), seen_true.size() * 2)
      << "HELO shattered templates into fragments";
}

}  // namespace
