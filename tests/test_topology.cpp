// Machine-model tests: hierarchy arithmetic, Blue Gene location codes,
// scope queries, and the round-trip property over every node.
#include <gtest/gtest.h>

#include <stdexcept>

#include "topology/topology.hpp"

namespace {

using namespace elsa::topo;

TEST(Topology, BlueGeneDimensions) {
  const auto t = Topology::bluegene(4, 2, 8, 16);
  EXPECT_EQ(t.total_nodes(), 4 * 2 * 8 * 16);
  EXPECT_EQ(t.racks(), 4);
  EXPECT_TRUE(t.is_hierarchical());
  EXPECT_EQ(t.scope_size(Scope::Node), 1);
  EXPECT_EQ(t.scope_size(Scope::NodeCard), 16);
  EXPECT_EQ(t.scope_size(Scope::Midplane), 128);
  EXPECT_EQ(t.scope_size(Scope::Rack), 256);
  EXPECT_EQ(t.scope_size(Scope::System), 1024);
}

TEST(Topology, RejectsBadDimensions) {
  EXPECT_THROW(Topology::bluegene(0, 1, 1, 1), std::invalid_argument);
  EXPECT_THROW(Topology::cluster(0), std::invalid_argument);
  EXPECT_THROW(Topology::cluster(10, 0), std::invalid_argument);
}

TEST(Topology, LocationRoundTripEveryNode) {
  const auto t = Topology::bluegene(2, 2, 4, 8);
  for (std::int32_t n = 0; n < t.total_nodes(); ++n) {
    const Location loc = t.location_of(n);
    EXPECT_EQ(t.node_id(loc), n);
  }
}

TEST(Topology, LocationFieldsDecompose) {
  const auto t = Topology::bluegene(4, 2, 8, 16);
  const Location loc = t.location_of(1 * 256 + 1 * 128 + 3 * 16 + 5);
  EXPECT_EQ(loc.rack, 1);
  EXPECT_EQ(loc.midplane, 1);
  EXPECT_EQ(loc.nodecard, 3);
  EXPECT_EQ(loc.node, 5);
}

TEST(Topology, BlueGeneCodes) {
  const auto t = Topology::bluegene(4, 2, 8, 16);
  EXPECT_EQ(t.code(0), "R00-M0-N00-C:J00");
  EXPECT_EQ(t.code(t.total_nodes() - 1), "R03-M1-N07-C:J15");
  Location card;
  card.rack = 2;
  card.midplane = 1;
  card.nodecard = 7;
  EXPECT_EQ(t.code(card), "R02-M1-N07");
  Location mp;
  mp.rack = 0;
  mp.midplane = 1;
  EXPECT_EQ(t.code(mp), "R00-M1");
  EXPECT_EQ(t.code(Location{}), "SYSTEM");
}

TEST(Topology, ClusterCodes) {
  const auto t = Topology::cluster(891, 32, "tg-c");
  EXPECT_EQ(t.code(0), "tg-c0000");
  EXPECT_EQ(t.code(107), "tg-c0107");
  EXPECT_FALSE(t.is_hierarchical());
}

TEST(Topology, OutOfRangeThrows) {
  const auto t = Topology::bluegene(2, 2, 4, 8);
  EXPECT_THROW(t.location_of(-1), std::out_of_range);
  EXPECT_THROW(t.location_of(t.total_nodes()), std::out_of_range);
  Location partial;
  partial.rack = 0;
  EXPECT_THROW(t.node_id(partial), std::invalid_argument);
}

TEST(Topology, CommonScopeHierarchy) {
  const auto t = Topology::bluegene(4, 2, 8, 16);
  EXPECT_EQ(t.common_scope(0, 0), Scope::Node);
  EXPECT_EQ(t.common_scope(0, 1), Scope::NodeCard);
  EXPECT_EQ(t.common_scope(0, 16), Scope::Midplane);
  EXPECT_EQ(t.common_scope(0, 128), Scope::Rack);
  EXPECT_EQ(t.common_scope(0, 256), Scope::System);
}

TEST(Topology, ClusterCommonScope) {
  const auto t = Topology::cluster(100, 10);
  EXPECT_EQ(t.common_scope(3, 3), Scope::Node);
  EXPECT_EQ(t.common_scope(3, 4), Scope::Rack);    // same rack of 10
  EXPECT_EQ(t.common_scope(3, 55), Scope::System); // different rack
}

TEST(Topology, ClassifySpread) {
  const auto t = Topology::bluegene(4, 2, 8, 16);
  EXPECT_EQ(t.classify_spread({}), Scope::None);
  const std::int32_t one[] = {42};
  EXPECT_EQ(t.classify_spread(one), Scope::Node);
  const std::int32_t card[] = {0, 3, 15};
  EXPECT_EQ(t.classify_spread(card), Scope::NodeCard);
  const std::int32_t mp[] = {0, 20, 100};
  EXPECT_EQ(t.classify_spread(mp), Scope::Midplane);
  const std::int32_t sys[] = {0, 900};
  EXPECT_EQ(t.classify_spread(sys), Scope::System);
}

TEST(Topology, NodesInScope) {
  const auto t = Topology::bluegene(4, 2, 8, 16);
  EXPECT_EQ(t.nodes_in_scope(37, Scope::Node),
            std::vector<std::int32_t>{37});
  const auto card = t.nodes_in_scope(37, Scope::NodeCard);
  ASSERT_EQ(card.size(), 16u);
  EXPECT_EQ(card.front(), 32);
  EXPECT_EQ(card.back(), 47);
  const auto sys = t.nodes_in_scope(0, Scope::System);
  EXPECT_EQ(sys.size(), static_cast<std::size_t>(t.total_nodes()));
}

TEST(Topology, ScopeToString) {
  EXPECT_STREQ(to_string(Scope::Midplane), "midplane");
  EXPECT_STREQ(to_string(Scope::None), "none");
}

}  // namespace
