// Online-engine tests on hand-built chains and record streams: trigger ->
// prediction mechanics, lead times, sequence confirmation, deduplication,
// location attachment, the raw-matching DM mode, and the analysis-queue
// latency accounting.
#include <gtest/gtest.h>

#include "elsa/online.hpp"
#include "topology/topology.hpp"

namespace {

using namespace elsa::core;
namespace topo = elsa::topo;
using elsa::simlog::LogRecord;

constexpr std::int64_t kDt = 10'000;

SignalProfile silent_profile() {
  SignalProfile p;
  p.cls = elsa::sigkit::SignalClass::Silent;
  p.spike_delta = 0.5;
  return p;
}

LogRecord rec(std::int64_t t_ms, std::int32_t node = 5) {
  LogRecord r;
  r.time_ms = t_ms;
  r.node_id = node;
  r.message.assign(1, 'x');  // not `= "x"`: dodges GCC 12's -Wrestrict
                             // false positive (PR105329) under -Werror
  return r;
}

/// Chain 0 ->(6 samples) 1, template 1 is the failure.
Chain simple_chain() {
  Chain c;
  c.items = {{0, 0}, {1, 6}};
  c.failure_item = 1;
  c.support = 10;
  c.confidence = 0.9;
  c.location.scope = topo::Scope::Node;
  return c;
}

EngineConfig fast_config() {
  EngineConfig cfg;
  cfg.dt_ms = kDt;
  cfg.median_window = 64;
  cfg.cost = {0.0, 0.0, 0.0};  // no queueing latency unless a test wants it
  return cfg;
}

TEST(OnlineEngine, EmitsPredictionWithLeadAndLocation) {
  const auto t = topo::Topology::bluegene(1, 1, 4, 8);
  OnlineEngine eng(t, {simple_chain()},
                   {silent_profile(), silent_profile()}, fast_config());
  eng.feed(rec(25'000, 7), 0);  // outlier occurrence of template 0
  eng.finish(400'000);

  ASSERT_EQ(eng.predictions().size(), 1u);
  const auto& p = eng.predictions()[0];
  EXPECT_EQ(p.tmpl, 1u);
  EXPECT_EQ(p.lead_ms, 6 * kDt);
  EXPECT_EQ(p.trigger_time_ms, 30'000);  // bucket [20k,30k) closes at 30 s
  EXPECT_EQ(p.predicted_time_ms, 30'000 + 6 * kDt);
  ASSERT_EQ(p.nodes.size(), 1u);
  EXPECT_EQ(p.nodes[0], 7);
  EXPECT_EQ(p.scope, topo::Scope::Node);
  EXPECT_EQ(eng.stats().chains_used, 1u);
  EXPECT_EQ(eng.stats().outlier_onsets, 1u);
}

TEST(OnlineEngine, NonPredictiveChainNeverFires) {
  auto c = simple_chain();
  c.failure_item = -1;
  const auto t = topo::Topology::bluegene(1, 1, 4, 8);
  OnlineEngine eng(t, {c}, {silent_profile(), silent_profile()},
                   fast_config());
  eng.feed(rec(25'000), 0);
  eng.finish(400'000);
  EXPECT_TRUE(eng.predictions().empty());
}

TEST(OnlineEngine, DedupeSuppressesRepeatedTriggers) {
  const auto t = topo::Topology::bluegene(1, 1, 4, 8);
  OnlineEngine eng(t, {simple_chain()},
                   {silent_profile(), silent_profile()}, fast_config());
  // Two occurrences 3 buckets apart on the same node: one prediction.
  eng.feed(rec(25'000, 7), 0);
  eng.feed(rec(55'000, 7), 0);
  eng.finish(400'000);
  EXPECT_EQ(eng.predictions().size(), 1u);
  EXPECT_EQ(eng.stats().duplicates_suppressed, 1u);
}

TEST(OnlineEngine, FarApartTriggersBothPredict) {
  const auto t = topo::Topology::bluegene(1, 1, 4, 8);
  auto cfg = fast_config();
  cfg.dedupe_window_samples = 10;
  OnlineEngine eng(t, {simple_chain()},
                   {silent_profile(), silent_profile()}, cfg);
  eng.feed(rec(25'000, 7), 0);
  eng.feed(rec(2'000'000, 7), 0);
  eng.finish(4'000'000);
  EXPECT_EQ(eng.predictions().size(), 2u);
}

TEST(OnlineEngine, ConfirmationRequiredForLongPrefixes) {
  // Chain with a 2-item prefix: 0 ->(4) 2 ->(10) 1(failure).
  Chain c;
  c.items = {{0, 0}, {2, 4}, {1, 10}};
  c.failure_item = 2;
  c.confidence = 0.8;
  const auto t = topo::Topology::bluegene(1, 1, 4, 8);
  auto cfg = fast_config();
  cfg.min_prefix_matches = 2;
  OnlineEngine eng(
      t, {c}, {silent_profile(), silent_profile(), silent_profile()}, cfg);

  // First item alone: no alarm.
  eng.feed(rec(25'000, 3), 0);
  eng.finish(100'000);
  EXPECT_TRUE(eng.predictions().empty());

  // Second item at the expected +4 samples: alarm fires, locations merged.
  OnlineEngine eng2(
      t, {c}, {silent_profile(), silent_profile(), silent_profile()}, cfg);
  eng2.feed(rec(25'000, 3), 0);
  eng2.feed(rec(25'000 + 4 * kDt, 9), 2);
  eng2.finish(400'000);
  ASSERT_EQ(eng2.predictions().size(), 1u);
  const auto& p = eng2.predictions()[0];
  EXPECT_EQ(p.tmpl, 1u);
  EXPECT_EQ(p.lead_ms, 6 * kDt);  // failure delay 10 - item delay 4
  ASSERT_EQ(p.nodes.size(), 2u);
}

TEST(OnlineEngine, ConfirmationRejectsWrongDelay) {
  Chain c;
  c.items = {{0, 0}, {2, 4}, {1, 10}};
  c.failure_item = 2;
  const auto t = topo::Topology::bluegene(1, 1, 4, 8);
  auto cfg = fast_config();
  cfg.min_prefix_matches = 2;
  OnlineEngine eng(
      t, {c}, {silent_profile(), silent_profile(), silent_profile()}, cfg);
  eng.feed(rec(25'000, 3), 0);
  // Second item far too late (not 4 +/- tolerance samples).
  eng.feed(rec(25'000 + 40 * kDt, 9), 2);
  eng.finish(1'000'000);
  EXPECT_TRUE(eng.predictions().empty());
}

TEST(OnlineEngine, ConfirmationDisabledFiresImmediately) {
  Chain c;
  c.items = {{0, 0}, {2, 4}, {1, 10}};
  c.failure_item = 2;
  const auto t = topo::Topology::bluegene(1, 1, 4, 8);
  auto cfg = fast_config();
  cfg.min_prefix_matches = 1;
  OnlineEngine eng(
      t, {c}, {silent_profile(), silent_profile(), silent_profile()}, cfg);
  eng.feed(rec(25'000, 3), 0);
  eng.finish(100'000);
  EXPECT_EQ(eng.predictions().size(), 1u);
}

TEST(OnlineEngine, RawModeTriggersOnEveryAntecedentRecord) {
  const auto t = topo::Topology::bluegene(1, 1, 4, 8);
  auto cfg = fast_config();
  cfg.raw_event_matching = true;
  cfg.use_location = false;
  cfg.dedupe_window_samples = 2;
  OnlineEngine eng(t, {simple_chain()},
                   {silent_profile(), silent_profile()}, cfg);
  eng.feed(rec(25'000, 7), 0);
  eng.feed(rec(2'000'000, 2), 0);
  eng.finish(4'000'000);
  ASSERT_EQ(eng.predictions().size(), 2u);
  EXPECT_EQ(eng.stats().raw_triggers, 2u);
  // DM predictions are system-wide (no location capability).
  EXPECT_EQ(eng.predictions()[0].scope, topo::Scope::System);
  EXPECT_TRUE(eng.predictions()[0].nodes.empty());
  // Raw mode uses the record time directly, not bucket close.
  EXPECT_EQ(eng.predictions()[0].trigger_time_ms, 25'000);
}

TEST(OnlineEngine, LocationScopeFromChainProfile) {
  auto c = simple_chain();
  c.location.scope = topo::Scope::Midplane;
  const auto t = topo::Topology::bluegene(1, 1, 4, 8);
  OnlineEngine eng(t, {c}, {silent_profile(), silent_profile()},
                   fast_config());
  eng.feed(rec(25'000, 7), 0);
  eng.finish(400'000);
  ASSERT_EQ(eng.predictions().size(), 1u);
  EXPECT_EQ(eng.predictions()[0].scope, topo::Scope::Midplane);
}

TEST(OnlineEngine, AnalysisQueueDelaysIssueTime) {
  const auto t = topo::Topology::bluegene(1, 1, 4, 8);
  auto cfg = fast_config();
  cfg.cost.per_outlier_ms = 2'000.0;
  cfg.cost.per_chain_trigger_ms = 500.0;
  OnlineEngine eng(t, {simple_chain()},
                   {silent_profile(), silent_profile()}, cfg);
  eng.feed(rec(25'000, 7), 0);
  eng.finish(400'000);
  ASSERT_EQ(eng.predictions().size(), 1u);
  const auto& p = eng.predictions()[0];
  // Outlier batch enqueued at bucket close (30 s); one onset + one chain.
  EXPECT_EQ(p.issue_time_ms, 30'000 + 2'000 + 500);
  ASSERT_EQ(eng.stats().analysis_window_ms.size(), 1u);
  EXPECT_FLOAT_EQ(eng.stats().analysis_window_ms[0], 2'500.0f);
}

TEST(OnlineEngine, BacklogAccumulatesAcrossBusyBuckets) {
  const auto t = topo::Topology::bluegene(1, 1, 4, 8);
  auto cfg = fast_config();
  cfg.cost.per_outlier_ms = 25'000.0;  // well beyond one bucket
  OnlineEngine eng(t, {simple_chain()},
                   {silent_profile(), silent_profile()}, cfg);
  eng.feed(rec(25'000, 7), 0);
  // Outlier two buckets later (the episode resets in between).
  eng.feed(rec(45'000, 7), 0);
  eng.feed(rec(205'000, 7), 0);
  eng.finish(400'000);
  const auto& w = eng.stats().analysis_window_ms;
  ASSERT_GE(w.size(), 2u);
  // Second batch waits for the first: window strictly exceeds service time.
  EXPECT_GT(w[1], 25'000.0f);
}

TEST(OnlineEngine, UnknownTemplatesGetDefaultDetectors) {
  const auto t = topo::Topology::bluegene(1, 1, 4, 8);
  OnlineEngine eng(t, {simple_chain()},
                   {silent_profile(), silent_profile()}, fast_config());
  // Template 9 was never profiled offline (new software version).
  eng.feed(rec(25'000, 1), 9);
  eng.feed(rec(26'000, 1), 9);
  eng.finish(100'000);
  EXPECT_GE(eng.stats().outlier_onsets, 1u);  // treated as silent signal
}

TEST(OnlineEngine, OutOfOrderRecordClampedToOpenBucket) {
  const auto t = topo::Topology::bluegene(1, 1, 4, 8);
  OnlineEngine eng(t, {simple_chain()},
                   {silent_profile(), silent_profile()}, fast_config());
  eng.feed(rec(25'000, 7), 0);  // opens bucket [20k, 30k)
  // A straggler from a concurrent ingest path, nominally at 1 s: it joins
  // the open bucket instead of being lost or corrupting closed history.
  eng.feed(rec(1'000, 7), 0);
  eng.finish(400'000);
  EXPECT_EQ(eng.stats().out_of_order, 1u);
  EXPECT_EQ(eng.stats().records, 2u);
  // Both records land in one bucket of the same silent signal: one onset,
  // one prediction — identical to the time-ordered arrival.
  ASSERT_EQ(eng.predictions().size(), 1u);
  EXPECT_EQ(eng.predictions()[0].trigger_time_ms, 30'000);
  EXPECT_EQ(eng.stats().outlier_onsets, 1u);
}

TEST(OnlineEngine, SkewWithinOpenBucketIsNotOutOfOrder) {
  const auto t = topo::Topology::bluegene(1, 1, 4, 8);
  OnlineEngine eng(t, {simple_chain()},
                   {silent_profile(), silent_profile()}, fast_config());
  eng.feed(rec(25'000, 7), 0);
  eng.feed(rec(21'000, 7), 0);  // earlier, but still inside [20k, 30k)
  eng.finish(400'000);
  EXPECT_EQ(eng.stats().out_of_order, 0u);
}

TEST(OnlineEngine, RawModeClampsBackwardTime) {
  auto cfg = fast_config();
  cfg.raw_event_matching = true;
  cfg.min_prefix_matches = 1;  // raw DM matching emits on any antecedent
  const auto t = topo::Topology::bluegene(1, 1, 4, 8);
  OnlineEngine eng(t, {simple_chain()},
                   {silent_profile(), silent_profile()}, cfg);
  eng.feed(rec(50'000, 7), 0);
  eng.feed(rec(10'000, 7), 0);  // behind the stream: clamped to 50 s
  eng.finish(400'000);
  EXPECT_EQ(eng.stats().out_of_order, 1u);
  // The clamped trigger lands on the same sample as the first, so dedupe
  // collapses it — the stale timestamp cannot fabricate an earlier alarm.
  ASSERT_EQ(eng.predictions().size(), 1u);
  EXPECT_EQ(eng.predictions()[0].trigger_time_ms, 50'000);
  EXPECT_EQ(eng.stats().duplicates_suppressed, 1u);
}

TEST(OnlineEngine, SwapModelAdoptsNewRulesOverLiveDetectorHistory) {
  // Start rule-less: the detector for template 0 accumulates signal but
  // nothing can fire. Swap in the chain model BEFORE the trigger bucket
  // closes: the new rules must consume the history the old model observed.
  const auto t = topo::Topology::bluegene(1, 1, 4, 8);
  OnlineEngine eng(t, {}, {silent_profile(), silent_profile()},
                   fast_config());
  eng.feed(rec(25'000, 7), 0);
  const auto armed = ModelState::build(
      {simple_chain()}, {silent_profile(), silent_profile()});
  eng.swap_model(&armed);
  eng.finish(400'000);
  ASSERT_EQ(eng.predictions().size(), 1u);
  EXPECT_EQ(eng.predictions()[0].tmpl, 1u);
  EXPECT_EQ(eng.predictions()[0].trigger_time_ms, 30'000);
}

TEST(OnlineEngine, SwapModelDisarmsWhenTheNewModelHasNoRules) {
  const auto t = topo::Topology::bluegene(1, 1, 4, 8);
  OnlineEngine eng(t, {simple_chain()},
                   {silent_profile(), silent_profile()}, fast_config());
  eng.feed(rec(25'000, 7), 0);
  const auto disarmed =
      ModelState::build({}, {silent_profile(), silent_profile()});
  eng.swap_model(&disarmed);
  eng.finish(400'000);
  EXPECT_TRUE(eng.predictions().empty());
}

TEST(OnlineEngine, SwapModelResetsPendingChainPrefixes) {
  // 2-item prefix with confirmation: first item matched, then a swap to an
  // IDENTICAL model. Chain ids don't survive a swap, so the half-matched
  // occurrence must be forgotten — the second item alone cannot confirm.
  Chain c;
  c.items = {{0, 0}, {2, 4}, {1, 10}};
  c.failure_item = 2;
  c.confidence = 0.8;
  const auto t = topo::Topology::bluegene(1, 1, 4, 8);
  auto cfg = fast_config();
  cfg.min_prefix_matches = 2;
  const std::vector<SignalProfile> profs = {
      silent_profile(), silent_profile(), silent_profile()};
  OnlineEngine eng(t, {c}, profs, cfg);
  eng.feed(rec(25'000, 3), 0);
  eng.feed(rec(35'000, 3), 0);  // close the first item's bucket: prefix armed
  const auto same = ModelState::build({c}, profs);
  eng.swap_model(&same);
  eng.feed(rec(25'000 + 4 * kDt, 9), 2);
  eng.finish(400'000);
  EXPECT_TRUE(eng.predictions().empty());

  // Control: without the swap the identical stream confirms and fires.
  OnlineEngine ctl(t, {c}, profs, cfg);
  ctl.feed(rec(25'000, 3), 0);
  ctl.feed(rec(35'000, 3), 0);
  ctl.feed(rec(25'000 + 4 * kDt, 9), 2);
  ctl.finish(400'000);
  EXPECT_EQ(ctl.predictions().size(), 1u);
}

TEST(OnlineEngine, SwapModelExtendsDetectorsForNewTemplates) {
  // The new model names template 2 that the old one never saw; records for
  // it must get a detector (and predict) after the swap, not crash.
  Chain c;
  c.items = {{2, 0}, {1, 6}};
  c.failure_item = 1;
  c.support = 10;
  c.confidence = 0.9;
  const auto t = topo::Topology::bluegene(1, 1, 4, 8);
  OnlineEngine eng(t, {simple_chain()},
                   {silent_profile(), silent_profile()}, fast_config());
  const auto wider = ModelState::build(
      {c}, {silent_profile(), silent_profile(), silent_profile()});
  eng.swap_model(&wider);
  eng.feed(rec(25'000, 7), 2);
  eng.finish(400'000);
  ASSERT_EQ(eng.predictions().size(), 1u);
  EXPECT_EQ(eng.predictions()[0].tmpl, 1u);
}

}  // namespace
