// End-to-end pipeline integration tests on a compact campaign: every
// method trains and predicts, results are deterministic, severity mapping
// and non-error filtering behave, and the headline ordering (hybrid recall
// well above the DM baseline) holds.
#include <gtest/gtest.h>

#include "elsa/pipeline.hpp"
#include "simlog/scenario.hpp"

namespace {

using namespace elsa;
using core::Method;

const simlog::Trace& small_trace() {
  static const simlog::Trace tr = [] {
    auto sc = simlog::make_bluegene_scenario(2012, 8.0, 40);
    return sc.generator.generate(sc.config);
  }();
  return tr;
}

TEST(Pipeline, MajoritySeverity) {
  std::vector<simlog::LogRecord> recs(5);
  recs[0].severity = simlog::Severity::Info;
  recs[1].severity = simlog::Severity::Failure;
  recs[2].severity = simlog::Severity::Failure;
  recs[3].severity = simlog::Severity::Info;
  recs[4].severity = simlog::Severity::Warning;
  const std::vector<std::uint32_t> tids{0, 0, 0, 1, 1};
  const auto sev = core::majority_severity(2, tids, recs, recs.size());
  EXPECT_EQ(sev[0], simlog::Severity::Failure);
  EXPECT_EQ(sev[1], simlog::Severity::Info);  // tie resolved to first seen
}

TEST(Pipeline, AnnotateFailureItems) {
  std::vector<core::Chain> chains(3);
  chains[0].items = {{0, 0}, {1, 5}};   // 1 is failure -> predictive
  chains[1].items = {{0, 0}, {2, 5}};   // no failure -> non-error
  chains[2].items = {{1, 0}, {2, 5}};   // failure first -> not predictive
  const std::vector<simlog::Severity> sev{
      simlog::Severity::Info, simlog::Severity::Failure,
      simlog::Severity::Info};
  const auto non_error = core::annotate_failure_items(chains, sev);
  EXPECT_EQ(non_error, 1u);
  EXPECT_EQ(chains[0].failure_item, 1);
  EXPECT_TRUE(chains[0].predictive());
  EXPECT_EQ(chains[1].failure_item, -1);
  EXPECT_EQ(chains[2].failure_item, 0);
  EXPECT_FALSE(chains[2].predictive());
}

TEST(Pipeline, OfflineModelBasics) {
  core::PipelineConfig cfg;
  const auto model = core::train_offline(
      small_trace(), small_trace().t_begin_ms + 4 * 86'400'000LL,
      Method::Hybrid, cfg);
  EXPECT_GT(model.helo.size(), 30u);
  EXPECT_EQ(model.profiles.size(), model.helo.size());
  EXPECT_EQ(model.tmpl_severity.size(), model.helo.size());
  EXPECT_GT(model.seeds.size(), 3u);
  EXPECT_GT(model.chains.size(), 3u);
  EXPECT_GT(model.grite_stats.seed_pairs, 0u);
  // At least one multi-event chain and one predictive chain.
  bool multi = false, predictive = false;
  for (const auto& c : model.chains) {
    multi |= c.items.size() >= 3;
    predictive |= c.predictive();
  }
  EXPECT_TRUE(multi);
  EXPECT_TRUE(predictive);
}

TEST(Pipeline, ExperimentDeterministic) {
  core::PipelineConfig cfg;
  const auto a =
      core::run_experiment(small_trace(), 4.0, Method::Hybrid, cfg);
  const auto b =
      core::run_experiment(small_trace(), 4.0, Method::Hybrid, cfg);
  EXPECT_EQ(a.predictions.size(), b.predictions.size());
  EXPECT_EQ(a.eval.correct_predictions, b.eval.correct_predictions);
  EXPECT_EQ(a.eval.predicted_faults, b.eval.predicted_faults);
}

TEST(Pipeline, AllMethodsProduceSanePrecision) {
  core::PipelineConfig cfg;
  for (const auto m :
       {Method::Hybrid, Method::SignalOnly, Method::DataMining}) {
    const auto res = core::run_experiment(small_trace(), 4.0, m, cfg);
    EXPECT_GT(res.predictions.size(), 0u) << core::to_string(m);
    EXPECT_GT(res.eval.precision(), 0.5) << core::to_string(m);
    EXPECT_LE(res.eval.recall(), 1.0);
  }
}

TEST(Pipeline, HybridRecallDominatesDataMining) {
  core::PipelineConfig cfg;
  const auto hybrid =
      core::run_experiment(small_trace(), 4.0, Method::Hybrid, cfg);
  const auto dm =
      core::run_experiment(small_trace(), 4.0, Method::DataMining, cfg);
  EXPECT_GT(hybrid.eval.recall(), 1.8 * dm.eval.recall());
}

TEST(Pipeline, FaultFailureTemplatesResolved) {
  core::PipelineConfig cfg;
  const auto res =
      core::run_experiment(small_trace(), 4.0, Method::Hybrid, cfg);
  ASSERT_EQ(res.fault_failure_tmpls.size(), small_trace().faults.size());
  for (const auto& tmpls : res.fault_failure_tmpls)
    EXPECT_FALSE(tmpls.empty());
}

TEST(Pipeline, NonErrorChainsExcludedFromPrediction) {
  core::PipelineConfig cfg;
  const auto res =
      core::run_experiment(small_trace(), 4.0, Method::Hybrid, cfg);
  EXPECT_GT(res.model.non_error_chains, 0u);
  for (const auto& p : res.predictions) {
    const auto& chain = res.model.chains[p.chain_id];
    EXPECT_TRUE(chain.predictive());
  }
}

TEST(Pipeline, DmModelHasNoLocationProfiles) {
  core::PipelineConfig cfg;
  const auto res =
      core::run_experiment(small_trace(), 4.0, Method::DataMining, cfg);
  for (const auto& p : res.predictions) {
    EXPECT_EQ(p.scope, elsa::topo::Scope::System);
    EXPECT_TRUE(p.nodes.empty());
  }
}

TEST(Pipeline, MethodNames) {
  EXPECT_STREQ(core::to_string(Method::Hybrid), "ELSA hybrid");
  EXPECT_STREQ(core::to_string(Method::SignalOnly), "ELSA signal");
  EXPECT_STREQ(core::to_string(Method::DataMining), "Data mining");
}

}  // namespace
