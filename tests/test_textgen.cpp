#include <gtest/gtest.h>

#include "simlog/textgen.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace {

using namespace elsa::simlog;
using elsa::util::Rng;

TEST(TextGen, SubstitutesEveryPlaceholder) {
  Rng rng(1);
  const std::string pattern =
      "err <num> at <hex> on <loc> via <ip> path <path> unit <word>";
  const std::string msg = render_message(pattern, rng, "R00-M1-N03");
  EXPECT_EQ(msg.find("<num>"), std::string::npos);
  EXPECT_EQ(msg.find("<hex>"), std::string::npos);
  EXPECT_NE(msg.find("R00-M1-N03"), std::string::npos);
  EXPECT_NE(msg.find("0x"), std::string::npos);
  // Token count preserved.
  EXPECT_EQ(elsa::util::split(msg, " ").size(),
            elsa::util::split(pattern, " ").size());
}

TEST(TextGen, ConstantTokensUntouched) {
  Rng rng(2);
  const std::string msg =
      render_message("ciodb has been restarted.", rng, "SYSTEM");
  EXPECT_EQ(msg, "ciodb has been restarted.");
}

TEST(TextGen, VariabilityAcrossRenders) {
  Rng rng(3);
  const std::string p = "value <num> addr <hex>";
  const auto a = render_message(p, rng, "X");
  const auto b = render_message(p, rng, "X");
  EXPECT_NE(a, b);
}

TEST(TextGen, PatternAsTemplateNotation) {
  EXPECT_EQ(pattern_as_template("job <num> timed out"), "job d+ timed out");
  EXPECT_EQ(pattern_as_template("module <loc> is <word>"), "module * is *");
  EXPECT_EQ(pattern_as_template("plain text"), "plain text");
}

}  // namespace
