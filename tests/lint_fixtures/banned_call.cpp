// Fixture: every banned non-reentrant call must fire, including one whose
// allow() lacks the mandatory reason (suppression must NOT apply).
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <ctime>

double bad_gamma(double x) { return std::lgamma(x); }

int bad_rand() { return rand(); }

char* bad_tok(char* s) { return strtok(s, ","); }

std::tm* bad_local(const std::time_t* t) { return localtime(t); }

std::tm* bad_gm(const std::time_t* t) { return gmtime(t); }

// elsa-lint: allow(banned-call)
int reasonless_suppression() { return rand(); }
