// Atomics-protocol pass: clean fixture — every field declared with a known
// protocol and every pairing sound. Fed through lint_atomics() under a
// src-module path (src/util/clean.hpp) by test_elsa_lint.
#pragma once

#include <atomic>
#include <cstdint>

class CleanFlags {
 public:
  void stop() { stop_.store(true, std::memory_order_release); }
  bool stopped() const { return stop_.load(std::memory_order_acquire); }

  void count() { hits_.fetch_add(1, std::memory_order_relaxed); }
  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }

 private:
  // elsa-atomic: release-acquire-flag
  std::atomic<bool> stop_{false};
  // elsa-atomic: monotonic-relaxed
  std::atomic<std::uint64_t> hits_{0};
};
