// Atomics-protocol pass: fence-undocumented fixture. The bare fence fires;
// the allow()ed one is the documented escape hatch.
#include <atomic>

inline void undocumented_flush() {
  std::atomic_thread_fence(std::memory_order_seq_cst);
}

inline void documented_flush() {
  // elsa-lint: allow(fence-undocumented): pairs with the signal handler's
  // compiler barrier; no per-field order can express it.
  std::atomic_thread_fence(std::memory_order_release);
}
