// Atomics-protocol pass: acquire-release-unpaired fixture. `lonely_pub_`'s
// release store is never acquire-loaded and `lonely_sub_`'s acquire load is
// never release-published — one finding each. `paired_` has both sides and
// `excused_` rides a reasoned allow(); both stay quiet.
#include <atomic>

class Unpaired {
 public:
  void publish() { lonely_pub_.store(1, std::memory_order_release); }
  int peek() { return lonely_pub_.load(std::memory_order_relaxed); }

  int consume() { return lonely_sub_.load(std::memory_order_acquire); }
  void poke() { lonely_sub_.store(2, std::memory_order_relaxed); }

  void ok_pub() { paired_.store(3, std::memory_order_release); }
  int ok_sub() { return paired_.load(std::memory_order_acquire); }

  void excused_pub() {
    // elsa-lint: allow(acquire-release-unpaired): reader lands next PR.
    excused_.store(4, std::memory_order_release);
  }

 private:
  // elsa-atomic: release-acquire-flag
  std::atomic<int> lonely_pub_{0};
  // elsa-atomic: release-acquire-flag
  std::atomic<int> lonely_sub_{0};
  // elsa-atomic: release-acquire-flag
  std::atomic<int> paired_{0};
  // elsa-atomic: release-acquire-flag
  std::atomic<int> excused_{0};
};
