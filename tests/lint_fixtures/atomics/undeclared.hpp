// Atomics-protocol pass: atomic-undeclared fixture. `bare_` carries no
// declaration, `weird_` names a protocol outside the closed set, and
// `excused_` rides a reasoned allow() — two findings expected.
#pragma once

#include <atomic>

struct Undeclared {
  std::atomic<int> bare_{0};
  // elsa-atomic: totally-made-up
  std::atomic<int> weird_{0};
  // elsa-lint: allow(atomic-undeclared): migration fixture, protocol TBD.
  std::atomic<int> excused_{0};
};
