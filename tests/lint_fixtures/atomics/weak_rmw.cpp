// Atomics-protocol pass: rmw-order-too-weak fixture. The relaxed fetch_or
// on a release-acquire-flag field fires; the relaxed fetch_add on a
// monotonic-relaxed counter IS its declared protocol; the acq_rel CAS on a
// spsc-seq field is strong enough; the allow()ed relaxed CAS stays quiet.
#include <atomic>
#include <cstdint>

class WeakRmw {
 public:
  bool raise() { return flag_.fetch_or(1, std::memory_order_relaxed) == 0; }
  void lower() { flag_.store(0, std::memory_order_release); }
  bool observe() { return flag_.load(std::memory_order_acquire) != 0; }

  void count() { ticks_.fetch_add(1, std::memory_order_relaxed); }

  bool claim() {
    int want = 0;
    return slot_.compare_exchange_strong(want, 1, std::memory_order_acq_rel,
                                         std::memory_order_relaxed);
  }

  bool sloppy_claim() {
    int want = 0;
    // elsa-lint: allow(rmw-order-too-weak): caller's join supplies ordering.
    return slot2_.compare_exchange_strong(want, 1, std::memory_order_relaxed,
                                          std::memory_order_relaxed);
  }

 private:
  // elsa-atomic: release-acquire-flag
  std::atomic<int> flag_{0};
  // elsa-atomic: monotonic-relaxed
  std::atomic<std::uint64_t> ticks_{0};
  // elsa-atomic: spsc-seq
  std::atomic<int> slot_{0};
  // elsa-atomic: spsc-seq
  std::atomic<int> slot2_{0};
};
