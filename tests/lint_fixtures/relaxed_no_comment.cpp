// Fixture: a memory_order_relaxed without a justifying comment fires; one
// with a nearby "relaxed:" comment stays quiet.
#include <atomic>

std::atomic<int> g_counter{0};

void bump_undocumented() {
  g_counter.fetch_add(1, std::memory_order_relaxed);
}

void bump_documented() {
  // relaxed: fixture counter with no ordering requirements.
  g_counter.fetch_add(1, std::memory_order_relaxed);
}
