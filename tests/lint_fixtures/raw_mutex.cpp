// Fixture: raw standard synchronization primitives outside the annotated
// wrapper must fire once per token occurrence.
#include <condition_variable>
#include <mutex>

std::mutex g_mu;
std::condition_variable g_cv;

void critical() {
  std::lock_guard<std::mutex> lk(g_mu);
}
