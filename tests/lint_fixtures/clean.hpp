#pragma once

// Fixture: a header exercising every rule's *quiet* path — banned names in
// comments and strings, a reentrant lgamma_r call, a justified
// suppression, a documented relaxed ordering — must produce zero findings.
#include <atomic>
#include <cmath>

namespace fixture {

// Comments may mention std::lgamma, rand(), strtok, localtime, gmtime and
// std::mutex freely; the scanner strips them before matching.
inline const char* note() { return "never call std::rand() or strtok()"; }

inline double reentrant_gamma(double x) {
  int sign = 0;
  return ::lgamma_r(x, &sign);
}

inline double justified_gamma(double x) {
  // elsa-lint: allow(banned-call): fixture exercising a suppression that
  // carries the mandatory reason.
  return std::lgamma(x);
}

inline void bump(std::atomic<int>& c) {
  // relaxed: fixture counter with no ordering requirements.
  c.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace fixture
