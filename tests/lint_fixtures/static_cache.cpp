// Fixture: the static-mutable rule. The first two declarations reproduce
// the bench result-cache bug (function-local mutable static containers);
// the rest are the shapes the rule must NOT fire on.
#include <map>
#include <string>
#include <vector>

int lookup(int key) {
  static std::map<int, int> cache;  // BAD: mutable magic-static
  return cache[key];
}

const std::string& name_of(int id) {
  static std::map<int,
                  std::string> names;  // BAD: multi-line declaration
  return names[id];
}

double mean(int n) {
  static const std::map<int, double> table = {{1, 0.5}};  // ok: const
  auto it = table.find(n);
  return it == table.end() ? 0.0 : it->second;
}

struct Miner {
  // ok: a member *function* returning a container, not a variable
  // (helo.hpp's generalize() — the rule must not misread it).
  static std::vector<std::string> generalize(const std::string& msg);
};

int counter() {
  static int calls = 0;  // ok: not a std:: container (out of scope here)
  return ++calls;
}

std::vector<int> build() {
  std::vector<int> local;  // ok: not static
  return local;
}
