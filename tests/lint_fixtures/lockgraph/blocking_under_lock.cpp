// Lock-graph fixture: blocking calls under a held mutex — a potentially
// unbounded ring pop and a thread join, both while holding mu_. Anyone
// contending mu_ is wedged until the callee unblocks.
#include <thread>

#include "serve/ring.hpp"
#include "util/thread_annotations.hpp"

namespace lockfix {

class BlockyWorker {
 public:
  void drain_under_lock() ELSA_EXCLUDES(mu_) {
    util::MutexLock lk(mu_);
    last_ = items_.pop().value_or(0);
  }

  void stop_under_lock() ELSA_EXCLUDES(mu_) {
    util::MutexLock lk(mu_);
    worker_.join();
  }

  void drain_fine() ELSA_EXCLUDES(mu_) {
    const int v = items_.pop().value_or(0);
    util::MutexLock lk(mu_);
    last_ = v;
  }

 private:
  util::Mutex mu_;
  serve::Ring<int> items_{8};
  std::thread worker_;
  int last_ = 0;
};

}  // namespace lockfix
