// Lock-graph fixture: the same inversion as cycle2.cpp, but with a
// reasoned allow() on one participating acquisition site — the cycle must
// be suppressed. An allow() without a reason would not count.
#include "util/thread_annotations.hpp"

namespace lockfix {

class ExcusedPair {
 public:
  void pq() ELSA_EXCLUDES(p_, q_) {
    util::MutexLock lp(p_);
    util::MutexLock lq(q_);
    ++x_;
  }

  void qp() ELSA_EXCLUDES(p_, q_) {
    util::MutexLock lq(q_);
    // elsa-lint: allow(lock-cycle): fixture documents an intentional
    // inversion to prove reasoned suppressions work.
    util::MutexLock lp(p_);
    ++x_;
  }

 private:
  util::Mutex p_;
  util::Mutex q_;
  int x_ = 0;
};

}  // namespace lockfix
