// Lock-graph fixture: the classic two-lock inversion. ab() takes a_ then
// b_, ba() takes b_ then a_ — the analyzer must report the full cycle
// PairHolder::a_ -> PairHolder::b_ -> PairHolder::a_ with both sites.
#include "util/thread_annotations.hpp"

namespace lockfix {

class PairHolder {
 public:
  void ab() ELSA_EXCLUDES(a_, b_) {
    util::MutexLock la(a_);
    util::MutexLock lb(b_);
    ++x_;
  }

  void ba() ELSA_EXCLUDES(a_, b_) {
    util::MutexLock lb(b_);
    util::MutexLock la(a_);
    ++x_;
  }

 private:
  util::Mutex a_;
  util::Mutex b_;
  int x_ = 0;
};

}  // namespace lockfix
