// Lock-graph fixture: a condition wait with a *second* mutex held. The
// wait releases only b_; any thread that needs a_ to reach notify() can
// never run, so the waiter sleeps forever.
#include "util/thread_annotations.hpp"

namespace lockfix {

class TwoLockWaiter {
 public:
  void wait_badly() ELSA_EXCLUDES(a_, b_) {
    util::MutexLock la(a_);
    util::MutexLock lb(b_);
    while (!ready_) cv_.wait(b_);
  }

  void wait_fine() ELSA_EXCLUDES(b_) {
    util::MutexLock lb(b_);
    while (!ready_) cv_.wait(b_);
  }

 private:
  util::Mutex a_;
  util::Mutex b_;
  util::CondVar cv_;
  bool ready_ = false;
};

}  // namespace lockfix
