// Lock-graph fixture: a three-lock cycle where one edge is only visible
// through an annotated helper. a_then_b() gives a_ -> b_ lexically,
// b_then_helper() holds b_ across a call to helper_locks_c() (whose
// ELSA_EXCLUDES(c_) says it acquires c_), and c_then_a() closes the loop.
#include "util/thread_annotations.hpp"

namespace lockfix {

class Trio {
 public:
  void a_then_b() ELSA_EXCLUDES(a_, b_) {
    util::MutexLock la(a_);
    util::MutexLock lb(b_);
    ++x_;
  }

  void b_then_helper() ELSA_EXCLUDES(b_, c_) {
    util::MutexLock lb(b_);
    helper_locks_c();
  }

  void helper_locks_c() ELSA_EXCLUDES(c_) {
    util::MutexLock lc(c_);
    ++x_;
  }

  void c_then_a() ELSA_EXCLUDES(c_, a_) {
    util::MutexLock lc(c_);
    util::MutexLock la(a_);
    ++x_;
  }

 private:
  util::Mutex a_;
  util::Mutex b_;
  util::Mutex c_;
  int x_ = 0;
};

}  // namespace lockfix
