// Lock-graph fixture: a consistent three-level hierarchy (service mutex
// above engine mutex above metrics mutex). Every path acquires downward,
// so the analyzer must report nothing here.
#include "util/thread_annotations.hpp"

namespace lockfix {

class CleanService {
 public:
  void tick() ELSA_EXCLUDES(svc_mu_, eng_mu_) {
    util::MutexLock ls(svc_mu_);
    util::MutexLock le(eng_mu_);
    note();
  }

  void note() ELSA_EXCLUDES(met_mu_) {
    util::MutexLock lm(met_mu_);
    ++notes_;
  }

 private:
  util::Mutex svc_mu_;
  util::Mutex eng_mu_;
  util::Mutex met_mu_;
  int notes_ = 0;
};

}  // namespace lockfix
