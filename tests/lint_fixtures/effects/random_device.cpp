// det-random-device: nondeterministic entropy inside an annotated closure.
#include <random>

class Seeder {
 public:
  // elsa-deterministic: seeds come from config, never from entropy.
  unsigned seed() {
    std::random_device rd;
    return rd();
  }
};
