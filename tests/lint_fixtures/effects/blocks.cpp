// realtime-blocks: a sleep and a stream write inside annotated closures.
#include <chrono>
#include <iostream>
#include <thread>

class Blocks {
 public:
  // elsa-realtime: may not block.
  void hot() { std::this_thread::sleep_for(std::chrono::milliseconds(1)); }

  // elsa-realtime: may not do I/O.
  void hot2(int x) { std::cout << x; }
};
