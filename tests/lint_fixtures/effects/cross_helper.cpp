// The unannotated half of the cross-file case: allocation is legal here in
// isolation — the violation only exists through an elsa-realtime caller in
// another file (cross_caller.cpp).
#include <vector>

void remember(std::vector<int>& sink, int v) { sink.push_back(v); }
