// det-unordered-escape: iteration over an unordered container (hash-seed
// order) and over a pointer-keyed map (address order, ASLR) both escape
// into annotated outputs.
#include <map>
#include <unordered_map>

class Escape {
 public:
  // elsa-deterministic: serialisation must be order-stable.
  long sum() {
    long s = 0;
    for (const auto& [k, v] : counts_) s += v;
    return s;
  }

  // elsa-deterministic: pointer keys iterate in address order.
  long psum() {
    long s = 0;
    for (const auto& [k, v] : by_ptr_) s += v;
    return s;
  }

 private:
  std::unordered_map<int, long> counts_;
  std::map<const char*, long> by_ptr_;
};
