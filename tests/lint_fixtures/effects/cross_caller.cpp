// The annotated half of the cross-file case: the closure crosses into
// cross_helper.cpp, whose push_back becomes this root's finding.
#include <vector>

// elsa-realtime: must stay allocation-free end to end.
void hot_entry(std::vector<int>& sink, int v) { remember(sink, v); }
