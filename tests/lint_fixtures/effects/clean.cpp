// A hot path honouring both contracts: arithmetic, bit mixing, and an
// unannotated-but-clean helper — nothing the effect pass may record.
#include <cstdint>

class CleanPath {
 public:
  // elsa-realtime: pure arithmetic.
  // elsa-deterministic: pure arithmetic.
  std::uint64_t mix(std::uint64_t h, std::uint64_t x) {
    h ^= x;
    h *= 0x100000001b3ULL;
    return rotate(h);
  }

 private:
  // Unannotated helper on the path: clean callees keep the closure clean.
  std::uint64_t rotate(std::uint64_t v) { return (v << 7) | (v >> 57); }
};
