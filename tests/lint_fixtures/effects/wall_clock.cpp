// det-wall-clock: a steady_clock read and a gettimeofday inside annotated
// closures.
#include <chrono>

class WallClock {
 public:
  using Clock = std::chrono::steady_clock;

  // elsa-deterministic: output must be replay-stable.
  long stamp() { return Clock::now().time_since_epoch().count(); }

  // elsa-deterministic: output must be replay-stable.
  long stamp2() {
    timeval tv;
    gettimeofday(&tv, nullptr);
    return tv.tv_sec;
  }
};
