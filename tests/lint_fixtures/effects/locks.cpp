// realtime-locks: a MutexLock acquisition and a bare .lock() inside
// annotated closures.
class Locks {
 public:
  // elsa-realtime: wait-free contract.
  int hot() {
    util::MutexLock lk(mu_);
    return x_;
  }

  // elsa-realtime: wait-free contract.
  void hot2() { impl_.lock(); }

 private:
  util::Mutex mu_;
  int x_ = 0;
  int impl_ = 0;  // lexically, any .lock() receiver counts
};
