// realtime-allocates: the annotated closure reaches container growth; the
// reasoned allow() suppresses the second, identical site.
#include <vector>

class Allocates {
 public:
  // elsa-realtime: must not touch the heap.
  void hot(int v) { buf_.push_back(v); }

  // elsa-realtime: same growth call, but justified at the site.
  void hot_allowed(int v) {
    // elsa-lint: allow(realtime-allocates): bounded scratch buffer whose
    // capacity is reused across calls.
    buf_.push_back(v);
  }

 private:
  std::vector<int> buf_;
};
