// Fixture: a header that forgets #pragma once and leaks a namespace.
#include <vector>

using namespace std;

inline int fixture_answer() { return 42; }
