// Fixture: linted under the virtual path src/simlog/layering_break.cpp —
// a mid-layer module reaching up into serve/ must fire; util/ is fine.
#include "serve/service.hpp"
#include "util/stats.hpp"

int fixture_layering() { return 0; }
