// Canned-scenario sanity: both machines build valid catalogs, generate
// traces with the structural properties the experiments rely on (three
// signal classes, fault categories, message-rate envelope, NFS storms).
#include <gtest/gtest.h>

#include <set>

#include "simlog/scenario.hpp"

namespace {

using namespace elsa::simlog;

TEST(Scenario, BlueGeneCatalogsValidate) {
  const auto sc = make_bluegene_scenario(1, 2.0, 40);
  EXPECT_EQ(sc.name, "bluegene");
  EXPECT_NO_THROW(sc.generator.faults().validate(sc.generator.catalog()));
  EXPECT_GT(sc.generator.catalog().size(), 60u);
  EXPECT_TRUE(sc.generator.topology().is_hierarchical());
}

TEST(Scenario, MercuryCatalogsValidate) {
  const auto sc = make_mercury_scenario(1, 2.0, 40);
  EXPECT_NO_THROW(sc.generator.faults().validate(sc.generator.catalog()));
  EXPECT_FALSE(sc.generator.topology().is_hierarchical());
  EXPECT_EQ(sc.generator.topology().total_nodes(), 891);
}

TEST(Scenario, FillerTemplateCountHonoured) {
  Catalog c;
  add_filler_templates(c, 25, 3);
  EXPECT_EQ(c.size(), 25u);
  // Paper: silent signals are the majority of event types.
  int silent = 0;
  for (const auto& t : c.all())
    if (t.shape == SignalShape::Silent) ++silent;
  EXPECT_GT(silent, 12);
}

TEST(Scenario, BlueGeneTraceShape) {
  auto sc = make_bluegene_scenario(2012, 3.0, 40);
  const auto tr = sc.generator.generate(sc.config);
  // Message-rate envelope: the real systems averaged a few msgs/s; the
  // scaled simulation targets fractions of that.
  EXPECT_GT(tr.message_rate(), 0.1);
  EXPECT_LT(tr.message_rate(), 5.0);
  // All marquee categories appear given enough days.
  std::set<std::string> cats;
  for (const auto& f : tr.faults) cats.insert(f.category);
  EXPECT_TRUE(cats.count("memory"));
  EXPECT_TRUE(cats.count("software"));
  EXPECT_TRUE(cats.count("cache"));
  // Severity mix: failures are a small minority of the traffic.
  std::size_t failures = 0;
  for (const auto& r : tr.records)
    failures += is_failure_severity(r.severity);
  EXPECT_LT(static_cast<double>(failures),
            0.05 * static_cast<double>(tr.records.size()));
  EXPECT_GT(failures, 0u);
}

TEST(Scenario, BlueGeneHasAllThreeSignalShapes) {
  const auto sc = make_bluegene_scenario(1, 1.0, 30);
  std::set<SignalShape> shapes;
  for (const auto& t : sc.generator.catalog().all()) shapes.insert(t.shape);
  EXPECT_EQ(shapes.size(), 3u);
}

TEST(Scenario, NodecardCascadeHasHourScaleLead) {
  const auto sc = make_bluegene_scenario(1, 1.0, 10);
  const auto* f = sc.generator.faults().find("nodecard_fail");
  ASSERT_NE(f, nullptr);
  EXPECT_GT(f->mean_lead_s(), 2400.0);  // 40+ minutes (Table II)
  const auto* cio = sc.generator.faults().find("ciodb_crash");
  ASSERT_NE(cio, nullptr);
  EXPECT_LT(cio->mean_lead_s(), 5.0);  // effectively zero window (Table II)
}

TEST(Scenario, MercuryNfsStormHitsManyNodes) {
  auto sc = make_mercury_scenario(7, 10.0, 30);
  sc.config.fault_rate_scale = 3.0;  // make sure at least one storm lands
  const auto tr = sc.generator.generate(sc.config);
  bool storm = false;
  for (const auto& f : tr.faults) {
    if (f.category != "io") continue;
    storm = true;
    EXPECT_GT(f.affected_nodes.size(), 100u);  // ~25 % of 891 nodes
  }
  EXPECT_TRUE(storm);
}

TEST(Scenario, DeterministicAcrossCalls) {
  auto a = make_bluegene_scenario(5, 1.0, 20);
  auto b = make_bluegene_scenario(5, 1.0, 20);
  const auto ta = a.generator.generate(a.config);
  const auto tb = b.generator.generate(b.config);
  ASSERT_EQ(ta.records.size(), tb.records.size());
  EXPECT_EQ(ta.faults.size(), tb.faults.size());
}

}  // namespace
