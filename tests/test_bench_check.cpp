// The bench-regression gate's own tests: BENCH_*.json round-trips through
// the emitter and parser, and compare() fails on exactly the conditions CI
// gates on (throughput below tolerance, benches that vanished) while only
// warning on the noisy ones (latency drift, brand-new benches).
#include "bench_json.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace {

using elsa::benchjson::BenchMap;
using elsa::benchjson::compare;
using elsa::benchjson::parse;
using elsa::benchjson::to_json;

BenchMap sample() {
  BenchMap m;
  m["serve_throughput/shards=1"] = {250000.0, 12.0, 830.0};
  m["serve_throughput/shards=4"] = {410000.0, 9.5, 612.0};
  m["analysis_time/bgl_normal"] = {1.2e6, 150.0, 2400.0};
  return m;
}

TEST(BenchJson, RoundTrip) {
  const BenchMap in = sample();
  const BenchMap out = parse(to_json(in));
  ASSERT_EQ(out.size(), in.size());
  for (const auto& [name, pt] : in) {
    ASSERT_TRUE(out.count(name)) << name;
    EXPECT_DOUBLE_EQ(out.at(name).items_per_sec, pt.items_per_sec);
    EXPECT_DOUBLE_EQ(out.at(name).p50_us, pt.p50_us);
    EXPECT_DOUBLE_EQ(out.at(name).p99_us, pt.p99_us);
  }
}

TEST(BenchJson, ParseToleratesWhitespaceAndUnknownKeys) {
  const std::string doc = R"({
    "schema": "elsa-bench-v1",
    "generator": "nightly",
    "benches": {
      "b": { "p99_us": 2, "items_per_sec": 100, "iterations": 5, "p50_us": 1 }
    }
  })";
  const BenchMap m = parse(doc);
  ASSERT_EQ(m.size(), 1u);
  EXPECT_DOUBLE_EQ(m.at("b").items_per_sec, 100.0);
  EXPECT_DOUBLE_EQ(m.at("b").p50_us, 1.0);
  EXPECT_DOUBLE_EQ(m.at("b").p99_us, 2.0);
}

TEST(BenchJson, ParseRejectsWrongOrMissingSchema) {
  EXPECT_THROW(parse(R"({"schema": "v999", "benches": {}})"),
               std::runtime_error);
  EXPECT_THROW(parse(R"({"benches": {}})"), std::runtime_error);
  EXPECT_THROW(parse("not json at all"), std::runtime_error);
  EXPECT_THROW(parse(R"({"schema": "elsa-bench-v1", "benches": {)"),
               std::runtime_error);
}

TEST(BenchCheck, IdenticalRunsPass) {
  const auto rep = compare(sample(), sample(), 0.15);
  EXPECT_TRUE(rep.ok()) << elsa::benchjson::format(rep);
  EXPECT_TRUE(rep.warnings.empty());
}

TEST(BenchCheck, RegressionBeyondToleranceFails) {
  BenchMap cur = sample();
  cur["serve_throughput/shards=1"].items_per_sec = 250000.0 * 0.80;  // -20%
  const auto rep = compare(sample(), cur, 0.15);
  ASSERT_EQ(rep.failures.size(), 1u) << elsa::benchjson::format(rep);
  EXPECT_NE(rep.failures[0].find("serve_throughput/shards=1"),
            std::string::npos);
}

TEST(BenchCheck, RegressionWithinToleranceIsFine) {
  BenchMap cur = sample();
  cur["serve_throughput/shards=1"].items_per_sec = 250000.0 * 0.90;  // -10%
  EXPECT_TRUE(compare(sample(), cur, 0.15).ok());
}

TEST(BenchCheck, MissingBenchFails) {
  BenchMap cur = sample();
  cur.erase("analysis_time/bgl_normal");
  const auto rep = compare(sample(), cur, 0.15);
  ASSERT_EQ(rep.failures.size(), 1u) << elsa::benchjson::format(rep);
  EXPECT_NE(rep.failures[0].find("missing bench"), std::string::npos);
}

TEST(BenchCheck, LatencyDriftOnlyWarns) {
  BenchMap cur = sample();
  cur["serve_throughput/shards=4"].p99_us *= 3.0;
  const auto rep = compare(sample(), cur, 0.15);
  EXPECT_TRUE(rep.ok()) << elsa::benchjson::format(rep);
  ASSERT_EQ(rep.warnings.size(), 1u);
  EXPECT_NE(rep.warnings[0].find("p99"), std::string::npos);
}

TEST(BenchCheck, NewBenchOnlyWarns) {
  BenchMap cur = sample();
  cur["serve_throughput/shards=8"] = {500000.0, 9.0, 500.0};
  const auto rep = compare(sample(), cur, 0.15);
  EXPECT_TRUE(rep.ok()) << elsa::benchjson::format(rep);
  ASSERT_EQ(rep.warnings.size(), 1u);
  EXPECT_NE(rep.warnings[0].find("no baseline yet"), std::string::npos);
}

TEST(BenchCheck, RequiredCoresParsesScalingRows) {
  using elsa::benchjson::required_cores;
  EXPECT_EQ(required_cores("serve_throughput/scaling=2v1"), 2u);
  EXPECT_EQ(required_cores("serve_throughput/scaling=8v4"), 8u);
  EXPECT_EQ(required_cores("mining_throughput/scaling=16v1"), 16u);
  // Plain rows and malformed scaling names gate unconditionally.
  EXPECT_EQ(required_cores("serve_throughput/shards=8"), 1u);
  EXPECT_EQ(required_cores("analysis_time/bgl_normal"), 1u);
  EXPECT_EQ(required_cores("x/scaling=abc"), 1u);
  EXPECT_EQ(required_cores("x/scaling=4"), 1u);
  EXPECT_EQ(required_cores("x/scaling=0v1"), 1u);
}

TEST(BenchCheck, DropUnsupportedSkipsOnlyStarvedScalingRows) {
  BenchMap m = sample();
  m["serve_throughput/scaling=2v1"] = {1.8, 0.0, 0.0};
  m["serve_throughput/scaling=4v1"] = {3.1, 0.0, 0.0};
  const auto dropped = elsa::benchjson::drop_unsupported(m, 2);
  ASSERT_EQ(dropped.size(), 1u);
  EXPECT_EQ(dropped[0], "serve_throughput/scaling=4v1");
  EXPECT_TRUE(m.count("serve_throughput/scaling=2v1"));
  EXPECT_TRUE(m.count("serve_throughput/shards=4"));  // absolute rows stay
}

TEST(BenchCheck, CoreFilteredCompareIgnoresAnInvertedRatioOnOneCore) {
  // On a 1-core runner the 4-way run can only tie or lose: the ratio row
  // collapses below its floor. Filtering both sides must turn that into a
  // clean pass — and must not report the baseline's row as missing.
  BenchMap base = sample();
  base["serve_throughput/scaling=4v1"] = {3.0, 0.0, 0.0};
  BenchMap cur = sample();
  cur["serve_throughput/scaling=4v1"] = {0.9, 0.0, 0.0};  // inverted

  ASSERT_FALSE(compare(base, cur, 0.15).ok());  // unfiltered: gate fires

  const auto dropped = elsa::benchjson::drop_unsupported(base, 1);
  (void)elsa::benchjson::drop_unsupported(cur, 1);
  ASSERT_EQ(dropped.size(), 1u);
  const auto rep = compare(base, cur, 0.15);
  EXPECT_TRUE(rep.ok()) << elsa::benchjson::format(rep);
  EXPECT_TRUE(rep.warnings.empty()) << elsa::benchjson::format(rep);
}

}  // namespace
