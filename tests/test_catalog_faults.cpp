// Catalog and fault-model validation tests: id assignment, lookups, and
// every rejection path of FaultCatalog::validate.
#include <gtest/gtest.h>

#include <stdexcept>

#include "simlog/catalog.hpp"
#include "simlog/faults.hpp"

namespace {

using namespace elsa::simlog;

EventTemplate make_template(const std::string& name, Severity sev) {
  EventTemplate t;
  t.name = name;
  t.text = name + " <num>";
  t.severity = sev;
  t.shape = SignalShape::Silent;
  t.emitter = EmitterScope::PerNode;
  return t;
}

TEST(Catalog, IdsAreDenseIndices) {
  Catalog c;
  const auto a = c.add(make_template("a", Severity::Info));
  const auto b = c.add(make_template("b", Severity::Failure));
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(c.at(b).name, "b");
  EXPECT_EQ(c.size(), 2u);
}

TEST(Catalog, FindAndRequire) {
  Catalog c;
  c.add(make_template("x", Severity::Info));
  EXPECT_TRUE(c.find("x").has_value());
  EXPECT_FALSE(c.find("y").has_value());
  EXPECT_EQ(c.require("x"), 0);
  EXPECT_THROW(c.require("y"), std::invalid_argument);
}

TEST(Catalog, DuplicateNameRejected) {
  Catalog c;
  c.add(make_template("dup", Severity::Info));
  EXPECT_THROW(c.add(make_template("dup", Severity::Info)),
               std::invalid_argument);
}

TEST(Severity, FailureClassification) {
  EXPECT_TRUE(is_failure_severity(Severity::Failure));
  EXPECT_TRUE(is_failure_severity(Severity::Fatal));
  EXPECT_FALSE(is_failure_severity(Severity::Severe));
  EXPECT_FALSE(is_failure_severity(Severity::Info));
  EXPECT_STREQ(to_string(Severity::Severe), "SEVERE");
}

class FaultValidation : public ::testing::Test {
 protected:
  void SetUp() override {
    info_ = cat_.add(make_template("info", Severity::Info));
    fail_ = cat_.add(make_template("fail", Severity::Failure));
  }

  FaultType valid_fault() const {
    FaultType f;
    f.name = "f";
    f.category = "test";
    f.rate_per_day = 1.0;
    SyndromeStep pre;
    pre.tmpl = info_;
    SyndromeStep term;
    term.tmpl = fail_;
    term.offset_s = 10.0;
    f.steps = {pre, term};
    f.terminal_step = 1;
    return f;
  }

  Catalog cat_;
  std::uint16_t info_ = 0, fail_ = 0;
};

TEST_F(FaultValidation, AcceptsValid) {
  FaultCatalog fc;
  fc.add(valid_fault());
  EXPECT_NO_THROW(fc.validate(cat_));
}

TEST_F(FaultValidation, RejectsEmptySteps) {
  auto f = valid_fault();
  f.steps.clear();
  FaultCatalog fc;
  fc.add(std::move(f));
  EXPECT_THROW(fc.validate(cat_), std::invalid_argument);
}

TEST_F(FaultValidation, RejectsTerminalOutOfRange) {
  auto f = valid_fault();
  f.terminal_step = 5;
  FaultCatalog fc;
  fc.add(std::move(f));
  EXPECT_THROW(fc.validate(cat_), std::invalid_argument);
}

TEST_F(FaultValidation, RejectsNonFailureTerminal) {
  auto f = valid_fault();
  f.terminal_step = 0;  // points at the INFO step
  FaultCatalog fc;
  fc.add(std::move(f));
  EXPECT_THROW(fc.validate(cat_), std::invalid_argument);
}

TEST_F(FaultValidation, BenignChainMayLackFailure) {
  auto f = valid_fault();
  f.terminal_step = 0;
  f.benign = true;
  FaultCatalog fc;
  fc.add(std::move(f));
  EXPECT_NO_THROW(fc.validate(cat_));
}

TEST_F(FaultValidation, RejectsUnknownTemplate) {
  auto f = valid_fault();
  f.steps[0].tmpl = 99;
  FaultCatalog fc;
  fc.add(std::move(f));
  EXPECT_THROW(fc.validate(cat_), std::invalid_argument);
}

TEST_F(FaultValidation, RejectsBadRepeatRange) {
  auto f = valid_fault();
  f.steps[0].repeat_min = 3;
  f.steps[0].repeat_max = 2;
  FaultCatalog fc;
  fc.add(std::move(f));
  EXPECT_THROW(fc.validate(cat_), std::invalid_argument);
}

TEST_F(FaultValidation, RejectsBadEmitProb) {
  auto f = valid_fault();
  f.steps[0].emit_prob = 1.5;
  FaultCatalog fc;
  fc.add(std::move(f));
  EXPECT_THROW(fc.validate(cat_), std::invalid_argument);
}

TEST_F(FaultValidation, RejectsFlakyTerminal) {
  auto f = valid_fault();
  f.steps[1].emit_prob = 0.5;
  FaultCatalog fc;
  fc.add(std::move(f));
  EXPECT_THROW(fc.validate(cat_), std::invalid_argument);
}

TEST_F(FaultValidation, RejectsEmptySuppressionInterval) {
  auto f = valid_fault();
  f.suppressions.push_back({info_, 10.0, 10.0, StepWhere::Initiator});
  FaultCatalog fc;
  fc.add(std::move(f));
  EXPECT_THROW(fc.validate(cat_), std::invalid_argument);
}

TEST_F(FaultValidation, RejectsBadAffectedRange) {
  auto f = valid_fault();
  f.affected_min = 0;
  FaultCatalog fc;
  fc.add(std::move(f));
  EXPECT_THROW(fc.validate(cat_), std::invalid_argument);
}

TEST_F(FaultValidation, MeanLeadComputed) {
  const auto f = valid_fault();
  EXPECT_DOUBLE_EQ(f.mean_lead_s(), 10.0);
}

TEST(FaultCatalog, FindByName) {
  FaultCatalog fc;
  FaultType f;
  f.name = "only";
  fc.add(f);
  EXPECT_NE(fc.find("only"), nullptr);
  EXPECT_EQ(fc.find("other"), nullptr);
}

}  // namespace
