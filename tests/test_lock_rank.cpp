// Runtime lock-rank enforcement (DESIGN.md §11). The ordered/unranked/
// re-acquire cases must run in every build; the inversion abort (with both
// mutex names in the message) only exists when ELSA_ENFORCE_LOCK_RANKS is
// compiled in — Debug builds and the sanitizer CI jobs — so the death
// test skips itself elsewhere instead of silently passing.
//
// Every test mutex is function-local `static`: std::mutex never calls
// pthread_mutex_destroy (trivial destructor), so TSan remembers lock
// orders by address forever — stack-slot reuse across tests would weave
// unrelated tests' orders into false inversion cycles.
#include <gtest/gtest.h>

#include "util/thread_annotations.hpp"

namespace util = elsa::util;

TEST(LockRank, OrderedAcquisitionRuns) {
  static util::Mutex outer{"test.outer", util::lockrank::kService};
  static util::Mutex inner{"test.inner", util::lockrank::kRing};
  int guarded = 0;
  {
    util::MutexLock lo(outer);
    util::MutexLock li(inner);
    ++guarded;
  }
  // Releasing restores the stack: the same descent must work again.
  {
    util::MutexLock lo(outer);
    util::MutexLock li(inner);
    ++guarded;
  }
  EXPECT_EQ(guarded, 2);
}

TEST(LockRank, UnrankedMutexesAreNeverChecked) {
  // Unranked participates in no ordering, in either position. Each
  // direction gets its own pair so neither TSan nor the static lock-graph
  // pass sees the same two mutexes in both orders.
  {
    static util::Mutex unranked_hi;  // default-constructed: kUnranked
    static util::Mutex ranked_lo{"test.ranked.below", util::lockrank::kMetrics};
    util::MutexLock lu(unranked_hi);
    util::MutexLock lr(ranked_lo);
  }
  {
    static util::Mutex ranked_hi{"test.ranked.above", util::lockrank::kMetrics};
    static util::Mutex unranked_lo;
    util::MutexLock lr(ranked_hi);
    util::MutexLock lu(unranked_lo);
  }
  SUCCEED();
}

TEST(LockRank, EarlyUnlockAllowsReacquireUpward) {
  static util::Mutex elow{"test.early.low", util::lockrank::kMetrics};
  static util::Mutex ehigh{"test.early.high", util::lockrank::kService};
  elow.lock();
  elow.unlock();
  // Nothing held any more — taking the higher-ranked lock is fine.
  util::MutexLock lh(ehigh);
  util::MutexLock ll(elow);
}

TEST(LockRank, TryLockNeverAborts) {
  static util::Mutex tlow{"test.try.low", util::lockrank::kMetrics};
  static util::Mutex thigh{"test.try.high", util::lockrank::kService};
  util::MutexLock ll(tlow);
  // try_lock cannot block, hence cannot deadlock: an inverted try is
  // allowed (and succeeds here since nobody else holds `thigh`).
  ASSERT_TRUE(thigh.try_lock());
  thigh.unlock();
}

#if defined(ELSA_ENFORCE_LOCK_RANKS)

using LockRankDeathTest = ::testing::Test;

TEST(LockRankDeathTest, InversionAbortsWithBothNames) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  static util::Mutex dlow{"test.death.ring", util::lockrank::kRing};
  static util::Mutex dhigh{"test.death.service", util::lockrank::kService};
  EXPECT_DEATH(
      {
        util::MutexLock ll(dlow);
        util::MutexLock lh(dhigh);  // rank ascends: must abort
      },
      "lock-rank inversion.*test\\.death\\.service.*test\\.death\\.ring");
}

TEST(LockRankDeathTest, EqualRankAbortsToo) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  static util::Mutex eqa{"test.death.a", util::lockrank::kRing};
  static util::Mutex eqb{"test.death.b", util::lockrank::kRing};
  EXPECT_DEATH(
      {
        util::MutexLock la(eqa);
        util::MutexLock lb(eqb);  // equal rank: no defined order, abort
      },
      "lock-rank inversion.*test\\.death\\.b.*test\\.death\\.a");
}

#else

TEST(LockRankDeathTest, SkippedWithoutEnforcement) {
  GTEST_SKIP() << "ELSA_ENFORCE_LOCK_RANKS not compiled in (non-Debug build "
                  "without -DELSA_LOCK_RANK_CHECKS=ON); inversion abort is "
                  "exercised by the Debug and sanitizer configurations.";
}

#endif  // ELSA_ENFORCE_LOCK_RANKS
