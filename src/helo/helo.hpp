// HELO — Hierarchical Event Log Organizer (re-implementation of the paper's
// preprocessing stage [15], §III.A).
//
// Raw HPC log messages are unstructured and vary per instance (addresses,
// counts, locations). HELO reduces them to *message templates*: regular
// expressions over tokens where "d+" stands for a numeric field and "*" for
// an arbitrary one. Every downstream signal is keyed by template id.
//
// Algorithm (offline and online are the same code path; online simply keeps
// classifying into the same miner so new software versions create new
// templates on the fly, as §III.A requires):
//   1. tokenize on whitespace;
//   2. pre-generalise: numeric-looking tokens become "d+" immediately;
//   3. bucket by (token count, first token) — the "hierarchical" part:
//      messages of different lengths or different leading constants never
//      share a template;
//   4. within a bucket, greedily match against existing templates counting
//      mismatches at non-wildcard positions; if the best template's
//      mismatch fraction is at or below `max_word_mismatch`, join it and
//      wildcard the mismatching positions, else found a new template.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace elsa::helo {

struct Template {
  std::uint32_t id = 0;
  std::vector<std::string> tokens;  ///< constants, "d+", or "*"
  std::uint64_t count = 0;          ///< messages matched so far

  /// Rendered template text, e.g. "linkcard power module * is not accessible".
  std::string text() const;
  /// Number of wildcard positions ("*" or "d+").
  std::size_t wildcards() const;
};

struct MinerConfig {
  /// Maximum fraction of non-wildcard positions allowed to mismatch when
  /// joining an existing template.
  double max_word_mismatch = 0.30;
};

class TemplateMiner {
 public:
  static constexpr std::uint32_t kNoTemplate = 0xffffffffu;

  explicit TemplateMiner(MinerConfig cfg = {});

  /// Rebuild a miner from a persisted template set (ids must be dense and
  /// equal the vector index). Used by model deserialisation.
  static TemplateMiner from_templates(std::vector<Template> templates,
                                      MinerConfig cfg = {});

  /// Classify a message, creating a new template when nothing fits.
  std::uint32_t classify(std::string_view message);

  /// Classify without mutating the template set; kNoTemplate if unseen.
  std::uint32_t classify_const(std::string_view message) const;

  std::size_t size() const { return templates_.size(); }
  const Template& at(std::uint32_t id) const { return templates_.at(id); }
  const std::vector<Template>& templates() const { return templates_; }

 private:
  struct Bucket {
    std::vector<std::uint32_t> template_ids;
  };

  static std::vector<std::string> generalize(std::string_view message);
  static std::uint64_t bucket_key(std::size_t len, const std::string& first);

  /// Best template id in the bucket and its mismatch count; kNoTemplate if
  /// the bucket is empty or nothing is within threshold.
  std::uint32_t best_match(const Bucket& bucket,
                           const std::vector<std::string>& tokens,
                           std::vector<std::size_t>* mismatch_positions) const;

  MinerConfig cfg_;
  std::vector<Template> templates_;
  std::unordered_map<std::uint64_t, Bucket> buckets_;
};

}  // namespace elsa::helo
