#include "helo/helo.hpp"

#include <limits>

#include "util/strings.hpp"

namespace elsa::helo {

std::string Template::text() const { return util::join(tokens, " "); }

std::size_t Template::wildcards() const {
  std::size_t n = 0;
  for (const auto& t : tokens)
    if (t == "*" || t == "d+") ++n;
  return n;
}

TemplateMiner::TemplateMiner(MinerConfig cfg) : cfg_(cfg) {}

TemplateMiner TemplateMiner::from_templates(std::vector<Template> templates,
                                            MinerConfig cfg) {
  TemplateMiner m(cfg);
  m.templates_ = std::move(templates);
  for (std::uint32_t id = 0; id < m.templates_.size(); ++id) {
    auto& t = m.templates_[id];
    t.id = id;
    if (t.tokens.empty()) continue;
    m.buckets_[bucket_key(t.tokens.size(), t.tokens.front())]
        .template_ids.push_back(id);
  }
  return m;
}

std::vector<std::string> TemplateMiner::generalize(std::string_view message) {
  auto tokens = util::split(message, " \t");
  for (auto& t : tokens)
    if (util::looks_numeric(t)) t = "d+";
  return tokens;
}

std::uint64_t TemplateMiner::bucket_key(std::size_t len,
                                        const std::string& first) {
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a over the first token
  for (unsigned char c : first) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return (static_cast<std::uint64_t>(len) << 48) ^ (h & 0xffffffffffffULL);
}

std::uint32_t TemplateMiner::best_match(
    const Bucket& bucket, const std::vector<std::string>& tokens,
    std::vector<std::size_t>* mismatch_positions) const {
  std::uint32_t best = kNoTemplate;
  std::size_t best_mismatches = std::numeric_limits<std::size_t>::max();
  const std::size_t allowed = static_cast<std::size_t>(
      cfg_.max_word_mismatch * static_cast<double>(tokens.size()));

  for (const std::uint32_t id : bucket.template_ids) {
    const Template& t = templates_[id];
    std::size_t mismatches = 0;
    bool viable = true;
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      const std::string& tt = t.tokens[i];
      if (tt == "*" || tt == tokens[i]) continue;
      if (++mismatches > allowed || mismatches >= best_mismatches) {
        viable = false;
        break;
      }
    }
    if (viable && mismatches < best_mismatches) {
      best_mismatches = mismatches;
      best = id;
      if (mismatches == 0) break;
    }
  }
  if (best != kNoTemplate && mismatch_positions) {
    mismatch_positions->clear();
    const Template& t = templates_[best];
    for (std::size_t i = 0; i < tokens.size(); ++i)
      if (t.tokens[i] != "*" && t.tokens[i] != tokens[i])
        mismatch_positions->push_back(i);
  }
  return best;
}

std::uint32_t TemplateMiner::classify(std::string_view message) {
  const auto tokens = generalize(message);
  if (tokens.empty()) return kNoTemplate;
  Bucket& bucket = buckets_[bucket_key(tokens.size(), tokens.front())];

  std::vector<std::size_t> mismatches;
  const std::uint32_t best = best_match(bucket, tokens, &mismatches);
  if (best != kNoTemplate) {
    Template& t = templates_[best];
    for (const std::size_t pos : mismatches) t.tokens[pos] = "*";
    ++t.count;
    return best;
  }

  Template t;
  t.id = static_cast<std::uint32_t>(templates_.size());
  t.tokens = tokens;
  t.count = 1;
  templates_.push_back(std::move(t));
  bucket.template_ids.push_back(templates_.back().id);
  return templates_.back().id;
}

std::uint32_t TemplateMiner::classify_const(std::string_view message) const {
  const auto tokens = generalize(message);
  if (tokens.empty()) return kNoTemplate;
  const auto it = buckets_.find(bucket_key(tokens.size(), tokens.front()));
  if (it == buckets_.end()) return kNoTemplate;
  return best_match(it->second, tokens, nullptr);
}

}  // namespace elsa::helo
