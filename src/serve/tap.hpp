// PredictionTap: the serve path's push-side prediction observer — the hook
// the checkpoint advisor (src/advisor) subscribes through. Unlike the
// PredictionSink std::function (a convenience callback with no threading
// contract beyond "may run concurrently"), a tap is handed the *shard
// index* of the emitting engine, which makes a lock-free per-shard SPSC
// hand-off possible on the consumer side: for any given shard index, calls
// are serialized — they run on that shard's worker thread, on its
// watchdog-restarted successor (the join publishes the predecessor's
// writes), or on the finishing thread after every worker has joined — so
// exactly one producer per shard exists at any instant.
//
// Contract for implementations:
//   * publish() MUST be wait-free: never block, never take a lock the
//     predict hot path could contend on, never allocate unboundedly. Drop
//     and count if a bounded buffer is full.
//   * publish() is called once per prediction per run (the drain cursor in
//     ShardedEngine::drain_shard guarantees exactly-once streaming even
//     across injected worker deaths and restarts).
//   * The tap must outlive the engine/service it is registered with.
//
// The sharded-ingest refactor (lock-free ShardRouter + per-shard
// SpscRings, no dispatcher) did not change this contract: predictions are
// still emitted from drain_shard under the same one-producer-per-shard
// serialization, whatever thread is draining.
#pragma once

#include <cstddef>

#include "elsa/online.hpp"

namespace elsa::serve {

class PredictionTap {
 public:
  virtual ~PredictionTap() = default;

  /// One freshly issued prediction from shard `shard`. Wait-free (see
  /// file comment); per-shard calls are serialized, cross-shard calls are
  /// concurrent.
  virtual void publish(std::size_t shard, const core::Prediction& p) = 0;
};

}  // namespace elsa::serve
