// PredictionTap: the serve path's push-side prediction observer — the hook
// the checkpoint advisor (src/advisor) subscribes through. Unlike the
// PredictionSink std::function (a convenience callback with no threading
// contract beyond "may run concurrently"), a tap is handed the *shard
// index* of the emitting engine, which makes a lock-free per-shard SPSC
// hand-off possible on the consumer side: for any given shard index, calls
// are serialized — they run on that shard's worker thread, on its
// watchdog-restarted successor (the join publishes the predecessor's
// writes), or on the finishing thread after every worker has joined — so
// exactly one producer per shard exists at any instant.
//
// Contract for implementations:
//   * publish() MUST be wait-free: never block, never take a lock the
//     predict hot path could contend on, never allocate unboundedly. Drop
//     and count if a bounded buffer is full.
//   * publish() is called once per prediction per run (the drain cursor in
//     ShardedEngine::drain_shard guarantees exactly-once streaming even
//     across injected worker deaths and restarts).
//   * The tap must outlive the engine/service it is registered with.
//
// The sharded-ingest refactor (lock-free ShardRouter + per-shard
// SpscRings, no dispatcher) did not change this contract: predictions are
// still emitted from drain_shard under the same one-producer-per-shard
// serialization, whatever thread is draining.
#pragma once

#include <cstddef>

#include "elsa/online.hpp"

namespace elsa::serve {

class PredictionTap {
 public:
  virtual ~PredictionTap() = default;

  /// One freshly issued prediction from shard `shard`. Wait-free (see
  /// file comment); per-shard calls are serialized, cross-shard calls are
  /// concurrent.
  virtual void publish(std::size_t shard, const core::Prediction& p) = 0;
};

/// One classified record as the shard engine consumed it: everything the
/// incremental miner (src/mining) needs, nothing else.
struct ClassifiedEvent {
  std::int64_t time_ms = 0;
  std::int32_t node_id = -1;
  std::uint32_t tmpl = 0;
  std::uint8_t severity = 0;  ///< simlog::Severity ordinal
};

/// The ingest-side sibling of PredictionTap: observes every classified
/// event exactly once, adjacent to the engine feed, under the same
/// one-producer-per-shard serialization (worker thread, its
/// watchdog-restarted successor, or the finishing thread after joins — a
/// fault-killed worker's unprocessed carryover is re-published by whoever
/// processes it, never twice).
///
/// Unlike PredictionTap, publish() MAY block (bounded backpressure into a
/// per-shard SPSC ring): the miner's determinism proof needs a lossless
/// stream, so the contract trades wait-freedom for conservation. An
/// implementation must guarantee eventual progress (a draining consumer or
/// a closed ring), never a lock shared across shards.
class EventTap {
 public:
  virtual ~EventTap() = default;

  /// One classified event from shard `shard`, in shard-stream order.
  virtual void publish(std::size_t shard, const ClassifiedEvent& e) = 0;
};

}  // namespace elsa::serve
