// Bounded MPMC ring buffer: the serving layer's general-purpose queue for
// low-rate cross-thread streams (the alarm feed, test fixtures). The record
// ingest path no longer runs through this — it was the scalability
// bottleneck (every producer and the dispatcher serialized on mu_) and was
// replaced by per-shard lock-free rings (serve/spsc_ring.hpp) behind the
// ShardRouter. Where a stream sees a handful of events per second, the
// mutex ring stays the right tool: simpler, FIFO under any producer mix,
// and its lock discipline is machine-checkable.
//
// A fixed-capacity circular buffer guarded by a mutex and two condition
// variables. Any number of producers and consumers may operate on it
// concurrently. Three overflow policies are exposed and the *caller* picks
// per call site:
//
//   * push()       — block until space frees up (backpressure: a slow
//     analysis tier throttles the syslog tap instead of silently losing
//     records);
//   * offer()      — never block; on a full ring the item is dropped and
//     the ring's drop counter incremented (load-shedding: a live feed that
//     must not stall prefers losing a record to losing the feed);
//   * push_evict() — never block and never reject; on a full ring the
//     OLDEST queued item is evicted (counted) to make room (freshness: a
//     monitoring feed prefers current data over a complete backlog).
//
// close() wakes every waiter; consumers then drain the remaining items and
// pop() returns nullopt once the ring is empty. Throughput-sensitive
// consumers use pop_all() which swaps out every queued item under one lock
// acquisition, amortising synchronisation to well under the cost of the
// mutex handshake per item.
//
// Lock discipline is machine-checked: every mutable field is
// ELSA_GUARDED_BY(mu_) and `clang++ -Wthread-safety` rejects any access
// outside a MutexLock scope (see util/thread_annotations.hpp). Condition
// waits are explicit `while` loops — a predicate lambda would be analysed
// as a separate function and defeat the proof.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <vector>

#include "util/thread_annotations.hpp"

namespace elsa::serve {

template <class T>
class Ring {
 public:
  explicit Ring(std::size_t capacity) : cap_(capacity), buf_(capacity) {
    if (capacity == 0) throw std::invalid_argument("Ring: zero capacity");
  }

  Ring(const Ring&) = delete;
  Ring& operator=(const Ring&) = delete;

  std::size_t capacity() const { return cap_; }

  /// Items currently queued (racy by nature; for monitoring).
  std::size_t size() const ELSA_EXCLUDES(mu_) {
    util::MutexLock lk(mu_);
    return count_;
  }

  /// Records silently shed by offer() on overflow.
  std::uint64_t dropped() const {
    // relaxed: standalone monotonic counter read for monitoring; no other
    // memory depends on its value.
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Queued items displaced by push_evict() on overflow.
  std::uint64_t evicted() const {
    // relaxed: standalone monotonic counter read for monitoring; no other
    // memory depends on its value.
    return evicted_.load(std::memory_order_relaxed);
  }

  bool closed() const ELSA_EXCLUDES(mu_) {
    util::MutexLock lk(mu_);
    return closed_;
  }

  /// Blocking push. Returns the queue depth after insertion (>= 1), or 0 if
  /// the ring was closed while waiting — the item was not enqueued.
  std::size_t push(T item) ELSA_EXCLUDES(mu_) {
    util::MutexLock lk(mu_);
    while (count_ >= cap_ && !closed_) not_full_.wait(mu_);
    if (closed_) return 0;
    buf_[(head_ + count_) % cap_] = std::move(item);
    const std::size_t depth = ++count_;
    lk.unlock();
    not_empty_.notify_one();
    return depth;
  }

  /// Non-blocking push. On a full (or closed) ring the item is dropped and
  /// counted; returns the depth after insertion, or 0 on drop.
  std::size_t offer(T item) ELSA_EXCLUDES(mu_) {
    {
      util::MutexLock lk(mu_);
      if (!closed_ && count_ < cap_) {
        buf_[(head_ + count_) % cap_] = std::move(item);
        const std::size_t depth = ++count_;
        lk.unlock();
        not_empty_.notify_one();
        return depth;
      }
    }
    // relaxed: monotonic shed counter; readers only ever sum it, never
    // order other accesses against it.
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return 0;
  }

  /// Non-blocking push that never rejects on overflow: a full ring evicts
  /// its oldest queued item (counted; `*evicted_out` set when it happens)
  /// to make room. Returns the depth after insertion, or 0 iff the ring is
  /// closed — only then was the item not enqueued.
  std::size_t push_evict(T item, bool* evicted_out = nullptr)
      ELSA_EXCLUDES(mu_) {
    bool kicked = false;
    std::size_t depth = 0;
    {
      util::MutexLock lk(mu_);
      if (closed_) {
        if (evicted_out) *evicted_out = false;
        return 0;
      }
      if (count_ >= cap_) {
        buf_[head_] = T{};  // release the displaced item's resources now
        head_ = (head_ + 1) % cap_;
        --count_;
        kicked = true;
      }
      buf_[(head_ + count_) % cap_] = std::move(item);
      depth = ++count_;
      lk.unlock();
      not_empty_.notify_one();
    }
    if (kicked) {
      // relaxed: monotonic eviction counter; readers only ever sum it,
      // never order other accesses against it.
      evicted_.fetch_add(1, std::memory_order_relaxed);
    }
    if (evicted_out) *evicted_out = kicked;
    return depth;
  }

  /// Blocking pop; nullopt once the ring is closed and drained.
  std::optional<T> pop() ELSA_EXCLUDES(mu_) {
    util::MutexLock lk(mu_);
    while (count_ == 0 && !closed_) not_empty_.wait(mu_);
    if (count_ == 0) return std::nullopt;
    T item = std::move(buf_[head_]);
    head_ = (head_ + 1) % cap_;
    --count_;
    lk.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() ELSA_EXCLUDES(mu_) {
    util::MutexLock lk(mu_);
    if (count_ == 0) return std::nullopt;
    T item = std::move(buf_[head_]);
    head_ = (head_ + 1) % cap_;
    --count_;
    lk.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Drain everything currently queued into `out` (appended, FIFO order)
  /// under one lock acquisition; blocks until at least one item is
  /// available. Returns false once the ring is closed and fully drained.
  bool pop_all(std::vector<T>& out) ELSA_EXCLUDES(mu_) {
    util::MutexLock lk(mu_);
    while (count_ == 0 && !closed_) not_empty_.wait(mu_);
    if (count_ == 0) return false;
    out.reserve(out.size() + count_);
    while (count_ > 0) {
      out.push_back(std::move(buf_[head_]));
      head_ = (head_ + 1) % cap_;
      --count_;
    }
    lk.unlock();
    not_full_.notify_all();
    return true;
  }

  /// Stop accepting items and wake every blocked producer and consumer.
  /// Idempotent. Items already queued remain poppable.
  void close() ELSA_EXCLUDES(mu_) {
    {
      util::MutexLock lk(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

 private:
  const std::size_t cap_;  ///< immutable after construction; lock-free reads
  // Rank kRing: below the service/engine control locks that may consult a
  // ring, above metrics/pool/leaf locks. Two rings are never held together
  // (equal ranks abort in enforcing builds) — pop_all() releases before
  // returning, so dispatcher-side re-push never nests ring locks.
  mutable util::Mutex mu_{"serve::Ring::mu_", util::lockrank::kRing};
  util::CondVar not_empty_;
  util::CondVar not_full_;
  std::vector<T> buf_ ELSA_GUARDED_BY(mu_);
  std::size_t head_ ELSA_GUARDED_BY(mu_) = 0;
  std::size_t count_ ELSA_GUARDED_BY(mu_) = 0;
  bool closed_ ELSA_GUARDED_BY(mu_) = false;
  // elsa-atomic: monotonic-relaxed — shed counter, summed for monitoring.
  std::atomic<std::uint64_t> dropped_{0};
  // elsa-atomic: monotonic-relaxed — eviction counter, summed only.
  std::atomic<std::uint64_t> evicted_{0};
};

}  // namespace elsa::serve
