// ShardRouter: the lock-free front door of the sharded serving path.
//
// Routing runs on the *producer's* thread — there is no dispatcher hop and
// no shared state, just a pure function over two immutable fields — so any
// number of submitters route concurrently with zero coordination.
//
// The partition key is the record's midplane index (the paper's §V
// location analysis: fault syndromes overwhelmingly stay inside one
// midplane, so a midplane is the unit of stream locality; flat clusters
// shard by rack, which their topology model collapses onto midplane).
// System-scoped records (node_id < 0) ride on shard 0.
//
// The key is *hashed* (Fibonacci multiplicative hash + high-bit range
// reduction), not taken modulo shards: midplane indices are structured
// (rack-major), and `midplane % shards` aliases that structure into hot
// shards whenever the machine geometry shares a factor with the shard
// count. Multiplying by 2^64/phi walks sequential keys through [0, 2^64)
// as a low-discrepancy sequence — dense midplane indices (a real machine
// has only a handful) spread near-perfectly, unlike an avalanche
// finalizer whose independent uniform draws collide badly over few keys —
// and the high-bit reduction keeps strided keys from aliasing the way a
// low-bits modulo would. The mapping stays a pure deterministic function
// of (node_id, nodes_per_midplane, shards) — identical across runs,
// threads and processes, which is what keeps the deterministic merge and
// the advisor's schedule digest byte-identical: every midplane still maps
// wholly to exactly one shard, in arrival order.
#pragma once

#include <cstddef>
#include <cstdint>

namespace elsa::serve {

class ShardRouter {
 public:
  ShardRouter() = default;
  ShardRouter(std::int32_t nodes_per_midplane, std::size_t shards)
      : nodes_per_midplane_(nodes_per_midplane < 1 ? 1 : nodes_per_midplane),
        shards_(shards == 0 ? 1 : shards) {}

  std::size_t shards() const { return shards_; }

  /// Fibonacci multiplicative hash: 0x9E3779B97F4A7C15 is 2^64/phi, so
  /// sequential keys advance ~0.618 * 2^64 apart — a low-discrepancy walk
  /// that spreads dense key sets near-perfectly. The pre-xorshift folds
  /// the high key bits down (a bare multiply never propagates them into
  /// the bits the range reduction reads) without disturbing small keys.
  static std::uint64_t mix(std::uint64_t x) {
    x ^= x >> 33;
    return x * 0x9e3779b97f4a7c15ull;
  }

  /// Range reduction on the mixed key's *high* 32 bits (a low-bits modulo
  /// would undo the spread for power-of-two shard counts).
  static std::size_t spread(std::uint64_t mixed, std::size_t shards) {
    return static_cast<std::size_t>(
        (mixed >> 32) * static_cast<std::uint64_t>(shards) >> 32);
  }

  /// The partition key: global midplane index, or -1 for system-scoped
  /// records. This is also the advisor's per-partition MTTF key.
  // elsa-realtime: pure integer arithmetic on the producer thread.
  // elsa-deterministic: the advisor's MTTF key must be stable across runs.
  std::int64_t partition_of(std::int32_t node_id) const {
    if (node_id < 0) return -1;
    return static_cast<std::int64_t>(node_id / nodes_per_midplane_);
  }

  /// Stable hash of the partition key, reduced to a shard index.
  /// System-scoped records (partition -1) hash like any other key — on a
  /// real RAS stream they are a sizeable slice of the traffic, so pinning
  /// them to shard 0 would stack them on whatever midplanes hash there.
  // elsa-realtime: per-record routing on the producer thread.
  // elsa-deterministic: shard placement feeds the digest-checked shard
  // model streams; it must not vary run to run.
  std::size_t shard_of(std::int32_t node_id) const {
    const std::int64_t part = partition_of(node_id);
    return spread(mix(static_cast<std::uint64_t>(part)), shards_);
  }

 private:
  std::int32_t nodes_per_midplane_ = 1;
  std::size_t shards_ = 1;
};

}  // namespace elsa::serve
