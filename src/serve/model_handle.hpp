// RCU-style model hot-swap hub: how the incremental miner (src/mining)
// publishes freshly built rule models into a running ShardedEngine without
// ever making the predict path block.
//
// Shape of the problem: N shard workers read the current model on every
// batch; one publisher (the miner pump) replaces it occasionally. A lock
// would put the publisher on the predict hot path; a bare atomic pointer
// would leave the publisher unable to ever free a retired model (a reader
// may still be using it). Classic RCU answer: readers *pin* the hub while
// they hold the pointer, the publisher swaps the pointer instantly and
// reclaims a retired model only after a grace period proves no reader can
// still hold it.
//
// Protocol (all hub atomics seq_cst — the grace argument is a total-order
// argument, see below; the cost is irrelevant at per-batch granularity):
//
//   reader r:   slots_[r] = PINNED            (A: seq_cst store)
//               v = current_                  (B: seq_cst load)
//               ... use *v ...
//               slots_[r] = QUIESCENT         (C: seq_cst store)
//
//   publisher:  old = current_.exchange(new)  (X: seq_cst RMW)
//               retired += {old, all-readers mask}
//   collect():  for each retired entry, each still-pending reader r:
//                 if slots_[r] == QUIESCENT   (Y: seq_cst load)
//                   clear r's bit; free the entry when the mask empties
//
// Grace argument: a retired entry is freed only once every reader slot has
// been OBSERVED QUIESCENT at least once after the exchange X. If Y (which
// is after X in the publisher's program order, hence after X in the single
// total order S over all seq_cst operations) reads QUIESCENT, then any
// later pin-store A by that reader is after Y in S (otherwise Y would have
// read PINNED), hence after X — so its paired pointer load B (after A in
// program order, hence in S) necessarily reads the NEW pointer, never the
// retired one. A reader still pinned keeps its bit set and blocks
// reclamation of every model retired while it was in. Note the condition
// is deliberately *observation*-based, not epoch-comparison-based: "slot
// epoch looks newer than the swap" does NOT prove the reader's pointer
// load saw the new pointer, and a counterexample schedule exists — do not
// "optimise" this back in.
//
// Reclamation is deferred, not blocking: publish() never waits on readers
// (it just queues the old model on the retired list), collect() is a
// non-blocking scan the publisher calls opportunistically, and only the
// destructor insists on draining the list (bounded spin + yield, by which
// point all readers must have released their handles — the service joins
// its workers before the hub dies). Every operation is bounded, which is
// what lets the deterministic interleaving explorer (util/interleave.hpp)
// enumerate this protocol exhaustively.
//
// Reader identity is a slot index < kMaxReaders (the shard index): per
// slot, pins are serialized — exactly the one-producer-per-shard contract
// the serve layer already maintains (worker thread, its watchdog-restarted
// successor, or the finishing thread after joins). The single-publisher
// contract mirrors it: publish()/collect()/retired() are called from one
// thread at a time (the miner pump, then the finishing thread after the
// pump joined).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "util/interleave.hpp"

namespace elsa::serve {

template <class T>
class RcuHub {
 private:
  /// The unit of publication: a model plus its generation number, swapped
  /// as one pointer so readers can never observe a pointer/epoch skew.
  struct Versioned {
    std::unique_ptr<const T> val;
    std::uint64_t epoch;
  };

 public:
  /// Maximum distinct reader slots (shards). 64 keeps the per-entry
  /// pending set a single word.
  static constexpr std::size_t kMaxReaders = 64;

  /// A pinned view of the current model: guarantees the pointee stays
  /// alive until release()/destruction. Hold across one batch, not longer —
  /// a pinned reader blocks reclamation of every model retired meanwhile.
  class Handle {
   public:
    Handle() = default;
    Handle(Handle&& o) noexcept
        : hub_(std::exchange(o.hub_, nullptr)), v_(o.v_), slot_(o.slot_) {}
    Handle& operator=(Handle&& o) noexcept {
      if (this != &o) {
        release();
        hub_ = std::exchange(o.hub_, nullptr);
        v_ = o.v_;
        slot_ = o.slot_;
      }
      return *this;
    }
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;
    ~Handle() { release(); }

    const T* get() const { return v_->val.get(); }
    const T* operator->() const { return get(); }
    /// Publication generation of the pinned model (0 = the initial model).
    /// Compare against a remembered value to detect a swap — pointer
    /// comparison is ABA-unsafe (a freed model's address can be reused).
    std::uint64_t epoch() const { return v_->epoch; }

    void release() {
      if (hub_ == nullptr) return;
      hub_->unpin(slot_);
      hub_ = nullptr;
    }

   private:
    friend class RcuHub;
    Handle(RcuHub* hub, const Versioned* v, std::size_t slot)
        : hub_(hub), v_(v), slot_(slot) {}
    RcuHub* hub_ = nullptr;
    const Versioned* v_ = nullptr;
    std::size_t slot_ = 0;
  };

  explicit RcuHub(std::unique_ptr<const T> initial)
      : current_(new Versioned{std::move(initial), 0}) {
    for (auto& s : slots_)
      // relaxed: pre-publication initialization; the constructor's caller
      // publishes the hub to readers with its own synchronization.
      s.state.store(kQuiescent, std::memory_order_relaxed);
  }

  RcuHub(const RcuHub&) = delete;
  RcuHub& operator=(const RcuHub&) = delete;

  ~RcuHub() {
    // All readers must have released their handles by now (the service
    // joins its workers before tearing the hub down); drain the retired
    // list, then reclaim the current model.
    int spins = 0;
    while (true) {
      collect();
      if (retired_.empty()) break;
      if (++spins > 64) std::this_thread::yield();
    }
    util::sched_point();
    delete current_.load(std::memory_order_seq_cst);
  }

  /// Pin the current model for reader slot `slot` (< kMaxReaders). Wait-free.
  // elsa-realtime: the RCU read side — two seq_cst accesses, nothing else.
  Handle pin(std::size_t slot) {
    util::sched_point();
    // Order matters: declare PINNED *before* loading the pointer — the
    // publisher's quiescence scan must not be able to miss us (see the
    // grace argument in the file comment).
    slots_[slot].state.store(kPinned, std::memory_order_seq_cst);
    util::sched_point();
    const Versioned* v = current_.load(std::memory_order_seq_cst);
    return Handle(this, v, slot);
  }

  /// Swap in the next model; the old one joins the retired list and is
  /// freed by a later collect() once every reader passed a quiescent
  /// point. Never blocks. Single publisher. Returns the new epoch.
  std::uint64_t publish(std::unique_ptr<const T> next) {
    const std::uint64_t e = epoch_ + 1;
    auto* v = new Versioned{std::move(next), e};
    util::sched_point();
    const Versioned* old = current_.exchange(v, std::memory_order_seq_cst);
    retired_.push_back({old, kAllReaders});
    epoch_ = e;
    util::sched_point();
    // relaxed: monotonic swap counter, summed for metrics only.
    swaps_.fetch_add(1, std::memory_order_relaxed);
    collect();
    return e;
  }

  /// Scan the retired list and free every model whose grace period has
  /// completed. Non-blocking; publisher thread only.
  void collect() {
    std::size_t kept = 0;
    for (auto& r : retired_) {
      std::uint64_t pending = r.pending;
      for (std::size_t s = 0; pending != 0 && s < kMaxReaders; ++s) {
        const std::uint64_t bit = 1ULL << s;
        if ((pending & bit) == 0) continue;
        util::sched_point();
        if (slots_[s].state.load(std::memory_order_seq_cst) == kQuiescent)
          pending &= ~bit;
      }
      r.pending = pending;
      if (pending == 0) {
        delete r.v;
      } else {
        retired_[kept++] = r;
      }
    }
    retired_.resize(kept);
  }

  /// Epoch of the latest published model (publisher thread only).
  std::uint64_t epoch() const { return epoch_; }

  /// Total publish() calls (any thread; monitoring).
  std::uint64_t swaps() const {
    util::sched_point();
    // relaxed: standalone monotonic counter read for monitoring.
    return swaps_.load(std::memory_order_relaxed);
  }

  /// Retired models awaiting their grace period (publisher thread only).
  std::size_t retired() const { return retired_.size(); }

 private:
  struct Retired {
    const Versioned* v;
    std::uint64_t pending;  ///< reader slots not yet observed quiescent
  };
  struct alignas(64) Slot {
    // Reader pin flag: the seq_cst PINNED store precedes the reader's
    // seq_cst pointer load; the publisher's seq_cst quiescence scan orders
    // against both (total-order grace argument in the file comment).
    // elsa-atomic: rcu-handle
    std::atomic<std::uint64_t> state;
  };

  static constexpr std::uint64_t kQuiescent = ~0ULL;
  static constexpr std::uint64_t kPinned = 1;
  // Low kMaxReaders bits set, written shift-down so the expression is
  // well-formed at kMaxReaders == 64 (a left shift by 64 is UB even in a
  // branch never taken).
  static constexpr std::uint64_t kAllReaders = ~0ULL >> (64 - kMaxReaders);

  // elsa-realtime: the RCU read-side release — a single seq_cst store.
  void unpin(std::size_t slot) {
    util::sched_point();
    slots_[slot].state.store(kQuiescent, std::memory_order_seq_cst);
  }

  // elsa-atomic: rcu-handle — the published model pointer: readers load it
  // seq_cst between pin and unpin; the publisher's seq_cst exchange swaps
  // it and starts the grace period for the displaced value.
  alignas(64) std::atomic<const Versioned*> current_;
  // elsa-atomic: monotonic-relaxed — publish() count, summed for metrics.
  std::atomic<std::uint64_t> swaps_{0};
  Slot slots_[kMaxReaders];

  // Publisher-thread-only state (no locks: single-publisher contract).
  std::uint64_t epoch_ = 0;
  std::vector<Retired> retired_;
};

}  // namespace elsa::serve
