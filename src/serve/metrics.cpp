#include "serve/metrics.hpp"

#include <algorithm>
#include <cstdio>

namespace elsa::serve {

namespace {

/// 1-2-5 log-scale edges from 1 us to 50 s, plus a 0 floor bin.
std::vector<double> latency_edges_us() {
  std::vector<double> e{0.0};
  for (double decade = 1.0; decade <= 1e7; decade *= 10.0)
    for (double m : {1.0, 2.0, 5.0}) e.push_back(decade * m);
  return e;
}

/// Power-of-two depth edges, 0..64k.
std::vector<double> depth_edges() {
  std::vector<double> e{0.0};
  for (double d = 1.0; d <= 65536.0; d *= 2.0) e.push_back(d);
  return e;
}

double us_since(ServeMetrics::Clock::time_point t0) {
  const auto dt = ServeMetrics::Clock::now() - t0;
  return std::chrono::duration<double, std::micro>(dt).count();
}

}  // namespace

AtomicHistogram::AtomicHistogram(std::vector<double> edges)
    : edges_(std::move(edges)),
      // Pad each stripe's row of bins to a multiple of 8 counters (one
      // 64-byte line) so rows start on line boundaries and adjacent
      // stripes never share one.
      stride_((edges_.size() + 7) / 8 * 8),
      counts_(new std::atomic<std::uint64_t>[kMetricStripes * stride_]) {
  for (std::size_t i = 0; i < kMetricStripes * stride_; ++i) counts_[i] = 0;
}

void AtomicHistogram::add(double x) {
  if (x < edges_.front()) x = edges_.front();
  const auto it = std::upper_bound(edges_.begin(), edges_.end(), x);
  const std::size_t bin = static_cast<std::size_t>(it - edges_.begin()) - 1;
  // relaxed: bins are independent counters and snapshot() tolerates
  // in-flight adds; stripes keep concurrent threads on disjoint lines.
  counts_[metric_stripe() * stride_ + bin].fetch_add(
      1, std::memory_order_relaxed);
}

std::uint64_t AtomicHistogram::bin_total(std::size_t bin) const {
  std::uint64_t t = 0;
  for (std::size_t s = 0; s < kMetricStripes; ++s)
    // relaxed: monitoring sum; a concurrent add may or may not be counted,
    // which is the documented contract.
    t += counts_[s * stride_ + bin].load(std::memory_order_relaxed);
  return t;
}

std::uint64_t AtomicHistogram::total() const {
  std::uint64_t t = 0;
  for (std::size_t i = 0; i < edges_.size(); ++i) t += bin_total(i);
  return t;
}

util::EdgeHistogram AtomicHistogram::snapshot() const {
  util::EdgeHistogram h(edges_);
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    const std::uint64_t c = bin_total(i);
    if (c > 0) h.add(edges_[i], c);
  }
  return h;
}

ServeMetrics::ServeMetrics()
    : ingest_lat_(latency_edges_us()),
      predict_lat_(latency_edges_us()),
      depth_(depth_edges()),
      started_(Clock::now()) {}

// All on_* hooks funnel into StripedCounter::add — one relaxed increment of
// a per-thread cache-line slot. Each counter is a standalone monotonic
// statistic; nothing reads a counter to order other memory, and snapshot()
// documents a consistent-enough (not linearizable) view.
void ServeMetrics::on_submit(std::uint64_t records) {
  ingested_.add(records);
}

void ServeMetrics::on_ingest(std::size_t queue_depth) {
  records_in_.add();
  depth_.add(static_cast<double>(queue_depth));
}

void ServeMetrics::on_quarantine(std::uint64_t records) {
  quarantined_.add(records);
}

void ServeMetrics::on_shed(std::uint64_t records) { shed_.add(records); }

void ServeMetrics::on_retry(std::uint64_t records) { retries_.add(records); }

void ServeMetrics::on_watchdog_trip() { watchdog_trips_.add(); }

void ServeMetrics::on_processed(Clock::time_point enqueued_at) {
  records_out_.add();
  ingest_lat_.add(us_since(enqueued_at));
}

void ServeMetrics::on_prediction(Clock::time_point enqueued_at) {
  predictions_.add();
  predict_lat_.add(us_since(enqueued_at));
}

void ServeMetrics::on_dedupe(std::uint64_t hits) { dedupe_hits_.add(hits); }

void ServeMetrics::on_out_of_order(std::uint64_t records) {
  out_of_order_.add(records);
}

void ServeMetrics::on_advisor_event() { advisor_events_.add(); }

void ServeMetrics::on_advisor_drop() { advisor_dropped_.add(); }

void ServeMetrics::on_directive() { directives_.add(); }

void ServeMetrics::on_directive_suppressed() { directives_suppressed_.add(); }

void ServeMetrics::on_interval_update() { interval_updates_.add(); }

void ServeMetrics::on_predicted_hit(std::uint64_t n) {
  predicted_hits_.add(n);
}

void ServeMetrics::on_predicted_miss(std::uint64_t n) {
  predicted_misses_.add(n);
}

void ServeMetrics::on_miner_event(std::uint64_t n) { miner_events_.add(n); }

void ServeMetrics::on_model_publish() {
  model_publishes_.add();
  util::MutexLock lk(clock_mu_);
  model_published_ = true;
  // elsa-lint: allow(det-wall-clock): dashboard timestamp recorded beside
  // the data path — it never feeds a digest or a model byte.
  model_published_at_ = Clock::now();
}

void ServeMetrics::on_model_swap() { model_swaps_.add(); }

void ServeMetrics::set_degraded(bool on) {
  util::MutexLock lk(clock_mu_);
  if (on == degraded_) return;
  const auto now = Clock::now();
  if (on) {
    degraded_since_ = now;
  } else {
    degraded_ns_ += std::chrono::duration_cast<std::chrono::nanoseconds>(
                        now - degraded_since_)
                        .count();
  }
  degraded_ = on;
}

bool ServeMetrics::degraded() const {
  util::MutexLock lk(clock_mu_);
  return degraded_;
}

void ServeMetrics::start() {
  util::MutexLock lk(clock_mu_);
  started_ = Clock::now();
  stopped_ns_ = -1;
}

void ServeMetrics::stop() {
  util::MutexLock lk(clock_mu_);
  stopped_ns_ = std::chrono::duration_cast<std::chrono::nanoseconds>(
                    Clock::now() - started_)
                    .count();
}

double ServeMetrics::uptime_seconds() const {
  util::MutexLock lk(clock_mu_);
  const auto up =
      stopped_ns_ >= 0
          ? std::chrono::nanoseconds(stopped_ns_)
          : std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                 started_);
  return std::chrono::duration<double>(up).count();
}

MetricsSnapshot ServeMetrics::snapshot() const {
  MetricsSnapshot s;
  // Striped-counter reads: a monitoring sum per counter — the snapshot is
  // consistent-enough by contract, not a linearizable cut.
  s.ingested = ingested_.read();
  s.records_in = records_in_.read();
  s.records_out = records_out_.read();
  s.quarantined = quarantined_.read();
  s.shed = shed_.read();
  s.retries = retries_.read();
  s.watchdog_trips = watchdog_trips_.read();
  s.predictions = predictions_.read();
  s.dedupe_hits = dedupe_hits_.read();
  s.out_of_order = out_of_order_.read();
  s.advisor_events = advisor_events_.read();
  s.advisor_dropped = advisor_dropped_.read();
  s.directives = directives_.read();
  s.directives_suppressed = directives_suppressed_.read();
  s.interval_updates = interval_updates_.read();
  s.predicted_hits = predicted_hits_.read();
  s.predicted_misses = predicted_misses_.read();
  s.miner_events = miner_events_.read();
  s.model_publishes = model_publishes_.read();
  s.model_swaps = model_swaps_.read();

  {
    util::MutexLock lk(clock_mu_);
    s.degraded = degraded_;
    auto ns = degraded_ns_;
    if (degraded_)
      ns += std::chrono::duration_cast<std::chrono::nanoseconds>(
                Clock::now() - degraded_since_)
                .count();
    s.degraded_seconds = static_cast<double>(ns) * 1e-9;
    s.model_age_seconds =
        model_published_
            ? std::chrono::duration<double>(Clock::now() - model_published_at_)
                  .count()
            : -1.0;
  }

  s.wall_seconds = uptime_seconds();
  s.records_per_sec =
      s.wall_seconds > 0.0
          ? static_cast<double>(s.records_out) / s.wall_seconds
          : 0.0;

  const auto il = ingest_lat_.snapshot();
  s.ingest_p50_us = il.quantile(0.50);
  s.ingest_p99_us = il.quantile(0.99);
  const auto pl = predict_lat_.snapshot();
  s.predict_p50_us = pl.quantile(0.50);
  s.predict_p99_us = pl.quantile(0.99);
  const auto qd = depth_.snapshot();
  s.queue_depth_p50 = qd.quantile(0.50);
  s.queue_depth_p99 = qd.quantile(0.99);
  return s;
}

std::string ServeMetrics::text_report() const {
  const MetricsSnapshot s = snapshot();
  char buf[2048];
  std::snprintf(
      buf, sizeof buf,
      "serve metrics (%.2f s uptime%s)\n"
      "  records    ingested %llu, in %llu, out %llu, out-of-order %llu\n"
      "  faults     quarantined %llu, shed %llu, retries %llu, "
      "watchdog trips %llu, degraded %.2f s\n"
      "  throughput %.0f records/s\n"
      "  alarms     %llu issued, %llu duplicates suppressed\n"
      "  ingest     p50 %.0f us, p99 %.0f us (enqueue -> processed)\n"
      "  prediction p50 %.0f us, p99 %.0f us (enqueue -> alarm)\n"
      "  queue depth p50 %.0f, p99 %.0f\n"
      "  advisor    events %llu (dropped %llu), directives %llu "
      "(suppressed %llu), interval updates %llu, hits %llu, misses %llu\n"
      "  mining     events %llu, publishes %llu, swaps %llu, "
      "model age %.2f s\n",
      s.wall_seconds, s.degraded ? ", DEGRADED" : "",
      static_cast<unsigned long long>(s.ingested),
      static_cast<unsigned long long>(s.records_in),
      static_cast<unsigned long long>(s.records_out),
      static_cast<unsigned long long>(s.out_of_order),
      static_cast<unsigned long long>(s.quarantined),
      static_cast<unsigned long long>(s.shed),
      static_cast<unsigned long long>(s.retries),
      static_cast<unsigned long long>(s.watchdog_trips), s.degraded_seconds,
      s.records_per_sec, static_cast<unsigned long long>(s.predictions),
      static_cast<unsigned long long>(s.dedupe_hits), s.ingest_p50_us,
      s.ingest_p99_us, s.predict_p50_us, s.predict_p99_us, s.queue_depth_p50,
      s.queue_depth_p99, static_cast<unsigned long long>(s.advisor_events),
      static_cast<unsigned long long>(s.advisor_dropped),
      static_cast<unsigned long long>(s.directives),
      static_cast<unsigned long long>(s.directives_suppressed),
      static_cast<unsigned long long>(s.interval_updates),
      static_cast<unsigned long long>(s.predicted_hits),
      static_cast<unsigned long long>(s.predicted_misses),
      static_cast<unsigned long long>(s.miner_events),
      static_cast<unsigned long long>(s.model_publishes),
      static_cast<unsigned long long>(s.model_swaps), s.model_age_seconds);
  return buf;
}

}  // namespace elsa::serve
