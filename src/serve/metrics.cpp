#include "serve/metrics.hpp"

#include <algorithm>
#include <cstdio>

namespace elsa::serve {

namespace {

/// 1-2-5 log-scale edges from 1 us to 50 s, plus a 0 floor bin.
std::vector<double> latency_edges_us() {
  std::vector<double> e{0.0};
  for (double decade = 1.0; decade <= 1e7; decade *= 10.0)
    for (double m : {1.0, 2.0, 5.0}) e.push_back(decade * m);
  return e;
}

/// Power-of-two depth edges, 0..64k.
std::vector<double> depth_edges() {
  std::vector<double> e{0.0};
  for (double d = 1.0; d <= 65536.0; d *= 2.0) e.push_back(d);
  return e;
}

double us_since(ServeMetrics::Clock::time_point t0) {
  const auto dt = ServeMetrics::Clock::now() - t0;
  return std::chrono::duration<double, std::micro>(dt).count();
}

}  // namespace

AtomicHistogram::AtomicHistogram(std::vector<double> edges)
    : edges_(std::move(edges)),
      counts_(new std::atomic<std::uint64_t>[edges_.size()]) {
  for (std::size_t i = 0; i < edges_.size(); ++i) counts_[i] = 0;
}

void AtomicHistogram::add(double x) {
  if (x < edges_.front()) x = edges_.front();
  const auto it = std::upper_bound(edges_.begin(), edges_.end(), x);
  const std::size_t bin = static_cast<std::size_t>(it - edges_.begin()) - 1;
  counts_[bin].fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t AtomicHistogram::total() const {
  std::uint64_t t = 0;
  for (std::size_t i = 0; i < edges_.size(); ++i)
    t += counts_[i].load(std::memory_order_relaxed);
  return t;
}

util::EdgeHistogram AtomicHistogram::snapshot() const {
  util::EdgeHistogram h(edges_);
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    const std::uint64_t c = counts_[i].load(std::memory_order_relaxed);
    if (c > 0) h.add(edges_[i], c);
  }
  return h;
}

ServeMetrics::ServeMetrics()
    : ingest_lat_(latency_edges_us()),
      predict_lat_(latency_edges_us()),
      depth_(depth_edges()),
      started_(Clock::now()) {}

void ServeMetrics::on_ingest(std::size_t queue_depth) {
  records_in_.fetch_add(1, std::memory_order_relaxed);
  depth_.add(static_cast<double>(queue_depth));
}

void ServeMetrics::on_drop(std::uint64_t records) {
  dropped_.fetch_add(records, std::memory_order_relaxed);
}

void ServeMetrics::on_processed(Clock::time_point enqueued_at) {
  records_out_.fetch_add(1, std::memory_order_relaxed);
  ingest_lat_.add(us_since(enqueued_at));
}

void ServeMetrics::on_prediction(Clock::time_point enqueued_at) {
  predictions_.fetch_add(1, std::memory_order_relaxed);
  predict_lat_.add(us_since(enqueued_at));
}

void ServeMetrics::on_dedupe(std::uint64_t hits) {
  dedupe_hits_.fetch_add(hits, std::memory_order_relaxed);
}

void ServeMetrics::on_out_of_order(std::uint64_t records) {
  out_of_order_.fetch_add(records, std::memory_order_relaxed);
}

void ServeMetrics::start() {
  started_ = Clock::now();
  stopped_ns_.store(-1, std::memory_order_relaxed);
}

void ServeMetrics::stop() {
  const auto up = Clock::now() - started_;
  stopped_ns_.store(
      std::chrono::duration_cast<std::chrono::nanoseconds>(up).count(),
      std::memory_order_relaxed);
}

MetricsSnapshot ServeMetrics::snapshot() const {
  MetricsSnapshot s;
  s.records_in = records_in_.load(std::memory_order_relaxed);
  s.records_out = records_out_.load(std::memory_order_relaxed);
  s.dropped = dropped_.load(std::memory_order_relaxed);
  s.predictions = predictions_.load(std::memory_order_relaxed);
  s.dedupe_hits = dedupe_hits_.load(std::memory_order_relaxed);
  s.out_of_order = out_of_order_.load(std::memory_order_relaxed);

  const std::int64_t frozen = stopped_ns_.load(std::memory_order_relaxed);
  const auto up = frozen >= 0 ? std::chrono::nanoseconds(frozen)
                              : std::chrono::duration_cast<
                                    std::chrono::nanoseconds>(Clock::now() -
                                                              started_);
  s.wall_seconds = std::chrono::duration<double>(up).count();
  s.records_per_sec =
      s.wall_seconds > 0.0
          ? static_cast<double>(s.records_out) / s.wall_seconds
          : 0.0;

  const auto il = ingest_lat_.snapshot();
  s.ingest_p50_us = il.quantile(0.50);
  s.ingest_p99_us = il.quantile(0.99);
  const auto pl = predict_lat_.snapshot();
  s.predict_p50_us = pl.quantile(0.50);
  s.predict_p99_us = pl.quantile(0.99);
  const auto qd = depth_.snapshot();
  s.queue_depth_p50 = qd.quantile(0.50);
  s.queue_depth_p99 = qd.quantile(0.99);
  return s;
}

std::string ServeMetrics::text_report() const {
  const MetricsSnapshot s = snapshot();
  char buf[1024];
  std::snprintf(
      buf, sizeof buf,
      "serve metrics (%.2f s uptime)\n"
      "  records    in %llu, out %llu, dropped %llu, out-of-order %llu\n"
      "  throughput %.0f records/s\n"
      "  alarms     %llu issued, %llu duplicates suppressed\n"
      "  ingest     p50 %.0f us, p99 %.0f us (enqueue -> processed)\n"
      "  prediction p50 %.0f us, p99 %.0f us (enqueue -> alarm)\n"
      "  queue depth p50 %.0f, p99 %.0f\n",
      s.wall_seconds, static_cast<unsigned long long>(s.records_in),
      static_cast<unsigned long long>(s.records_out),
      static_cast<unsigned long long>(s.dropped),
      static_cast<unsigned long long>(s.out_of_order), s.records_per_sec,
      static_cast<unsigned long long>(s.predictions),
      static_cast<unsigned long long>(s.dedupe_hits), s.ingest_p50_us,
      s.ingest_p99_us, s.predict_p50_us, s.predict_p99_us, s.queue_depth_p50,
      s.queue_depth_p99);
  return buf;
}

}  // namespace elsa::serve
