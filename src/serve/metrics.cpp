#include "serve/metrics.hpp"

#include <algorithm>
#include <cstdio>

namespace elsa::serve {

namespace {

/// 1-2-5 log-scale edges from 1 us to 50 s, plus a 0 floor bin.
std::vector<double> latency_edges_us() {
  std::vector<double> e{0.0};
  for (double decade = 1.0; decade <= 1e7; decade *= 10.0)
    for (double m : {1.0, 2.0, 5.0}) e.push_back(decade * m);
  return e;
}

/// Power-of-two depth edges, 0..64k.
std::vector<double> depth_edges() {
  std::vector<double> e{0.0};
  for (double d = 1.0; d <= 65536.0; d *= 2.0) e.push_back(d);
  return e;
}

double us_since(ServeMetrics::Clock::time_point t0) {
  const auto dt = ServeMetrics::Clock::now() - t0;
  return std::chrono::duration<double, std::micro>(dt).count();
}

}  // namespace

AtomicHistogram::AtomicHistogram(std::vector<double> edges)
    : edges_(std::move(edges)),
      counts_(new std::atomic<std::uint64_t>[edges_.size()]) {
  for (std::size_t i = 0; i < edges_.size(); ++i) counts_[i] = 0;
}

void AtomicHistogram::add(double x) {
  if (x < edges_.front()) x = edges_.front();
  const auto it = std::upper_bound(edges_.begin(), edges_.end(), x);
  const std::size_t bin = static_cast<std::size_t>(it - edges_.begin()) - 1;
  // relaxed: bins are independent counters; no reader orders other memory
  // against a bin value, and snapshot() tolerates in-flight adds.
  counts_[bin].fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t AtomicHistogram::total() const {
  std::uint64_t t = 0;
  for (std::size_t i = 0; i < edges_.size(); ++i)
    // relaxed: monitoring sum; a concurrent add may or may not be counted,
    // which is the documented contract.
    t += counts_[i].load(std::memory_order_relaxed);
  return t;
}

util::EdgeHistogram AtomicHistogram::snapshot() const {
  util::EdgeHistogram h(edges_);
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    // relaxed: same contract as total() — each bin is internally exact,
    // the cross-bin cut need not be simultaneous.
    const std::uint64_t c = counts_[i].load(std::memory_order_relaxed);
    if (c > 0) h.add(edges_[i], c);
  }
  return h;
}

ServeMetrics::ServeMetrics()
    : ingest_lat_(latency_edges_us()),
      predict_lat_(latency_edges_us()),
      depth_(depth_edges()),
      started_(Clock::now()) {}

// relaxed (all on_* hooks): each counter is a standalone monotonic
// statistic incremented on the hot path; nothing reads a counter to order
// other memory, and snapshot() documents a consistent-enough (not
// linearizable) view. Sequential consistency here would buy nothing and
// cost a fence per record.
void ServeMetrics::on_submit(std::uint64_t records) {
  // relaxed: see block comment above.
  ingested_.fetch_add(records, std::memory_order_relaxed);
}

void ServeMetrics::on_ingest(std::size_t queue_depth) {
  // relaxed: see block comment above.
  records_in_.fetch_add(1, std::memory_order_relaxed);
  depth_.add(static_cast<double>(queue_depth));
}

void ServeMetrics::on_quarantine(std::uint64_t records) {
  // relaxed: see block comment above.
  quarantined_.fetch_add(records, std::memory_order_relaxed);
}

void ServeMetrics::on_shed(std::uint64_t records) {
  // relaxed: see block comment above.
  shed_.fetch_add(records, std::memory_order_relaxed);
}

void ServeMetrics::on_retry(std::uint64_t records) {
  // relaxed: see block comment above.
  retries_.fetch_add(records, std::memory_order_relaxed);
}

void ServeMetrics::on_watchdog_trip() {
  // relaxed: see block comment above.
  watchdog_trips_.fetch_add(1, std::memory_order_relaxed);
}

void ServeMetrics::on_processed(Clock::time_point enqueued_at) {
  // relaxed: see block comment above.
  records_out_.fetch_add(1, std::memory_order_relaxed);
  ingest_lat_.add(us_since(enqueued_at));
}

void ServeMetrics::on_prediction(Clock::time_point enqueued_at) {
  // relaxed: see block comment above.
  predictions_.fetch_add(1, std::memory_order_relaxed);
  predict_lat_.add(us_since(enqueued_at));
}

void ServeMetrics::on_dedupe(std::uint64_t hits) {
  // relaxed: see block comment above.
  dedupe_hits_.fetch_add(hits, std::memory_order_relaxed);
}

void ServeMetrics::on_out_of_order(std::uint64_t records) {
  // relaxed: see block comment above.
  out_of_order_.fetch_add(records, std::memory_order_relaxed);
}

void ServeMetrics::on_advisor_event() {
  // relaxed: see block comment above.
  advisor_events_.fetch_add(1, std::memory_order_relaxed);
}

void ServeMetrics::on_advisor_drop() {
  // relaxed: see block comment above.
  advisor_dropped_.fetch_add(1, std::memory_order_relaxed);
}

void ServeMetrics::on_directive() {
  // relaxed: see block comment above.
  directives_.fetch_add(1, std::memory_order_relaxed);
}

void ServeMetrics::on_directive_suppressed() {
  // relaxed: see block comment above.
  directives_suppressed_.fetch_add(1, std::memory_order_relaxed);
}

void ServeMetrics::on_interval_update() {
  // relaxed: see block comment above.
  interval_updates_.fetch_add(1, std::memory_order_relaxed);
}

void ServeMetrics::on_predicted_hit(std::uint64_t n) {
  // relaxed: see block comment above.
  predicted_hits_.fetch_add(n, std::memory_order_relaxed);
}

void ServeMetrics::on_predicted_miss(std::uint64_t n) {
  // relaxed: see block comment above.
  predicted_misses_.fetch_add(n, std::memory_order_relaxed);
}

void ServeMetrics::set_degraded(bool on) {
  util::MutexLock lk(clock_mu_);
  if (on == degraded_) return;
  const auto now = Clock::now();
  if (on) {
    degraded_since_ = now;
  } else {
    degraded_ns_ += std::chrono::duration_cast<std::chrono::nanoseconds>(
                        now - degraded_since_)
                        .count();
  }
  degraded_ = on;
}

bool ServeMetrics::degraded() const {
  util::MutexLock lk(clock_mu_);
  return degraded_;
}

void ServeMetrics::start() {
  util::MutexLock lk(clock_mu_);
  started_ = Clock::now();
  stopped_ns_ = -1;
}

void ServeMetrics::stop() {
  util::MutexLock lk(clock_mu_);
  stopped_ns_ = std::chrono::duration_cast<std::chrono::nanoseconds>(
                    Clock::now() - started_)
                    .count();
}

double ServeMetrics::uptime_seconds() const {
  util::MutexLock lk(clock_mu_);
  const auto up =
      stopped_ns_ >= 0
          ? std::chrono::nanoseconds(stopped_ns_)
          : std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                 started_);
  return std::chrono::duration<double>(up).count();
}

MetricsSnapshot ServeMetrics::snapshot() const {
  MetricsSnapshot s;
  // relaxed: monitoring reads of independent counters — the snapshot is
  // consistent-enough by contract, not a linearizable cut (all six loads).
  s.ingested = ingested_.load(std::memory_order_relaxed);
  s.records_in = records_in_.load(std::memory_order_relaxed);
  // relaxed: as above.
  s.records_out = records_out_.load(std::memory_order_relaxed);
  // relaxed: as above.
  s.quarantined = quarantined_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.retries = retries_.load(std::memory_order_relaxed);
  // relaxed: as above.
  s.watchdog_trips = watchdog_trips_.load(std::memory_order_relaxed);
  s.predictions = predictions_.load(std::memory_order_relaxed);
  s.dedupe_hits = dedupe_hits_.load(std::memory_order_relaxed);
  // relaxed: as above.
  s.out_of_order = out_of_order_.load(std::memory_order_relaxed);
  // relaxed: as above (advisor counters are independent statistics too).
  s.advisor_events = advisor_events_.load(std::memory_order_relaxed);
  s.advisor_dropped = advisor_dropped_.load(std::memory_order_relaxed);
  s.directives = directives_.load(std::memory_order_relaxed);
  // relaxed: as above.
  s.directives_suppressed =
      directives_suppressed_.load(std::memory_order_relaxed);
  s.interval_updates = interval_updates_.load(std::memory_order_relaxed);
  // relaxed: as above.
  s.predicted_hits = predicted_hits_.load(std::memory_order_relaxed);
  s.predicted_misses = predicted_misses_.load(std::memory_order_relaxed);

  {
    util::MutexLock lk(clock_mu_);
    s.degraded = degraded_;
    auto ns = degraded_ns_;
    if (degraded_)
      ns += std::chrono::duration_cast<std::chrono::nanoseconds>(
                Clock::now() - degraded_since_)
                .count();
    s.degraded_seconds = static_cast<double>(ns) * 1e-9;
  }

  s.wall_seconds = uptime_seconds();
  s.records_per_sec =
      s.wall_seconds > 0.0
          ? static_cast<double>(s.records_out) / s.wall_seconds
          : 0.0;

  const auto il = ingest_lat_.snapshot();
  s.ingest_p50_us = il.quantile(0.50);
  s.ingest_p99_us = il.quantile(0.99);
  const auto pl = predict_lat_.snapshot();
  s.predict_p50_us = pl.quantile(0.50);
  s.predict_p99_us = pl.quantile(0.99);
  const auto qd = depth_.snapshot();
  s.queue_depth_p50 = qd.quantile(0.50);
  s.queue_depth_p99 = qd.quantile(0.99);
  return s;
}

std::string ServeMetrics::text_report() const {
  const MetricsSnapshot s = snapshot();
  char buf[2048];
  std::snprintf(
      buf, sizeof buf,
      "serve metrics (%.2f s uptime%s)\n"
      "  records    ingested %llu, in %llu, out %llu, out-of-order %llu\n"
      "  faults     quarantined %llu, shed %llu, retries %llu, "
      "watchdog trips %llu, degraded %.2f s\n"
      "  throughput %.0f records/s\n"
      "  alarms     %llu issued, %llu duplicates suppressed\n"
      "  ingest     p50 %.0f us, p99 %.0f us (enqueue -> processed)\n"
      "  prediction p50 %.0f us, p99 %.0f us (enqueue -> alarm)\n"
      "  queue depth p50 %.0f, p99 %.0f\n"
      "  advisor    events %llu (dropped %llu), directives %llu "
      "(suppressed %llu), interval updates %llu, hits %llu, misses %llu\n",
      s.wall_seconds, s.degraded ? ", DEGRADED" : "",
      static_cast<unsigned long long>(s.ingested),
      static_cast<unsigned long long>(s.records_in),
      static_cast<unsigned long long>(s.records_out),
      static_cast<unsigned long long>(s.out_of_order),
      static_cast<unsigned long long>(s.quarantined),
      static_cast<unsigned long long>(s.shed),
      static_cast<unsigned long long>(s.retries),
      static_cast<unsigned long long>(s.watchdog_trips), s.degraded_seconds,
      s.records_per_sec, static_cast<unsigned long long>(s.predictions),
      static_cast<unsigned long long>(s.dedupe_hits), s.ingest_p50_us,
      s.ingest_p99_us, s.predict_p50_us, s.predict_p99_us, s.queue_depth_p50,
      s.queue_depth_p99, static_cast<unsigned long long>(s.advisor_events),
      static_cast<unsigned long long>(s.advisor_dropped),
      static_cast<unsigned long long>(s.directives),
      static_cast<unsigned long long>(s.directives_suppressed),
      static_cast<unsigned long long>(s.interval_updates),
      static_cast<unsigned long long>(s.predicted_hits),
      static_cast<unsigned long long>(s.predicted_misses));
  return buf;
}

}  // namespace elsa::serve
