// Observability for the serving layer. Every counter is a relaxed atomic —
// the hot path (worker threads, producer threads) never takes a lock for
// bookkeeping. Latency and queue-depth distributions are kept in lock-free
// fixed-edge bucket arrays and materialised into `util::EdgeHistogram`s
// only when a snapshot or report is requested, so the percentile machinery
// is shared with the rest of the experiment harness.
//
// The measured quantities follow the paper's framing (§VI.A): what matters
// for an online predictor is the *visible* delay between a symptom entering
// the system and the alarm leaving it. The offline engine simulates that
// delay with a calibrated cost model; the serving layer measures it for
// real: `ingest` is enqueue -> record fully processed, `prediction` is
// enqueue of the triggering record -> alarm issued.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/histogram.hpp"
#include "util/thread_annotations.hpp"

namespace elsa::serve {

/// Thread-safe histogram over fixed bin edges; add() is lock-free.
class AtomicHistogram {
 public:
  explicit AtomicHistogram(std::vector<double> edges);

  void add(double x);
  std::uint64_t total() const;

  /// Materialise the current counts into a regular EdgeHistogram (for
  /// labels, fractions and quantiles). Concurrent adds may or may not be
  /// included; the result is always internally consistent.
  util::EdgeHistogram snapshot() const;

 private:
  std::vector<double> edges_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;
};

/// One consistent-enough view of the service, cheap to take at any time.
struct MetricsSnapshot {
  std::uint64_t ingested = 0;     ///< submit attempts the service received
  std::uint64_t records_in = 0;   ///< accepted into the ingest queue
  std::uint64_t records_out = 0;  ///< fully processed by a shard engine
  std::uint64_t quarantined = 0;  ///< malformed records set aside, not crashed on
  std::uint64_t shed = 0;         ///< lost to overflow: door-shed, drop-oldest
                                  ///< evictions, shard-queue drops
  std::uint64_t retries = 0;        ///< producer re-submissions after a shed
  std::uint64_t watchdog_trips = 0; ///< shard deadline misses + worker restarts
  std::uint64_t predictions = 0;
  std::uint64_t dedupe_hits = 0;   ///< duplicate alarms suppressed
  std::uint64_t out_of_order = 0;  ///< records clamped onto an open bucket
  // Checkpoint-advisor accounting (src/advisor; zero when no advisor is
  // attached). `advisor_events` counts predictions consumed by the advisor;
  // conservation with `predictions` = advisor_events + advisor_dropped is
  // the advisor chaos invariant.
  std::uint64_t advisor_events = 0;     ///< predictions the advisor consumed
  std::uint64_t advisor_dropped = 0;    ///< lost to a full advisor ring
  std::uint64_t directives = 0;         ///< "checkpoint now" directives issued
  std::uint64_t directives_suppressed = 0;  ///< rate-limited / low-confidence
  std::uint64_t interval_updates = 0;   ///< per-partition interval recomputes
  std::uint64_t predicted_hits = 0;     ///< directives matched to a real fault
  std::uint64_t predicted_misses = 0;   ///< directives with no fault in window
  bool degraded = false;           ///< a shard is currently unhealthy
  double degraded_seconds = 0.0;   ///< cumulative time spent degraded
  double wall_seconds = 0.0;       ///< service uptime (start -> stop/now)
  double records_per_sec = 0.0;    ///< records_out / wall_seconds
  double ingest_p50_us = 0.0;      ///< enqueue -> processed latency
  double ingest_p99_us = 0.0;
  double predict_p50_us = 0.0;  ///< enqueue of trigger -> alarm issued
  double predict_p99_us = 0.0;
  double queue_depth_p50 = 0.0;  ///< ingest ring depth observed at enqueue
  double queue_depth_p99 = 0.0;

  /// Conservation of records, the chaos invariant: every submit attempt is
  /// accounted as processed, quarantined or shed. Meaningful after
  /// finish() has drained the pipeline; mid-flight records make it false.
  bool records_conserved() const {
    return ingested == records_out + quarantined + shed;
  }
};

class ServeMetrics {
 public:
  using Clock = std::chrono::steady_clock;

  ServeMetrics();

  // -- hot-path hooks ------------------------------------------------------
  void on_submit(std::uint64_t records = 1);  ///< every non-closed attempt
  void on_ingest(std::size_t queue_depth);
  void on_quarantine(std::uint64_t records = 1);
  void on_shed(std::uint64_t records = 1);
  void on_retry(std::uint64_t records = 1);
  void on_processed(Clock::time_point enqueued_at);
  void on_prediction(Clock::time_point enqueued_at);
  void on_dedupe(std::uint64_t hits);
  void on_out_of_order(std::uint64_t records);
  void on_watchdog_trip();

  // -- checkpoint-advisor hooks (src/advisor) ------------------------------
  void on_advisor_event();
  void on_advisor_drop();
  void on_directive();
  void on_directive_suppressed();
  void on_interval_update();
  void on_predicted_hit(std::uint64_t n = 1);
  void on_predicted_miss(std::uint64_t n = 1);

  /// Degraded-mode flag, driven by the watchdog: set(true) on the first
  /// unhealthy shard, set(false) once every shard is making progress
  /// again. Cumulative degraded time is tracked for degraded_seconds.
  /// Idempotent in both directions.
  void set_degraded(bool on) ELSA_EXCLUDES(clock_mu_);
  bool degraded() const ELSA_EXCLUDES(clock_mu_);

  // -- lifecycle -----------------------------------------------------------
  /// Restart the uptime clock (the constructor already starts it).
  void start() ELSA_EXCLUDES(clock_mu_);
  /// Freeze the uptime clock; later snapshots report the frozen span.
  void stop() ELSA_EXCLUDES(clock_mu_);

  // -- reporting -----------------------------------------------------------
  MetricsSnapshot snapshot() const ELSA_EXCLUDES(clock_mu_);
  /// Multi-line human-readable report (counters + latency percentiles).
  std::string text_report() const;
  util::EdgeHistogram ingest_latency_us() const { return ingest_lat_.snapshot(); }
  util::EdgeHistogram prediction_latency_us() const {
    return predict_lat_.snapshot();
  }
  util::EdgeHistogram queue_depth() const { return depth_.snapshot(); }

 private:
  /// Frozen (stop()) or live uptime, in seconds; takes clock_mu_.
  double uptime_seconds() const ELSA_EXCLUDES(clock_mu_);

  // Hot-path state: independent monotonic counters. All accesses are
  // relaxed — each counter is a standalone statistic, nothing orders
  // against it, and snapshot() is documented as consistent-enough rather
  // than a linearizable cut (see the relaxed: comments in metrics.cpp).
  std::atomic<std::uint64_t> ingested_{0};
  std::atomic<std::uint64_t> records_in_{0};
  std::atomic<std::uint64_t> records_out_{0};
  std::atomic<std::uint64_t> quarantined_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> watchdog_trips_{0};
  std::atomic<std::uint64_t> predictions_{0};
  std::atomic<std::uint64_t> dedupe_hits_{0};
  std::atomic<std::uint64_t> out_of_order_{0};
  std::atomic<std::uint64_t> advisor_events_{0};
  std::atomic<std::uint64_t> advisor_dropped_{0};
  std::atomic<std::uint64_t> directives_{0};
  std::atomic<std::uint64_t> directives_suppressed_{0};
  std::atomic<std::uint64_t> interval_updates_{0};
  std::atomic<std::uint64_t> predicted_hits_{0};
  std::atomic<std::uint64_t> predicted_misses_{0};
  AtomicHistogram ingest_lat_;   ///< microseconds
  AtomicHistogram predict_lat_;  ///< microseconds
  AtomicHistogram depth_;        ///< ingest ring depth

  // Cold lifecycle state: start()/stop() may race with snapshot() callers
  // on other threads, and a time_point store is not atomic — so the clock
  // pair lives under a (never-contended-in-the-hot-path) mutex. Before PR 3
  // `started_` was a bare time_point: start() concurrent with snapshot()
  // was a genuine data race, found by the annotation audit.
  // Rank kMetrics: metrics hooks are called from every layer (watchdog,
  // workers, producers), so this lock must stay near the bottom of the
  // hierarchy and its critical sections never call out.
  mutable util::Mutex clock_mu_{"serve::ServeMetrics::clock_mu_",
                                util::lockrank::kMetrics};
  Clock::time_point started_ ELSA_GUARDED_BY(clock_mu_);
  std::int64_t stopped_ns_ ELSA_GUARDED_BY(clock_mu_) = -1;  ///< uptime at stop(), ns; -1 = running
  bool degraded_ ELSA_GUARDED_BY(clock_mu_) = false;
  Clock::time_point degraded_since_ ELSA_GUARDED_BY(clock_mu_);
  std::int64_t degraded_ns_ ELSA_GUARDED_BY(clock_mu_) = 0;  ///< closed degraded spans
};

}  // namespace elsa::serve
