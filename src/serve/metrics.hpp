// Observability for the serving layer. Every counter and histogram bin is
// *striped*: writers land on one of kMetricStripes cache-line-sized slots
// chosen per thread, and the slots are summed only when a snapshot or
// report is requested. The hot path (worker threads, producer threads)
// therefore never takes a lock for bookkeeping *and* never bounces a shared
// counter cache line between shards — with one shared atomic per counter,
// the coherence traffic of N producers incrementing `ingested` on every
// record was itself a serialization point, felt exactly like the ingest
// mutex the sharded refactor removed. Latency and queue-depth distributions
// are materialised into `util::EdgeHistogram`s at scrape time, so the
// percentile machinery is shared with the rest of the experiment harness.
//
// The measured quantities follow the paper's framing (§VI.A): what matters
// for an online predictor is the *visible* delay between a symptom entering
// the system and the alarm leaving it. The offline engine simulates that
// delay with a calibrated cost model; the serving layer measures it for
// real: `ingest` is enqueue -> record fully processed, `prediction` is
// enqueue of the triggering record -> alarm issued.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/histogram.hpp"
#include "util/interleave.hpp"
#include "util/thread_annotations.hpp"

namespace elsa::serve {

/// Stripe count for all serve-side metric state. Eight covers the 8-shard
/// scaling target (one worker + one producer per shard rarely collide on a
/// stripe) without making scrape-time summation or footprint noticeable.
inline constexpr std::size_t kMetricStripes = 8;

/// The calling thread's metric stripe: assigned once per thread,
/// round-robin over threads in creation order, so any fixed pool spreads
/// evenly across stripes. Two threads *may* share a stripe — that costs
/// contention, never correctness.
inline std::size_t metric_stripe() {
  // elsa-atomic: monotonic-relaxed — thread-creation ticket dispenser.
  static std::atomic<std::size_t> next{0};
  // relaxed: the ticket only needs uniqueness-per-increment, not ordering
  // with any other memory.
  thread_local const std::size_t id =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricStripes;
  return id;
}

/// Thread-safe monotonic counter, striped across cache lines: add() touches
/// only the caller's stripe, read() sums all of them (monitoring contract —
/// a concurrent add may or may not be included).
class StripedCounter {
 public:
  // elsa-realtime: one relaxed fetch_add on the caller's own stripe.
  void add(std::uint64_t n = 1) {
    util::sched_point();
    // relaxed: standalone monotonic statistic; no reader orders other
    // memory against it, and scrapes tolerate in-flight adds.
    cells_[metric_stripe()].v.fetch_add(n, std::memory_order_relaxed);
  }

  std::uint64_t read() const {
    std::uint64_t t = 0;
    for (const Cell& c : cells_) {
      util::sched_point();
      // relaxed: monitoring sum; same contract as add().
      t += c.v.load(std::memory_order_relaxed);
    }
    return t;
  }

 private:
  /// One full cache line per stripe so writers never false-share.
  struct alignas(64) Cell {
    // elsa-atomic: striped-relaxed-counter — per-stripe shard of one
    // monotonic statistic; only ever summed, never ordered against.
    std::atomic<std::uint64_t> v{0};
  };
  Cell cells_[kMetricStripes];
};

/// Thread-safe histogram over fixed bin edges; add() is lock-free and
/// striped — each thread increments bins in its own stripe's row, and the
/// rows are summed only at snapshot time.
class AtomicHistogram {
 public:
  explicit AtomicHistogram(std::vector<double> edges);

  void add(double x);
  std::uint64_t total() const;

  /// Materialise the current counts into a regular EdgeHistogram (for
  /// labels, fractions and quantiles). Concurrent adds may or may not be
  /// included; the result is always internally consistent.
  util::EdgeHistogram snapshot() const;

 private:
  /// Sum of one bin across all stripes.
  std::uint64_t bin_total(std::size_t bin) const;

  std::vector<double> edges_;
  std::size_t stride_ = 0;  ///< bins per stripe row, padded to 8 (one line)
  // elsa-atomic: striped-relaxed-counter — per-stripe histogram bins,
  // summed at snapshot time only.
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;  ///< stripes × stride
};

/// One consistent-enough view of the service, cheap to take at any time.
struct MetricsSnapshot {
  std::uint64_t ingested = 0;     ///< submit attempts the service received
  std::uint64_t records_in = 0;   ///< accepted into a shard's ingest ring
  std::uint64_t records_out = 0;  ///< fully processed by a shard engine
  std::uint64_t quarantined = 0;  ///< malformed records set aside, not crashed on
  std::uint64_t shed = 0;         ///< lost to overflow: door-shed, drop-oldest
                                  ///< evictions, shard-ring drops
  std::uint64_t retries = 0;        ///< producer re-submissions after a shed
  std::uint64_t watchdog_trips = 0; ///< shard deadline misses + worker restarts
  std::uint64_t predictions = 0;
  std::uint64_t dedupe_hits = 0;   ///< duplicate alarms suppressed
  std::uint64_t out_of_order = 0;  ///< records clamped onto an open bucket
  // Checkpoint-advisor accounting (src/advisor; zero when no advisor is
  // attached). `advisor_events` counts predictions consumed by the advisor;
  // conservation with `predictions` = advisor_events + advisor_dropped is
  // the advisor chaos invariant.
  std::uint64_t advisor_events = 0;     ///< predictions the advisor consumed
  std::uint64_t advisor_dropped = 0;    ///< lost to a full advisor ring
  std::uint64_t directives = 0;         ///< "checkpoint now" directives issued
  std::uint64_t directives_suppressed = 0;  ///< rate-limited / low-confidence
  std::uint64_t interval_updates = 0;   ///< per-partition interval recomputes
  std::uint64_t predicted_hits = 0;     ///< directives matched to a real fault
  std::uint64_t predicted_misses = 0;   ///< directives with no fault in window
  // Incremental-mining accounting (src/mining; zero when no miner is
  // attached).
  std::uint64_t miner_events = 0;   ///< classified events the miner folded
  std::uint64_t model_publishes = 0;  ///< models the miner pushed to the hub
  std::uint64_t model_swaps = 0;    ///< per-shard engine hot-swaps performed
  double model_age_seconds = -1.0;  ///< since last publish; -1 = never
  bool degraded = false;           ///< a shard is currently unhealthy
  double degraded_seconds = 0.0;   ///< cumulative time spent degraded
  double wall_seconds = 0.0;       ///< service uptime (start -> stop/now)
  double records_per_sec = 0.0;    ///< records_out / wall_seconds
  double ingest_p50_us = 0.0;      ///< enqueue -> processed latency
  double ingest_p99_us = 0.0;
  double predict_p50_us = 0.0;  ///< enqueue of trigger -> alarm issued
  double predict_p99_us = 0.0;
  double queue_depth_p50 = 0.0;  ///< shard ring depth observed at enqueue
  double queue_depth_p99 = 0.0;

  /// Conservation of records, the chaos invariant: every submit attempt is
  /// accounted as processed, quarantined or shed. Meaningful after
  /// finish() has drained the pipeline; mid-flight records make it false.
  bool records_conserved() const {
    return ingested == records_out + quarantined + shed;
  }
};

class ServeMetrics {
 public:
  using Clock = std::chrono::steady_clock;

  ServeMetrics();

  // -- hot-path hooks ------------------------------------------------------
  void on_submit(std::uint64_t records = 1);  ///< every non-closed attempt
  void on_ingest(std::size_t queue_depth);
  void on_quarantine(std::uint64_t records = 1);
  void on_shed(std::uint64_t records = 1);
  void on_retry(std::uint64_t records = 1);
  void on_processed(Clock::time_point enqueued_at);
  void on_prediction(Clock::time_point enqueued_at);
  void on_dedupe(std::uint64_t hits);
  void on_out_of_order(std::uint64_t records);
  void on_watchdog_trip();

  // -- checkpoint-advisor hooks (src/advisor) ------------------------------
  void on_advisor_event();
  void on_advisor_drop();
  void on_directive();
  void on_directive_suppressed();
  void on_interval_update();
  void on_predicted_hit(std::uint64_t n = 1);
  void on_predicted_miss(std::uint64_t n = 1);

  // -- incremental-miner hooks (src/mining) --------------------------------
  /// One classified event folded into the miner's correlation state.
  void on_miner_event(std::uint64_t n = 1);
  /// The miner published a fresh model into the hub (restarts the model-age
  /// clock; takes clock_mu_, so call it from the publish path only — it is
  /// per-model, not per-record).
  void on_model_publish() ELSA_EXCLUDES(clock_mu_);
  /// A shard engine hot-swapped onto a newer published model.
  void on_model_swap();

  /// Degraded-mode flag, driven by the watchdog: set(true) on the first
  /// unhealthy shard, set(false) once every shard is making progress
  /// again. Cumulative degraded time is tracked for degraded_seconds.
  /// Idempotent in both directions.
  void set_degraded(bool on) ELSA_EXCLUDES(clock_mu_);
  bool degraded() const ELSA_EXCLUDES(clock_mu_);

  // -- lifecycle -----------------------------------------------------------
  /// Restart the uptime clock (the constructor already starts it).
  void start() ELSA_EXCLUDES(clock_mu_);
  /// Freeze the uptime clock; later snapshots report the frozen span.
  void stop() ELSA_EXCLUDES(clock_mu_);

  // -- reporting -----------------------------------------------------------
  MetricsSnapshot snapshot() const ELSA_EXCLUDES(clock_mu_);
  /// Multi-line human-readable report (counters + latency percentiles).
  std::string text_report() const;
  util::EdgeHistogram ingest_latency_us() const { return ingest_lat_.snapshot(); }
  util::EdgeHistogram prediction_latency_us() const {
    return predict_lat_.snapshot();
  }
  util::EdgeHistogram queue_depth() const { return depth_.snapshot(); }

 private:
  /// Frozen (stop()) or live uptime, in seconds; takes clock_mu_.
  double uptime_seconds() const ELSA_EXCLUDES(clock_mu_);

  // Hot-path state: independent monotonic counters, each striped across
  // cache lines (see StripedCounter) so concurrent producers/workers never
  // contend. snapshot() is consistent-enough by contract, not a
  // linearizable cut.
  StripedCounter ingested_;
  StripedCounter records_in_;
  StripedCounter records_out_;
  StripedCounter quarantined_;
  StripedCounter shed_;
  StripedCounter retries_;
  StripedCounter watchdog_trips_;
  StripedCounter predictions_;
  StripedCounter dedupe_hits_;
  StripedCounter out_of_order_;
  StripedCounter advisor_events_;
  StripedCounter advisor_dropped_;
  StripedCounter directives_;
  StripedCounter directives_suppressed_;
  StripedCounter interval_updates_;
  StripedCounter predicted_hits_;
  StripedCounter predicted_misses_;
  StripedCounter miner_events_;
  StripedCounter model_publishes_;
  StripedCounter model_swaps_;
  AtomicHistogram ingest_lat_;   ///< microseconds
  AtomicHistogram predict_lat_;  ///< microseconds
  AtomicHistogram depth_;        ///< shard ring depth

  // Cold lifecycle state: start()/stop() may race with snapshot() callers
  // on other threads, and a time_point store is not atomic — so the clock
  // pair lives under a mutex. The record path never touches it: only the
  // watchdog (set_degraded), finish() (stop) and scrapers (snapshot) do.
  // Before PR 3 `started_` was a bare time_point: start() concurrent with
  // snapshot() was a genuine data race, found by the annotation audit.
  // Rank kMetrics: metrics hooks are called from every layer (watchdog,
  // workers, producers), so this lock must stay near the bottom of the
  // hierarchy and its critical sections never call out.
  mutable util::Mutex clock_mu_{"serve::ServeMetrics::clock_mu_",
                                util::lockrank::kMetrics};
  Clock::time_point started_ ELSA_GUARDED_BY(clock_mu_);
  std::int64_t stopped_ns_ ELSA_GUARDED_BY(clock_mu_) = -1;  ///< uptime at stop(), ns; -1 = running
  bool degraded_ ELSA_GUARDED_BY(clock_mu_) = false;
  Clock::time_point degraded_since_ ELSA_GUARDED_BY(clock_mu_);
  std::int64_t degraded_ns_ ELSA_GUARDED_BY(clock_mu_) = 0;  ///< closed degraded spans
  /// Instant of the last model publish; unset until the first one. A
  /// time_point store is not atomic, and publishes are per-model rare, so
  /// it rides under the same cold-state lock as the uptime clock.
  bool model_published_ ELSA_GUARDED_BY(clock_mu_) = false;
  Clock::time_point model_published_at_ ELSA_GUARDED_BY(clock_mu_);
};

}  // namespace elsa::serve
