// Topology-sharded online prediction (the serving layer's scale-out core).
//
// The record stream is partitioned by physical location: every midplane of
// the machine maps to one of N shards through the lock-free ShardRouter
// (stable hash of the midplane index; flat clusters shard by rack — their
// topology model collapses midplane onto rack), and each shard runs a
// private `elsa::core::OnlineEngine` on its own worker thread, fed through
// its own lock-free ingest ring (serve/spsc_ring.hpp). Producers route and
// push on their *own* threads — there is no dispatcher and no shared
// queue, so shards scale instead of serializing on one mutex (the
// pre-refactor inversion: 1-shard runs *beat* 4-shard runs). System-scoped
// records (node_id < 0) ride on shard 0.
//
// Why midplanes: the paper's location analysis (§V, Fig 7) shows fault
// syndromes overwhelmingly stay inside one midplane, so a midplane is the
// natural unit of stream locality — all the records a chain occurrence
// needs end up in the same shard, in their original relative order.
//
// Determinism guarantee (tested): with the simulated analysis-cost model
// zeroed (the serving default — real latency is *measured* by the metrics
// layer, not simulated), the merged prediction stream of an N-shard run is
// identical, field for field, to a single-engine run over the same
// (record, template) stream, for location-confined chains — chains whose
// learned scope is Midplane or tighter and whose signals' activity does not
// straddle shards. Two properties make this hold: per-shard processing is
// sequential FIFO (a midplane's records always land in the same shard's
// ring, in submission order), and the merge orders predictions by a total
// key (issue_time, chain_id, tmpl, trigger_time, predicted_time, nodes).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "elsa/online.hpp"
#include "faultinject/clock.hpp"
#include "faultinject/plan.hpp"
#include "serve/metrics.hpp"
#include "serve/model_handle.hpp"
#include "serve/router.hpp"
#include "serve/spsc_ring.hpp"
#include "serve/tap.hpp"
#include "util/thread_annotations.hpp"

namespace elsa::serve {

/// The RCU hub specialised to the rule model the shard engines read. The
/// incremental miner publishes into it; each shard worker pins it once per
/// batch (reader slot = shard index) and hot-swaps its engine when the
/// epoch moved.
using ModelHub = RcuHub<core::ModelState>;

struct ShardOptions {
  std::size_t shards = 4;
  /// Capacity of each shard's ingest ring, in records (rounded up to a
  /// power of two by the ring).
  std::size_t queue_capacity = 16384;
  /// Most records a worker drains from its ring in one batched pop; bounds
  /// how much one scheduling quantum of work a worker commits to before
  /// re-checking for close/faults.
  std::size_t batch = 64;
  /// On a full shard ring: true = shed the record (counted), false = block
  /// the producer (backpressure, the default).
  bool drop_on_overflow = false;
  /// Watchdog scan interval; 0 disables the watchdog thread entirely. The
  /// watchdog restarts dead shard workers, counts deadline trips, and
  /// drives the degraded flag in ServeMetrics. It only observes the data
  /// path, so enabling it cannot change the merged prediction stream.
  std::int64_t watchdog_interval_ms = 100;
  /// A shard with queued/in-flight work but no progress for this long is
  /// unhealthy: one watchdog trip per stall episode, degraded mode while
  /// any shard stays unhealthy.
  std::int64_t watchdog_deadline_ms = 2000;
  /// Injected serve-side faults (stall / worker kill); null = none. Must
  /// outlive the engine.
  const faultinject::FaultPlan* faults = nullptr;
  /// Time source for watchdog deadlines; null = a private real clock.
  /// Tests inject a manual FaultClock to trip deadlines deterministically;
  /// chaos runs inject a skewed one to prove trips survive non-monotone
  /// time. Must outlive the engine.
  const faultinject::FaultClock* clock = nullptr;
  /// Wait-free per-shard prediction observer (see serve/tap.hpp); null =
  /// none. The checkpoint advisor registers through this. Must outlive the
  /// engine.
  PredictionTap* tap = nullptr;
  /// Pin each shard worker to one CPU (round-robin over the cores the
  /// process may run on; best-effort, Linux only). Off by default: pinning
  /// helps on dedicated multi-core serving boxes and hurts on shared or
  /// oversubscribed ones.
  bool pin_workers = false;
  /// Live rule-model source (see serve/model_handle.hpp); null = engines
  /// serve the construction-time model forever. When set, every shard pins
  /// the hub once per batch and hot-swaps its engine on an epoch change —
  /// no lock anywhere on the predict path. Caps shards at
  /// ModelHub::kMaxReaders. Must outlive the engine.
  ModelHub* hub = nullptr;
  /// Classified-event observer on the consume side (see serve/tap.hpp);
  /// null = none. The incremental miner subscribes through this. Must
  /// outlive the engine.
  EventTap* event_tap = nullptr;
};

class ShardedEngine {
 public:
  /// One classified record on the wire between a producer and a shard
  /// worker. Messages never cross the ring — only (time, node, template)
  /// plus the enqueue instant for latency accounting.
  struct Item {
    std::int64_t time_ms = 0;
    std::int32_t node_id = -1;
    std::uint32_t tmpl = 0;
    std::uint8_t severity = 0;  ///< simlog::Severity ordinal (miner tap)
    ServeMetrics::Clock::time_point enq{};
  };

  /// Called from worker threads as alarms are issued (streaming view; the
  /// canonical merged list is available after finish()). May be invoked
  /// concurrently from different shards.
  using PredictionSink = std::function<void(const core::Prediction&)>;

  ShardedEngine(const topo::Topology& topo, std::vector<core::Chain> chains,
                std::vector<core::SignalProfile> profiles,
                core::EngineConfig engine_cfg, ShardOptions opt,
                ServeMetrics* metrics = nullptr,
                PredictionSink on_prediction = nullptr);
  ~ShardedEngine();

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  std::size_t shards() const { return shards_.size(); }

  /// The lock-free router (pure function; callable from any thread).
  const ShardRouter& router() const { return router_; }

  /// Shard a record routes to: stable hash of its midplane index.
  std::size_t shard_of(std::int32_t node_id) const {
    return router_.shard_of(node_id);
  }

  /// Direct access to one shard's ingest ring, for callers that need the
  /// full overflow-policy surface (push / offer / push_evict with depth
  /// and eviction feedback — PredictionService's submit path). Safe from
  /// any thread.
  SpscRing<Item>& ingest(std::size_t shard) { return shards_[shard]->queue; }

  /// Route one classified record and push it to its shard's ring —
  /// blocking backpressure, or shed-and-count under drop_on_overflow.
  /// Thread-safe: any number of producers may feed concurrently (per-shard
  /// FIFO then follows ring-insertion order). `enq` is the instant the
  /// record entered the service, for latency accounting.
  void feed(const simlog::LogRecord& rec, std::uint32_t tmpl,
            ServeMetrics::Clock::time_point enq);
  void feed(const simlog::LogRecord& rec, std::uint32_t tmpl);

  /// Historical batching hook, now a no-op: producers push straight into
  /// the shard rings, so there is no dispatcher-side partial batch left to
  /// hand over. Kept so trickle-feed call sites stay source-compatible.
  void flush();

  /// Drain, stop the workers, close trailing buckets through `t_end_ms`,
  /// and build the merged prediction list. Idempotent.
  void finish(std::int64_t t_end_ms);

  /// Deterministically merged predictions (valid after finish()).
  const std::vector<core::Prediction>& predictions() const { return merged_; }

  /// Aggregated engine statistics across shards (valid after finish();
  /// chains_used counts chains that fired in at least one shard).
  const core::EngineStats& stats() const { return stats_; }

  /// Records shed because a shard ring overflowed (drop_on_overflow mode).
  std::uint64_t dropped_records() const {
    // relaxed: standalone monotonic counter read for monitoring; nothing
    // orders against it.
    return dropped_records_.load(std::memory_order_relaxed);
  }

  /// Dead shard workers revived by the watchdog (kFailWorker recovery).
  std::uint64_t worker_restarts() const {
    // relaxed: standalone monotonic counter read for monitoring; nothing
    // orders against it.
    return restarts_.load(std::memory_order_relaxed);
  }

  /// Records processed so far, per shard (monitoring; the bench reports
  /// max/mean of this as router imbalance).
  std::vector<std::uint64_t> shard_processed() const;

  /// Current per-shard ingest ring depths (racy monitoring snapshot).
  std::vector<std::size_t> shard_depths() const;

  /// Per-shard engine access for tests and diagnostics (do not call while
  /// workers are running).
  const core::OnlineEngine& shard_engine(std::size_t i) const {
    return shards_[i]->engine;
  }

 private:
  using Batch = std::vector<Item>;

  // Thread roles (confinement, not locks — the lock-free ring is the only
  // cross-thread handoff):
  //   * `queue` is the producers->worker channel (slot-sequence protocol);
  //   * `engine`, `preds_streamed`, `dupes_reported`, `ooo_reported` are
  //     touched only by the shard's worker until finish() joins it, after
  //     which the finishing thread owns them (join = synchronization);
  //   * `carryover` is written by a dying worker and read by its restarted
  //     successor or the finishing thread — both sequenced by thread join;
  //   * `processed` / `busy` / `alive` are atomics the watchdog samples.
  struct Shard {
    Shard(std::size_t queue_capacity, core::OnlineEngine eng)
        : queue(queue_capacity), engine(std::move(eng)) {}
    SpscRing<Item> queue;
    core::OnlineEngine engine;
    /// Epoch of the hub model the engine currently serves (worker-confined,
    /// like `engine`; handed across incarnations by thread join). The
    /// sentinel forces a swap on the first pinned batch — epoch comparison,
    /// never pointer comparison: a freed model's address can be reused.
    std::uint64_t model_epoch = ~0ULL;
    std::thread worker;
    Batch carryover;                  ///< unprocessed tail of a dead worker's batch
    std::size_t preds_streamed = 0;   ///< predictions already sunk
    std::size_t dupes_reported = 0;   ///< dedupe hits already counted
    std::size_t ooo_reported = 0;     ///< out-of-order already counted
    // elsa-atomic: monotonic-relaxed — progress counter the watchdog
    // samples; staleness only delays a deadline trip by one poll.
    std::atomic<std::uint64_t> processed{0};  ///< records fed to the engine
    // elsa-atomic: monotonic-relaxed — advisory liveness hint, sampled
    // relaxed on every side by design; never used to publish data.
    std::atomic<bool> busy{false};    ///< worker holds an unfinished batch
    // elsa-atomic: release-acquire-flag — the release store at worker exit
    // publishes the shard's carryover to the watchdog's acquire load.
    std::atomic<bool> alive{false};   ///< worker thread is running
  };

  void worker_loop(Shard& s, std::size_t idx);
  /// Feed every item of `batch` to the shard engine; false when an injected
  /// kFailWorker fault killed the worker mid-batch (the unprocessed tail is
  /// parked in `carryover` for the restarted worker).
  bool process_batch(Shard& s, std::size_t idx, Batch& batch);
  /// Hot-swap the shard engine onto the pinned model if its epoch moved.
  /// Caller must hold the pin for the whole batch the engine serves.
  void maybe_swap_model(Shard& s, const ModelHub::Handle& h);
  void watchdog_loop();
  void stop_watchdog();
  /// Stream engine-side deltas (new predictions, dedupe, out-of-order) to
  /// the sink/tap/metrics. Runs on the shard's worker, or on the finishing
  /// thread once workers have joined — never two threads for one `idx` at
  /// once, which is what makes the tap's SPSC hand-off sound.
  void drain_shard(Shard& s, std::size_t idx,
                   ServeMetrics::Clock::time_point enq);

  topo::Topology topo_;
  ShardOptions opt_;
  ServeMetrics* metrics_ = nullptr;
  PredictionSink sink_;
  ShardRouter router_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<core::Prediction> merged_;
  core::EngineStats stats_;
  // elsa-atomic: monotonic-relaxed — conservation counter, summed only.
  std::atomic<std::uint64_t> dropped_records_{0};
  // elsa-atomic: monotonic-relaxed — watchdog restart counter, summed only.
  std::atomic<std::uint64_t> restarts_{0};
  bool finished_ = false;

  // Watchdog machinery. The watchdog is the only thread that joins and
  // respawns shard workers while the engine runs; finish() and the
  // destructor stop it before touching the workers themselves.
  faultinject::FaultClock own_clock_;  ///< real time, used when opt.clock null
  const faultinject::FaultClock* clock_ = nullptr;
  std::thread watchdog_;
  // Rank kEngine: held only for the stop-flag wait — the watchdog's shard
  // scan (ring depth reads, worker joins, metrics flips) runs unlocked, so
  // nothing is ever acquired under it; the rank documents that it sits
  // above the ring/metrics locks the scan touches.
  util::Mutex wd_mu_{"serve::ShardedEngine::wd_mu_", util::lockrank::kEngine};
  util::CondVar wd_cv_;
  bool wd_stop_ ELSA_GUARDED_BY(wd_mu_) = false;
};

}  // namespace elsa::serve
