#include "serve/replayer.hpp"

#include <chrono>
#include <thread>

#include "serve/service.hpp"

namespace elsa::serve {

std::size_t TraceReplayer::replay(
    const std::function<bool(const simlog::LogRecord&)>& sink) const {
  using Clock = std::chrono::steady_clock;
  const bool paced = opt_.speedup > 0.0;
  const Clock::time_point wall0 = Clock::now();
  std::int64_t trace0_ms = 0;
  bool first = true;
  std::size_t delivered = 0;

  for (const simlog::LogRecord& rec : trace_->records) {
    if (rec.time_ms < opt_.from_ms || rec.time_ms >= opt_.until_ms) continue;
    if (paced) {
      if (first) {
        trace0_ms = rec.time_ms;
        first = false;
      }
      const double elapsed_ms =
          static_cast<double>(rec.time_ms - trace0_ms) / opt_.speedup;
      const auto deadline =
          wall0 + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double, std::milli>(elapsed_ms));
      if (deadline > Clock::now()) std::this_thread::sleep_until(deadline);
    }
    if (!sink(rec)) break;
    ++delivered;
  }
  return delivered;
}

std::size_t TraceReplayer::replay_into(PredictionService& service) const {
  std::size_t accepted = 0;
  const bool shed = opt_.shed;
  replay([&](const simlog::LogRecord& rec) {
    if (shed) {
      if (service.try_submit(rec)) ++accepted;
      return true;  // shedding never aborts the feed
    }
    if (!service.submit(rec)) return false;  // service finished
    ++accepted;
    return true;
  });
  return accepted;
}

}  // namespace elsa::serve
