#include "serve/replayer.hpp"

#include <chrono>
#include <thread>

#include "faultinject/injector.hpp"
#include "serve/service.hpp"

namespace elsa::serve {

std::size_t TraceReplayer::replay(
    const std::function<bool(const simlog::LogRecord&)>& sink) const {
  using Clock = std::chrono::steady_clock;
  const bool paced = opt_.speedup > 0.0;
  const Clock::time_point wall0 = Clock::now();
  std::int64_t trace0_ms = 0;
  bool first = true;
  std::size_t delivered = 0;

  for (const simlog::LogRecord& rec : trace_->records) {
    if (rec.time_ms < opt_.from_ms || rec.time_ms >= opt_.until_ms) continue;
    if (paced) {
      if (first) {
        trace0_ms = rec.time_ms;
        first = false;
      }
      const double elapsed_ms =
          static_cast<double>(rec.time_ms - trace0_ms) / opt_.speedup;
      const auto deadline =
          wall0 + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double, std::milli>(elapsed_ms));
      if (deadline > Clock::now()) std::this_thread::sleep_until(deadline);
    }
    if (!sink(rec)) break;
    ++delivered;
  }
  return delivered;
}

std::size_t TraceReplayer::replay_into(
    PredictionService& service, faultinject::FaultInjector* inject) const {
  std::size_t accepted = 0;
  bool closed = false;

  // Deliver one record, honouring the shed/backpressure choice and the
  // bounded retry loop. Returns false only when the service has closed.
  const auto deliver = [&](const simlog::LogRecord& rec) {
    if (!opt_.shed) {
      const SubmitResult r = service.submit_result(rec, /*blocking=*/true);
      if (r == SubmitResult::kClosed) return false;
      if (r == SubmitResult::kQueued) ++accepted;
      return true;
    }
    SubmitResult r = service.submit_result(rec, /*blocking=*/false);
    std::int64_t backoff_ms = opt_.retry_backoff_ms;
    for (int attempt = 0; r == SubmitResult::kShed && attempt < opt_.max_retries;
         ++attempt) {
      service.note_retry();
      if (backoff_ms > 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      backoff_ms *= 2;
      r = service.submit_result(rec, /*blocking=*/false);
    }
    if (r == SubmitResult::kClosed) return false;
    if (r == SubmitResult::kQueued) ++accepted;
    return true;  // shed (even after retries) never aborts the feed
  };

  std::vector<simlog::LogRecord> scratch;
  replay([&](const simlog::LogRecord& rec) {
    if (!inject) return deliver(rec);
    scratch.clear();
    inject->ingest(rec, scratch);
    for (const simlog::LogRecord& r : scratch)
      if (!deliver(r)) {
        closed = true;
        return false;
      }
    return true;
  });

  if (inject && !closed) {
    // End of stream: release every record the reorder fault held back.
    scratch.clear();
    inject->flush(scratch);
    for (const simlog::LogRecord& r : scratch)
      if (!deliver(r)) break;
  }
  return accepted;
}

}  // namespace elsa::serve
