#include "serve/sharded_engine.hpp"

#include <algorithm>
#include <chrono>
#include <tuple>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace elsa::serve {

namespace {

/// Total order on predictions for the deterministic merge. Every field that
/// can differ participates, so the merged order is independent of shard
/// count and thread scheduling.
bool prediction_less(const core::Prediction& a, const core::Prediction& b) {
  const auto key = [](const core::Prediction& p) {
    return std::tie(p.issue_time_ms, p.chain_id, p.tmpl, p.trigger_time_ms,
                    p.predicted_time_ms);
  };
  if (key(a) != key(b)) return key(a) < key(b);
  return std::lexicographical_compare(a.nodes.begin(), a.nodes.end(),
                                      b.nodes.begin(), b.nodes.end());
}

/// Best-effort worker pinning: bind the calling thread to one core of its
/// currently-allowed set, round-robin by shard index. Silently a no-op off
/// Linux or when the affinity calls fail (containers often restrict them) —
/// pinning is a throughput hint, never a correctness dependency.
void pin_to_core(std::size_t shard_idx) {
#if defined(__linux__)
  cpu_set_t allowed;
  CPU_ZERO(&allowed);
  if (pthread_getaffinity_np(pthread_self(), sizeof(allowed), &allowed) != 0)
    return;
  const int n_allowed = CPU_COUNT(&allowed);
  if (n_allowed <= 1) return;
  // Pick the (shard_idx % n_allowed)-th set bit of the allowed mask.
  int want = static_cast<int>(shard_idx % static_cast<std::size_t>(n_allowed));
  for (int cpu = 0; cpu < CPU_SETSIZE; ++cpu) {
    if (!CPU_ISSET(cpu, &allowed)) continue;
    if (want-- == 0) {
      cpu_set_t one;
      CPU_ZERO(&one);
      CPU_SET(cpu, &one);
      (void)pthread_setaffinity_np(pthread_self(), sizeof(one), &one);
      return;
    }
  }
#else
  (void)shard_idx;
#endif
}

}  // namespace

ShardedEngine::ShardedEngine(const topo::Topology& topo,
                             std::vector<core::Chain> chains,
                             std::vector<core::SignalProfile> profiles,
                             core::EngineConfig engine_cfg, ShardOptions opt,
                             ServeMetrics* metrics, PredictionSink on_prediction)
    : topo_(topo),
      opt_(opt),
      metrics_(metrics),
      sink_(std::move(on_prediction)) {
  if (opt_.shards == 0) opt_.shards = 1;
  if (opt_.batch == 0) opt_.batch = 1;
  // Reader slots in the RCU hub are a fixed-width word; more shards than
  // slots cannot pin distinctly.
  if (opt_.hub && opt_.shards > ModelHub::kMaxReaders)
    opt_.shards = ModelHub::kMaxReaders;
  const std::int32_t nodes_per_midplane =
      std::max(1, topo.nodes_per_nodecard() * topo.nodecards_per_midplane());
  router_ = ShardRouter(nodes_per_midplane, opt_.shards);
  shards_.reserve(opt_.shards);
  for (std::size_t i = 0; i < opt_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(
        opt_.queue_capacity,
        core::OnlineEngine(topo, chains, profiles, engine_cfg)));
  }
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard* sp = shards_[i].get();
    sp->worker = std::thread([this, sp, i] { worker_loop(*sp, i); });
  }
  clock_ = opt_.clock ? opt_.clock : &own_clock_;
  if (opt_.watchdog_interval_ms > 0)
    watchdog_ = std::thread([this] { watchdog_loop(); });
}

ShardedEngine::~ShardedEngine() {
  stop_watchdog();
  for (auto& s : shards_) s->queue.close();
  for (auto& s : shards_)
    if (s->worker.joinable()) s->worker.join();
}

void ShardedEngine::feed(const simlog::LogRecord& rec, std::uint32_t tmpl,
                         ServeMetrics::Clock::time_point enq) {
  Shard& s = *shards_[router_.shard_of(rec.node_id)];
  Item item{rec.time_ms, rec.node_id, tmpl,
            static_cast<std::uint8_t>(rec.severity), enq};
  if (opt_.drop_on_overflow) {
    if (s.queue.offer(std::move(item)) == 0) {
      // relaxed: monotonic shed counter, monitoring only (see header).
      dropped_records_.fetch_add(1, std::memory_order_relaxed);
      if (metrics_) metrics_->on_shed(1);
    }
  } else {
    s.queue.push(std::move(item));
  }
}

void ShardedEngine::feed(const simlog::LogRecord& rec, std::uint32_t tmpl) {
  feed(rec, tmpl,
       metrics_ ? ServeMetrics::Clock::now() : ServeMetrics::Clock::time_point{});
}

void ShardedEngine::flush() {
  // No-op: records go straight from the producing thread into the shard
  // rings, so there is no dispatcher-side partial batch to hand over.
}

void ShardedEngine::maybe_swap_model(Shard& s, const ModelHub::Handle& h) {
  if (h.epoch() == s.model_epoch) return;
  s.engine.swap_model(h.get());
  s.model_epoch = h.epoch();
  if (metrics_) metrics_->on_model_swap();
}

bool ShardedEngine::process_batch(Shard& s, std::size_t idx, Batch& batch) {
  simlog::LogRecord rec;  // only the fields the engine reads are filled
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Item& item = batch[i];
    rec.time_ms = item.time_ms;
    rec.node_id = item.node_id;
    s.engine.feed(rec, item.tmpl);
    // Exactly-once event stream for the miner: publish adjacent to the
    // engine feed, BEFORE the injected-death check — a killed worker parks
    // only the unprocessed tail, so re-delivery cannot republish this item.
    if (opt_.event_tap)
      opt_.event_tap->publish(
          idx, ClassifiedEvent{item.time_ms, item.node_id, item.tmpl,
                               item.severity});
    // relaxed: monotonic progress counter; the watchdog only compares
    // successive samples, nothing orders against it.
    const std::uint64_t done =
        s.processed.fetch_add(1, std::memory_order_relaxed) + 1;
    if (metrics_) metrics_->on_processed(item.enq);
    drain_shard(s, idx, item.enq);
    if (opt_.faults) {
      if (opt_.faults->worker_fails_at(idx, done)) {
        // Injected worker death: park the unprocessed tail for whoever
        // resumes this shard (restarted worker or the finishing thread),
        // then vanish. `busy` stays true — the shard still owes work.
        s.carryover.assign(batch.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                           batch.end());
        s.alive.store(false, std::memory_order_release);
        return false;
      }
      const std::int64_t stall = opt_.faults->stall_ms_at(idx, done);
      if (stall > 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(stall));
    }
  }
  return true;
}

void ShardedEngine::worker_loop(Shard& s, std::size_t idx) {
  if (opt_.pin_workers) pin_to_core(idx);
  s.alive.store(true, std::memory_order_release);
  if (!s.carryover.empty()) {
    // Resume the batch a previous incarnation abandoned mid-flight.
    Batch b;
    b.swap(s.carryover);
    bool ok;
    if (opt_.hub) {
      const ModelHub::Handle h = opt_.hub->pin(idx);
      maybe_swap_model(s, h);
      ok = process_batch(s, idx, b);
    } else {
      ok = process_batch(s, idx, b);
    }
    if (!ok) return;
    // relaxed: advisory liveness hint the watchdog samples.
    s.busy.store(false, std::memory_order_relaxed);
  }
  Batch batch;
  batch.reserve(opt_.batch);
  for (;;) {
    batch.clear();
    if (!s.queue.pop_wait(batch, opt_.batch)) break;
    // relaxed: (all busy stores) advisory liveness hint the watchdog
    // samples; item data is handed off through the ring's own
    // synchronization.
    s.busy.store(true, std::memory_order_relaxed);
    bool ok;
    if (opt_.hub) {
      // Pin once per batch: the engine's model pointer stays valid for the
      // whole batch, the hub swap costs one seq_cst store+load, and no lock
      // ever appears on the predict path.
      const ModelHub::Handle h = opt_.hub->pin(idx);
      maybe_swap_model(s, h);
      ok = process_batch(s, idx, batch);
    } else {
      ok = process_batch(s, idx, batch);
    }
    if (!ok) return;
    // relaxed: as above.
    s.busy.store(false, std::memory_order_relaxed);
  }
}

void ShardedEngine::watchdog_loop() {
  const auto interval = std::chrono::milliseconds(opt_.watchdog_interval_ms);
  const auto deadline = std::chrono::milliseconds(opt_.watchdog_deadline_ms);
  const std::size_t n = shards_.size();
  std::vector<std::uint64_t> last(n, 0);
  std::vector<faultinject::FaultClock::time_point> since(n, clock_->now());
  std::vector<bool> tripped(n, false);
  for (std::size_t i = 0; i < n; ++i)
    // relaxed: sampling an advisory progress counter; scans re-sample.
    last[i] = shards_[i]->processed.load(std::memory_order_relaxed);

  for (;;) {
    {
      // wd_mu_ guards only the stop flag and this pacing wait. The scan
      // below runs unlocked: it joins dead workers and reads ring depths,
      // both blocking-shaped operations that must not be nested under a
      // held mutex (elsa-lint's blocking-under-lock rule bans exactly
      // that, and stop_watchdog() must never queue behind a join). The
      // scan needs no lock — shards_ is immutable while serving, the
      // sampled fields are atomics (the ring's depth read included), and
      // this thread is the sole joiner/respawner of shard workers until
      // stop_watchdog() has joined the watchdog itself.
      util::MutexLock lk(wd_mu_);
      if (wd_stop_) break;
      wd_cv_.wait_for(wd_mu_, interval);
      if (wd_stop_) break;
    }
    bool any_tripped = false;
    for (std::size_t i = 0; i < n; ++i) {
      Shard& s = *shards_[i];
      // relaxed: sampling advisory progress/liveness counters; exactness
      // per scan is not required, the next scan re-samples.
      const std::uint64_t p = s.processed.load(std::memory_order_relaxed);
      // relaxed: as above.
      const bool pending =
          s.queue.size() > 0 || s.busy.load(std::memory_order_relaxed);
      const auto now = clock_->now();
      if (p != last[i] || !pending) {
        // Progress, or nothing owed: healthy. Re-anchor the deadline.
        last[i] = p;
        since[i] = now;
        tripped[i] = false;
        continue;
      }
      if (s.alive.load(std::memory_order_acquire)) {
        if (now < since[i]) {
          // Non-monotone clock (skew fault): re-anchor rather than
          // underflow or false-trip.
          since[i] = now;
        } else if (now - since[i] >= deadline && !tripped[i]) {
          tripped[i] = true;
          if (metrics_) metrics_->on_watchdog_trip();
        }
      } else {
        // Dead worker with work owed: revive it. The join synchronises the
        // dead incarnation's carryover with the new one.
        if (s.worker.joinable()) s.worker.join();
        // relaxed: monotonic restart counter, monitoring only.
        restarts_.fetch_add(1, std::memory_order_relaxed);
        if (metrics_) metrics_->on_watchdog_trip();
        tripped[i] = true;  // count this scan as unhealthy...
        Shard* sp = &s;
        sp->worker = std::thread([this, sp, i] { worker_loop(*sp, i); });
        since[i] = now;  // ...but give the revived worker a fresh deadline
      }
      if (tripped[i]) any_tripped = true;
    }
    if (metrics_) metrics_->set_degraded(any_tripped);
  }
}

void ShardedEngine::stop_watchdog() {
  if (!watchdog_.joinable()) return;
  {
    util::MutexLock lk(wd_mu_);
    wd_stop_ = true;
  }
  wd_cv_.notify_all();
  watchdog_.join();
  if (metrics_) metrics_->set_degraded(false);
}

void ShardedEngine::drain_shard(Shard& s, std::size_t idx,
                                ServeMetrics::Clock::time_point enq) {
  const auto& preds = s.engine.predictions();
  while (s.preds_streamed < preds.size()) {
    const core::Prediction& p = preds[s.preds_streamed++];
    if (metrics_) metrics_->on_prediction(enq);
    if (sink_) sink_(p);
    if (opt_.tap) opt_.tap->publish(idx, p);
  }
  if (metrics_) {
    const core::EngineStats& st = s.engine.stats();
    if (st.duplicates_suppressed > s.dupes_reported) {
      metrics_->on_dedupe(st.duplicates_suppressed - s.dupes_reported);
      s.dupes_reported = st.duplicates_suppressed;
    }
    if (st.out_of_order > s.ooo_reported) {
      metrics_->on_out_of_order(st.out_of_order - s.ooo_reported);
      s.ooo_reported = st.out_of_order;
    }
  }
}

std::vector<std::uint64_t> ShardedEngine::shard_processed() const {
  std::vector<std::uint64_t> out;
  out.reserve(shards_.size());
  for (const auto& s : shards_)
    // relaxed: monitoring sample of an advisory progress counter.
    out.push_back(s->processed.load(std::memory_order_relaxed));
  return out;
}

std::vector<std::size_t> ShardedEngine::shard_depths() const {
  std::vector<std::size_t> out;
  out.reserve(shards_.size());
  for (const auto& s : shards_) out.push_back(s->queue.size());
  return out;
}

void ShardedEngine::finish(std::int64_t t_end_ms) {
  if (finished_) return;
  finished_ = true;

  // The watchdog joins/respawns workers; stop it before we touch them.
  stop_watchdog();

  for (auto& s : shards_) s->queue.close();
  for (auto& s : shards_)
    if (s->worker.joinable()) s->worker.join();

  // A worker killed by an injected fault (and not revived — watchdog off or
  // stopped) leaves a parked carryover tail and possibly queued items
  // behind, and a push racing close() may have landed a straggler after its
  // shard's worker exited. Conservation demands every accepted record reach
  // an engine: drain them serially here, in original per-shard FIFO order
  // (carryover precedes the queue), where this thread owns everything
  // (workers joined, producers quiesced by the caller).
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard& s = *shards_[i];
    // Pinning per shard keeps the one-pin-per-slot contract: the worker
    // for slot i has joined, so this thread is slot i's sole reader now.
    ModelHub::Handle h;
    if (opt_.hub) {
      h = opt_.hub->pin(i);
      maybe_swap_model(s, h);
    }
    simlog::LogRecord rec;
    const auto drain_item = [&](const Item& item) {
      rec.time_ms = item.time_ms;
      rec.node_id = item.node_id;
      s.engine.feed(rec, item.tmpl);
      if (opt_.event_tap)
        opt_.event_tap->publish(
            i, ClassifiedEvent{item.time_ms, item.node_id, item.tmpl,
                               item.severity});
      // relaxed: monotonic progress counter, monitoring only.
      s.processed.fetch_add(1, std::memory_order_relaxed);
      if (metrics_) metrics_->on_processed(item.enq);
      drain_shard(s, i, item.enq);
    };
    if (!s.carryover.empty()) {
      Batch b;
      b.swap(s.carryover);
      for (const Item& item : b) drain_item(item);
    }
    while (auto item = s.queue.try_pop()) drain_item(*item);
  }

  // Closing trailing buckets can still emit predictions; workers are gone,
  // so finish and drain serially here. The pin keeps the engine's model
  // alive across the trailing-bucket flush.
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard& s = *shards_[i];
    ModelHub::Handle h;
    if (opt_.hub) {
      h = opt_.hub->pin(i);
      maybe_swap_model(s, h);
    }
    s.engine.finish(t_end_ms);
    drain_shard(s, i, ServeMetrics::Clock::now());
  }

  // Deterministic merge.
  merged_.clear();
  for (const auto& s : shards_) {
    const auto& preds = s->engine.predictions();
    merged_.insert(merged_.end(), preds.begin(), preds.end());
  }
  std::stable_sort(merged_.begin(), merged_.end(), prediction_less);

  // Aggregate statistics.
  stats_ = core::EngineStats{};
  std::vector<std::size_t> fires;
  for (const auto& s : shards_) {
    const core::EngineStats& st = s->engine.stats();
    stats_.records += st.records;
    stats_.buckets += st.buckets;
    stats_.out_of_order += st.out_of_order;
    stats_.outlier_onsets += st.outlier_onsets;
    stats_.raw_triggers += st.raw_triggers;
    stats_.predictions_emitted += st.predictions_emitted;
    stats_.duplicates_suppressed += st.duplicates_suppressed;
    stats_.analysis_window_ms.insert(stats_.analysis_window_ms.end(),
                                     st.analysis_window_ms.begin(),
                                     st.analysis_window_ms.end());
    const auto& f = s->engine.chain_fires();
    if (fires.size() < f.size()) fires.resize(f.size(), 0);
    for (std::size_t c = 0; c < f.size(); ++c) fires[c] += f[c];
  }
  stats_.chains_used = static_cast<std::size_t>(
      std::count_if(fires.begin(), fires.end(),
                    [](std::size_t f) { return f > 0; }));
}

}  // namespace elsa::serve
