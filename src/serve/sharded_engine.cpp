#include "serve/sharded_engine.hpp"

#include <algorithm>
#include <tuple>

namespace elsa::serve {

namespace {

/// Total order on predictions for the deterministic merge. Every field that
/// can differ participates, so the merged order is independent of shard
/// count and thread scheduling.
bool prediction_less(const core::Prediction& a, const core::Prediction& b) {
  const auto key = [](const core::Prediction& p) {
    return std::tie(p.issue_time_ms, p.chain_id, p.tmpl, p.trigger_time_ms,
                    p.predicted_time_ms);
  };
  if (key(a) != key(b)) return key(a) < key(b);
  return std::lexicographical_compare(a.nodes.begin(), a.nodes.end(),
                                      b.nodes.begin(), b.nodes.end());
}

}  // namespace

ShardedEngine::ShardedEngine(const topo::Topology& topo,
                             std::vector<core::Chain> chains,
                             std::vector<core::SignalProfile> profiles,
                             core::EngineConfig engine_cfg, ShardOptions opt,
                             ServeMetrics* metrics, PredictionSink on_prediction)
    : topo_(topo),
      opt_(opt),
      metrics_(metrics),
      sink_(std::move(on_prediction)) {
  if (opt_.shards == 0) opt_.shards = 1;
  if (opt_.batch == 0) opt_.batch = 1;
  nodes_per_midplane_ =
      std::max(1, topo.nodes_per_nodecard() * topo.nodecards_per_midplane());
  shards_.reserve(opt_.shards);
  for (std::size_t i = 0; i < opt_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(
        opt_.queue_capacity,
        core::OnlineEngine(topo, chains, profiles, engine_cfg)));
    shards_.back()->pending.reserve(opt_.batch);
  }
  for (auto& s : shards_)
    s->worker = std::thread([this, sp = s.get()] { worker_loop(*sp); });
}

ShardedEngine::~ShardedEngine() {
  for (auto& s : shards_) s->queue.close();
  for (auto& s : shards_)
    if (s->worker.joinable()) s->worker.join();
}

std::size_t ShardedEngine::shard_of(std::int32_t node_id) const {
  if (node_id < 0) return 0;  // system-scoped records ride on shard 0
  const std::size_t midplane =
      static_cast<std::size_t>(node_id) /
      static_cast<std::size_t>(nodes_per_midplane_);
  return midplane % shards_.size();
}

void ShardedEngine::feed(const simlog::LogRecord& rec, std::uint32_t tmpl,
                         ServeMetrics::Clock::time_point enq) {
  Shard& s = *shards_[shard_of(rec.node_id)];
  s.pending.push_back({rec.time_ms, rec.node_id, tmpl, enq});
  if (s.pending.size() >= opt_.batch) flush_shard(s);
}

void ShardedEngine::feed(const simlog::LogRecord& rec, std::uint32_t tmpl) {
  feed(rec, tmpl,
       metrics_ ? ServeMetrics::Clock::now() : ServeMetrics::Clock::time_point{});
}

void ShardedEngine::flush() {
  for (auto& s : shards_) flush_shard(*s);
}

void ShardedEngine::flush_shard(Shard& s) {
  if (s.pending.empty()) return;
  Batch batch;
  batch.reserve(opt_.batch);
  batch.swap(s.pending);
  if (opt_.drop_on_overflow) {
    const std::size_t n = batch.size();
    if (s.queue.offer(std::move(batch)) == 0) {
      // relaxed: monotonic shed counter, monitoring only (see header).
      dropped_records_.fetch_add(n, std::memory_order_relaxed);
      if (metrics_) metrics_->on_drop(n);
    }
  } else {
    s.queue.push(std::move(batch));
  }
}

void ShardedEngine::worker_loop(Shard& s) {
  simlog::LogRecord rec;  // only the fields the engine reads are filled
  while (auto batch = s.queue.pop()) {
    for (const Item& item : *batch) {
      rec.time_ms = item.time_ms;
      rec.node_id = item.node_id;
      s.engine.feed(rec, item.tmpl);
      if (metrics_) metrics_->on_processed(item.enq);
      drain_shard(s, item.enq);
    }
  }
}

void ShardedEngine::drain_shard(Shard& s, ServeMetrics::Clock::time_point enq) {
  const auto& preds = s.engine.predictions();
  while (s.preds_streamed < preds.size()) {
    const core::Prediction& p = preds[s.preds_streamed++];
    if (metrics_) metrics_->on_prediction(enq);
    if (sink_) sink_(p);
  }
  if (metrics_) {
    const core::EngineStats& st = s.engine.stats();
    if (st.duplicates_suppressed > s.dupes_reported) {
      metrics_->on_dedupe(st.duplicates_suppressed - s.dupes_reported);
      s.dupes_reported = st.duplicates_suppressed;
    }
    if (st.out_of_order > s.ooo_reported) {
      metrics_->on_out_of_order(st.out_of_order - s.ooo_reported);
      s.ooo_reported = st.out_of_order;
    }
  }
}

void ShardedEngine::finish(std::int64_t t_end_ms) {
  if (finished_) return;
  finished_ = true;

  flush();
  for (auto& s : shards_) s->queue.close();
  for (auto& s : shards_)
    if (s->worker.joinable()) s->worker.join();

  // Closing trailing buckets can still emit predictions; workers are gone,
  // so finish and drain serially here.
  for (auto& s : shards_) {
    s->engine.finish(t_end_ms);
    drain_shard(*s, ServeMetrics::Clock::now());
  }

  // Deterministic merge.
  merged_.clear();
  for (const auto& s : shards_) {
    const auto& preds = s->engine.predictions();
    merged_.insert(merged_.end(), preds.begin(), preds.end());
  }
  std::stable_sort(merged_.begin(), merged_.end(), prediction_less);

  // Aggregate statistics.
  stats_ = core::EngineStats{};
  std::vector<std::size_t> fires;
  for (const auto& s : shards_) {
    const core::EngineStats& st = s->engine.stats();
    stats_.records += st.records;
    stats_.buckets += st.buckets;
    stats_.out_of_order += st.out_of_order;
    stats_.outlier_onsets += st.outlier_onsets;
    stats_.raw_triggers += st.raw_triggers;
    stats_.predictions_emitted += st.predictions_emitted;
    stats_.duplicates_suppressed += st.duplicates_suppressed;
    stats_.analysis_window_ms.insert(stats_.analysis_window_ms.end(),
                                     st.analysis_window_ms.begin(),
                                     st.analysis_window_ms.end());
    const auto& f = s->engine.chain_fires();
    if (fires.size() < f.size()) fires.resize(f.size(), 0);
    for (std::size_t c = 0; c < f.size(); ++c) fires[c] += f[c];
  }
  stats_.chains_used = static_cast<std::size_t>(
      std::count_if(fires.begin(), fires.end(),
                    [](std::size_t f) { return f > 0; }));
}

}  // namespace elsa::serve
