// Lock-free bounded ring: the per-shard ingest lane of the serving layer.
//
// One of these sits in front of every shard engine, replacing the old
// single mutex-guarded MPMC `Ring` that every producer and the dispatcher
// contended on (the scalability bug: throughput *fell* as shards were
// added, because all of them serialized on one lock). Routing now happens
// on the producer's thread (serve/router.hpp) and each record takes
// exactly one hop — producer straight into its shard's ring — with no
// dispatcher and no mutex anywhere on the path.
//
// The deployed topology is single-producer/single-consumer per ring: one
// feed thread (the replayer / syslog tap of a partition) pushes, the
// shard's worker pops. The implementation is nevertheless safe under
// transient multi-producer submits (PredictionService::submit is a public
// thread-safe API): every slot carries a sequence number (Vyukov's bounded
// queue protocol), and cursor advancement is a CAS — uncontended in the
// 1P1C fast path, where it costs the same single locked instruction as a
// plain atomic increment.
//
// Geometry: capacity rounds up to a power of two (index masking instead of
// modulo), and the producer cursor, consumer cursor and close flag live on
// separate cache lines so the two sides never false-share.
//
// Overflow semantics mirror `Ring` exactly — the caller picks per call:
//   * push()       — block (bounded spin, then yield, then short sleeps)
//     until space frees up or the ring closes; backpressure.
//   * offer()      — never block; a full (or closed) ring drops the item
//     and counts it in dropped(); load shedding.
//   * push_evict() — never block, never reject while open: a full ring
//     discards its OLDEST queued item (counted in evicted(),
//     `*evicted_out` set) to admit the new one; freshness-first.
//
// close() makes every subsequent push attempt fail fast; items already
// queued remain poppable, and pop_wait() returns false once the ring is
// closed and drained. One closing race is deliberately tolerated: a push
// that passed the closed check just before close() may still land its
// item. ShardedEngine::finish() runs a serial try_pop drain after joining
// the workers, so such stragglers are still processed exactly once —
// conservation holds.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/interleave.hpp"

namespace elsa::serve {

namespace detail {

/// Progressive waiting for the ring's blocking paths: burn a few cycles
/// first (the partner is usually mid-operation), then yield the core
/// (essential on boxes with fewer cores than threads), then sleep in
/// short bounded naps so an idle worker costs ~nothing.
class SpinBackoff {
 public:
  void pause() {
    ++spins_;
    if (spins_ < 16) return;
    if (spins_ < 64) {
      std::this_thread::yield();
      return;
    }
    // elsa-lint: allow(realtime-blocks): the bounded 100µs nap is the ring's
    // designed backpressure strategy — only the explicitly blocking variants
    // (push, pop_wait) reach it; the wait-free ones never construct a backoff.
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  void reset() { spins_ = 0; }

 private:
  int spins_ = 0;
};

inline std::size_t round_up_pow2(std::size_t v) {
  std::size_t p = 2;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace detail

template <class T>
class SpscRing {
 public:
  /// `capacity` is rounded up to a power of two (minimum 2).
  explicit SpscRing(std::size_t capacity) {
    if (capacity == 0) throw std::invalid_argument("SpscRing: zero capacity");
    const std::size_t cap = detail::round_up_pow2(capacity);
    mask_ = cap - 1;
    slots_.reset(new Slot[cap]);
    for (std::size_t i = 0; i < cap; ++i)
      // relaxed: pre-publication initialization; the constructor's caller
      // publishes the ring to other threads with its own synchronization.
      slots_[i].seq.store(i, std::memory_order_relaxed);
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const { return mask_ + 1; }

  /// Items currently queued (racy by nature; for monitoring).
  std::size_t size() const {
    util::sched_point();
    // relaxed: monitoring read of two independently advancing cursors; a
    // torn pair can only be off by in-flight operations.
    const std::size_t t = tail_.load(std::memory_order_relaxed);
    util::sched_point();
    // relaxed: as above.
    const std::size_t h = head_.load(std::memory_order_relaxed);
    return t > h ? t - h : 0;
  }

  /// Records shed by offer() on overflow (or after close).
  std::uint64_t dropped() const {
    util::sched_point();
    // relaxed: standalone monotonic counter read for monitoring; no other
    // memory depends on its value.
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Queued items displaced by push_evict() on overflow.
  std::uint64_t evicted() const {
    util::sched_point();
    // relaxed: standalone monotonic counter read for monitoring; no other
    // memory depends on its value.
    return evicted_.load(std::memory_order_relaxed);
  }

  bool closed() const {
    util::sched_point();
    return closed_.load(std::memory_order_acquire);
  }

  /// Blocking push. Returns the queue depth after insertion (>= 1), or 0
  /// if the ring was closed — the item was not enqueued.
  // elsa-realtime: producer ingest; allocation- and lock-free (its one
  // blocking effect, the backoff nap, carries a reasoned allow above).
  std::size_t push(T item) {
    detail::SpinBackoff backoff;
    for (;;) {
      if (closed()) return 0;
      const std::size_t depth = try_push(item);
      if (depth != 0) return depth;
      backoff.pause();
    }
  }

  /// Non-blocking push. On a full (or closed) ring the item is dropped and
  /// counted; returns the depth after insertion, or 0 on drop.
  // elsa-realtime: wait-free shed-on-overflow ingest.
  std::size_t offer(T item) {
    if (!closed()) {
      const std::size_t depth = try_push(item);
      if (depth != 0) return depth;
    }
    util::sched_point();
    // relaxed: monotonic shed counter; readers only ever sum it, never
    // order other accesses against it.
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return 0;
  }

  /// Non-blocking push that never rejects on overflow: a full ring evicts
  /// its oldest queued item (counted; `*evicted_out` set when it happens)
  /// to make room. Returns the depth after insertion, or 0 iff the ring is
  /// closed — only then was the item not enqueued.
  // elsa-realtime: wait-free freshness-first ingest.
  std::size_t push_evict(T item, bool* evicted_out = nullptr) {
    bool kicked = false;
    std::size_t depth = 0;
    for (;;) {
      if (closed()) {
        if (evicted_out) *evicted_out = false;
        return 0;
      }
      depth = try_push(item);
      if (depth != 0) break;
      if (discard_oldest()) kicked = true;
      // A concurrent consumer may have beaten us to the oldest slot; either
      // way space is (about to be) available — retry the push.
    }
    if (kicked) {
      util::sched_point();
      // relaxed: monotonic eviction counter; readers only ever sum it,
      // never order other accesses against it.
      evicted_.fetch_add(1, std::memory_order_relaxed);
    }
    if (evicted_out) *evicted_out = kicked;
    return depth;
  }

  /// Non-blocking pop.
  // elsa-realtime: consumer fast path.
  std::optional<T> try_pop() {
    util::sched_point();
    // relaxed: own-side cursor hint; the CAS below re-validates it.
    std::size_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& slot = slots_[pos & mask_];
      util::sched_point();
      const std::size_t seq = slot.seq.load(std::memory_order_acquire);
      const auto dif = static_cast<std::ptrdiff_t>(seq) -
                       static_cast<std::ptrdiff_t>(pos + 1);
      if (dif == 0) {
        util::sched_point();
        // relaxed: the slot's seq acquire/release pair carries the data;
        // the cursor itself orders nothing.
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          T out = std::move(slot.val);
          slot.val = T{};  // release the popped item's resources now
          util::sched_point();
          slot.seq.store(pos + mask_ + 1, std::memory_order_release);
          return out;
        }
      } else if (dif < 0) {
        return std::nullopt;  // empty
      } else {
        util::sched_point();
        // relaxed: as above — re-read the cursor another consumer advanced.
        pos = head_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Batched non-blocking pop: append up to `max` items to `out` in FIFO
  /// order; returns how many were taken.
  // elsa-realtime: batched consumer drain into a caller-owned buffer.
  std::size_t pop_n(std::vector<T>& out, std::size_t max) {
    std::size_t n = 0;
    while (n < max) {
      auto item = try_pop();
      if (!item) break;
      // elsa-lint: allow(realtime-allocates): appends into the caller's
      // long-lived drain buffer — worker loops reserve once and reuse it,
      // so steady state never grows capacity.
      out.push_back(std::move(*item));
      ++n;
    }
    return n;
  }

  /// Batched blocking pop: wait until at least one item is available (then
  /// drain up to `max` of them into `out`), or the ring is closed and
  /// empty — the false return, the consumer's exit signal.
  // elsa-realtime: worker wait loop (bounded backoff naps allowed above).
  bool pop_wait(std::vector<T>& out, std::size_t max) {
    detail::SpinBackoff backoff;
    for (;;) {
      if (pop_n(out, max) > 0) return true;
      if (closed()) {
        // Final drain: an in-flight push may have landed between the empty
        // pop and the closed observation.
        return pop_n(out, max) > 0;
      }
      backoff.pause();
    }
  }

  /// Stop accepting items: every later push attempt fails fast (push and
  /// push_evict return 0, offer counts a drop). Idempotent. Items already
  /// queued remain poppable.
  // elsa-realtime: a single store-release.
  void close() {
    util::sched_point();
    closed_.store(true, std::memory_order_release);
  }

 private:
  struct Slot {
    // elsa-atomic: seqlock — per-slot generation number (Vyukov protocol):
    // the release store of seq publishes val, the acquire load consumes it.
    std::atomic<std::size_t> seq;
    T val;
  };

  /// One enqueue attempt. Returns the approximate depth after insertion
  /// (clamped to >= 1), or 0 when the ring is full.
  std::size_t try_push(T& item) {
    util::sched_point();
    // relaxed: own-side cursor hint; the CAS below re-validates it.
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& slot = slots_[pos & mask_];
      util::sched_point();
      const std::size_t seq = slot.seq.load(std::memory_order_acquire);
      const auto dif = static_cast<std::ptrdiff_t>(seq) -
                       static_cast<std::ptrdiff_t>(pos);
      if (dif == 0) {
        util::sched_point();
        // relaxed: the slot's seq acquire/release pair carries the data;
        // the cursor itself orders nothing.
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          slot.val = std::move(item);
          util::sched_point();
          slot.seq.store(pos + 1, std::memory_order_release);
          util::sched_point();
          // relaxed: depth is a monitoring statistic; clamp covers the
          // consumer racing past our slot.
          const std::size_t h = head_.load(std::memory_order_relaxed);
          return pos + 1 > h ? pos + 1 - h : 1;
        }
      } else if (dif < 0) {
        return 0;  // full: the slot still holds an unconsumed generation
      } else {
        util::sched_point();
        // relaxed: as above — re-read the cursor another producer advanced.
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Dequeue-and-discard the oldest queued item (push_evict's overflow
  /// leg). False when the ring turned out to be empty.
  bool discard_oldest() {
    util::sched_point();
    // relaxed: cursor hint; the CAS below re-validates it.
    std::size_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& slot = slots_[pos & mask_];
      util::sched_point();
      const std::size_t seq = slot.seq.load(std::memory_order_acquire);
      const auto dif = static_cast<std::ptrdiff_t>(seq) -
                       static_cast<std::ptrdiff_t>(pos + 1);
      if (dif == 0) {
        util::sched_point();
        // relaxed: the slot's seq acquire/release pair carries the data;
        // the cursor itself orders nothing.
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          slot.val = T{};  // release the displaced item's resources now
          util::sched_point();
          slot.seq.store(pos + mask_ + 1, std::memory_order_release);
          return true;
        }
      } else if (dif < 0) {
        return false;  // empty — the consumer drained it under us
      } else {
        util::sched_point();
        // relaxed: as above.
        pos = head_.load(std::memory_order_relaxed);
      }
    }
  }

  std::size_t mask_ = 0;
  std::unique_ptr<Slot[]> slots_;
  /// Producer and consumer cursors on their own cache lines: the two sides
  /// of the ring never false-share, which is most of the point.
  // elsa-atomic: monotonic-relaxed — cursors order nothing themselves; all
  // publication rides the per-slot seq (seqlock), so relaxed CAS is sound.
  alignas(64) std::atomic<std::size_t> tail_{0};  ///< next slot to fill
  // elsa-atomic: monotonic-relaxed — as tail_; seq carries the ordering.
  alignas(64) std::atomic<std::size_t> head_{0};  ///< next slot to drain
  // elsa-atomic: release-acquire-flag — close() publishes, closed() pairs.
  alignas(64) std::atomic<bool> closed_{false};
  // elsa-atomic: monotonic-relaxed — shed counter, summed for monitoring.
  std::atomic<std::uint64_t> dropped_{0};
  // elsa-atomic: monotonic-relaxed — eviction counter, summed only.
  std::atomic<std::uint64_t> evicted_{0};
};

}  // namespace elsa::serve
