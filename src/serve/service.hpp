// elsa-serve: the streaming prediction service (paper Fig 2's online half,
// deployed for real). Producers — syslog taps, the trace replayer, test
// harnesses — submit raw records from any number of threads; the service
// classifies them against the frozen offline model, routes them through the
// lock-free ShardRouter, and pushes each straight into its shard's
// lock-free ingest ring. Alarms stream out through a polling ring as they
// are issued; the deterministic merged list is available after finish().
//
//   producers -> [classify] -> [route] -> per-shard SpscRing -> shard worker
//                                              |                   |  alarms
//                                         ServeMetrics <-----------+--> Ring
//
// Everything up to the ring insertion happens on the *producer's* thread:
// the model is frozen while serving (classify_const never mutates), the
// router is a pure function, and the rings are lock-free — so the submit
// path holds no mutex and shares no cache line between shards. There is no
// dispatcher hop; each record crosses threads exactly once. (The old design
// funneled every producer through one mutex-guarded MPMC ring and a single
// dispatcher thread, which made throughput *fall* as shards were added.)
// Messages never cross the ring — only (time, node, template) does.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "elsa/online.hpp"
#include "elsa/pipeline.hpp"
#include "serve/metrics.hpp"
#include "serve/ring.hpp"
#include "serve/sharded_engine.hpp"

namespace elsa::serve {

/// What a blocking submit does when the target shard's ring is full.
/// try_submit always sheds (that is its contract); submit consults this
/// policy.
enum class OverflowPolicy : std::uint8_t {
  kBlock,       ///< wait for space (backpressure onto the producer)
  kDropOldest,  ///< evict the oldest queued record to admit the new one
  kShed,        ///< refuse the new record, counted in metrics
};

/// Fate of one submit attempt. Conservation: every attempt except kClosed
/// increments `ingested` and exactly one of the queued/quarantined/shed
/// legs; kClosed attempts are invisible to the metrics.
enum class SubmitResult : std::uint8_t {
  kQueued,       ///< accepted into its shard's ingest ring
  kQuarantined,  ///< malformed record set aside (validator rejected it)
  kShed,         ///< lost to overflow under kShed / non-blocking submit
  kClosed,       ///< service already finished; nothing counted
};

struct ServiceConfig {
  std::size_t shards = 4;
  /// Total ingest capacity, in records, split evenly across the per-shard
  /// rings (each shard gets at least two batches' worth, and the ring
  /// rounds its share up to a power of two).
  std::size_t ingest_capacity = 8192;
  /// Most records a shard worker drains from its ring in one batched pop.
  std::size_t batch = 64;
  /// Shed records instead of applying backpressure when a shard ring fills
  /// (the policy for engine-side feeds; submit() consults `overflow`,
  /// try_submit always sheds).
  bool drop_on_overflow = false;
  /// Backpressure policy for blocking submit() on a full shard ring.
  OverflowPolicy overflow = OverflowPolicy::kBlock;
  /// Reject malformed records (node id outside the topology, negative
  /// timestamp) into quarantine instead of feeding them to the engines.
  /// The serving default; chaos tests rely on it to survive kCorrupt.
  bool validate = true;
  /// Watchdog scan interval for the sharded engine; 0 disables it.
  std::int64_t watchdog_interval_ms = 100;
  /// No-progress deadline before a shard counts as unhealthy.
  std::int64_t watchdog_deadline_ms = 2000;
  /// Pin each shard worker to one CPU (best-effort, Linux only; see
  /// ShardOptions::pin_workers).
  bool pin_workers = false;
  /// Injected serve-side faults (stall / worker kill); null = none. Must
  /// outlive the service.
  const faultinject::FaultPlan* faults = nullptr;
  /// Watchdog time source override (tests / chaos); null = real time.
  const faultinject::FaultClock* clock = nullptr;
  /// Wait-free per-shard prediction observer (serve/tap.hpp) handed down
  /// to the sharded engine; null = none. The checkpoint advisor
  /// (src/advisor) registers through this. Must outlive the service.
  PredictionTap* tap = nullptr;
  /// Streaming alarm ring capacity; overflowing alarms are dropped from
  /// the *streaming view only* (the merged list after finish() is always
  /// complete).
  std::size_t alarm_capacity = 4096;
  /// Incremental HELO classifier (see helo.hpp). Null = the offline
  /// model's frozen classifier (classify_const). When set, submits
  /// classify through its *mutating* path, so unseen message shapes learn
  /// fresh template ids on the fly instead of collapsing onto the one
  /// reserved "unknown" id. The mutating classifier is not internally
  /// synchronized: all submits must come from ONE producer thread (the
  /// replayer/`elsa mine` contract). Must outlive the service.
  helo::TemplateMiner* live_classifier = nullptr;
  /// Live rule-model hub handed down to the sharded engine (see
  /// serve/model_handle.hpp); null = serve the construction-time model
  /// forever. Must outlive the service.
  ModelHub* hub = nullptr;
  /// Classified-event observer handed down to the sharded engine (the
  /// incremental miner's intake; see serve/tap.hpp); null = none. Must
  /// outlive the service.
  EventTap* event_tap = nullptr;
  core::EngineConfig engine;

  /// Zeroes the engine's simulated analysis-cost model: the serving layer
  /// measures real latency instead of simulating 2012 hardware, and a
  /// zero-cost model is what makes sharded output identical to a
  /// single-engine run (per-shard simulated queues would diverge).
  ServiceConfig() { engine.cost = core::AnalysisCostModel{0.0, 0.0, 0.0}; }
};

class PredictionService {
 public:
  /// `model` supplies the classifier, chains and signal profiles; it must
  /// outlive the service and must not be mutated while serving.
  PredictionService(const topo::Topology& topo,
                    const core::OfflineModel& model, ServiceConfig cfg = {});
  ~PredictionService();

  PredictionService(const PredictionService&) = delete;
  PredictionService& operator=(const PredictionService&) = delete;

  /// Classify, route and enqueue one record; a full shard ring is handled
  /// per the configured OverflowPolicy (default: block for backpressure).
  /// Thread-safe. False once the service is finished.
  bool submit(const simlog::LogRecord& rec);

  /// Classify, route and enqueue one record; sheds it (counted in the
  /// metrics) when its shard's ring is full. Thread-safe. False if shed,
  /// quarantined or finished.
  bool try_submit(const simlog::LogRecord& rec);

  /// Full-fidelity submit: says *which* fate the record met. `blocking`
  /// selects between submit()'s policy path and try_submit()'s shed path.
  /// Thread-safe.
  SubmitResult submit_result(const simlog::LogRecord& rec, bool blocking);

  /// Count one producer-side re-submission after a kShed result (the
  /// replayer's bounded retry loop reports through this).
  void note_retry() { metrics_.on_retry(); }

  /// The most recent quarantined records (bounded sample, newest last).
  /// For diagnostics: what kind of malformed input is arriving?
  std::vector<simlog::LogRecord> quarantined_sample() const
      ELSA_EXCLUDES(q_mu_);

  /// Stop intake, drain everything, close trailing buckets through
  /// `t_end_ms`, freeze the metrics clock. Idempotent.
  void finish(std::int64_t t_end_ms);

  /// Drain alarms issued since the last poll into `out` (appended);
  /// returns how many. Callable anytime from any one consumer thread.
  std::size_t poll_alarms(std::vector<core::Prediction>& out);

  /// Canonical deterministically-merged predictions (after finish()).
  const std::vector<core::Prediction>& predictions() const {
    return sharded_->predictions();
  }

  /// Aggregated engine statistics (after finish()).
  const core::EngineStats& engine_stats() const { return sharded_->stats(); }

  MetricsSnapshot metrics() const { return metrics_.snapshot(); }
  std::string metrics_report() const { return metrics_.text_report(); }
  const ServeMetrics& raw_metrics() const { return metrics_; }
  /// Mutable access for cooperating layers (the checkpoint advisor mirrors
  /// its counters into this scrape). Hooks are lock-free; safe anytime.
  ServeMetrics& raw_metrics() { return metrics_; }

  std::size_t shards() const { return sharded_->shards(); }

  /// Shard a record would route to (the bench partitions its producer
  /// threads with this; pure function, callable from any thread).
  std::size_t shard_of(std::int32_t node_id) const {
    return sharded_->shard_of(node_id);
  }

  /// Current per-shard ingest ring depths (racy monitoring snapshot).
  std::vector<std::size_t> shard_depths() const {
    return sharded_->shard_depths();
  }

  /// Records processed so far, per shard (router-imbalance monitoring).
  std::vector<std::uint64_t> shard_processed() const {
    return sharded_->shard_processed();
  }

  /// Template id the service assigns to `message` (frozen-model
  /// classification; unseen messages map to one reserved "unknown" id).
  std::uint32_t classify(std::string_view message) const;

 private:
  /// Structural sanity of one record: node id inside the topology (or the
  /// system-scope sentinel -1), non-negative timestamp.
  bool valid(const simlog::LogRecord& rec) const;

  // Thread roles: `classifier_` and `unknown_tmpl_` are immutable while
  // serving (frozen model); `metrics_` and `alarms_` are internally
  // synchronized; the ShardedEngine's rings are lock-free and fed directly
  // by submitting threads. `finished_` is control-plane state: finish()
  // must be called from one controlling thread (it joins the shard
  // workers), matching the destructor's contract.
  const helo::TemplateMiner* classifier_;
  /// Mutating incremental classifier; non-null only under the
  /// single-producer submit contract (ServiceConfig::live_classifier).
  helo::TemplateMiner* live_classifier_ = nullptr;
  std::uint32_t unknown_tmpl_;
  std::int32_t total_nodes_ = 0;
  OverflowPolicy overflow_ = OverflowPolicy::kBlock;
  bool validate_ = true;
  ServeMetrics metrics_;
  Ring<core::Prediction> alarms_;
  std::unique_ptr<ShardedEngine> sharded_;
  bool finished_ = false;  ///< controlling thread only

  /// Bounded ring of the newest quarantined records (multi-producer).
  static constexpr std::size_t kQuarantineSample = 32;
  // Rank kService (top of the serving hierarchy): nothing else may be held
  // when it is taken, and submit_result() closes its scope before touching
  // the shard rings.
  mutable util::Mutex q_mu_{"serve::PredictionService::q_mu_",
                            util::lockrank::kService};
  std::vector<simlog::LogRecord> quarantine_ ELSA_GUARDED_BY(q_mu_);
  std::size_t q_next_ ELSA_GUARDED_BY(q_mu_) = 0;
};

}  // namespace elsa::serve
