#include "serve/service.hpp"

#include <algorithm>

namespace elsa::serve {

PredictionService::PredictionService(const topo::Topology& topo,
                                     const core::OfflineModel& model,
                                     ServiceConfig cfg)
    : classifier_(&model.helo),
      live_classifier_(cfg.live_classifier),
      unknown_tmpl_(static_cast<std::uint32_t>(
          std::max(model.helo.size(), model.profiles.size()))),
      total_nodes_(topo.total_nodes()),
      overflow_(cfg.overflow),
      validate_(cfg.validate),
      alarms_(cfg.alarm_capacity) {
  ShardOptions so;
  so.shards = std::max<std::size_t>(1, cfg.shards);
  so.batch = std::max<std::size_t>(1, cfg.batch);
  // Split the configured total ingest capacity across the shard rings.
  // Floor of two batches per shard: a ring smaller than one pop quantum
  // would make backpressure oscillate instead of smoothing bursts.
  so.queue_capacity = std::max({cfg.ingest_capacity / so.shards,
                                2 * so.batch, std::size_t{2}});
  so.drop_on_overflow = cfg.drop_on_overflow;
  so.watchdog_interval_ms = cfg.watchdog_interval_ms;
  so.watchdog_deadline_ms = cfg.watchdog_deadline_ms;
  so.pin_workers = cfg.pin_workers;
  so.faults = cfg.faults;
  so.clock = cfg.clock;
  so.tap = cfg.tap;
  so.hub = cfg.hub;
  so.event_tap = cfg.event_tap;
  sharded_ = std::make_unique<ShardedEngine>(
      topo, model.chains, model.profiles, cfg.engine, so, &metrics_,
      [this](const core::Prediction& p) {
        // Streaming view only; overflow is tolerated (merged list is the
        // canonical record).
        alarms_.offer(p);
      });
}

PredictionService::~PredictionService() = default;

std::uint32_t PredictionService::classify(std::string_view message) const {
  // Live path: learn unseen message shapes as fresh template ids (mutates
  // the external miner — legal from this const member because constness
  // stops at the pointer). Single producer thread by contract, so no
  // synchronization is needed here.
  if (live_classifier_ != nullptr) return live_classifier_->classify(message);
  const std::uint32_t tid = classifier_->classify_const(message);
  return tid == helo::TemplateMiner::kNoTemplate ? unknown_tmpl_ : tid;
}

bool PredictionService::valid(const simlog::LogRecord& rec) const {
  return rec.node_id >= -1 && rec.node_id < total_nodes_ && rec.time_ms >= 0;
}

SubmitResult PredictionService::submit_result(const simlog::LogRecord& rec,
                                              bool blocking) {
  if (validate_ && !valid(rec)) {
    metrics_.on_submit();
    metrics_.on_quarantine();
    {
      util::MutexLock lk(q_mu_);
      if (quarantine_.size() < kQuarantineSample) {
        quarantine_.push_back(rec);
      } else {
        quarantine_[q_next_] = rec;
        q_next_ = (q_next_ + 1) % kQuarantineSample;
      }
    }
    return SubmitResult::kQuarantined;
  }

  // Classify and route on this (the producer's) thread, then push straight
  // into the target shard's lock-free ring — no dispatcher hop, no mutex.
  const ShardedEngine::Item item{rec.time_ms, rec.node_id,
                                 classify(rec.message),
                                 static_cast<std::uint8_t>(rec.severity),
                                 ServeMetrics::Clock::now()};
  SpscRing<ShardedEngine::Item>& ring =
      sharded_->ingest(sharded_->shard_of(rec.node_id));
  std::size_t depth = 0;
  if (blocking) {
    switch (overflow_) {
      case OverflowPolicy::kBlock:
        depth = ring.push(item);
        if (depth == 0) return SubmitResult::kClosed;
        break;
      case OverflowPolicy::kDropOldest: {
        bool evicted = false;
        depth = ring.push_evict(item, &evicted);
        if (depth == 0) return SubmitResult::kClosed;
        if (evicted) {
          // The displaced record was already counted ingested + in; it is
          // now a shed record, keeping conservation exact.
          metrics_.on_shed();
        }
        break;
      }
      case OverflowPolicy::kShed:
        depth = ring.offer(item);
        break;
    }
  } else {
    depth = ring.offer(item);
  }
  if (depth == 0) {
    // offer() cannot say whether it refused for "full" or "closed"; ask.
    // A closed service never counts the attempt (nothing downstream will
    // balance it); a full ring is a shed.
    if (ring.closed()) return SubmitResult::kClosed;
    metrics_.on_submit();
    metrics_.on_shed();
    return SubmitResult::kShed;
  }
  metrics_.on_submit();
  metrics_.on_ingest(depth);
  return SubmitResult::kQueued;
}

bool PredictionService::submit(const simlog::LogRecord& rec) {
  return submit_result(rec, /*blocking=*/true) != SubmitResult::kClosed;
}

bool PredictionService::try_submit(const simlog::LogRecord& rec) {
  return submit_result(rec, /*blocking=*/false) == SubmitResult::kQueued;
}

std::vector<simlog::LogRecord> PredictionService::quarantined_sample() const {
  util::MutexLock lk(q_mu_);
  std::vector<simlog::LogRecord> out;
  out.reserve(quarantine_.size());
  // Oldest-first: the ring overwrites at q_next_, so that slot is oldest.
  for (std::size_t i = 0; i < quarantine_.size(); ++i)
    out.push_back(quarantine_[(q_next_ + i) % quarantine_.size()]);
  return out;
}

void PredictionService::finish(std::int64_t t_end_ms) {
  if (finished_) return;
  finished_ = true;
  sharded_->finish(t_end_ms);
  metrics_.stop();
}

std::size_t PredictionService::poll_alarms(std::vector<core::Prediction>& out) {
  std::size_t n = 0;
  while (auto p = alarms_.try_pop()) {
    out.push_back(std::move(*p));
    ++n;
  }
  return n;
}

}  // namespace elsa::serve
