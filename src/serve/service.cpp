#include "serve/service.hpp"

namespace elsa::serve {

PredictionService::PredictionService(const topo::Topology& topo,
                                     const core::OfflineModel& model,
                                     ServiceConfig cfg)
    : classifier_(&model.helo),
      unknown_tmpl_(static_cast<std::uint32_t>(
          std::max(model.helo.size(), model.profiles.size()))),
      ingest_(cfg.ingest_capacity),
      alarms_(cfg.alarm_capacity) {
  ShardOptions so;
  so.shards = cfg.shards;
  so.queue_capacity = cfg.shard_queue_capacity;
  so.batch = cfg.batch;
  so.drop_on_overflow = cfg.drop_on_overflow;
  sharded_ = std::make_unique<ShardedEngine>(
      topo, model.chains, model.profiles, cfg.engine, so, &metrics_,
      [this](const core::Prediction& p) {
        // Streaming view only; overflow is tolerated (merged list is the
        // canonical record).
        alarms_.offer(p);
      });
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

PredictionService::~PredictionService() {
  ingest_.close();
  if (dispatcher_.joinable()) dispatcher_.join();
}

std::uint32_t PredictionService::classify(std::string_view message) const {
  const std::uint32_t tid = classifier_->classify_const(message);
  return tid == helo::TemplateMiner::kNoTemplate ? unknown_tmpl_ : tid;
}

bool PredictionService::submit(const simlog::LogRecord& rec) {
  const Item item{rec.time_ms, rec.node_id, classify(rec.message),
                  ServeMetrics::Clock::now()};
  const std::size_t depth = ingest_.push(item);
  if (depth == 0) return false;  // closed
  metrics_.on_ingest(depth);
  return true;
}

bool PredictionService::try_submit(const simlog::LogRecord& rec) {
  const Item item{rec.time_ms, rec.node_id, classify(rec.message),
                  ServeMetrics::Clock::now()};
  const std::size_t depth = ingest_.offer(item);
  if (depth == 0) {
    metrics_.on_drop();
    return false;
  }
  metrics_.on_ingest(depth);
  return true;
}

void PredictionService::dispatcher_loop() {
  simlog::LogRecord rec;
  std::vector<Item> buf;
  while (ingest_.pop_all(buf)) {
    for (const Item& item : buf) {
      rec.time_ms = item.time_ms;
      rec.node_id = item.node_id;
      sharded_->feed(rec, item.tmpl, item.enq);
    }
    buf.clear();
    // Input went quiet: hand partial batches over now so a trickle-rate
    // feed pays at most one scheduling hop of extra latency, not a wait
    // for a batch to fill.
    if (ingest_.size() == 0) sharded_->flush();
  }
}

void PredictionService::finish(std::int64_t t_end_ms) {
  if (finished_) return;
  finished_ = true;
  ingest_.close();
  if (dispatcher_.joinable()) dispatcher_.join();
  sharded_->finish(t_end_ms);
  metrics_.stop();
}

std::size_t PredictionService::poll_alarms(std::vector<core::Prediction>& out) {
  std::size_t n = 0;
  while (auto p = alarms_.try_pop()) {
    out.push_back(std::move(*p));
    ++n;
  }
  return n;
}

}  // namespace elsa::serve
