#include "serve/service.hpp"

namespace elsa::serve {

PredictionService::PredictionService(const topo::Topology& topo,
                                     const core::OfflineModel& model,
                                     ServiceConfig cfg)
    : classifier_(&model.helo),
      unknown_tmpl_(static_cast<std::uint32_t>(
          std::max(model.helo.size(), model.profiles.size()))),
      total_nodes_(topo.total_nodes()),
      overflow_(cfg.overflow),
      validate_(cfg.validate),
      ingest_(cfg.ingest_capacity),
      alarms_(cfg.alarm_capacity) {
  ShardOptions so;
  so.shards = cfg.shards;
  so.queue_capacity = cfg.shard_queue_capacity;
  so.batch = cfg.batch;
  so.drop_on_overflow = cfg.drop_on_overflow;
  so.watchdog_interval_ms = cfg.watchdog_interval_ms;
  so.watchdog_deadline_ms = cfg.watchdog_deadline_ms;
  so.faults = cfg.faults;
  so.clock = cfg.clock;
  so.tap = cfg.tap;
  sharded_ = std::make_unique<ShardedEngine>(
      topo, model.chains, model.profiles, cfg.engine, so, &metrics_,
      [this](const core::Prediction& p) {
        // Streaming view only; overflow is tolerated (merged list is the
        // canonical record).
        alarms_.offer(p);
      });
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

PredictionService::~PredictionService() {
  ingest_.close();
  if (dispatcher_.joinable()) dispatcher_.join();
}

std::uint32_t PredictionService::classify(std::string_view message) const {
  const std::uint32_t tid = classifier_->classify_const(message);
  return tid == helo::TemplateMiner::kNoTemplate ? unknown_tmpl_ : tid;
}

bool PredictionService::valid(const simlog::LogRecord& rec) const {
  return rec.node_id >= -1 && rec.node_id < total_nodes_ && rec.time_ms >= 0;
}

SubmitResult PredictionService::submit_result(const simlog::LogRecord& rec,
                                              bool blocking) {
  if (validate_ && !valid(rec)) {
    metrics_.on_submit();
    metrics_.on_quarantine();
    {
      util::MutexLock lk(q_mu_);
      if (quarantine_.size() < kQuarantineSample) {
        quarantine_.push_back(rec);
      } else {
        quarantine_[q_next_] = rec;
        q_next_ = (q_next_ + 1) % kQuarantineSample;
      }
    }
    return SubmitResult::kQuarantined;
  }

  const Item item{rec.time_ms, rec.node_id, classify(rec.message),
                  ServeMetrics::Clock::now()};
  std::size_t depth = 0;
  if (blocking) {
    switch (overflow_) {
      case OverflowPolicy::kBlock:
        depth = ingest_.push(item);
        if (depth == 0) return SubmitResult::kClosed;
        break;
      case OverflowPolicy::kDropOldest: {
        bool evicted = false;
        depth = ingest_.push_evict(item, &evicted);
        if (depth == 0) return SubmitResult::kClosed;
        if (evicted) {
          // The displaced record was already counted ingested + in; it is
          // now a shed record, keeping conservation exact.
          metrics_.on_shed();
        }
        break;
      }
      case OverflowPolicy::kShed:
        depth = ingest_.offer(item);
        break;
    }
  } else {
    depth = ingest_.offer(item);
  }
  if (depth == 0) {
    // offer() cannot say whether it refused for "full" or "closed"; ask.
    // A closed service never counts the attempt (nothing downstream will
    // balance it); a full ring is a shed.
    if (ingest_.closed()) return SubmitResult::kClosed;
    metrics_.on_submit();
    metrics_.on_shed();
    return SubmitResult::kShed;
  }
  metrics_.on_submit();
  metrics_.on_ingest(depth);
  return SubmitResult::kQueued;
}

bool PredictionService::submit(const simlog::LogRecord& rec) {
  return submit_result(rec, /*blocking=*/true) != SubmitResult::kClosed;
}

bool PredictionService::try_submit(const simlog::LogRecord& rec) {
  return submit_result(rec, /*blocking=*/false) == SubmitResult::kQueued;
}

std::vector<simlog::LogRecord> PredictionService::quarantined_sample() const {
  util::MutexLock lk(q_mu_);
  std::vector<simlog::LogRecord> out;
  out.reserve(quarantine_.size());
  // Oldest-first: the ring overwrites at q_next_, so that slot is oldest.
  for (std::size_t i = 0; i < quarantine_.size(); ++i)
    out.push_back(quarantine_[(q_next_ + i) % quarantine_.size()]);
  return out;
}

void PredictionService::dispatcher_loop() {
  simlog::LogRecord rec;
  std::vector<Item> buf;
  while (ingest_.pop_all(buf)) {
    for (const Item& item : buf) {
      rec.time_ms = item.time_ms;
      rec.node_id = item.node_id;
      sharded_->feed(rec, item.tmpl, item.enq);
    }
    buf.clear();
    // Input went quiet: hand partial batches over now so a trickle-rate
    // feed pays at most one scheduling hop of extra latency, not a wait
    // for a batch to fill.
    if (ingest_.size() == 0) sharded_->flush();
  }
}

void PredictionService::finish(std::int64_t t_end_ms) {
  if (finished_) return;
  finished_ = true;
  ingest_.close();
  if (dispatcher_.joinable()) dispatcher_.join();
  sharded_->finish(t_end_ms);
  metrics_.stop();
}

std::size_t PredictionService::poll_alarms(std::vector<core::Prediction>& out) {
  std::size_t n = 0;
  while (auto p = alarms_.try_pop()) {
    out.push_back(std::move(*p));
    ++n;
  }
  return n;
}

}  // namespace elsa::serve
