// Trace replay: drives the serving layer the way a live syslog feed would.
//
// Streams a `simlog::Trace`'s records, in time order, at a configurable
// multiple of real time — 1.0 reproduces the original arrival cadence,
// 3600 compresses an hour into a second, and <= 0 means "as fast as
// possible" (the throughput-bench mode). Pacing uses absolute deadlines
// against a steady clock, so delivery cannot drift even when individual
// records are delayed by backpressure.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>

#include "simlog/record.hpp"

namespace elsa::faultinject {
class FaultInjector;
}

namespace elsa::serve {

class PredictionService;

struct ReplayOptions {
  /// Trace-time seconds delivered per wall-clock second; <= 0 replays as
  /// fast as possible.
  double speedup = 0.0;
  /// Only records with time_ms in [from_ms, until_ms) are delivered.
  std::int64_t from_ms = std::numeric_limits<std::int64_t>::min();
  std::int64_t until_ms = std::numeric_limits<std::int64_t>::max();
  /// Use the shedding submit path (try_submit) instead of blocking
  /// backpressure when driving a PredictionService.
  bool shed = false;
  /// On a shed result, re-submit up to this many times with doubling
  /// backoff (starting at retry_backoff_ms) before giving the record up.
  /// Each re-submission is counted in ServeMetrics::retries. 0 = give up
  /// immediately (the pre-PR-4 behaviour).
  int max_retries = 0;
  std::int64_t retry_backoff_ms = 1;
};

class TraceReplayer {
 public:
  /// The trace must outlive the replayer.
  TraceReplayer(const simlog::Trace& trace, ReplayOptions opt = {})
      : trace_(&trace), opt_(opt) {}

  /// Stream records into `sink`; a false return from the sink aborts the
  /// replay (e.g. the service was stopped). Blocks the calling thread for
  /// the paced duration. Returns records delivered (sink invocations).
  std::size_t replay(
      const std::function<bool(const simlog::LogRecord&)>& sink) const;

  /// Convenience: stream into a PredictionService (submit or try_submit
  /// per `opt.shed`; sheds retried per `opt.max_retries`). When `inject`
  /// is non-null every replayed record first passes through the fault
  /// injector, which may drop, duplicate, corrupt, reorder or skew it —
  /// the chaos-soak ingress path. Returns records accepted by the service.
  std::size_t replay_into(PredictionService& service,
                          faultinject::FaultInjector* inject = nullptr) const;

 private:
  const simlog::Trace* trace_;
  ReplayOptions opt_;
};

}  // namespace elsa::serve
