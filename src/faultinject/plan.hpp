// Deterministic fault plans: the schedule of injected failures a chaos run
// replays against the serving layer. A plan is (seed, specs); every
// stochastic decision an injector or a serve-side hook makes is derived
// from that pair plus a monotone record ordinal, so the same plan always
// produces the same fault schedule — chaos runs are reproducible bug
// reports, not dice rolls.
//
// Two families of faults:
//   * record-path faults (drop / duplicate / corrupt / reorder / skew) are
//     applied by `FaultInjector` to the ingest stream before it reaches the
//     service — they model a lossy, misbehaving transport;
//   * serve-side faults (stall a shard, fail a worker thread) are consulted
//     by the sharded engine's worker loops at exact per-shard record counts
//     — they model a sick analysis tier, and are what the watchdog and the
//     restart path are proven against.
//
// The text grammar (see `FaultPlan::grammar()`) is what `elsa chaos --plan`
// parses; the CI chaos-soak job drives every kind with fixed seeds.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace elsa::faultinject {

enum class FaultKind : std::uint8_t {
  kDrop,        ///< silently lose a record (rate)
  kDuplicate,   ///< deliver a record twice (rate)
  kCorrupt,     ///< structurally mangle a record (rate)
  kReorder,     ///< hold a record back `depth` arrivals (rate, depth)
  kSkew,        ///< perturb a record's timestamp by up to ±skew_ms (rate)
  kStallShard,  ///< sleep `stall_ms` in shard `shard` after record `at_record`
  kFailWorker,  ///< kill shard `shard`'s worker after record `at_record`
};

const char* to_string(FaultKind k);

struct FaultSpec {
  FaultKind kind = FaultKind::kDrop;
  double rate = 0.0;            ///< per-record probability (record faults)
  std::int64_t skew_ms = 0;     ///< max |timestamp perturbation| (kSkew)
  std::size_t depth = 8;        ///< hold-back distance in records (kReorder)
  std::size_t shard = 0;        ///< target shard (kStallShard / kFailWorker)
  std::uint64_t at_record = 0;  ///< shard-local processed count that triggers
  std::int64_t stall_ms = 0;    ///< stall duration (kStallShard)
};

class FaultPlan {
 public:
  /// The empty plan: no faults, and every consumer treats it as a strict
  /// pass-through (the byte-identical-output guarantee).
  FaultPlan() = default;
  FaultPlan(std::uint64_t seed, std::vector<FaultSpec> specs);

  /// Parse the `elsa chaos --plan` grammar; throws std::runtime_error with
  /// a pointer at the offending clause on malformed input. The word "all"
  /// expands to a canonical mix of every fault kind.
  static FaultPlan parse(const std::string& text, std::uint64_t seed);
  static const char* grammar();

  bool empty() const { return specs_.empty(); }
  std::uint64_t seed() const { return seed_; }
  const std::vector<FaultSpec>& specs() const { return specs_; }

  // -- serve-side hooks (const, callable from any worker thread) -----------
  /// Milliseconds shard `shard` must stall immediately after processing its
  /// `processed`-th record (exact match, so the stall fires exactly once);
  /// 0 when nothing is scheduled there.
  std::int64_t stall_ms_at(std::size_t shard, std::uint64_t processed) const;
  /// True when shard `shard`'s worker must die immediately after processing
  /// its `processed`-th record. Exact match: a restarted worker's counter
  /// has moved past the trigger, so the fault cannot re-fire in a loop.
  bool worker_fails_at(std::size_t shard, std::uint64_t processed) const;

  /// Canonical textual form (re-parseable); "<empty>" for the empty plan.
  std::string to_string() const;

 private:
  std::uint64_t seed_ = 0;
  std::vector<FaultSpec> specs_;
};

}  // namespace elsa::faultinject
