// FaultClock: the time authority the watchdog reads, made injectable so
// tests and chaos runs can bend it. Two modes:
//
//   * real (default)  — steady_clock plus a signed, atomically adjustable
//     offset. `advance()` with a negative delta produces a NON-monotone
//     reading, which is precisely the fault the serve path must survive
//     (the paper's systems see clock skew across service nodes; our
//     watchdog must clamp, not underflow or false-trip).
//   * manual          — starts at the epoch and moves only when advanced;
//     deterministic deadline tests drive it by hand instead of sleeping.
//
// `now()` is const and lock-free; any thread may read while another
// advances.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace elsa::faultinject {

class FaultClock {
 public:
  using Clock = std::chrono::steady_clock;
  using time_point = Clock::time_point;

  /// Real mode: tracks steady_clock until advanced.
  FaultClock() = default;

  /// Manual mode: starts at the epoch, moves only via advance().
  static FaultClock manual() { return FaultClock(true); }

  FaultClock(const FaultClock&) = delete;
  FaultClock& operator=(const FaultClock&) = delete;

  bool is_manual() const { return manual_; }

  time_point now() const {
    // relaxed: the offset is a standalone value; readers tolerate seeing
    // an adjustment late (the watchdog re-samples every interval anyway).
    const auto off =
        std::chrono::nanoseconds(offset_ns_.load(std::memory_order_relaxed));
    return manual_ ? time_point{} + off : Clock::now() + off;
  }

  /// Shift the clock by `d`. Negative deltas are allowed and meaningful:
  /// they make now() jump backwards (a skewed/non-monotone clock fault).
  void advance(std::chrono::nanoseconds d) {
    // relaxed: see now().
    offset_ns_.fetch_add(d.count(), std::memory_order_relaxed);
  }

 private:
  explicit FaultClock(bool manual) : manual_(manual) {}

  bool manual_ = false;
  // elsa-atomic: monotonic-relaxed — standalone skew accumulator; readers
  // never order other memory against it.
  std::atomic<std::int64_t> offset_ns_{0};
};

}  // namespace elsa::faultinject
