#include "faultinject/injector.hpp"

#include <limits>

namespace elsa::faultinject {

FaultInjector::FaultInjector(const FaultPlan& plan)
    : plan_(&plan), rng_(plan.seed() ^ 0xF4017B17ULL) {
  for (const FaultSpec& s : plan.specs()) {
    switch (s.kind) {
      case FaultKind::kDrop: drop_rate_ += s.rate; break;
      case FaultKind::kDuplicate: dup_rate_ += s.rate; break;
      case FaultKind::kCorrupt: corrupt_rate_ += s.rate; break;
      case FaultKind::kReorder:
        reorder_rate_ += s.rate;
        reorder_depth_ = s.depth;
        break;
      case FaultKind::kSkew:
        skew_rate_ += s.rate;
        skew_ms_ = s.skew_ms;
        break;
      case FaultKind::kStallShard:
      case FaultKind::kFailWorker:
        break;  // serve-side: consulted by the worker loops, not here
    }
  }
}

void FaultInjector::release_due(std::vector<simlog::LogRecord>& out) {
  std::size_t kept = 0;
  for (std::size_t i = 0; i < held_.size(); ++i) {
    if (held_[i].release_at <= stats_.seen) {
      out.push_back(std::move(held_[i].rec));
      ++stats_.delivered;
    } else {
      // Guard against self-move: a string self-move-assignment may clear
      // the record's message.
      if (kept != i) held_[kept] = std::move(held_[i]);
      ++kept;
    }
  }
  held_.resize(kept);
}

void FaultInjector::corrupt(simlog::LogRecord& rec) {
  // Three structural mangles, all of which the service validator must
  // quarantine: an impossible node id, a negative timestamp, and a node id
  // below the system-scope sentinel. Chosen by the seeded stream so the
  // mix is deterministic.
  switch (rng_.below(3)) {
    case 0:
      rec.node_id = std::numeric_limits<std::int32_t>::max();
      break;
    case 1:
      rec.time_ms = -1 - static_cast<std::int64_t>(rng_.below(1'000'000));
      break;
    default:
      rec.node_id = -2;
      break;
  }
}

void FaultInjector::ingest(const simlog::LogRecord& rec,
                           std::vector<simlog::LogRecord>& out) {
  ++stats_.seen;
  release_due(out);

  if (plan_->empty()) {  // strict pass-through: byte-identical downstream
    out.push_back(rec);
    ++stats_.delivered;
    return;
  }

  // Decision order is fixed (drop, skew, corrupt, reorder, duplicate) and
  // each configured kind consumes exactly one draw per record, so the
  // schedule depends only on (seed, arrival ordinal).
  if (drop_rate_ > 0.0 && rng_.bernoulli(drop_rate_)) {
    ++stats_.dropped;
    return;
  }

  simlog::LogRecord copy = rec;
  if (skew_rate_ > 0.0 && rng_.bernoulli(skew_rate_)) {
    copy.time_ms += rng_.range(-skew_ms_, skew_ms_);
    ++stats_.skewed;
  }
  if (corrupt_rate_ > 0.0 && rng_.bernoulli(corrupt_rate_)) {
    corrupt(copy);
    ++stats_.corrupted;
  }

  const bool dup = dup_rate_ > 0.0 && rng_.bernoulli(dup_rate_);
  if (reorder_rate_ > 0.0 && rng_.bernoulli(reorder_rate_)) {
    ++stats_.reordered;
    held_.push_back({std::move(copy), stats_.seen + reorder_depth_});
  } else {
    out.push_back(copy);
    ++stats_.delivered;
    if (dup) {
      out.push_back(std::move(copy));
      ++stats_.delivered;
      ++stats_.duplicated;
    }
  }
}

void FaultInjector::flush(std::vector<simlog::LogRecord>& out) {
  for (Held& h : held_) {
    out.push_back(std::move(h.rec));
    ++stats_.delivered;
  }
  held_.clear();
}

}  // namespace elsa::faultinject
