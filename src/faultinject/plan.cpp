#include "faultinject/plan.hpp"

#include <cstdio>
#include <stdexcept>

namespace elsa::faultinject {

namespace {

/// One clause of the plan grammar, split on ','.
std::vector<std::string> split_clauses(const std::string& text) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : text) {
    if (c == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else if (c != ' ') {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

[[noreturn]] void bad(const std::string& clause, const char* why) {
  throw std::runtime_error("fault plan clause '" + clause + "': " + why +
                           "\n" + FaultPlan::grammar());
}

double parse_rate(const std::string& clause, const std::string& s) {
  try {
    const double r = std::stod(s);
    if (r < 0.0 || r > 1.0) bad(clause, "rate must be in [0, 1]");
    return r;
  } catch (const std::runtime_error&) {
    throw;  // bad() above — already a well-formed plan error
  } catch (const std::exception&) {
    bad(clause, "expected a rate");
  }
}

std::int64_t parse_i64(const std::string& clause, const std::string& s) {
  try {
    return std::stoll(s);
  } catch (const std::exception&) {
    bad(clause, "expected an integer");
  }
}

/// The canonical every-kind mix that `--plan all` expands to: light record
/// corruption on every path, one mid-run stall and one worker kill.
std::vector<FaultSpec> all_kinds() {
  std::vector<FaultSpec> specs;
  specs.push_back({FaultKind::kDrop, 0.01, 0, 8, 0, 0, 0});
  specs.push_back({FaultKind::kDuplicate, 0.01, 0, 8, 0, 0, 0});
  specs.push_back({FaultKind::kCorrupt, 0.01, 0, 8, 0, 0, 0});
  specs.push_back({FaultKind::kReorder, 0.02, 0, 6, 0, 0, 0});
  specs.push_back({FaultKind::kSkew, 0.02, 120'000, 8, 0, 0, 0});
  specs.push_back({FaultKind::kStallShard, 0.0, 0, 8, 0, 2'000, 150});
  specs.push_back({FaultKind::kFailWorker, 0.0, 0, 8, 1, 3'000, 0});
  return specs;
}

}  // namespace

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kDrop: return "drop";
    case FaultKind::kDuplicate: return "dup";
    case FaultKind::kCorrupt: return "corrupt";
    case FaultKind::kReorder: return "reorder";
    case FaultKind::kSkew: return "skew";
    case FaultKind::kStallShard: return "stall";
    case FaultKind::kFailWorker: return "failworker";
  }
  return "?";
}

FaultPlan::FaultPlan(std::uint64_t seed, std::vector<FaultSpec> specs)
    : seed_(seed), specs_(std::move(specs)) {}

const char* FaultPlan::grammar() {
  return "plan   := \"all\" | fault (\",\" fault)*\n"
         "fault  := drop=RATE | dup=RATE | corrupt=RATE\n"
         "        | reorder=RATE[:DEPTH]      (hold back DEPTH arrivals)\n"
         "        | skew=RATE:MAX_MS          (timestamp +/- up to MAX_MS)\n"
         "        | stall=SHARD@RECORD:MS     (sleep MS in that worker)\n"
         "        | failworker=SHARD@RECORD   (kill that worker thread)";
}

FaultPlan FaultPlan::parse(const std::string& text, std::uint64_t seed) {
  if (text.empty() || text == "none") return FaultPlan(seed, {});
  if (text == "all") return FaultPlan(seed, all_kinds());

  std::vector<FaultSpec> specs;
  for (const std::string& clause : split_clauses(text)) {
    const std::size_t eq = clause.find('=');
    if (eq == std::string::npos) bad(clause, "expected name=value");
    const std::string name = clause.substr(0, eq);
    const std::string value = clause.substr(eq + 1);

    FaultSpec spec;
    if (name == "drop" || name == "dup" || name == "corrupt") {
      spec.kind = name == "drop"  ? FaultKind::kDrop
                  : name == "dup" ? FaultKind::kDuplicate
                                  : FaultKind::kCorrupt;
      spec.rate = parse_rate(clause, value);
    } else if (name == "reorder") {
      spec.kind = FaultKind::kReorder;
      const std::size_t colon = value.find(':');
      spec.rate = parse_rate(clause, value.substr(0, colon));
      if (colon != std::string::npos) {
        const std::int64_t d = parse_i64(clause, value.substr(colon + 1));
        if (d <= 0) bad(clause, "reorder depth must be positive");
        spec.depth = static_cast<std::size_t>(d);
      }
    } else if (name == "skew") {
      spec.kind = FaultKind::kSkew;
      const std::size_t colon = value.find(':');
      if (colon == std::string::npos) bad(clause, "skew needs RATE:MAX_MS");
      spec.rate = parse_rate(clause, value.substr(0, colon));
      spec.skew_ms = parse_i64(clause, value.substr(colon + 1));
      if (spec.skew_ms <= 0) bad(clause, "skew magnitude must be positive");
    } else if (name == "stall" || name == "failworker") {
      spec.kind = name == "stall" ? FaultKind::kStallShard
                                  : FaultKind::kFailWorker;
      const std::size_t at = value.find('@');
      if (at == std::string::npos) bad(clause, "expected SHARD@RECORD");
      const std::int64_t shard = parse_i64(clause, value.substr(0, at));
      if (shard < 0) bad(clause, "shard must be >= 0");
      spec.shard = static_cast<std::size_t>(shard);
      std::string rest = value.substr(at + 1);
      if (spec.kind == FaultKind::kStallShard) {
        const std::size_t colon = rest.find(':');
        if (colon == std::string::npos) bad(clause, "stall needs @RECORD:MS");
        spec.stall_ms = parse_i64(clause, rest.substr(colon + 1));
        if (spec.stall_ms <= 0) bad(clause, "stall duration must be positive");
        rest = rest.substr(0, colon);
      }
      const std::int64_t rec = parse_i64(clause, rest);
      if (rec <= 0) bad(clause, "trigger record must be >= 1");
      spec.at_record = static_cast<std::uint64_t>(rec);
    } else {
      bad(clause, "unknown fault kind");
    }
    specs.push_back(spec);
  }
  return FaultPlan(seed, std::move(specs));
}

std::int64_t FaultPlan::stall_ms_at(std::size_t shard,
                                    std::uint64_t processed) const {
  std::int64_t total = 0;
  for (const FaultSpec& s : specs_) {
    if (s.kind == FaultKind::kStallShard && s.shard == shard &&
        s.at_record == processed)
      total += s.stall_ms;
  }
  return total;
}

bool FaultPlan::worker_fails_at(std::size_t shard,
                                std::uint64_t processed) const {
  for (const FaultSpec& s : specs_) {
    if (s.kind == FaultKind::kFailWorker && s.shard == shard &&
        s.at_record == processed)
      return true;
  }
  return false;
}

std::string FaultPlan::to_string() const {
  if (specs_.empty()) return "<empty>";
  std::string out;
  char buf[96];
  for (const FaultSpec& s : specs_) {
    if (!out.empty()) out += ',';
    switch (s.kind) {
      case FaultKind::kDrop:
      case FaultKind::kDuplicate:
      case FaultKind::kCorrupt:
        std::snprintf(buf, sizeof buf, "%s=%g", faultinject::to_string(s.kind),
                      s.rate);
        break;
      case FaultKind::kReorder:
        std::snprintf(buf, sizeof buf, "reorder=%g:%zu", s.rate, s.depth);
        break;
      case FaultKind::kSkew:
        std::snprintf(buf, sizeof buf, "skew=%g:%lld", s.rate,
                      static_cast<long long>(s.skew_ms));
        break;
      case FaultKind::kStallShard:
        std::snprintf(buf, sizeof buf, "stall=%zu@%llu:%lld", s.shard,
                      static_cast<unsigned long long>(s.at_record),
                      static_cast<long long>(s.stall_ms));
        break;
      case FaultKind::kFailWorker:
        std::snprintf(buf, sizeof buf, "failworker=%zu@%llu", s.shard,
                      static_cast<unsigned long long>(s.at_record));
        break;
    }
    out += buf;
  }
  return out;
}

}  // namespace elsa::faultinject
