// FaultInjector: applies a FaultPlan's record-path faults to an ingest
// stream. Sits between a producer (trace replayer, syslog tap) and the
// PredictionService, transforming each arriving record into zero, one or
// more delivered records:
//
//   drop      — the record vanishes (counted);
//   duplicate — the record is delivered twice;
//   corrupt   — the record is delivered structurally mangled (out-of-range
//               node, negative timestamp) so the service's validator must
//               quarantine it rather than crash;
//   reorder   — the record is held back and released `depth` arrivals
//               later (flush() drains stragglers at end of stream);
//   skew      — the record's timestamp is perturbed by up to ±skew_ms,
//               exercising the engine's out-of-order clamping.
//
// Every decision draws from a private Rng seeded from the plan, keyed only
// to arrival order — two injectors built from the same plan emit identical
// streams for identical inputs (tested), which is what makes a chaos run a
// reproducible bug report. Not thread-safe: one injector per producer.
#pragma once

#include <cstdint>
#include <vector>

#include "faultinject/plan.hpp"
#include "simlog/record.hpp"
#include "util/rng.hpp"

namespace elsa::faultinject {

/// Injector-side accounting. After flush():
///   seen + duplicated == delivered + dropped   (conservation at the tap).
struct InjectStats {
  std::uint64_t seen = 0;        ///< records offered to ingest()
  std::uint64_t delivered = 0;   ///< records emitted downstream
  std::uint64_t dropped = 0;     ///< vanished by kDrop
  std::uint64_t duplicated = 0;  ///< extra copies emitted by kDuplicate
  std::uint64_t corrupted = 0;   ///< structurally mangled by kCorrupt
  std::uint64_t reordered = 0;   ///< held back by kReorder
  std::uint64_t skewed = 0;      ///< timestamps perturbed by kSkew
};

class FaultInjector {
 public:
  /// The plan must outlive the injector.
  explicit FaultInjector(const FaultPlan& plan);

  /// Transform one arriving record; deliverable records (possibly none,
  /// possibly several — duplicates and released held-back records) are
  /// appended to `out`.
  void ingest(const simlog::LogRecord& rec,
              std::vector<simlog::LogRecord>& out);

  /// End of stream: release every held-back record, in hold order.
  void flush(std::vector<simlog::LogRecord>& out);

  const InjectStats& stats() const { return stats_; }

 private:
  struct Held {
    simlog::LogRecord rec;
    std::uint64_t release_at = 0;  ///< stats_.seen value that frees it
  };

  void corrupt(simlog::LogRecord& rec);
  void release_due(std::vector<simlog::LogRecord>& out);

  const FaultPlan* plan_;
  util::Rng rng_;
  std::vector<Held> held_;
  InjectStats stats_;

  // Flattened per-kind parameters (0 rate = kind absent from the plan).
  double drop_rate_ = 0.0;
  double dup_rate_ = 0.0;
  double corrupt_rate_ = 0.0;
  double reorder_rate_ = 0.0;
  double skew_rate_ = 0.0;
  std::int64_t skew_ms_ = 0;
  std::size_t reorder_depth_ = 8;
};

}  // namespace elsa::faultinject
