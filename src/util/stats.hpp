// Small numeric-statistics toolkit shared by the signal modules and the
// evaluation harness. All functions are pure and operate on spans so they
// compose with both offline vectors and online ring buffers.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace elsa::util {

/// Arithmetic mean; 0 for an empty span.
double mean(std::span<const double> xs);

/// Unbiased sample variance (n-1 denominator); 0 for fewer than 2 points.
double variance(std::span<const double> xs);

/// Sample standard deviation.
double stddev(std::span<const double> xs);

/// Median by partial sort of a copy; 0 for an empty span. For even sizes
/// returns the mean of the two central order statistics.
double median(std::span<const double> xs);

/// Median absolute deviation around the median, the robust scale estimate
/// the outlier detector uses. Returns raw MAD (no 1.4826 normal-consistency
/// factor); callers that need sigma-equivalent scale multiply themselves.
double mad(std::span<const double> xs);

/// p-th percentile (p in [0,100]) with linear interpolation between order
/// statistics; 0 for an empty span.
double percentile(std::span<const double> xs, double p);

/// Pearson correlation coefficient; 0 when either side is constant.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Thread-safe log-gamma. glibc's lgamma(3) writes the process-global
/// `signgam` on every call — a data race whenever two pool workers compute
/// p-values concurrently (a real TSan hit in binomial_tail_pvalue, PR 1).
/// This is the project's only sanctioned log-gamma entry point; elsa-lint's
/// `banned-call` rule rejects direct std::lgamma use anywhere else.
double lgamma_mt(double x);

/// Exact binomial upper-tail p-value P(X >= k) for X ~ Binomial(n, p),
/// computed in log space. Used to judge whether an alignment count could
/// be coincidence given the chance hit probability.
double binomial_tail_pvalue(int n, int k, double p);

/// Running mean/variance accumulator (Welford). Suitable for the online
/// phase where signals are unbounded streams.
class RunningStats {
 public:
  void add(double x);
  void reset();

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Exact median over a sliding window via order-statistic maintenance.
/// The online outlier detector keeps one of these per signal; push() is
/// O(log W) amortised using an indexed multiset emulated with two heaps
/// would complicate removal, so we keep a sorted vector (W is a few
/// thousand samples at most and insertion is a memmove — cache friendly
/// and measurably faster than node-based structures at this size).
class SlidingMedian {
 public:
  explicit SlidingMedian(std::size_t window);

  /// Insert x, evicting the oldest sample once the window is full.
  void push(double x);

  bool full() const { return fifo_.size() == window_; }
  std::size_t size() const { return fifo_.size(); }
  std::size_t window() const { return window_; }

  /// Median of the current window contents; 0 when empty.
  double median() const;

  /// Robust scale (MAD) of the current window; 0 when empty. O(W log W);
  /// callers cache it per characterisation epoch rather than per sample.
  double mad() const;

  void clear();

 private:
  std::size_t window_;
  std::vector<double> fifo_;    // insertion order, for eviction
  std::vector<double> sorted_;  // value order, for order statistics
  std::size_t head_ = 0;        // index of oldest element in fifo_
  std::size_t count_ = 0;
};

}  // namespace elsa::util
