// String helpers shared by the log generator (message formatting) and the
// HELO template miner (tokenisation, wildcard matching).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace elsa::util {

/// Split on any of the given delimiter characters, dropping empty tokens.
std::vector<std::string> split(std::string_view s,
                               std::string_view delims = " \t");

/// Split preserving empty tokens (needed when message columns matter).
std::vector<std::string> split_keep_empty(std::string_view s, char delim);

std::string join(const std::vector<std::string>& parts,
                 std::string_view sep = " ");

std::string to_lower(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);

/// True if the token is entirely digits (possibly hex with 0x prefix),
/// a dotted decimal, or digit-dominated — HELO treats these as variables.
bool looks_numeric(std::string_view token);

/// Match a HELO-style template against a token list. Template tokens:
///   "*"  matches any single token;  "d+" matches a numeric token;
/// anything else must match exactly (case-sensitive).
bool template_matches(const std::vector<std::string>& tmpl_tokens,
                      const std::vector<std::string>& msg_tokens);

/// Render a duration in seconds as a compact human string ("54s", "9m",
/// "1.2h") for the report printers.
std::string human_duration(double seconds);

}  // namespace elsa::util
