// Bucketed counting used throughout the experiment harness: sequence-size
// distributions (Fig 5), delay distributions (Fig 6), propagation scopes
// (Fig 7) and per-category recall (Fig 9) all reduce to labelled histograms.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace elsa::util {

/// Histogram over explicit, contiguous numeric bin edges:
/// bins are [e0,e1), [e1,e2), ..., [e_{k-1}, +inf).
class EdgeHistogram {
 public:
  explicit EdgeHistogram(std::vector<double> edges);

  void add(double x, std::uint64_t weight = 1);

  std::size_t bins() const { return counts_.size(); }
  std::uint64_t count(std::size_t bin) const { return counts_.at(bin); }
  std::uint64_t total() const { return total_; }
  /// Fraction of mass in the bin; 0 if the histogram is empty.
  double fraction(std::size_t bin) const;
  /// Human-readable bin label such as "[10s, 1m)".
  std::string label(std::size_t bin,
                    const std::string& unit = "") const;
  double lower_edge(std::size_t bin) const { return edges_.at(bin); }

  /// Quantile estimate (q in [0, 1]) assuming mass is spread uniformly
  /// within each bin. Mass in the unbounded top bin reports that bin's
  /// lower edge — a deliberate under-estimate rather than a guess. 0 when
  /// the histogram is empty.
  double quantile(double q) const;

 private:
  std::vector<double> edges_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Histogram over string categories, insertion-ordered.
class CategoryHistogram {
 public:
  void add(const std::string& category, std::uint64_t weight = 1);

  std::size_t size() const { return names_.size(); }
  const std::string& name(std::size_t i) const { return names_.at(i); }
  std::uint64_t count(std::size_t i) const { return counts_.at(i); }
  std::uint64_t count(const std::string& category) const;
  std::uint64_t total() const { return total_; }
  double fraction(std::size_t i) const;
  double fraction(const std::string& category) const;

 private:
  std::vector<std::string> names_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace elsa::util
