#include "util/ascii.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

namespace elsa::util {

AsciiTable::AsciiTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void AsciiTable::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

void AsciiTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < std::min(row.size(), widths.size()); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      os << cell << std::string(widths[c] - cell.size() + 2, ' ');
    }
    os << '\n';
  };
  emit(header_);
  std::size_t rule = 0;
  for (std::size_t w : widths) rule += w + 2;
  os << std::string(rule, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

AsciiBarChart::AsciiBarChart(std::string title, std::size_t width)
    : title_(std::move(title)), width_(std::max<std::size_t>(8, width)) {}

void AsciiBarChart::add(std::string label, double value,
                        std::string annotation) {
  rows_.push_back({std::move(label), value, std::move(annotation)});
}

void AsciiBarChart::print(std::ostream& os) const {
  os << title_ << '\n';
  double maxv = 0.0;
  std::size_t label_w = 0;
  for (const auto& r : rows_) {
    maxv = std::max(maxv, r.value);
    label_w = std::max(label_w, r.label.size());
  }
  for (const auto& r : rows_) {
    const std::size_t len =
        maxv > 0.0 ? static_cast<std::size_t>(
                         std::lround(r.value / maxv * static_cast<double>(width_)))
                   : 0;
    os << "  " << r.label << std::string(label_w - r.label.size() + 1, ' ')
       << '|' << std::string(len, '#') << std::string(width_ - len, ' ')
       << "  " << r.annotation << '\n';
  }
}

std::string sparkline(const std::vector<double>& values, std::size_t max_width) {
  static const char* levels[] = {" ", ".", ":", "-", "=", "+", "*", "#"};
  if (values.empty()) return {};
  // Downsample by max-pooling so short bursts stay visible.
  const std::size_t n = values.size();
  const std::size_t w = std::min(max_width, n);
  std::vector<double> pooled(w, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t b = i * w / n;
    pooled[b] = std::max(pooled[b], values[i]);
  }
  const double maxv = *std::max_element(pooled.begin(), pooled.end());
  std::string out;
  for (double v : pooled) {
    const std::size_t lvl =
        maxv > 0.0 ? std::min<std::size_t>(
                         7, static_cast<std::size_t>(v / maxv * 7.999))
                   : 0;
    out += levels[lvl];
  }
  return out;
}

std::string format_pct(double fraction, int decimals) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

std::string format_double(double v, int decimals) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

}  // namespace elsa::util
