// Fixed-size worker pool with a blocking task queue plus a parallel_for
// helper. Used by the parallel variant of the gradual-itemset miner
// (the paper's future-work PGP-mc direction) and by the bulk signal
// extraction in the offline phase.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace elsa::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; the future resolves with its result (or exception).
  template <class F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lk(mu_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after stop");
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Statically-chunked parallel loop over [begin, end). `body(i)` must be
/// safe to call concurrently for distinct i. Falls back to a serial loop
/// when the range is small or the pool has one worker, so callers never
/// pay dispatch overhead on trivial inputs. Exceptions from any chunk are
/// rethrown on the calling thread (first one wins).
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t grain = 64);

}  // namespace elsa::util
