// Fixed-size worker pool with a blocking task queue plus a parallel_for
// helper. Used by the parallel variant of the gradual-itemset miner
// (the paper's future-work PGP-mc direction) and by the bulk signal
// extraction in the offline phase.
//
// The queue and stop flag are ELSA_GUARDED_BY(mu_); clang's thread-safety
// analysis proves every access happens under a MutexLock (see
// util/thread_annotations.hpp and DESIGN.md §9).
#pragma once

#include <cstddef>
#include <functional>
#include <future>
#include <queue>
#include <thread>
#include <vector>

#include "util/thread_annotations.hpp"

namespace elsa::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; the future resolves with its result (or exception).
  template <class F>
  std::future<std::invoke_result_t<F>> submit(F&& f) ELSA_EXCLUDES(mu_) {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      MutexLock lk(mu_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after stop");
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

 private:
  void worker_loop() ELSA_EXCLUDES(mu_);

  std::vector<std::thread> workers_;
  // Rank kThreadPool: submitted tasks run with the queue lock released, so
  // a task may take any lock; the queue lock itself only ever guards the
  // queue and is taken with higher-ranked caller locks (bench cache) held.
  mutable Mutex mu_{"util::ThreadPool::mu_", lockrank::kThreadPool};
  CondVar cv_;
  std::queue<std::function<void()>> queue_ ELSA_GUARDED_BY(mu_);
  bool stopping_ ELSA_GUARDED_BY(mu_) = false;
};

/// Statically-chunked parallel loop over [begin, end). `body(i)` must be
/// safe to call concurrently for distinct i. Falls back to a serial loop
/// when the range is small or the pool has one worker, so callers never
/// pay dispatch overhead on trivial inputs. Exceptions from any chunk are
/// rethrown on the calling thread (first one wins).
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t grain = 64);

}  // namespace elsa::util
