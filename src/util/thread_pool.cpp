#include "util/thread_pool.hpp"

#include <algorithm>

namespace elsa::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lk(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lk(mu_);
      while (!stopping_ && queue_.empty()) cv_.wait(mu_);
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t grain) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  if (pool.size() <= 1 || n <= grain) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  const std::size_t chunks =
      std::min(pool.size() * 4, (n + grain - 1) / grain);
  const std::size_t step = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futs;
  futs.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * step;
    if (lo >= end) break;
    const std::size_t hi = std::min(end, lo + step);
    futs.push_back(pool.submit([lo, hi, &body] {
      for (std::size_t i = lo; i < hi; ++i) body(i);
    }));
  }
  for (auto& f : futs) f.get();  // propagates the first exception
}

}  // namespace elsa::util
