#include "util/histogram.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace elsa::util {

EdgeHistogram::EdgeHistogram(std::vector<double> edges)
    : edges_(std::move(edges)) {
  if (edges_.empty()) throw std::invalid_argument("EdgeHistogram: no edges");
  if (!std::is_sorted(edges_.begin(), edges_.end()))
    throw std::invalid_argument("EdgeHistogram: edges must be sorted");
  counts_.assign(edges_.size(), 0);
}

void EdgeHistogram::add(double x, std::uint64_t weight) {
  if (x < edges_.front()) return;  // below-range mass is dropped by design
  const auto it = std::upper_bound(edges_.begin(), edges_.end(), x);
  const std::size_t bin = static_cast<std::size_t>(it - edges_.begin()) - 1;
  counts_[bin] += weight;
  total_ += weight;
}

double EdgeHistogram::quantile(double q) const {
  if (total_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double below = 0.0;
  for (std::size_t bin = 0; bin < counts_.size(); ++bin) {
    const double c = static_cast<double>(counts_[bin]);
    if (below + c >= target && c > 0.0) {
      if (bin + 1 >= edges_.size()) return edges_[bin];  // unbounded top bin
      const double frac = c > 0.0 ? (target - below) / c : 0.0;
      return edges_[bin] + frac * (edges_[bin + 1] - edges_[bin]);
    }
    below += c;
  }
  return edges_.back();
}

double EdgeHistogram::fraction(std::size_t bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_.at(bin)) / static_cast<double>(total_);
}

std::string EdgeHistogram::label(std::size_t bin, const std::string& unit) const {
  char buf[96];
  if (bin + 1 < edges_.size()) {
    std::snprintf(buf, sizeof buf, "[%g%s, %g%s)", edges_[bin], unit.c_str(),
                  edges_[bin + 1], unit.c_str());
  } else {
    std::snprintf(buf, sizeof buf, ">=%g%s", edges_[bin], unit.c_str());
  }
  return buf;
}

void CategoryHistogram::add(const std::string& category, std::uint64_t weight) {
  const auto it = std::find(names_.begin(), names_.end(), category);
  if (it == names_.end()) {
    names_.push_back(category);
    counts_.push_back(weight);
  } else {
    counts_[static_cast<std::size_t>(it - names_.begin())] += weight;
  }
  total_ += weight;
}

std::uint64_t CategoryHistogram::count(const std::string& category) const {
  const auto it = std::find(names_.begin(), names_.end(), category);
  if (it == names_.end()) return 0;
  return counts_[static_cast<std::size_t>(it - names_.begin())];
}

double CategoryHistogram::fraction(std::size_t i) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_.at(i)) / static_cast<double>(total_);
}

double CategoryHistogram::fraction(const std::string& category) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(category)) / static_cast<double>(total_);
}

}  // namespace elsa::util
