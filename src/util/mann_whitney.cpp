#include "util/mann_whitney.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace elsa::util {

double normal_cdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

MannWhitneyResult mann_whitney_u(std::span<const double> a,
                                 std::span<const double> b) {
  MannWhitneyResult r;
  const std::size_t n1 = a.size(), n2 = b.size();
  if (n1 == 0 || n2 == 0) return r;

  struct Tagged {
    double value;
    bool from_a;
  };
  std::vector<Tagged> all;
  all.reserve(n1 + n2);
  for (double x : a) all.push_back({x, true});
  for (double x : b) all.push_back({x, false});
  std::sort(all.begin(), all.end(),
            [](const Tagged& l, const Tagged& rr) { return l.value < rr.value; });

  // Midranks with tie bookkeeping for the variance correction.
  const std::size_t n = n1 + n2;
  double rank_sum_a = 0.0;
  double tie_term = 0.0;  // sum over tie groups of t^3 - t
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && all[j + 1].value == all[i].value) ++j;
    const double t = static_cast<double>(j - i + 1);
    const double midrank = 0.5 * (static_cast<double>(i + 1) + static_cast<double>(j + 1));
    for (std::size_t k = i; k <= j; ++k)
      if (all[k].from_a) rank_sum_a += midrank;
    if (t > 1.0) tie_term += t * t * t - t;
    i = j + 1;
  }

  const double dn1 = static_cast<double>(n1), dn2 = static_cast<double>(n2);
  const double dn = dn1 + dn2;
  const double u1 = rank_sum_a - dn1 * (dn1 + 1.0) / 2.0;
  r.u = u1;

  const double mu = dn1 * dn2 / 2.0;
  double sigma2 = dn1 * dn2 / 12.0 * ((dn + 1.0) - tie_term / (dn * (dn - 1.0)));
  if (sigma2 <= 0.0) {
    // All values tied: no evidence against H0 in either direction.
    return r;
  }
  const double sigma = std::sqrt(sigma2);
  // Continuity correction of 0.5 toward the mean.
  double z;
  if (u1 > mu)
    z = (u1 - 0.5 - mu) / sigma;
  else if (u1 < mu)
    z = (u1 + 0.5 - mu) / sigma;
  else
    z = 0.0;
  r.z = z;
  r.p_two_sided = 2.0 * (1.0 - normal_cdf(std::abs(z)));
  r.p_two_sided = std::min(1.0, r.p_two_sided);
  r.p_greater = 1.0 - normal_cdf((u1 - 0.5 - mu) / sigma);
  return r;
}

}  // namespace elsa::util
