// Clang thread-safety annotations and the annotated lock types built on
// them — the project's only sanctioned mutex surface (elsa-lint's
// `raw-mutex` rule bans `std::mutex` and friends everywhere else).
//
// Under `clang++ -Wthread-safety` every `ELSA_GUARDED_BY` field, every
// `ELSA_REQUIRES` contract and every `MutexLock` scope is checked at
// compile time: reading guarded state without the lock, releasing a lock
// twice, or forgetting a lock on one branch is a build error, not a TSan
// lottery ticket. Under gcc (which has no such analysis) the macros expand
// to nothing and the types degrade to thin zero-cost wrappers over the
// standard primitives, so the g++ -Werror build is unaffected.
//
// Conventions (see DESIGN.md §9):
//   * shared state guarded by a lock is declared `T x_ ELSA_GUARDED_BY(mu_);`
//   * public entry points that take the lock internally are `ELSA_EXCLUDES(mu_)`
//   * private helpers that expect the lock held are `ELSA_REQUIRES(mu_)`
//   * condition waits use explicit `while (!pred) cv_.wait(mu_);` loops —
//     predicate lambdas defeat the analysis (a lambda body is analysed as
//     a separate function that does not know the lock is held)
//
// Deadlock freedom (DESIGN.md §11) is checked from two sides:
//   * statically, elsa-lint's whole-project lock-graph pass proves the
//     acquisition order acyclic (rules lock-cycle, cv-wait-extra-lock,
//     blocking-under-lock);
//   * at runtime, every long-lived Mutex carries a *rank* from the
//     `lockrank` hierarchy below. When ELSA_ENFORCE_LOCK_RANKS is defined
//     (Debug builds, or -DELSA_LOCK_RANK_CHECKS=ON; sanitizer CI turns it
//     on) a thread-local held-lock stack aborts on the first acquisition
//     that is not strictly rank-decreasing, printing both mutex names and
//     both acquisition sites. In release builds the machinery — names,
//     ranks, the std::source_location default arguments — is compiled out
//     entirely and Mutex is the same thin wrapper it always was.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(ELSA_ENFORCE_LOCK_RANKS)
#include <cstdio>
#include <cstdlib>
#include <source_location>
#endif

#if defined(__clang__)
#define ELSA_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define ELSA_THREAD_ANNOTATION(x)
#endif

/// Marks a type as a lockable capability ("mutex" names it in diagnostics).
#define ELSA_CAPABILITY(x) ELSA_THREAD_ANNOTATION(capability(x))
/// Marks an RAII type whose lifetime acquires/releases a capability.
#define ELSA_SCOPED_CAPABILITY ELSA_THREAD_ANNOTATION(scoped_lockable)
/// Field may only be touched while holding the given capability.
#define ELSA_GUARDED_BY(x) ELSA_THREAD_ANNOTATION(guarded_by(x))
/// Pointee may only be touched while holding the given capability.
#define ELSA_PT_GUARDED_BY(x) ELSA_THREAD_ANNOTATION(pt_guarded_by(x))
/// Function acquires the capability (not held on entry, held on exit).
#define ELSA_ACQUIRE(...) ELSA_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// Function releases the capability (held on entry, not held on exit).
#define ELSA_RELEASE(...) ELSA_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// Function attempts acquisition; first arg is the success return value.
#define ELSA_TRY_ACQUIRE(...) \
  ELSA_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
/// Caller must hold the capability for the duration of the call.
#define ELSA_REQUIRES(...) ELSA_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Caller must NOT hold the capability (deadlock prevention).
#define ELSA_EXCLUDES(...) ELSA_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Runtime assertion that the capability is held (trusted by the analysis).
#define ELSA_ASSERT_CAPABILITY(x) ELSA_THREAD_ANNOTATION(assert_capability(x))
/// Escape hatch: skip analysis of this function's body. Use only inside the
/// annotated primitives themselves, with a comment saying why.
#define ELSA_NO_THREAD_SAFETY_ANALYSIS \
  ELSA_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace elsa::util {

class CondVar;

/// Project-wide lock hierarchy, highest (outermost) first. A thread may
/// only acquire a mutex of *strictly lower* rank than every ranked mutex
/// it already holds; two same-rank mutexes (e.g. two Rings) must never be
/// held together. The full table with per-level rules lives in DESIGN.md
/// §11; elsa-lint's lock-graph pass checks the same order statically.
namespace lockrank {
inline constexpr int kUnranked = -1;   ///< exempt from checking (tests, ad hoc)
inline constexpr int kBenchCache = 60; ///< benchx::ExperimentCache::mu_
inline constexpr int kService = 50;    ///< serve::PredictionService::q_mu_
inline constexpr int kAdvisor = 45;    ///< advisor::CheckpointAdvisor::mu_
inline constexpr int kEngine = 40;     ///< serve::ShardedEngine::wd_mu_
inline constexpr int kRing = 30;       ///< serve::Ring<T>::mu_
inline constexpr int kThreadPool = 20; ///< util::ThreadPool::mu_
inline constexpr int kMetrics = 10;    ///< serve::ServeMetrics::clock_mu_
inline constexpr int kLeaf = 0;        ///< util::lgamma_mt fallback serializer
}  // namespace lockrank

#if defined(ELSA_ENFORCE_LOCK_RANKS)
namespace rankcheck {

/// One acquisition on the current thread: enough to name both sides of an
/// inversion in the abort message.
struct Held {
  const void* mu = nullptr;
  const char* name = nullptr;
  int rank = lockrank::kUnranked;
  std::source_location site{};
};

/// Fixed-capacity per-thread stack — no allocation on the lock path, and
/// deep enough that overflowing it is itself a design smell worth a bang.
struct HeldStack {
  static constexpr int kMax = 32;
  Held held[kMax];
  int depth = 0;
};

inline HeldStack& tls() {
  static thread_local HeldStack s;
  return s;
}

[[noreturn]] inline void die_inversion(const Held& held, const char* name,
                                       int rank,
                                       const std::source_location& site) {
  std::fprintf(stderr,
               "elsa: lock-rank inversion: acquiring \"%s\" (rank %d) at "
               "%s:%u while holding \"%s\" (rank %d) acquired at %s:%u — "
               "ranks must strictly decrease (DESIGN.md §11)\n",
               name ? name : "<unranked>", rank, site.file_name(),
               static_cast<unsigned>(site.line()),
               held.name ? held.name : "<unranked>", held.rank,
               held.site.file_name(), static_cast<unsigned>(held.site.line()));
  std::abort();
}

[[noreturn]] inline void die_overflow(const char* name) {
  std::fprintf(stderr,
               "elsa: lock-rank: held-lock stack overflow acquiring \"%s\" "
               "(> %d locks on one thread)\n",
               name ? name : "<unranked>", HeldStack::kMax);
  std::abort();
}

}  // namespace rankcheck
#endif  // ELSA_ENFORCE_LOCK_RANKS

/// Annotated standard mutex. Non-recursive, non-timed — the only flavour
/// the codebase needs, and the analysis keeps it that way. The optional
/// (name, rank) constructor opts the mutex into runtime rank checking in
/// enforcing builds; in release builds both arguments are discarded at
/// compile time.
class ELSA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

#if defined(ELSA_ENFORCE_LOCK_RANKS)
  explicit Mutex(const char* name, int rank) : name_(name), rank_(rank) {}

  void lock(std::source_location site = std::source_location::current())
      ELSA_ACQUIRE() {
    rank_check(site);  // abort *before* blocking on an inverted order
    mu_.lock();
    rank_push(site);
  }
  void unlock() ELSA_RELEASE() {
    rank_pop();
    mu_.unlock();
  }
  bool try_lock(std::source_location site = std::source_location::current())
      ELSA_TRY_ACQUIRE(true) {
    // No order check: try_lock never blocks, so it cannot close a wait
    // cycle — but a success is still a hold the next lock() checks against.
    if (!mu_.try_lock()) return false;
    rank_push(site);
    return true;
  }
#else
  /// Release builds: name and rank are documentation carried in source
  /// only; the object stays a zero-cost wrapper over std::mutex.
  explicit Mutex(const char*, int) {}

  void lock() ELSA_ACQUIRE() { mu_.lock(); }
  void unlock() ELSA_RELEASE() { mu_.unlock(); }
  bool try_lock() ELSA_TRY_ACQUIRE(true) { return mu_.try_lock(); }
#endif

 private:
  friend class CondVar;  // wait() needs the native handle to suspend on
  std::mutex mu_;

#if defined(ELSA_ENFORCE_LOCK_RANKS)
  void rank_check(const std::source_location& site) const {
    if (rank_ == lockrank::kUnranked) return;
    const rankcheck::HeldStack& s = rankcheck::tls();
    for (int i = s.depth - 1; i >= 0; --i) {
      const rankcheck::Held& h = s.held[i];
      if (h.rank == lockrank::kUnranked) continue;
      if (h.rank <= rank_) rankcheck::die_inversion(h, name_, rank_, site);
    }
  }
  void rank_push(const std::source_location& site) const {
    rankcheck::HeldStack& s = rankcheck::tls();
    if (s.depth >= rankcheck::HeldStack::kMax) rankcheck::die_overflow(name_);
    s.held[s.depth++] = {this, name_, rank_, site};
  }
  void rank_pop() const {
    rankcheck::HeldStack& s = rankcheck::tls();
    // Unlock order can legally differ from lock order (early MutexLock
    // unlock under an outer lock): remove the topmost entry for *this*.
    for (int i = s.depth - 1; i >= 0; --i) {
      if (s.held[i].mu != this) continue;
      for (int j = i; j + 1 < s.depth; ++j) s.held[j] = s.held[j + 1];
      --s.depth;
      return;
    }
  }

  const char* name_ = nullptr;
  int rank_ = lockrank::kUnranked;
#endif
};

/// RAII lock with optional early release (so a caller can drop the lock
/// before notifying a condition variable). The analysis tracks the scope:
/// touching guarded state after `unlock()` is a compile error.
class ELSA_SCOPED_CAPABILITY MutexLock {
 public:
#if defined(ELSA_ENFORCE_LOCK_RANKS)
  /// The caller's file:line rides along as the acquisition site the rank
  /// checker prints on inversion; release builds have no such parameter.
  explicit MutexLock(Mutex& mu,
                     std::source_location site = std::source_location::current())
      ELSA_ACQUIRE(mu)
      : mu_(mu) {
    mu_.lock(site);
  }
#else
  explicit MutexLock(Mutex& mu) ELSA_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
#endif

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Release before scope end. Must not be called twice; the analysis
  /// enforces that at every call site.
  // Body analysis skipped: the held_ flag is this object's own bookkeeping,
  // invisible to the capability model.
  void unlock() ELSA_RELEASE() ELSA_NO_THREAD_SAFETY_ANALYSIS {
    mu_.unlock();
    held_ = false;
  }

  // Body analysis skipped: conditional release on held_ is correct by
  // construction but outside what the analysis can prove.
  ~MutexLock() ELSA_RELEASE() ELSA_NO_THREAD_SAFETY_ANALYSIS {
    if (held_) mu_.unlock();
  }

 private:
  Mutex& mu_;
  bool held_ = true;
};

/// Condition variable bound to the annotated Mutex. wait() demands the
/// lock via ELSA_REQUIRES, so a wait outside the critical section — the
/// classic lost-wakeup bug — no longer compiles under clang.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically release `mu`, sleep, and reacquire before returning.
  /// Spurious wakeups happen; always call in a `while (!pred)` loop.
  void wait(Mutex& mu) ELSA_REQUIRES(mu) {
    // Adopt the already-held native mutex for the duration of the wait and
    // release() it back so the unique_lock destructor leaves it locked —
    // ownership stays with the caller's MutexLock throughout.
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  /// Timed wait: release `mu`, sleep at most `d`, reacquire. Returns after
  /// a notify, the timeout, or a spurious wakeup — always recheck the
  /// predicate. The serve watchdog's pacing wait is the canonical user.
  template <class Rep, class Period>
  void wait_for(Mutex& mu, const std::chrono::duration<Rep, Period>& d)
      ELSA_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait_for(native, d);
    native.release();
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace elsa::util
