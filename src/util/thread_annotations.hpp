// Clang thread-safety annotations and the annotated lock types built on
// them — the project's only sanctioned mutex surface (elsa-lint's
// `raw-mutex` rule bans `std::mutex` and friends everywhere else).
//
// Under `clang++ -Wthread-safety` every `ELSA_GUARDED_BY` field, every
// `ELSA_REQUIRES` contract and every `MutexLock` scope is checked at
// compile time: reading guarded state without the lock, releasing a lock
// twice, or forgetting a lock on one branch is a build error, not a TSan
// lottery ticket. Under gcc (which has no such analysis) the macros expand
// to nothing and the types degrade to thin zero-cost wrappers over the
// standard primitives, so the g++ -Werror build is unaffected.
//
// Conventions (see DESIGN.md §9):
//   * shared state guarded by a lock is declared `T x_ ELSA_GUARDED_BY(mu_);`
//   * public entry points that take the lock internally are `ELSA_EXCLUDES(mu_)`
//   * private helpers that expect the lock held are `ELSA_REQUIRES(mu_)`
//   * condition waits use explicit `while (!pred) cv_.wait(mu_);` loops —
//     predicate lambdas defeat the analysis (a lambda body is analysed as
//     a separate function that does not know the lock is held)
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define ELSA_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define ELSA_THREAD_ANNOTATION(x)
#endif

/// Marks a type as a lockable capability ("mutex" names it in diagnostics).
#define ELSA_CAPABILITY(x) ELSA_THREAD_ANNOTATION(capability(x))
/// Marks an RAII type whose lifetime acquires/releases a capability.
#define ELSA_SCOPED_CAPABILITY ELSA_THREAD_ANNOTATION(scoped_lockable)
/// Field may only be touched while holding the given capability.
#define ELSA_GUARDED_BY(x) ELSA_THREAD_ANNOTATION(guarded_by(x))
/// Pointee may only be touched while holding the given capability.
#define ELSA_PT_GUARDED_BY(x) ELSA_THREAD_ANNOTATION(pt_guarded_by(x))
/// Function acquires the capability (not held on entry, held on exit).
#define ELSA_ACQUIRE(...) ELSA_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// Function releases the capability (held on entry, not held on exit).
#define ELSA_RELEASE(...) ELSA_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// Function attempts acquisition; first arg is the success return value.
#define ELSA_TRY_ACQUIRE(...) \
  ELSA_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
/// Caller must hold the capability for the duration of the call.
#define ELSA_REQUIRES(...) ELSA_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Caller must NOT hold the capability (deadlock prevention).
#define ELSA_EXCLUDES(...) ELSA_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Runtime assertion that the capability is held (trusted by the analysis).
#define ELSA_ASSERT_CAPABILITY(x) ELSA_THREAD_ANNOTATION(assert_capability(x))
/// Escape hatch: skip analysis of this function's body. Use only inside the
/// annotated primitives themselves, with a comment saying why.
#define ELSA_NO_THREAD_SAFETY_ANALYSIS \
  ELSA_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace elsa::util {

class CondVar;

/// Annotated standard mutex. Non-recursive, non-timed — the only flavour
/// the codebase needs, and the analysis keeps it that way.
class ELSA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ELSA_ACQUIRE() { mu_.lock(); }
  void unlock() ELSA_RELEASE() { mu_.unlock(); }
  bool try_lock() ELSA_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;  // wait() needs the native handle to suspend on
  std::mutex mu_;
};

/// RAII lock with optional early release (so a caller can drop the lock
/// before notifying a condition variable). The analysis tracks the scope:
/// touching guarded state after `unlock()` is a compile error.
class ELSA_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ELSA_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Release before scope end. Must not be called twice; the analysis
  /// enforces that at every call site.
  // Body analysis skipped: the held_ flag is this object's own bookkeeping,
  // invisible to the capability model.
  void unlock() ELSA_RELEASE() ELSA_NO_THREAD_SAFETY_ANALYSIS {
    mu_.unlock();
    held_ = false;
  }

  // Body analysis skipped: conditional release on held_ is correct by
  // construction but outside what the analysis can prove.
  ~MutexLock() ELSA_RELEASE() ELSA_NO_THREAD_SAFETY_ANALYSIS {
    if (held_) mu_.unlock();
  }

 private:
  Mutex& mu_;
  bool held_ = true;
};

/// Condition variable bound to the annotated Mutex. wait() demands the
/// lock via ELSA_REQUIRES, so a wait outside the critical section — the
/// classic lost-wakeup bug — no longer compiles under clang.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically release `mu`, sleep, and reacquire before returning.
  /// Spurious wakeups happen; always call in a `while (!pred)` loop.
  void wait(Mutex& mu) ELSA_REQUIRES(mu) {
    // Adopt the already-held native mutex for the duration of the wait and
    // release() it back so the unique_lock destructor leaves it locked —
    // ownership stays with the caller's MutexLock throughout.
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  /// Timed wait: release `mu`, sleep at most `d`, reacquire. Returns after
  /// a notify, the timeout, or a spurious wakeup — always recheck the
  /// predicate. The serve watchdog's pacing wait is the canonical user.
  template <class Rep, class Period>
  void wait_for(Mutex& mu, const std::chrono::duration<Rep, Period>& d)
      ELSA_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait_for(native, d);
    native.release();
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace elsa::util
