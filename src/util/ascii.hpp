// Terminal renderers for the reproduction reports: aligned tables for the
// paper's Tables I–IV and horizontal bar charts for its figures. Every
// bench binary prints its table/figure through these so outputs share one
// visual language.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace elsa::util {

/// Column-aligned ASCII table with a header row and a rule line.
class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  /// Render with two-space column gaps; rows shorter than the header are
  /// padded with empty cells.
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Horizontal bar chart: one labelled row per value, bar scaled to the
/// maximum. Used to render the paper's distribution figures in text form.
class AsciiBarChart {
 public:
  explicit AsciiBarChart(std::string title, std::size_t width = 50);

  void add(std::string label, double value, std::string annotation = "");
  void print(std::ostream& os) const;

 private:
  std::string title_;
  std::size_t width_;
  struct Row {
    std::string label;
    double value;
    std::string annotation;
  };
  std::vector<Row> rows_;
};

/// Sparkline-style rendering of a numeric series (one char per sample,
/// eight vertical levels); used to show signals à la paper Fig 1/3.
std::string sparkline(const std::vector<double>& values,
                      std::size_t max_width = 100);

std::string format_pct(double fraction, int decimals = 1);
std::string format_double(double v, int decimals = 2);

}  // namespace elsa::util
