// Deterministic, fast pseudo-random generation for the simulator and the
// synthetic workloads. Every stochastic component in this repository draws
// from an explicitly seeded Rng so experiments are exactly reproducible.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <numbers>

namespace elsa::util {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain), wrapped with the
/// handful of distributions the simulator needs. Not cryptographic; chosen
/// for speed, tiny state, and exact cross-platform reproducibility (unlike
/// std::*_distribution, whose output is implementation-defined).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initialise the state from a 64-bit seed via splitmix64 so that
  /// nearby seeds yield uncorrelated streams.
  void reseed(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t below(std::uint64_t n) {
    // Lemire's nearly-divisionless bounded generation.
    const __uint128_t m =
        static_cast<__uint128_t>(next_u64()) * static_cast<__uint128_t>(n);
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  bool bernoulli(double p) { return uniform() < p; }

  /// Exponential with the given mean (= 1/rate). Used for failure
  /// inter-arrival times, matching the paper's exponential failure model.
  double exponential(double mean) {
    double u = uniform();
    if (u <= 0.0) u = std::numeric_limits<double>::min();
    return -mean * std::log(u);
  }

  /// Standard normal via Box–Muller (cached second variate not kept to
  /// preserve simple state semantics).
  double normal() {
    double u1 = uniform();
    if (u1 <= 0.0) u1 = std::numeric_limits<double>::min();
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * std::numbers::pi * u2);
  }

  double normal(double mean, double sigma) { return mean + sigma * normal(); }

  /// Poisson-distributed count. Knuth's product method for small means,
  /// normal approximation above 64 (entirely adequate for message counts).
  std::uint64_t poisson(double mean) {
    if (mean <= 0.0) return 0;
    if (mean > 64.0) {
      const double v = std::round(normal(mean, std::sqrt(mean)));
      return v < 0.0 ? 0 : static_cast<std::uint64_t>(v);
    }
    const double limit = std::exp(-mean);
    std::uint64_t k = 0;
    double prod = uniform();
    while (prod > limit) {
      ++k;
      prod *= uniform();
    }
    return k;
  }

  /// Fork an independent stream; child streams are decorrelated via
  /// splitmix64 over the parent's next output.
  Rng fork() { return Rng(next_u64() ^ 0xd1b54a32d192ed03ULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4]{};
};

}  // namespace elsa::util
