// Deterministic interleaving explorer: the dynamic half of the lock-free
// auditing layer (the static half is elsa-lint's atomics-protocol pass,
// tools/lint_rules.cpp — see DESIGN.md §15).
//
// The production contract is a single hook, util::sched_point(). Lock-free
// structures (serve::SpscRing, advisor::SpscRing, serve::StripedCounter)
// call it immediately before every atomic access. Outside the harness it
// compiles to an empty inline function — zero code after inlining, so the
// serve hot path is untouched (the bench guard in ISSUE 8 holds by
// construction). Under ELSA_INTERLEAVE_HARNESS the hook becomes a yield
// point of a cooperative virtual-thread scheduler, which turns every
// atomic access into a schedule decision the explorer controls:
//
//   * Virtual threads are real std::threads, but exactly one runs at a
//     time: a token (Engine::running_) is handed from the scheduler to one
//     thread and back at each sched_point(). All hand-offs go through one
//     util::Mutex + CondVar, so the exploration itself is data-race-free
//     (TSan-clean) and — because the only scheduling nondeterminism is the
//     Decider's choice — the same decision sequence replays the same
//     execution, bit for bit.
//   * Deciders: RandomDecider (seeded xoshiro256** random walk — same seed,
//     same schedule), ExhaustiveDecider (depth-first enumeration of every
//     schedule within a preemption bound, CHESS-style: continuing the
//     running thread is free, switching away from a still-runnable thread
//     spends one preemption), ReplayDecider (re-run a recorded trace; the
//     failure reproducer).
//   * A body that spins forever under a hostile schedule (e.g. a blocking
//     push whose consumer is never scheduled) is cut off at max_steps: the
//     engine flips to free-running mode (yields become no-ops, real
//     concurrency finishes the trial) and the schedule is counted in
//     Result::diverged. Exhaustive suites should therefore use only
//     non-blocking operations, whose bodies terminate under every schedule.
//
// ODR warning: sched_point() is an inline function whose body differs with
// ELSA_INTERLEAVE_HARNESS. A binary must be all-harness or all-production:
// tests/test_interleave.cpp links only GTest (never elsa_core/elsa_serve),
// and every structure it explores is header-only, so the two definitions
// never meet in one link. Keep it that way.
#pragma once

#if defined(ELSA_INTERLEAVE_HARNESS)
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <unordered_set>
#include <utility>
#include <vector>

#include "util/rng.hpp"
#include "util/thread_annotations.hpp"
#endif

namespace elsa::util {

#if !defined(ELSA_INTERLEAVE_HARNESS)

/// Production build: scheduling hook compiles away entirely.
inline void sched_point() {}

#else

namespace interleave {

/// Scheduling strategy: given the ids of the virtual threads that have not
/// yet finished, the id that ran the previous step (-1 at step 0), and the
/// step index, choose who runs next. Called with the engine lock held; must
/// be pure computation.
class Decider {
 public:
  virtual ~Decider() = default;
  virtual int pick(const std::vector<int>& enabled, int prev,
                   std::size_t step) = 0;
};

/// Seeded random walk. Deterministic: the same seed yields the same
/// schedule for the same (deterministic) trial bodies.
class RandomDecider final : public Decider {
 public:
  explicit RandomDecider(std::uint64_t seed) : rng_(seed) {}
  int pick(const std::vector<int>& enabled, int /*prev*/,
           std::size_t /*step*/) override {
    return enabled[static_cast<std::size_t>(rng_.below(enabled.size()))];
  }

 private:
  util::Rng rng_;
};

/// Re-run a recorded trace. Past the end of the trace (or if the trace
/// names a finished thread — only possible for a nondeterministic trial)
/// it falls back to the exhaustive default policy: continue the previous
/// thread, else the lowest-numbered enabled one.
class ReplayDecider final : public Decider {
 public:
  explicit ReplayDecider(std::vector<int> trace) : trace_(std::move(trace)) {}
  int pick(const std::vector<int>& enabled, int prev,
           std::size_t step) override {
    if (step < trace_.size()) {
      for (int id : enabled)
        if (id == trace_[step]) return id;
    }
    for (int id : enabled)
      if (id == prev) return id;
    return enabled.front();
  }

 private:
  std::vector<int> trace_;
};

/// Depth-first enumeration of every schedule within a preemption bound
/// (CHESS-style iterative context bounding). One instance persists across
/// runs: each run replays the prefix chosen by the last advance() and then
/// extends it with the default policy (keep running the current thread;
/// when it finishes, the lowest-numbered enabled one — forced switches are
/// free). advance() backtracks to the deepest decision with an untried
/// alternative whose preemption cost still fits the bound; false means the
/// bounded schedule space is exhausted.
class ExhaustiveDecider final : public Decider {
 public:
  explicit ExhaustiveDecider(std::size_t preemption_bound)
      : bound_(preemption_bound) {}

  int pick(const std::vector<int>& enabled, int prev,
           std::size_t step) override {
    if (step < stack_.size()) {
      // Replaying the committed prefix. The trial is deterministic, so the
      // recorded choice is enabled; fall back defensively if not.
      const int want = stack_[step].chosen;
      for (int id : enabled)
        if (id == want) return id;
    } else {
      Node node;
      node.enabled = enabled;
      node.prev = prev;
      node.chosen = default_of(node);
      // The default continuation never spends a preemption: either it
      // continues `prev`, or `prev` just finished and the switch is forced.
      node.preempts = stack_.empty() ? 0 : stack_.back().preempts;
      stack_.push_back(std::move(node));
      return stack_.back().chosen;
    }
    for (int id : enabled)
      if (id == prev) return id;
    return enabled.front();
  }

  /// Move to the next unexplored schedule prefix. False when done.
  bool advance() {
    while (!stack_.empty()) {
      Node& node = stack_.back();
      const std::size_t before =
          stack_.size() >= 2 ? stack_[stack_.size() - 2].preempts : 0;
      const int def = default_of(node);
      bool prev_enabled = false;
      for (int id : node.enabled)
        if (id == node.prev) prev_enabled = true;
      while (node.tried < node.enabled.size()) {
        const int cand = node.enabled[node.tried++];
        if (cand == def) continue;  // the default was run when first visited
        const bool preempt =
            node.prev != -1 && prev_enabled && cand != node.prev;
        if (preempt && before + 1 > bound_) continue;
        node.chosen = cand;
        node.preempts = before + (preempt ? 1 : 0);
        return true;
      }
      stack_.pop_back();
    }
    return false;
  }

 private:
  struct Node {
    std::vector<int> enabled;
    int prev = -1;
    int chosen = -1;
    std::size_t tried = 0;     ///< alternatives consumed, in enabled order
    std::size_t preempts = 0;  ///< preemptions spent up to and incl. chosen
  };

  static int default_of(const Node& node) {
    for (int id : node.enabled)
      if (id == node.prev) return id;
    return node.enabled.front();
  }

  std::size_t bound_;
  std::vector<Node> stack_;
};

/// The cooperative scheduler for one trial execution. Registered bodies run
/// on real threads, serialized by a hand-off token: exactly one body makes
/// progress at a time, and control returns to the scheduler at every
/// sched_point() the body reaches.
class Engine {
 public:
  explicit Engine(Decider& decider) : decider_(decider) {}
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  void add(std::function<void()> body) { bodies_.push_back(std::move(body)); }

  struct RunResult {
    std::vector<int> trace;  ///< thread id chosen at each step
    bool diverged = false;   ///< hit max_steps; finished in free-run mode
  };

  RunResult run(std::size_t max_steps) {
    const int n = static_cast<int>(bodies_.size());
    RunResult out;
    {
      util::MutexLock lk(mu_);
      finished_.assign(static_cast<std::size_t>(n), 0);
      running_ = kScheduler;
      free_run_ = false;
    }
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(n));
    for (int id = 0; id < n; ++id)
      threads.emplace_back([this, id] { thread_main(id); });
    {
      util::MutexLock lk(mu_);
      int prev = -1;
      std::vector<int> enabled;
      for (;;) {
        enabled.clear();
        for (int id = 0; id < n; ++id)
          if (finished_[static_cast<std::size_t>(id)] == 0)
            enabled.push_back(id);
        if (enabled.empty()) break;
        if (out.trace.size() >= max_steps) {
          out.diverged = true;
          free_run_ = true;  // let the survivors finish natively
          cv_.notify_all();
          break;
        }
        const int next = decider_.pick(enabled, prev, out.trace.size());
        out.trace.push_back(next);
        prev = next;
        running_ = next;
        cv_.notify_all();
        while (running_ != kScheduler) cv_.wait(mu_);
      }
    }
    for (auto& t : threads) t.join();
    return out;
  }

  /// Called (via sched_point) by the running virtual thread: hand the token
  /// back and sleep until scheduled again.
  void yield(int id) {
    util::MutexLock lk(mu_);
    if (free_run_) return;
    running_ = kScheduler;
    cv_.notify_all();
    while (running_ != id && !free_run_) cv_.wait(mu_);
  }

 private:
  static constexpr int kScheduler = -1;

  void thread_main(int id);  // defined after the thread-local hooks below

  Decider& decider_;
  std::vector<std::function<void()>> bodies_;
  util::Mutex mu_;
  util::CondVar cv_;
  int running_ ELSA_GUARDED_BY(mu_) = kScheduler;
  bool free_run_ ELSA_GUARDED_BY(mu_) = false;
  std::vector<char> finished_ ELSA_GUARDED_BY(mu_);
};

namespace detail {
/// Identity of the current virtual thread; null/-1 on ordinary threads
/// (including the controlling thread that runs setup and checks), which
/// makes their sched_point() calls no-ops.
inline thread_local Engine* g_engine = nullptr;
inline thread_local int g_vthread = -1;
}  // namespace detail

inline void Engine::thread_main(int id) {
  detail::g_engine = this;
  detail::g_vthread = id;
  {
    util::MutexLock lk(mu_);
    while (running_ != id && !free_run_) cv_.wait(mu_);
  }
  bodies_[static_cast<std::size_t>(id)]();
  {
    util::MutexLock lk(mu_);
    finished_[static_cast<std::size_t>(id)] = 1;
    running_ = kScheduler;
    cv_.notify_all();
  }
  detail::g_engine = nullptr;
  detail::g_vthread = -1;
}

/// One schedule-exploration trial: register the concurrent bodies and the
/// invariant checks the driver runs (on the controlling thread) after all
/// bodies have joined. A check returns "" when the invariant holds, else a
/// description of the violation.
struct Trial {
  void thread(std::function<void()> body) {
    bodies.push_back(std::move(body));
  }
  void check(std::function<std::string()> inv) {
    checks.push_back(std::move(inv));
  }
  std::vector<std::function<void()>> bodies;
  std::vector<std::function<std::string()>> checks;
};

/// Trial factory: called once per schedule so every execution starts from
/// fresh state (capture shared structures in shared_ptrs inside the setup).
using Setup = std::function<void(Trial&)>;

struct Options {
  std::size_t max_steps = 50000;      ///< divergence cutoff per schedule
  std::size_t preemption_bound = 2;   ///< exhaustive mode only
  std::size_t max_schedules = 20000;  ///< exhaustive enumeration cap
};

struct Result {
  std::size_t schedules = 0;  ///< schedules executed
  std::size_t distinct = 0;   ///< distinct traces observed (FNV-1a hashed)
  std::size_t diverged = 0;   ///< schedules cut off at max_steps
  bool exhausted = false;     ///< exhaustive: bounded space fully covered
  bool failed = false;
  std::string failure;         ///< first check's violation message
  std::uint64_t fail_seed = 0;  ///< per-round seed of the failing schedule
  std::size_t fail_round = 0;
  std::vector<int> fail_trace;  ///< replayable via interleave::replay()

  /// The reproducer line a failing test prints: feed fail_trace back
  /// through replay() (or re-run explore_random with fail_seed, 1 round).
  std::string replay_line() const {
    std::string s = "interleave replay: seed=" + std::to_string(fail_seed) +
                    " round=" + std::to_string(fail_round) + " trace=";
    for (std::size_t i = 0; i < fail_trace.size(); ++i) {
      if (i != 0) s += ',';
      s += std::to_string(fail_trace[i]);
    }
    return s;
  }
};

inline std::uint64_t hash_trace(const std::vector<int>& trace) {
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a offset basis
  for (int v : trace) {
    h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(v));
    h *= 1099511628211ULL;
  }
  return h;
}

/// Decorrelate per-round seeds from the suite seed (splitmix64 step), so
/// round r is reproducible in isolation: explore_random(setup, seed, r+1)
/// and a 1-round run with the derived seed agree on schedule r.
inline std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t round) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (round + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace detail {
struct RunOutcome {
  std::vector<int> trace;
  bool diverged = false;
  std::string failure;
};

inline RunOutcome run_one(const Setup& setup, Decider& decider,
                          std::size_t max_steps) {
  Trial trial;
  setup(trial);
  Engine engine(decider);
  for (auto& body : trial.bodies) engine.add(std::move(body));
  Engine::RunResult r = engine.run(max_steps);
  RunOutcome out;
  out.trace = std::move(r.trace);
  out.diverged = r.diverged;
  for (const auto& check : trial.checks) {
    std::string msg = check();
    if (!msg.empty()) {
      out.failure = std::move(msg);
      break;
    }
  }
  return out;
}
}  // namespace detail

/// Seeded random walk over `rounds` schedules. Stops at the first failing
/// schedule (recorded as a replayable seed + trace).
inline Result explore_random(const Setup& setup, std::uint64_t seed,
                             std::size_t rounds, Options opt = {}) {
  Result res;
  std::unordered_set<std::uint64_t> seen;
  for (std::size_t round = 0; round < rounds; ++round) {
    const std::uint64_t rseed = mix_seed(seed, round);
    RandomDecider decider(rseed);
    detail::RunOutcome out = detail::run_one(setup, decider, opt.max_steps);
    ++res.schedules;
    if (out.diverged) ++res.diverged;
    seen.insert(hash_trace(out.trace));
    if (!out.failure.empty()) {
      res.failed = true;
      res.failure = std::move(out.failure);
      res.fail_seed = rseed;
      res.fail_round = round;
      res.fail_trace = std::move(out.trace);
      break;
    }
  }
  res.distinct = seen.size();
  return res;
}

/// Bounded-exhaustive enumeration: every schedule reachable with at most
/// opt.preemption_bound preemptions, up to opt.max_schedules. Use only
/// with non-blocking trial bodies (see the divergence note in the file
/// comment).
inline Result explore_exhaustive(const Setup& setup, Options opt = {}) {
  Result res;
  std::unordered_set<std::uint64_t> seen;
  ExhaustiveDecider decider(opt.preemption_bound);
  for (;;) {
    if (res.schedules >= opt.max_schedules) break;
    detail::RunOutcome out = detail::run_one(setup, decider, opt.max_steps);
    ++res.schedules;
    if (out.diverged) ++res.diverged;
    seen.insert(hash_trace(out.trace));
    if (!out.failure.empty()) {
      res.failed = true;
      res.failure = std::move(out.failure);
      res.fail_round = res.schedules - 1;
      res.fail_trace = std::move(out.trace);
      break;
    }
    if (!decider.advance()) {
      res.exhausted = true;
      break;
    }
  }
  res.distinct = seen.size();
  return res;
}

/// Re-execute one recorded schedule (a Result::fail_trace). Returns the
/// single-schedule Result so the caller can assert the failure reproduces.
inline Result replay(const Setup& setup, const std::vector<int>& trace,
                     Options opt = {}) {
  Result res;
  ReplayDecider decider(trace);
  detail::RunOutcome out = detail::run_one(setup, decider, opt.max_steps);
  res.schedules = 1;
  res.distinct = 1;
  if (out.diverged) res.diverged = 1;
  res.fail_trace = std::move(out.trace);
  if (!out.failure.empty()) {
    res.failed = true;
    res.failure = std::move(out.failure);
  }
  return res;
}

}  // namespace interleave

/// Harness build: yield the virtual-thread token at this atomic access.
/// No-op on threads the explorer does not control.
inline void sched_point() {
  interleave::Engine* engine = interleave::detail::g_engine;
  if (engine != nullptr) engine->yield(interleave::detail::g_vthread);
}

#endif  // ELSA_INTERLEAVE_HARNESS

}  // namespace elsa::util
