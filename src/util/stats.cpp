#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/thread_annotations.hpp"

namespace elsa::util {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

namespace {
double median_inplace(std::vector<double>& v) {
  if (v.empty()) return 0.0;
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid), v.end());
  double hi = v[mid];
  if (v.size() % 2 == 1) return hi;
  const auto lo_it = std::max_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (*lo_it + hi);
}
}  // namespace

double median(std::span<const double> xs) {
  std::vector<double> v(xs.begin(), xs.end());
  return median_inplace(v);
}

double mad(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  const double m = median(xs);
  std::vector<double> dev(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) dev[i] = std::abs(xs[i] - m);
  return median_inplace(dev);
}

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return v[lo] + frac * (v[hi] - v[lo]);
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  const std::size_t n = std::min(xs.size(), ys.size());
  if (n < 2) return 0.0;
  const double mx = mean(xs.subspan(0, n));
  const double my = mean(ys.subspan(0, n));
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double lgamma_mt(double x) {
#if defined(__GLIBC__) || defined(__linux__) || defined(__APPLE__)
  // The reentrant variant takes the sign out-parameter instead of writing
  // the global `signgam`.
  int sign;
  return ::lgamma_r(x, &sign);
#else
  // No lgamma_r on this libc: serialize the call so the shared `signgam`
  // write cannot race. Cold path — only exotic toolchains land here, and
  // p-value scans on them simply queue on this lock.
  // Rank kLeaf: p-value scans call in from under the bench cache and pool
  // locks, so this serializer must rank below everything.
  static Mutex mu("util::lgamma_mt::mu", lockrank::kLeaf);
  MutexLock lk(mu);
  // elsa-lint: allow(banned-call): the one audited std::lgamma site, made
  // safe by the serialization above; everything else goes through lgamma_mt.
  return std::lgamma(x);
#endif
}

double binomial_tail_pvalue(int n, int k, double p) {
  if (k <= 0) return 1.0;
  if (p <= 0.0) return k > 0 ? 0.0 : 1.0;
  if (p >= 1.0) return 1.0;
  if (k > n) return 0.0;
  // Sum P(X = i) for i in [k, n] in log space with lgamma.
  double tail = 0.0;
  for (int i = k; i <= n; ++i) {
    const double logp = lgamma_mt(n + 1.0) - lgamma_mt(i + 1.0) -
                        lgamma_mt(n - i + 1.0) +
                        static_cast<double>(i) * std::log(p) +
                        static_cast<double>(n - i) * std::log1p(-p);
    tail += std::exp(logp);
  }
  return std::min(1.0, tail);
}

void RunningStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::reset() {
  n_ = 0;
  mean_ = 0.0;
  m2_ = 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

SlidingMedian::SlidingMedian(std::size_t window)
    : window_(window == 0 ? 1 : window) {
  fifo_.reserve(window_);
  sorted_.reserve(window_);
}

void SlidingMedian::push(double x) {
  if (count_ == window_) {
    // Evict the oldest sample from the sorted view.
    const double old = fifo_[head_];
    const auto it = std::lower_bound(sorted_.begin(), sorted_.end(), old);
    sorted_.erase(it);
    fifo_[head_] = x;
    head_ = (head_ + 1) % window_;
  } else {
    fifo_.push_back(x);
    ++count_;
  }
  sorted_.insert(std::lower_bound(sorted_.begin(), sorted_.end(), x), x);
}

double SlidingMedian::median() const {
  if (sorted_.empty()) return 0.0;
  const std::size_t mid = sorted_.size() / 2;
  if (sorted_.size() % 2 == 1) return sorted_[mid];
  return 0.5 * (sorted_[mid - 1] + sorted_[mid]);
}

double SlidingMedian::mad() const {
  if (sorted_.empty()) return 0.0;
  const double m = median();
  std::vector<double> dev(sorted_.size());
  for (std::size_t i = 0; i < sorted_.size(); ++i)
    dev[i] = std::abs(sorted_[i] - m);
  return median_inplace(dev);
}

void SlidingMedian::clear() {
  fifo_.clear();
  sorted_.clear();
  head_ = 0;
  count_ = 0;
}

}  // namespace elsa::util
