#include "util/strings.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace elsa::util {

std::vector<std::string> split(std::string_view s, std::string_view delims) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && delims.find(s[i]) != std::string_view::npos) ++i;
    std::size_t j = i;
    while (j < s.size() && delims.find(s[j]) == std::string_view::npos) ++j;
    if (j > i) out.emplace_back(s.substr(i, j - i));
    i = j;
  }
  return out;
}

std::vector<std::string> split_keep_empty(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool looks_numeric(std::string_view token) {
  if (token.empty()) return false;
  std::string_view t = token;
  const bool hex_prefixed = starts_with(t, "0x") || starts_with(t, "0X");
  if (hex_prefixed) t = t.substr(2);
  if (t.empty()) return false;
  std::size_t digits = 0, hex_letters = 0, others = 0;
  for (unsigned char c : t) {
    if (std::isdigit(c) || c == '.' || c == ':' || c == '-')
      ++digits;
    else if (std::isxdigit(c))
      ++hex_letters;
    else
      ++others;
  }
  // 0x-prefixed payloads are numeric whenever they are valid-ish hex.
  if (hex_prefixed) return others == 0;
  // Otherwise require at least one real digit so ordinary words made of
  // a-f letters ("detected", "cafe") never read as numbers; hex letters
  // then count toward the numeric mass (addresses like 1a2b3c).
  if (digits == 0) return false;
  return others * 3 <= digits + hex_letters;
}

bool template_matches(const std::vector<std::string>& tmpl_tokens,
                      const std::vector<std::string>& msg_tokens) {
  if (tmpl_tokens.size() != msg_tokens.size()) return false;
  for (std::size_t i = 0; i < tmpl_tokens.size(); ++i) {
    const std::string& t = tmpl_tokens[i];
    if (t == "*") continue;
    if (t == "d+") {
      if (!looks_numeric(msg_tokens[i])) return false;
      continue;
    }
    if (t != msg_tokens[i]) return false;
  }
  return true;
}

std::string human_duration(double seconds) {
  char buf[48];
  if (seconds < 60.0) {
    std::snprintf(buf, sizeof buf, "%.0fs", seconds);
  } else if (seconds < 3600.0) {
    std::snprintf(buf, sizeof buf, "%.1fm", seconds / 60.0);
  } else {
    std::snprintf(buf, sizeof buf, "%.1fh", seconds / 3600.0);
  }
  return buf;
}

}  // namespace elsa::util
