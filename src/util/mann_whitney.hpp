// Mann–Whitney U (Wilcoxon rank-sum) test, used by the correlation miner to
// decide whether an extracted gradual itemset is statistically significant
// (paper §III.C cites Milton's extended critical-value tables [22]; we use
// the standard normal approximation with tie correction, which matches the
// tables to well under the decision threshold for the sample sizes the
// miner produces).
#pragma once

#include <span>

namespace elsa::util {

struct MannWhitneyResult {
  double u = 0.0;        ///< U statistic for the first sample.
  double z = 0.0;        ///< Normal-approximation z score (tie-corrected).
  double p_two_sided = 1.0;
  double p_greater = 1.0;  ///< One-sided: first sample stochastically larger.
};

/// Rank-sum test of H0 "samples come from the same distribution".
/// Both samples must be non-empty; otherwise a null result (p = 1) returns.
MannWhitneyResult mann_whitney_u(std::span<const double> a,
                                 std::span<const double> b);

/// Standard normal cumulative distribution function.
double normal_cdf(double z);

}  // namespace elsa::util
