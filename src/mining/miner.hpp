// Online incremental correlation mining (LogMaster-style): the streaming
// replacement for the offline retrain. The miner folds the live classified
// event stream — (time, node, template, severity) tuples tapped off the
// serving path — into bounded decayed-count state, and can materialise a
// rule model (2- and 3-item correlation chains with GRITE-compatible delay
// arithmetic) at any fold boundary. Models are published into the serving
// engines through the RCU-style ModelHub (serve/model_handle.hpp), so the
// predict path swaps rules without ever blocking.
//
// Determinism is the load-bearing property: folding the SAME event sequence
// yields byte-identical state, and build_model() emits chains in a fixed
// order with fixed floating-point arithmetic — so an online run (any shard
// count) and a batch run over the canonically sorted trace produce equal
// model digests. The `elsa mine --check` CI gate is built on exactly this.
//
// Memory is bounded by construction: per-template stats grow with the HELO
// template set (itself bounded), the pairing lookback is a fixed-size
// window, and the candidate pair map is capped with deterministic
// lowest-weight eviction.
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <unordered_map>
#include <vector>

#include "elsa/pipeline.hpp"
#include "serve/tap.hpp"

namespace elsa::mining {

struct MinerConfig {
  /// Pairing window: an event only correlates with events at most this far
  /// back. Matches the data-mining baseline's fixed window by default.
  std::int64_t window_ms = 240'000;
  /// Sample interval chain delays are expressed in (the pipeline's dt).
  std::int64_t dt_ms = 10'000;
  /// Exponential decay half-life, in folded events; 0 disables decay
  /// (plain cumulative counts — what the online≡batch gate replays with).
  double half_life_events = 0.0;
  /// Most recent events an arriving event is paired against (per-event
  /// lookback cap; the window_ms gate applies on top).
  std::size_t lookback = 64;
  /// Candidate pair-map cap. On overflow the map is shrunk to 7/8 of the
  /// cap by evicting the lowest decayed-count pairs (ties broken by key),
  /// deterministically.
  std::size_t max_pairs = 65'536;
  /// Rule gates (decayed counts compared against these).
  double min_support = 4.0;
  double min_confidence = 0.20;
  /// GRITE delay-consistency slack for 3-item chains — the SAME formula as
  /// the offline miner (grite_effective_tolerance), applied byte-identically.
  std::int32_t tolerance = 3;
  double tolerance_frac = 0.08;
  /// Drop a 2-chain subsumed by a 3-chain over the same (antecedent,
  /// failure) whose support is at least this fraction of its own;
  /// 0 disables.
  double subsume_support_ratio = 0.6;
};

/// Canonical order of classified events: (time, node, template, severity).
/// The online pump sorts each watermark batch with it and the batch leg
/// sorts the whole trace with it — the shared total order that makes the
/// two fold sequences identical.
bool canonical_less(const serve::ClassifiedEvent& a,
                    const serve::ClassifiedEvent& b);

class OnlineMiner {
 public:
  explicit OnlineMiner(MinerConfig cfg = {});

  /// Fold one classified event. Events must arrive in canonical order
  /// (the pump/batch legs guarantee it); folding is deterministic — the
  /// same sequence always produces byte-identical state.
  void fold(const serve::ClassifiedEvent& e);

  /// Events folded so far (the publish-boundary clock).
  std::uint64_t folded() const { return folded_; }

  /// Distinct template ids seen (dense upper bound).
  std::size_t templates() const { return tstats_.size(); }

  /// Live candidate pairs (bounded by MinerConfig::max_pairs).
  std::size_t pairs() const { return pairs_.size(); }

  /// Materialise the current rule model: correlation chains ending in a
  /// failure-majority template, Silent signal profiles (matching the
  /// engine's on-demand detector synthesis, so a mid-run hot swap never
  /// changes detector behaviour), and per-template majority severities.
  /// `classifier` is copied into the model when non-null (pass null for
  /// interim publishes — the hub only needs chains+profiles — and the
  /// final classifier once the stream is closed). Deterministic: equal
  /// state => byte-identical model text.
  core::OfflineModel build_model(const helo::TemplateMiner* classifier) const;

  /// Serialise the complete fold state (versioned text, hexfloat doubles:
  /// save → load → continue folding is byte-equal to never pausing).
  void save_state(std::ostream& os) const;
  /// Restore state saved by save_state (config is NOT persisted: the
  /// caller constructs with the same MinerConfig). Throws
  /// std::runtime_error on malformed input.
  void load_state(std::istream& is);

  const MinerConfig& config() const { return cfg_; }

 private:
  struct TemplateStat {
    double count = 0.0;       ///< decayed occurrence count
    std::uint64_t last = 0;   ///< fold index of the last decay application
    std::uint64_t sev[5] = {0, 0, 0, 0, 0};  ///< raw severity histogram
  };
  struct PairStat {
    double count = 0.0;         ///< decayed co-occurrence count
    double delay_sum = 0.0;     ///< decayed sum of delays, in samples
    std::uint64_t last = 0;
  };
  struct Recent {
    std::int64_t time_ms;
    std::uint32_t tmpl;
  };

  /// Decay factor for a stat last touched at fold index `last`.
  double decay_to_now(std::uint64_t last) const;
  void evict_pairs();
  /// Majority severity of a template (ties break toward the lower level).
  simlog::Severity majority_severity(const TemplateStat& t) const;

  MinerConfig cfg_;
  std::uint64_t folded_ = 0;
  std::int64_t first_time_ms_ = 0;
  std::int64_t last_time_ms_ = 0;
  std::vector<TemplateStat> tstats_;
  std::deque<Recent> recent_;
  /// key = antecedent << 32 | consequent.
  std::unordered_map<std::uint64_t, PairStat> pairs_;
};

/// Result of one publish-boundary replay (batch leg of the CI gate).
struct BatchMineResult {
  core::OfflineModel model;          ///< final model (classifier embedded)
  std::uint64_t model_digest = 0;    ///< digest of `model`
  std::uint64_t publish_digest = 0;  ///< chained digest of interim publishes
  std::uint64_t publishes = 0;       ///< interim publish count
};

/// Fold `events` — already canonically sorted — through a fresh miner,
/// replicating the service's publish cadence: after every `publish_every`
/// folds (0 = never) an interim model is built with an EMPTY classifier and
/// its digest chained into `publish_digest`, exactly as MinerService does.
/// The reference the online≡batch gate compares against.
BatchMineResult batch_mine(const std::vector<serve::ClassifiedEvent>& events,
                           const MinerConfig& cfg, std::size_t publish_every,
                           const helo::TemplateMiner& classifier);

/// Chain one model digest into a running publish-stream digest (FNV-1a over
/// the digest's 8 little-endian bytes, seeded with the previous value).
std::uint64_t chain_publish_digest(std::uint64_t stream, std::uint64_t model);

}  // namespace elsa::mining
