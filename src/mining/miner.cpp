#include "mining/miner.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "elsa/grite.hpp"
#include "elsa/model_io.hpp"

namespace elsa::mining {

namespace {

constexpr std::uint64_t pair_key(std::uint32_t a, std::uint32_t b) {
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

/// Bit-exact double round-trip: text hexfloat parsing is unreliable across
/// standard libraries, so state files carry the raw IEEE-754 bit pattern.
std::uint64_t double_bits(double d) {
  std::uint64_t u;
  std::memcpy(&u, &d, sizeof u);
  return u;
}

double bits_double(std::uint64_t u) {
  double d;
  std::memcpy(&d, &u, sizeof d);
  return d;
}

}  // namespace

bool canonical_less(const serve::ClassifiedEvent& a,
                    const serve::ClassifiedEvent& b) {
  if (a.time_ms != b.time_ms) return a.time_ms < b.time_ms;
  if (a.node_id != b.node_id) return a.node_id < b.node_id;
  if (a.tmpl != b.tmpl) return a.tmpl < b.tmpl;
  return a.severity < b.severity;
}

OnlineMiner::OnlineMiner(MinerConfig cfg) : cfg_(cfg) {}

double OnlineMiner::decay_to_now(std::uint64_t last) const {
  if (cfg_.half_life_events <= 0.0 || last >= folded_) return 1.0;
  return std::exp2(-static_cast<double>(folded_ - last) /
                   cfg_.half_life_events);
}

// elsa-deterministic: fold state is a pure function of the event sequence
// — the online==batch equivalence gate replays it event for event.
void OnlineMiner::fold(const serve::ClassifiedEvent& e) {
  if (folded_ == 0) first_time_ms_ = e.time_ms;
  ++folded_;
  last_time_ms_ = e.time_ms;

  if (e.tmpl >= tstats_.size()) tstats_.resize(e.tmpl + 1);
  TemplateStat& t = tstats_[e.tmpl];
  t.count = t.count * decay_to_now(t.last) + 1.0;
  t.last = folded_;
  t.sev[std::min<std::size_t>(e.severity, 4)] += 1;

  // Pair the arrival against the lookback window. Each (antecedent ->
  // this) pair entry is independent, so iteration order cannot affect the
  // result; eviction is deferred past the loop to keep it that way.
  for (const Recent& r : recent_) {
    if (e.time_ms - r.time_ms > cfg_.window_ms) continue;
    if (r.tmpl == e.tmpl) continue;
    PairStat& p = pairs_[pair_key(r.tmpl, e.tmpl)];
    const double k = decay_to_now(p.last);
    p.count = p.count * k + 1.0;
    p.delay_sum = p.delay_sum * k +
                  static_cast<double>(e.time_ms - r.time_ms) /
                      static_cast<double>(cfg_.dt_ms);
    p.last = folded_;
  }
  if (pairs_.size() > cfg_.max_pairs) evict_pairs();

  while (!recent_.empty() &&
         (recent_.size() >= cfg_.lookback ||
          recent_.front().time_ms < e.time_ms - cfg_.window_ms))
    recent_.pop_front();
  if (cfg_.lookback > 0) recent_.push_back({e.time_ms, e.tmpl});
}

void OnlineMiner::evict_pairs() {
  // Shrink to 7/8 of the cap in one pass (amortises the sort): evict the
  // lowest current decayed counts, ties broken by key — fully determined
  // by the fold history, never by hash-map iteration order.
  const std::size_t target = cfg_.max_pairs - cfg_.max_pairs / 8;
  std::vector<std::pair<double, std::uint64_t>> weights;
  weights.reserve(pairs_.size());
  // elsa-lint: allow(det-unordered-escape): collect-then-sort — every
  // (weight, key) lands in `weights`, which is sorted before any use, so
  // hash order never reaches the eviction decision.
  for (const auto& [key, p] : pairs_)
    weights.emplace_back(p.count * decay_to_now(p.last), key);
  std::sort(weights.begin(), weights.end());
  const std::size_t evict = pairs_.size() - target;
  for (std::size_t i = 0; i < evict; ++i) pairs_.erase(weights[i].second);
}

simlog::Severity OnlineMiner::majority_severity(const TemplateStat& t) const {
  std::size_t best = 0;
  for (std::size_t s = 1; s < 5; ++s)
    if (t.sev[s] > t.sev[best]) best = s;
  return static_cast<simlog::Severity>(best);
}

// elsa-deterministic: equal fold state must serialise to equal bytes —
// model_digest over this output is the cross-shard acceptance check.
core::OfflineModel OnlineMiner::build_model(
    const helo::TemplateMiner* classifier) const {
  core::OfflineModel model;
  model.method = core::Method::DataMining;
  if (classifier != nullptr) model.helo = *classifier;
  model.train_begin_ms = first_time_ms_;
  model.train_end_ms = last_time_ms_;

  const std::size_t T = tstats_.size();
  model.profiles.assign(T, core::SignalProfile{});  // Silent, spike 0.5:
  // identical to the engine's on-demand detector synthesis, so swapping
  // this model in mid-run never alters detector behaviour.
  model.tmpl_severity.resize(T);
  std::vector<double> occ(T);
  for (std::size_t t = 0; t < T; ++t) {
    model.tmpl_severity[t] = majority_severity(tstats_[t]);
    occ[t] = tstats_[t].count * decay_to_now(tstats_[t].last);
  }

  // Sorted key walk: every emission decision below follows the sorted
  // (antecedent, consequent) order, never unordered_map iteration order —
  // equal state therefore always serialises to equal bytes.
  std::vector<std::uint64_t> keys;
  keys.reserve(pairs_.size());
  // elsa-lint: allow(det-unordered-escape): collect-then-sort — the keys
  // are sorted on the next line; emission walks the sorted order only.
  for (const auto& [key, p] : pairs_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  std::vector<std::vector<std::uint32_t>> adj(T);
  for (const std::uint64_t key : keys)
    adj[static_cast<std::uint32_t>(key >> 32)].push_back(
        static_cast<std::uint32_t>(key));

  const auto eff = [this](const PairStat& p) {
    return p.count * decay_to_now(p.last);
  };
  const auto mean_delay = [](const PairStat& p) {
    // Decay scales count and delay_sum by the same factor, so the mean is
    // the raw quotient.
    return p.count > 0.0 ? p.delay_sum / p.count : 0.0;
  };
  const auto rounded_delay = [&](const PairStat& p) {
    return static_cast<std::int32_t>(
        std::max<long long>(1, std::llround(mean_delay(p))));
  };

  for (const std::uint64_t key : keys) {
    const auto a = static_cast<std::uint32_t>(key >> 32);
    const auto f = static_cast<std::uint32_t>(key);
    if (a == f || !simlog::is_failure_severity(model.tmpl_severity[f]))
      continue;
    const PairStat& af = pairs_.at(key);
    const double s_af = eff(af);
    if (s_af < cfg_.min_support || occ[a] <= 0.0) continue;
    const double conf = s_af / occ[a];
    if (conf < cfg_.min_confidence) continue;
    const std::int32_t th_af = rounded_delay(af);

    core::Chain two;
    two.items = {{a, 0}, {f, th_af}};
    two.support = static_cast<int>(std::llround(s_af));
    two.confidence = conf;
    two.significance = conf;

    // 3-item extensions a -> b -> f, GRITE delay-consistent: the measured
    // a->f delay must agree with theta_ab + theta_bf within the SAME slack
    // formula the offline miner uses.
    std::vector<core::Chain> threes;
    double best3 = 0.0;
    for (const std::uint32_t b : adj[a]) {
      if (b == f || b == a) continue;
      const auto bf_it = pairs_.find(pair_key(b, f));
      if (bf_it == pairs_.end()) continue;
      const PairStat& ab = pairs_.at(pair_key(a, b));
      const PairStat& bf = bf_it->second;
      const std::int32_t th_ab = rounded_delay(ab);
      const std::int32_t th_bf = rounded_delay(bf);
      if (th_ab >= th_af) continue;  // b must sit strictly inside the span
      if (!core::grite_delay_consistent(th_af, th_ab + th_bf, cfg_.tolerance,
                                        cfg_.tolerance_frac))
        continue;
      const double s3 = std::min({eff(ab), eff(bf), s_af});
      if (s3 < cfg_.min_support) continue;
      const double conf3 = s3 / occ[a];
      if (conf3 < cfg_.min_confidence) continue;
      core::Chain three;
      three.items = {{a, 0}, {b, th_ab}, {f, th_af}};
      three.support = static_cast<int>(std::llround(s3));
      three.confidence = conf3;
      three.significance = conf3;
      best3 = std::max(best3, s3);
      threes.push_back(std::move(three));
    }

    // Subsume: a strong 3-chain over the same (a, f) makes the bare pair
    // redundant.
    const bool keep2 = cfg_.subsume_support_ratio <= 0.0 ||
                       best3 < cfg_.subsume_support_ratio * s_af;
    if (keep2) model.chains.push_back(std::move(two));
    for (core::Chain& c : threes) model.chains.push_back(std::move(c));
  }

  model.non_error_chains =
      core::annotate_failure_items(model.chains, model.tmpl_severity);
  return model;
}

// elsa-deterministic: the state file is canonical — a save/load round trip
// must reproduce byte-identical saves whatever the map's hash order.
void OnlineMiner::save_state(std::ostream& os) const {
  os << "elsa-miner-state 1\n";
  os << "folded " << folded_ << " first " << first_time_ms_ << " last "
     << last_time_ms_ << "\n";
  os << "templates " << tstats_.size() << "\n";
  for (const TemplateStat& t : tstats_) {
    os << "t " << double_bits(t.count) << " " << t.last;
    for (std::size_t s = 0; s < 5; ++s) os << " " << t.sev[s];
    os << "\n";
  }
  os << "recent " << recent_.size() << "\n";
  for (const Recent& r : recent_) os << "r " << r.time_ms << " " << r.tmpl
                                     << "\n";
  std::vector<std::uint64_t> keys;
  keys.reserve(pairs_.size());
  // elsa-lint: allow(det-unordered-escape): collect-then-sort — the pair
  // rows are emitted in sorted-key order, never in hash order.
  for (const auto& [key, p] : pairs_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  os << "pairs " << keys.size() << "\n";
  for (const std::uint64_t key : keys) {
    const PairStat& p = pairs_.at(key);
    os << "p " << key << " " << double_bits(p.count) << " "
       << double_bits(p.delay_sum) << " " << p.last << "\n";
  }
  os << "end\n";
}

void OnlineMiner::load_state(std::istream& is) {
  const auto fail = [](const char* what) {
    throw std::runtime_error(std::string("OnlineMiner::load_state: ") + what);
  };
  std::string word;
  int version = 0;
  if (!(is >> word >> version) || word != "elsa-miner-state" || version != 1)
    fail("bad header");
  std::uint64_t folded = 0;
  std::int64_t first = 0, last = 0;
  if (!(is >> word >> folded) || word != "folded") fail("bad folded");
  if (!(is >> word >> first) || word != "first") fail("bad first");
  if (!(is >> word >> last) || word != "last") fail("bad last");
  std::size_t n = 0;
  if (!(is >> word >> n) || word != "templates") fail("bad templates");
  std::vector<TemplateStat> tstats(n);
  for (TemplateStat& t : tstats) {
    std::uint64_t cnt = 0;
    if (!(is >> word >> cnt >> t.last) || word != "t") fail("bad template row");
    t.count = bits_double(cnt);
    for (std::size_t s = 0; s < 5; ++s)
      if (!(is >> t.sev[s])) fail("bad severity row");
  }
  if (!(is >> word >> n) || word != "recent") fail("bad recent");
  std::deque<Recent> recent;
  for (std::size_t i = 0; i < n; ++i) {
    Recent r{};
    if (!(is >> word >> r.time_ms >> r.tmpl) || word != "r")
      fail("bad recent row");
    recent.push_back(r);
  }
  if (!(is >> word >> n) || word != "pairs") fail("bad pairs");
  std::unordered_map<std::uint64_t, PairStat> pairs;
  pairs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t key = 0, cnt = 0, dsum = 0;
    PairStat p;
    if (!(is >> word >> key >> cnt >> dsum >> p.last) || word != "p")
      fail("bad pair row");
    p.count = bits_double(cnt);
    p.delay_sum = bits_double(dsum);
    pairs.emplace(key, p);
  }
  if (!(is >> word) || word != "end") fail("missing trailer");

  folded_ = folded;
  first_time_ms_ = first;
  last_time_ms_ = last;
  tstats_ = std::move(tstats);
  recent_ = std::move(recent);
  pairs_ = std::move(pairs);
}

// elsa-deterministic: the rolling publish-history digest the CI equivalence
// job compares across the online and batch legs.
std::uint64_t chain_publish_digest(std::uint64_t stream, std::uint64_t model) {
  char bytes[8];
  for (int i = 0; i < 8; ++i)
    bytes[i] = static_cast<char>((model >> (8 * i)) & 0xff);
  return stream == 0
             ? core::fnv1a_digest(std::string_view(bytes, 8))
             : core::fnv1a_digest(std::string_view(bytes, 8), stream);
}

// elsa-deterministic: the single-threaded reference leg of the
// online==batch gate — by construction a function of `events` alone.
BatchMineResult batch_mine(const std::vector<serve::ClassifiedEvent>& events,
                           const MinerConfig& cfg, std::size_t publish_every,
                           const helo::TemplateMiner& classifier) {
  BatchMineResult out;
  OnlineMiner miner(cfg);
  for (const serve::ClassifiedEvent& e : events) {
    miner.fold(e);
    if (publish_every != 0 && miner.folded() % publish_every == 0) {
      const std::uint64_t d =
          core::model_digest(miner.build_model(nullptr));
      out.publish_digest = chain_publish_digest(out.publish_digest, d);
      ++out.publishes;
    }
  }
  out.model = miner.build_model(&classifier);
  out.model_digest = core::model_digest(out.model);
  return out;
}

}  // namespace elsa::mining
