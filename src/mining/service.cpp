#include "mining/service.hpp"

#include <algorithm>
#include <chrono>
#include <limits>

#include "elsa/model_io.hpp"

namespace elsa::mining {

MinerService::MinerService(const topo::Topology& topo, MinerServiceConfig cfg)
    : live_(cfg.classifier),
      hub_(std::make_unique<const core::ModelState>(
          core::ModelState::build({}, {}))),
      publish_every_(cfg.publish_every) {
  // Mirror the sharded engine's reader-slot clamp so ring index == shard
  // index == hub reader slot.
  const std::size_t shards = std::min(
      std::max<std::size_t>(1, cfg.serve.shards), serve::ModelHub::kMaxReaders);
  cfg.serve.shards = shards;
  rings_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i)
    rings_.push_back(std::make_unique<serve::SpscRing<serve::ClassifiedEvent>>(
        cfg.ring_capacity));
  miner_ = OnlineMiner(cfg.miner);

  cfg.serve.live_classifier = &live_;
  cfg.serve.hub = &hub_;
  cfg.serve.event_tap = this;
  service_ = std::make_unique<serve::PredictionService>(topo, empty_model_,
                                                        cfg.serve);
  metrics_ = &service_->raw_metrics();

  // Watermark domain: only shards some partition key actually routes to.
  // An unreachable shard's clock never advances; including it would pin
  // the watermark at -inf and starve the fold until finish().
  reachable_.assign(shards, false);
  reachable_[service_->shard_of(-1)] = true;
  for (std::int32_t n = 0; n < topo.total_nodes(); ++n)
    reachable_[service_->shard_of(n)] = true;
  shard_clock_.assign(shards, std::numeric_limits<std::int64_t>::min());
  pending_.resize(shards);

  pump_ = std::thread([this] { pump_loop(); });
}

MinerService::~MinerService() {
  if (!finished_) {
    // Abandoned teardown: unblock any worker parked in a ring push first
    // (its publish becomes a no-op), then retire the pump. service_ (the
    // last-declared member) destroys before the rings it may still touch.
    for (auto& r : rings_) r->close();
    stop_.store(true, std::memory_order_release);
  }
  if (pump_.joinable()) pump_.join();
}

// elsa-realtime: runs on the shard worker inside the classify hot loop —
// one SPSC push (whose bounded spin is allowed at its site), nothing else.
void MinerService::publish(std::size_t shard, const serve::ClassifiedEvent& e) {
  // Blocking push: the mined stream is lossless. Returns 0 only when the
  // ring was closed by an abandoning destructor — then losing the event is
  // the point.
  if (shard < rings_.size()) rings_[shard]->push(e);
}

std::int64_t MinerService::watermark() const {
  std::int64_t w = std::numeric_limits<std::int64_t>::max();
  for (std::size_t s = 0; s < shard_clock_.size(); ++s)
    if (reachable_[s]) w = std::min(w, shard_clock_[s]);
  return w;
}

void MinerService::drain_rings(bool& any) {
  for (std::size_t s = 0; s < rings_.size(); ++s) {
    while (auto ev = rings_[s]->try_pop()) {
      // Per-shard streams are time-monotone (one producer, trace order),
      // so the newest arrival IS the shard clock.
      shard_clock_[s] = ev->time_ms;
      pending_[s].push_back(*ev);
      any = true;
    }
  }
}

// elsa-deterministic: the watermark fold is the online leg of the
// online==batch digest gate — shard count and arrival jitter must not
// reach the fold order (hence the canonical stable_sort below).
void MinerService::fold_below(std::int64_t watermark_ms) {
  scratch_.clear();
  for (std::vector<serve::ClassifiedEvent>& p : pending_) {
    // Time-monotone queue => the foldable events are a prefix. Strictly
    // below the watermark: an event AT the watermark may still gain
    // same-time siblings on the shard that defines it.
    const auto split = std::lower_bound(
        p.begin(), p.end(), watermark_ms,
        [](const serve::ClassifiedEvent& e, std::int64_t t) {
          return e.time_ms < t;
        });
    scratch_.insert(scratch_.end(), p.begin(), split);
    p.erase(p.begin(), split);
  }
  if (scratch_.empty()) return;
  // Canonical order. Exact duplicates keep their per-shard FIFO order
  // (stable), and equal keys can only coexist within one shard — the
  // router maps a (time, node) deterministically — so the merged sequence
  // is independent of the shard count.
  std::stable_sort(scratch_.begin(), scratch_.end(), canonical_less);
  for (const serve::ClassifiedEvent& e : scratch_) {
    miner_.fold(e);
    if (metrics_) metrics_->on_miner_event();
    if (publish_every_ != 0 && miner_.folded() % publish_every_ == 0)
      publish_model();
  }
}

// elsa-deterministic: every interim publish digests into publish_digest_
// (32a218226f958d79 in the CI gate) — bytes must be fold-history-only.
void MinerService::publish_model() {
  // Interim publishes carry no classifier (the producer thread owns the
  // live HELO miner; the hub only needs chains + profiles) — the batch leg
  // replicates exactly this, so the digests still line up.
  core::OfflineModel m = miner_.build_model(nullptr);
  const std::uint64_t d = core::model_digest(m);
  publish_digest_ = chain_publish_digest(publish_digest_, d);
  ++publishes_;
  hub_.publish(std::make_unique<const core::ModelState>(
      core::ModelState::build(std::move(m.chains), std::move(m.profiles))));
  if (metrics_) metrics_->on_model_publish();
}

void MinerService::pump_loop() {
  for (;;) {
    bool any = false;
    drain_rings(any);
    if (any) {
      fold_below(watermark());
      continue;
    }
    // acquire: pairs with the release store in finish()/the destructor —
    // once observed, every event published before the stop is visible, so
    // the final sweep below cannot miss one.
    if (stop_.load(std::memory_order_acquire)) {
      drain_rings(any);
      fold_below(std::numeric_limits<std::int64_t>::max());
      break;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

void MinerService::finish(std::int64_t t_end_ms) {
  if (finished_) return;
  finished_ = true;
  // After service finish() returns every event has been published (the
  // drain loops run to completion, and ring pushes block rather than
  // drop) …
  service_->finish(t_end_ms);
  // … so stop-then-join guarantees the pump's final sweep folds them all.
  stop_.store(true, std::memory_order_release);
  if (pump_.joinable()) pump_.join();
  // Pump gone: the fold state is quiescent and the producer is done with
  // the live classifier — embed it in the final model.
  final_model_ = miner_.build_model(&live_);
  final_digest_ = core::model_digest(final_model_);
}

}  // namespace elsa::mining
